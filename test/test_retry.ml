(* Deterministic driver retry-path tests: the exponential backoff
   schedule between attempts, typed exhaustion of the attempt budget,
   the per-request timeout under a seeded stall model, and the
   retry-exhaustion auto-remap onto the spare pool. *)
open Su_sim
open Su_fstypes
open Su_disk

let payload n = Array.make n (Types.Frag Types.Zeroed)

let mk_stack ?(nfrags = 65536) ?(spare_frags = 0) ?fault
    ?(config = Su_driver.Driver.default_config) () =
  let e = Engine.create () in
  let d =
    Disk.create ~engine:e ~params:Disk_params.hp_c2447 ~nfrags ?fault
      ~spare_frags ()
  in
  let drv = Su_driver.Driver.create ~engine:e ~disk:d config in
  (e, d, drv)

let kind_times sink kind =
  List.filter_map
    (fun ev ->
      match Su_obs.Json.member "kind" ev with
      | Some (Su_obs.Json.Str k) when k = kind ->
        Su_obs.Json.to_float (Su_obs.Json.get "t" ev)
      | _ -> None)
    (Su_obs.Events.events sink)

(* The delay before attempt k+1 is retry_backoff * 2^(k-1). With a
   backoff (10 s) four orders of magnitude above the ms-scale service
   times, the gaps between consecutive io.retry emissions — and the
   final io.fail — pin the doubling schedule exactly. *)
let test_backoff_schedule () =
  let sink = Su_obs.Events.create () in
  let fault = { Fault.none with Fault.bad_sectors = [ 800 ] } in
  let config =
    { Su_driver.Driver.default_config with
      max_attempts = 4;
      retry_backoff = 10.0;
      sink = Some sink }
  in
  let e, _d, drv = mk_stack ~fault ~config () in
  let failed = ref false in
  ignore
    (Su_driver.Driver.submit drv ~kind:Su_driver.Request.Write ~lbn:800
       ~nfrags:1 ~payload:(payload 1)
       ~on_complete:(fun r -> failed := Result.is_error r)
       ());
  ignore (Proc.spawn e (fun () -> Su_driver.Driver.quiesce drv));
  Engine.run e;
  Alcotest.(check bool) "request failed" true !failed;
  let retries = kind_times sink "io.retry" in
  let fails = kind_times sink "io.fail" in
  Alcotest.(check int) "three retries scheduled" 3 (List.length retries);
  Alcotest.(check int) "one failure" 1 (List.length fails);
  let near expected actual =
    (* backoff-dominated gap: the slack is one attempt's service time *)
    actual >= expected && actual < expected +. 0.1
  in
  (match (retries, fails) with
   | [ t1; t2; t3 ], [ tf ] ->
     Alcotest.(check bool) "2nd gap = 2x base"
       true (near 20.0 (t3 -. t2));
     Alcotest.(check bool) "3rd gap = 4x base"
       true (near 40.0 (tf -. t3));
     Alcotest.(check bool) "1st gap = base"
       true (near 10.0 (t2 -. t1))
   | _ -> Alcotest.fail "unexpected event counts")

let test_exhaustion_is_typed () =
  let sink = Su_obs.Events.create () in
  let fault = { Fault.none with Fault.bad_sectors = [ 132 ] } in
  let config =
    { Su_driver.Driver.default_config with max_attempts = 3; sink = Some sink }
  in
  let e, d, drv = mk_stack ~fault ~config () in
  let result = ref None in
  ignore
    (Su_driver.Driver.submit drv ~kind:Su_driver.Request.Write ~lbn:130
       ~nfrags:4 ~payload:(payload 4)
       ~on_complete:(fun r -> result := Some r)
       ());
  ignore (Proc.spawn e (fun () -> Su_driver.Driver.quiesce drv));
  Engine.run e;
  (match !result with
   | Some (Error (Fault.Bad_sector { lbn })) ->
     Alcotest.(check int) "typed cause names the sector" 132 lbn
   | _ -> Alcotest.fail "expected a bad-sector failure");
  let tr = Su_driver.Driver.trace drv in
  Alcotest.(check int) "budget minus one retries" 2
    (Su_driver.Trace.io_retries tr);
  Alcotest.(check int) "one recorded failure" 1
    (Su_driver.Trace.io_failures tr);
  Alcotest.(check int) "no remap without spares" 0
    (Su_driver.Trace.io_remaps tr);
  Alcotest.(check int) "attempts all injected" 3 (Disk.faults_injected d);
  Alcotest.(check int) "io.fail emitted once" 1
    (Su_obs.Events.count_kind sink "io.fail")

let test_timeout_under_seeded_stall () =
  (* every attempt stalls at 100x the service time against a 50 ms
     deadline: each attempt times out, and after the budget the typed
     [Timeout] cause surfaces with the elapsed/limit pair *)
  let fault =
    { Fault.none with Fault.seed = 42; stall = 1.0; stall_factor = 100.0 }
  in
  let config =
    { Su_driver.Driver.default_config with
      max_attempts = 2;
      request_timeout = 0.05 }
  in
  let e, d, drv = mk_stack ~fault ~config () in
  let result = ref None in
  ignore
    (Su_driver.Driver.submit drv ~kind:Su_driver.Request.Write ~lbn:256
       ~nfrags:8 ~payload:(payload 8)
       ~on_complete:(fun r -> result := Some r)
       ());
  ignore (Proc.spawn e (fun () -> Su_driver.Driver.quiesce drv));
  Engine.run e;
  (match !result with
   | Some (Error (Fault.Timeout { elapsed; limit })) ->
     Alcotest.(check (float 1e-9)) "limit echoed" 0.05 limit;
     Alcotest.(check bool) "elapsed past the limit" true (elapsed > limit)
   | _ -> Alcotest.fail "expected a timeout failure");
  let tr = Su_driver.Driver.trace drv in
  Alcotest.(check int) "one retry before the budget" 1
    (Su_driver.Trace.io_retries tr);
  Alcotest.(check int) "one failure" 1 (Su_driver.Trace.io_failures tr);
  Alcotest.(check int) "both stalls injected" 2 (Disk.faults_injected d)

let test_write_remaps_at_exhaustion () =
  (* a permanent write fault with spares available: the driver burns
     its attempt budget, remaps the bad fragment and re-drives — the
     request completes Ok and the payload is readable at its logical
     address *)
  let sink = Su_obs.Events.create () in
  let fault = { Fault.none with Fault.bad_sectors = [ 702 ] } in
  let config =
    { Su_driver.Driver.default_config with max_attempts = 3; sink = Some sink }
  in
  let e, d, drv = mk_stack ~fault ~config ~spare_frags:4 () in
  let p =
    Array.init 4 (fun i ->
        Types.Frag (Types.Written { inum = 5; gen = 1; flbn = i }))
  in
  let result = ref None in
  ignore
    (Su_driver.Driver.submit drv ~kind:Su_driver.Request.Write ~lbn:700
       ~nfrags:4 ~payload:p
       ~on_complete:(fun r -> result := Some r)
       ());
  ignore (Proc.spawn e (fun () -> Su_driver.Driver.quiesce drv));
  Engine.run e;
  (match !result with
   | Some (Ok _) -> ()
   | _ -> Alcotest.fail "expected the remapped write to complete");
  let tr = Su_driver.Driver.trace drv in
  Alcotest.(check int) "one remap traced" 1 (Su_driver.Trace.io_remaps tr);
  Alcotest.(check int) "no failure surfaced" 0 (Su_driver.Trace.io_failures tr);
  Alcotest.(check int) "disk performed one remap" 1 (Disk.remaps d);
  Alcotest.(check int) "one spare consumed" 3 (Disk.spares_left d);
  Alcotest.(check int) "io.remap emitted once" 1
    (Su_obs.Events.count_kind sink "io.remap");
  (match Disk.remap_entries d with
   | [ (702, phys) ] ->
     Alcotest.(check bool) "spare lives past the media" true (phys >= 65536)
   | _ -> Alcotest.fail "expected exactly the bad fragment remapped");
  (* the payload must read back whole at its logical address *)
  Alcotest.(check bool) "remapped fragment readable" true
    (Disk.peek d 702 = Types.Frag (Types.Written { inum = 5; gen = 1; flbn = 2 }));
  (* and a further write to the same extent needs no new remap *)
  let again = ref None in
  ignore
    (Su_driver.Driver.submit drv ~kind:Su_driver.Request.Write ~lbn:700
       ~nfrags:4 ~payload:p
       ~on_complete:(fun r -> again := Some r)
       ());
  ignore (Proc.spawn e (fun () -> Su_driver.Driver.quiesce drv));
  Engine.run e;
  (match !again with
   | Some (Ok _) -> ()
   | _ -> Alcotest.fail "expected the rewrite to complete");
  Alcotest.(check int) "still a single remap" 1 (Disk.remaps d)

let test_remap_pool_exhaustion_fails_typed () =
  (* one spare, two bad write targets: the first fault is absorbed,
     the second exhausts the pool and surfaces the typed cause *)
  let fault = { Fault.none with Fault.bad_sectors = [ 900; 1000 ] } in
  let config = { Su_driver.Driver.default_config with max_attempts = 2 } in
  let e, d, drv = mk_stack ~fault ~config ~spare_frags:1 () in
  let first = ref None and second = ref None in
  ignore
    (Su_driver.Driver.submit drv ~kind:Su_driver.Request.Write ~lbn:900
       ~nfrags:1 ~payload:(payload 1)
       ~on_complete:(fun r -> first := Some r)
       ());
  ignore
    (Su_driver.Driver.submit drv ~kind:Su_driver.Request.Write ~lbn:1000
       ~nfrags:1 ~payload:(payload 1)
       ~on_complete:(fun r -> second := Some r)
       ());
  ignore (Proc.spawn e (fun () -> Su_driver.Driver.quiesce drv));
  Engine.run e;
  (match !first with
   | Some (Ok _) -> ()
   | _ -> Alcotest.fail "first fault should be absorbed by the spare");
  (match !second with
   | Some (Error (Fault.Bad_sector { lbn })) ->
     Alcotest.(check int) "typed cause" 1000 lbn
   | _ -> Alcotest.fail "expected the pool-dry failure to be typed");
  Alcotest.(check int) "pool dry" 0 (Disk.spares_left d)

(* reads have no payload to relocate: a permanent read fault must
   fail typed, never remap (that would fabricate content) *)
let test_read_fault_never_remaps () =
  let fault = { Fault.none with Fault.bad_sectors = [ 321 ] } in
  let config = { Su_driver.Driver.default_config with max_attempts = 2 } in
  let e, d, drv = mk_stack ~fault ~config ~spare_frags:4 () in
  let result = ref None in
  ignore
    (Su_driver.Driver.submit drv ~kind:Su_driver.Request.Read ~lbn:320
       ~nfrags:4
       ~on_complete:(fun r -> result := Some r)
       ());
  ignore (Proc.spawn e (fun () -> Su_driver.Driver.quiesce drv));
  Engine.run e;
  (match !result with
   | Some (Error (Fault.Bad_sector { lbn })) ->
     Alcotest.(check int) "typed cause" 321 lbn
   | _ -> Alcotest.fail "expected a typed read failure");
  Alcotest.(check int) "no remap" 0 (Disk.remaps d);
  Alcotest.(check int) "spares untouched" 4 (Disk.spares_left d)

let suite =
  [
    Alcotest.test_case "backoff doubles per retry" `Quick
      test_backoff_schedule;
    Alcotest.test_case "attempt budget exhausts typed" `Quick
      test_exhaustion_is_typed;
    Alcotest.test_case "seeded stall trips the timeout" `Quick
      test_timeout_under_seeded_stall;
    Alcotest.test_case "write remaps at retry exhaustion" `Quick
      test_write_remaps_at_exhaustion;
    Alcotest.test_case "spare-pool exhaustion fails typed" `Quick
      test_remap_pool_exhaustion_fails_typed;
    Alcotest.test_case "read faults never remap" `Quick
      test_read_fault_never_remaps;
  ]
