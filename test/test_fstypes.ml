(* Property and unit tests for the on-disk types and geometry. *)
open Su_fstypes

let g = Geom.default
let gs = Geom.small

let test_geom_basics () =
  Alcotest.(check int) "block bytes" 8192 (Geom.block_bytes g);
  Alcotest.(check int) "cg count (1GB/16MB)" 64 (Geom.cg_count g);
  Alcotest.(check int) "small cg count" 4 (Geom.cg_count gs);
  Alcotest.(check int) "total inodes" (64 * 2048) (Geom.total_inodes g)

let test_geom_rejects_bad () =
  (try
     ignore (Geom.v ~mb:100 ~cg_mb:16 ());
     Alcotest.fail "expected invalid_arg"
   with Invalid_argument _ -> ());
  try
    ignore (Geom.v ~inodes_per_cg:100 ());
    Alcotest.fail "expected invalid_arg"
  with Invalid_argument _ -> ()

let test_layout_disjoint () =
  (* superblock copy, header, inode area and data area of each group
     must tile the group without overlap *)
  for c = 0 to Geom.cg_count gs - 1 do
    let base = Geom.cg_base gs c in
    let sb = Geom.cg_sb_frag gs c in
    let hdr = Geom.cg_header_frag gs c in
    let ifirst, icount = Geom.cg_inode_area gs c in
    let dfirst, dcount = Geom.cg_data_area gs c in
    Alcotest.(check int) "sb at base" base sb;
    Alcotest.(check int) "header after sb" (base + 8) hdr;
    Alcotest.(check int) "inodes after header" (base + 16) ifirst;
    Alcotest.(check int) "data after inodes" (ifirst + icount) dfirst;
    Alcotest.(check int) "group tiles exactly" (base + gs.Geom.cg_frags)
      (dfirst + dcount)
  done

let prop_inode_block_roundtrip =
  QCheck.Test.make ~name:"inode block mapping is consistent" ~count:500
    QCheck.(int_range 2 (Geom.total_inodes gs + 1))
    (fun inum ->
      let frag = Geom.inode_block_frag gs inum in
      let idx = Geom.inode_index_in_block gs inum in
      let c = Geom.cg_of_inode gs inum in
      let ifirst, icount = Geom.cg_inode_area gs c in
      (* the block must lie in the inode area of the inode's group *)
      frag >= ifirst
      && frag < ifirst + icount
      && frag mod gs.Geom.frags_per_block = 0
      && idx >= 0
      && idx < gs.Geom.inodes_per_block
      (* and distinct inodes in one block get distinct slots *)
      && (inum + 1 > Geom.total_inodes gs + 1
          || Geom.inode_block_frag gs (inum + 1) <> frag
             || Geom.inode_index_in_block gs (inum + 1) = idx + 1))

let prop_data_frag_detection =
  QCheck.Test.make ~name:"data_frag_in_cg matches the data areas" ~count:1000
    QCheck.(int_range 0 (gs.Geom.nfrags - 1))
    (fun frag ->
      let c = Geom.cg_of_frag gs frag in
      let dfirst, dcount = Geom.cg_data_area gs c in
      let expected = frag >= dfirst && frag < dfirst + dcount in
      Geom.data_frag_in_cg gs frag = (expected && frag > 0))

let prop_frags_of_bytes =
  QCheck.Test.make ~name:"frags_of_bytes rounds up" ~count:500
    QCheck.(int_bound 100_000)
    (fun bytes ->
      let frags = Geom.frags_of_bytes gs bytes in
      if bytes <= 0 then frags = 0
      else frags * 1024 >= bytes && (frags - 1) * 1024 < bytes)

let test_copy_dinode_isolated () =
  let d = Types.free_dinode gs in
  d.Types.ftype <- Types.F_reg;
  d.Types.db.(3) <- 42;
  let c = Types.copy_dinode d in
  c.Types.db.(3) <- 7;
  c.Types.nlink <- 9;
  Alcotest.(check int) "original pointer kept" 42 d.Types.db.(3);
  Alcotest.(check int) "original nlink kept" 0 d.Types.nlink

let test_copy_meta_isolated () =
  let entries = Types.fresh_dir_block gs in
  entries.(0) <- Some { Types.name = "x"; inum = 5 };
  let m = Types.Dir entries in
  (match Types.copy_meta m with
   | Types.Dir copy ->
     copy.(0) <- None;
     Alcotest.(check bool) "original entry kept" true (entries.(0) <> None)
   | _ -> Alcotest.fail "wrong copy");
  let cg = Types.fresh_cg gs in
  Bytes.set cg.Types.frag_map 0 '\001';
  (match Types.copy_meta (Types.Cgroup cg) with
   | Types.Cgroup cc ->
     Bytes.set cc.Types.frag_map 0 '\000';
     Alcotest.(check bool) "bitmap isolated" true
       (Bytes.get cg.Types.frag_map 0 = '\001')
   | _ -> Alcotest.fail "wrong copy")

let test_dir_helpers () =
  let entries = Types.fresh_dir_block gs in
  Alcotest.(check int) "empty count" 0 (Types.dir_entry_count entries);
  Alcotest.(check (option int)) "free slot 0" (Some 0)
    (Types.dir_free_slot entries);
  entries.(0) <- Some { Types.name = "a"; inum = 3 };
  entries.(2) <- Some { Types.name = "b"; inum = 4 };
  Alcotest.(check int) "count 2" 2 (Types.dir_entry_count entries);
  Alcotest.(check (option int)) "free slot 1" (Some 1)
    (Types.dir_free_slot entries);
  (match Types.dir_find entries "b" with
   | Some (slot, e) ->
     Alcotest.(check int) "slot" 2 slot;
     Alcotest.(check int) "inum" 4 e.Types.inum
   | None -> Alcotest.fail "entry not found");
  Alcotest.(check bool) "missing" true (Types.dir_find entries "zz" = None)

(* regression: copy_meta's superblock arm used to alias the original
   record, so flipping sb_clean on a crash-snapshot copy flipped it on
   the live superblock too *)
let test_copy_superblock_isolated () =
  let sb =
    { Types.sb_magic = 0xF5; sb_nfrags = 1024; sb_ncg = 4; sb_clean = true }
  in
  let c = Types.copy_superblock sb in
  c.Types.sb_clean <- false;
  Alcotest.(check bool) "direct copy isolated" true sb.Types.sb_clean;
  Alcotest.(check int) "magic copied" sb.Types.sb_magic c.Types.sb_magic;
  Alcotest.(check int) "nfrags copied" sb.Types.sb_nfrags c.Types.sb_nfrags;
  match Types.copy_meta (Types.Superblock sb) with
  | Types.Superblock cc ->
    cc.Types.sb_clean <- false;
    Alcotest.(check bool) "copy_meta isolated" true sb.Types.sb_clean
  | _ -> Alcotest.fail "wrong copy"

let test_stamp_matching () =
  let s = Types.Written { inum = 7; gen = 3; flbn = 0 } in
  Alcotest.(check bool) "own stamp" true (Types.stamp_matches s ~inum:7 ~gen:3);
  Alcotest.(check bool) "other gen" false (Types.stamp_matches s ~inum:7 ~gen:4);
  Alcotest.(check bool) "other file" false (Types.stamp_matches s ~inum:8 ~gen:3);
  Alcotest.(check bool) "zeroed always safe" true
    (Types.stamp_matches Types.Zeroed ~inum:1 ~gen:1)

(* d_bytes folds in place; it must still equal the digest of the
   string the bytes spell (what the old [Bytes.to_string] copy
   computed), byte for byte — cg digests depend on it. *)
let test_d_bytes_in_place () =
  let rng = Su_util.Rng.create 11 in
  for _ = 1 to 200 do
    let b =
      Bytes.init (Su_util.Rng.int rng 64) (fun _ ->
          Char.chr (Su_util.Rng.int rng 256))
    in
    let h0 = Su_util.Rng.int rng max_int in
    Alcotest.(check int) "d_bytes = d_string of contents"
      (Types.d_string h0 (Bytes.to_string b))
      (Types.d_bytes h0 b)
  done;
  Alcotest.(check int) "empty" (Types.d_string 7 "") (Types.d_bytes 7 Bytes.empty)

(* Free slots of a fresh inode block share one canonical zeroed dinode
   (mkfs allocation is O(blocks), not O(inodes)) — and replacing a
   slot, as every writer does, leaves the canonical record intact. *)
let test_fresh_inode_block_shared () =
  let g = Geom.small in
  let b1 = Types.fresh_inode_block g in
  let b2 = Types.fresh_inode_block g in
  (match (b1, b2) with
   | Types.Inodes a, Types.Inodes b ->
     Alcotest.(check bool) "slots share one record" true (a.(0) == a.(63));
     Alcotest.(check bool) "blocks share it too" true (a.(0) == b.(1));
     (* replace — never mutate — a slot *)
     let d = Types.free_dinode g in
     d.Types.ftype <- Types.F_reg;
     d.Types.nlink <- 1;
     a.(5) <- d;
     Alcotest.(check bool) "canonical untouched" true
       (b.(0).Types.ftype = Types.F_free && b.(0).Types.nlink = 0)
   | _ -> Alcotest.fail "not inode blocks");
  (* allocation cost: a fresh block is one array, not 64 records *)
  let before = Gc.minor_words () in
  let keep = Array.init 64 (fun _ -> Types.fresh_inode_block g) in
  let words = Gc.minor_words () -. before in
  ignore (Sys.opaque_identity keep);
  Alcotest.(check bool)
    (Printf.sprintf "64 blocks cost %.0f words (bounded)" words)
    true
    (words < 64.0 *. 100.0)

let suite =
  [
    Alcotest.test_case "geom basics" `Quick test_geom_basics;
    Alcotest.test_case "geom rejects bad" `Quick test_geom_rejects_bad;
    Alcotest.test_case "layout disjoint" `Quick test_layout_disjoint;
    QCheck_alcotest.to_alcotest prop_inode_block_roundtrip;
    QCheck_alcotest.to_alcotest prop_data_frag_detection;
    QCheck_alcotest.to_alcotest prop_frags_of_bytes;
    Alcotest.test_case "copy dinode isolated" `Quick test_copy_dinode_isolated;
    Alcotest.test_case "copy meta isolated" `Quick test_copy_meta_isolated;
    Alcotest.test_case "copy superblock isolated" `Quick
      test_copy_superblock_isolated;
    Alcotest.test_case "dir helpers" `Quick test_dir_helpers;
    Alcotest.test_case "stamp matching" `Quick test_stamp_matching;
    Alcotest.test_case "d_bytes digests in place" `Quick test_d_bytes_in_place;
    Alcotest.test_case "fresh inode block shares canonical dinode" `Quick
      test_fresh_inode_block_shared;
  ]
