(* Fault injection: transient errors absorbed by driver retries,
   permanent errors failed fast with typed causes, torn writes applying
   only a prefix, per-request timeouts, and the cache's handling of
   failed writes. *)
open Su_sim
open Su_fstypes
open Su_disk

let mk_disk ?(nfrags = 65536) ?fault () =
  let e = Engine.create () in
  let d = Disk.create ~engine:e ~params:Disk_params.hp_c2447 ~nfrags ?fault () in
  (e, d)

let mk_stack ?fault ?(config = Su_driver.Driver.default_config) () =
  let e, d = mk_disk ?fault () in
  let drv = Su_driver.Driver.create ~engine:e ~disk:d config in
  (e, d, drv)

let payload n = Array.make n (Types.Frag Types.Zeroed)

(* --- disk-level fault model ------------------------------------------- *)

let test_none_is_silent () =
  let f = Fault.create Fault.none in
  for i = 0 to 99 do
    match Fault.judge f ~op:`Write ~lbn:(i * 8) ~nfrags:8 () with
    | Fault.Ok_attempt -> ()
    | Fault.Stalled | Fault.Failed _ | Fault.Silent _ ->
      Alcotest.fail "fault without a model"
  done;
  Alcotest.(check int) "nothing injected" 0 (Fault.injected f)

let test_transient_rates () =
  let f = Fault.create (Fault.transient ~seed:7 ~rate:0.1 ()) in
  let fails = ref 0 and stalls = ref 0 in
  for i = 0 to 999 do
    match Fault.judge f ~op:(if i land 1 = 0 then `Read else `Write) ~lbn:i ~nfrags:4 () with
    | Fault.Failed _ -> incr fails
    | Fault.Stalled -> incr stalls
    | Fault.Ok_attempt -> ()
    | Fault.Silent _ -> Alcotest.fail "silent classes are off"
  done;
  Alcotest.(check bool) "failures drawn" true (!fails > 50 && !fails < 200);
  Alcotest.(check bool) "stalls drawn" true (!stalls > 0);
  Alcotest.(check int) "counter matches" (!fails + !stalls) (Fault.injected f)

let test_torn_write_applies_prefix () =
  (* a write across a bad sector applies exactly the fragments before
     it, and the completion carries the typed cause *)
  let fault = { Fault.none with Fault.bad_sectors = [ 102 ]; torn_writes = true } in
  let e, d = mk_disk ~fault () in
  let p = Array.init 4 (fun i -> Types.Frag (Types.Written { inum = 9; gen = 1; flbn = i })) in
  let seen = ref None in
  Disk.submit d ~lbn:100 ~nfrags:4 ~op:Disk.Write ~payload:(Some p)
    ~on_done:(fun r _svc -> seen := Some r);
  Engine.run e;
  (match !seen with
   | Some (Error (Fault.Bad_sector { lbn })) ->
     Alcotest.(check int) "failing sector" 102 lbn
   | _ -> Alcotest.fail "expected a bad-sector error");
  Alcotest.(check bool) "prefix applied" true
    (Disk.peek d 100 <> Types.Empty && Disk.peek d 101 <> Types.Empty);
  Alcotest.(check bool) "tail lost" true
    (Disk.peek d 102 = Types.Empty && Disk.peek d 103 = Types.Empty);
  Alcotest.(check int) "one injection" 1 (Disk.faults_injected d)

let test_write_observer_sees_applied_extents () =
  let e, d = mk_disk () in
  let log = ref [] in
  Disk.set_write_observer d (fun ~lbn cells ->
      log := (lbn, Array.length cells) :: !log);
  Disk.submit d ~lbn:40 ~nfrags:2 ~op:Disk.Write ~payload:(Some (payload 2))
    ~on_done:(fun _ _ -> ());
  Engine.run e;
  Alcotest.(check (list (pair int int))) "observed" [ (40, 2) ] !log

(* --- driver retry / fail-fast / timeout -------------------------------- *)

let test_driver_retries_transients () =
  (* rate high enough that some of the writes fail on the first
     attempt; the driver must retry every one to completion *)
  let e, d, drv = mk_stack ~fault:(Fault.transient ~seed:11 ~rate:0.25 ()) () in
  let completed = ref 0 and errors = ref 0 in
  for i = 0 to 39 do
    ignore
      (Su_driver.Driver.submit drv ~kind:Su_driver.Request.Write ~lbn:(i * 64)
         ~nfrags:8 ~payload:(payload 8)
         ~on_complete:(fun r ->
           incr completed;
           if Result.is_error r then incr errors)
         ())
  done;
  ignore (Proc.spawn e (fun () -> Su_driver.Driver.quiesce drv));
  Engine.run e;
  let tr = Su_driver.Driver.trace drv in
  Alcotest.(check int) "all completed" 40 !completed;
  Alcotest.(check int) "no failures surfaced" 0 !errors;
  Alcotest.(check bool) "faults were injected" true (Disk.faults_injected d > 0);
  Alcotest.(check bool) "retries recorded" true (Su_driver.Trace.io_retries tr > 0);
  Alcotest.(check int) "no failure recorded" 0 (Su_driver.Trace.io_failures tr)

let test_driver_fail_fast_on_bad_sector () =
  (* a permanent bad sector exhausts the attempt budget, surfaces a
     typed error, and does not wedge later requests *)
  let fault = { Fault.none with Fault.bad_sectors = [ 501 ] } in
  let config = { Su_driver.Driver.default_config with max_attempts = 3 } in
  let e, _d, drv = mk_stack ~fault ~config () in
  let failed = ref None and ok = ref 0 in
  ignore
    (Su_driver.Driver.submit drv ~kind:Su_driver.Request.Write ~lbn:500 ~nfrags:4
       ~payload:(payload 4)
       ~on_complete:(fun r -> match r with Error e -> failed := Some e | Ok _ -> ())
       ());
  ignore
    (Su_driver.Driver.submit drv ~kind:Su_driver.Request.Write ~lbn:900 ~nfrags:4
       ~payload:(payload 4)
       ~on_complete:(fun r -> if Result.is_ok r then incr ok)
       ());
  ignore (Proc.spawn e (fun () -> Su_driver.Driver.quiesce drv));
  Engine.run e;
  (match !failed with
   | Some (Fault.Bad_sector { lbn }) -> Alcotest.(check int) "cause" 501 lbn
   | _ -> Alcotest.fail "expected a bad-sector failure");
  Alcotest.(check int) "later request unaffected" 1 !ok;
  let tr = Su_driver.Driver.trace drv in
  Alcotest.(check int) "retried until the budget" 2 (Su_driver.Trace.io_retries tr);
  Alcotest.(check int) "one failure" 1 (Su_driver.Trace.io_failures tr)

let test_driver_timeout_rejects_stalls () =
  (* every attempt stalls 50x past the deadline: the driver must abort
     each one and fail the request with the timeout cause *)
  let fault = { Fault.none with Fault.seed = 3; stall = 1.0; stall_factor = 50.0 } in
  let config =
    { Su_driver.Driver.default_config with max_attempts = 2; request_timeout = 0.05 }
  in
  let e, _d, drv = mk_stack ~fault ~config () in
  let failed = ref None in
  ignore
    (Su_driver.Driver.submit drv ~kind:Su_driver.Request.Write ~lbn:64 ~nfrags:8
       ~payload:(payload 8)
       ~on_complete:(fun r -> match r with Error err -> failed := Some err | Ok _ -> ())
       ());
  ignore (Proc.spawn e (fun () -> Su_driver.Driver.quiesce drv));
  Engine.run e;
  match !failed with
  | Some (Fault.Timeout { elapsed; limit }) ->
    Alcotest.(check bool) "elapsed past limit" true (elapsed > limit)
  | _ -> Alcotest.fail "expected a timeout failure"

(* --- cache behaviour on write failure ---------------------------------- *)

let test_cache_redirties_failed_write () =
  let fault = { Fault.none with Fault.bad_sectors = [ 300 ] } in
  let config = { Su_driver.Driver.default_config with max_attempts = 2 } in
  let e, _d, drv = mk_stack ~fault ~config () in
  let bc =
    Su_cache.Bcache.create ~engine:e ~driver:drv
      { Su_cache.Bcache.capacity_frags = 1024; cb = false;
        copy_cost = (fun _ -> ()); sink = None }
  in
  let result = ref None in
  let _p =
    Proc.spawn e (fun () ->
        let b =
          Su_cache.Bcache.getblk bc ~lbn:300 ~nfrags:2 ~init:(fun () ->
              Su_cache.Buf.Cdata (Array.make 2 (Some Types.Zeroed)))
        in
        Su_cache.Bcache.bdwrite bc b;
        ignore
          (Su_cache.Bcache.bawrite bc b ~notify:(fun r -> result := Some r));
        Su_cache.Bcache.wait_write bc b;
        Alcotest.(check bool) "buffer re-dirtied" true b.Su_cache.Buf.dirty;
        Su_cache.Bcache.release bc b)
  in
  Engine.run e;
  (match !result with
   | Some (Error (Fault.Bad_sector _)) -> ()
   | _ -> Alcotest.fail "expected the notify to carry the error");
  Alcotest.(check int) "cache counted the failure" 1
    (Su_cache.Bcache.io_failures bc)

let test_cache_sync_io_error_typed () =
  (* bwrite_sync used to hang or die on [Failure]; now it raises the
     typed [Io_error] carrying the device cause *)
  let fault = { Fault.none with Fault.bad_sectors = [ 310 ] } in
  let config = { Su_driver.Driver.default_config with max_attempts = 2 } in
  let e, _d, drv = mk_stack ~fault ~config () in
  let bc =
    Su_cache.Bcache.create ~engine:e ~driver:drv
      { Su_cache.Bcache.capacity_frags = 1024; cb = false;
        copy_cost = (fun _ -> ()); sink = None }
  in
  let raised = ref false in
  let _p =
    Proc.spawn e (fun () ->
        let b =
          Su_cache.Bcache.getblk bc ~lbn:310 ~nfrags:1 ~init:(fun () ->
              Su_cache.Buf.Cdata (Array.make 1 (Some Types.Zeroed)))
        in
        (try Su_cache.Bcache.bwrite_sync bc b with
         | Su_cache.Bcache.Io_error (Fault.Bad_sector { lbn }) ->
           Alcotest.(check int) "cause lbn" 310 lbn;
           raised := true);
        Su_cache.Bcache.release bc b)
  in
  Engine.run e;
  Alcotest.(check bool) "typed error raised" true !raised

let suite =
  [
    Alcotest.test_case "no model, no faults" `Quick test_none_is_silent;
    Alcotest.test_case "transient rates" `Quick test_transient_rates;
    Alcotest.test_case "torn write applies a prefix" `Quick
      test_torn_write_applies_prefix;
    Alcotest.test_case "write observer" `Quick
      test_write_observer_sees_applied_extents;
    Alcotest.test_case "driver retries transients" `Quick
      test_driver_retries_transients;
    Alcotest.test_case "driver fail-fast on bad sector" `Quick
      test_driver_fail_fast_on_bad_sector;
    Alcotest.test_case "driver timeout" `Quick test_driver_timeout_rejects_stalls;
    Alcotest.test_case "cache re-dirties failed write" `Quick
      test_cache_redirties_failed_write;
    Alcotest.test_case "cache sync io error typed" `Quick
      test_cache_sync_io_error_typed;
  ]
