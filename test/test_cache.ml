(* Tests for the buffer cache and syncer daemon. *)
open Su_sim
open Su_fstypes
open Su_cache

type world = {
  e : Engine.t;
  disk : Su_disk.Disk.t;
  drv : Su_driver.Driver.t;
  bc : Bcache.t;
}

let mk ?(cb = false) ?(capacity = 1024) () =
  let e = Engine.create () in
  let disk =
    Su_disk.Disk.create ~engine:e ~params:Su_disk.Disk_params.hp_c2447
      ~nfrags:65536 ()
  in
  let drv = Su_driver.Driver.create ~engine:e ~disk Su_driver.Driver.default_config in
  let bc =
    Bcache.create ~engine:e ~driver:drv
      { Bcache.capacity_frags = capacity; cb; copy_cost = (fun _ -> ());
        sink = None }
  in
  { e; disk; drv; bc }

let data_content n stamp = Buf.Cdata (Array.make n (Some stamp))

let stampw inum = Types.Written { inum; gen = 1; flbn = 0 }

let in_proc w f =
  let result = ref None in
  let _p = Proc.spawn w.e (fun () -> result := Some (f ())) in
  Engine.run w.e;
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "process did not finish"

let test_getblk_and_lookup () =
  let w = mk () in
  in_proc w (fun () ->
      let b =
        Bcache.getblk w.bc ~lbn:100 ~nfrags:4 ~init:(fun () ->
            data_content 4 (stampw 1))
      in
      Alcotest.(check bool) "cached" true
        (match Bcache.lookup w.bc 100 with Some b' -> b' == b | None -> false);
      Alcotest.(check int) "used frags" 4 (Bcache.used_frags w.bc);
      Bcache.release w.bc b)

let test_write_read_roundtrip () =
  let w = mk () in
  in_proc w (fun () ->
      let b =
        Bcache.getblk w.bc ~lbn:200 ~nfrags:2 ~init:(fun () ->
            data_content 2 (stampw 5))
      in
      Bcache.bwrite_sync w.bc b;
      Bcache.release w.bc b;
      Bcache.invalidate w.bc b;
      (* read back from disk *)
      let b2 = Bcache.bread w.bc ~lbn:200 ~nfrags:2 in
      (match b2.Buf.content with
       | Buf.Cdata d ->
         Alcotest.(check bool) "stamp back" true (d.(0) = Some (stampw 5))
       | Buf.Cmeta _ -> Alcotest.fail "expected data");
      Bcache.release w.bc b2)

let test_bread_caches () =
  let w = mk () in
  in_proc w (fun () ->
      Su_disk.Disk.install w.disk 300 (Types.Frag Types.Zeroed);
      let b1 = Bcache.bread w.bc ~lbn:300 ~nfrags:1 in
      let before = Su_disk.Disk.requests_serviced w.disk in
      let b2 = Bcache.bread w.bc ~lbn:300 ~nfrags:1 in
      Alcotest.(check int) "no second disk read" before
        (Su_disk.Disk.requests_serviced w.disk);
      Alcotest.(check bool) "same buffer" true (b1 == b2);
      Bcache.release w.bc b1;
      Bcache.release w.bc b2)

let test_delayed_write_stays_dirty () =
  let w = mk () in
  in_proc w (fun () ->
      let b =
        Bcache.getblk w.bc ~lbn:400 ~nfrags:1 ~init:(fun () ->
            data_content 1 (stampw 9))
      in
      Bcache.bdwrite w.bc b;
      Alcotest.(check int) "one dirty" 1 (Bcache.dirty_count w.bc);
      Alcotest.(check bool) "disk untouched" true
        (Su_disk.Disk.peek w.disk 400 = Types.Empty);
      Bcache.release w.bc b)

let test_syncer_flushes () =
  let w = mk () in
  let syn = Syncer.start ~engine:w.e ~cache:w.bc ~interval:1.0 ~passes:2 () in
  ignore
    (Proc.spawn w.e (fun () ->
         let b =
           Bcache.getblk w.bc ~lbn:500 ~nfrags:1 ~init:(fun () ->
               data_content 1 (stampw 3))
         in
         Bcache.bdwrite w.bc b;
         Bcache.release w.bc b));
  Engine.run ~until:10.0 w.e;
  Syncer.stop syn;
  Alcotest.(check bool) "flushed by syncer" true
    (Su_disk.Disk.peek w.disk 500 <> Types.Empty);
  Alcotest.(check int) "clean now" 0 (Bcache.dirty_count w.bc);
  Alcotest.(check bool) "syncer wrote it" true (Syncer.writes_issued syn >= 1)

let test_write_lock_blocks_updater () =
  let w = mk ~cb:false () in
  let modified_at = ref 0.0 and completed_at = ref 0.0 in
  ignore
    (Proc.spawn w.e (fun () ->
         let b =
           Bcache.getblk w.bc ~lbn:600 ~nfrags:1 ~init:(fun () ->
               data_content 1 (stampw 1))
         in
         ignore
           (Bcache.bawrite
              ~notify:(fun _ -> completed_at := Engine.now w.e)
              w.bc b);
         (* now try to modify: must wait for the write to finish *)
         Bcache.prepare_modify w.bc b;
         modified_at := Engine.now w.e;
         Bcache.release w.bc b));
  Engine.run w.e;
  Alcotest.(check bool) "write completed" true (!completed_at > 0.0);
  Alcotest.(check bool) "updater waited" true (!modified_at >= !completed_at)

let test_cb_does_not_block_updater () =
  let w = mk ~cb:true () in
  let modified_at = ref infinity and completed_at = ref 0.0 in
  ignore
    (Proc.spawn w.e (fun () ->
         let b =
           Bcache.getblk w.bc ~lbn:700 ~nfrags:1 ~init:(fun () ->
               data_content 1 (stampw 1))
         in
         ignore
           (Bcache.bawrite
              ~notify:(fun _ -> completed_at := Engine.now w.e)
              w.bc b);
         Bcache.prepare_modify w.bc b;
         modified_at := Engine.now w.e;
         Bcache.release w.bc b));
  Engine.run w.e;
  Alcotest.(check bool) "updater did not wait" true (!modified_at < !completed_at)

let test_snapshot_payload () =
  (* with -CB, mutating the buffer right after issue must not change
     what lands on disk *)
  let w = mk ~cb:true () in
  in_proc w (fun () ->
      let b =
        Bcache.getblk w.bc ~lbn:800 ~nfrags:1 ~init:(fun () ->
            data_content 1 (stampw 1))
      in
      let iv : unit Proc.Ivar.t = Proc.Ivar.create w.e in
      ignore (Bcache.bawrite ~notify:(fun _ -> Proc.Ivar.fill iv ()) w.bc b);
      (match b.Buf.content with
       | Buf.Cdata d -> d.(0) <- Some (stampw 99)
       | Buf.Cmeta _ -> ());
      Proc.Ivar.read iv;
      (match Su_disk.Disk.peek w.disk 800 with
       | Types.Frag (Types.Written ww) ->
         Alcotest.(check int) "snapshot written" 1 ww.inum
       | _ -> Alcotest.fail "unexpected cell");
      Bcache.release w.bc b)

let test_eviction_lru () =
  let w = mk ~capacity:8 () in
  in_proc w (fun () ->
      let mk_buf lbn =
        let b =
          Bcache.getblk w.bc ~lbn ~nfrags:4 ~init:(fun () ->
              data_content 4 (stampw lbn))
        in
        Bcache.release w.bc b
      in
      mk_buf 0;
      mk_buf 100;
      (* cache full (8 frags); next alloc must evict lbn 0 (LRU) *)
      mk_buf 200;
      Alcotest.(check bool) "lru evicted" true (Bcache.lookup w.bc 0 = None);
      Alcotest.(check bool) "recent kept" true (Bcache.lookup w.bc 100 <> None))

let test_eviction_writes_dirty () =
  let w = mk ~capacity:8 () in
  in_proc w (fun () ->
      let b =
        Bcache.getblk w.bc ~lbn:0 ~nfrags:4 ~init:(fun () ->
            data_content 4 (stampw 7))
      in
      Bcache.bdwrite w.bc b;
      Bcache.release w.bc b;
      let b2 =
        Bcache.getblk w.bc ~lbn:100 ~nfrags:4 ~init:(fun () ->
            data_content 4 (stampw 8))
      in
      Bcache.bdwrite w.bc b2;
      Bcache.release w.bc b2;
      (* both dirty: forces eviction of dirty LRU lbn 0, written first *)
      let b3 =
        Bcache.getblk w.bc ~lbn:200 ~nfrags:4 ~init:(fun () ->
            data_content 4 (stampw 9))
      in
      Bcache.release w.bc b3;
      Alcotest.(check bool) "dirty victim reached disk" true
        (Su_disk.Disk.peek w.disk 0 <> Types.Empty))

let test_sticky_not_evicted () =
  let w = mk ~capacity:8 () in
  in_proc w (fun () ->
      let b =
        Bcache.getblk w.bc ~lbn:0 ~nfrags:4 ~init:(fun () ->
            data_content 4 (stampw 7))
      in
      b.Buf.sticky <- true;
      Bcache.release w.bc b;
      let b2 =
        Bcache.getblk w.bc ~lbn:100 ~nfrags:4 ~init:(fun () ->
            data_content 4 (stampw 8))
      in
      Bcache.release w.bc b2;
      let b3 =
        Bcache.getblk w.bc ~lbn:200 ~nfrags:4 ~init:(fun () ->
            data_content 4 (stampw 9))
      in
      Bcache.release w.bc b3;
      Alcotest.(check bool) "sticky survived" true (Bcache.lookup w.bc 0 <> None);
      Alcotest.(check bool) "non-sticky evicted" true (Bcache.lookup w.bc 100 = None))

let test_lru_lists_track_state () =
  let w = mk ~capacity:1024 () in
  in_proc w (fun () ->
      let get lbn =
        let b =
          Bcache.getblk w.bc ~lbn ~nfrags:1 ~init:(fun () ->
              data_content 1 (stampw lbn))
        in
        Bcache.release w.bc b;
        b
      in
      let b10 = get 10 in
      let b20 = get 20 in
      let b30 = get 30 in
      ignore b30;
      Alcotest.(check (list int)) "clean in use order" [ 10; 20; 30 ]
        (Bcache.lru_keys w.bc ~dirty:false);
      Alcotest.(check (list int)) "dirty empty" []
        (Bcache.lru_keys w.bc ~dirty:true);
      (* re-using a buffer moves it to the most-recent end *)
      ignore (get 10);
      Alcotest.(check (list int)) "touched moved last" [ 20; 30; 10 ]
        (Bcache.lru_keys w.bc ~dirty:false);
      (* dirtying migrates to the dirty list at its recency position *)
      Bcache.bdwrite w.bc b20;
      Bcache.bdwrite w.bc b10;
      Alcotest.(check (list int)) "clean remainder" [ 30 ]
        (Bcache.lru_keys w.bc ~dirty:false);
      Alcotest.(check (list int)) "dirty keeps recency order" [ 20; 10 ]
        (Bcache.lru_keys w.bc ~dirty:true);
      (* flushing migrates back into the clean list by recency *)
      Bcache.sync_all w.bc;
      Alcotest.(check (list int)) "dirty empty again" []
        (Bcache.lru_keys w.bc ~dirty:true);
      Alcotest.(check (list int)) "clean merged by recency" [ 20; 30; 10 ]
        (Bcache.lru_keys w.bc ~dirty:false);
      (* invalidation detaches from the lists *)
      Bcache.invalidate w.bc b20;
      Alcotest.(check (list int)) "invalidated gone" [ 30; 10 ]
        (Bcache.lru_keys w.bc ~dirty:false))

let test_pick_victim_skips_busy () =
  let w = mk ~capacity:1024 () in
  in_proc w (fun () ->
      let get lbn =
        let b =
          Bcache.getblk w.bc ~lbn ~nfrags:1 ~init:(fun () ->
              data_content 1 (stampw lbn))
        in
        Bcache.release w.bc b;
        b
      in
      let b1 = get 10 in
      let b2 = get 20 in
      let b3 = get 30 in
      let b4 = get 40 in
      let victim () =
        match Bcache.pick_victim w.bc with
        | Some b -> b.Buf.key
        | None -> -1
      in
      Alcotest.(check int) "lru victim first" 10 (victim ());
      b1.Buf.refcount <- 1;
      Alcotest.(check int) "referenced skipped" 20 (victim ());
      b2.Buf.sticky <- true;
      Alcotest.(check int) "sticky skipped" 30 (victim ());
      (* clean buffers are preferred over older dirty ones *)
      Bcache.bdwrite w.bc b3;
      Alcotest.(check int) "clean preferred over older dirty" 40 (victim ());
      Bcache.bdwrite w.bc b4;
      Alcotest.(check int) "lru dirty fallback" 30 (victim ());
      (* an in-flight write pins the buffer *)
      b3.Buf.io_count <- 1;
      Alcotest.(check int) "in-flight skipped" 40 (victim ());
      b4.Buf.io_count <- 1;
      Alcotest.(check int) "nothing evictable" (-1) (victim ());
      b3.Buf.io_count <- 0;
      b4.Buf.io_count <- 0;
      b1.Buf.refcount <- 0;
      Bcache.sync_all w.bc)

let test_sync_all () =
  let w = mk () in
  in_proc w (fun () ->
      for i = 0 to 9 do
        let b =
          Bcache.getblk w.bc ~lbn:(i * 8) ~nfrags:8 ~init:(fun () ->
              data_content 8 (stampw i))
        in
        Bcache.bdwrite w.bc b;
        Bcache.release w.bc b
      done;
      Bcache.sync_all w.bc;
      Alcotest.(check int) "all clean" 0 (Bcache.dirty_count w.bc);
      for i = 0 to 9 do
        Alcotest.(check bool) "on disk" true
          (Su_disk.Disk.peek w.disk (i * 8) <> Types.Empty)
      done)

let test_workitems_run_by_syncer () =
  let w = mk () in
  let syn = Syncer.start ~engine:w.e ~cache:w.bc () in
  let ran = ref false in
  Bcache.add_workitem w.bc (fun () -> ran := true);
  Engine.run ~until:2.5 w.e;
  Syncer.stop syn;
  Alcotest.(check bool) "workitem ran" true !ran;
  Alcotest.(check int) "counted" 1 (Syncer.workitems_run syn)

let test_pre_write_hook_rollback () =
  (* a pre_write hook that redacts the payload and keeps the buffer
     dirty, as soft updates does *)
  let w = mk () in
  let hooks = Bcache.hooks w.bc in
  hooks.Bcache.pre_write <-
    (fun _b -> (Buf.Cdata [| Some Types.Zeroed |], true));
  in_proc w (fun () ->
      let b =
        Bcache.getblk w.bc ~lbn:900 ~nfrags:1 ~init:(fun () ->
            data_content 1 (stampw 5))
      in
      Bcache.bdwrite w.bc b;
      ignore (Bcache.bawrite w.bc b);
      Bcache.wait_write w.bc b;
      Alcotest.(check bool) "rolled back on disk" true
        (Su_disk.Disk.peek w.disk 900 = Types.Frag Types.Zeroed);
      Alcotest.(check bool) "still dirty" true b.Buf.dirty;
      Bcache.release w.bc b)

let test_copy_memory_pressure () =
  (* with -CB, in-flight snapshots consume memory: once they exceed
     the budget, further writers must wait for completions *)
  let w = mk ~cb:true ~capacity:16 () in
  let issued = ref 0 in
  ignore
    (Proc.spawn w.e (fun () ->
         (* 4 extents of 8 frags: the third bawrite exceeds the 16-frag
            budget and must wait for a completion *)
         for i = 0 to 3 do
           let b =
             Bcache.getblk w.bc ~lbn:(i * 1000) ~nfrags:8 ~init:(fun () ->
                 data_content 8 (stampw i))
           in
           Bcache.bdwrite w.bc b;
           ignore (Bcache.bawrite w.bc b);
           incr issued;
           Bcache.release w.bc b
         done));
  Engine.run ~until:0.0001 w.e;
  Alcotest.(check int) "third writer throttled" 2 !issued;
  Engine.run w.e;
  Alcotest.(check int) "all eventually issued" 4 !issued

let suite =
  [
    Alcotest.test_case "getblk and lookup" `Quick test_getblk_and_lookup;
    Alcotest.test_case "copy memory pressure" `Quick test_copy_memory_pressure;
    Alcotest.test_case "write/read roundtrip" `Quick test_write_read_roundtrip;
    Alcotest.test_case "bread caches" `Quick test_bread_caches;
    Alcotest.test_case "delayed write stays dirty" `Quick
      test_delayed_write_stays_dirty;
    Alcotest.test_case "syncer flushes" `Quick test_syncer_flushes;
    Alcotest.test_case "write lock blocks updater" `Quick
      test_write_lock_blocks_updater;
    Alcotest.test_case "cb does not block" `Quick test_cb_does_not_block_updater;
    Alcotest.test_case "snapshot payload" `Quick test_snapshot_payload;
    Alcotest.test_case "eviction lru" `Quick test_eviction_lru;
    Alcotest.test_case "eviction writes dirty" `Quick test_eviction_writes_dirty;
    Alcotest.test_case "sticky not evicted" `Quick test_sticky_not_evicted;
    Alcotest.test_case "lru lists track state" `Quick test_lru_lists_track_state;
    Alcotest.test_case "pick_victim skips busy" `Quick test_pick_victim_skips_busy;
    Alcotest.test_case "sync_all" `Quick test_sync_all;
    Alcotest.test_case "workitems run" `Quick test_workitems_run_by_syncer;
    Alcotest.test_case "pre_write rollback" `Quick test_pre_write_hook_rollback;
  ]
