(* The crash-state explorer: exhaustive write-boundary + torn-state
   sweeps, the crash_points/torn_variants helpers, fsck repair
   convergence under random corruption, and crash safety with NVRAM
   destaging in flight. *)
open Su_sim
open Su_fstypes
open Su_fs
open Su_check

let sweep_cfg scheme =
  {
    (Fs.config ~scheme ()) with
    Fs.geom = Geom.v ~mb:32 ~cg_mb:16 ~inodes_per_cg:1024 ();
    cache_mb = 4;
    journal_mb = 2;
  }

let show_failures s =
  List.iter
    (fun (v : Explorer.verdict) ->
      if
        v.Explorer.v_pre_violations > 0
        || v.Explorer.v_post_violations > 0
        || (not v.Explorer.v_repair_converged)
        || not v.Explorer.v_remount_ok
      then
        Printf.eprintf
          "[%s/%s] k=%d torn=%s pre=%d post=%d converged=%b remount=%b\n%!"
          (Fs.scheme_kind_name s.Explorer.s_scheme)
          s.Explorer.s_workload v.Explorer.v_boundary
          (match v.Explorer.v_torn with
           | None -> "-"
           | Some a -> string_of_int a)
          v.Explorer.v_pre_violations v.Explorer.v_post_violations
          v.Explorer.v_repair_converged v.Explorer.v_remount_ok)
    s.Explorer.s_verdicts

let test_sweep_consistent scheme wl () =
  let s = Explorer.sweep ~cfg:(sweep_cfg scheme) wl in
  if not (Explorer.consistent s) then show_failures s;
  Alcotest.(check bool)
    (Printf.sprintf "%s/%s states explored" (Fs.scheme_kind_name scheme)
       wl.Explorer.wl_name)
    true
    (s.Explorer.s_states > s.Explorer.s_writes && s.Explorer.s_torn_states > 0);
  Alcotest.(check bool)
    (Printf.sprintf "%s/%s consistent at every crash state"
       (Fs.scheme_kind_name scheme) wl.Explorer.wl_name)
    true (Explorer.consistent s)

let test_no_order_violates_but_repairs () =
  let s = Explorer.sweep ~cfg:(sweep_cfg Fs.No_order) Explorer.smallfiles in
  Alcotest.(check bool) "violations found" true (s.Explorer.s_dirty_states > 0);
  if not (Explorer.repairable s) then show_failures s;
  Alcotest.(check bool) "every state repaired, remounted, stayed clean" true
    (Explorer.repairable s)

(* --- crash_points / torn_variants helpers ------------------------------ *)

let traced_world () =
  let cfg =
    { (sweep_cfg Fs.Soft_updates) with Fs.keep_trace_records = true }
  in
  let w = Fs.make cfg in
  (cfg, w)

let run_recorded () =
  let _cfg, w = traced_world () in
  ignore
    (Proc.spawn w.Fs.engine ~name:"controller" (fun () ->
         let h =
           Proc.spawn w.Fs.engine ~name:"wl" (fun () ->
               Explorer.smallfiles.Explorer.wl_run w.Fs.st)
         in
         Proc.join_all w.Fs.engine [ h ];
         Fs.stop w;
         Su_driver.Driver.quiesce w.Fs.driver;
         Engine.stop w.Fs.engine));
  Engine.run w.Fs.engine;
  Su_driver.Driver.trace w.Fs.driver

let test_crash_points_enumerates_completions () =
  let tr = run_recorded () in
  let pts = Crash.crash_points tr in
  Alcotest.(check bool) "non-empty" true (pts <> []);
  Alcotest.(check bool) "ascending and distinct" true
    (List.for_all2 (fun a b -> a < b)
       (List.filteri (fun i _ -> i < List.length pts - 1) pts)
       (List.tl pts));
  let writes =
    List.filter
      (fun (r : Su_driver.Trace.record) -> r.Su_driver.Trace.r_kind = Su_driver.Request.Write)
      (Su_driver.Trace.records tr)
  in
  Alcotest.(check bool) "no more points than writes" true
    (List.length pts <= List.length writes)

let test_torn_variants_mid_write () =
  (* find a multi-fragment write in a recorded twin run, then crash a
     fresh world in the middle of that write: every proper prefix of
     the in-flight payload is a reachable torn state, and soft updates
     must keep all of them violation-free *)
  let tr = run_recorded () in
  let mid =
    let rec pick = function
      | [] -> Alcotest.fail "no multi-fragment write in the trace"
      | (r : Su_driver.Trace.record) :: rest ->
        if
          r.Su_driver.Trace.r_kind = Su_driver.Request.Write
          && r.Su_driver.Trace.r_nfrags > 1
          && r.Su_driver.Trace.r_complete > r.Su_driver.Trace.r_start
        then (r.Su_driver.Trace.r_start +. r.Su_driver.Trace.r_complete) /. 2.0
        else pick rest
    in
    pick (Su_driver.Trace.records tr)
  in
  let _cfg, w = traced_world () in
  ignore
    (Proc.spawn w.Fs.engine ~name:"wl" (fun () ->
         Explorer.smallfiles.Explorer.wl_run w.Fs.st));
  let base = Crash.crash_at w mid in
  (match Su_disk.Disk.inflight_write w.Fs.disk with
   | None -> Alcotest.fail "expected a write in flight at the crash instant"
   | Some (_, payload) ->
     let variants = Crash.torn_variants w base in
     Alcotest.(check int) "one variant per proper prefix"
       (Array.length payload - 1)
       (List.length variants);
     List.iter
       (fun img ->
         let r = Crash.fsck_image w img in
         if not (Fsck.ok r) then
           List.iter
             (fun v -> Format.eprintf "torn: %a@." Fsck.pp_violation v)
             r.Fsck.violations;
         Alcotest.(check bool) "torn state consistent" true (Fsck.ok r))
       variants)

(* --- delta-log crash-state materialization ----------------------------- *)

let smallfiles_recording =
  lazy (Explorer.record ~cfg:(sweep_cfg Fs.Soft_updates) Explorer.smallfiles)

(* The reference reconstruction the delta log replaced: replay the
   post-images forward into a private base and take a full deep copy
   per state, plus the torn-prefix overlay. *)
let reconstruct_deepcopy (r : Explorer.recording) (boundary, torn) =
  let img = Array.map Types.copy_cell r.Explorer.rec_initial in
  for k = 0 to boundary - 1 do
    let d = r.Explorer.rec_deltas.(k) in
    Array.iteri (fun i c -> img.(d.Delta.d_lbn + i) <- Types.copy_cell c)
      d.Delta.d_post
  done;
  (match torn with
   | None -> ()
   | Some applied ->
     let d = r.Explorer.rec_deltas.(boundary) in
     for i = 0 to applied - 1 do
       img.(d.Delta.d_lbn + i) <- Types.copy_cell d.Delta.d_post.(i)
     done);
  img

let test_materialize_matches_deepcopy () =
  (* every crash state — all boundaries, all torn prefixes — comes out
     of the delta cursor structurally equal to a from-scratch replay *)
  let r = Lazy.force smallfiles_recording in
  let states = Explorer.crash_states r in
  Alcotest.(check bool) "plenty of states" true (Array.length states > 20);
  let cur = Delta.cursor ~initial:r.Explorer.rec_initial ~log:r.Explorer.rec_deltas in
  Array.iter
    (fun ((boundary, torn) as state) ->
      let via_delta = Explorer.materialize cur state in
      let via_copy = reconstruct_deepcopy r state in
      Alcotest.(check bool)
        (Printf.sprintf "state k=%d torn=%s equal" boundary
           (match torn with None -> "-" | Some a -> string_of_int a))
        true
        (via_delta = via_copy))
    states;
  (* and the cursor still seeks backwards correctly after the sweep *)
  Delta.seek cur 0;
  Alcotest.(check bool) "rewound to the initial image" true
    (Delta.image cur = r.Explorer.rec_initial)

let test_crash_states_cap () =
  let r = Lazy.force smallfiles_recording in
  let n = Array.length r.Explorer.rec_deltas in
  let full = Explorer.crash_states r in
  let capped = Explorer.crash_states ~max_boundaries:5 r in
  Alcotest.(check bool) "cap shrinks the sweep" true
    (Array.length capped < Array.length full);
  Array.iter
    (fun (k, _) -> Alcotest.(check bool) "within cap" true (k <= 5))
    capped;
  let uncapped = Explorer.crash_states ~max_boundaries:(n + 100) r in
  Alcotest.(check int) "oversized cap is the full sweep"
    (Array.length full) (Array.length uncapped);
  let no_torn = Explorer.crash_states ~torn:false r in
  Alcotest.(check int) "boundaries only" (n + 1) (Array.length no_torn)

(* Random write sequences over a small image: applying all deltas
   forward then undoing them all must restore the exact initial image,
   and any interleaving of seeks lands on the same state as a replay. *)
let prop_delta_apply_undo =
  QCheck.Test.make ~name:"delta apply/undo round-trips random sequences"
    ~count:60
    QCheck.(pair (int_bound 100000) (int_range 1 40))
    (fun (seed, nwrites) ->
      let rng = Su_util.Rng.create seed in
      let size = 64 in
      let img =
        Array.init size (fun i ->
            if i mod 3 = 0 then Types.Empty else Types.Frag Types.Zeroed)
      in
      let log =
        Array.init nwrites (fun _ ->
            let nfrags = 1 + Su_util.Rng.int rng 4 in
            let lbn = Su_util.Rng.int rng (size - nfrags) in
            let pre = Array.init nfrags (fun i -> Types.copy_cell img.(lbn + i)) in
            let post =
              Array.init nfrags (fun _ ->
                  if Su_util.Rng.int rng 2 = 0 then Types.Empty
                  else Types.Frag Types.Zeroed)
            in
            let d = Delta.v ~lbn ~pre ~post in
            Delta.apply img d;
            d)
      in
      (* rebuild the initial image by undoing in reverse *)
      let back = Array.map Types.copy_cell img in
      for k = nwrites - 1 downto 0 do
        Delta.undo back log.(k)
      done;
      let initial =
        Array.init size (fun i ->
            if i mod 3 = 0 then Types.Empty else Types.Frag Types.Zeroed)
      in
      back = initial
      &&
      (* a cursor seeking to random positions matches a fresh forward
         replay to the same position *)
      let cur = Delta.cursor ~initial ~log in
      List.for_all
        (fun _ ->
          let k = Su_util.Rng.int rng (nwrites + 1) in
          Delta.seek cur k;
          let replay = Array.map Types.copy_cell initial in
          for j = 0 to k - 1 do
            Delta.apply replay log.(j)
          done;
          Delta.image cur = replay)
        [ (); (); (); (); () ])

let test_sweep_jobs_deterministic () =
  (* the same recording swept serially and over the pool yields the
     same verdicts in the same order *)
  let cfg = sweep_cfg Fs.Soft_updates in
  let r = Lazy.force smallfiles_recording in
  let s1 =
    Explorer.sweep_recording ~jobs:1 ~cfg ~workload:"smallfiles" r
  in
  let s2 =
    Explorer.sweep_recording ~jobs:2 ~cfg ~workload:"smallfiles" r
  in
  Alcotest.(check bool) "identical summaries" true (s1 = s2);
  Alcotest.(check int) "verdict count" s1.Explorer.s_states
    (List.length s2.Explorer.s_verdicts)

(* --- fsck repair convergence under random corruption ------------------- *)

let base_image =
  lazy
    (let cfg = sweep_cfg Fs.Soft_updates in
     let r = Explorer.record ~cfg Explorer.smallfiles in
     let cur =
       Delta.cursor ~initial:r.Explorer.rec_initial ~log:r.Explorer.rec_deltas
     in
     Delta.seek cur (Array.length r.Explorer.rec_deltas);
     let img = Array.map Types.copy_cell (Delta.image cur) in
     (cfg.Fs.geom, img))

let corrupt rng img =
  let n = Array.length img in
  let hits = 1 + Su_util.Rng.int rng 8 in
  for _ = 1 to hits do
    let lbn = Su_util.Rng.int rng n in
    match Su_util.Rng.int rng 4, img.(lbn) with
    | 0, _ -> img.(lbn) <- Types.Empty
    | 1, Types.Meta (Types.Dir entries) ->
      let slot = Su_util.Rng.int rng (Array.length entries) in
      entries.(slot) <-
        Some { Types.name = "zz"; inum = Su_util.Rng.int rng 2048 }
    | 2, Types.Meta (Types.Inodes ds) ->
      let d = ds.(Su_util.Rng.int rng (Array.length ds)) in
      d.Types.nlink <- Su_util.Rng.int rng 5;
      d.Types.db.(0) <- Su_util.Rng.int rng n
    | 3, _ -> img.(lbn) <- Types.Frag Types.Zeroed
    | _, _ -> ()
  done

let prop_repair_converges =
  QCheck.Test.make ~name:"fsck repair converges on randomly corrupted images"
    ~count:40 QCheck.(int_bound 100000)
    (fun seed ->
      let geom, base = Lazy.force base_image in
      let img = Array.map Types.copy_cell base in
      corrupt (Su_util.Rng.create seed) img;
      let outcome = Fsck.repair ~geom ~image:img ~check_exposure:false () in
      if not (outcome.Fsck.converged && Fsck.ok outcome.Fsck.final) then begin
        Printf.eprintf "[seed=%d] converged=%b rounds=%d\n%!" seed
          outcome.Fsck.converged outcome.Fsck.rounds;
        List.iter
          (fun v -> Format.eprintf "  residual: %a@." Fsck.pp_violation v)
          outcome.Fsck.final.Fsck.violations;
        false
      end
      else true)

(* --- NVRAM destage ----------------------------------------------------- *)

let test_crash_during_nvram_destage () =
  (* with a small NVRAM front the churny workload keeps the destage
     pump busy; crashing at any instant — including mid-destage — must
     leave a consistent image (acceptance made the data durable) *)
  List.iter
    (fun t ->
      let cfg = { (sweep_cfg Fs.Soft_updates) with Fs.nvram_mb = 1 } in
      let w = Fs.make cfg in
      ignore
        (Proc.spawn w.Fs.engine ~name:"wl" (fun () ->
             Explorer.smallfiles.Explorer.wl_run w.Fs.st));
      let r = Crash.crash_and_check w t in
      if not (Fsck.ok r) then
        List.iter
          (fun v -> Format.eprintf "[nvram t=%.2f] %a@." t Fsck.pp_violation v)
          r.Fsck.violations;
      Alcotest.(check bool)
        (Printf.sprintf "consistent at %.2fs" t)
        true (Fsck.ok r))
    [ 0.02; 0.05; 0.1; 0.2; 0.5; 1.0 ]

(* --- full-stack fault shakedown ---------------------------------------- *)

let test_shakedown_rides_out_transients () =
  let cfg =
    {
      (sweep_cfg Fs.Soft_updates) with
      Fs.fault = Su_disk.Fault.transient ~seed:97 ~rate:0.1 ();
    }
  in
  let s = Explorer.fault_shakedown ~cfg Explorer.smallfiles in
  Alcotest.(check bool) "faults injected" true (s.Explorer.f_injected > 0);
  Alcotest.(check bool) "retries used" true (s.Explorer.f_retries > 0);
  Alcotest.(check int) "no request failed outright" 0 s.Explorer.f_failures;
  Alcotest.(check int) "no write abandoned at the cache" 0
    s.Explorer.f_cache_failures;
  Alcotest.(check bool) "workload completed" true s.Explorer.f_completed;
  Alcotest.(check bool) "final image consistent" true s.Explorer.f_consistent

(* --- rename crash-state coverage --------------------------------------- *)

let ordered_schemes =
  [
    Fs.Conventional;
    Fs.Scheduler_flag;
    Fs.Scheduler_chains { barrier_dealloc = false };
    Fs.Soft_updates;
    Fs.Journaled { group_commit = false };
  ]

let rename_sweep_cases =
  List.concat_map
    (fun scheme ->
      List.map
        (fun wl ->
          Alcotest.test_case
            (Printf.sprintf "sweep: %s / %s" (Fs.scheme_kind_name scheme)
               wl.Explorer.wl_name)
            `Slow
            (test_sweep_consistent scheme wl))
        [ Explorer.renamefile; Explorer.renamedir ])
    ordered_schemes

(* --- the nested, crash-during-recovery sweep ---------------------------- *)

let test_nested_consistent scheme wl () =
  let s = Explorer.sweep ~jobs:0 ~nested:true ~cfg:(sweep_cfg scheme) wl in
  if not (Explorer.consistent s) then show_failures s;
  Alcotest.(check bool) "nested states explored" true
    (s.Explorer.s_nested_states > s.Explorer.s_states);
  Alcotest.(check int) "recovery settles at every nested state" 0
    s.Explorer.s_nested_unrecovered;
  Alcotest.(check int) "second recovery round is write-free" 0
    s.Explorer.s_nested_unsettled;
  Alcotest.(check bool) "consistent including nested states" true
    (Explorer.consistent s)

let test_no_order_nested_repairs () =
  let s =
    Explorer.sweep ~jobs:0 ~nested:true ~cfg:(sweep_cfg Fs.No_order)
      Explorer.smallfiles
  in
  Alcotest.(check bool) "violations found" true (s.Explorer.s_dirty_states > 0);
  Alcotest.(check bool) "nested states explored" true
    (s.Explorer.s_nested_states > 0);
  if not (Explorer.repairable s) then show_failures s;
  Alcotest.(check bool) "repairable including crashes during recovery" true
    (Explorer.repairable s)

(* A deliberately non-idempotent repair: each invocation inspects the
   image and writes something different from what it finds, so a
   second recovery round can never be write-free. The nested sweep's
   fixed-point check must flag it. *)
let test_hook_catches_nonidempotent_repair () =
  let lbn_of image = Array.length image - 1 in
  Su_fs.Fsck.repair_test_hook :=
    Some
      (fun image ->
        let lbn = lbn_of image in
        match image.(lbn) with
        | Types.Frag Types.Zeroed -> [ (lbn, Types.Empty) ]
        | _ -> [ (lbn, Types.Frag Types.Zeroed) ]);
  Fun.protect
    ~finally:(fun () -> Su_fs.Fsck.repair_test_hook := None)
    (fun () ->
      let s =
        Explorer.sweep ~torn:false ~max_boundaries:4 ~jobs:0 ~nested:true
          ~cfg:(sweep_cfg Fs.Soft_updates)
          Explorer.smallfiles
      in
      Alcotest.(check bool) "non-idempotent repair caught as unsettled" true
        (s.Explorer.s_nested_unsettled > 0))

let suite =
  [
    Alcotest.test_case "sweep: soft updates / smallfiles" `Quick
      (test_sweep_consistent Fs.Soft_updates Explorer.smallfiles);
    Alcotest.test_case "sweep: soft updates / dirtree" `Quick
      (test_sweep_consistent Fs.Soft_updates Explorer.dirtree);
    Alcotest.test_case "sweep: scheduler chains / smallfiles" `Slow
      (test_sweep_consistent
         (Fs.Scheduler_chains { barrier_dealloc = false })
         Explorer.smallfiles);
    Alcotest.test_case "sweep: journaled / smallfiles" `Slow
      (test_sweep_consistent (Fs.Journaled { group_commit = false })
         Explorer.smallfiles);
    Alcotest.test_case "sweep: no order violates but repairs" `Quick
      test_no_order_violates_but_repairs;
    Alcotest.test_case "delta materialization matches deep copy" `Quick
      test_materialize_matches_deepcopy;
    Alcotest.test_case "crash_states respects max_boundaries" `Quick
      test_crash_states_cap;
    QCheck_alcotest.to_alcotest prop_delta_apply_undo;
    Alcotest.test_case "sweep deterministic across jobs" `Quick
      test_sweep_jobs_deterministic;
    Alcotest.test_case "crash_points enumerates completions" `Quick
      test_crash_points_enumerates_completions;
    Alcotest.test_case "torn variants mid-write" `Quick
      test_torn_variants_mid_write;
    QCheck_alcotest.to_alcotest prop_repair_converges;
    Alcotest.test_case "crash during NVRAM destage" `Quick
      test_crash_during_nvram_destage;
    Alcotest.test_case "fault shakedown" `Quick
      test_shakedown_rides_out_transients;
  ]
  @ rename_sweep_cases
  @ [
      Alcotest.test_case "nested sweep: soft updates / renamedir" `Slow
        (test_nested_consistent Fs.Soft_updates Explorer.renamedir);
      Alcotest.test_case "nested sweep: journaled / smallfiles" `Slow
        (test_nested_consistent
           (Fs.Journaled { group_commit = false })
           Explorer.smallfiles);
      Alcotest.test_case "nested sweep: no order repairs" `Slow
        test_no_order_nested_repairs;
      Alcotest.test_case "nested sweep flags non-idempotent repair" `Quick
        test_hook_catches_nonidempotent_repair;
    ]
