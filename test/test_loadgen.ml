(* Load-engine contract tests: the report is a pure function of the
   configuration (byte-identical at any --jobs), every load shape
   completes, inconsistent configs are rejected, and the CLI holds the
   exit-code conventions scripts rely on (124 for bad usage, 1 for a
   failed throughput floor). *)
open Su_fs
module Loadgen = Su_workload.Loadgen
module Json = Su_obs.Json

let tiny ?(shards = 1) ?(shape = Loadgen.Fixed) () =
  {
    (Loadgen.config ~scheme:Fs.Soft_updates ()) with
    Loadgen.clients = 24;
    rate = 0.5;
    shape;
    duration = 5.0;
    warmup = 1.0;
    files_per_client = 3;
    shards;
  }

(* --- determinism --------------------------------------------------------- *)

let render cfg r =
  ( Su_util.Text_table.render (Loadgen.report_table cfg r),
    Json.to_string (Loadgen.report_json cfg r) )

let test_jobs_invariance () =
  let cfg = tiny ~shards:2 ~shape:Loadgen.Rampup () in
  let r1 = Loadgen.run ~jobs:1 cfg in
  let r4 = Loadgen.run ~jobs:4 cfg in
  let t1, j1 = render cfg r1 and t4, j4 = render cfg r4 in
  Alcotest.(check string) "table byte-identical" t1 t4;
  Alcotest.(check string) "json byte-identical" j1 j4;
  Alcotest.(check bool) "measured something" true (Loadgen.measured_ops r1 > 0)

let test_shard_merge_counts () =
  (* the merged report counts every shard's window ops *)
  let cfg = tiny ~shards:2 () in
  let r = Loadgen.run cfg in
  let per_class =
    Array.fold_left
      (fun n h -> n + Su_obs.Hist.count h)
      0 r.Loadgen.class_hist
  in
  Alcotest.(check int) "class hists sum to total" per_class
    (Loadgen.measured_ops r);
  Alcotest.(check bool) "executed covers the window" true
    (r.Loadgen.executed >= Loadgen.measured_ops r)

(* --- shapes -------------------------------------------------------------- *)

let test_all_shapes_complete () =
  List.iter
    (fun shape ->
      let cfg = tiny ~shape () in
      let r = Loadgen.run cfg in
      Alcotest.(check bool)
        (Loadgen.shape_name shape ^ " executes ops")
        true (r.Loadgen.executed > 0))
    Loadgen.all_shapes

(* --- validation ---------------------------------------------------------- *)

let rejects name mk =
  match Loadgen.run (mk ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail (name ^ ": expected Invalid_argument")

let test_validation () =
  rejects "zero clients" (fun () -> { (tiny ()) with Loadgen.clients = 0 });
  rejects "zero rate" (fun () -> { (tiny ()) with Loadgen.rate = 0.0 });
  rejects "warmup past duration" (fun () ->
      { (tiny ()) with Loadgen.warmup = 5.0 });
  rejects "more shards than clients" (fun () ->
      { (tiny ()) with Loadgen.shards = 25 })

(* --- CLI ----------------------------------------------------------------- *)

let build_root = Filename.dirname (Filename.dirname Sys.executable_name)
let metasim = Filename.concat (Filename.concat build_root "bin") "metasim.exe"
let sh fmt = Printf.ksprintf (fun cmd -> Sys.command cmd) fmt

let tiny_cli = "--clients 8 --files 2 --rate 0.5 --duration 4 --warmup 1"

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let test_cli_bad_usage () =
  List.iter
    (fun (name, frag) ->
      Alcotest.(check int) name 124
        (sh "%s loadgen %s >/dev/null 2>&1" metasim frag))
    [
      ("zero clients", "--clients 0");
      ("zero rate", "--rate 0");
      ("unknown shape", "--shape diagonal");
      ("unknown arrival", "--arrival bursty");
      ("warmup past duration", "--duration 5 --warmup 5");
      ("shards exceed clients", "--clients 4 --shards 8");
    ]

let test_cli_runs_and_floor () =
  Alcotest.(check int) "tiny run exits 0" 0
    (sh "%s loadgen %s >/dev/null 2>&1" metasim tiny_cli);
  Alcotest.(check int) "generous floor passes" 0
    (sh "%s loadgen %s --min-ops-per-sec 1 >/dev/null 2>&1" metasim tiny_cli);
  Alcotest.(check int) "absurd floor exits 1" 1
    (sh "%s loadgen %s --min-ops-per-sec 1e12 >/dev/null 2>&1" metasim
       tiny_cli)

let test_cli_json_and_jobs () =
  let out1 = Filename.temp_file "loadgen" ".json" in
  let out4 = Filename.temp_file "loadgen" ".json" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove out1;
      Sys.remove out4)
    (fun () ->
      Alcotest.(check int) "json run jobs 1" 0
        (sh "%s loadgen %s --shards 2 --jobs 1 --json > %s 2>/dev/null"
           metasim tiny_cli out1);
      Alcotest.(check int) "json run jobs 4" 0
        (sh "%s loadgen %s --shards 2 --jobs 4 --json > %s 2>/dev/null"
           metasim tiny_cli out4);
      let s1 = read_file out1 in
      Alcotest.(check string) "stdout byte-identical across --jobs" s1
        (read_file out4);
      match Json.parse s1 with
      | Error e -> Alcotest.fail ("bad JSON: " ^ e)
      | Ok doc ->
        Alcotest.(check (option int)) "clients echoed" (Some 8)
          (Option.bind (Json.member "clients" doc) Json.to_int);
        Alcotest.(check bool) "throughput present" true
          (match
             Option.bind
               (Json.member "throughput_ops_per_sec" doc)
               Json.to_float
           with
          | Some f -> f >= 0.0
          | None -> false);
        let classes =
          Option.bind (Json.member "classes" doc) Json.to_list
          |> Option.value ~default:[]
        in
        Alcotest.(check int) "five classes plus all" 6 (List.length classes))

let suite =
  [
    Alcotest.test_case "report invariant under --jobs" `Quick
      test_jobs_invariance;
    Alcotest.test_case "shard merge counts" `Quick test_shard_merge_counts;
    Alcotest.test_case "all shapes complete" `Quick test_all_shapes_complete;
    Alcotest.test_case "config validation" `Quick test_validation;
    Alcotest.test_case "cli bad usage exits 124" `Quick test_cli_bad_usage;
    Alcotest.test_case "cli run + throughput floor" `Quick
      test_cli_runs_and_floor;
    Alcotest.test_case "cli json identical across jobs" `Quick
      test_cli_json_and_jobs;
  ]
