(* The seeded workload fuzzer: deterministic generation, the model
   oracle against the fault-free final image, nested crash sweeps over
   fuzzed workloads, and greedy shrinking down to a minimal
   reproducer. *)
open Su_fstypes
open Su_fs
open Su_workload

let fuzz_cfg scheme =
  {
    (Fs.config ~scheme ()) with
    Fs.geom = Geom.v ~mb:32 ~cg_mb:16 ~inodes_per_cg:1024 ();
    cache_mb = 4;
    journal_mb = 2;
  }

let test_gen_deterministic () =
  let a = Fuzz.gen ~seed:42 ~ops:20 and b = Fuzz.gen ~seed:42 ~ops:20 in
  Alcotest.(check bool) "same seed, same ops" true (a = b);
  Alcotest.(check int) "requested length" 20 (List.length a);
  let c = Fuzz.gen ~seed:43 ~ops:20 in
  Alcotest.(check bool) "different seed, different ops" true (a <> c)

let test_model_skips_are_deterministic () =
  (* replaying the same ops against two fresh models must agree on
     validity op by op — the property that makes any subsequence a
     runnable workload *)
  let ops = Fuzz.gen ~seed:5 ~ops:30 in
  let m1 = Fuzz.Model.create () and m2 = Fuzz.Model.create () in
  List.iter
    (fun op ->
      Alcotest.(check bool)
        (Fuzz.op_to_string op)
        (Fuzz.Model.apply m1 op) (Fuzz.Model.apply m2 op))
    ops

let run_seed ?torn ?max_boundaries ?nested_max_boundaries scheme seed ops_n =
  let ops = Fuzz.gen ~seed ~ops:ops_n in
  let r =
    Fuzz.run_case ?torn ?max_boundaries ?nested_max_boundaries ~jobs:0
      ~cfg:(fuzz_cfg scheme)
      ~name:(Printf.sprintf "fuzz-%d" seed)
      ops
  in
  (ops, r)

let test_case_passes () =
  let _ops, r = run_seed Fs.Soft_updates 7 8 in
  (match Fuzz.failure r with
   | Some why -> Alcotest.failf "seed 7 failed: %s" why
   | None -> ());
  Alcotest.(check int) "oracle agrees with the final image" 0
    (List.length r.Fuzz.cr_mismatches);
  Alcotest.(check bool) "nested states explored" true
    (r.Fuzz.cr_summary.Su_check.Explorer.s_nested_states
    > r.Fuzz.cr_summary.Su_check.Explorer.s_states)

let test_multi_seed_nested () =
  List.iter
    (fun scheme ->
      for seed = 1 to 4 do
        let _ops, r = run_seed scheme seed 6 in
        match Fuzz.failure r with
        | Some why ->
          Alcotest.failf "%s seed %d: %s" (Fs.scheme_kind_name scheme) seed why
        | None -> ()
      done)
    [ Fs.Soft_updates; Fs.Journaled { group_commit = false } ]

let test_shrink_minimal () =
  let ops = Fuzz.gen ~seed:11 ~ops:40 in
  let mkdirs l =
    List.length (List.filter (function Fuzz.Mkdir _ -> true | _ -> false) l)
  in
  (* "fails" iff it contains at least two mkdirs: greedy shrinking must
     strip everything else and exactly the surplus mkdirs *)
  let still_fails l = mkdirs l >= 2 in
  Alcotest.(check bool) "original fails" true (still_fails ops);
  let small = Fuzz.shrink ~still_fails ops in
  Alcotest.(check bool) "shrunk still fails" true (still_fails small);
  Alcotest.(check int) "locally minimal" 2 (List.length small)

(* End to end: a non-idempotent repair makes every crash sweep fail the
   fixed-point check; the fuzzer must notice and shrink the failing
   workload to a minimal reproducer. *)
let test_violation_shrinks () =
  Fsck.repair_test_hook :=
    Some
      (fun image ->
        let lbn = Array.length image - 1 in
        match image.(lbn) with
        | Types.Frag Types.Zeroed -> [ (lbn, Types.Empty) ]
        | _ -> [ (lbn, Types.Frag Types.Zeroed) ]);
  Fun.protect
    ~finally:(fun () -> Fsck.repair_test_hook := None)
    (fun () ->
      let cfg = fuzz_cfg Fs.Soft_updates in
      let case ops =
        Fuzz.run_case ~torn:false ~jobs:0 ~max_boundaries:3
          ~nested_max_boundaries:4 ~cfg ~name:"chaos" ops
      in
      let ops = Fuzz.gen ~seed:3 ~ops:8 in
      Alcotest.(check bool) "violation detected" true
        (Fuzz.failure (case ops) <> None);
      let still_fails l = Fuzz.failure (case l) <> None in
      let small = Fuzz.shrink ~still_fails ops in
      Alcotest.(check bool) "non-empty reproducer within ten ops" true
        (small <> [] && List.length small <= 10);
      Alcotest.(check bool) "reproducer still fails" true (still_fails small))

let suite =
  [
    Alcotest.test_case "gen is deterministic" `Quick test_gen_deterministic;
    Alcotest.test_case "model validity is deterministic" `Quick
      test_model_skips_are_deterministic;
    Alcotest.test_case "fuzz case passes nested sweep and oracle" `Slow
      test_case_passes;
    Alcotest.test_case "multi-seed nested fuzz, soft + journal" `Slow
      test_multi_seed_nested;
    Alcotest.test_case "shrink reaches a local minimum" `Quick
      test_shrink_minimal;
    Alcotest.test_case "violation shrinks to a small reproducer" `Slow
      test_violation_shrinks;
  ]
