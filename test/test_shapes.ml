(* Shape claims over experiment output: checker unit tests on
   synthetic tables, then the real thing — tab1/tab2/fig5 at Quick
   scale, serialised to JSON, parsed back and asserted. *)
open Su_util
module Json = Su_obs.Json
module Shapes = Su_experiments.Shapes

(* --- synthetic tables: the checker itself ------------------------------- *)

let tab2_headers =
  [
    "scheme"; "alloc init"; "elapsed (s)"; "% of No Order"; "CPU (s)";
    "disk requests"; "I/O response (ms)"; "p90 (ms)"; "p99 (ms)";
  ]

(* rows as (scheme, init, pct of no-order, disk requests) *)
let mk_tab2 rows =
  let t = Text_table.create ~title:"Table 2: synthetic" ~headers:tab2_headers in
  List.iter
    (fun (scheme, init, pct, reqs) ->
      Text_table.add_row t
        [
          scheme; init; "1.0"; Printf.sprintf "%.1f" pct; "0.5";
          string_of_int reqs; "10.0"; "20.0"; "30.0";
        ])
    rows;
  t

let healthy_tab2 =
  mk_tab2
    [
      ("No Order", "N", 100.0, 1000);
      ("Conventional", "N", 880.0, 5000);
      ("Scheduler Flag", "N", 140.0, 1500);
      ("Scheduler Chains", "N", 500.0, 2000);
      ("Soft Updates", "N", 64.0, 260);
    ]

let sick_tab2 =
  (* soft updates slower than conventional and issuing more requests *)
  mk_tab2
    [
      ("No Order", "N", 100.0, 1000);
      ("Conventional", "N", 880.0, 5000);
      ("Scheduler Flag", "N", 140.0, 1500);
      ("Scheduler Chains", "N", 500.0, 2000);
      ("Soft Updates", "N", 900.0, 6000);
    ]

let test_checker_passes_healthy () =
  let claims = Shapes.check (Shapes.table_json healthy_tab2) in
  Alcotest.(check bool) "claims found" true (List.length claims > 0);
  List.iter
    (fun (name, ok, detail) ->
      Alcotest.(check bool) (name ^ ": " ^ detail) true ok)
    claims

let test_checker_fails_sick () =
  let claims = Shapes.check (Shapes.table_json sick_tab2) in
  let failed = List.filter (fun (_, ok, _) -> not ok) claims in
  Alcotest.(check bool) "violations detected" true (List.length failed > 0);
  let names = List.map (fun (n, _, _) -> n) failed in
  Alcotest.(check bool) "soft-vs-conventional claim failed" true
    (List.mem "tab2.soft_beats_conventional" names);
  Alcotest.(check bool) "request-count claim failed" true
    (List.mem "tab2.soft_halves_disk_requests" names)

let test_checker_missing_rows () =
  (* a recognisable table with a missing scheme row must report the
     claim as failed, not silently skip it *)
  let t = mk_tab2 [ ("No Order", "N", 100.0, 1000) ] in
  let claims = Shapes.check (Shapes.table_json t) in
  Alcotest.(check bool) "claims reported" true (List.length claims > 0);
  Alcotest.(check bool) "all failed" true
    (List.for_all (fun (_, ok, _) -> not ok) claims)

let test_checker_empty_doc () =
  Alcotest.(check int) "no tables, no claims" 0
    (List.length (Shapes.check (Json.Obj [ ("hello", Json.Int 1) ])))

let test_fig5_monotone_detection () =
  let mk rows =
    let t =
      Text_table.create ~title:"Figure 5a: synthetic"
        ~headers:[ "scheme"; "1"; "2"; "4" ]
    in
    List.iter (fun r -> Text_table.add_row t r) rows;
    Shapes.table_json t
  in
  let healthy =
    mk
      [
        [ "Soft Updates"; "50.0"; "90.0"; "120.0" ];
        [ "No Order"; "50.0"; "91.0"; "121.0" ];
      ]
  in
  List.iter
    (fun (name, ok, detail) ->
      Alcotest.(check bool) (name ^ ": " ^ detail) true ok)
    (Shapes.check healthy);
  let collapsing =
    mk
      [
        [ "Soft Updates"; "50.0"; "90.0"; "30.0" ];
        [ "No Order"; "50.0"; "91.0"; "121.0" ];
      ]
  in
  let failed =
    List.filter (fun (_, ok, _) -> not ok) (Shapes.check collapsing)
  in
  Alcotest.(check bool) "collapse detected" true
    (List.exists
       (fun (n, _, _) -> n = "fig5a.monotone.Soft Updates")
       failed)

(* --- the real experiments at Quick scale -------------------------------- *)

let test_quick_experiments_shapes () =
  let all = Su_experiments.Experiments.all `Quick in
  let entries =
    List.map
      (fun id -> (id, 0.0, (List.assoc id all) ()))
      [ "tab1"; "tab2"; "fig5" ]
  in
  let doc = Shapes.experiments_json ~scale:"quick" entries in
  (* the document must survive print -> parse bit-exactly *)
  let doc' =
    match Json.parse (Json.to_string_pretty doc) with
    | Ok d -> d
    | Error e -> Alcotest.failf "experiments JSON does not parse: %s" e
  in
  Alcotest.(check bool) "JSON round-trips" true (Json.equal doc doc');
  let claims = Shapes.check doc' in
  (* tab1 and tab2 contribute 5+7, fig5a/b/c contribute 5+1+1+1 *)
  Alcotest.(check int) "all claims evaluated" 20 (List.length claims);
  List.iter
    (fun (name, ok, detail) ->
      Alcotest.(check bool) (name ^ ": " ^ detail) true ok)
    claims

let suite =
  [
    Alcotest.test_case "checker passes healthy table" `Quick
      test_checker_passes_healthy;
    Alcotest.test_case "checker flags violations" `Quick
      test_checker_fails_sick;
    Alcotest.test_case "missing rows fail loudly" `Quick
      test_checker_missing_rows;
    Alcotest.test_case "no tables, no claims" `Quick test_checker_empty_doc;
    Alcotest.test_case "fig5 monotonicity detection" `Quick
      test_fig5_monotone_detection;
    Alcotest.test_case "quick tab1/tab2/fig5 shapes hold" `Slow
      test_quick_experiments_shapes;
  ]
