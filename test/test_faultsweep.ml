(* Online fault tolerance end to end: the faultsweep campaign and its
   determinism under --jobs, remap-heavy runs with zero model
   divergence, the typed Eio/Erofs syscall boundary, superblock
   replica restore at mount, and the background scrubber. *)
open Su_sim
open Su_fstypes
open Su_fs
module Faultsweep = Su_check.Faultsweep
module Explorer = Su_check.Explorer
module Fuzz = Su_workload.Fuzz

let compact_geom = Geom.v ~mb:32 ~cg_mb:16 ~inodes_per_cg:1024 ()

let compact_cfg ?(scheme = Fs.Soft_updates) () =
  {
    (Fs.config ~scheme ()) with
    Fs.geom = compact_geom;
    cache_mb = 4;
    journal_mb = 2;
  }

(* Run [body] against a fresh world, catching whatever it raises, then
   wind the world down cleanly. *)
let run_world ~cfg body =
  let w = Fs.make cfg in
  let failed = ref None in
  let controller () =
    (try body w with e -> failed := Some e);
    (try
       Fs.stop w;
       Su_driver.Driver.quiesce w.Fs.driver
     with _ -> ());
    Engine.stop w.Fs.engine
  in
  ignore (Proc.spawn w.Fs.engine ~name:"controller" controller);
  Engine.run w.Fs.engine;
  (w, !failed)

(* --- the campaign ----------------------------------------------------- *)

let test_sweep_survives_or_fails_clean () =
  let wl = Option.get (Explorer.find_workload "renamefile") in
  let s =
    Faultsweep.sweep ~jobs:1 ~spares:8 ~max_sectors:10 ~cfg:(compact_cfg ()) wl
  in
  Alcotest.(check bool) "campaign passes" true (Faultsweep.ok s);
  Alcotest.(check int) "capped sector count" 10 s.Faultsweep.fs_swept;
  Alcotest.(check bool) "touched set is larger" true
    (s.Faultsweep.fs_sectors > 10);
  Alcotest.(check int) "no escapes" 0 s.Faultsweep.fs_escaped;
  Alcotest.(check int) "every run accounted" s.Faultsweep.fs_swept
    (s.Faultsweep.fs_completed + s.Faultsweep.fs_failed_typed
     + s.Faultsweep.fs_escaped)

let test_sweep_deterministic_across_jobs () =
  let wl = Option.get (Explorer.find_workload "renamefile") in
  let sweep jobs =
    Faultsweep.sweep ~jobs ~spares:8 ~max_sectors:8 ~cfg:(compact_cfg ()) wl
  in
  let s1 = sweep 1 and s2 = sweep 2 in
  Alcotest.(check bool) "identical summaries at any --jobs" true (s1 = s2)

(* --- remap-heavy run: completes with zero model divergence ------------ *)

let test_remap_heavy_zero_divergence () =
  let cfg = compact_cfg () in
  let ops = Fuzz.gen ~seed:5 ~ops:14 in
  let wl = Fuzz.workload_of_ops ~name:"remapheavy" ops in
  (* data fragments are write-first (allocation initialisation), so
     faulting them exercises the remap path, never a read failure *)
  let recording = Explorer.record ~cfg wl in
  let data_lbns =
    let seen = Hashtbl.create 16 in
    Array.iter
      (fun (lbn, cells) ->
        Array.iteri
          (fun i c ->
            match c with
            | Types.Frag _ when Hashtbl.length seen < 4 ->
              Hashtbl.replace seen (lbn + i) ()
            | _ -> ())
          cells)
      (Explorer.rec_writes recording);
    Hashtbl.fold (fun k () acc -> k :: acc) seen []
  in
  Alcotest.(check bool) "found data fragments to fault" true
    (List.length data_lbns >= 2);
  let faulty =
    { cfg with
      Fs.fault = { Su_disk.Fault.none with bad_sectors = data_lbns };
      spare_frags = 16 }
  in
  let w, failed = run_world ~cfg:faulty (fun w -> wl.Explorer.wl_run w.Fs.st) in
  (match failed with
   | None -> ()
   | Some e -> Alcotest.fail ("run should complete: " ^ Printexc.to_string e));
  Alcotest.(check int) "every bad fragment remapped"
    (List.length data_lbns)
    (Su_disk.Disk.remaps w.Fs.disk);
  Alcotest.(check int) "health stayed clean" 0
    (Health.io_errors w.Fs.st.State.health);
  (* the logical image — remapped content resolved home, as a rebuilt
     replacement drive would hold it — must match the model exactly *)
  let image = Su_disk.Disk.logical_snapshot w.Fs.disk in
  Fs.recover_image cfg image;
  Alcotest.(check bool) "fsck clean" true
    (Fsck.ok (Fsck.check ~geom:cfg.Fs.geom ~image ~check_exposure:true));
  let clean_cfg =
    { cfg with Fs.fault = Su_disk.Fault.none; spare_frags = 0 }
  in
  Alcotest.(check (list string)) "zero model divergence" []
    (Fuzz.check_final_image ~cfg:clean_cfg image ops)

(* --- the typed syscall boundary --------------------------------------- *)

let test_readonly_refuses_mutation () =
  let cfg = { (compact_cfg ()) with Fs.geom = Geom.small } in
  let _w, failed =
    run_world ~cfg (fun w ->
        Fsops.create w.Fs.st "/before";
        Health.force_readonly w.Fs.st.State.health ~reason:"test";
        (* reads and flushes still work *)
        ignore (Fsops.stat w.Fs.st "/before");
        ignore (Fsops.readdir w.Fs.st "/");
        Fsops.sync w.Fs.st;
        Fsops.create w.Fs.st "/after")
  in
  match failed with
  | Some (Fsops.Erofs path) -> Alcotest.(check string) "path" "/after" path
  | Some e -> Alcotest.fail ("expected Erofs, got " ^ Printexc.to_string e)
  | None -> Alcotest.fail "mutation succeeded on a read-only volume"

let test_unreadable_metadata_raises_eio () =
  let cfg = { (compact_cfg ()) with Fs.geom = Geom.small } in
  let root_block = fst (Geom.cg_data_area cfg.Fs.geom 0) in
  let cfg =
    { cfg with
      Fs.fault = { Su_disk.Fault.none with bad_sectors = [ root_block ] } }
  in
  let w, failed =
    run_world ~cfg (fun w -> Fsops.create w.Fs.st "/victim")
  in
  (match failed with
   | Some (Fsops.Eio _) -> ()
   | Some e -> Alcotest.fail ("expected Eio, got " ^ Printexc.to_string e)
   | None -> Alcotest.fail "create over an unreadable root should fail");
  Alcotest.(check bool) "health heard the failure" true
    (Health.io_errors w.Fs.st.State.health > 0);
  Alcotest.(check bool) "volume degraded" true
    (Health.level w.Fs.st.State.health = Health.Degraded)

(* --- superblock replicas at mount ------------------------------------- *)

let is_superblock = function
  | Types.Meta (Types.Superblock _) -> true
  | _ -> false

let test_mount_restores_corrupt_replica () =
  let cfg = { (compact_cfg ()) with Fs.geom = Geom.small } in
  let w0 = Fs.make cfg in
  let image = Su_disk.Disk.image_snapshot w0.Fs.disk in
  let victim = Geom.cg_sb_frag cfg.Fs.geom 1 in
  image.(victim) <- Types.Frag Types.Zeroed;
  let w = Fs.mount_image cfg image in
  Alcotest.(check int) "one replica restored" 1
    (Health.sb_restored w.Fs.st.State.health);
  Alcotest.(check bool) "volume degraded, not dead" true
    (Health.level w.Fs.st.State.health = Health.Degraded);
  Alcotest.(check bool) "the copy is a superblock again" true
    (is_superblock (Su_disk.Disk.peek w.Fs.disk victim))

let test_mount_fails_clean_without_replicas () =
  let cfg = { (compact_cfg ()) with Fs.geom = Geom.small } in
  let w0 = Fs.make cfg in
  let image = Su_disk.Disk.image_snapshot w0.Fs.disk in
  for c = 0 to Geom.cg_count cfg.Fs.geom - 1 do
    image.(Geom.cg_sb_frag cfg.Fs.geom c) <- Types.Frag Types.Zeroed
  done;
  match Fs.mount_image cfg image with
  | _ -> Alcotest.fail "mount should refuse without a usable superblock"
  | exception Fs.Mount_failure _ -> ()

(* --- the background scrubber ------------------------------------------ *)

let test_scrub_repairs_latent_sb_fault () =
  (* group 0's superblock copy (fragment 0) is latently bad: nothing
     reads it at runtime, so only the scrubber can find it — and must
     heal it from a sister copy via a remapping rewrite *)
  let cfg =
    { (compact_cfg ()) with
      Fs.geom = Geom.small;
      fault = { Su_disk.Fault.none with bad_sectors = [ 0 ] };
      spare_frags = 8;
      scrub_interval = 0.01 }
  in
  let w, failed =
    run_world ~cfg (fun w ->
        ignore w;
        Proc.sleep w.Fs.engine 0.2)
  in
  (match failed with
   | None -> ()
   | Some e -> Alcotest.fail (Printexc.to_string e));
  let s = Option.get w.Fs.scrub in
  Alcotest.(check bool) "fragments probed" true (Scrub.scanned s > 0);
  Alcotest.(check int) "the latent bad sector found" 1 (Scrub.found s);
  Alcotest.(check int) "repaired from the sister replica" 1 (Scrub.repaired s);
  Alcotest.(check int) "nothing lost" 0 (Scrub.lost s);
  Alcotest.(check int) "healed via a remap" 1 (Su_disk.Disk.remaps w.Fs.disk);
  Alcotest.(check int) "health records the restore" 1
    (Health.sb_restored w.Fs.st.State.health);
  Alcotest.(check bool) "the copy reads back as a superblock" true
    (is_superblock (Su_disk.Disk.peek w.Fs.disk 0))

let test_no_scrubber_by_default () =
  let w = Fs.make (compact_cfg ()) in
  Alcotest.(check bool) "scrub off unless configured" true (w.Fs.scrub = None)

let suite =
  [
    Alcotest.test_case "campaign survives or fails clean" `Quick
      test_sweep_survives_or_fails_clean;
    Alcotest.test_case "campaign deterministic across jobs" `Quick
      test_sweep_deterministic_across_jobs;
    Alcotest.test_case "remap-heavy run, zero model divergence" `Quick
      test_remap_heavy_zero_divergence;
    Alcotest.test_case "read-only volume refuses mutation" `Quick
      test_readonly_refuses_mutation;
    Alcotest.test_case "unreadable metadata raises Eio" `Quick
      test_unreadable_metadata_raises_eio;
    Alcotest.test_case "mount restores a corrupt replica" `Quick
      test_mount_restores_corrupt_replica;
    Alcotest.test_case "mount fails clean without replicas" `Quick
      test_mount_fails_clean_without_replicas;
    Alcotest.test_case "scrubber heals a latent superblock fault" `Quick
      test_scrub_repairs_latent_sb_fault;
    Alcotest.test_case "no scrubber by default" `Quick
      test_no_scrubber_by_default;
  ]
