(* Tests for the device driver: scheduling, ordering semantics, traces. *)
open Su_sim
open Su_fstypes
open Su_driver

let mk ?(mode = Ordering.Unordered) ?(policy = Driver.Clook) () =
  let e = Engine.create () in
  let d = Su_disk.Disk.create ~engine:e ~params:Su_disk.Disk_params.hp_c2447
      ~nfrags:65536 () in
  let drv =
    Driver.create ~engine:e ~disk:d
      { Driver.default_config with mode; policy; keep_records = true }
  in
  (e, d, drv)

let payload n = Array.make n (Types.Frag Types.Zeroed)

let submit_write ?(flagged = false) ?(deps = []) drv ~lbn ~n log =
  Driver.submit drv ~kind:Request.Write ~lbn ~nfrags:n ~flagged ~deps
    ~payload:(payload n)
    ~on_complete:(fun _ -> log := lbn :: !log)
    ()

let submit_read ?(deps = []) drv ~lbn ~n log =
  Driver.submit drv ~kind:Request.Read ~lbn ~nfrags:n ~deps
    ~on_complete:(fun _ -> log := (-lbn) :: !log)
    ()

let test_all_complete () =
  let e, _, drv = mk () in
  let log = ref [] in
  let ids =
    List.map (fun lbn -> submit_write drv ~lbn ~n:1 log) [ 10; 500; 20; 300 ]
  in
  Engine.run e;
  Alcotest.(check int) "four completions" 4 (List.length !log);
  List.iter
    (fun id -> Alcotest.(check bool) "completed" true (Driver.completed drv id))
    ids;
  Alcotest.(check int) "nothing outstanding" 0 (Driver.outstanding drv)

let test_clook_orders_by_position () =
  let e, _, drv = mk () in
  let log = ref [] in
  (* first request seizes the disk; the rest are scheduled by C-LOOK *)
  let _ = submit_write drv ~lbn:5000 ~n:1 log in
  let _ = submit_write drv ~lbn:9000 ~n:1 log in
  let _ = submit_write drv ~lbn:6000 ~n:1 log in
  let _ = submit_write drv ~lbn:7000 ~n:1 log in
  Engine.run e;
  Alcotest.(check (list int)) "ascending after head" [ 5000; 6000; 7000; 9000 ]
    (List.rev !log)

let test_fcfs_orders_by_issue () =
  let e, _, drv = mk ~policy:Driver.Fcfs () in
  let log = ref [] in
  let _ = submit_write drv ~lbn:5000 ~n:1 log in
  let _ = submit_write drv ~lbn:9000 ~n:1 log in
  let _ = submit_write drv ~lbn:6000 ~n:1 log in
  Engine.run e;
  Alcotest.(check (list int)) "issue order" [ 5000; 9000; 6000 ] (List.rev !log)

let test_concatenation () =
  let e, d, drv = mk () in
  let log = ref [] in
  (* a far-away request keeps the disk busy while we queue a run *)
  let _ = submit_write drv ~lbn:40000 ~n:1 log in
  for i = 0 to 7 do
    ignore (submit_write drv ~lbn:(800 + i) ~n:1 log)
  done;
  Engine.run e;
  Alcotest.(check int) "nine completions" 9 (List.length !log);
  (* 8 contiguous writes merged into one device op: 2 device requests *)
  Alcotest.(check int) "two device ops" 2 (Su_disk.Disk.requests_serviced d)

let test_concat_respects_limit () =
  let e = Engine.create () in
  let d =
    Su_disk.Disk.create ~engine:e ~params:Su_disk.Disk_params.hp_c2447
      ~nfrags:65536 ()
  in
  let drv =
    Driver.create ~engine:e ~disk:d
      { Driver.default_config with max_concat = 16; keep_records = true }
  in
  let log = ref [] in
  let _ =
    Driver.submit drv ~kind:Request.Write ~lbn:40000 ~nfrags:1
      ~payload:(payload 1)
      ~on_complete:(fun _ -> log := 40000 :: !log)
      ()
  in
  (* 32 contiguous fragments queued: at most 16 merge per device op *)
  for i = 0 to 31 do
    ignore
      (Driver.submit drv ~kind:Request.Write ~lbn:(800 + i) ~nfrags:1
         ~payload:(payload 1)
         ~on_complete:(fun _ -> log := (800 + i) :: !log)
         ())
  done;
  Engine.run e;
  Alcotest.(check int) "all complete" 33 (List.length !log);
  Alcotest.(check int) "three device ops" 3 (Su_disk.Disk.requests_serviced d)

let test_reads_not_merged_with_writes () =
  let e, d, drv = mk () in
  let log = ref [] in
  let _ = submit_write drv ~lbn:40000 ~n:1 log in
  let _ = submit_write drv ~lbn:800 ~n:1 log in
  let _ = submit_read drv ~lbn:801 ~n:1 log in
  Engine.run e;
  (* adjacent but different kinds: two separate device operations *)
  Alcotest.(check int) "three device ops" 3 (Su_disk.Disk.requests_serviced d)

let test_waw_order_preserved () =
  (* two writes to the same block must hit the disk in issue order even
     though C-LOOK would prefer the second *)
  let e, d, drv = mk () in
  let log = ref [] in
  let _ = submit_write drv ~lbn:30000 ~n:1 log in
  (* queue: same-lbn writes with different payloads *)
  let p1 = [| Types.Frag (Types.Written { inum = 1; gen = 1; flbn = 0 }) |] in
  let p2 = [| Types.Frag (Types.Written { inum = 2; gen = 2; flbn = 0 }) |] in
  let _ =
    Driver.submit drv ~kind:Request.Write ~lbn:100 ~nfrags:1 ~payload:p1
      ~on_complete:(fun _ -> ()) ()
  in
  let _ =
    Driver.submit drv ~kind:Request.Write ~lbn:100 ~nfrags:1 ~payload:p2
      ~on_complete:(fun _ -> ()) ()
  in
  Engine.run e;
  match Su_disk.Disk.peek d 100 with
  | Types.Frag (Types.Written w) -> Alcotest.(check int) "last writer wins" 2 w.inum
  | _ -> Alcotest.fail "unexpected cell"

let run_flag_order sem ~nr ops =
  (* ops: (lbn, flagged, kind). Returns completion order of lbns
     (reads negated). The first op is submitted while the disk is free,
     so it goes first; we prepend a pinned op. *)
  let e, _, drv = mk ~mode:(Ordering.Flag { sem; nr }) () in
  let log = ref [] in
  let _ = submit_write drv ~lbn:60000 ~n:1 log in
  List.iter
    (fun (lbn, flagged, kind) ->
      match kind with
      | `W -> ignore (submit_write ~flagged drv ~lbn ~n:1 log)
      | `R -> ignore (submit_read drv ~lbn ~n:1 log))
    ops;
  Engine.run e;
  List.filter (fun l -> l <> 60000) (List.rev !log)

let test_part_flag_blocks_later () =
  (* flagged write at far lbn; later near write must NOT pass it *)
  let order =
    run_flag_order Ordering.Part ~nr:false
      [ (50000, true, `W); (100, false, `W) ]
  in
  Alcotest.(check (list int)) "flag respected" [ 50000; 100 ] order

let test_ignore_flag_reorders () =
  let order =
    run_flag_order Ordering.Ignore ~nr:false
      [ (50000, true, `W); (100, false, `W) ]
  in
  Alcotest.(check (list int)) "reordered by clook" [ 100; 50000 ] order

let test_part_allows_earlier_unflagged_reorder () =
  (* unflagged early request may be passed by ... and the flagged one
     reorders freely with earlier unflagged under Part *)
  let order =
    run_flag_order Ordering.Part ~nr:false
      [ (50000, false, `W); (200, true, `W); (300, false, `W) ]
  in
  (* flagged 200 is free to go before 50000; 300 must wait for 200 but
     not for 50000 *)
  Alcotest.(check (list int)) "part semantics" [ 200; 300; 50000 ] order

let test_back_blocks_until_predecessors_done () =
  let order =
    run_flag_order Ordering.Back ~nr:false
      [ (50000, false, `W); (200, true, `W); (300, false, `W) ]
  in
  (* under Back, 300 must wait for 200 AND for 50000; flagged 200 may
     still pass 50000 *)
  Alcotest.(check (list int)) "back semantics" [ 200; 50000; 300 ] order

let test_full_flag_is_barrier () =
  let order =
    run_flag_order Ordering.Full ~nr:false
      [ (50000, false, `W); (200, true, `W); (300, false, `W) ]
  in
  (* the flagged request itself waits for 50000 *)
  Alcotest.(check (list int)) "full semantics" [ 50000; 200; 300 ] order

let test_nr_lets_reads_bypass () =
  let order =
    run_flag_order Ordering.Part ~nr:true
      [ (50000, true, `W); (100, false, `R) ]
  in
  Alcotest.(check (list int)) "read bypasses flagged write" [ -100; 50000 ] order

let test_no_nr_reads_wait () =
  let order =
    run_flag_order Ordering.Part ~nr:false
      [ (50000, true, `W); (100, false, `R) ]
  in
  Alcotest.(check (list int)) "read waits" [ 50000; -100 ] order

let test_nr_conflicting_read_waits () =
  (* read overlaps the flagged write: must not bypass *)
  let order =
    run_flag_order Ordering.Part ~nr:true
      [ (50000, true, `W); (50000, false, `R) ]
  in
  Alcotest.(check (list int)) "conflicting read waits" [ 50000; -50000 ] order

let test_chains_dependency () =
  let e, _, drv = mk ~mode:(Ordering.Chains { nr = false }) () in
  let log = ref [] in
  let _ = submit_write drv ~lbn:60000 ~n:1 log in
  let a = submit_write drv ~lbn:50000 ~n:1 log in
  let _b = submit_write ~deps:[ a ] drv ~lbn:100 ~n:1 log in
  let _c = submit_write drv ~lbn:200 ~n:1 log in
  Engine.run e;
  let order = List.filter (fun l -> l <> 60000) (List.rev !log) in
  (* c has no deps: free to go first; b must follow a *)
  Alcotest.(check (list int)) "chains order" [ 200; 50000; 100 ] order

let test_chains_completed_dep_is_free () =
  let e, _, drv = mk ~mode:(Ordering.Chains { nr = false }) () in
  let log = ref [] in
  let a = submit_write drv ~lbn:100 ~n:1 log in
  Engine.run e;
  Alcotest.(check bool) "a done" true (Driver.completed drv a);
  let _ = submit_write ~deps:[ a ] drv ~lbn:200 ~n:1 log in
  Engine.run e;
  Alcotest.(check int) "both done" 2 (List.length !log)

let test_trace_stats () =
  let e, _, drv = mk () in
  let log = ref [] in
  for i = 0 to 9 do
    ignore (submit_write drv ~lbn:(i * 1000) ~n:1 log)
  done;
  Engine.run e;
  let tr = Driver.trace drv in
  Alcotest.(check int) "ten requests" 10 (Trace.requests tr);
  Alcotest.(check int) "all writes" 10 (Trace.writes tr);
  Alcotest.(check bool) "access time positive" true (Trace.avg_access_ms tr > 0.0);
  Alcotest.(check bool) "response >= access" true
    (Trace.avg_response_ms tr >= Trace.avg_access_ms tr);
  Alcotest.(check int) "records kept" 10 (List.length (Trace.records tr))

let test_quiesce () =
  let e, _, drv = mk () in
  let log = ref [] in
  let after_quiesce = ref (-1) in
  ignore
    (Proc.spawn e (fun () ->
         for i = 1 to 5 do
           ignore (submit_write drv ~lbn:(i * 2000) ~n:1 log)
         done;
         Driver.quiesce drv;
         after_quiesce := List.length !log));
  Engine.run e;
  Alcotest.(check int) "quiesce saw all completions" 5 !after_quiesce

let prop_flag_never_overtaken =
  QCheck.Test.make ~name:"no request issued after a flagged write completes before it (Part)"
    ~count:60
    QCheck.(list_of_size Gen.(2 -- 25) (pair (int_bound 60) bool))
    (fun ops ->
      let e, _, drv = mk ~mode:(Ordering.Flag { sem = Ordering.Part; nr = false }) () in
      let completions = ref [] in
      let ids =
        List.map
          (fun (pos, flagged) ->
            let lbn = 100 + (pos * 64) in
            Driver.submit drv ~kind:Request.Write ~lbn ~nfrags:1 ~flagged
              ~payload:(payload 1)
              ~on_complete:(fun _ -> ())
              ())
          ops
      in
      let id_flag = List.combine ids (List.map snd ops) in
      (* record completion order via polling at completion *)
      let seen = Hashtbl.create 16 in
      let rec watch () =
        List.iter
          (fun id ->
            if Driver.completed drv id && not (Hashtbl.mem seen id) then begin
              Hashtbl.add seen id ();
              completions := id :: !completions
            end)
          ids;
        if List.exists (fun id -> not (Hashtbl.mem seen id)) ids then
          Engine.after e 0.0005 watch
      in
      Engine.after e 0.0 watch;
      Engine.run e;
      let order = List.rev !completions in
      (* for every flagged id f, nothing issued after f completes before f *)
      let rec check_order = function
        | [] -> true
        | done_id :: rest ->
          let ok =
            List.for_all
              (fun (f, flagged) ->
                (not flagged) || f >= done_id
                || Hashtbl.mem seen f
                   && not (List.mem f rest)
                (* f completed already: fine *)
                || false)
              (List.filter (fun (f, _) -> f < done_id) id_flag)
          in
          ok && check_order rest
      in
      ignore check_order;
      (* direct check: walk completion order, maintaining the set of
         completed ids; when id X completes, every flagged id < X must
         already have completed *)
      let completed_set = Hashtbl.create 16 in
      List.for_all
        (fun x ->
          let ok =
            List.for_all
              (fun (f, flagged) ->
                (not flagged) || f >= x || Hashtbl.mem completed_set f)
              id_flag
          in
          Hashtbl.add completed_set x ();
          ok)
        order)

(* generic completion-order recorder for ordering-law properties *)
let run_random_ops ~mode ops =
  let e = Engine.create () in
  let d =
    Su_disk.Disk.create ~engine:e ~params:Su_disk.Disk_params.hp_c2447
      ~nfrags:65536 ()
  in
  let drv =
    Driver.create ~engine:e ~disk:d { Driver.default_config with mode }
  in
  let order = ref [] in
  let ids =
    List.map
      (fun (pos, flagged) ->
        let lbn = 64 + (pos * 64) in
        Driver.submit drv ~kind:Request.Write ~lbn ~nfrags:1 ~flagged
          ~payload:(payload 1)
          ~on_complete:(fun _ -> ()) ())
      ops
  in
  (* poll completion order *)
  let seen = Hashtbl.create 16 in
  let rec watch () =
    List.iter
      (fun id ->
        if Driver.completed drv id && not (Hashtbl.mem seen id) then begin
          Hashtbl.add seen id ();
          order := id :: !order
        end)
      ids;
    if List.exists (fun id -> not (Hashtbl.mem seen id)) ids then
      Engine.after e 0.0005 watch
  in
  Engine.after e 0.0 watch;
  Engine.run e;
  (ids, List.combine ids (List.map snd ops), List.rev !order)

let ops_gen =
  QCheck.(list_of_size Gen.(3 -- 20) (pair (int_bound 60) bool))

let prop_full_flag_total_barrier =
  QCheck.Test.make ~name:"Full: a flagged write completes after every earlier request"
    ~count:40 ops_gen
    (fun ops ->
      let _, id_flag, order = run_random_ops ~mode:(Ordering.Flag { sem = Ordering.Full; nr = false }) ops in
      (* when flagged F completes, every id < F has completed *)
      let completed = Hashtbl.create 16 in
      List.for_all
        (fun x ->
          let ok =
            (not (List.assoc x id_flag))
            || List.for_all
                 (fun (i, _) -> i >= x || Hashtbl.mem completed i)
                 id_flag
          in
          Hashtbl.add completed x ();
          ok)
        order)

let prop_back_flag_freezes_prefix =
  QCheck.Test.make
    ~name:"Back: nothing after a flagged write completes before it or its predecessors"
    ~count:40 ops_gen
    (fun ops ->
      let _, id_flag, order = run_random_ops ~mode:(Ordering.Flag { sem = Ordering.Back; nr = false }) ops in
      let completed = Hashtbl.create 16 in
      List.for_all
        (fun x ->
          (* find the last flagged id before x: it and everything
             before it must be complete when x completes *)
          let gate =
            List.fold_left
              (fun acc (i, flagged) ->
                if flagged && i < x then Some i else acc)
              None
              (List.sort compare (List.map fst id_flag)
              |> List.map (fun i -> (i, List.assoc i id_flag)))
          in
          let ok =
            match gate with
            | None -> true
            | Some g ->
              List.for_all
                (fun (i, _) -> i > g || Hashtbl.mem completed i)
                id_flag
          in
          Hashtbl.add completed x ();
          ok)
        order)

(* The dispatch index parks blocked requests under the witness id
   returned by [Ordering.first_blocker]; that is only sound if the
   witness is outstanding and its answer agrees with [eligible]
   whenever the conflicting-write check passes. *)
let prop_first_blocker_agrees_with_eligible =
  QCheck.Test.make ~name:"first_blocker agrees with eligible" ~count:2000
    QCheck.(
      quad (int_bound 10)
        (list (int_bound 15))
        (option (int_bound 15))
        (triple bool bool (int_bound 7)))
    (fun (id_off, outs, gate, (flagged, is_read, mode_sel)) ->
      let id = 16 + id_off in
      let outstanding = List.sort_uniq compare (id :: outs) in
      let gate = Option.map (fun g -> g mod id) gate in
      let deps =
        List.filter (fun i -> i < id) outs |> List.sort_uniq compare
        |> List.filteri (fun i _ -> i mod 2 = 0)
      in
      let mode =
        match mode_sel with
        | 0 -> Ordering.Unordered
        | 1 -> Ordering.Flag { sem = Ordering.Full; nr = false }
        | 2 -> Ordering.Flag { sem = Ordering.Full; nr = true }
        | 3 -> Ordering.Flag { sem = Ordering.Back; nr = false }
        | 4 -> Ordering.Flag { sem = Ordering.Part; nr = true }
        | 5 -> Ordering.Flag { sem = Ordering.Ignore; nr = false }
        | 6 -> Ordering.Chains { nr = false }
        | _ -> Ordering.Chains { nr = true }
      in
      let r =
        {
          Request.id;
          kind = (if is_read then Request.Read else Request.Write);
          lbn = 0;
          nfrags = 1;
          payload = None;
          flagged;
          gate;
          deps;
          sync = false;
          issue_time = 0.0;
          start_time = 0.0;
          on_complete = (fun _ -> ());
        }
      in
      let ctx =
        {
          Ordering.is_outstanding = (fun i -> List.mem i outstanding);
          min_outstanding =
            (fun () ->
              match outstanding with [] -> None | x :: _ -> Some x);
          conflicting_earlier_write = (fun _ -> false);
        }
      in
      match Ordering.first_blocker mode ctx r with
      | None -> Ordering.eligible mode ctx r
      | Some w -> List.mem w outstanding && not (Ordering.eligible mode ctx r))

(* The driver recycles request records through a pool; far more
   requests than the pool's growth quantum guarantees reuse. Every
   write carries a distinct payload, every read must observe exactly
   the latest write to its block, and every callback fires exactly
   once — a stale payload, dependency list or completion callback
   surviving recycling would break one of these. *)
let test_request_pool_recycling () =
  let e, _, drv = mk () in
  let nblocks = 32 in
  let rounds = 20 in
  let completions = ref 0 in
  let failures = ref 0 in
  let stamp round lbn = Types.Written { inum = round; gen = lbn; flbn = round * 1000 + lbn } in
  for round = 0 to rounds - 1 do
    for lbn = 0 to nblocks - 1 do
      (* alternate flagged/dep-carrying writes so gate/deps fields are
         populated in some lives and absent in others *)
      ignore
        (Driver.submit drv ~kind:Request.Write ~lbn ~nfrags:1
           ~flagged:(lbn mod 7 = 0)
           ~payload:[| Types.Frag (stamp round lbn) |]
           ~on_complete:(fun res ->
             incr completions;
             if Result.is_error res then incr failures)
           ())
    done;
    Engine.run e
  done;
  (* read everything back: each block must hold its final write *)
  for lbn = 0 to nblocks - 1 do
    ignore
      (Driver.submit drv ~kind:Request.Read ~lbn ~nfrags:1
         ~on_complete:(fun res ->
           incr completions;
           match res with
           | Ok (Some cells) ->
             let expect = Types.Frag (stamp (rounds - 1) lbn) in
             if cells.(0) <> expect then
               Alcotest.failf "lbn %d: stale payload after recycling" lbn
           | Ok None -> Alcotest.failf "lbn %d: read returned no data" lbn
           | Error _ -> Alcotest.failf "lbn %d: read failed" lbn)
         ())
  done;
  Engine.run e;
  Alcotest.(check int) "every callback fired exactly once"
    ((rounds * nblocks) + nblocks)
    !completions;
  Alcotest.(check int) "no failures" 0 !failures;
  Alcotest.(check int) "nothing outstanding" 0 (Driver.outstanding drv)

let suite =
  [
    Alcotest.test_case "all complete" `Quick test_all_complete;
    Alcotest.test_case "request pool recycling" `Quick
      test_request_pool_recycling;
    QCheck_alcotest.to_alcotest prop_first_blocker_agrees_with_eligible;
    QCheck_alcotest.to_alcotest prop_full_flag_total_barrier;
    QCheck_alcotest.to_alcotest prop_back_flag_freezes_prefix;
    Alcotest.test_case "clook order" `Quick test_clook_orders_by_position;
    Alcotest.test_case "fcfs order" `Quick test_fcfs_orders_by_issue;
    Alcotest.test_case "concatenation" `Quick test_concatenation;
    Alcotest.test_case "concat limit" `Quick test_concat_respects_limit;
    Alcotest.test_case "no read/write merge" `Quick
      test_reads_not_merged_with_writes;
    Alcotest.test_case "waw preserved" `Quick test_waw_order_preserved;
    Alcotest.test_case "part blocks later" `Quick test_part_flag_blocks_later;
    Alcotest.test_case "ignore reorders" `Quick test_ignore_flag_reorders;
    Alcotest.test_case "part allows early reorder" `Quick
      test_part_allows_earlier_unflagged_reorder;
    Alcotest.test_case "back waits predecessors" `Quick
      test_back_blocks_until_predecessors_done;
    Alcotest.test_case "full is barrier" `Quick test_full_flag_is_barrier;
    Alcotest.test_case "nr read bypass" `Quick test_nr_lets_reads_bypass;
    Alcotest.test_case "no-nr read waits" `Quick test_no_nr_reads_wait;
    Alcotest.test_case "nr conflicting read waits" `Quick
      test_nr_conflicting_read_waits;
    Alcotest.test_case "chains dependency" `Quick test_chains_dependency;
    Alcotest.test_case "chains completed dep" `Quick
      test_chains_completed_dep_is_free;
    Alcotest.test_case "trace stats" `Quick test_trace_stats;
    Alcotest.test_case "quiesce" `Quick test_quiesce;
    QCheck_alcotest.to_alcotest prop_flag_never_overtaken;
  ]
