(* Tests for the disk model. *)
open Su_sim
open Su_fstypes
open Su_disk

let mk_disk ?(nfrags = 65536) () =
  let e = Engine.create () in
  let d = Disk.create ~engine:e ~params:Disk_params.hp_c2447 ~nfrags () in
  (e, d)

let run_one e d ~lbn ~nfrags ~op ~payload =
  let result = ref None in
  Disk.submit d ~lbn ~nfrags ~op ~payload ~on_done:(fun data svc ->
      match data with
      | Ok data -> result := Some (data, svc)
      | Error err -> Alcotest.fail (Fault.error_to_string err));
  Engine.run e;
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "request did not complete"

let test_write_then_read () =
  let e, d = mk_disk () in
  let payload =
    Array.init 4 (fun i ->
        Types.Frag (Types.Written { inum = 7; gen = 1; flbn = i }))
  in
  let _ = run_one e d ~lbn:100 ~nfrags:4 ~op:Disk.Write ~payload:(Some payload) in
  let data, _ = run_one e d ~lbn:100 ~nfrags:4 ~op:Disk.Read ~payload:None in
  match data with
  | Some cells ->
    Alcotest.(check int) "4 cells" 4 (Array.length cells);
    (match cells.(2) with
     | Types.Frag (Types.Written w) -> Alcotest.(check int) "flbn" 2 w.flbn
     | _ -> Alcotest.fail "wrong cell")
  | None -> Alcotest.fail "no data"

let test_write_applies_at_completion () =
  let e, d = mk_disk () in
  let payload = [| Types.Frag Types.Zeroed |] in
  Disk.submit d ~lbn:50 ~nfrags:1 ~op:Disk.Write ~payload:(Some payload)
    ~on_done:(fun _ _ -> ());
  (* crash before completion: image untouched *)
  Alcotest.(check bool) "still empty" true (Disk.peek d 50 = Types.Empty);
  Engine.run ~until:0.0001 e;
  Alcotest.(check bool) "still empty shortly after" true (Disk.peek d 50 = Types.Empty);
  Engine.run e;
  Alcotest.(check bool) "applied after completion" true
    (Disk.peek d 50 = Types.Frag Types.Zeroed)

let test_busy_rejected () =
  let e, d = mk_disk () in
  Disk.submit d ~lbn:0 ~nfrags:1 ~op:Disk.Read ~payload:None
    ~on_done:(fun _ _ -> ());
  Alcotest.(check bool) "busy" true (Disk.busy d);
  (try
     Disk.submit d ~lbn:1 ~nfrags:1 ~op:Disk.Read ~payload:None
       ~on_done:(fun _ _ -> ());
     Alcotest.fail "expected rejection"
   with Invalid_argument _ -> ());
  Engine.run e

let test_sequential_read_faster () =
  let e, d = mk_disk () in
  (* first read primes the prefetch stream *)
  let _, svc1 = run_one e d ~lbn:1000 ~nfrags:8 ~op:Disk.Read ~payload:None in
  let _, svc2 = run_one e d ~lbn:1008 ~nfrags:8 ~op:Disk.Read ~payload:None in
  let _, svc3 = run_one e d ~lbn:30000 ~nfrags:8 ~op:Disk.Read ~payload:None in
  Alcotest.(check bool) "sequential hit is much faster" true (svc2 < svc1 /. 2.0);
  Alcotest.(check bool) "random read is mechanical" true (svc3 > svc2 *. 2.0)

let test_far_seek_costs_more () =
  let e, d = mk_disk ~nfrags:1000000 () in
  let _, _ = run_one e d ~lbn:0 ~nfrags:8 ~op:Disk.Read ~payload:None in
  (* measure many random-ish reads near and far; compare means *)
  let near = ref 0.0 and far = ref 0.0 in
  let n = 20 in
  for i = 1 to n do
    let _, s = run_one e d ~lbn:(i * 600) ~nfrags:8 ~op:Disk.Read ~payload:None in
    near := !near +. s;
    let _, _ = run_one e d ~lbn:(i * 600 + 8) ~nfrags:8 ~op:Disk.Read ~payload:None in
    ()
  done;
  let _, _ = run_one e d ~lbn:0 ~nfrags:8 ~op:Disk.Read ~payload:None in
  for i = 1 to n do
    let lbn = 500000 + (i * 21157) mod 400000 in
    let _, s = run_one e d ~lbn ~nfrags:8 ~op:Disk.Read ~payload:None in
    far := !far +. s;
    let _, _ = run_one e d ~lbn:0 ~nfrags:8 ~op:Disk.Read ~payload:None in
    ()
  done;
  Alcotest.(check bool) "long seeks cost more on average" true (!far > !near)

let test_seek_curve_monotone () =
  let p = Disk_params.hp_c2447 in
  Alcotest.(check (float 0.0)) "zero distance" 0.0 (Disk_params.seek_time p 0);
  Alcotest.(check (float 1e-9)) "single" p.Disk_params.seek_single
    (Disk_params.seek_time p 1);
  Alcotest.(check (float 1e-9)) "full stroke" p.Disk_params.seek_max
    (Disk_params.seek_time p (p.Disk_params.cylinders - 1) +. 0.0);
  let prev = ref 0.0 in
  for d = 1 to p.Disk_params.cylinders - 1 do
    let s = Disk_params.seek_time p d in
    if s < !prev then Alcotest.fail "seek curve not monotone";
    prev := s
  done

let test_image_snapshot_isolated () =
  let e, d = mk_disk () in
  let payload = [| Types.Meta (Types.Dir (Array.make 4 None)) |] in
  let _ = run_one e d ~lbn:10 ~nfrags:1 ~op:Disk.Write ~payload:(Some payload) in
  let snap = Disk.image_snapshot d in
  (match snap.(10) with
   | Types.Meta (Types.Dir entries) ->
     entries.(0) <- Some { Types.name = "x"; inum = 3 }
   | _ -> Alcotest.fail "unexpected cell");
  (* mutating the snapshot must not affect the live image *)
  (match Disk.peek d 10 with
   | Types.Meta (Types.Dir entries) ->
     Alcotest.(check bool) "image unchanged" true (entries.(0) = None)
   | _ -> Alcotest.fail "unexpected live cell")

let test_write_payload_validation () =
  let e, d = mk_disk () in
  (try
     Disk.submit d ~lbn:0 ~nfrags:2 ~op:Disk.Write ~payload:None
       ~on_done:(fun _ _ -> ());
     Alcotest.fail "expected invalid_arg"
   with Invalid_argument _ -> ());
  (try
     Disk.submit d ~lbn:0 ~nfrags:2 ~op:Disk.Write
       ~payload:(Some [| Types.Pad |])
       ~on_done:(fun _ _ -> ());
     Alcotest.fail "expected invalid_arg"
   with Invalid_argument _ -> ());
  Engine.run e

let test_nvram_fast_writes () =
  let e = Engine.create () in
  let d =
    Disk.create ~engine:e ~params:Disk_params.hp_c2447 ~nfrags:65536
      ~nvram_frags:1024 ()
  in
  let payload = [| Types.Frag Types.Zeroed |] in
  let _, svc = run_one e d ~lbn:5000 ~nfrags:1 ~op:Disk.Write ~payload:(Some payload) in
  Alcotest.(check bool) "electronic speed" true (svc < 0.001);
  (* durable on acceptance *)
  Alcotest.(check bool) "durable" true (Disk.peek d 5000 = Types.Frag Types.Zeroed);
  (* destage happens in idle time *)
  Engine.run e;
  Alcotest.(check bool) "destaged" true (Disk.destages d >= 1);
  Alcotest.(check int) "buffer drained" 0 (Disk.nvram_pending d)

let test_nvram_overflow_mechanical () =
  let e = Engine.create () in
  let d =
    Disk.create ~engine:e ~params:Disk_params.hp_c2447 ~nfrags:65536
      ~nvram_frags:4 ()
  in
  let p n = Some (Array.make n (Types.Frag Types.Zeroed)) in
  (* submit the second write from the first one's completion, before
     the destage can start: the buffer is full, so it goes mechanical *)
  let svc2 = ref None in
  Disk.submit d ~lbn:100 ~nfrags:4 ~op:Disk.Write ~payload:(p 4)
    ~on_done:(fun _ svc1 ->
      Alcotest.(check bool) "first write cached" true (svc1 < 0.001);
      Disk.submit d ~lbn:200 ~nfrags:4 ~op:Disk.Write ~payload:(p 4)
        ~on_done:(fun _ svc -> svc2 := Some svc));
  Engine.run e;
  match !svc2 with
  | Some svc -> Alcotest.(check bool) "mechanical fallback" true (svc > 0.001)
  | None -> Alcotest.fail "second write did not complete"

let test_nvram_survives_crash () =
  (* an accepted NVRAM write is durable even if the engine stops
     before the destage (battery-backed) *)
  let e = Engine.create () in
  let d =
    Disk.create ~engine:e ~params:Disk_params.hp_c2447 ~nfrags:65536
      ~nvram_frags:64 ()
  in
  Disk.submit d ~lbn:777 ~nfrags:1 ~op:Disk.Write
    ~payload:(Some [| Types.Frag Types.Zeroed |])
    ~on_done:(fun _ _ -> ());
  (* durable at acceptance: visible before any event runs *)
  Alcotest.(check bool) "durable immediately" true
    (Disk.peek d 777 = Types.Frag Types.Zeroed);
  Engine.stop e;
  Alcotest.(check bool) "still there after crash" true
    (Disk.peek d 777 = Types.Frag Types.Zeroed)

let test_nvram_coalesces () =
  let e = Engine.create () in
  let d =
    Disk.create ~engine:e ~params:Disk_params.hp_c2447 ~nfrags:65536
      ~nvram_frags:16 ()
  in
  let p s = Some [| Types.Frag (Types.Written { inum = s; gen = 1; flbn = 0 }) |] in
  (* write the same extent repeatedly from completion callbacks: all
     coalesce into one slot and one destage *)
  let rec again n =
    if n > 0 then
      Disk.submit d ~lbn:900 ~nfrags:1 ~op:Disk.Write ~payload:(p n)
        ~on_done:(fun _ _ -> again (n - 1))
  in
  again 5;
  Engine.run e;
  Alcotest.(check int) "one destage for five writes" 1 (Disk.destages d);
  (match Disk.peek d 900 with
   | Types.Frag (Types.Written w) -> Alcotest.(check int) "last wins" 1 w.inum
   | _ -> Alcotest.fail "unexpected cell")

let suite =
  [
    Alcotest.test_case "write then read" `Quick test_write_then_read;
    Alcotest.test_case "nvram survives crash" `Quick test_nvram_survives_crash;
    Alcotest.test_case "nvram coalesces" `Quick test_nvram_coalesces;
    Alcotest.test_case "nvram fast writes" `Quick test_nvram_fast_writes;
    Alcotest.test_case "nvram overflow mechanical" `Quick
      test_nvram_overflow_mechanical;
    Alcotest.test_case "write applies at completion" `Quick
      test_write_applies_at_completion;
    Alcotest.test_case "busy rejected" `Quick test_busy_rejected;
    Alcotest.test_case "sequential read faster" `Quick test_sequential_read_faster;
    Alcotest.test_case "far seek costs more" `Quick test_far_seek_costs_more;
    Alcotest.test_case "seek curve monotone" `Quick test_seek_curve_monotone;
    Alcotest.test_case "snapshot isolated" `Quick test_image_snapshot_isolated;
    Alcotest.test_case "payload validation" `Quick test_write_payload_validation;
  ]
