(* The journaled-scheme extension: write-ahead logging, recovery by
   log replay, fsck repair and image remounting. *)
open Su_sim
open Su_fs
open Su_util

let jsync = Fs.Journaled { group_commit = false }
let jgroup = Fs.Journaled { group_commit = true }

let small_config scheme =
  { (Fs.config ~scheme ()) with
    Fs.geom = Su_fstypes.Geom.small;
    cache_mb = 8;
    journal_mb = 2 }

let run_world w f =
  let result = ref None in
  ignore
    (Proc.spawn w.Fs.engine ~name:"t" (fun () ->
         result := Some (f ());
         Fs.stop w));
  Engine.run w.Fs.engine;
  Option.get !result

let test_journal_basic_ops mode () =
  let w = Fs.make (small_config mode) in
  run_world w (fun () ->
      let st = w.Fs.st in
      Fsops.mkdir st "/d";
      Fsops.create st "/d/a";
      Fsops.append st "/d/a" ~bytes:6000;
      Fsops.rename st ~src:"/d/a" ~dst:"/d/b";
      Alcotest.(check int) "size survives" 6000 (Fsops.stat st "/d/b").Fsops.st_size;
      Fsops.unlink st "/d/b";
      Fsops.sync st;
      let stats = Option.get st.State.journal_stats in
      Alcotest.(check bool) "transactions logged" true
        (stats.Su_core.Journaled.txns > 0);
      let r =
        Fsck.check ~geom:w.Fs.cfg.Fs.geom
          ~image:(Su_disk.Disk.image_snapshot w.Fs.disk)
          ~check_exposure:false
      in
      Alcotest.(check bool) "clean after sync" true (Fsck.ok r))

let crash_workload st rng () =
  Fsops.mkdir st "/w";
  let live = ref [] in
  for i = 1 to 150 do
    match Rng.int rng 6 with
    | 0 | 1 | 2 ->
      let p = Printf.sprintf "/w/f%d" i in
      Fsops.create st p;
      Fsops.append st p ~bytes:(1024 * Rng.int_range rng 1 8);
      live := p :: !live
    | 3 ->
      (match !live with
       | p :: rest -> Fsops.unlink st p; live := rest
       | [] -> ())
    | 4 ->
      Fsops.mkdir st (Printf.sprintf "/w/d%d" i)
    | _ ->
      (match !live with p :: _ -> ignore (Fsops.read_file st p) | [] -> ())
  done

let test_journal_crash_recovery mode () =
  List.iteri
    (fun i t ->
      let w = Fs.make (small_config mode) in
      ignore
        (Proc.spawn w.Fs.engine ~name:"w" (crash_workload w.Fs.st (Rng.create (700 + i))));
      let r = Crash.crash_and_check w t in
      if not (Fsck.ok r) then
        List.iter
          (fun v -> Format.eprintf "[journal t=%.2f] %a@." t Fsck.pp_violation v)
          r.Fsck.violations;
      Alcotest.(check bool)
        (Printf.sprintf "consistent after replay at %.2f" t)
        true (Fsck.ok r))
    [ 0.05; 0.4; 1.3; 3.1; 7.7; 20.0 ]

let test_journal_metadata_durability () =
  (* sync-commit journaling makes metadata durable immediately: crash
     right after the creates, recover, and the files must exist *)
  let w = Fs.make (small_config jsync) in
  let created = ref 0 in
  ignore
    (Proc.spawn w.Fs.engine ~name:"w" (fun () ->
         let st = w.Fs.st in
         Fsops.mkdir st "/d";
         for i = 1 to 40 do
           Fsops.create st (Printf.sprintf "/d/f%d" i);
           created := i
         done));
  (* far enough that some creates committed, well before the syncer
     writes anything in place *)
  let image = Crash.crash_at w 0.5 in
  Alcotest.(check bool) "some creates happened" true (!created > 5);
  Fs.recover_image w.Fs.cfg image;
  let r = Fsck.check ~geom:w.Fs.cfg.Fs.geom ~image ~check_exposure:false in
  Alcotest.(check bool) "consistent" true (Fsck.ok r);
  (* every create whose transaction committed before the crash is
     visible after replay; with sync commit that is all of them *)
  Alcotest.(check bool) "files recovered from the log" true
    (r.Fsck.files >= !created - 1)

let test_journal_group_commit_window () =
  (* group commit: metadata in the commit window is lost, but the
     image stays consistent *)
  let w = Fs.make (small_config jgroup) in
  ignore
    (Proc.spawn w.Fs.engine ~name:"w" (fun () ->
         let st = w.Fs.st in
         Fsops.mkdir st "/d";
         for i = 1 to 40 do
           Fsops.create st (Printf.sprintf "/d/f%d" i)
         done));
  let r = Crash.crash_and_check w 0.5 in
  Alcotest.(check bool) "consistent" true (Fsck.ok r)

let test_repair_no_order_crash () =
  (* the unsafe baseline leaves violations; repair must clean them and
     the repaired image must be remountable *)
  let cfg = small_config Fs.No_order in
  let w = Fs.make cfg in
  ignore
    (Proc.spawn w.Fs.engine ~name:"w" (crash_workload w.Fs.st (Rng.create 9)));
  let image = Crash.crash_at w 6.0 in
  let before = Fsck.check ~geom:cfg.Fs.geom ~image ~check_exposure:false in
  Alcotest.(check bool) "broken before repair" false (Fsck.ok before);
  let { Fsck.actions; final = after; _ } =
    Fsck.repair ~geom:cfg.Fs.geom ~image ~check_exposure:false ()
  in
  Alcotest.(check bool) "repair acted" true (List.length actions > 0);
  if not (Fsck.ok after) then
    List.iter
      (fun v -> Format.eprintf "[after repair] %a@." Fsck.pp_violation v)
      after.Fsck.violations;
  Alcotest.(check bool) "clean after repair" true (Fsck.ok after);
  Alcotest.(check int) "no leaks after map rebuild" 0 after.Fsck.leaked_frags;
  (* remount and keep using the volume *)
  let w2 = Fs.mount_image cfg image in
  run_world w2 (fun () ->
      let st = w2.Fs.st in
      Fsops.create st "/after-repair";
      Fsops.append st "/after-repair" ~bytes:4096;
      Fsops.sync st;
      let r =
        Fsck.check ~geom:cfg.Fs.geom
          ~image:(Su_disk.Disk.image_snapshot w2.Fs.disk)
          ~check_exposure:false
      in
      Alcotest.(check bool) "still clean after reuse" true (Fsck.ok r))

let test_repair_idempotent_on_clean () =
  let cfg = small_config Fs.Soft_updates in
  let w = Fs.make cfg in
  run_world w (fun () ->
      Fsops.mkdir w.Fs.st "/d";
      Fsops.create w.Fs.st "/d/x";
      Fsops.append w.Fs.st "/d/x" ~bytes:2048;
      Fsops.sync w.Fs.st);
  let image = Su_disk.Disk.image_snapshot w.Fs.disk in
  let { Fsck.actions; final = after; _ } =
    Fsck.repair ~geom:cfg.Fs.geom ~image ~check_exposure:true ()
  in
  Alcotest.(check bool) "clean stays clean" true (Fsck.ok after);
  (* only the unconditional map rebuild *)
  Alcotest.(check bool) "no destructive actions" true
    (List.for_all
       (function Fsck.Rebuilt_maps -> true | _ -> false)
       actions);
  Alcotest.(check int) "file survives" 1 after.Fsck.files

let test_mount_image_roundtrip () =
  let cfg = small_config Fs.Soft_updates in
  let w = Fs.make cfg in
  run_world w (fun () ->
      Fsops.mkdir w.Fs.st "/keep";
      Fsops.create w.Fs.st "/keep/data";
      Fsops.append w.Fs.st "/keep/data" ~bytes:12_288;
      Fsops.sync w.Fs.st);
  let image = Su_disk.Disk.image_snapshot w.Fs.disk in
  let w2 = Fs.mount_image cfg image in
  run_world w2 (fun () ->
      let st = w2.Fs.st in
      Alcotest.(check int) "size preserved" 12_288
        (Fsops.stat st "/keep/data").Fsops.st_size;
      Alcotest.(check int) "readable" 12 (Fsops.read_file st "/keep/data");
      (* allocation state carried over: new files do not collide *)
      Fsops.create st "/keep/more";
      Fsops.append st "/keep/more" ~bytes:8192;
      Fsops.sync st;
      let r =
        Fsck.check ~geom:cfg.Fs.geom
          ~image:(Su_disk.Disk.image_snapshot w2.Fs.disk)
          ~check_exposure:true
      in
      Alcotest.(check bool) "clean" true (Fsck.ok r);
      Alcotest.(check int) "two files" 2 r.Fsck.files)

let test_journal_wrap_checkpoint () =
  (* a tiny log forces wrap-around checkpoints *)
  let cfg = { (small_config jsync) with Fs.journal_mb = 1 } in
  let w = Fs.make cfg in
  run_world w (fun () ->
      let st = w.Fs.st in
      Fsops.mkdir st "/d";
      for i = 1 to 800 do
        let p = Printf.sprintf "/d/f%d" i in
        Fsops.create st p;
        if i mod 2 = 0 then Fsops.unlink st p
      done;
      Fsops.sync st;
      let stats = Option.get st.State.journal_stats in
      Alcotest.(check bool) "wrapped at least once" true
        (stats.Su_core.Journaled.wraps >= 1);
      let r =
        Fsck.check ~geom:cfg.Fs.geom
          ~image:(Su_disk.Disk.image_snapshot w.Fs.disk)
          ~check_exposure:false
      in
      Alcotest.(check bool) "clean across wraps" true (Fsck.ok r))

let test_replay_idempotent () =
  (* recovering twice yields the same state as recovering once *)
  let w = Fs.make (small_config jsync) in
  ignore
    (Proc.spawn w.Fs.engine ~name:"w" (crash_workload w.Fs.st (Rng.create 55)));
  let image = Crash.crash_at w 2.0 in
  let once = Array.map Su_fstypes.Types.copy_cell image in
  Fs.recover_image w.Fs.cfg once;
  let twice = Array.map Su_fstypes.Types.copy_cell once in
  Fs.recover_image w.Fs.cfg twice;
  let r1 = Fsck.check ~geom:w.Fs.cfg.Fs.geom ~image:once ~check_exposure:false in
  let r2 = Fsck.check ~geom:w.Fs.cfg.Fs.geom ~image:twice ~check_exposure:false in
  Alcotest.(check bool) "once is clean" true (Fsck.ok r1);
  Alcotest.(check bool) "twice is clean" true (Fsck.ok r2);
  Alcotest.(check int) "same files" r1.Fsck.files r2.Fsck.files;
  Alcotest.(check int) "same dirs" r1.Fsck.dirs r2.Fsck.dirs;
  Alcotest.(check int) "same leaks" r1.Fsck.leaked_frags r2.Fsck.leaked_frags

let test_journal_with_nvram () =
  (* log appends land in the NVRAM cache: sync commits become cheap
     and recovery still works *)
  let cfg = { (small_config jsync) with Fs.nvram_mb = 2 } in
  let w = Fs.make cfg in
  ignore
    (Proc.spawn w.Fs.engine ~name:"w" (crash_workload w.Fs.st (Rng.create 77)));
  let r = Crash.crash_and_check w 1.5 in
  if not (Fsck.ok r) then
    List.iter
      (fun v -> Format.eprintf "[journal+nvram] %a@." Fsck.pp_violation v)
      r.Fsck.violations;
  Alcotest.(check bool) "consistent" true (Fsck.ok r);
  Alcotest.(check bool) "work recovered" true (r.Fsck.files > 0)

let suite =
  [
    Alcotest.test_case "journal with nvram" `Quick test_journal_with_nvram;
    Alcotest.test_case "replay idempotent" `Quick test_replay_idempotent;
    Alcotest.test_case "journal basic (sync)" `Quick (test_journal_basic_ops jsync);
    Alcotest.test_case "journal basic (group)" `Quick
      (test_journal_basic_ops jgroup);
    Alcotest.test_case "journal crash recovery (sync)" `Quick
      (test_journal_crash_recovery jsync);
    Alcotest.test_case "journal crash recovery (group)" `Quick
      (test_journal_crash_recovery jgroup);
    Alcotest.test_case "journal metadata durability" `Quick
      test_journal_metadata_durability;
    Alcotest.test_case "journal group-commit window" `Quick
      test_journal_group_commit_window;
    Alcotest.test_case "repair no-order crash" `Quick test_repair_no_order_crash;
    Alcotest.test_case "repair idempotent on clean" `Quick
      test_repair_idempotent_on_clean;
    Alcotest.test_case "mount image roundtrip" `Quick test_mount_image_roundtrip;
    Alcotest.test_case "journal wrap checkpoint" `Quick
      test_journal_wrap_checkpoint;
  ]
