let () =
  Alcotest.run "softupdates"
    [
      ("util", Test_util.suite);
      ("sim", Test_sim.suite);
      ("disk", Test_disk.suite);
      ("driver", Test_driver.suite);
      ("cache", Test_cache.suite);
      ("fstypes", Test_fstypes.suite);
      ("volume", Test_volume.suite);
      ("alloc", Test_alloc.suite);
      ("fs", Test_fs.suite);
      ("fsops-edge", Test_fsops_edge.suite);
      ("schemes", Test_schemes.suite);
      ("softdep", Test_softdep.suite);
      ("workload", Test_workload.suite);
      ("fsck", Test_fsck.suite);
      ("crash", Test_crash.suite);
      ("journal", Test_journal.suite);
      ("model", Test_model.suite);
      ("experiments", Test_experiments.suite);
      ("regressions", Test_regressions.suite);
      ("fault", Test_fault.suite);
      ("retry", Test_retry.suite);
      ("faultsweep", Test_faultsweep.suite);
      ("health", Test_health.suite);
      ("integrity", Test_integrity.suite);
      ("check", Test_check.suite);
      ("fuzz", Test_fuzz.suite);
      ("trace-golden", Test_trace_golden.suite);
      ("obs", Test_obs.suite);
      ("shapes", Test_shapes.suite);
      ("loadgen", Test_loadgen.suite);
      ("cli", Test_cli.suite);
    ]
