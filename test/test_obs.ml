(* Unit tests for the observability layer: histograms, the JSON
   printer/parser, event sinks, the trace record cache and the
   nan/inf guards on report cells. *)
open Su_obs

(* --- Hist --------------------------------------------------------------- *)

let test_hist_exact_moments () =
  let h = Hist.create () in
  let xs = [ 0.0012; 0.5; 0.031; 7.0; 0.0012; 0.25 ] in
  List.iter (Hist.add h) xs;
  let n = List.length xs in
  let sum = List.fold_left ( +. ) 0.0 xs in
  Alcotest.(check int) "count" n (Hist.count h);
  Alcotest.(check (float 1e-12)) "sum" sum (Hist.sum h);
  Alcotest.(check (float 1e-12)) "mean" (sum /. float_of_int n) (Hist.mean h);
  Alcotest.(check (float 0.0)) "min" 0.0012 (Hist.min_value h);
  Alcotest.(check (float 0.0)) "max" 7.0 (Hist.max_value h)

let test_hist_empty () =
  let h = Hist.create () in
  Alcotest.(check int) "count" 0 (Hist.count h);
  Alcotest.(check (float 0.0)) "mean" 0.0 (Hist.mean h);
  Alcotest.(check (float 0.0)) "min" 0.0 (Hist.min_value h);
  Alcotest.(check (float 0.0)) "max" 0.0 (Hist.max_value h);
  Alcotest.(check (float 0.0)) "p50" 0.0 (Hist.percentile h 50.0)

let test_hist_dropped () =
  let h = Hist.create () in
  Hist.add h (-1.0);
  Hist.add h Float.nan;
  Hist.add h Float.infinity;
  Hist.add h 1.0;
  Alcotest.(check int) "dropped" 3 (Hist.dropped h);
  Alcotest.(check int) "count" 1 (Hist.count h)

let test_hist_percentile_bucketed () =
  (* power-of-two buckets: any percentile lies within a factor of two
     of the true order statistic, and inside [min,max] *)
  let h = Hist.create () in
  for i = 1 to 1000 do
    Hist.add h (0.001 *. float_of_int i)
  done;
  let p50 = Hist.percentile h 50.0 in
  let p99 = Hist.percentile h 99.0 in
  Alcotest.(check bool) "p50 near median" true (p50 >= 0.25 && p50 <= 1.0);
  Alcotest.(check bool) "p99 above p50" true (p99 >= p50);
  Alcotest.(check bool) "bounded by max" true
    (p99 <= Hist.max_value h +. 1e-12);
  Alcotest.(check (float 1e-9)) "p100 is exact max" (Hist.max_value h)
    (Hist.percentile h 100.0);
  Alcotest.(check (float 1e-9)) "p0 is exact min" (Hist.min_value h)
    (Hist.percentile h 0.0)

let test_hist_merge () =
  let a = Hist.create () and b = Hist.create () in
  List.iter (Hist.add a) [ 0.001; 0.1 ];
  List.iter (Hist.add b) [ 0.002; 3.0 ];
  Hist.merge_into ~dst:a b;
  Alcotest.(check int) "count" 4 (Hist.count a);
  Alcotest.(check (float 1e-12)) "sum" 3.103 (Hist.sum a);
  Alcotest.(check (float 0.0)) "min" 0.001 (Hist.min_value a);
  Alcotest.(check (float 0.0)) "max" 3.0 (Hist.max_value a)

(* [Hist.merge a b] must equal adding both sample sets serially into
   one histogram — this is what lets parallel loadgen shards merge by
   index and render byte-identical reports at any --jobs. Samples are
   dyadic rationals (k/1024) so every float sum is exact and equality
   checks are [=], not approximate. *)
let prop_merge_matches_serial =
  QCheck.Test.make ~name:"hist merge equals serial accumulation" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(0 -- 60) (int_range 1 4096))
        (list_of_size Gen.(0 -- 60) (int_range 1 4096)))
    (fun (xs, ys) ->
      let v k = float_of_int k /. 1024.0 in
      let a = Hist.create () and b = Hist.create () in
      let serial = Hist.create () in
      List.iter (fun k -> Hist.add a (v k)) xs;
      List.iter (fun k -> Hist.add b (v k)) ys;
      List.iter (fun k -> Hist.add serial (v k)) (xs @ ys);
      let m = Hist.merge a b in
      Hist.count m = Hist.count serial
      && Hist.sum m = Hist.sum serial
      && Hist.min_value m = Hist.min_value serial
      && Hist.max_value m = Hist.max_value serial
      && Hist.buckets m = Hist.buckets serial
      && List.for_all
           (fun p -> Hist.percentile m p = Hist.percentile serial p)
           [ 0.0; 50.0; 90.0; 99.0; 100.0 ]
      (* and merge leaves its arguments untouched *)
      && Hist.count a = List.length xs
      && Hist.count b = List.length ys)

(* --- Json --------------------------------------------------------------- *)

let sample_doc =
  Json.Obj
    [
      ("name", Json.Str "a \"quoted\"\nstring\twith\\escapes");
      ("n", Json.Int 42);
      ("neg", Json.Int (-7));
      ("pi", Json.Float 3.14159265358979312);
      ("tenth", Json.Float 0.1);
      ("tiny", Json.Float 1.5e-9);
      ("whole", Json.Float 2048.0);
      ("flag", Json.Bool true);
      ("nothing", Json.Null);
      ( "xs",
        Json.List [ Json.Int 1; Json.Str "two"; Json.List []; Json.Obj [] ] );
    ]

(* [add_int]'s shift-based bucketing must agree exactly with [add] on
   the float value, across powers of two and their neighbours (where
   an off-by-one in the log would land in the wrong bucket), for both
   the integer fast path (base 1.0) and the fallback. *)
let test_hist_add_int_matches_add () =
  List.iter
    (fun base ->
      let a = Hist.create ~base ~buckets:32 () in
      let b = Hist.create ~base ~buckets:32 () in
      let samples =
        [ 0; 1; 2; 3; 4; 7; 8; 9; 63; 64; 65; 1023; 1024; 1025; 123_456 ]
      in
      List.iter
        (fun d ->
          Hist.add a (float_of_int d);
          Hist.add_int b d)
        samples;
      Alcotest.(check int)
        (Printf.sprintf "count at base %g" base)
        (Hist.count a) (Hist.count b);
      Alcotest.(check (list (pair (float 1e-9) int)))
        (Printf.sprintf "buckets at base %g" base)
        (Hist.buckets a) (Hist.buckets b);
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "sum at base %g" base)
        (Hist.sum a) (Hist.sum b))
    [ 1.0; 0.5 ];
  let h = Hist.create ~base:1.0 () in
  Hist.add_int h (-3);
  Alcotest.(check int) "negative dropped" 1 (Hist.dropped h);
  Alcotest.(check int) "negative not counted" 0 (Hist.count h)

let test_json_roundtrip () =
  List.iter
    (fun render ->
      match Json.parse (render sample_doc) with
      | Error e -> Alcotest.failf "parse error: %s" e
      | Ok doc' ->
        Alcotest.(check bool) "round-trips" true (Json.equal sample_doc doc'))
    [ Json.to_string; Json.to_string_pretty ]

let test_json_float_exact () =
  (* the printed representation must parse back to the same bits *)
  List.iter
    (fun x ->
      match Json.parse (Json.to_string (Json.Float x)) with
      | Ok (Json.Float y) ->
        Alcotest.(check bool)
          (Printf.sprintf "%h survives" x)
          true
          (Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
      | Ok _ -> Alcotest.fail "not a float"
      | Error e -> Alcotest.failf "parse error: %s" e)
    [ 0.1; 1.0 /. 3.0; 1e300; 5e-324; 123456789.25; 0.0 ]

let test_json_nonfinite_null () =
  Alcotest.(check string) "nan" "null" (Json.to_string (Json.Float Float.nan));
  Alcotest.(check string) "inf" "null"
    (Json.to_string (Json.Float Float.infinity));
  Alcotest.(check string) "-inf" "null"
    (Json.to_string (Json.Float Float.neg_infinity))

let test_json_parse_errors () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; "{'a':1}" ]

let test_json_accessors () =
  let doc = sample_doc in
  Alcotest.(check (option int)) "to_int" (Some 42)
    (Option.bind (Json.member "n" doc) Json.to_int);
  Alcotest.(check (option (float 0.0))) "int as float" (Some 42.0)
    (Option.bind (Json.member "n" doc) Json.to_float);
  Alcotest.(check bool) "missing member" true (Json.member "zzz" doc = None);
  Alcotest.(check bool) "get raises" true
    (try
       ignore (Json.get "zzz" doc);
       false
     with Not_found -> true)

(* --- Events ------------------------------------------------------------- *)

let test_events_basic () =
  let ev = Events.create () in
  Events.emit ev ~t_sim:0.5 ~kind:"io.complete" [ ("id", Json.Int 1) ];
  Events.emit ev ~t_sim:1.0 ~kind:"trace.reset" [];
  Events.emit ev ~t_sim:1.5 ~kind:"io.complete" [ ("id", Json.Int 2) ];
  Events.emit ev ~t_sim:2.0 ~kind:"io.complete" [ ("id", Json.Int 3) ];
  Alcotest.(check int) "count" 4 (Events.count ev);
  Alcotest.(check int) "count_kind" 3 (Events.count_kind ev "io.complete");
  Alcotest.(check int) "since marker" 2
    (Events.count_kind_since_marker ev ~marker:"trace.reset"
       ~kind:"io.complete");
  Alcotest.(check int) "no such marker counts all" 3
    (Events.count_kind_since_marker ev ~marker:"bogus" ~kind:"io.complete");
  (* every line is standalone JSON carrying t and kind, in order *)
  let lines = Events.to_lines ev in
  Alcotest.(check int) "one line per event" 4 (List.length lines);
  List.iter
    (fun line ->
      match Json.parse line with
      | Ok doc ->
        Alcotest.(check bool) "has t" true (Json.member "t" doc <> None);
        Alcotest.(check bool) "has kind" true (Json.member "kind" doc <> None)
      | Error e -> Alcotest.failf "bad line %S: %s" line e)
    lines;
  (match Json.parse (List.hd lines) with
   | Ok doc ->
     Alcotest.(check (option string)) "first kind" (Some "io.complete")
       (Option.bind (Json.member "kind" doc) Json.to_str)
   | Error e -> Alcotest.failf "parse: %s" e);
  Events.clear ev;
  Alcotest.(check int) "cleared" 0 (Events.count ev)

(* --- Trace record cache ------------------------------------------------- *)

let mk_record i =
  {
    Su_driver.Trace.r_id = i;
    r_kind = Su_driver.Request.Write;
    r_lbn = 8 * i;
    r_nfrags = 1;
    r_sync = false;
    r_issue = float_of_int i;
    r_start = float_of_int i +. 0.1;
    r_complete = float_of_int i +. 0.2;
  }

let test_trace_records_cached () =
  let tr = Su_driver.Trace.create ~keep_records:true () in
  for i = 1 to 5 do
    Su_driver.Trace.note tr (mk_record i)
  done;
  let r1 = Su_driver.Trace.records tr in
  let r2 = Su_driver.Trace.records tr in
  Alcotest.(check bool) "same list physically" true (r1 == r2);
  Alcotest.(check (list int)) "chronological" [ 1; 2; 3; 4; 5 ]
    (List.map (fun r -> r.Su_driver.Trace.r_id) r1);
  Su_driver.Trace.note tr (mk_record 6);
  let r3 = Su_driver.Trace.records tr in
  Alcotest.(check bool) "cache invalidated by note" true (r3 != r1);
  Alcotest.(check int) "sees the new record" 6 (List.length r3)

(* --- nan/inf guards on report cells ------------------------------------- *)

let test_cell_f_guards () =
  Alcotest.(check string) "nan" "-" (Su_util.Text_table.cell_f Float.nan);
  Alcotest.(check string) "inf" "-" (Su_util.Text_table.cell_f Float.infinity);
  Alcotest.(check string) "-inf" "-"
    (Su_util.Text_table.cell_f Float.neg_infinity);
  Alcotest.(check string) "finite" "1.5" (Su_util.Text_table.cell_f 1.5)

let test_stats_empty_minmax () =
  let s = Su_util.Stats.create () in
  Alcotest.(check (float 0.0)) "min" 0.0 (Su_util.Stats.min_value s);
  Alcotest.(check (float 0.0)) "max" 0.0 (Su_util.Stats.max_value s)

let suite =
  [
    Alcotest.test_case "hist exact moments" `Quick test_hist_exact_moments;
    Alcotest.test_case "hist empty" `Quick test_hist_empty;
    Alcotest.test_case "hist drops bad samples" `Quick test_hist_dropped;
    Alcotest.test_case "hist bucketed percentiles" `Quick
      test_hist_percentile_bucketed;
    Alcotest.test_case "hist merge" `Quick test_hist_merge;
    QCheck_alcotest.to_alcotest prop_merge_matches_serial;
    Alcotest.test_case "hist add_int matches add" `Quick
      test_hist_add_int_matches_add;
    Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json floats exact" `Quick test_json_float_exact;
    Alcotest.test_case "json non-finite is null" `Quick
      test_json_nonfinite_null;
    Alcotest.test_case "json rejects malformed" `Quick test_json_parse_errors;
    Alcotest.test_case "json accessors" `Quick test_json_accessors;
    Alcotest.test_case "event sink" `Quick test_events_basic;
    Alcotest.test_case "trace records cached" `Quick test_trace_records_cached;
    Alcotest.test_case "table cells never nan" `Quick test_cell_f_guards;
    Alcotest.test_case "stats empty min/max" `Quick test_stats_empty_minmax;
  ]
