(* Allocator invariants: no overlaps, alignment, extension, exhaustion
   and free-count bookkeeping. *)
open Su_sim
open Su_fs

let mk () =
  let cfg =
    { (Fs.config ~scheme:Fs.No_order ()) with
      Fs.geom = Su_fstypes.Geom.small;
      cache_mb = 8 }
  in
  Fs.make cfg

let in_world w f =
  let r = ref None in
  ignore
    (Proc.spawn w.Fs.engine (fun () ->
         r := Some (f ());
         Fs.stop w));
  Engine.run w.Fs.engine;
  Option.get !r

let test_block_alignment () =
  let w = mk () in
  in_world w (fun () ->
      for _ = 1 to 50 do
        let a = Alloc.alloc_block w.Fs.st ~cg_hint:0 in
        Alcotest.(check int) "block aligned" 0 (a mod 8)
      done)

let test_frag_runs_within_block () =
  let w = mk () in
  in_world w (fun () ->
      for count = 1 to 8 do
        let a = Alloc.alloc_frags w.Fs.st ~cg_hint:1 ~count in
        Alcotest.(check bool) "run stays in one block" true
          ((a mod 8) + count <= 8)
      done)

let prop_no_overlap =
  QCheck.Test.make ~name:"allocations never overlap" ~count:20
    QCheck.(list_of_size Gen.(5 -- 40) (int_range 1 8))
    (fun counts ->
      let w = mk () in
      in_world w (fun () ->
          let taken = Hashtbl.create 256 in
          List.for_all
            (fun count ->
              let a =
                if count = 8 then Alloc.alloc_block w.Fs.st ~cg_hint:0
                else Alloc.alloc_frags w.Fs.st ~cg_hint:0 ~count
              in
              let ok = ref true in
              for f = a to a + count - 1 do
                if Hashtbl.mem taken f then ok := false;
                Hashtbl.replace taken f ()
              done;
              !ok)
            counts))

let test_free_restores_counts () =
  let w = mk () in
  in_world w (fun () ->
      let st = w.Fs.st in
      let before = Alloc.free_frags_total st in
      let a = Alloc.alloc_block st ~cg_hint:0 in
      let b = Alloc.alloc_frags st ~cg_hint:0 ~count:3 in
      Alcotest.(check int) "counts drop" (before - 11) (Alloc.free_frags_total st);
      Alloc.free_run st (a, 8);
      Alloc.free_run st (b, 3);
      Alcotest.(check int) "counts restored" before (Alloc.free_frags_total st))

let test_double_free_detected () =
  let w = mk () in
  in_world w (fun () ->
      let st = w.Fs.st in
      let a = Alloc.alloc_frags st ~cg_hint:0 ~count:2 in
      Alloc.free_run st (a, 2);
      try
        Alloc.free_run st (a, 2);
        Alcotest.fail "expected double-free failure"
      with Failure _ -> ())

let test_try_extend () =
  let w = mk () in
  in_world w (fun () ->
      let st = w.Fs.st in
      (* take a fresh block-aligned run of 2; the next 6 fragments in
         the block are free, so extension succeeds *)
      let a = Alloc.alloc_block st ~cg_hint:2 in
      Alloc.free_run st (a, 8);
      let b = Alloc.alloc_frags st ~cg_hint:2 ~count:2 in
      if b mod 8 = 0 then begin
        Alcotest.(check bool) "extend 2->5" true
          (Alloc.try_extend st ~start:b ~have:2 ~want:5);
        (* now claim the tail and verify further extension fails *)
        Alcotest.(check bool) "extend 5->8" true
          (Alloc.try_extend st ~start:b ~have:5 ~want:8);
        Alcotest.(check bool) "cannot cross block" false
          (try Alloc.try_extend st ~start:b ~have:8 ~want:9
           with Invalid_argument _ -> false)
      end)

let test_inode_alloc_free () =
  let w = mk () in
  in_world w (fun () ->
      let st = w.Fs.st in
      let a = Alloc.alloc_inode st ~cg_hint:0 ~spread:false in
      let b = Alloc.alloc_inode st ~cg_hint:0 ~spread:false in
      Alcotest.(check bool) "distinct" true (a <> b);
      Alcotest.(check bool) "valid" true
        (Su_fstypes.Geom.valid_inum Su_fstypes.Geom.small a);
      Alloc.free_inode st a;
      let c = Alloc.alloc_inode st ~cg_hint:0 ~spread:false in
      Alcotest.(check int) "lowest free reused" a c)

let test_spread_rotates_groups () =
  let w = mk () in
  in_world w (fun () ->
      let st = w.Fs.st in
      let groups =
        List.init 4 (fun _ ->
            Su_fstypes.Geom.cg_of_inode Su_fstypes.Geom.small
              (Alloc.alloc_inode st ~cg_hint:0 ~spread:true))
      in
      (* round-robin touches distinct groups *)
      let distinct = List.sort_uniq compare groups in
      Alcotest.(check bool) "spread over groups" true (List.length distinct >= 3))

let test_exhaustion_raises () =
  (* a tiny dedicated world: exhaust the inode supply *)
  let w = mk () in
  in_world w (fun () ->
      let st = w.Fs.st in
      let total = Su_fstypes.Geom.total_inodes Su_fstypes.Geom.small in
      (try
         for _ = 1 to total + 10 do
           ignore (Alloc.alloc_inode st ~cg_hint:0 ~spread:false)
         done;
         Alcotest.fail "expected exhaustion"
       with Failure _ -> ()))

(* --- Freemap.find_run vs the reference byte scan ------------------------ *)

(* The bitset search must return exactly the offset the historical
   stepped byte scan would, for every occupancy pattern — that is the
   whole contract that lets the allocator index stay always-on without
   moving a single golden-trace block address. The reference below is
   the naive spec: walk every candidate offset in rotor order with
   wraparound and take the first fitting run. Geometry is generated
   with the invariants real groups have (base, rel_first and total all
   block-aligned). *)
let ref_find_run ~free ~base ~rel_first ~total ~fpb ~rotor ~count ~aligned =
  let area_end = rel_first + total in
  let norm off =
    let off = if off < rel_first then rel_first else off in
    rel_first + ((off - rel_first) mod total)
  in
  let fits o =
    o + count <= area_end
    && (if aligned then (base + o) mod fpb = 0
        else ((base + o) mod fpb) + count <= fpb)
    &&
    let ok = ref true in
    for i = o to o + count - 1 do
      if not free.(i) then ok := false
    done;
    !ok
  in
  let rec go o stop = if o >= stop then None else if fits o then Some o else go (o + 1) stop in
  let start = norm rotor in
  match go start area_end with
  | Some _ as r -> r
  | None -> if start > rel_first then go rel_first start else None

let prop_find_run_matches_byte_scan =
  QCheck.Test.make ~name:"freemap find_run equals reference byte scan"
    ~count:500
    QCheck.(
      quad
        (int_range 2 16) (* data blocks *)
        (int_range 0 3) (* header blocks before the data area *)
        (pair (int_range 0 1000) (int_range 1 8)) (* rotor seed, count *)
        (pair bool (int_range 0 1000)) (* aligned, occupancy seed *))
    (fun (nblocks, hdr, (rotor_seed, count), (aligned, occ_seed)) ->
      let fpb = 8 in
      let rel_first = hdr * fpb in
      let total = nblocks * fpb in
      let area_end = rel_first + total in
      let base = 3 * fpb in
      let rotor = rotor_seed mod (2 * area_end) in
      (* deterministic pseudo-random occupancy from the seed *)
      let free = Array.make area_end false in
      let s = ref (occ_seed + 1) in
      for i = rel_first to area_end - 1 do
        s := (!s * 1103515245) + 12345;
        free.(i) <- (!s lsr 16) land 3 <> 0 (* ~75% free *)
      done;
      let fm = Freemap.create () in
      Array.iteri (fun i b -> if b then Freemap.note_release fm ~off:i ~count:1) free;
      Freemap.find_run fm ~base ~rel_first ~total ~fpb ~rotor ~count ~aligned
      = ref_find_run ~free ~base ~rel_first ~total ~fpb ~rotor ~count ~aligned)

let suite =
  [
    Alcotest.test_case "block alignment" `Quick test_block_alignment;
    Alcotest.test_case "frag runs within block" `Quick
      test_frag_runs_within_block;
    QCheck_alcotest.to_alcotest prop_no_overlap;
    QCheck_alcotest.to_alcotest prop_find_run_matches_byte_scan;
    Alcotest.test_case "free restores counts" `Quick test_free_restores_counts;
    Alcotest.test_case "double free detected" `Quick test_double_free_detected;
    Alcotest.test_case "try_extend" `Quick test_try_extend;
    Alcotest.test_case "inode alloc/free" `Quick test_inode_alloc_free;
    Alcotest.test_case "spread rotates groups" `Quick test_spread_rotates_groups;
    Alcotest.test_case "exhaustion raises" `Quick test_exhaustion_raises;
  ]
