(* End-to-end metadata integrity: the checksum region follows write
   acknowledgements (so lost and misdirected writes become detectable
   at rest), bit-rot on the read path corrupts only the returned copy,
   fsck surfaces and resynchronises checksum violations, and the
   corruption sweep holds detect-or-fail-clean with verdicts invariant
   under --jobs. *)
open Su_sim
open Su_fstypes
open Su_disk

let mk_disk ?fault () =
  let e = Engine.create () in
  let d =
    Disk.create ~engine:e ~params:Disk_params.hp_c2447 ~nfrags:4096 ?fault
      ~checksums:true ()
  in
  (e, d)

let payload n flbn0 =
  Array.init n (fun i ->
      Types.Frag (Types.Written { inum = 3; gen = 1; flbn = flbn0 + i }))

let digest_of d frag = Types.cell_digest (Disk.peek d frag)

let expected d frag =
  match Disk.expected_digest d frag with
  | Some dg -> dg
  | None -> Alcotest.fail (Printf.sprintf "no digest for fragment %d" frag)

let test_acked_writes_refresh_digests () =
  let e, d = mk_disk () in
  Disk.submit d ~lbn:100 ~nfrags:4 ~op:Disk.Write ~payload:(Some (payload 4 0))
    ~on_done:(fun _ _ -> ());
  Engine.run e;
  for i = 100 to 103 do
    Alcotest.(check int)
      (Printf.sprintf "fragment %d digest follows the media" i)
      (digest_of d i) (expected d i)
  done

let test_lost_write_detectable_at_rest () =
  (* the ack refreshes the digest, the media keeps the stale cell: the
     two must disagree afterwards — that is the whole detection story *)
  let fault = { Fault.none with Fault.lose_at = [ 200 ] } in
  let e, d = mk_disk ~fault () in
  let ok = ref false in
  Disk.submit d ~lbn:200 ~nfrags:1 ~op:Disk.Write ~payload:(Some (payload 1 0))
    ~on_done:(fun r _ -> ok := Result.is_ok r);
  Engine.run e;
  Alcotest.(check bool) "the lie: reported success" true !ok;
  Alcotest.(check int) "one silent fault" 1 (Disk.silent_faults d);
  Alcotest.(check bool) "media kept the stale cell" true
    (Disk.peek d 200 = Types.Empty);
  Alcotest.(check bool) "digest disagrees with the media" true
    (expected d 200 <> digest_of d 200)

let test_misdirected_write_detectable_at_both_ends () =
  let fault = { Fault.none with Fault.misdirect_at = [ (300, 400) ] } in
  let e, d = mk_disk ~fault () in
  Disk.submit d ~lbn:300 ~nfrags:1 ~op:Disk.Write ~payload:(Some (payload 1 7))
    ~on_done:(fun _ _ -> ());
  Engine.run e;
  Alcotest.(check bool) "intended sector untouched" true
    (Disk.peek d 300 = Types.Empty);
  Alcotest.(check bool) "payload landed on the victim" true
    (Disk.peek d 400 <> Types.Empty);
  Alcotest.(check bool) "intended sector mismatches" true
    (expected d 300 <> digest_of d 300);
  Alcotest.(check bool) "victim sector mismatches" true
    (expected d 400 <> digest_of d 400)

let test_flip_corrupts_only_the_returned_copy () =
  let fault = { Fault.none with Fault.flip_at = [ 500 ] } in
  let e, d = mk_disk ~fault () in
  let reads = ref [] in
  Disk.submit d ~lbn:500 ~nfrags:1 ~op:Disk.Write ~payload:(Some (payload 1 2))
    ~on_done:(fun _ _ -> ());
  Engine.run e;
  for _ = 1 to 2 do
    (* the raw device services one request at a time *)
    Disk.submit d ~lbn:500 ~nfrags:1 ~op:Disk.Read ~payload:None
      ~on_done:(fun r _ ->
        match r with
        | Ok (Some cells) -> reads := Types.cell_digest cells.(0) :: !reads
        | _ -> Alcotest.fail "read failed");
    Engine.run e
  done;
  match List.rev !reads with
  | [ first; second ] ->
    Alcotest.(check bool) "first read corrupted" true (first <> expected d 500);
    Alcotest.(check int) "second read clean (media intact)" (expected d 500)
      second;
    Alcotest.(check bool) "media itself never changed" true
      (digest_of d 500 = expected d 500)
  | _ -> Alcotest.fail "expected two reads"

(* --- fsck: detection and resynchronisation ----------------------------- *)

let small_world_image () =
  (* a tiny checksummed volume with a handful of files, cleanly synced *)
  let cfg =
    {
      (Su_fs.Fs.config ~scheme:Su_fs.Fs.Soft_updates ()) with
      Su_fs.Fs.geom = Geom.v ~mb:32 ~cg_mb:16 ~inodes_per_cg:1024 ();
      cache_mb = 4;
      checksums = true;
    }
  in
  let w = Su_fs.Fs.make cfg in
  ignore
    (Proc.spawn w.Su_fs.Fs.engine ~name:"setup" (fun () ->
         Su_fs.Fsops.mkdir w.Su_fs.Fs.st "/d";
         for i = 1 to 5 do
           let p = Printf.sprintf "/d/f%d" i in
           Su_fs.Fsops.create w.Su_fs.Fs.st p;
           Su_fs.Fsops.append w.Su_fs.Fs.st p ~bytes:4096
         done;
         Su_fs.Fsops.sync w.Su_fs.Fs.st;
         Su_fs.Fs.stop w));
  Engine.run w.Su_fs.Fs.engine;
  (cfg, Disk.logical_snapshot w.Su_fs.Fs.disk)

let find_data_frag image =
  let rec go i =
    if i >= Array.length image then Alcotest.fail "no data fragment"
    else
      match image.(i) with
      | Types.Frag (Types.Written _) -> i
      | _ -> go (i + 1)
  in
  go 0

let test_fsck_flags_and_resyncs_csum_mismatch () =
  let cfg, image = small_world_image () in
  let geom = cfg.Su_fs.Fs.geom in
  let clean = Su_fs.Fsck.check ~geom ~image ~check_exposure:false in
  Alcotest.(check int) "clean volume, clean csums" 0
    (List.length clean.Su_fs.Fsck.violations);
  (* rot one data fragment behind the checksum region's back *)
  let frag = find_data_frag image in
  let rng = Su_util.Rng.create 42 in
  image.(frag) <- Fault.corrupt_cell rng image.(frag);
  let dirty = Su_fs.Fsck.check ~geom ~image ~check_exposure:false in
  let flagged =
    List.exists
      (function
        | Su_fs.Fsck.Csum_mismatch { frag = f } -> f = frag
        | _ -> false)
      dirty.Su_fs.Fsck.violations
  in
  Alcotest.(check bool) "mismatch flagged at the rotten fragment" true flagged;
  let { Su_fs.Fsck.actions; final; converged; _ } =
    Su_fs.Fsck.repair ~geom ~image ~check_exposure:false ()
  in
  Alcotest.(check bool) "repair converged" true converged;
  Alcotest.(check int) "final check clean" 0
    (List.length final.Su_fs.Fsck.violations);
  Alcotest.(check bool) "resync action noted" true
    (List.exists
       (function Su_fs.Fsck.Resynced_csums _ -> true | _ -> false)
       actions)

(* --- the campaign ------------------------------------------------------ *)

let sweep_cfg scheme =
  {
    (Su_fs.Fs.config ~scheme ()) with
    Su_fs.Fs.geom = Geom.v ~mb:32 ~cg_mb:16 ~inodes_per_cg:1024 ();
    cache_mb = 4;
    journal_mb = 2;
  }

let run_sweep ~jobs ~scheme ~name ~max_injections =
  let ops =
    match Su_workload.Fuzz.find_case name with
    | Some ops -> ops
    | None -> Alcotest.fail ("unknown built-in case " ^ name)
  in
  let cfg = sweep_cfg scheme in
  let oracle_cfg =
    { cfg with Su_fs.Fs.checksums = true; Su_fs.Fs.spare_frags = 64 }
  in
  let oracle image =
    Su_workload.Fuzz.check_final_image ~cfg:oracle_cfg image ops
  in
  Su_check.Corruptsweep.sweep ~jobs ~max_injections ~cfg ~oracle
    (Su_workload.Fuzz.workload_of_ops ~name ops)

let test_corruptsweep_soft_updates () =
  let s =
    run_sweep ~jobs:1 ~scheme:Su_fs.Fs.Soft_updates ~name:"smallfiles"
      ~max_injections:24
  in
  Alcotest.(check bool) "detects-or-fails-clean" true
    (Su_check.Corruptsweep.ok s);
  Alcotest.(check int) "no silent escapes" 0
    s.Su_check.Corruptsweep.cs_silent_escapes;
  Alcotest.(check int) "all injections swept" 24 s.Su_check.Corruptsweep.cs_swept;
  Alcotest.(check bool) "corruption was detected" true
    (s.Su_check.Corruptsweep.cs_detected > 0)

let test_corruptsweep_journaled () =
  let s =
    run_sweep ~jobs:1
      ~scheme:(Su_fs.Fs.Journaled { group_commit = false })
      ~name:"renamefile" ~max_injections:24
  in
  Alcotest.(check bool) "detects-or-fails-clean" true
    (Su_check.Corruptsweep.ok s);
  Alcotest.(check int) "no silent escapes" 0
    s.Su_check.Corruptsweep.cs_silent_escapes

let test_corruptsweep_jobs_invariant () =
  let s1 =
    run_sweep ~jobs:1 ~scheme:Su_fs.Fs.Soft_updates ~name:"dirtree"
      ~max_injections:18
  in
  let s2 =
    run_sweep ~jobs:3 ~scheme:Su_fs.Fs.Soft_updates ~name:"dirtree"
      ~max_injections:18
  in
  Alcotest.(check bool) "summaries structurally identical" true (s1 = s2)

let suite =
  [
    Alcotest.test_case "acked writes refresh digests" `Quick
      test_acked_writes_refresh_digests;
    Alcotest.test_case "lost write detectable at rest" `Quick
      test_lost_write_detectable_at_rest;
    Alcotest.test_case "misdirected write detectable at both ends" `Quick
      test_misdirected_write_detectable_at_both_ends;
    Alcotest.test_case "flip corrupts only the returned copy" `Quick
      test_flip_corrupts_only_the_returned_copy;
    Alcotest.test_case "fsck flags and resyncs csum mismatch" `Quick
      test_fsck_flags_and_resyncs_csum_mismatch;
    Alcotest.test_case "corruptsweep: soft updates" `Quick
      test_corruptsweep_soft_updates;
    Alcotest.test_case "corruptsweep: journaled" `Quick
      test_corruptsweep_journaled;
    Alcotest.test_case "corruptsweep: jobs-invariant verdicts" `Quick
      test_corruptsweep_jobs_invariant;
  ]
