(* Workload generators and the measurement harness. *)
open Su_fs
open Su_workload

let small_cfg scheme =
  { (Fs.config ~scheme ()) with Fs.geom = Su_fstypes.Geom.small; cache_mb = 8 }

let test_tree_spec_profile () =
  let nodes = Tree.spec () in
  Alcotest.(check int) "535 files" 535 (Tree.count_files nodes);
  let total = Tree.total_bytes nodes in
  (* scaled to ~14.3 MB (rounding slack allowed) *)
  Alcotest.(check bool) "about 14.3 MB" true
    (abs (total - 14_300_000) < 200_000);
  Alcotest.(check bool) "has directories" true (Tree.count_dirs nodes > 5)

let test_tree_spec_deterministic () =
  let a = Tree.spec ~seed:5 () and b = Tree.spec ~seed:5 () in
  Alcotest.(check bool) "same spec" true (a = b);
  let c = Tree.spec ~seed:6 () in
  Alcotest.(check bool) "different seed differs" true (a <> c)

let test_populate_and_copy () =
  let w = Fs.make (small_cfg Fs.No_order) in
  let result = ref None in
  ignore
    (Su_sim.Proc.spawn w.Fs.engine (fun () ->
         let st = w.Fs.st in
         let nodes = Tree.spec ~files:40 ~total_bytes:400_000 () in
         Fsops.mkdir st "/src";
         Tree.populate st ~base:"/src" nodes;
         Fsops.mkdir st "/dst";
         Tree.copy st ~src:"/src" ~dst:"/dst";
         (* both trees hold the same file count and bytes *)
         let count base =
           let rec go path acc =
             List.fold_left
               (fun acc name ->
                 if name = "." || name = ".." then acc
                 else
                   let p = path ^ "/" ^ name in
                   let s = Fsops.stat st p in
                   match s.Fsops.st_ftype with
                   | Su_fstypes.Types.F_dir -> go p acc
                   | _ -> (fst acc + 1, snd acc + s.Fsops.st_size))
               acc (Fsops.readdir st path)
           in
           go base (0, 0)
         in
         let fs, bs = count "/src" and fd, bd = count "/dst" in
         result := Some (fs, bs, fd, bd);
         Fs.stop w));
  Su_sim.Engine.run w.Fs.engine;
  match !result with
  | Some (fs, bs, fd, bd) ->
    Alcotest.(check int) "file count copied" fs fd;
    Alcotest.(check int) "bytes copied" bs bd;
    Alcotest.(check int) "40 files" 40 fs
  | None -> Alcotest.fail "did not finish"

let test_tree_remove_cleans () =
  let w = Fs.make (small_cfg Fs.No_order) in
  ignore
    (Su_sim.Proc.spawn w.Fs.engine (fun () ->
         let st = w.Fs.st in
         let free0 = Alloc.free_frags_total st in
         let nodes = Tree.spec ~files:30 ~total_bytes:300_000 () in
         Fsops.mkdir st "/t";
         Tree.populate st ~base:"/t" nodes;
         Tree.remove st "/t";
         Fsops.sync st;
         Alcotest.(check bool) "gone" false (Fsops.exists st "/t");
         Alcotest.(check int) "space restored" free0 (Alloc.free_frags_total st);
         Fs.stop w));
  Su_sim.Engine.run w.Fs.engine

let test_runner_measures () =
  let cfg = small_cfg Fs.Soft_updates in
  let m =
    Runner.run ~cfg ~users:2
      ~setup:(fun st ->
        Fsops.mkdir st "/u0";
        Fsops.mkdir st "/u1")
      (fun i st ->
        for k = 1 to 10 do
          let p = Printf.sprintf "/u%d/f%d" i k in
          Fsops.create st p;
          Fsops.append st p ~bytes:2048
        done)
  in
  Alcotest.(check int) "users" 2 m.Runner.users;
  Alcotest.(check bool) "elapsed positive" true (m.Runner.elapsed_avg > 0.0);
  Alcotest.(check bool) "max >= avg" true
    (m.Runner.elapsed_max >= m.Runner.elapsed_avg);
  Alcotest.(check bool) "cpu charged" true (m.Runner.cpu_total > 0.0);
  Alcotest.(check bool) "softdep stats present" true (m.Runner.softdep <> None)

let test_runner_cold_start () =
  (* with cold start (default when setup is given), the measured phase
     must read metadata back from the disk *)
  let cfg = small_cfg Fs.No_order in
  let m =
    Runner.run ~cfg ~users:1
      ~setup:(fun st ->
        Fsops.mkdir st "/d";
        for i = 1 to 20 do
          let p = Printf.sprintf "/d/f%d" i in
          Fsops.create st p;
          Fsops.append st p ~bytes:4096
        done)
      (fun _ st -> ignore (Fsops.read_file st "/d/f7"))
  in
  Alcotest.(check bool) "reads hit the disk" true (m.Runner.disk_reads > 0)

let test_runner_repeat_averages () =
  let calls = ref 0 in
  let mk u =
    {
      Runner.users = 1;
      elapsed_avg = float_of_int u;
      elapsed_max = float_of_int u;
      cpu_total = 1.0;
      disk_requests = 10 * u;
      disk_reads = 0;
      disk_writes = 0;
      avg_response_ms = 0.0;
      avg_access_ms = 0.0;
      sync_response_ms = 0.0;
      response_p50_ms = 0.0;
      response_p90_ms = 0.0;
      response_p99_ms = 0.0;
      response_max_ms = 0.0;
      counters = [ ("cache.hits", float_of_int (10 * u)) ];
      softdep = None;
    }
  in
  let m =
    Runner.repeat ~reps:3 (fun rep ->
        incr calls;
        mk (rep + 1))
  in
  Alcotest.(check int) "three runs" 3 !calls;
  Alcotest.(check (float 1e-9)) "elapsed averaged" 2.0 m.Runner.elapsed_avg;
  Alcotest.(check int) "requests averaged" 20 m.Runner.disk_requests

let test_benchmarks_smoke () =
  (* tiny instances of each throughput benchmark, one scheme *)
  let cfg = small_cfg Fs.Soft_updates in
  let total_files = 60 in
  let m1 = Benchmarks.create_files ~cfg ~users:2 ~total_files in
  Alcotest.(check bool) "create throughput" true
    (Benchmarks.files_per_second ~total_files m1 > 0.0);
  let m2 = Benchmarks.remove_files ~cfg ~users:2 ~total_files in
  Alcotest.(check bool) "remove throughput" true
    (Benchmarks.files_per_second ~total_files m2 > 0.0);
  let m3 = Benchmarks.create_remove_files ~cfg ~users:2 ~total_files in
  Alcotest.(check bool) "create/remove throughput" true
    (Benchmarks.files_per_second ~total_files m3 > 0.0);
  (* create/remove with soft updates stays near memory speed: barely
     any disk traffic per file *)
  Alcotest.(check bool) "create/remove is almost I/O free" true
    (m3.Runner.disk_requests < total_files)

let test_andrew_phases () =
  let cfg = small_cfg Fs.Soft_updates in
  let s = Andrew.run ~cfg ~reps:2 in
  Alcotest.(check int) "five phases" 5 (Array.length s.Andrew.mean.Andrew.phases);
  Array.iter
    (fun p -> Alcotest.(check bool) "phase positive" true (p > 0.0))
    s.Andrew.mean.Andrew.phases;
  (* the compile phase dominates, as in the paper *)
  let compile = s.Andrew.mean.Andrew.phases.(4) in
  Alcotest.(check bool) "compile dominates" true
    (compile > 0.8 *. s.Andrew.mean.Andrew.total /. 1.2);
  Alcotest.(check bool) "total is the sum" true
    (Float.abs
       (Array.fold_left ( +. ) 0.0 s.Andrew.mean.Andrew.phases
       -. s.Andrew.mean.Andrew.total)
     < 1e-6)

let test_sdet_runs () =
  let cfg = small_cfg Fs.Soft_updates in
  let r = Sdet.run ~cfg ~concurrency:2 ~commands:20 () in
  Alcotest.(check bool) "throughput positive" true (r.Sdet.scripts_per_hour > 0.0)

let test_sdet_deterministic () =
  let cfg = small_cfg Fs.Soft_updates in
  let a = Sdet.run ~cfg ~concurrency:2 ~commands:15 () in
  let b = Sdet.run ~cfg ~concurrency:2 ~commands:15 () in
  Alcotest.(check (float 1e-9)) "same seed, same result" a.Sdet.scripts_per_hour
    b.Sdet.scripts_per_hour

let suite =
  [
    Alcotest.test_case "tree spec profile" `Quick test_tree_spec_profile;
    Alcotest.test_case "tree spec deterministic" `Quick
      test_tree_spec_deterministic;
    Alcotest.test_case "populate and copy" `Quick test_populate_and_copy;
    Alcotest.test_case "tree remove cleans" `Quick test_tree_remove_cleans;
    Alcotest.test_case "runner measures" `Quick test_runner_measures;
    Alcotest.test_case "runner cold start" `Quick test_runner_cold_start;
    Alcotest.test_case "runner repeat averages" `Quick
      test_runner_repeat_averages;
    Alcotest.test_case "benchmarks smoke" `Quick test_benchmarks_smoke;
    Alcotest.test_case "andrew phases" `Quick test_andrew_phases;
    Alcotest.test_case "sdet runs" `Quick test_sdet_runs;
    Alcotest.test_case "sdet deterministic" `Quick test_sdet_deterministic;
  ]
