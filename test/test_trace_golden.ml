(* Trace-equality tests for the indexed dispatch queue and the
   intrusive-LRU buffer cache.

   Each case runs a miniature version of a paper workload (the fig1
   4-user copy and the fig5 create/remove loops) through the full
   stack with [keep_trace_records] on, and fingerprints the driver's
   per-request trace: id, kind, lbn, extent, sync flag and the exact
   bit patterns of the issue/start/complete times. The expected
   digests below were captured from the seed implementation (linear
   eligible-list scan in the driver, full-table eviction scan in the
   cache); the indexed implementation must reproduce every dispatch
   decision and eviction choice bit-for-bit.

   The fig1 digests were recaptured (TRACE_GOLDEN_CAPTURE=1) after
   mkdir stopped running the link-addition hook for ".": the entry's
   ordering is structural (see Dir.insert_prepared), and dropping the
   hook removes the extra per-mkdir inode writes the flag/chains
   schemes issued for it. Run with the environment variable set to
   print fresh (count, digest) pairs after a deliberate behaviour
   change; any unexplained mismatch is still a regression. *)

open Su_fs
open Su_workload

let fingerprint recs =
  let line (r : Su_driver.Trace.record) =
    Printf.sprintf "%d %c %d %d %b %Lx %Lx %Lx" r.Su_driver.Trace.r_id
      (match r.Su_driver.Trace.r_kind with
       | Su_driver.Request.Read -> 'R'
       | Su_driver.Request.Write -> 'W')
      r.Su_driver.Trace.r_lbn r.Su_driver.Trace.r_nfrags
      r.Su_driver.Trace.r_sync
      (Int64.bits_of_float r.Su_driver.Trace.r_issue)
      (Int64.bits_of_float r.Su_driver.Trace.r_start)
      (Int64.bits_of_float r.Su_driver.Trace.r_complete)
  in
  let buf = Buffer.create (List.length recs * 48) in
  List.iter
    (fun r ->
      Buffer.add_string buf (line r);
      Buffer.add_char buf '\n')
    recs;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* Run [work] in a simulated process against a fresh world and return
   (record count, trace digest) over the whole run including set-up:
   everything is deterministic, so the more requests the fingerprint
   covers, the better. *)
let run_world cfg work =
  let cfg = { cfg with Fs.keep_trace_records = true } in
  let w = Fs.make cfg in
  ignore
    (Su_sim.Proc.spawn w.Fs.engine ~name:"controller" (fun () ->
         work w;
         Fs.stop w;
         Su_driver.Driver.quiesce w.Fs.driver;
         Su_sim.Engine.stop w.Fs.engine));
  Su_sim.Engine.run w.Fs.engine;
  let recs = Su_driver.Trace.records (Su_driver.Driver.trace w.Fs.driver) in
  (List.length recs, fingerprint recs)

let join_users w users body =
  let handles =
    List.init users (fun u ->
        Su_sim.Proc.spawn w.Fs.engine
          ~name:(Printf.sprintf "user%d" u)
          (fun () -> body u w.Fs.st))
  in
  Su_sim.Proc.join_all w.Fs.engine handles

(* fig1 shape: concurrent users copy small trees; flag-based ordering
   exercises the gate / barrier witness paths in the dispatch index. *)
let copy_workload ~users w =
  let spec u = Tree.spec ~seed:(17 + u) ~files:40 ~total_bytes:(256 * 1024) () in
  for u = 0 to users - 1 do
    Fsops.mkdir w.Fs.st (Printf.sprintf "/src%d" u);
    Tree.populate w.Fs.st ~base:(Printf.sprintf "/src%d" u) (spec u);
    Fsops.mkdir w.Fs.st (Printf.sprintf "/dst%d" u)
  done;
  Fsops.sync w.Fs.st;
  join_users w users (fun u st ->
      Tree.copy st
        ~src:(Printf.sprintf "/src%d" u)
        ~dst:(Printf.sprintf "/dst%d" u))

(* fig5 shape: create / append / remove churn; delayed writes pile up
   hundreds of pending requests, exercising the ready-set and the
   cache eviction path. *)
let churn_workload ~users ~files w =
  for u = 0 to users - 1 do
    Fsops.mkdir w.Fs.st (Printf.sprintf "/u%d" u)
  done;
  join_users w users (fun u st ->
      for i = 1 to files do
        let p = Printf.sprintf "/u%d/f%d" u i in
        Fsops.create st p;
        Fsops.append st p ~bytes:1024;
        if i mod 2 = 0 then Fsops.unlink st p
      done);
  (* flush the delayed-write burst through the driver *)
  Fsops.sync w.Fs.st

let flag_cfg sem =
  { (Fs.config ~scheme:Fs.Scheduler_flag ()) with
    Fs.flag_sem = sem;
    nr = true;
    cb = true;
    alloc_init = true;
    cache_mb = 1 }

let cases =
  [
    ( "fig1 copy, flag Part-NR/CB",
      (fun () -> run_world (flag_cfg Su_driver.Ordering.Part) (copy_workload ~users:2)),
      (1522, "dcf970d8c1e7520af62447dcd39417cf") );
    ( "fig1 copy, flag Full barrier",
      (fun () ->
        run_world
          { (flag_cfg Su_driver.Ordering.Full) with Fs.nr = false }
          (copy_workload ~users:2)),
      (1640, "fab8904a51b6e88f61833ec5baba979c") );
    ( "fig1 copy, chains FCFS",
      (fun () ->
        run_world
          { (Fs.config ~scheme:(Fs.Scheduler_chains { barrier_dealloc = false }) ())
            with Fs.policy = Su_driver.Driver.Fcfs; cache_mb = 1 }
          (copy_workload ~users:2)),
      (2251, "64a73bfd6b9ae011fc69b3287406be4d") );
    ( "fig5 churn, soft updates",
      (fun () ->
        run_world
          { (Fs.config ~scheme:Fs.Soft_updates ()) with Fs.cache_mb = 1 }
          (churn_workload ~users:2 ~files:60)),
      (79, "5c0a7e3849015ee9e9c0466a6d55c279") );
    ( "fig5 churn, no order",
      (fun () ->
        run_world
          { (Fs.config ~scheme:Fs.No_order ()) with Fs.cache_mb = 1 }
          (churn_workload ~users:2 ~files:60)),
      (74, "def1cfb5362af4d3401ce7625320dad2") );
  ]

(* The same five worlds, but run inside Su_util.Pool workers: the
   simulator's per-domain state (Proc's current-process register, the
   engine, every RNG) must be fully domain-local for the digests to
   survive. Any cross-domain leak shows up as a digest mismatch. *)
let test_golden_under_pool () =
  let cases = Array.of_list cases in
  let got =
    Su_util.Pool.map ~jobs:2 (Array.length cases) (fun i ->
        let _, run, _ = cases.(i) in
        run ())
  in
  Array.iteri
    (fun i (n, digest) ->
      let name, _, (exp_n, exp_digest) = cases.(i) in
      Alcotest.(check int) (name ^ ": record count under pool") exp_n n;
      Alcotest.(check string)
        (name ^ ": trace digest under pool")
        exp_digest digest)
    got

let suite =
  List.map
    (fun (name, run, (exp_n, exp_digest)) ->
      Alcotest.test_case name `Quick (fun () ->
          let n, digest = run () in
          if Sys.getenv_opt "TRACE_GOLDEN_CAPTURE" <> None then
            Printf.eprintf "CAPTURE| %s | (%d, %S)\n%!" name n digest;
          Alcotest.(check int) (name ^ ": record count") exp_n n;
          Alcotest.(check string) (name ^ ": trace digest") exp_digest digest))
    cases
  @ [
      Alcotest.test_case "golden digests unchanged under the pool" `Quick
        test_golden_under_pool;
    ]
