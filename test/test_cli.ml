(* End-to-end CLI contract tests: exit codes that scripts and CI rely
   on, the [--json] document, and the [--trace-out] JSONL replay.
   The executables are declared as test dependencies, so they sit at
   fixed relative paths inside the dune sandbox. *)
module Json = Su_obs.Json

(* the test binary lives in _build/default/test/, its siblings in
   ../bin and ../bench — anchor on the binary, not the cwd, so the
   tests pass under both [dune runtest] and [dune exec] *)
let build_root = Filename.dirname (Filename.dirname Sys.executable_name)

let metasim = Filename.concat (Filename.concat build_root "bin") "metasim.exe"
let benchexe = Filename.concat (Filename.concat build_root "bench") "main.exe"

let sh fmt = Printf.ksprintf (fun cmd -> Sys.command cmd) fmt

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let check_exit name expected code =
  Alcotest.(check int) name expected code

(* --- exit codes --------------------------------------------------------- *)

let test_run_unknown_bench () =
  (* regression: this used to print to stderr and exit 0 *)
  check_exit "unknown benchmark is a CLI error" 124
    (sh "%s run nosuchbench >/dev/null 2>&1" metasim)

let test_run_unknown_scheme () =
  check_exit "unknown scheme is a CLI error" 124
    (sh "%s run copy --scheme bogus >/dev/null 2>&1" metasim)

let test_exp_unknown_name () =
  check_exit "unknown experiment is a CLI error" 124
    (sh "%s exp nosuchexp >/dev/null 2>&1" metasim)

let test_run_known_bench_ok () =
  check_exit "valid run exits 0" 0
    (sh "%s run create --files 100 -u 1 >/dev/null 2>&1" metasim)

let test_crashsweep_no_valid_workloads () =
  check_exit "all-unknown workloads is an error" 2
    (sh "%s crashsweep -w bogus1,bogus2 >/dev/null 2>&1" metasim)

let test_crashsweep_demand_consistent () =
  (* no-order only promises repairability; demanding consistency from
     it must surface as the documented failure exit *)
  check_exit "demand consistent fails no-order" 1
    (sh
       "%s crashsweep --schemes none --demand consistent -w smallfiles \
        --max-boundaries 20 >/dev/null 2>&1"
       metasim);
  check_exit "default demand accepts repairable no-order" 0
    (sh
       "%s crashsweep --schemes none -w smallfiles --max-boundaries 20 \
        >/dev/null 2>&1"
       metasim)

let test_bench_unknown_experiment () =
  check_exit "bench unknown id exits non-zero" 2
    (sh "%s nosuchexp >/dev/null 2>&1" benchexe)

let test_bench_assert_shapes_bad_input () =
  let tmp = Filename.temp_file "shapes" ".json" in
  let oc = open_out tmp in
  output_string oc "{ not json";
  close_out oc;
  check_exit "malformed JSON exits 2" 2
    (sh "%s --assert-shapes %s >/dev/null 2>&1" benchexe (Filename.quote tmp));
  let oc = open_out tmp in
  output_string oc "{\"hello\": 1}";
  close_out oc;
  check_exit "no recognisable tables exits 2" 2
    (sh "%s --assert-shapes %s >/dev/null 2>&1" benchexe (Filename.quote tmp));
  Sys.remove tmp

let test_bench_assert_shapes_verdicts () =
  (* a handwritten document with one deliberately sick table *)
  let doc ~soft_pct ~soft_reqs =
    {|{"scale": "quick", "experiments": [{"id": "tab2", "wall_s": 0.1,
       "tables": [{"title": "Table 2: synthetic",
         "headers": ["scheme", "alloc init", "% of No Order", "disk requests"],
         "rows": [["No Order", "N", "100.0", "1000"],
                  ["Conventional", "N", "880.0", "5000"],
                  ["Scheduler Flag", "N", "140.0", "1500"],
                  ["Scheduler Chains", "N", "500.0", "2000"],
                  ["Soft Updates", "N", "|}
    ^ soft_pct ^ {|", "|} ^ soft_reqs ^ {|"]]}]}]}|}
  in
  let tmp = Filename.temp_file "shapes" ".json" in
  let write s =
    let oc = open_out tmp in
    output_string oc s;
    close_out oc
  in
  write (doc ~soft_pct:"64.0" ~soft_reqs:"260");
  check_exit "healthy table passes" 0
    (sh "%s --assert-shapes %s >/dev/null 2>&1" benchexe (Filename.quote tmp));
  write (doc ~soft_pct:"900.0" ~soft_reqs:"6000");
  check_exit "sick table exits 1" 1
    (sh "%s --assert-shapes %s >/dev/null 2>&1" benchexe (Filename.quote tmp));
  Sys.remove tmp

(* --- fault flags and the faultsweep campaign ---------------------------- *)

let test_run_fault_flags_validate () =
  check_exit "out-of-range --fault-rate is a CLI error" 124
    (sh "%s run copy --fault-rate 1.5 >/dev/null 2>&1" metasim);
  check_exit "negative --bad-sectors is a CLI error" 124
    (sh "%s run copy --bad-sectors=-3 >/dev/null 2>&1" metasim);
  check_exit "negative --spares is a CLI error" 124
    (sh "%s run copy --spares=-1 >/dev/null 2>&1" metasim)

let test_run_bad_sector_exits_typed () =
  (* an unreadable metadata sector with no spares must surface as the
     documented one-line typed failure, exit 3 — never a backtrace *)
  let err = Filename.temp_file "metasim" ".err" in
  check_exit "typed I/O failure exits 3" 3
    (sh "%s run copy -s soft --bad-sectors 16 >/dev/null 2> %s" metasim
       (Filename.quote err));
  let msg = read_file err in
  Sys.remove err;
  Alcotest.(check bool) "one-line typed message" true
    (String.length msg > 0
    && String.sub msg 0 9 = "metasim: "
    && not (String.exists (fun c -> c = '\n') (String.trim msg)))

let test_faultsweep_smoke () =
  check_exit "faultsweep campaign passes" 0
    (sh
       "%s faultsweep -w renamefile --schemes soft --jobs 2 --max-sectors 6 \
        --spares 8 >/dev/null 2>&1"
       metasim)

let test_faultsweep_no_valid_workloads () =
  check_exit "all-unknown workloads is an error" 2
    (sh "%s faultsweep -w bogus >/dev/null 2>&1" metasim)

(* --- --json document ---------------------------------------------------- *)

let test_run_json_parses () =
  let out = Filename.temp_file "measures" ".json" in
  check_exit "run --json exits 0" 0
    (sh "%s run create --files 300 -u 2 --json > %s 2>/dev/null" metasim
       (Filename.quote out));
  let doc =
    match Json.parse (read_file out) with
    | Ok d -> d
    | Error e -> Alcotest.failf "run --json is not valid JSON: %s" e
  in
  Sys.remove out;
  Alcotest.(check (option string)) "benchmark field" (Some "create")
    (Option.bind (Json.member "benchmark" doc) Json.to_str);
  let m =
    match Json.member "measures" doc with
    | Some m -> m
    | None -> Alcotest.fail "no measures object"
  in
  let f name =
    match Option.bind (Json.member name m) Json.to_float with
    | Some v -> v
    | None -> Alcotest.failf "measures.%s missing" name
  in
  Alcotest.(check bool) "requests positive" true (f "disk_requests" > 0.0);
  let p50 = f "response_p50_ms"
  and p90 = f "response_p90_ms"
  and p99 = f "response_p99_ms"
  and pmax = f "response_max_ms" in
  Alcotest.(check bool) "percentiles ordered" true
    (0.0 <= p50 && p50 <= p90 && p90 <= p99 && p99 <= pmax);
  (match Json.member "counters" m with
   | Some (Json.Obj kvs) ->
     Alcotest.(check bool) "counters non-empty" true (List.length kvs > 0);
     Alcotest.(check bool) "cache counters present" true
       (List.mem_assoc "cache.hits" kvs);
     Alcotest.(check bool) "fault counters present" true
       (List.mem_assoc "fault.injected" kvs
       && List.mem_assoc "fault.health_level" kvs)
   | _ -> Alcotest.fail "measures.counters missing")

(* --- --trace-out JSONL replay ------------------------------------------- *)

let test_trace_out_replays () =
  let out = Filename.temp_file "measures" ".json" in
  let trace = Filename.temp_file "trace" ".jsonl" in
  check_exit "run --trace-out exits 0" 0
    (sh "%s run create --files 300 -u 2 --json --trace-out %s > %s 2>/dev/null"
       metasim (Filename.quote trace) (Filename.quote out));
  let doc =
    match Json.parse (read_file out) with
    | Ok d -> d
    | Error e -> Alcotest.failf "measures JSON: %s" e
  in
  let requests =
    match
      Option.bind (Json.member "measures" doc) (fun m ->
          Option.bind (Json.member "disk_requests" m) Json.to_int)
    with
    | Some n -> n
    | None -> Alcotest.fail "disk_requests missing"
  in
  (* replay the JSONL: every line parses; the io.complete events after
     the last trace.reset marker must equal the measured request count *)
  let events =
    String.split_on_char '\n' (read_file trace)
    |> List.filter (fun l -> String.trim l <> "")
    |> List.map (fun line ->
           match Json.parse line with
           | Ok d -> d
           | Error e -> Alcotest.failf "bad JSONL line %S: %s" line e)
  in
  Sys.remove out;
  Sys.remove trace;
  Alcotest.(check bool) "trace non-empty" true (List.length events > 0);
  let kind d = Option.bind (Json.member "kind" d) Json.to_str in
  List.iter
    (fun d ->
      Alcotest.(check bool) "every event has t and kind" true
        (kind d <> None && Json.member "t" d <> None))
    events;
  let completes_since_reset =
    List.fold_left
      (fun acc d ->
        match kind d with
        | Some "trace.reset" -> 0
        | Some "io.complete" -> acc + 1
        | _ -> acc)
      0 events
  in
  Alcotest.(check int) "JSONL replays to the measured request count" requests
    completes_since_reset;
  Alcotest.(check bool) "fs ops traced" true
    (List.exists (fun d -> kind d = Some "fs.create") events)

let suite =
  [
    Alcotest.test_case "run: unknown benchmark" `Quick test_run_unknown_bench;
    Alcotest.test_case "run: unknown scheme" `Quick test_run_unknown_scheme;
    Alcotest.test_case "exp: unknown experiment" `Quick test_exp_unknown_name;
    Alcotest.test_case "run: valid benchmark" `Quick test_run_known_bench_ok;
    Alcotest.test_case "crashsweep: no valid workloads" `Quick
      test_crashsweep_no_valid_workloads;
    Alcotest.test_case "crashsweep: --demand consistent" `Quick
      test_crashsweep_demand_consistent;
    Alcotest.test_case "bench: unknown experiment id" `Quick
      test_bench_unknown_experiment;
    Alcotest.test_case "bench: --assert-shapes bad input" `Quick
      test_bench_assert_shapes_bad_input;
    Alcotest.test_case "bench: --assert-shapes verdicts" `Quick
      test_bench_assert_shapes_verdicts;
    Alcotest.test_case "run: fault flags validate" `Quick
      test_run_fault_flags_validate;
    Alcotest.test_case "run: bad sector exits typed" `Quick
      test_run_bad_sector_exits_typed;
    Alcotest.test_case "faultsweep: smoke campaign" `Quick test_faultsweep_smoke;
    Alcotest.test_case "faultsweep: no valid workloads" `Quick
      test_faultsweep_no_valid_workloads;
    Alcotest.test_case "run --json parses" `Quick test_run_json_parses;
    Alcotest.test_case "run --trace-out replays" `Quick test_trace_out_replays;
  ]
