(* Tests for the discrete-event engine, processes and synchronisation. *)
open Su_sim

let test_event_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.at e 2.0 (fun () -> log := 2 :: !log);
  Engine.at e 1.0 (fun () -> log := 1 :: !log);
  Engine.at e 3.0 (fun () -> log := 3 :: !log);
  Engine.run e;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "clock at last event" 3.0 (Engine.now e)

let test_same_time_fifo () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Engine.at e 1.0 (fun () -> log := i :: !log)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "fifo among equal times" [ 1; 2; 3; 4; 5 ]
    (List.rev !log)

let test_run_until () =
  let e = Engine.create () in
  let fired = ref false in
  Engine.at e 5.0 (fun () -> fired := true);
  Engine.run ~until:2.0 e;
  Alcotest.(check bool) "not fired" false !fired;
  Alcotest.(check (float 1e-9)) "clock clamped" 2.0 (Engine.now e)

let test_stop () =
  let e = Engine.create () in
  let count = ref 0 in
  Engine.at e 1.0 (fun () ->
      incr count;
      Engine.stop e);
  Engine.at e 2.0 (fun () -> incr count);
  Engine.run e;
  Alcotest.(check int) "stopped after first" 1 !count

let test_proc_sleep () =
  let e = Engine.create () in
  let t_end = ref 0.0 in
  let _p =
    Proc.spawn e (fun () ->
        Proc.sleep e 1.5;
        Proc.sleep e 0.5;
        t_end := Engine.now e)
  in
  Engine.run e;
  Alcotest.(check (float 1e-9)) "slept 2s" 2.0 !t_end

let test_proc_join () =
  let e = Engine.create () in
  let order = ref [] in
  let worker =
    Proc.spawn e ~name:"w" (fun () ->
        Proc.sleep e 3.0;
        order := "w" :: !order)
  in
  let _boss =
    Proc.spawn e ~name:"b" (fun () ->
        Proc.join e worker;
        order := "b" :: !order)
  in
  Engine.run e;
  Alcotest.(check (list string)) "worker then boss" [ "w"; "b" ] (List.rev !order)

let test_proc_failure_propagates () =
  let e = Engine.create () in
  let _p = Proc.spawn e ~name:"boom" (fun () -> failwith "bang") in
  Alcotest.check_raises "wrapped"
    (Proc.Process_failure ("boom", Failure "bang"))
    (fun () -> Engine.run e)

let test_ivar () =
  let e = Engine.create () in
  let iv = Proc.Ivar.create e in
  let got = ref 0 in
  let _reader = Proc.spawn e (fun () -> got := Proc.Ivar.read iv) in
  let _writer =
    Proc.spawn e (fun () ->
        Proc.sleep e 1.0;
        Proc.Ivar.fill iv 42)
  in
  Engine.run e;
  Alcotest.(check int) "value delivered" 42 !got

let test_mutex_excludes () =
  let e = Engine.create () in
  let m = Sync.Mutex.create e in
  let inside = ref 0 and max_inside = ref 0 in
  let worker () =
    Sync.Mutex.with_lock m (fun () ->
        incr inside;
        if !inside > !max_inside then max_inside := !inside;
        Proc.sleep e 1.0;
        decr inside)
  in
  for _ = 1 to 4 do
    ignore (Proc.spawn e worker)
  done;
  Engine.run e;
  Alcotest.(check int) "one at a time" 1 !max_inside;
  Alcotest.(check (float 1e-9)) "serialised" 4.0 (Engine.now e)

let test_semaphore_limits () =
  let e = Engine.create () in
  let s = Sync.Semaphore.create e 2 in
  let inside = ref 0 and max_inside = ref 0 in
  let worker () =
    Sync.Semaphore.acquire s;
    incr inside;
    if !inside > !max_inside then max_inside := !inside;
    Proc.sleep e 1.0;
    decr inside;
    Sync.Semaphore.release s
  in
  for _ = 1 to 6 do
    ignore (Proc.spawn e worker)
  done;
  Engine.run e;
  Alcotest.(check int) "two at a time" 2 !max_inside;
  Alcotest.(check (float 1e-9)) "three waves" 3.0 (Engine.now e)

let test_waitq_signal_broadcast () =
  let e = Engine.create () in
  let q = Sync.Waitq.create e in
  let woken = ref 0 in
  for _ = 1 to 3 do
    ignore
      (Proc.spawn e (fun () ->
           Sync.Waitq.wait q;
           incr woken))
  done;
  ignore
    (Proc.spawn e (fun () ->
         Proc.sleep e 1.0;
         Sync.Waitq.signal q;
         Proc.sleep e 1.0;
         Alcotest.(check int) "one woken" 1 !woken;
         Sync.Waitq.broadcast q));
  Engine.run e;
  Alcotest.(check int) "all woken" 3 !woken

let test_cpu_fcfs () =
  let e = Engine.create () in
  let cpu = Cpu.create e in
  let finish = ref [] in
  let worker name dur () =
    Cpu.consume cpu dur;
    finish := (name, Engine.now e) :: !finish
  in
  let a = Proc.spawn e ~name:"a" (worker "a" 2.0) in
  let b = Proc.spawn e ~name:"b" (worker "b" 1.0) in
  Engine.run e;
  let find n = List.assoc n !finish in
  Alcotest.(check (float 1e-9)) "a finishes at 2" 2.0 (find "a");
  Alcotest.(check (float 1e-9)) "b queues behind a" 3.0 (find "b");
  Alcotest.(check (float 1e-9)) "a charged" 2.0 (Proc.cpu_time a);
  Alcotest.(check (float 1e-9)) "b charged" 1.0 (Proc.cpu_time b);
  Alcotest.(check (float 1e-9)) "cpu busy total" 3.0 (Cpu.busy_time cpu)

(* --- run ~until resume semantics (flat event core) ------------------- *)

let test_run_until_resume () =
  (* two bounded runs must equal one longer run, log and clock alike *)
  let mk_world () =
    let e = Engine.create () in
    let log = ref [] in
    List.iter
      (fun t -> Engine.at e t (fun () -> log := t :: !log))
      [ 5.0; 1.0; 3.0; 3.0; 8.0 ];
    (e, log)
  in
  let e1, log1 = mk_world () in
  Engine.run ~until:4.0 e1;
  Alcotest.(check (float 1e-9)) "clock at horizon" 4.0 (Engine.now e1);
  Alcotest.(check int) "future events stay queued" 2 (Engine.pending e1);
  Engine.run ~until:9.0 e1;
  let e2, log2 = mk_world () in
  Engine.run ~until:9.0 e2;
  Alcotest.(check (list (float 1e-9))) "same firing order" !log2 !log1;
  Alcotest.(check (float 1e-9)) "same clock" (Engine.now e2) (Engine.now e1);
  Alcotest.(check int) "same residue" (Engine.pending e2) (Engine.pending e1)

let test_run_until_never_rewinds () =
  let e = Engine.create () in
  Engine.at e 5.0 (fun () -> ());
  Engine.run ~until:2.0 e;
  Alcotest.(check (float 1e-9)) "clamped forward" 2.0 (Engine.now e);
  Engine.run ~until:1.0 e;
  Alcotest.(check (float 1e-9)) "smaller horizon is a no-op" 2.0 (Engine.now e);
  Alcotest.(check int) "event still queued" 1 (Engine.pending e);
  Engine.run ~until:5.0 e;
  Alcotest.(check (float 1e-9)) "event picked up" 5.0 (Engine.now e);
  Alcotest.(check int) "drained" 0 (Engine.pending e)

let test_run_until_halted () =
  let e = Engine.create () in
  let count = ref 0 in
  Engine.at e 1.0 (fun () ->
      incr count;
      Engine.stop e);
  Engine.at e 2.0 (fun () -> incr count);
  Engine.run ~until:10.0 e;
  Alcotest.(check int) "halted after first" 1 !count;
  Alcotest.(check (float 1e-9)) "clock stays at halt" 1.0 (Engine.now e);
  Alcotest.(check int) "event stays queued" 1 (Engine.pending e);
  Engine.run ~until:10.0 e;
  Engine.run e;
  Alcotest.(check int) "halt is sticky" 1 !count;
  Alcotest.(check (float 1e-9)) "clock pinned" 1.0 (Engine.now e)

let test_handlers_interleave_closures () =
  (* registered-handler events and closure events share one (time,
     seq) order *)
  let e = Engine.create () in
  let log = ref [] in
  let h = Engine.register e (fun arg -> log := arg :: !log) in
  Engine.at e 1.0 (fun () -> log := 100 :: !log);
  Engine.at_handler e 1.0 h 1;
  Engine.at e 1.0 (fun () -> log := 101 :: !log);
  Engine.after_handler e 0.5 h 2;
  Engine.run e;
  Alcotest.(check (list int)) "scheduling order within equal times"
    [ 2; 100; 1; 101 ] (List.rev !log)

let test_null_handler_rejected () =
  let e = Engine.create () in
  Alcotest.check_raises "null handler"
    (Invalid_argument "Engine.at_handler: bad handler") (fun () ->
      Engine.at_handler e 1.0 Engine.null 0)

let test_free_list_bounds_capacity () =
  (* ten self-rescheduling chains keep at most ten events pending;
     slot recycling must hold the backing arrays at their first
     power-of-two size no matter how many events execute *)
  let e = Engine.create () in
  let remaining = ref 1000 in
  let h_ref = ref Engine.null in
  let h =
    Engine.register e (fun i ->
        if !remaining > 0 then begin
          decr remaining;
          Engine.after_handler e 0.1 !h_ref i
        end)
  in
  h_ref := h;
  for i = 1 to 10 do
    Engine.at_handler e (0.01 *. float_of_int i) h i
  done;
  Engine.run e;
  Alcotest.(check int) "all chains ran" 0 !remaining;
  Alcotest.(check bool) "capacity stayed at high-water mark" true
    (Engine.capacity e <= 16)

(* Reference model for the flat queue: a sorted association list with
   explicit (time, seq) keys and the documented [run ~until] clock
   rules. Random schedule/run interleavings must agree exactly. *)
let prop_flat_queue_matches_sorted_model =
  let print_ops ops =
    String.concat ";"
      (List.map
         (function
           | `S t -> Printf.sprintf "S %g" t
           | `R u -> Printf.sprintf "R %g" u)
         ops)
  in
  let gen_op =
    QCheck.Gen.(
      frequency
        [
          (4, map (fun t -> `S t) (float_bound_inclusive 10.0));
          (1, map (fun u -> `R u) (float_bound_inclusive 12.0));
        ])
  in
  let arb_ops =
    QCheck.make ~print:print_ops QCheck.Gen.(list_size (1 -- 60) gen_op)
  in
  QCheck.Test.make ~name:"flat event queue matches sorted-list model"
    ~count:300 arb_ops (fun ops ->
      (* real engine *)
      let e = Engine.create () in
      let log = ref [] in
      let n = ref 0 in
      List.iter
        (function
          | `S t ->
            let i = !n in
            incr n;
            Engine.at e t (fun () -> log := i :: !log)
          | `R u -> Engine.run ~until:u e)
        ops;
      Engine.run e;
      (* model *)
      let clock = ref 0.0 and seq = ref 0 and q = ref [] and mlog = ref [] in
      let mi = ref 0 in
      let msched t =
        let t = if t >= !clock then t else !clock in
        incr seq;
        q := (t, !seq, !mi) :: !q;
        incr mi
      in
      let mrun u =
        let continue_ = ref true in
        while !continue_ do
          match
            List.sort
              (fun (t1, s1, _) (t2, s2, _) ->
                let c = Float.compare t1 t2 in
                if c <> 0 then c else Int.compare s1 s2)
              !q
          with
          | [] -> continue_ := false
          | (t, _, i) :: rest ->
            if t > u then begin
              if u > !clock && u < infinity then clock := u;
              continue_ := false
            end
            else begin
              q := rest;
              clock := t;
              mlog := i :: !mlog
            end
        done
      in
      List.iter (function `S t -> msched t | `R u -> mrun u) ops;
      mrun infinity;
      !mlog = !log && Float.equal !clock (Engine.now e))

let prop_engine_monotonic_clock =
  QCheck.Test.make ~name:"engine clock is monotonic" ~count:100
    QCheck.(list_of_size Gen.(1 -- 30) (float_bound_inclusive 10.0))
    (fun times ->
      let e = Engine.create () in
      let ok = ref true in
      let last = ref 0.0 in
      List.iter
        (fun t ->
          Engine.at e t (fun () ->
              if Engine.now e < !last then ok := false;
              last := Engine.now e))
        times;
      Engine.run e;
      !ok)

let suite =
  [
    Alcotest.test_case "event order" `Quick test_event_order;
    Alcotest.test_case "same-time fifo" `Quick test_same_time_fifo;
    Alcotest.test_case "run until" `Quick test_run_until;
    Alcotest.test_case "run until resume" `Quick test_run_until_resume;
    Alcotest.test_case "run until never rewinds" `Quick
      test_run_until_never_rewinds;
    Alcotest.test_case "run until halted" `Quick test_run_until_halted;
    Alcotest.test_case "handlers interleave closures" `Quick
      test_handlers_interleave_closures;
    Alcotest.test_case "null handler rejected" `Quick
      test_null_handler_rejected;
    Alcotest.test_case "free list bounds capacity" `Quick
      test_free_list_bounds_capacity;
    QCheck_alcotest.to_alcotest prop_flat_queue_matches_sorted_model;
    Alcotest.test_case "stop" `Quick test_stop;
    Alcotest.test_case "proc sleep" `Quick test_proc_sleep;
    Alcotest.test_case "proc join" `Quick test_proc_join;
    Alcotest.test_case "proc failure" `Quick test_proc_failure_propagates;
    Alcotest.test_case "ivar" `Quick test_ivar;
    Alcotest.test_case "mutex excludes" `Quick test_mutex_excludes;
    Alcotest.test_case "semaphore limits" `Quick test_semaphore_limits;
    Alcotest.test_case "waitq" `Quick test_waitq_signal_broadcast;
    Alcotest.test_case "cpu fcfs" `Quick test_cpu_fcfs;
    QCheck_alcotest.to_alcotest prop_engine_monotonic_clock;
  ]
