(* Equivalence suite for the compact slab-backed volume image: the
   volume must be observationally identical to the legacy
   [Types.cell array] image under writes, reads, copies, snapshots and
   digests — cell for cell, bit for bit. *)
open Su_fstypes
module Rng = Su_util.Rng

let gs = Geom.small

(* --- random cells, including out-of-range values that must take the
   boxed fallback ------------------------------------------------------- *)

let rand_name rng =
  String.init (1 + Rng.int rng 12) (fun _ -> Char.chr (97 + Rng.int rng 26))

let rand_dinode rng =
  let wild bound = if Rng.int rng 20 = 0 then (1 lsl 40) + 7 else Rng.int rng bound in
  let d = Types.free_dinode gs in
  let d = { d with Types.db = Array.copy d.Types.db } in
  d.Types.ftype <-
    (match Rng.int rng 3 with 0 -> Types.F_free | 1 -> Types.F_reg | _ -> Types.F_dir);
  d.Types.nlink <- wild 16;
  d.Types.size <- Rng.int rng 1_000_000;
  d.Types.gen <- wild 1_000;
  d.Types.ib <- wild 100_000;
  d.Types.ib2 <- wild 100_000;
  d.Types.mtime <- float_of_int (Rng.int rng 10_000) /. 7.0;
  for k = 0 to Array.length d.Types.db - 1 do
    d.Types.db.(k) <- wild 100_000
  done;
  (* occasionally a ragged db array (nonconforming shape) *)
  if Rng.int rng 30 = 0 then d.Types.db <- Array.make 3 1;
  d

let rand_cell rng =
  match Rng.int rng 13 with
  | 0 -> Types.Empty
  | 1 -> Types.Pad
  | 2 -> Types.Frag Types.Zeroed
  | 3 ->
    (* sometimes past the 21/19/20-bit packing, forcing the boxed path *)
    Types.Frag
      (Types.Written
         { inum = Rng.int rng 3_000_000;
           gen = Rng.int rng 700_000;
           flbn = Rng.int rng 1_500_000 })
  | 4 | 5 ->
    Types.Meta (Types.Inodes (Array.init (1 + Rng.int rng 8) (fun _ -> rand_dinode rng)))
  | 6 ->
    Types.Meta
      (Types.Dir
         (Array.init (1 + Rng.int rng 16) (fun _ ->
              if Rng.int rng 2 = 0 then None
              else Some { Types.name = rand_name rng; inum = Rng.int rng 5_000 })))
  | 7 ->
    Types.Meta
      (Types.Indirect
         (Array.init (1 + Rng.int rng 32) (fun _ ->
              if Rng.int rng 25 = 0 then 1 lsl 36 else Rng.int rng 1_000_000)))
  | 8 ->
    Types.Meta
      (Types.Superblock
         { Types.sb_magic = Types.magic; sb_nfrags = Rng.int rng 100_000;
           sb_ncg = 1 + Rng.int rng 64; sb_clean = Rng.int rng 2 = 0 })
  | 9 ->
    let c = Types.fresh_cg gs in
    Bytes.set c.Types.frag_map (Rng.int rng (Bytes.length c.Types.frag_map)) '\001';
    c.Types.nffree <- Rng.int rng 1_000;
    c.Types.nifree <- Rng.int rng 1_000;
    Types.Meta (Types.Cgroup c)
  | 10 ->
    Types.Jlog
      { seq = Rng.int rng 1_000;
        recs =
          [ Types.J_dir_init { blk = Rng.int rng 100 };
            Types.J_dinode { inum = Rng.int rng 100; din = rand_dinode rng } ] }
  | 11 -> Types.Rmap [ (Rng.int rng 100, 1_000 + Rng.int rng 100) ]
  | _ -> Types.Csum (Array.init (1 + Rng.int rng 8) (fun _ -> Rng.int rng max_int))

(* --- the equivalence property ------------------------------------------ *)

(* The reference semantics is the legacy cell-array image:
   [image.(i) <- cell] at install/write (modelled with a private copy,
   as every disk write path hands the image a private payload),
   [copy_cell image.(i)] on read, [Array.map copy_cell] on snapshot,
   [cell_digest image.(i)] on digest. *)
let prop_volume_equals_cells =
  QCheck.Test.make ~name:"volume == legacy cell image under random ops"
    ~count:60
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = 24 in
      let vol = Volume.create n in
      let ref_ = Array.make n Types.Empty in
      let ok = ref true in
      let check b = if not b then ok := false in
      for _ = 1 to 150 do
        let i = Rng.int rng n in
        match Rng.int rng 6 with
        | 0 | 1 ->
          let c = rand_cell rng in
          Volume.set vol i c;
          ref_.(i) <- Types.copy_cell c
        | 2 -> check (Volume.read vol i = ref_.(i))
        | 3 -> check (Volume.digest vol i = Types.cell_digest ref_.(i))
        | 4 ->
          check (Volume.snapshot vol = Array.map Types.copy_cell ref_)
        | _ ->
          (* a copy is equal, and mutating it never reaches the original *)
          let c = Volume.copy vol in
          check (Volume.snapshot c = Array.map Types.copy_cell ref_);
          Volume.set c i Types.Pad;
          check (Volume.read vol i = ref_.(i))
      done;
      !ok)

(* Digest equality pinned per kind, including the fallback paths. *)
let test_digest_every_kind () =
  let rng = Rng.create 42 in
  for _ = 1 to 500 do
    let c = rand_cell rng in
    let v = Volume.create 1 in
    Volume.set v 0 c;
    Alcotest.(check int)
      (Format.asprintf "digest of %a" Types.pp_cell c)
      (Types.cell_digest c) (Volume.digest v 0);
    Alcotest.(check bool) "roundtrip" true (Volume.read v 0 = c)
  done

let test_compact_kinds () =
  let v = Volume.create 8 in
  Volume.set v 0 (Types.Frag (Types.Written { inum = 3; gen = 1; flbn = 0 }));
  Volume.set v 1 (Types.Meta (Types.fresh_inode_block gs));
  Volume.set v 2 (Types.Meta (Types.Dir (Types.fresh_dir_block gs)));
  Volume.set v 3 (Types.Meta (Types.Indirect (Types.fresh_indirect gs)));
  Volume.set v 4 (Types.Meta (Types.Cgroup (Types.fresh_cg gs)));
  (* a stamp past the packed field widths must still store (boxed) *)
  let big = Types.Frag (Types.Written { inum = 1 lsl 30; gen = 2; flbn = 1 }) in
  Volume.set v 5 big;
  Alcotest.(check bool) "written packed" true (Volume.is_compact v 0);
  Alcotest.(check bool) "inodes slabbed" true (Volume.is_compact v 1);
  Alcotest.(check bool) "dir slabbed" true (Volume.is_compact v 2);
  Alcotest.(check bool) "indirect slabbed" true (Volume.is_compact v 3);
  Alcotest.(check bool) "cgroup boxed" false (Volume.is_compact v 4);
  Alcotest.(check bool) "oversized stamp boxed" false (Volume.is_compact v 5);
  Alcotest.(check bool) "oversized stamp exact" true (Volume.read v 5 = big);
  let s = Volume.stats v in
  Alcotest.(check int) "one inode slab" 1 s.Volume.inode_slabs;
  Alcotest.(check int) "one dir slab" 1 s.Volume.dir_slabs;
  Alcotest.(check int) "one indirect slab" 1 s.Volume.indirect_slabs;
  Alcotest.(check int) "two boxed" 2 s.Volume.boxed;
  (* overwriting with a different kind releases the old slab *)
  Volume.set v 1 Types.Empty;
  Alcotest.(check int) "inode slab released" 0 (Volume.stats v).Volume.inode_slabs

(* Boxed cells keep the live-aliasing the legacy image had: the stored
   Csum cell IS the array the disk mutates. *)
let test_boxed_aliasing () =
  let v = Volume.create 1 in
  let ca = Array.make 4 0 in
  Volume.set v 0 (Types.Csum ca);
  ca.(2) <- 99;
  (match Volume.peek v 0 with
   | Types.Csum a -> Alcotest.(check int) "peek sees live array" 99 a.(2)
   | _ -> Alcotest.fail "wrong cell");
  match Volume.read v 0 with
  | Types.Csum a ->
    a.(2) <- 0;
    Alcotest.(check int) "read is a private copy" 99 ca.(2)
  | _ -> Alcotest.fail "wrong cell"

(* Mutating a decoded cell never writes back through the slab. *)
let test_decode_isolated () =
  let v = Volume.create 1 in
  let ds =
    match Types.fresh_inode_block gs with
    | Types.Inodes ds -> ds
    | _ -> assert false
  in
  Volume.set v 0 (Types.Meta (Types.Inodes ds)) ;
  let before = Volume.digest v 0 in
  (match Volume.peek v 0 with
   | Types.Meta (Types.Inodes got) ->
     got.(0).Types.nlink <- 77;
     got.(0).Types.db.(0) <- 1234
   | _ -> Alcotest.fail "wrong cell");
  Alcotest.(check int) "image digest unchanged" before (Volume.digest v 0);
  (* and mutating the cell we stored doesn't reach the volume either *)
  ds.(1) <- Types.free_dinode gs;
  ds.(1).Types.gen <- 9;
  Alcotest.(check int) "encode is a copy" before (Volume.digest v 0)

let test_slot_accessors () =
  let rng = Rng.create 7 in
  let ds = Array.init gs.Geom.inodes_per_block (fun _ -> rand_dinode rng) in
  (* keep them conforming so the block slabs *)
  Array.iter
    (fun d ->
      if Array.length d.Types.db <> gs.Geom.ndaddr then
        d.Types.db <- Array.make gs.Geom.ndaddr 0;
      d.Types.nlink <- abs d.Types.nlink land 0xffff;
      d.Types.gen <- d.Types.gen land 0xffff;
      d.Types.ib <- d.Types.ib land 0xffff;
      d.Types.ib2 <- d.Types.ib2 land 0xffff;
      Array.iteri (fun k v -> d.Types.db.(k) <- v land 0xffff) d.Types.db)
    ds;
  let entries = Types.fresh_dir_block gs in
  entries.(3) <- Some { Types.name = "hello"; inum = 44 };
  let ptrs = Array.init gs.Geom.nindir (fun k -> k * 3) in
  let v = Volume.create 3 in
  Volume.set v 0 (Types.Meta (Types.Inodes ds));
  Volume.set v 1 (Types.Meta (Types.Dir entries));
  Volume.set v 2 (Types.Meta (Types.Indirect ptrs));
  Alcotest.(check bool) "inode slab" true (Volume.is_compact v 0);
  for s = 0 to Array.length ds - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "inode_at %d" s)
      true
      (Volume.inode_at v ~lbn:0 ~slot:s = ds.(s))
  done;
  Alcotest.(check bool) "dirent_at present" true
    (Volume.dirent_at v ~lbn:1 ~slot:3 = entries.(3));
  Alcotest.(check bool) "dirent_at empty" true
    (Volume.dirent_at v ~lbn:1 ~slot:0 = None);
  Alcotest.(check int) "indirect_at" 30 (Volume.indirect_at v ~lbn:2 ~slot:10)

(* --- regression: a read-only walk over Disk.peek must leave the image
   digests intact even if the caller mutates what it got back
   (the hazard the old "no copy, do not mutate" contract left open) --- *)

let test_peek_mutation_harmless () =
  let e = Su_sim.Engine.create () in
  let d =
    Su_disk.Disk.create ~engine:e ~params:Su_disk.Disk_params.hp_c2447
      ~nfrags:1024 ()
  in
  Su_disk.Disk.install d 16 (Types.Meta (Types.fresh_inode_block gs));
  let entries = Types.fresh_dir_block gs in
  entries.(0) <- Some { Types.name = "x"; inum = 9 };
  Su_disk.Disk.install d 24 (Types.Meta (Types.Dir entries));
  Su_disk.Disk.install d 32 (Types.Meta (Types.Indirect (Types.fresh_indirect gs)));
  Su_disk.Disk.install d 40 (Types.Frag (Types.Written { inum = 9; gen = 1; flbn = 0 }));
  let digests = Array.init 1024 (fun i -> Su_disk.Disk.frag_digest d i) in
  (* a hostile read-only walk: mutate everything peek returns *)
  for i = 0 to 1023 do
    match Su_disk.Disk.peek d i with
    | Types.Meta (Types.Inodes ds) ->
      Array.iter
        (fun di ->
          di.Types.nlink <- 999;
          di.Types.db.(0) <- 31337)
        ds
    | Types.Meta (Types.Dir es) -> Array.fill es 0 (Array.length es) None
    | Types.Meta (Types.Indirect ps) -> Array.fill ps 0 (Array.length ps) 5
    | _ -> ()
  done;
  for i = 0 to 1023 do
    Alcotest.(check int)
      (Printf.sprintf "digest %d unchanged" i)
      digests.(i)
      (Su_disk.Disk.frag_digest d i)
  done;
  (* frag_digest itself must agree with digesting the decoded cell *)
  for i = 0 to 1023 do
    Alcotest.(check int)
      (Printf.sprintf "frag_digest %d consistent" i)
      (Types.cell_digest (Su_disk.Disk.peek d i))
      (Su_disk.Disk.frag_digest d i)
  done

(* --- Delta apply/undo driven by a volume-backed disk ------------------- *)

(* The delta observer's pre/post extents are decoded copies of volume
   state. Applying every delta forward onto the initial snapshot must
   land on the final image; undoing them all must restore the initial
   one — pinning that observer extents never share structure with the
   live volume. *)
let prop_delta_roundtrip_on_volume =
  QCheck.Test.make ~name:"delta apply/undo round-trips the volume image"
    ~count:30
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let e = Su_sim.Engine.create () in
      let d =
        Su_disk.Disk.create ~engine:e ~params:Su_disk.Disk_params.hp_c2447
          ~nfrags:512 ()
      in
      let log = ref [] in
      Su_disk.Disk.set_delta_observer d (fun ~lbn ~pre ~post ->
          log := Su_check.Delta.v ~lbn ~pre ~post :: !log);
      let initial = Su_disk.Disk.image_snapshot d in
      for _ = 1 to 30 do
        let lbn = Rng.int rng 500 in
        let nfrags = 1 + Rng.int rng 4 in
        let payload = Array.init nfrags (fun _ -> rand_cell rng) in
        Su_disk.Disk.submit d ~lbn ~nfrags ~op:Su_disk.Disk.Write
          ~payload:(Some payload)
          ~on_done:(fun _ _ -> ());
        Su_sim.Engine.run e
      done;
      let final = Su_disk.Disk.image_snapshot d in
      let deltas = Array.of_list (List.rev !log) in
      let img = Array.map Types.copy_cell initial in
      Array.iter (fun dl -> Su_check.Delta.apply img dl) deltas;
      let forward_ok = img = final in
      for k = Array.length deltas - 1 downto 0 do
        Su_check.Delta.undo img deltas.(k)
      done;
      forward_ok && img = initial)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_volume_equals_cells;
    Alcotest.test_case "digest equality, every kind" `Quick test_digest_every_kind;
    Alcotest.test_case "compact kinds + arena release" `Quick test_compact_kinds;
    Alcotest.test_case "boxed cells keep live aliasing" `Quick test_boxed_aliasing;
    Alcotest.test_case "decoded cells are isolated" `Quick test_decode_isolated;
    Alcotest.test_case "(lbn, slot) accessors" `Quick test_slot_accessors;
    Alcotest.test_case "peek mutation cannot corrupt" `Quick
      test_peek_mutation_harmless;
    QCheck_alcotest.to_alcotest prop_delta_roundtrip_on_volume;
  ]
