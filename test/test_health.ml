(* The volume-health automaton: monotone Healthy -> Degraded ->
   Readonly, the max_lost threshold edge, and transition events. *)
open Su_fs

let mk ?obs ?max_lost () =
  let e = Su_sim.Engine.create () in
  Health.create ~engine:e ?obs ?max_lost ()

let lvl =
  Alcotest.testable
    (fun ppf l -> Format.pp_print_string ppf (Health.level_name l))
    ( = )

let test_fresh_is_healthy () =
  let h = mk () in
  Alcotest.check lvl "fresh" Health.Healthy (Health.level h);
  Alcotest.(check bool) "not readonly" false (Health.readonly h);
  Alcotest.(check int) "no io errors" 0 (Health.io_errors h);
  Alcotest.(check int) "no lost frags" 0 (Health.lost h);
  Alcotest.(check int) "no sb repairs" 0 (Health.sb_restored h)

let test_io_error_degrades () =
  let h = mk () in
  Health.note_io_error h (Su_disk.Fault.Bad_sector { lbn = 7 });
  Alcotest.check lvl "degraded" Health.Degraded (Health.level h);
  Health.note_io_error h (Su_disk.Fault.Transient { op = `Read; lbn = 9 });
  Alcotest.check lvl "still degraded" Health.Degraded (Health.level h);
  Alcotest.(check int) "both counted" 2 (Health.io_errors h);
  Alcotest.(check bool) "operable" false (Health.readonly h)

let test_lost_threshold_edge () =
  (* readonly strictly past max_lost: exactly max_lost lost fragments
     leaves the volume degraded-but-writable *)
  let h = mk ~max_lost:3 () in
  for frag = 1 to 3 do
    Health.note_lost h ~frag
  done;
  Alcotest.check lvl "at the threshold" Health.Degraded (Health.level h);
  Alcotest.(check int) "all counted" 3 (Health.lost h);
  Health.note_lost h ~frag:4;
  Alcotest.check lvl "past the threshold" Health.Readonly (Health.level h);
  Alcotest.(check bool) "readonly" true (Health.readonly h)

let test_sb_restored_degrades_only () =
  let h = mk () in
  Health.note_sb_restored h;
  Alcotest.check lvl "degraded" Health.Degraded (Health.level h);
  Alcotest.(check int) "counted" 1 (Health.sb_restored h)

let test_spares_exhausted_is_readonly () =
  let h = mk () in
  Health.note_spares_exhausted h;
  Alcotest.check lvl "readonly" Health.Readonly (Health.level h)

let test_force_readonly () =
  let h = mk () in
  Health.force_readonly h ~reason:"test";
  Alcotest.check lvl "readonly" Health.Readonly (Health.level h)

let test_monotone_never_regresses () =
  (* later, milder notes must not improve the level: health only
     worsens while mounted; repair happens offline *)
  let h = mk ~max_lost:0 () in
  Health.note_lost h ~frag:1;
  Alcotest.check lvl "readonly" Health.Readonly (Health.level h);
  Health.note_sb_restored h;
  Health.note_io_error h (Su_disk.Fault.Bad_sector { lbn = 3 });
  Alcotest.check lvl "repairs don't regress the state" Health.Readonly
    (Health.level h);
  Alcotest.(check int) "counters still advance" 1 (Health.sb_restored h)

let test_transitions_emit_events () =
  (* one fault.health event per level change, none for repeats *)
  let obs = Su_obs.Events.create () in
  let h = mk ~obs ~max_lost:1 () in
  Health.note_io_error h (Su_disk.Fault.Bad_sector { lbn = 1 });
  Health.note_io_error h (Su_disk.Fault.Bad_sector { lbn = 2 });
  Alcotest.(check int) "one degrade event" 1 (Su_obs.Events.count obs);
  Health.note_lost h ~frag:1;
  Health.note_lost h ~frag:2;
  Alcotest.(check int) "one readonly event" 2 (Su_obs.Events.count obs);
  Health.force_readonly h ~reason:"again";
  Alcotest.(check int) "no event for a repeat" 2 (Su_obs.Events.count obs)

let suite =
  [
    Alcotest.test_case "fresh is healthy" `Quick test_fresh_is_healthy;
    Alcotest.test_case "io error degrades" `Quick test_io_error_degrades;
    Alcotest.test_case "lost threshold edge" `Quick test_lost_threshold_edge;
    Alcotest.test_case "sb restore degrades only" `Quick
      test_sb_restored_degrades_only;
    Alcotest.test_case "spares exhausted flips readonly" `Quick
      test_spares_exhausted_is_readonly;
    Alcotest.test_case "force readonly" `Quick test_force_readonly;
    Alcotest.test_case "monotone, never regresses" `Quick
      test_monotone_never_regresses;
    Alcotest.test_case "transitions emit events" `Quick
      test_transitions_emit_events;
  ]
