(* Unit and property tests for su_util. *)
open Su_util

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let x = Rng.int r 10 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 10)
  done

let test_rng_range () =
  let r = Rng.create 9 in
  for _ = 1 to 1000 do
    let x = Rng.int_range r 5 8 in
    Alcotest.(check bool) "in range" true (x >= 5 && x <= 8)
  done

let test_rng_split_independent () =
  let a = Rng.create 1 in
  let b = Rng.split a in
  Alcotest.(check bool) "streams differ" true (Rng.bits64 a <> Rng.bits64 b)

let test_rng_substream () =
  (* same family from equal seeds; derivation leaves the parent alone *)
  let a = Rng.create 9 and b = Rng.create 9 in
  let sa = Rng.substream a 3 and sb = Rng.substream b 3 in
  Alcotest.(check int64) "same seed, same substream" (Rng.bits64 sa)
    (Rng.bits64 sb);
  Alcotest.(check int64) "parent not perturbed" (Rng.bits64 a) (Rng.bits64 b);
  (* distinct indices are independent streams *)
  let c = Rng.create 9 in
  let s0 = Rng.substream c 0 and s1 = Rng.substream c 1 in
  Alcotest.(check bool) "indices differ" true (Rng.bits64 s0 <> Rng.bits64 s1);
  (* draws from one substream never move another *)
  let d = Rng.create 9 in
  let before = Rng.bits64 (Rng.substream d 1) in
  ignore (Rng.bits64 (Rng.substream d 0));
  Alcotest.(check int64) "sibling draws don't interfere" before
    (Rng.bits64 (Rng.substream d 1));
  Alcotest.check_raises "negative index rejected"
    (Invalid_argument "Rng.substream: negative index") (fun () ->
      ignore (Rng.substream (Rng.create 1) (-1)))

let test_rng_weighted () =
  let r = Rng.create 3 in
  let counts = Hashtbl.create 4 in
  for _ = 1 to 3000 do
    let x = Rng.weighted r [ (1, "a"); (2, "b"); (0, "c") ] in
    Hashtbl.replace counts x (1 + Option.value ~default:0 (Hashtbl.find_opt counts x))
  done;
  Alcotest.(check bool) "c never drawn" true (not (Hashtbl.mem counts "c"));
  let a = Hashtbl.find counts "a" and b = Hashtbl.find counts "b" in
  Alcotest.(check bool) "b roughly twice a" true (b > a)

let test_heap_sorts () =
  let h = Heap.create ~cmp:compare in
  List.iter (Heap.push h) [ 5; 1; 4; 1; 3; 9; 2 ];
  let rec drain acc =
    match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  Alcotest.(check (list int)) "sorted" [ 1; 1; 2; 3; 4; 5; 9 ] (drain [])

let test_heap_empty () =
  let h = Heap.create ~cmp:compare in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check (option int)) "peek none" None (Heap.peek h);
  Alcotest.(check (option int)) "pop none" None (Heap.pop h)

let test_heap_filter () =
  let h = Heap.create ~cmp:compare in
  List.iter (Heap.push h) [ 1; 2; 3; 4; 5; 6 ];
  Heap.filter_in_place h (fun x -> x mod 2 = 0);
  Alcotest.(check int) "three left" 3 (Heap.length h);
  Alcotest.(check (option int)) "min is 2" (Some 2) (Heap.peek h)

let prop_heap_pops_sorted =
  QCheck.Test.make ~name:"heap pops in sorted order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~cmp:compare in
      List.iter (Heap.push h) xs;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort compare xs)

let prop_heap_filter_in_place =
  QCheck.Test.make ~name:"heap filter_in_place keeps a valid heap" ~count:200
    QCheck.(pair (list int) int)
    (fun (xs, k) ->
      let h = Heap.create ~cmp:compare in
      List.iter (Heap.push h) xs;
      let pred x = x land 3 <> k land 3 in
      Heap.filter_in_place h pred;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort compare (List.filter pred xs))

let test_lru_append_order () =
  let l = Lru.create () in
  let mk i = Lru.make ~stamp:i i in
  let nodes = List.map mk [ 1; 2; 3 ] in
  List.iter (Lru.append l) nodes;
  Alcotest.(check (list int)) "fifo order" [ 1; 2; 3 ] (Lru.to_list l);
  Alcotest.(check (option int)) "head is oldest" (Some 1) (Lru.head l)

let test_lru_remove_relinks () =
  let l = Lru.create () in
  let mk i = Lru.make ~stamp:i i in
  let n1 = mk 1 and n2 = mk 2 and n3 = mk 3 in
  List.iter (Lru.append l) [ n1; n2; n3 ];
  Lru.remove l n2;
  Alcotest.(check (list int)) "middle gone" [ 1; 3 ] (Lru.to_list l);
  Lru.remove l n2;
  Alcotest.(check int) "double remove is a no-op" 2 (Lru.length l);
  Lru.remove l n1;
  Lru.remove l n3;
  Alcotest.(check bool) "empty" true (Lru.is_empty l);
  (* removed nodes are reusable *)
  Lru.append l n2;
  Alcotest.(check (list int)) "reinserted" [ 2 ] (Lru.to_list l)

let test_lru_touch_moves_to_tail () =
  let l = Lru.create () in
  let mk i = Lru.make ~stamp:i i in
  let n1 = mk 1 and n2 = mk 2 and n3 = mk 3 in
  List.iter (Lru.append l) [ n1; n2; n3 ];
  (* a touch = fresh maximal stamp + remove/append *)
  n1.Lru.stamp <- 4;
  Lru.remove l n1;
  Lru.append l n1;
  Alcotest.(check (list int)) "touched moves last" [ 2; 3; 1 ] (Lru.to_list l);
  Alcotest.(check (list int)) "stamps ascending" [ 2; 3; 4 ] (Lru.stamps l)

let test_lru_insert_by_stamp () =
  let l = Lru.create () in
  let mk i = Lru.make ~stamp:i i in
  List.iter (Lru.append l) [ mk 2; mk 5; mk 9 ];
  Lru.insert_by_stamp l (mk 7);
  Lru.insert_by_stamp l (mk 1);
  Lru.insert_by_stamp l (mk 12);
  Alcotest.(check (list int)) "stamp order kept" [ 1; 2; 5; 7; 9; 12 ]
    (Lru.to_list l);
  Alcotest.(check int) "length" 6 (Lru.length l)

let test_lru_find_skips () =
  let l = Lru.create () in
  let mk i = Lru.make ~stamp:i i in
  List.iter (Lru.append l) [ mk 1; mk 2; mk 3; mk 4 ];
  Alcotest.(check (option int)) "first even from head" (Some 2)
    (Lru.find (fun v -> v mod 2 = 0) l);
  Alcotest.(check (option int)) "no match" None (Lru.find (fun v -> v > 9) l)

let prop_lru_matches_model =
  (* random append/touch/migrate/remove trace against a sorted-list model *)
  QCheck.Test.make ~name:"lru lists match a stamp-sorted model" ~count:200
    QCheck.(list (pair (int_bound 3) (int_bound 9)))
    (fun ops ->
      let a = Lru.create () and b = Lru.create () in
      let nodes = Array.init 10 (fun i -> Lru.make i) in
      let where = Array.make 10 `Out in
      let counter = ref 0 in
      let model = ref [] in
      (* model: (id, stamp, side) sorted by stamp *)
      List.iter
        (fun (op, i) ->
          let n = nodes.(i) in
          match op, where.(i) with
          | 0, `Out ->
            (* enter side a with a fresh stamp *)
            incr counter;
            n.Lru.stamp <- !counter;
            Lru.append a n;
            where.(i) <- `A;
            model := (i, !counter, `A) :: !model
          | 1, (`A | `B) ->
            (* touch: fresh stamp, move to tail of its list *)
            incr counter;
            n.Lru.stamp <- !counter;
            let l = if where.(i) = `A then a else b in
            Lru.remove l n;
            Lru.append l n;
            model :=
              (i, !counter, where.(i))
              :: List.filter (fun (j, _, _) -> j <> i) !model
          | 2, (`A | `B) ->
            (* migrate to the other list, stamp unchanged *)
            let src, dst, side =
              if where.(i) = `A then (a, b, `B) else (b, a, `A)
            in
            Lru.remove src n;
            Lru.insert_by_stamp dst n;
            where.(i) <- side;
            model :=
              List.map
                (fun (j, s, sd) -> if j = i then (j, s, side) else (j, s, sd))
                !model
          | 3, (`A | `B) ->
            let l = if where.(i) = `A then a else b in
            Lru.remove l n;
            where.(i) <- `Out;
            model := List.filter (fun (j, _, _) -> j <> i) !model
          | _ -> ())
        ops;
      let expect side =
        List.filter (fun (_, _, sd) -> sd = side) !model
        |> List.sort (fun (_, s1, _) (_, s2, _) -> compare s1 s2)
        |> List.map (fun (j, _, _) -> j)
      in
      Lru.to_list a = expect `A
      && Lru.to_list b = expect `B
      && Lru.stamps a = List.sort compare (Lru.stamps a)
      && Lru.stamps b = List.sort compare (Lru.stamps b))

let test_stats_basic () =
  let s = Stats.of_list [ 1.0; 2.0; 3.0; 4.0 ] in
  Alcotest.(check int) "count" 4 (Stats.count s);
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean s);
  Alcotest.(check (float 1e-9)) "total" 10.0 (Stats.total s);
  Alcotest.(check (float 1e-6)) "stdev" 1.290994 (Stats.stdev s);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.min_value s);
  Alcotest.(check (float 1e-9)) "max" 4.0 (Stats.max_value s)

let test_stats_empty () =
  let s = Stats.create () in
  Alcotest.(check (float 0.0)) "mean 0" 0.0 (Stats.mean s);
  Alcotest.(check (float 0.0)) "stdev 0" 0.0 (Stats.stdev s)

let test_percentile () =
  let xs = [ 1.0; 2.0; 3.0; 4.0; 5.0; 6.0; 7.0; 8.0; 9.0; 10.0 ] in
  Alcotest.(check (float 1e-9)) "median" 5.0 (Stats.percentile xs 50.0);
  Alcotest.(check (float 1e-9)) "p100" 10.0 (Stats.percentile xs 100.0);
  Alcotest.(check (float 1e-9)) "p1" 1.0 (Stats.percentile xs 1.0)

let prop_stats_mean_matches =
  QCheck.Test.make ~name:"welford mean matches naive" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_inclusive 1000.0))
    (fun xs ->
      let s = Stats.of_list xs in
      let naive = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs) in
      Float.abs (Stats.mean s -. naive) < 1e-6)

let test_table_render () =
  let t = Text_table.create ~title:"T" ~headers:[ "a"; "bb" ] in
  Text_table.add_row t [ "x"; "1" ];
  Text_table.add_row t [ "longer" ];
  let out = Text_table.render t in
  Alcotest.(check bool) "has title" true (String.length out > 0);
  Alcotest.(check bool) "pads short rows" true
    (String.split_on_char '\n' out |> List.length >= 5)

(* --- Pool: the Domain-based work pool ---------------------------------- *)

let test_pool_ordering () =
  (* results land at their job index no matter which worker ran them *)
  let n = 200 in
  let r = Pool.map ~jobs:4 n (fun i -> i * i) in
  Alcotest.(check int) "length" n (Array.length r);
  Array.iteri
    (fun i v -> Alcotest.(check int) (Printf.sprintf "slot %d" i) (i * i) v)
    r;
  let serial = Pool.map n (fun i -> i * i) in
  Alcotest.(check bool) "serial identical" true (r = serial)

let test_pool_jobs_zero () =
  (* jobs:0 resolves to one worker per core and still merges in order *)
  Alcotest.(check bool) "recommended >= 1" true (Pool.recommended () >= 1);
  Alcotest.(check int) "resolve 0" (Pool.recommended ()) (Pool.resolve_jobs 0);
  Alcotest.(check int) "resolve 3" 3 (Pool.resolve_jobs 3);
  let r = Pool.map ~jobs:0 50 (fun i -> i + 1) in
  Alcotest.(check int) "slot 49" 50 r.(49)

let test_pool_exception () =
  (* the smallest failing index wins, matching what a serial run would
     raise first *)
  match Pool.map ~jobs:4 100 (fun i -> if i >= 40 then failwith "boom" else i) with
  | _ -> Alcotest.fail "expected an exception"
  | exception Failure m -> Alcotest.(check string) "original exn" "boom" m

let test_pool_map_with_init () =
  (* each worker gets private state from init; a worker's jobs see its
     counter advance 1, 2, 3, ... with no interleaving from others *)
  let next_id = Atomic.make 0 in
  let r =
    Pool.map_with ~jobs:3
      ~init:(fun () -> (Atomic.fetch_and_add next_id 1, ref 0))
      60
      (fun (wid, acc) i ->
        incr acc;
        (i, wid, !acc))
  in
  Alcotest.(check int) "every job ran" 60 (Array.length r);
  Array.iteri (fun i (j, _, _) -> Alcotest.(check int) "index" i j) r;
  let per_worker = Hashtbl.create 8 in
  Array.iter
    (fun (_, wid, c) ->
      let expect = (try Hashtbl.find per_worker wid with Not_found -> 0) + 1 in
      Alcotest.(check int)
        (Printf.sprintf "worker %d counter monotone" wid)
        expect c;
      Hashtbl.replace per_worker wid expect)
    r;
  let total = Hashtbl.fold (fun _ c acc -> c + acc) per_worker 0 in
  Alcotest.(check int) "counters partition the jobs" 60 total

let test_pool_nested_serial () =
  (* a map launched from inside a worker degrades to serial instead of
     oversubscribing with nested domains *)
  let r =
    Pool.map ~jobs:2 4 (fun i ->
        Alcotest.(check bool) "in worker" true (Pool.in_worker ());
        let inner = Pool.map ~jobs:4 3 (fun j -> (10 * i) + j) in
        Array.to_list inner)
  in
  Alcotest.(check bool) "outside worker again" false (Pool.in_worker ());
  Alcotest.(check (list int)) "nested results" [ 30; 31; 32 ] r.(3)

let test_pool_empty_and_single () =
  Alcotest.(check int) "n=0" 0 (Array.length (Pool.map ~jobs:4 0 (fun i -> i)));
  let one = Pool.map ~jobs:4 1 (fun i -> i + 7) in
  Alcotest.(check int) "n=1" 7 one.(0)

(* --- hierarchical bitset vs. IntSet model ---------------------------- *)

module IntSet = Set.Make (Int)

let prop_bitset_matches_intset =
  let print_ops ops =
    String.concat ";"
      (List.map
         (function
           | `Set i -> Printf.sprintf "+%d" i
           | `Clear i -> Printf.sprintf "-%d" i
           | `Next i -> Printf.sprintf "?%d" i)
         ops)
  in
  let gen_op =
    QCheck.Gen.(
      frequency
        [
          (3, map (fun i -> `Set i) (int_bound 2000));
          (2, map (fun i -> `Clear i) (int_bound 2000));
          (2, map (fun i -> `Next i) (int_bound 2100));
        ])
  in
  let arb = QCheck.make ~print:print_ops QCheck.Gen.(list_size (1 -- 200) gen_op) in
  QCheck.Test.make ~name:"bitset matches IntSet model" ~count:300 arb
    (fun ops ->
      let b = Bitset.create () in
      let model = ref IntSet.empty in
      List.for_all
        (function
          | `Set i ->
            Bitset.set b i;
            model := IntSet.add i !model;
            Bitset.mem b i
          | `Clear i ->
            Bitset.clear b i;
            model := IntSet.remove i !model;
            not (Bitset.mem b i)
          | `Next i ->
            let expect =
              match IntSet.find_first_opt (fun x -> x >= i) !model with
              | Some x -> x
              | None -> -1
            in
            Bitset.next_geq b i = expect
            && Bitset.min_elt b
               = (match IntSet.min_elt_opt !model with
                  | Some x -> x
                  | None -> -1)
            && Bitset.is_empty b = IntSet.is_empty !model)
        ops)

(* Itbl backs the driver's dispatch index; check it against the stdlib
   hash table. Keys are drawn from a small range against a tiny
   initial capacity so probe clusters, growth, and backward-shift
   deletion inside clusters are all exercised. *)
let prop_itbl_matches_model =
  let print_ops ops =
    String.concat " "
      (List.map
         (function
           | `Set (k, v) -> Printf.sprintf "%d:=%d" k v
           | `Remove k -> Printf.sprintf "-%d" k
           | `Get k -> Printf.sprintf "?%d" k)
         ops)
  in
  let gen_op =
    QCheck.Gen.(
      frequency
        [
          (3, map2 (fun k v -> `Set (k, v)) (int_bound 64) (int_bound 1000));
          (2, map (fun k -> `Remove k) (int_bound 64));
          (2, map (fun k -> `Get k) (int_bound 64));
        ])
  in
  let arb =
    QCheck.make ~print:print_ops QCheck.Gen.(list_size (1 -- 300) gen_op)
  in
  QCheck.Test.make ~name:"itbl matches Hashtbl model" ~count:300 arb
    (fun ops ->
      let t = Itbl.create ~capacity:8 ~absent:(-1) () in
      let model : (int, int) Hashtbl.t = Hashtbl.create 16 in
      List.for_all
        (function
          | `Set (k, v) ->
            Itbl.set t k v;
            Hashtbl.replace model k v;
            Itbl.get t k = v
          | `Remove k ->
            Itbl.remove t k;
            Hashtbl.remove model k;
            (not (Itbl.mem t k)) && Itbl.get t k = -1
          | `Get k ->
            Itbl.get t k
            = (match Hashtbl.find_opt model k with Some v -> v | None -> -1)
            && Itbl.mem t k = Hashtbl.mem model k)
        ops
      && Itbl.length t = Hashtbl.length model
      &&
      let pairs = ref [] in
      Itbl.iter (fun k v -> pairs := (k, v) :: !pairs) t;
      List.sort compare !pairs
      = List.sort compare
          (Hashtbl.fold (fun k v acc -> (k, v) :: acc) model []))

let test_itbl_basics () =
  let t = Itbl.create ~capacity:8 ~absent:0 () in
  Alcotest.(check int) "absent for unbound" 0 (Itbl.get t 42);
  Alcotest.(check bool) "mem unbound" false (Itbl.mem t 42);
  Itbl.set t 42 7;
  Alcotest.(check int) "bound" 7 (Itbl.get t 42);
  Itbl.set t 42 8;
  Alcotest.(check int) "rebound replaces" 8 (Itbl.get t 42);
  Alcotest.(check int) "length counts keys" 1 (Itbl.length t);
  (* force growth past the initial capacity, then delete half: the
     survivors must stay reachable through shifted probe chains *)
  for k = 0 to 15 do
    Itbl.set t k (k * 10)
  done;
  for k = 0 to 15 do
    if k mod 2 = 0 then Itbl.remove t k
  done;
  for k = 0 to 15 do
    Alcotest.(check int)
      (Printf.sprintf "key %d after churn" k)
      (if k mod 2 = 1 then k * 10 else 0)
      (Itbl.get t k)
  done;
  Alcotest.(check int) "length after churn" 9 (Itbl.length t);
  Alcotest.check_raises "negative key rejected"
    (Invalid_argument "Itbl.set: negative key") (fun () -> Itbl.set t (-1) 1)

let test_bitset_growth_and_bounds () =
  let b = Bitset.create () in
  Alcotest.(check bool) "empty" true (Bitset.is_empty b);
  Alcotest.(check int) "next on empty" (-1) (Bitset.next_geq b 0);
  Bitset.set b 0;
  Bitset.set b 100_000;
  Alcotest.(check bool) "low member" true (Bitset.mem b 0);
  Alcotest.(check bool) "high member after growth" true (Bitset.mem b 100_000);
  Alcotest.(check int) "skips the gap" 100_000 (Bitset.next_geq b 1);
  Alcotest.(check int) "negative query clamps" 0 (Bitset.next_geq b (-5));
  Bitset.clear b 0;
  Alcotest.(check int) "min after clear" 100_000 (Bitset.min_elt b);
  Bitset.clear b 100_000;
  Alcotest.(check bool) "empty again" true (Bitset.is_empty b);
  (* members are visited in increasing order *)
  List.iter (Bitset.set b) [ 9; 3; 500; 77 ];
  let seen = ref [] in
  Bitset.iter b (fun i -> seen := i :: !seen);
  Alcotest.(check (list int)) "iter ascending" [ 3; 9; 77; 500 ]
    (List.rev !seen)

let suite =
  [
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng range" `Quick test_rng_range;
    Alcotest.test_case "rng split" `Quick test_rng_split_independent;
    Alcotest.test_case "rng substream" `Quick test_rng_substream;
    Alcotest.test_case "rng weighted" `Quick test_rng_weighted;
    Alcotest.test_case "heap sorts" `Quick test_heap_sorts;
    Alcotest.test_case "heap empty" `Quick test_heap_empty;
    Alcotest.test_case "heap filter" `Quick test_heap_filter;
    QCheck_alcotest.to_alcotest prop_heap_pops_sorted;
    QCheck_alcotest.to_alcotest prop_heap_filter_in_place;
    Alcotest.test_case "lru append order" `Quick test_lru_append_order;
    Alcotest.test_case "lru remove relinks" `Quick test_lru_remove_relinks;
    Alcotest.test_case "lru touch moves to tail" `Quick test_lru_touch_moves_to_tail;
    Alcotest.test_case "lru insert by stamp" `Quick test_lru_insert_by_stamp;
    Alcotest.test_case "lru find skips" `Quick test_lru_find_skips;
    QCheck_alcotest.to_alcotest prop_lru_matches_model;
    QCheck_alcotest.to_alcotest prop_bitset_matches_intset;
    Alcotest.test_case "bitset growth and bounds" `Quick
      test_bitset_growth_and_bounds;
    QCheck_alcotest.to_alcotest prop_itbl_matches_model;
    Alcotest.test_case "itbl basics" `Quick test_itbl_basics;
    Alcotest.test_case "stats basic" `Quick test_stats_basic;
    Alcotest.test_case "stats empty" `Quick test_stats_empty;
    Alcotest.test_case "percentile" `Quick test_percentile;
    QCheck_alcotest.to_alcotest prop_stats_mean_matches;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "pool ordering" `Quick test_pool_ordering;
    Alcotest.test_case "pool jobs=0 resolves" `Quick test_pool_jobs_zero;
    Alcotest.test_case "pool exception propagation" `Quick test_pool_exception;
    Alcotest.test_case "pool per-worker init" `Quick test_pool_map_with_init;
    Alcotest.test_case "pool nested maps run serial" `Quick
      test_pool_nested_serial;
    Alcotest.test_case "pool empty and single" `Quick
      test_pool_empty_and_single;
  ]
