type t = {
  engine : Su_sim.Engine.t;
  cache : Bcache.t;
  interval : float;
  passes : int;
  mutable cursor : int;  (* next extent key to sweep *)
  mutable marked : int list;  (* keys marked on the previous pass *)
  mutable stopped : bool;
  mutable writes : int;
  mutable items : int;
  mutable npasses : int;
  batch : Su_obs.Hist.t;  (* writes issued per sweep *)
  residency : Su_obs.Hist.t;  (* dirty-buffer count sampled per sweep *)
}

(* Issue writes for the blocks marked one pass ago (if still dirty),
   then mark the dirty blocks in the next 1/passes slice of the cache.
   A block is therefore written within roughly (passes + 1) x interval
   of being dirtied, and the write-back load is spread smoothly. *)
let sweep t =
  t.npasses <- t.npasses + 1;
  Su_obs.Hist.add t.residency (float_of_int (Bcache.dirty_count t.cache));
  let writes_before = t.writes in
  let due = t.marked in
  t.marked <- [];
  List.iter
    (fun key ->
      match Bcache.lookup t.cache key with
      | Some b when b.Buf.dirty && b.Buf.io_count = 0 && b.Buf.syncer_marked ->
        b.Buf.syncer_marked <- false;
        t.writes <- t.writes + 1;
        ignore (Bcache.bawrite t.cache b)
      | Some b -> b.Buf.syncer_marked <- false
      | None -> ())
    due;
  let keys = Bcache.sorted_keys t.cache in
  let n = Array.length keys in
  if n > 0 then begin
    let slice = max 1 ((n + t.passes - 1) / t.passes) in
    let start =
      let rec find i =
        if i >= n then 0 else if keys.(i) >= t.cursor then i else find (i + 1)
      in
      find 0
    in
    for off = 0 to slice - 1 do
      let idx = (start + off) mod n in
      match Bcache.lookup t.cache keys.(idx) with
      | None -> ()
      | Some b ->
        if b.Buf.dirty && b.Buf.io_count = 0 then begin
          b.Buf.syncer_marked <- true;
          t.marked <- keys.(idx) :: t.marked
        end
    done;
    (* next tick continues after the last key processed; when we ran
       off the end the find above wraps to the beginning *)
    t.cursor <- keys.((start + slice - 1) mod n) + 1
  end;
  Su_obs.Hist.add t.batch (float_of_int (t.writes - writes_before))

let rec loop t () =
  Su_sim.Proc.sleep t.engine t.interval;
  if not t.stopped then begin
    let items = Bcache.take_workitems t.cache in
    List.iter
      (fun item ->
        t.items <- t.items + 1;
        item ())
      items;
    sweep t;
    loop t ()
  end

let start ~engine ~cache ?(interval = 1.0) ?(passes = 30) () =
  let t =
    { engine; cache; interval; passes; cursor = 0; marked = []; stopped = false;
      writes = 0; items = 0; npasses = 0;
      batch = Su_obs.Hist.create ~base:1.0 ~buckets:32 ();
      residency = Su_obs.Hist.create ~base:1.0 ~buckets:32 () }
  in
  ignore (Su_sim.Proc.spawn engine ~name:"syncer" (loop t));
  t

let stop t = t.stopped <- true

let writes_issued t = t.writes
let workitems_run t = t.items
let passes_run t = t.npasses
let batch_hist t = t.batch
let residency_hist t = t.residency
