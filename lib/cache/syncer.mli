(** The syncer daemon.

    UNIX SVR4 MP style (paper §2): the daemon wakes once per
    [interval] (1 second), first services the background workitem
    queue (deferred dependency processing for soft updates), then
    sweeps a [1/passes] slice of the buffer cache, initiating an
    asynchronous write for every dirty buffer it marked on the
    previous pass and marking the dirty buffers it encounters now.
    This spreads write-back smoothly instead of the classic bursty
    "30-second sync". *)

type t

val start :
  engine:Su_sim.Engine.t ->
  cache:Bcache.t ->
  ?interval:float ->
  ?passes:int ->
  unit ->
  t
(** Spawn the daemon process. Defaults: [interval = 1.0] s,
    [passes = 30]. *)

val stop : t -> unit
(** The daemon exits at its next wake-up. *)

val writes_issued : t -> int
val workitems_run : t -> int

val passes_run : t -> int
(** Sweeps executed so far. *)

val batch_hist : t -> Su_obs.Hist.t
(** Writes issued per sweep (flush batch sizes; base-1 buckets). *)

val residency_hist : t -> Su_obs.Hist.t
(** Dirty-buffer count sampled at the start of each sweep. *)
