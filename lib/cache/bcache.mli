(** The buffer cache.

    Provides the three UNIX write disciplines the paper compares:
    synchronous ([bwrite_sync]), asynchronous ([bawrite]) and delayed
    ([bdwrite], flushed later by the {!Syncer} daemon). Ordering
    schemes influence the cache through {!hooks} (write-time rollback
    for soft updates, post-write dependency processing) and through
    the per-buffer [wflag]/[wdeps] fields picked up when a delayed
    buffer is finally written.

    Locking model: while a write is in flight its source buffer is
    write-locked — updaters block in {!prepare_modify} — unless the
    block-copy enhancement (-CB, §3.3 of the paper) is enabled, in
    which case updaters proceed immediately (the payload was
    snapshotted at issue). The block-copy CPU cost is charged by the
    caller via the configured [copy_cost] callback. *)

exception Io_error of Su_disk.Fault.error
(** A synchronous cache operation ([bread], [bwrite_sync]) failed at
    the device after the driver's retry budget ran out. *)

type stuck_buffer = {
  sb_key : int;  (** extent start address *)
  sb_nfrags : int;
  sb_dirty : bool;
  sb_io : int;  (** writes in flight *)
  sb_ref : int;  (** references held *)
  sb_sticky : bool;
}
(** Snapshot of a buffer implicated in a stuck cache operation. *)

exception
  Stuck of { op : string; detail : string; buffers : stuck_buffer list }
(** A cache loop made no progress (dependency cycle, unreclaimable
    space, copy budget never released). [buffers] identifies exactly
    which buffers are wedged and why. Replaces the bare [Failure]
    dead-ends these paths used to raise. *)

val stuck_to_string : op:string -> detail:string -> stuck_buffer list -> string
(** Render a {!Stuck} payload the way the registered exception printer
    does (at most 16 buffers listed). *)

type hooks = {
  mutable pre_write : Buf.t -> Buf.content * bool;
      (** snapshot the write payload; [true] = keep the buffer dirty
          (some updates were rolled back) *)
  mutable post_write : Buf.t -> unit;
      (** dependency processing after a write completes *)
  mutable pre_invalidate : Buf.t -> unit;
      (** scheme must detach any dependency state *)
  mutable verify_fill :
    (lbn:int -> Su_fstypes.Types.cell array -> Su_fstypes.Types.cell array)
      option;
      (** integrity hook, run (process context) on every fill read
          before the cells become a buffer: returns the cells to
          trust (possibly repaired), or raises
          [Io_error (Checksum _)] when the repair ladder is
          exhausted. Installed by the fs layer. *)
}

type config = {
  capacity_frags : int;  (** total cached fragments *)
  cb : bool;  (** block-copy enhancement enabled *)
  copy_cost : int -> unit;
      (** charge CPU for copying [n] fragments (block-copy / rollback
          copies); called in process or engine context, must not
          block *)
  sink : Su_obs.Events.t option;
      (** when set, the cache emits [cache.fill] / [cache.dirty] /
          [cache.clean] / [cache.evict] / [cache.invalidate] events.
          Never perturbs cache behavior or simulated time. *)
}

val default_config : config
(** 32 MB cache, no block copy, free copies, no event sink. *)

type t

val create : engine:Su_sim.Engine.t -> driver:Su_driver.Driver.t -> config -> t

val hooks : t -> hooks
val engine : t -> Su_sim.Engine.t
val driver : t -> Su_driver.Driver.t
val cb_enabled : t -> bool

val lookup : t -> int -> Buf.t option
(** By extent start address; no I/O, no reference taken. *)

val getblk : t -> lbn:int -> nfrags:int -> init:(unit -> Buf.content) -> Buf.t
(** Find or create a buffer without reading the disk (used when the
    caller will fully initialise it). Takes a reference.
    @raise Invalid_argument if a cached buffer exists at [lbn] with a
    different extent length. *)

val bread : t -> lbn:int -> nfrags:int -> Buf.t
(** Read through the cache (blocking on a miss). Takes a reference.
    @raise Io_error if the device read failed after all retries. *)

val release : t -> Buf.t -> unit
(** Drop a reference taken by [getblk]/[bread]. *)

val with_buf : t -> Buf.t -> (Buf.t -> 'a) -> 'a
(** Run [f] and release the buffer afterwards (also on exceptions). *)

val prepare_modify : t -> Buf.t -> unit
(** Block until the buffer may be mutated (write-lock wait unless
    block-copy is enabled). Call before changing [content]. *)

val bdwrite : t -> Buf.t -> unit
(** Delayed write: mark dirty. *)

val bawrite :
  ?flagged:bool ->
  ?deps:int list ->
  ?sync:bool ->
  ?notify:((unit, Su_disk.Fault.error) result -> unit) ->
  t ->
  Buf.t ->
  int
(** Issue an asynchronous write now; returns the request id.
    [flagged]/[deps] override the buffer's pending [wflag]/[wdeps]
    (which are consumed either way). Multiple writes of one buffer may
    be in flight; the driver completes overlapping writes in issue
    order. [notify] runs (in engine context) when this write
    completes, with [Error] if the driver failed it after all retries.
    A failed write re-marks the buffer dirty (the payload never became
    durable) and skips the post-write dependency hook. *)

val bwrite_sync : t -> Buf.t -> unit
(** Synchronous write: issue and block until it reaches the disk.
    @raise Io_error if the device write failed after all retries. *)

val wait_write : t -> Buf.t -> unit
(** Block until the current in-flight write (if any) completes. *)

val set_extent : t -> Buf.t -> nfrags:int -> Buf.content -> unit
(** Change a buffer's extent length and content in place (fragment
    extension); adjusts space accounting. *)

val invalidate : t -> Buf.t -> unit
(** Drop the buffer (even if dirty — the caller is deallocating the
    storage). Runs the [pre_invalidate] hook first. *)

val add_workitem : t -> (unit -> unit) -> unit
(** Queue background work for the syncer daemon (may block when run). *)

val take_workitems : t -> (unit -> unit) list
(** Drain the queue (syncer only). *)

val dirty_count : t -> int
val used_frags : t -> int

val io_failures : t -> int
(** Writes the driver failed after exhausting its retry budget; each
    left its buffer dirty for a later re-flush. *)

val set_io_error_callback : t -> (Su_disk.Fault.error -> unit) -> unit
(** Invoked (engine or process context) on every definitive device
    failure the cache observes — failed buffer writes and failed
    reads — after internal accounting, before any exception is
    raised. The FS health monitor hangs off this. *)

val last_io_error : t -> Su_disk.Fault.error option
(** Most recent definitive device failure, if any. *)

val hits : t -> int
(** [getblk]/[bread] calls that found their extent cached. *)

val misses : t -> int
(** Calls that created the buffer (read in or freshly initialised). *)

val evictions : t -> int
(** Buffers reclaimed by [ensure_space] under capacity pressure
    (explicit {!invalidate} calls are not counted). *)

val pick_victim : t -> Buf.t option
(** The buffer space reclaim would take next: the least recently used
    evictable clean buffer, else the least recently used evictable
    dirty one, else [None] (everything referenced, in-flight or
    sticky). Exposed for the test suite. *)

val lru_keys : t -> dirty:bool -> int list
(** Extent keys of the clean ([dirty:false]) or dirty ([dirty:true])
    recency list, least recently used first. Exposed for the test
    suite. *)

val all_bufs : t -> Buf.t list
(** Valid buffers in unspecified order. *)

val sorted_keys : t -> int array
(** Extent start addresses in increasing order (syncer sweep). *)

val sync_all : t -> unit
(** Flush every dirty buffer and quiesce the driver, iterating until
    dependency rollbacks converge.
    @raise Io_error if the dirty set stops shrinking because the
    device keeps failing writes definitively (permanent fault with the
    spare pool exhausted or absent).
    @raise Stuck if no progress is made without device failures
    (dependency cycle — a bug), listing the still-dirty buffers. *)
