open Su_sim

exception Io_error of Su_disk.Fault.error

type stuck_buffer = {
  sb_key : int;
  sb_nfrags : int;
  sb_dirty : bool;
  sb_io : int;
  sb_ref : int;
  sb_sticky : bool;
}

exception Stuck of { op : string; detail : string; buffers : stuck_buffer list }

let stuck_buffer_of (b : Buf.t) =
  {
    sb_key = b.Buf.key;
    sb_nfrags = b.Buf.nfrags;
    sb_dirty = b.Buf.dirty;
    sb_io = b.Buf.io_count;
    sb_ref = b.Buf.refcount;
    sb_sticky = b.Buf.sticky;
  }

let stuck_to_string ~op ~detail buffers =
  let buf_line b =
    Printf.sprintf "  lbn %d (%d frags): %s%sio=%d ref=%d" b.sb_key b.sb_nfrags
      (if b.sb_dirty then "dirty " else "clean ")
      (if b.sb_sticky then "sticky " else "")
      b.sb_io b.sb_ref
  in
  let shown = List.filteri (fun i _ -> i < 16) buffers in
  let lines = List.map buf_line shown in
  let lines =
    if List.length buffers > 16 then
      lines @ [ Printf.sprintf "  ... and %d more" (List.length buffers - 16) ]
    else lines
  in
  Printf.sprintf "Bcache.%s stuck: %s\n%d buffer(s) involved:\n%s" op detail
    (List.length buffers)
    (String.concat "\n" lines)

let () =
  Printexc.register_printer (function
    | Stuck { op; detail; buffers } ->
      Some (stuck_to_string ~op ~detail buffers)
    | Io_error e ->
      Some (Printf.sprintf "Bcache.Io_error: %s" (Su_disk.Fault.error_to_string e))
    | _ -> None)

type hooks = {
  mutable pre_write : Buf.t -> Buf.content * bool;
  mutable post_write : Buf.t -> unit;
  mutable pre_invalidate : Buf.t -> unit;
  mutable verify_fill :
    (lbn:int -> Su_fstypes.Types.cell array -> Su_fstypes.Types.cell array)
      option;
      (* integrity hook, run (process context) on every fill read
         before the cells become a buffer: returns the cells to trust
         (possibly repaired) or raises [Io_error (Checksum _)] when
         the repair ladder is exhausted. Installed by the fs layer —
         the cache cannot see the checksum region's owner directly *)
}

type config = {
  capacity_frags : int;
  cb : bool;
  copy_cost : int -> unit;
  sink : Su_obs.Events.t option;
}

let default_config =
  { capacity_frags = 32 * 1024; cb = false; copy_cost = (fun _ -> ());
    sink = None }

type t = {
  engine : Engine.t;
  driver : Su_driver.Driver.t;
  config : config;
  hooks : hooks;
  tbl : (int, Buf.t) Hashtbl.t;
  (* Every valid buffer sits on exactly one of two intrusive recency
     lists (clean or dirty, per its dirty bit), each kept in ascending
     stamp order: the head is the least recently used buffer. Victim
     selection and the full-flush walk therefore never scan the table. *)
  clean_lru : Buf.t Su_util.Lru.t;
  dirty_lru : Buf.t Su_util.Lru.t;
  mutable used : int;
  mutable copies : int;  (* fragments held by in-flight write snapshots *)
  mutable ndirty : int;
  mutable nio_failures : int;  (* writes failed by the driver (fail-fast) *)
  mutable nhits : int;  (* getblk/bread found the extent cached *)
  mutable nmisses : int;  (* extent not cached: created or read in *)
  mutable nevictions : int;  (* buffers reclaimed under space pressure *)
  mutable lru_counter : int;
  space_waiters : Sync.Waitq.t;
  mutable workitems : (unit -> unit) list;  (* reversed *)
  mutable last_io_error : Su_disk.Fault.error option;
  mutable on_io_error : Su_disk.Fault.error -> unit;
      (* health monitor hook: hears every definitive device failure *)
}

let default_hooks () =
  {
    pre_write = (fun b -> (Buf.copy_content b.Buf.content, false));
    post_write = (fun _ -> ());
    pre_invalidate = (fun _ -> ());
    verify_fill = None;
  }

let create ~engine ~driver config =
  {
    engine;
    driver;
    config;
    hooks = default_hooks ();
    tbl = Hashtbl.create 4096;
    clean_lru = Su_util.Lru.create ();
    dirty_lru = Su_util.Lru.create ();
    used = 0;
    copies = 0;
    ndirty = 0;
    nio_failures = 0;
    nhits = 0;
    nmisses = 0;
    nevictions = 0;
    lru_counter = 0;
    space_waiters = Sync.Waitq.create engine;
    workitems = [];
    last_io_error = None;
    on_io_error = (fun _ -> ());
  }

let hooks t = t.hooks
let engine t = t.engine
let driver t = t.driver
let cb_enabled t = t.config.cb
let dirty_count t = t.ndirty
let used_frags t = t.used
let io_failures t = t.nio_failures
let hits t = t.nhits
let misses t = t.nmisses
let evictions t = t.nevictions
let set_io_error_callback t f = t.on_io_error <- f
let last_io_error t = t.last_io_error

let note_io_error t e =
  t.last_io_error <- Some e;
  t.on_io_error e

let emit t ~kind fields =
  match t.config.sink with
  | None -> ()
  | Some sink ->
    Su_obs.Events.emit sink ~t_sim:(Engine.now t.engine) ~kind fields

let emit_buf t ~kind (b : Buf.t) =
  (* build the field list only when a sink is attached: this runs on
     every dirty/clean/fill/evict transition *)
  match t.config.sink with
  | None -> ()
  | Some _ ->
    emit t ~kind
      [ ("lbn", Su_obs.Json.Int b.Buf.key);
        ("nfrags", Su_obs.Json.Int b.Buf.nfrags) ]

let lru_of t (b : Buf.t) = if b.Buf.dirty then t.dirty_lru else t.clean_lru

let touch t (b : Buf.t) =
  t.lru_counter <- t.lru_counter + 1;
  b.Buf.lru.Su_util.Lru.stamp <- t.lru_counter;
  if b.Buf.valid then begin
    (* fresh maximal stamp: move to the tail of its list, O(1) *)
    let l = lru_of t b in
    Su_util.Lru.remove l b.Buf.lru;
    Su_util.Lru.append l b.Buf.lru
  end

let lookup t lbn = Hashtbl.find_opt t.tbl lbn

let all_bufs t = Hashtbl.fold (fun _ b acc -> b :: acc) t.tbl []

let sorted_keys t =
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) t.tbl [] in
  let arr = Array.of_list keys in
  Array.sort Int.compare arr;
  arr

let set_dirty t (b : Buf.t) v =
  if b.Buf.dirty <> v then begin
    if b.Buf.valid then Su_util.Lru.remove (lru_of t b) b.Buf.lru;
    b.Buf.dirty <- v;
    t.ndirty <- t.ndirty + (if v then 1 else -1);
    emit_buf t ~kind:(if v then "cache.dirty" else "cache.clean") b;
    (* migrate with the stamp unchanged: dirtying/cleaning a buffer is
       not a recency event (only [touch] is), so it keeps its position
       in the global LRU order *)
    if b.Buf.valid then Su_util.Lru.insert_by_stamp (lru_of t b) b.Buf.lru
  end

let bdwrite t b = set_dirty t b true

(* --- write-out ------------------------------------------------------ *)

let finish_write ?(failed = false) t (b : Buf.t) =
  b.Buf.io_count <- b.Buf.io_count - 1;
  if b.Buf.io_count = 0 then begin
    b.Buf.io_locked <- false;
    Sync.Waitq.broadcast b.Buf.lock_waiters;
    let ws = b.Buf.write_waiters in
    b.Buf.write_waiters <- [];
    List.iter (fun w -> Engine.soon t.engine w) ws
  end;
  if failed then begin
    (* the payload never became durable: count it, re-mark the buffer
       dirty so a later flush re-drives it, and skip the post-write
       dependency hook (it assumes the update is on disk — running it
       would let the scheme release ordering constraints early) *)
    t.nio_failures <- t.nio_failures + 1;
    if b.Buf.valid then set_dirty t b true
  end
  else if b.Buf.valid then t.hooks.post_write b;
  Sync.Waitq.signal t.space_waiters

let bawrite ?flagged ?deps ?(sync = false) ?notify t (b : Buf.t) =
  (* The issue-time snapshot occupies real memory until the write
     completes. When snapshots (plus the cache) exceed memory, the
     writer must wait — the paper's observation that block copying
     "does not behave well when system activity exceeds the available
     memory". Only process-context callers can reach this point with
     the budget exhausted (the syncer, scheme hooks, evictions). *)
  if t.config.cb then begin
    let attempts = ref 0 in
    while
      t.copies + b.Buf.nfrags > t.config.capacity_frags
      && Su_sim.Proc.self_opt () <> None
    do
      incr attempts;
      if !attempts > 1_000_000 then
        raise
          (Stuck
             {
               op = "bawrite";
               detail =
                 Printf.sprintf
                   "copy memory never freed (%d snapshot fragments held, \
                    capacity %d)"
                   t.copies t.config.capacity_frags;
               buffers =
                 List.filter_map
                   (fun (b : Buf.t) ->
                     if b.Buf.io_count > 0 then Some (stuck_buffer_of b)
                     else None)
                   (all_bufs t);
             });
      Sync.Waitq.wait t.space_waiters
    done;
    t.copies <- t.copies + b.Buf.nfrags
  end;
  let payload, keep_dirty = t.hooks.pre_write b in
  t.config.copy_cost b.Buf.nfrags;
  let cells = Buf.to_cells payload ~nfrags:b.Buf.nfrags in
  let flagged = match flagged with Some f -> f | None -> b.Buf.wflag in
  let deps = match deps with Some d -> d | None -> b.Buf.wdeps in
  b.Buf.wflag <- false;
  b.Buf.wdeps <- [];
  set_dirty t b keep_dirty;
  b.Buf.io_count <- b.Buf.io_count + 1;
  if not t.config.cb then b.Buf.io_locked <- true;
  Su_driver.Driver.submit t.driver ~kind:Su_driver.Request.Write ~lbn:b.Buf.key
    ~nfrags:b.Buf.nfrags ~flagged ~deps ~sync ~payload:cells
    ~on_complete:(fun result ->
      if t.config.cb then begin
        t.copies <- t.copies - b.Buf.nfrags;
        Sync.Waitq.signal t.space_waiters
      end;
      (match result with Error e -> note_io_error t e | Ok _ -> ());
      let failed = Result.is_error result in
      finish_write ~failed t b;
      match notify with
      | Some f -> f (Result.map (fun _ -> ()) result)
      | None -> ())
    ()

let wait_write _t (b : Buf.t) =
  if b.Buf.io_count > 0 then
    Proc.suspend (fun resume ->
        b.Buf.write_waiters <- resume :: b.Buf.write_waiters)

let bwrite_sync t (b : Buf.t) =
  (* Wait for in-flight writes of this buffer first: real systems
     never have two writes of one buffer outstanding on this path, and
     the soft-updates completion bookkeeping relies on single-flight
     metadata writes. *)
  while b.Buf.io_count > 0 do
    wait_write t b
  done;
  let iv : (unit, Su_disk.Fault.error) result Proc.Ivar.t =
    Proc.Ivar.create t.engine
  in
  ignore (bawrite ~sync:true ~notify:(fun r -> Proc.Ivar.fill iv r) t b);
  match Proc.Ivar.read iv with Ok () -> () | Error e -> raise (Io_error e)

let prepare_modify t (b : Buf.t) =
  if not t.config.cb then
    while b.Buf.io_locked do
      Sync.Waitq.wait b.Buf.lock_waiters
    done

(* --- space management ----------------------------------------------- *)

let remove_from_table t (b : Buf.t) =
  if b.Buf.valid then begin
    Su_util.Lru.remove (lru_of t b) b.Buf.lru;
    b.Buf.valid <- false;
    Hashtbl.remove t.tbl b.Buf.key;
    t.used <- t.used - b.Buf.nfrags;
    if b.Buf.dirty then begin
      b.Buf.dirty <- false;
      t.ndirty <- t.ndirty - 1
    end
  end

let invalidate t (b : Buf.t) =
  if b.Buf.valid then begin
    emit_buf t ~kind:"cache.invalidate" b;
    t.hooks.pre_invalidate b;
    remove_from_table t b;
    Sync.Waitq.signal t.space_waiters
  end

let evictable (b : Buf.t) =
  b.Buf.valid && b.Buf.refcount = 0 && b.Buf.io_count = 0 && not b.Buf.sticky

let pick_victim t =
  (* Prefer the least-recently-used clean buffer; fall back to the
     least-recently-used dirty one (which we must write first). The
     lists are in ascending stamp order, so the first evictable buffer
     from the head is the LRU evictable one; busy buffers (referenced,
     in-flight or sticky) are merely stepped over. *)
  match Su_util.Lru.find evictable t.clean_lru with
  | Some b -> Some b
  | None -> Su_util.Lru.find evictable t.dirty_lru

let lru_keys t ~dirty =
  List.map
    (fun (b : Buf.t) -> b.Buf.key)
    (Su_util.Lru.to_list (if dirty then t.dirty_lru else t.clean_lru))

let ensure_space t needed =
  let attempts = ref 0 in
  while t.used + needed > t.config.capacity_frags do
    incr attempts;
    if !attempts > 100_000 then
      raise
        (Stuck
           {
             op = "ensure_space";
             detail =
               Printf.sprintf
                 "cannot reclaim %d fragments (used %d of %d, no evictable \
                  buffer)"
                 needed t.used t.config.capacity_frags;
             buffers =
               List.filter_map
                 (fun (b : Buf.t) ->
                   if not (evictable b) then Some (stuck_buffer_of b) else None)
                 (all_bufs t);
           });
    match pick_victim t with
    | None -> Sync.Waitq.wait t.space_waiters
    | Some b ->
      if b.Buf.dirty then begin
        ignore (bawrite t b);
        wait_write t b;
        (* it may have been re-dirtied by a rollback; if so, it stays
           and we try another victim *)
        if (not b.Buf.dirty) && evictable b then begin
          t.nevictions <- t.nevictions + 1;
          emit_buf t ~kind:"cache.evict" b;
          invalidate t b
        end
      end
      else begin
        t.nevictions <- t.nevictions + 1;
        emit_buf t ~kind:"cache.evict" b;
        invalidate t b
      end
  done

(* --- lookup / read --------------------------------------------------- *)

let new_buf t ~lbn ~nfrags content =
  let lock_waiters = Sync.Waitq.create t.engine in
  let rec b =
    {
      Buf.key = lbn;
      nfrags;
      content;
      dirty = false;
      io_count = 0;
      io_locked = false;
      valid = true;
      refcount = 1;
      lru = { Su_util.Lru.value = b; stamp = 0; prev = None; next = None; in_list = false };
      wflag = false;
      wdeps = [];
      aux = None;
      sticky = false;
      syncer_marked = false;
      lock_waiters;
      write_waiters = [];
    }
  in
  touch t b;
  Hashtbl.replace t.tbl lbn b;
  t.used <- t.used + nfrags;
  emit_buf t ~kind:"cache.fill" b;
  b

let getblk t ~lbn ~nfrags ~init =
  match Hashtbl.find_opt t.tbl lbn with
  | Some b ->
    if b.Buf.nfrags <> nfrags then
      invalid_arg
        (Printf.sprintf "Bcache.getblk: extent mismatch at %d (%d vs %d)" lbn
           b.Buf.nfrags nfrags);
    t.nhits <- t.nhits + 1;
    b.Buf.refcount <- b.Buf.refcount + 1;
    touch t b;
    b
  | None ->
    t.nmisses <- t.nmisses + 1;
    ensure_space t nfrags;
    new_buf t ~lbn ~nfrags (init ())

let bread t ~lbn ~nfrags =
  match Hashtbl.find_opt t.tbl lbn with
  | Some b ->
    if b.Buf.nfrags <> nfrags then
      invalid_arg
        (Printf.sprintf "Bcache.bread: extent mismatch at %d (%d vs %d)" lbn
           b.Buf.nfrags nfrags);
    t.nhits <- t.nhits + 1;
    b.Buf.refcount <- b.Buf.refcount + 1;
    touch t b;
    b
  | None ->
    t.nmisses <- t.nmisses + 1;
    ensure_space t nfrags;
    let iv : (Su_fstypes.Types.cell array, Su_disk.Fault.error) result Proc.Ivar.t
        =
      Proc.Ivar.create t.engine
    in
    ignore
      (Su_driver.Driver.submit t.driver ~kind:Su_driver.Request.Read ~lbn
         ~nfrags ~sync:true
         ~on_complete:(fun result ->
           match result with
           | Ok (Some cells) -> Proc.Ivar.fill iv (Ok cells)
           | Ok None -> invalid_arg "Bcache.bread: read returned no data"
           | Error e -> Proc.Ivar.fill iv (Error e))
         ());
    let cells =
      match Proc.Ivar.read iv with
      | Ok cells -> cells
      | Error e ->
        note_io_error t e;
        raise (Io_error e)
    in
    (* another process may have created the buffer while we waited *)
    (match Hashtbl.find_opt t.tbl lbn with
     | Some b ->
       b.Buf.refcount <- b.Buf.refcount + 1;
       touch t b;
       b
     | None ->
       (* verify the fill end-to-end before the cells become cached
          truth; the hook may re-read, repair, or raise a typed
          checksum error (it runs in this process's context) *)
       let cells =
         match t.hooks.verify_fill with
         | None -> cells
         | Some verify ->
           (try verify ~lbn cells
            with Io_error e as exn ->
              note_io_error t e;
              raise exn)
       in
       (match Hashtbl.find_opt t.tbl lbn with
        | Some b ->
          b.Buf.refcount <- b.Buf.refcount + 1;
          touch t b;
          b
        | None -> new_buf t ~lbn ~nfrags (Buf.of_cells cells)))

let release t (b : Buf.t) =
  if b.Buf.refcount <= 0 then invalid_arg "Bcache.release: not referenced";
  b.Buf.refcount <- b.Buf.refcount - 1;
  touch t b;
  if b.Buf.refcount = 0 then Sync.Waitq.signal t.space_waiters

let with_buf t b f = Fun.protect ~finally:(fun () -> release t b) (fun () -> f b)

let set_extent t (b : Buf.t) ~nfrags content =
  t.used <- t.used - b.Buf.nfrags + nfrags;
  b.Buf.nfrags <- nfrags;
  b.Buf.content <- content

(* --- workitems ------------------------------------------------------- *)

let add_workitem t f = t.workitems <- f :: t.workitems

let take_workitems t =
  let items = List.rev t.workitems in
  t.workitems <- [];
  items

(* --- full flush ------------------------------------------------------ *)

let sync_all t =
  let rounds = ref 0 in
  let stalled = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    incr rounds;
    if !rounds > 1000 then
      raise
        (Stuck
           {
             op = "sync_all";
             detail =
               Printf.sprintf
                 "no convergence after %d rounds (%d dirty buffers, %d queued \
                  workitems, %d failed writes)"
                 !rounds t.ndirty
                 (List.length t.workitems)
                 t.nio_failures;
             buffers =
               List.map stuck_buffer_of (Su_util.Lru.to_list t.dirty_lru);
           });
    let dirty0 = t.ndirty and fail0 = t.nio_failures in
    List.iter (fun item -> item ()) (take_workitems t);
    (* the dirty list already holds exactly the valid dirty buffers in
       LRU (ascending stamp) order; snapshot it, skipping buffers with
       a write already in flight *)
    let dirty =
      List.filter
        (fun (b : Buf.t) -> b.Buf.io_count = 0)
        (Su_util.Lru.to_list t.dirty_lru)
    in
    List.iter
      (fun b ->
        ignore (bawrite t b);
        wait_write t b)
      dirty;
    Su_driver.Driver.quiesce t.driver;
    continue_ := t.ndirty > 0 || t.workitems <> [];
    (* A dirty set pinned in place by definitive device failures is a
       permanent fault (remap pool exhausted or no spares), not a
       dependency cycle: surface the typed device error instead of
       spinning toward the [Stuck] round limit. Three consecutive
       zero-progress failing rounds ≈ 15 device attempts per buffer —
       a transient blip cannot survive that. *)
    if !continue_ then
      if t.nio_failures > fail0 && t.ndirty >= dirty0 then begin
        incr stalled;
        if !stalled >= 3 then
          raise
            (Io_error
               (match t.last_io_error with
                | Some e -> e
                | None -> Su_disk.Fault.Transient { op = `Write; lbn = -1 }))
      end
      else stalled := 0
  done
