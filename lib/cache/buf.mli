(** Cached disk buffers.

    A buffer caches one on-disk extent: either a structured metadata
    block or a run of data fragments. Buffers are the unit of
    dirtiness, write-out and locking. Ordering schemes hang
    per-buffer dependency state off the extensible [aux] slot. *)

type content =
  | Cmeta of Su_fstypes.Types.meta
  | Cdata of Su_fstypes.Types.stamp option array
      (** one slot per fragment; [None] = never written (garbage) *)

type aux = ..
(** Extended by ordering schemes (e.g. soft-updates dependency
    structures). At most one attachment per buffer. *)

type t = {
  key : int;  (** first fragment address of the extent *)
  mutable nfrags : int;
  mutable content : content;
  mutable dirty : bool;
  mutable io_count : int;  (** writes of this buffer on the driver *)
  mutable io_locked : bool;  (** updaters must wait (no block-copy) *)
  mutable valid : bool;  (** false once invalidated/evicted *)
  mutable refcount : int;
  lru : t Su_util.Lru.node;
      (** intrusive recency node; [lru.value == t]. Owned by the cache:
          on the clean list when valid and not dirty, on the dirty list
          when valid and dirty, detached when invalid. *)
  mutable wflag : bool;  (** issue the next write with the ordering flag *)
  mutable wdeps : int list;  (** chains: request ids the next write depends on *)
  mutable aux : aux option;
  mutable sticky : bool;  (** never evict (scheme holds state in content) *)
  mutable syncer_marked : bool;  (** first-pass mark by the syncer daemon *)
  lock_waiters : Su_sim.Sync.Waitq.t;
  mutable write_waiters : (unit -> unit) list;
      (** resumed when the in-flight write completes *)
}

val meta : t -> Su_fstypes.Types.meta
(** @raise Invalid_argument if the buffer holds data. *)

val data : t -> Su_fstypes.Types.stamp option array
(** @raise Invalid_argument if the buffer holds metadata. *)

val copy_content : content -> content

val to_cells : content -> nfrags:int -> Su_fstypes.Types.cell array
(** Serialise for a write payload: metadata occupies the first cell
    with [Pad] tails; data fragments map one-to-one ([None] becomes
    [Empty]). The result shares no mutable state with the buffer. *)

val of_cells : Su_fstypes.Types.cell array -> content
(** Interpret cells read from disk. Data extents whose cells are
    [Empty]/[Pad] become [None] slots; a metadata cell must be first.
    @raise Invalid_argument on an empty array. *)
