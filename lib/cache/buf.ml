open Su_fstypes

type content = Cmeta of Types.meta | Cdata of Types.stamp option array

type aux = ..

type t = {
  key : int;
  mutable nfrags : int;
  mutable content : content;
  mutable dirty : bool;
  mutable io_count : int;
  mutable io_locked : bool;
  mutable valid : bool;
  mutable refcount : int;
  lru : t Su_util.Lru.node;
  mutable wflag : bool;
  mutable wdeps : int list;
  mutable aux : aux option;
  mutable sticky : bool;
  mutable syncer_marked : bool;
  lock_waiters : Su_sim.Sync.Waitq.t;
  mutable write_waiters : (unit -> unit) list;
}

let meta t =
  match t.content with
  | Cmeta m -> m
  | Cdata _ -> invalid_arg "Buf.meta: data buffer"

let data t =
  match t.content with
  | Cdata d -> d
  | Cmeta _ -> invalid_arg "Buf.data: metadata buffer"

let copy_content = function
  | Cmeta m -> Cmeta (Types.copy_meta m)
  | Cdata d -> Cdata (Array.copy d)

let to_cells content ~nfrags =
  match content with
  | Cmeta m ->
    Array.init nfrags (fun i ->
        if i = 0 then Types.Meta (Types.copy_meta m) else Types.Pad)
  | Cdata d ->
    if Array.length d <> nfrags then
      invalid_arg "Buf.to_cells: data length mismatch";
    Array.map
      (function Some s -> Types.Frag s | None -> Types.Empty)
      d

let of_cells cells =
  if Array.length cells = 0 then invalid_arg "Buf.of_cells: empty extent";
  match cells.(0) with
  | Types.Meta m -> Cmeta m
  | Types.Frag _ | Types.Empty | Types.Pad | Types.Jlog _ | Types.Rmap _
  | Types.Csum _ ->
    Cdata
      (Array.map
         (function
           | Types.Frag s -> Some s
           | Types.Empty | Types.Pad | Types.Meta _ | Types.Jlog _
           | Types.Rmap _ | Types.Csum _ -> None)
         cells)
