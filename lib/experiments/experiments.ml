open Su_util
open Su_fs
open Su_workload
module Ord = Su_driver.Ordering

type scale = [ `Full | `Quick ]

let reps = function `Full -> 3 | `Quick -> 1
let copy_users = 4
let fig5_files = function `Full -> 10_000 | `Quick -> 2_000
let fig5_users = function `Full -> [ 1; 2; 4; 6; 8 ] | `Quick -> [ 1; 4; 8 ]
let sdet_users = function `Full -> [ 1; 2; 4; 6; 8 ] | `Quick -> [ 1; 4 ]
let sdet_commands = function `Full -> 60 | `Quick -> 30
let andrew_reps = function `Full -> 5 | `Quick -> 2

let f1 = Text_table.cell_f ~dec:1
let f2 = Text_table.cell_f ~dec:2

let avg_copy ~cfg ~users scale =
  Runner.repeat ~reps:(reps scale) (fun rep ->
      Benchmarks.copy ~cfg ~users ~seed:(17 + (100 * rep)) ())

let avg_remove ~cfg ~users scale =
  Runner.repeat ~reps:(reps scale) (fun rep ->
      Benchmarks.remove ~cfg ~users ~seed:(17 + (100 * rep)) ())

(* --- figures 1-4: scheduler-flag variants ----------------------------- *)

let flag_cfg ?(init = false) ~sem ~nr ~cb () =
  { (Fs.config ~scheme:Fs.Scheduler_flag ()) with
    Fs.flag_sem = sem;
    nr;
    cb;
    alloc_init = init }

let fig1 scale =
  let t =
    Text_table.create
      ~title:
        "Figure 1: ordering-flag semantics, 4-user copy (elapsed s / avg disk \
         access ms)"
      ~headers:[ "flag meaning"; "elapsed (s)"; "disk access (ms)" ]
  in
  List.iter
    (fun (name, sem, nr) ->
      (* the figure-1 runs enforce allocation initialisation: every
         data block write carries the flag, which is what makes the
         semantics bite (the paper's y-axis reaches the with-init
         elapsed range of table 1) *)
      let cfg = flag_cfg ~init:true ~sem ~nr ~cb:true () in
      let m = avg_copy ~cfg ~users:copy_users scale in
      Text_table.add_row t
        [ name; f1 m.Runner.elapsed_avg; f1 m.Runner.avg_access_ms ])
    [
      ("Full", Ord.Full, false);
      ("Back", Ord.Back, false);
      ("Part", Ord.Part, false);
      ("Part-NR", Ord.Part, true);
      ("Ignore", Ord.Ignore, false);
    ];
  t

let fig2 scale =
  let t =
    Text_table.create
      ~title:
        "Figure 2: ordering-flag semantics, 1-user remove (elapsed s / avg \
         driver response ms)"
      ~headers:[ "flag meaning"; "elapsed (s)"; "driver response (ms)" ]
  in
  List.iter
    (fun (name, sem, nr) ->
      let cfg = flag_cfg ~sem ~nr ~cb:true () in
      let m = avg_remove ~cfg ~users:1 scale in
      Text_table.add_row t
        [ name; f2 m.Runner.elapsed_avg; f1 m.Runner.avg_response_ms ])
    [
      ("Part", Ord.Part, false);
      ("Full-NR", Ord.Full, true);
      ("Back-NR", Ord.Back, true);
      ("Part-NR", Ord.Part, true);
      ("Ignore", Ord.Ignore, false);
    ];
  t

let fig34 ?(init = false) ~title ~bench scale =
  let t =
    Text_table.create ~title
      ~headers:
        [ "implementation"; "elapsed (s)"; "user CPU (s)"; "driver response (ms)" ]
  in
  List.iter
    (fun (name, nr, cb) ->
      let cfg = flag_cfg ~init ~sem:Ord.Part ~nr ~cb () in
      let m = bench ~cfg scale in
      Text_table.add_row t
        [
          name;
          f1 m.Runner.elapsed_avg;
          f1 m.Runner.cpu_total;
          f1 m.Runner.avg_response_ms;
        ])
    [
      ("Part", false, false);
      ("Part-NR", true, false);
      ("Part-CB", false, true);
      ("Part-NR/CB", true, true);
    ];
  t

let fig3 scale =
  fig34 ~init:true
    ~title:
      "Figure 3: flag implementation improvements, 4-user copy (block copying \
       avoids write-lock waits)"
    ~bench:(fun ~cfg scale -> avg_copy ~cfg ~users:copy_users scale)
    scale

let fig4 scale =
  fig34
    ~title:"Figure 4: flag implementation improvements, 4-user remove"
    ~bench:(fun ~cfg scale -> avg_remove ~cfg ~users:copy_users scale)
    scale

(* --- figure 5: throughput --------------------------------------------- *)

let fig5_one ~subtitle ~bench scale =
  let users = fig5_users scale in
  let t =
    Text_table.create ~title:subtitle
      ~headers:
        ("scheme"
        :: List.map (fun u -> Printf.sprintf "%d user%s" u (if u = 1 then "" else "s")) users)
  in
  List.iter
    (fun scheme ->
      let row =
        List.map
          (fun u ->
            let cfg = Fs.config ~scheme () in
            let total = fig5_files scale in
            let m = bench ~cfg ~users:u ~total_files:total in
            f1 (Benchmarks.files_per_second ~total_files:total m))
          users
      in
      Text_table.add_row t (Fs.scheme_kind_name scheme :: row))
    Fs.all_schemes;
  t

let fig5 scale =
  [
    fig5_one ~subtitle:"Figure 5a: 1KB file creates (files/second)"
      ~bench:(fun ~cfg ~users ~total_files ->
        Benchmarks.create_files ~cfg ~users ~total_files)
      scale;
    fig5_one ~subtitle:"Figure 5b: 1KB file removes (files/second)"
      ~bench:(fun ~cfg ~users ~total_files ->
        Benchmarks.remove_files ~cfg ~users ~total_files)
      scale;
    fig5_one ~subtitle:"Figure 5c: 1KB file create/removes (files/second)"
      ~bench:(fun ~cfg ~users ~total_files ->
        Benchmarks.create_remove_files ~cfg ~users ~total_files)
      scale;
  ]

(* --- tables 1 and 2 ---------------------------------------------------- *)

let scheme_rows =
  [
    (Fs.Conventional, [ false; true ]);
    (Fs.Scheduler_flag, [ false; true ]);
    (Fs.Scheduler_chains { barrier_dealloc = false }, [ false; true ]);
    (Fs.Soft_updates, [ false; true ]);
    (Fs.No_order, [ false ]);
  ]

let tab12 ~title ~bench scale =
  let t =
    Text_table.create ~title
      ~headers:
        [
          "scheme";
          "alloc init";
          "elapsed (s)";
          "% of No Order";
          "CPU (s)";
          "disk requests";
          "I/O response (ms)";
          "p90 (ms)";
          "p99 (ms)";
        ]
  in
  let base_cfg = Fs.config ~scheme:Fs.No_order () in
  let baseline = bench ~cfg:{ base_cfg with Fs.alloc_init = false } scale in
  List.iter
    (fun (scheme, inits) ->
      List.iter
        (fun init ->
          let cfg = { (Fs.config ~scheme ()) with Fs.alloc_init = init } in
          let m =
            if scheme = Fs.No_order then baseline else bench ~cfg scale
          in
          Text_table.add_row t
            [
              Fs.scheme_kind_name scheme;
              (if init then "Y" else "N");
              f1 m.Runner.elapsed_avg;
              f1 (100.0 *. m.Runner.elapsed_avg /. baseline.Runner.elapsed_avg);
              f1 m.Runner.cpu_total;
              Text_table.cell_i m.Runner.disk_requests;
              f1 m.Runner.avg_response_ms;
              f1 m.Runner.response_p90_ms;
              f1 m.Runner.response_p99_ms;
            ])
        inits)
    scheme_rows;
  t

let tab1 scale =
  tab12
    ~title:"Table 1: scheme comparison, 4-user copy"
    ~bench:(fun ~cfg scale -> avg_copy ~cfg ~users:copy_users scale)
    scale

let tab2 scale =
  tab12
    ~title:"Table 2: scheme comparison, 4-user remove"
    ~bench:(fun ~cfg scale -> avg_remove ~cfg ~users:copy_users scale)
    scale

(* --- table 3: Andrew --------------------------------------------------- *)

let tab3 scale =
  let t =
    Text_table.create
      ~title:
        "Table 3: Andrew benchmark (seconds; mean over repetitions, stdev in \
         parens)"
      ~headers:
        [
          "scheme";
          "(1) mkdir";
          "(2) copy";
          "(3) stat";
          "(4) read";
          "(5) compile";
          "total";
        ]
  in
  List.iter
    (fun scheme ->
      let cfg = Fs.config ~scheme () in
      let s = Andrew.run ~cfg ~reps:(andrew_reps scale) in
      let cell i =
        Printf.sprintf "%.2f (%.2f)" s.Andrew.mean.Andrew.phases.(i)
          s.Andrew.stdev.Andrew.phases.(i)
      in
      Text_table.add_row t
        [
          Fs.scheme_kind_name scheme;
          cell 0;
          cell 1;
          cell 2;
          cell 3;
          cell 4;
          Printf.sprintf "%.2f (%.2f)" s.Andrew.mean.Andrew.total
            s.Andrew.stdev.Andrew.total;
        ])
    Fs.all_schemes;
  t

(* --- figure 6: Sdet ----------------------------------------------------- *)

let fig6 scale =
  let users = sdet_users scale in
  let t =
    Text_table.create ~title:"Figure 6: Sdet throughput (scripts/hour)"
      ~headers:
        ("scheme" :: List.map (fun u -> Printf.sprintf "%d" u) users)
  in
  List.iter
    (fun scheme ->
      let row =
        List.map
          (fun u ->
            let cfg = Fs.config ~scheme () in
            let r =
              Sdet.run ~cfg ~concurrency:u ~commands:(sdet_commands scale) ()
            in
            f1 r.Sdet.scripts_per_hour)
          users
      in
      Text_table.add_row t (Fs.scheme_kind_name scheme :: row))
    Fs.all_schemes;
  t

(* --- ablations ---------------------------------------------------------- *)

let chains_dealloc_ablation scale =
  let t =
    Text_table.create
      ~title:
        "Ablation (s3.2): chains de-allocation dependencies, 4-user remove"
      ~headers:[ "approach"; "elapsed (s)"; "disk requests" ]
  in
  List.iter
    (fun (name, barrier) ->
      let cfg = Fs.config ~scheme:(Fs.Scheduler_chains { barrier_dealloc = barrier }) () in
      let m = avg_remove ~cfg ~users:copy_users scale in
      Text_table.add_row t
        [ name; f1 m.Runner.elapsed_avg; Text_table.cell_i m.Runner.disk_requests ])
    [ ("barrier (flag fallback)", true); ("specific dependencies", false) ];
  t

let cb_ablation scale =
  let t =
    Text_table.create
      ~title:"Ablation (s3.3): block copying for scheduler chains"
      ~headers:[ "benchmark"; "without -CB (s)"; "with -CB (s)"; "reduction %" ]
  in
  let run ~cb bench =
    let cfg =
      { (Fs.config ~scheme:(Fs.Scheduler_chains { barrier_dealloc = false }) ()) with
        Fs.cb = cb }
    in
    (bench ~cfg scale).Runner.elapsed_avg
  in
  List.iter
    (fun (name, bench) ->
      let without = run ~cb:false bench and with_ = run ~cb:true bench in
      Text_table.add_row t
        [
          name;
          f1 without;
          f1 with_;
          f1 (100.0 *. (without -. with_) /. without);
        ])
    [
      ("4-user copy", fun ~cfg scale -> avg_copy ~cfg ~users:copy_users scale);
      ("4-user remove", fun ~cfg scale -> avg_remove ~cfg ~users:copy_users scale);
    ];
  t

(* --- crash consistency -------------------------------------------------- *)

let crash_workload st rng user () =
  let dir = Printf.sprintf "/w%d" user in
  Fsops.mkdir st dir;
  let live = ref [] in
  let counter = ref 0 in
  for _ = 1 to 150 do
    match Rng.int rng 8 with
    | 0 | 1 | 2 ->
      incr counter;
      let p = Printf.sprintf "%s/f%d" dir !counter in
      Fsops.create st p;
      Fsops.append st p ~bytes:(1024 * Rng.int_range rng 1 10);
      live := p :: !live
    | 3 | 4 ->
      (match !live with
       | p :: rest ->
         Fsops.unlink st p;
         live := rest
       | [] -> ())
    | 5 ->
      incr counter;
      let d = Printf.sprintf "%s/d%d" dir !counter in
      Fsops.mkdir st d;
      Fsops.create st (d ^ "/x")
    | 6 ->
      (match !live with
       | p :: rest ->
         Fsops.rename st ~src:p ~dst:(p ^ "m");
         live := (p ^ "m") :: rest
       | [] -> ())
    | _ -> (
      match !live with p :: _ -> ignore (Fsops.read_file st p) | [] -> ())
  done

let crash_consistency scale =
  let points =
    match scale with
    | `Full -> [ 0.05; 0.2; 0.5; 1.1; 2.3; 4.7; 9.1; 17.0; 33.0 ]
    | `Quick -> [ 0.2; 2.3; 17.0 ]
  in
  let t =
    Text_table.create
      ~title:
        "Crash consistency: fsck after a crash at each point (violations are \
         unrepairable; leaks/stale maps are repairable)"
      ~headers:
        [ "scheme"; "crash points"; "violations"; "leaked frags"; "leaked inodes"; "stale maps" ]
  in
  let schemes =
    [
      Fs.Conventional;
      Fs.Scheduler_flag;
      Fs.Scheduler_chains { barrier_dealloc = false };
      Fs.Soft_updates;
      Fs.No_order;
    ]
  in
  List.iter
    (fun scheme ->
      let viol = ref 0 and lf = ref 0 and li = ref 0 and stale = ref 0 in
      List.iteri
        (fun i time ->
          let cfg =
            { (Fs.config ~scheme ()) with
              Fs.geom = Su_fstypes.Geom.small;
              cache_mb = 8 }
          in
          let w = Fs.make cfg in
          let rng = Rng.create (500 + i) in
          for u = 1 to 2 do
            ignore
              (Su_sim.Proc.spawn w.Fs.engine
                 ~name:(Printf.sprintf "w%d" u)
                 (crash_workload w.Fs.st (Rng.split rng) u))
          done;
          let r = Crash.crash_and_check w time in
          viol := !viol + List.length r.Fsck.violations;
          lf := !lf + r.Fsck.leaked_frags;
          li := !li + r.Fsck.leaked_inodes;
          stale := !stale + r.Fsck.stale_free)
        points;
      Text_table.add_row t
        [
          Fs.scheme_kind_name scheme;
          Text_table.cell_i (List.length points);
          Text_table.cell_i !viol;
          Text_table.cell_i !lf;
          Text_table.cell_i !li;
          Text_table.cell_i !stale;
        ])
    schemes;
  t

(* --- soft updates sensitivity ------------------------------------------- *)

let soft_updates_ablation scale =
  let t =
    Text_table.create
      ~title:"Ablation: soft updates sensitivity, 4-user copy"
      ~headers:[ "variant"; "elapsed (s)"; "disk requests"; "rollbacks" ]
  in
  let row name cfg =
    let m = avg_copy ~cfg ~users:copy_users scale in
    let rollbacks =
      match m.Runner.softdep with
      | Some s -> Text_table.cell_i s.Su_core.Softdep.rollbacks
      | None -> "-"
    in
    Text_table.add_row t
      [ name; f1 m.Runner.elapsed_avg; Text_table.cell_i m.Runner.disk_requests; rollbacks ]
  in
  let base = Fs.config ~scheme:Fs.Soft_updates () in
  row "baseline (1s syncer, 32MB)" base;
  row "syncer 0.5s" { base with Fs.syncer_interval = 0.5 };
  row "syncer 5s" { base with Fs.syncer_interval = 5.0 };
  row "cache 8MB" { base with Fs.cache_mb = 8 };
  row "cache 64MB" { base with Fs.cache_mb = 64 };
  row "no block-copy accounting" { base with Fs.cb = false };
  t

(* Fraction of logically-adjacent block pairs that are also adjacent
   on the disk, over every regular file under [base]. *)
let tree_contiguity st base =
  let pairs = ref 0 and adjacent = ref 0 in
  let fpb = st.State.geom.Su_fstypes.Geom.frags_per_block in
  let rec walk path =
    List.iter
      (fun name ->
        if name <> "." && name <> ".." then begin
          let p = (if path = "/" then "" else path) ^ "/" ^ name in
          let s = Fsops.stat st p in
          match s.Fsops.st_ftype with
          | Su_fstypes.Types.F_dir -> walk p
          | Su_fstypes.Types.F_reg ->
            let inum = Fsops.resolve st p in
            let ip = Inode.iget st inum in
            let last = File.last_lbn st ~size:s.Fsops.st_size in
            for lbn = 0 to last - 1 do
              let a = File.ptr_at st ip lbn and b = File.ptr_at st ip (lbn + 1) in
              if a <> 0 && b <> 0 then begin
                incr pairs;
                if b = a + fpb then incr adjacent
              end
            done;
            Inode.iput st ip
          | Su_fstypes.Types.F_free -> ()
        end)
      (Fsops.readdir st path)
  in
  walk base;
  if !pairs = 0 then 1.0 else float_of_int !adjacent /. float_of_int !pairs

let aging scale =
  let t =
    Text_table.create
      ~title:
        "Extension: file-system aging (soft updates; churn fragments the free          space, then a tree is written and copied)"
      ~headers:
        [
          "volume";
          "tree contiguity %";
          "copy elapsed (s)";
          "copy reqs";
          "avg access (ms)";
        ]
  in
  let rounds = match scale with `Full -> 5_000 | `Quick -> 3_500 in
  let run ~aged =
    (* a small disk concentrates the churn so fragmentation bites *)
    let cfg =
      { (Fs.config ~scheme:Fs.Soft_updates ()) with
        Fs.geom = Su_fstypes.Geom.small;
        cache_mb = 8 }
    in
    let w = Fs.make cfg in
    let out = ref None in
    ignore
      (Su_sim.Proc.spawn w.Fs.engine ~name:"aging" (fun () ->
           let st = w.Fs.st in
           if aged then begin
             (* mixed-size create/delete churn, leaving survivors;
                stops early if the volume fills *)
             let rng = Rng.create 97 in
             Fsops.mkdir st "/churn";
             let live = ref [] in
             (try
                for i = 1 to rounds do
                  let p = Printf.sprintf "/churn/c%d" i in
                  Fsops.create st p;
                  Fsops.append st p ~bytes:(1024 * Rng.int_range rng 1 24);
                  live := p :: !live;
                  if Rng.int rng 5 < 2 then begin
                    match !live with
                    | [] -> ()
                    | l ->
                      let victim = List.nth l (Rng.int rng (List.length l)) in
                      if Fsops.exists st victim then Fsops.unlink st victim;
                      live := List.filter (fun q -> q <> victim) !live
                  end
                done
              with Failure _ -> () (* volume full: aged enough *));
             Fsops.sync st
           end;
           let nodes = Tree.spec ~files:200 ~total_bytes:6_000_000 () in
           Fsops.mkdir st "/src";
           Tree.populate st ~base:"/src" nodes;
           Fsops.sync st;
           let contiguity = tree_contiguity st "/src" in
           Fsops.mkdir st "/dst";
           Su_driver.Driver.reset_trace w.Fs.driver;
           let t0 = Su_sim.Engine.now w.Fs.engine in
           Tree.copy st ~src:"/src" ~dst:"/dst";
           let elapsed = Su_sim.Engine.now w.Fs.engine -. t0 in
           Su_driver.Driver.quiesce w.Fs.driver;
           let tr = Su_driver.Driver.trace w.Fs.driver in
           out :=
             Some
               ( contiguity,
                 elapsed,
                 Su_driver.Trace.requests tr,
                 Su_driver.Trace.avg_access_ms tr );
           Fs.stop w;
           Su_sim.Engine.stop w.Fs.engine));
    Su_sim.Engine.run w.Fs.engine;
    Option.get !out
  in
  List.iter
    (fun (name, aged) ->
      let contiguity, elapsed, reqs, access = run ~aged in
      Text_table.add_row t
        [
          name;
          f1 (100.0 *. contiguity);
          f1 elapsed;
          Text_table.cell_i reqs;
          f1 access;
        ])
    [ ("fresh", false); ("aged", true) ];
  t

let nvram_comparison scale =
  let t =
    Text_table.create
      ~title:
        "Extension (s7): NVRAM write cache vs soft updates (4-user copy /          remove, elapsed s)"
      ~headers:[ "configuration"; "copy (s)"; "remove (s)"; "copy reqs"; "remove reqs" ]
  in
  let row name cfg =
    let c = avg_copy ~cfg ~users:copy_users scale in
    let r = avg_remove ~cfg ~users:copy_users scale in
    Text_table.add_row t
      [
        name;
        f1 c.Runner.elapsed_avg;
        f1 r.Runner.elapsed_avg;
        Text_table.cell_i c.Runner.disk_requests;
        Text_table.cell_i r.Runner.disk_requests;
      ]
  in
  row "Conventional" (Fs.config ~scheme:Fs.Conventional ());
  row "Conventional + 4MB NVRAM"
    { (Fs.config ~scheme:Fs.Conventional ()) with Fs.nvram_mb = 4 };
  row "Soft Updates" (Fs.config ~scheme:Fs.Soft_updates ());
  row "Soft Updates + 4MB NVRAM"
    { (Fs.config ~scheme:Fs.Soft_updates ()) with Fs.nvram_mb = 4 };
  row "No Order" (Fs.config ~scheme:Fs.No_order ());
  t

let journal_comparison scale =
  let t =
    Text_table.create
      ~title:
        "Extension (s7): write-ahead journaling vs soft updates (4-user copy          / remove, elapsed s)"
      ~headers:[ "scheme"; "copy (s)"; "remove (s)"; "copy reqs"; "remove reqs" ]
  in
  List.iter
    (fun scheme ->
      let cfg = Fs.config ~scheme () in
      let c = avg_copy ~cfg ~users:copy_users scale in
      let r = avg_remove ~cfg ~users:copy_users scale in
      Text_table.add_row t
        [
          Fs.scheme_kind_name scheme;
          f1 c.Runner.elapsed_avg;
          f1 r.Runner.elapsed_avg;
          Text_table.cell_i c.Runner.disk_requests;
          Text_table.cell_i r.Runner.disk_requests;
        ])
    [
      Fs.Conventional;
      Fs.Journaled { group_commit = false };
      Fs.Journaled { group_commit = true };
      Fs.Soft_updates;
      Fs.No_order;
    ];
  t

let all scale =
  [
    ("fig1", fun () -> [ fig1 scale ]);
    ("fig2", fun () -> [ fig2 scale ]);
    ("fig3", fun () -> [ fig3 scale ]);
    ("fig4", fun () -> [ fig4 scale ]);
    ("fig5", fun () -> fig5 scale);
    ("tab1", fun () -> [ tab1 scale ]);
    ("tab2", fun () -> [ tab2 scale ]);
    ("tab3", fun () -> [ tab3 scale ]);
    ("fig6", fun () -> [ fig6 scale ]);
    ("chains-dealloc", fun () -> [ chains_dealloc_ablation scale ]);
    ("chains-cb", fun () -> [ cb_ablation scale ]);
    ("crash", fun () -> [ crash_consistency scale ]);
    ("soft-ablate", fun () -> [ soft_updates_ablation scale ]);
    ("journal", fun () -> [ journal_comparison scale ]);
    ("nvram", fun () -> [ nvram_comparison scale ]);
    ("aging", fun () -> [ aging scale ]);
  ]
