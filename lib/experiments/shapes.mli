(** Machine-checkable shape claims over experiment output.

    EXPERIMENTS.md's "shape reproduced?" column used to be checked by
    eye against rendered text tables. This module serialises the same
    tables as JSON and asserts the load-bearing qualitative claims —
    scheme ordering in tables 1/2, figure 5 monotonicity, Soft Updates
    within a bounded factor of No Order — so the reproduction is gated
    in CI rather than prose. Bounds are calibrated at [`Quick] scale
    with generous margins; they hold at [`Full] scale too. *)

val table_json : Su_util.Text_table.t -> Su_obs.Json.t
(** [{"title": ..., "headers": [...], "rows": [[...], ...]}] with every
    cell a string, exactly as rendered. *)

val experiments_json :
  scale:string ->
  (string * float * Su_util.Text_table.t list) list ->
  Su_obs.Json.t
(** [experiments_json ~scale [(id, wall_s, tables); ...]] builds the
    toplevel document [bench/main.exe --json] and [metasim exp --json]
    emit: [{"scale": ..., "experiments": [{"id", "wall_s",
    "tables": [...]}]}]. *)

val check : Su_obs.Json.t -> (string * bool * string) list
(** Evaluate every shape claim whose table is present anywhere in the
    document (tables are recognised structurally, so the argument may
    be an [experiments_json] document, one experiment, or a bare table
    list). Returns [(claim, passed, detail)]; an empty list means no
    recognisable table was found. *)
