open Su_util
module Json = Su_obs.Json

let table_json t =
  let row_json cells = Json.List (List.map (fun c -> Json.Str c) cells) in
  Json.Obj
    [
      ("title", Json.Str (Text_table.title t));
      ("headers", row_json (Text_table.headers t));
      ("rows", Json.List (List.map row_json (Text_table.rows t)));
    ]

let experiments_json ~scale entries =
  Json.Obj
    [
      ("scale", Json.Str scale);
      ( "experiments",
        Json.List
          (List.map
             (fun (id, wall_s, tables) ->
               Json.Obj
                 [
                   ("id", Json.Str id);
                   ("wall_s", Json.Float wall_s);
                   ("tables", Json.List (List.map table_json tables));
                 ])
             entries) );
    ]

(* ------------------------------------------------------------------ *)
(* Parsed-table access                                                 *)
(* ------------------------------------------------------------------ *)

type table = {
  tt_title : string;
  tt_headers : string list;
  tt_rows : string list list;
}

let strings_of = function
  | Json.List xs -> Some (List.filter_map Json.to_str xs)
  | _ -> None

let table_of_json v =
  match
    ( Option.bind (Json.member "title" v) Json.to_str,
      Option.bind (Json.member "headers" v) strings_of,
      Option.bind (Json.member "rows" v) Json.to_list )
  with
  | Some title, Some headers, Some rows ->
    Some
      {
        tt_title = title;
        tt_headers = headers;
        tt_rows = List.filter_map strings_of rows;
      }
  | _ -> None

(* Collect every table object anywhere in the document. *)
let rec collect_tables v =
  match table_of_json v with
  | Some t -> [ t ]
  | None -> (
    match v with
    | Json.List xs -> List.concat_map collect_tables xs
    | Json.Obj kvs -> List.concat_map (fun (_, x) -> collect_tables x) kvs
    | _ -> [])

let find_table tables prefix =
  List.find_opt
    (fun t ->
      String.length t.tt_title >= String.length prefix
      && String.sub t.tt_title 0 (String.length prefix) = prefix)
    tables

let col_index t name =
  let rec idx i = function
    | [] -> None
    | h :: _ when h = name -> Some i
    | _ :: rest -> idx (i + 1) rest
  in
  idx 0 t.tt_headers

let cell t row name =
  Option.bind (col_index t name) (fun i -> List.nth_opt row i)

let cell_float t row name = Option.bind (cell t row name) float_of_string_opt

(* Row of a table-1/2-shaped table for a given scheme name and alloc
   init flag. *)
let scheme_row t ~scheme ~init =
  List.find_opt
    (fun row ->
      cell t row "scheme" = Some scheme && cell t row "alloc init" = Some init)
    t.tt_rows

(* ------------------------------------------------------------------ *)
(* Claims                                                              *)
(* ------------------------------------------------------------------ *)

let claim name cond detail = (name, cond, detail)

let failed name detail = (name, false, detail)

(* Qualitative bounds, calibrated at Quick scale with wide margins
   (e.g. measured Conventional remove is ~9x No Order; we assert
   >= 3x). See EXPERIMENTS.md "CI-asserted shape claims". *)

let pct_claims ~tag t =
  let pct scheme init = Option.bind (scheme_row t ~scheme ~init) (fun r -> cell_float t r "% of No Order") in
  let two name a b f detail =
    match (a, b) with
    | Some a, Some b -> claim name (f a b) (detail a b)
    | _ -> failed name "row or column missing"
  in
  let one name a f detail =
    match a with
    | Some a -> claim name (f a) (detail a)
    | None -> failed name "row or column missing"
  in
  [
    one
      (tag ^ ".soft_within_110pct_of_noorder")
      (pct "Soft Updates" "N")
      (fun s -> s <= 110.0)
      (Printf.sprintf "Soft Updates at %.1f%% of No Order (limit 110%%)");
    one
      (tag ^ ".conventional_slower_than_noorder")
      (pct "Conventional" "N")
      (fun c -> c >= 105.0)
      (Printf.sprintf "Conventional at %.1f%% of No Order (must be >= 105%%)");
    two
      (tag ^ ".soft_beats_conventional")
      (pct "Soft Updates" "N")
      (pct "Conventional" "N")
      (fun s c -> s < c)
      (Printf.sprintf "Soft %.1f%% vs Conventional %.1f%%");
    two
      (tag ^ ".soft_beats_flag")
      (pct "Soft Updates" "N")
      (pct "Scheduler Flag" "N")
      (fun s f -> s < f)
      (Printf.sprintf "Soft %.1f%% vs Flag %.1f%%");
    two
      (tag ^ ".soft_beats_chains")
      (pct "Soft Updates" "N")
      (pct "Scheduler Chains" "N")
      (fun s c -> s < c)
      (Printf.sprintf "Soft %.1f%% vs Chains %.1f%%");
  ]

let tab2_claims t =
  let reqs scheme init =
    Option.bind (scheme_row t ~scheme ~init) (fun r ->
        cell_float t r "disk requests")
  in
  let conv_pct =
    Option.bind (scheme_row t ~scheme:"Conventional" ~init:"N") (fun r ->
        cell_float t r "% of No Order")
  in
  [
    (match conv_pct with
     | Some c ->
       claim "tab2.conventional_at_least_3x_noorder" (c >= 300.0)
         (Printf.sprintf "Conventional remove at %.0f%% of No Order" c)
     | None -> failed "tab2.conventional_at_least_3x_noorder" "row missing");
    (match (reqs "Soft Updates" "N", reqs "Conventional" "N") with
     | Some s, Some c ->
       claim "tab2.soft_halves_disk_requests"
         (s <= 0.5 *. c)
         (Printf.sprintf "Soft %.0f requests vs Conventional %.0f" s c)
     | _ -> failed "tab2.soft_halves_disk_requests" "row missing");
  ]

(* Figure 5 tables: first column is the scheme, the rest are
   files/second at increasing user counts. *)
let fig5_claims ?(monotone = true) ~tag t =
  let row_vals row =
    match row with
    | _scheme :: cells -> List.filter_map float_of_string_opt cells
    | [] -> []
  in
  let row_of scheme =
    List.find_opt (fun r -> List.nth_opt r 0 = Some scheme) t.tt_rows
  in
  let monotone_claims =
    if not monotone then []
    else
    List.map
      (fun row ->
        let name = Option.value ~default:"?" (List.nth_opt row 0) in
        let vals = row_vals row in
        let rec nondecreasing = function
          | a :: (b :: _ as rest) ->
            (* 2% slack: ties and measurement wiggle are fine, real
               throughput collapse is not *)
            b >= 0.98 *. a && nondecreasing rest
          | _ -> true
        in
        claim
          (Printf.sprintf "%s.monotone.%s" tag name)
          (nondecreasing vals)
          (String.concat " -> " (List.map (Printf.sprintf "%.1f") vals)))
      t.tt_rows
  in
  let soft_vs_noorder =
    match (row_of "Soft Updates", row_of "No Order") with
    | Some s, Some n ->
      let sv = row_vals s and nv = row_vals n in
      let ok =
        List.length sv = List.length nv
        && List.for_all2 (fun a b -> a >= 0.8 *. b) sv nv
      in
      [
        claim
          (tag ^ ".soft_at_least_80pct_of_noorder")
          ok
          (Printf.sprintf "soft [%s] vs no-order [%s]"
             (String.concat "; " (List.map (Printf.sprintf "%.1f") sv))
             (String.concat "; " (List.map (Printf.sprintf "%.1f") nv)));
      ]
    | _ -> [ failed (tag ^ ".soft_at_least_80pct_of_noorder") "row missing" ]
  in
  monotone_claims @ soft_vs_noorder

let check doc =
  let tables = collect_tables doc in
  let for_table prefix f =
    match find_table tables prefix with Some t -> f t | None -> []
  in
  for_table "Table 1" (fun t -> pct_claims ~tag:"tab1" t)
  @ for_table "Table 2" (fun t -> pct_claims ~tag:"tab2" t @ tab2_claims t)
  (* creates scale up with concurrency (throughput nondecreasing in
     users); removes batch differently and are only bounded relative
     to No Order *)
  @ for_table "Figure 5a" (fun t -> fig5_claims ~tag:"fig5a" t)
  @ for_table "Figure 5b" (fun t -> fig5_claims ~monotone:false ~tag:"fig5b" t)
  @ for_table "Figure 5c" (fun t -> fig5_claims ~monotone:false ~tag:"fig5c" t)
