type handle = {
  pname : string;
  mutable cpu : float;
  mutable dead : bool;
  mutable waiters : (unit -> unit) list;
}

exception Process_failure of string * exn

type _ Effect.t += Suspend : ((unit -> unit) -> unit) -> unit Effect.t

(* Engines run one at a time *per domain*, so the "current process"
   register is domain-local: each worker domain of a {!Su_util.Pool}
   fan-out gets its own, and concurrently running simulated worlds
   cannot clobber each other's. It is saved and restored around every
   resumption so nested wake-ups cannot clobber it either. *)
let current_key : handle option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let current () = Domain.DLS.get current_key

let name h = h.pname
let finished h = h.dead
let cpu_time h = h.cpu
let charge_cpu h dt = h.cpu <- h.cpu +. dt

let self_opt () = !(current ())

let self () =
  match !(current ()) with
  | Some h -> h
  | None -> invalid_arg "Proc.self: not in process context"

(* Only feeds default process names; atomic so concurrent domains can
   spawn without a race (names stay unique, not globally dense). *)
let counter = Atomic.make 0

let spawn engine ?name f =
  let pname =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "proc-%d" (Atomic.fetch_and_add counter 1 + 1)
  in
  let h = { pname; cpu = 0.0; dead = false; waiters = [] } in
  let finish () =
    h.dead <- true;
    let ws = h.waiters in
    h.waiters <- [];
    List.iter (fun w -> Engine.soon engine w) ws
  in
  let body () =
    let open Effect.Deep in
    match_with f ()
      {
        retc = (fun () -> finish ());
        exnc = (fun e -> finish (); raise (Process_failure (pname, e)));
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Suspend register ->
              Some
                (fun (k : (a, _) continuation) ->
                  let resumed = ref false in
                  let resume () =
                    if !resumed then
                      invalid_arg "Proc: continuation resumed twice";
                    resumed := true;
                    let cur = current () in
                    let saved = !cur in
                    cur := Some h;
                    Fun.protect
                      ~finally:(fun () -> cur := saved)
                      (fun () -> continue k ())
                  in
                  register resume)
            | _ -> None);
      }
  in
  Engine.soon engine (fun () ->
      let cur = current () in
      let saved = !cur in
      cur := Some h;
      Fun.protect ~finally:(fun () -> cur := saved) body);
  h

let suspend register = Effect.perform (Suspend register)

let sleep engine dt =
  suspend (fun resume -> Engine.after engine dt resume)

let join engine h =
  if not h.dead then
    suspend (fun resume -> h.waiters <- resume :: h.waiters)
  else ignore engine

let join_all engine hs = List.iter (join engine) hs

module Ivar = struct
  type 'a state = Empty of (unit -> unit) list | Full of 'a
  type 'a t = { engine : Engine.t; mutable state : 'a state }

  let create engine = { engine; state = Empty [] }

  let fill t v =
    match t.state with
    | Full _ -> invalid_arg "Ivar.fill: already filled"
    | Empty waiters ->
      t.state <- Full v;
      List.iter (fun w -> Engine.soon t.engine w) waiters

  let is_filled t = match t.state with Full _ -> true | Empty _ -> false

  let peek t = match t.state with Full v -> Some v | Empty _ -> None

  let read t =
    match t.state with
    | Full v -> v
    | Empty _ ->
      suspend (fun resume ->
          match t.state with
          | Full _ -> Engine.soon t.engine resume
          | Empty waiters -> t.state <- Empty (resume :: waiters));
      (match t.state with
       | Full v -> v
       | Empty _ -> invalid_arg "Ivar.read: woken while empty")
end
