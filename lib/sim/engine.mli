(** Discrete-event simulation engine.

    The engine owns a virtual clock and a time-ordered event queue.
    Events with equal timestamps fire in scheduling order. All
    simulated activity — process resumptions, disk completions, daemon
    wake-ups — is driven by callbacks scheduled here.

    The queue is a flat binary heap over parallel arrays (a
    [floatarray] of times plus int arrays of sequence numbers and
    payload-slot ids) ordered by monomorphic float/int comparisons;
    payloads sit in a free-list slot pool. Steady-state scheduling and
    dispatch allocate nothing. Hot paths should {!register} a handler
    once and schedule [(handler, int arg)] events; the closure API
    costs one caller-side closure per event and nothing else. *)

type t

type handler
(** A handler id returned by {!register} (engine-specific). *)

val null : handler
(** Placeholder for not-yet-registered handler fields; scheduling it
    is an error. *)

val create : unit -> t

val now : t -> float
(** Current virtual time in seconds. *)

val at : t -> float -> (unit -> unit) -> unit
(** [at t time f] schedules [f] at absolute virtual [time]. Scheduling
    in the past is clamped to [now]. *)

val after : t -> float -> (unit -> unit) -> unit
(** [after t dt f] schedules [f] at [now t +. dt]. Negative [dt] is
    clamped to zero. *)

val soon : t -> (unit -> unit) -> unit
(** Schedule at the current time, after already-pending same-time
    events. Used to defer wake-ups out of the waker's context. *)

val register : t -> (int -> unit) -> handler
(** [register t f] installs [f] as a reusable event handler and
    returns its id. Meant to be called once per component at set-up;
    events then carry only the id and an int argument, so scheduling
    them allocates nothing. Handlers cannot be unregistered. *)

val at_handler : t -> float -> handler -> int -> unit
(** [at_handler t time h arg] schedules [handlers h arg] at absolute
    [time] (clamped to [now] like {!at}) without allocating. *)

val after_handler : t -> float -> handler -> int -> unit
(** Relative-time form of {!at_handler}; negative delays clamp to 0. *)

val stop : t -> unit
(** Abort the run: no further events fire on this engine, now or in
    later [run] calls (the halt is sticky — crash injection abandons
    the world; fresh worlds use fresh engines). *)

val stopped : t -> bool

val run : ?until:float -> t -> unit
(** Execute events in (time, scheduling order) until the queue drains,
    [stop] is called, or the next event lies past [until].

    [run ~until] semantics: events with time <= [until] execute; an
    event past [until] stays queued and the clock advances to [until]
    (never backwards — a smaller [until] than the current clock leaves
    the clock alone). Two consecutive runs [run ~until:a; run
    ~until:b] with [a <= b] are equivalent to the single [run
    ~until:b], provided nothing is scheduled in between. If the engine
    is (or becomes) halted, the clock stays where the halt left it and
    queued events remain queued; subsequent runs are no-ops.
    Exceptions raised by event callbacks propagate to the caller. *)

val events_executed : t -> int
(** Total callbacks executed so far (for engine health checks). *)

val pending : t -> int
(** Events currently queued (tests and benchmarks). *)

val capacity : t -> int
(** Current backing-array capacity; stays at the high-water mark of
    [pending] because popped slots are recycled through the free list
    (exposed so tests can pin the no-growth invariant). *)
