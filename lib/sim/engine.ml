(* Zero-allocation event core.

   The seed engine boxed every event as a {time; seq; callback} record
   in a generic [Su_util.Heap.t] driven by polymorphic [compare], and
   the run loop paid an option allocation per peek/pop. This version
   keeps the queue in flat parallel arrays — a [floatarray] for times
   (unboxed), int arrays for the FIFO sequence numbers and slot ids —
   and orders it with monomorphic float/int comparisons, so scheduling
   and dispatching an event touches no heap-allocated structure at
   all once the arrays have grown to steady-state size.

   Event payloads live in a slot pool parallel to the heap (one live
   slot per queued event; the free list is threaded through [s_arg]).
   Hot callers register a handler once ([register]) and schedule
   (handler id, int arg) pairs ([at_handler]/[after_handler]) with
   zero per-event allocation; the closure API ([at]/[after]/[soon])
   remains for cold paths and costs only the caller's closure. *)

type handler = int

let null = -2

let nothing () = ()

(* stub installed in unused handler table cells *)
let unregistered (_ : int) = invalid_arg "Engine: unregistered handler"

type t = {
  mutable clock : float;
  mutable seq : int;
  mutable halted : bool;
  mutable executed : int;
  (* binary min-heap over (time, seq); [h_slot] names the payload *)
  mutable h_time : floatarray;
  mutable h_seq : int array;
  mutable h_slot : int array;
  mutable h_n : int;
  (* slot pool: handler id (-1 = closure event), int argument, closure.
     Free slots are a list threaded through [s_arg]; exactly [h_n]
     slots are live at any time, so pool and heap share capacity. *)
  mutable s_handler : int array;
  mutable s_arg : int array;
  mutable s_closure : (unit -> unit) array;
  mutable s_free : int;
  mutable handlers : (int -> unit) array;
  mutable n_handlers : int;
}

let create () =
  {
    clock = 0.0;
    seq = 0;
    halted = false;
    executed = 0;
    h_time = Float.Array.create 0;
    h_seq = [||];
    h_slot = [||];
    h_n = 0;
    s_handler = [||];
    s_arg = [||];
    s_closure = [||];
    s_free = -1;
    handlers = [||];
    n_handlers = 0;
  }

let now t = t.clock
let stop t = t.halted <- true
let stopped t = t.halted
let events_executed t = t.executed
let pending t = t.h_n
let capacity t = Array.length t.h_seq

let register t f =
  if t.n_handlers = Array.length t.handlers then begin
    let ncap = if t.n_handlers = 0 then 8 else t.n_handlers * 2 in
    let nh = Array.make ncap unregistered in
    Array.blit t.handlers 0 nh 0 t.n_handlers;
    t.handlers <- nh
  end;
  let id = t.n_handlers in
  t.handlers.(id) <- f;
  t.n_handlers <- id + 1;
  id

let grow t =
  let cap = Array.length t.h_seq in
  let ncap = if cap = 0 then 16 else cap * 2 in
  let nt = Float.Array.make ncap 0.0 in
  Float.Array.blit t.h_time 0 nt 0 t.h_n;
  t.h_time <- nt;
  let nseq = Array.make ncap 0 in
  Array.blit t.h_seq 0 nseq 0 t.h_n;
  t.h_seq <- nseq;
  let nslot = Array.make ncap 0 in
  Array.blit t.h_slot 0 nslot 0 t.h_n;
  t.h_slot <- nslot;
  let nsh = Array.make ncap (-1) in
  Array.blit t.s_handler 0 nsh 0 cap;
  t.s_handler <- nsh;
  let nsa = Array.make ncap 0 in
  Array.blit t.s_arg 0 nsa 0 cap;
  t.s_arg <- nsa;
  let nsc = Array.make ncap nothing in
  Array.blit t.s_closure 0 nsc 0 cap;
  t.s_closure <- nsc;
  for i = cap to ncap - 1 do
    nsa.(i) <- t.s_free;
    t.s_free <- i
  done

(* (time, seq) lexicographic order with primitive comparisons only *)
let ev_lt t i j =
  let ti = Float.Array.unsafe_get t.h_time i
  and tj = Float.Array.unsafe_get t.h_time j in
  ti < tj || (ti = tj && Array.unsafe_get t.h_seq i < Array.unsafe_get t.h_seq j)

let swap t i j =
  let ti = Float.Array.unsafe_get t.h_time i in
  Float.Array.unsafe_set t.h_time i (Float.Array.unsafe_get t.h_time j);
  Float.Array.unsafe_set t.h_time j ti;
  let si = t.h_seq.(i) in
  t.h_seq.(i) <- t.h_seq.(j);
  t.h_seq.(j) <- si;
  let li = t.h_slot.(i) in
  t.h_slot.(i) <- t.h_slot.(j);
  t.h_slot.(j) <- li

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if ev_lt t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = if l < t.h_n && ev_lt t l i then l else i in
  let smallest = if r < t.h_n && ev_lt t r smallest then r else smallest in
  if smallest <> i then begin
    swap t i smallest;
    sift_down t smallest
  end

let schedule t time h arg closure =
  (* scheduling in the past (or at nan) is clamped to the clock *)
  let time = if time >= t.clock then time else t.clock in
  t.seq <- t.seq + 1;
  if t.h_n = Array.length t.h_seq then grow t;
  let s = t.s_free in
  t.s_free <- t.s_arg.(s);
  t.s_handler.(s) <- h;
  t.s_arg.(s) <- arg;
  t.s_closure.(s) <- closure;
  let i = t.h_n in
  t.h_n <- i + 1;
  Float.Array.unsafe_set t.h_time i time;
  t.h_seq.(i) <- t.seq;
  t.h_slot.(i) <- s;
  sift_up t i

let at t time callback = schedule t time (-1) 0 callback

let after t dt callback =
  let dt = if dt < 0.0 then 0.0 else dt in
  at t (t.clock +. dt) callback

let soon t callback = after t 0.0 callback

let at_handler t time h arg =
  if h < 0 || h >= t.n_handlers then invalid_arg "Engine.at_handler: bad handler";
  schedule t time h arg nothing

let after_handler t dt h arg =
  let dt = if dt < 0.0 then 0.0 else dt in
  at_handler t (t.clock +. dt) h arg

let run ?until t =
  let limit = match until with None -> infinity | Some u -> u in
  let continue_ = ref true in
  while !continue_ && (not t.halted) && t.h_n > 0 do
    let time = Float.Array.get t.h_time 0 in
    if time > limit then begin
      (* The next event lies beyond the horizon: leave it queued and
         advance the clock to the horizon — never backwards, so a
         [run ~until] with an earlier limit than a previous one is a
         no-op rather than a time warp. Re-running with a larger
         [until] then picks the event up where one longer run would
         have. *)
      if limit > t.clock then t.clock <- limit;
      continue_ := false
    end
    else begin
      let s = t.h_slot.(0) in
      t.h_n <- t.h_n - 1;
      if t.h_n > 0 then begin
        let n = t.h_n in
        Float.Array.unsafe_set t.h_time 0 (Float.Array.unsafe_get t.h_time n);
        t.h_seq.(0) <- t.h_seq.(n);
        t.h_slot.(0) <- t.h_slot.(n);
        sift_down t 0
      end;
      t.clock <- time;
      t.executed <- t.executed + 1;
      let h = t.s_handler.(s) and arg = t.s_arg.(s) in
      let closure = t.s_closure.(s) in
      (* free the slot before dispatch so the callback can reuse it *)
      t.s_closure.(s) <- nothing;
      t.s_arg.(s) <- t.s_free;
      t.s_free <- s;
      if h >= 0 then t.handlers.(h) arg else closure ()
    end
  done
