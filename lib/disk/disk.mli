(** Simulated disk device.

    The disk services one request at a time (the paper's setup does
    not use command queueing); the device driver above it is
    responsible for scheduling. Service time = controller overhead +
    seek + rotational latency + rotation-synchronous transfer, with a
    segmented on-board cache that satisfies sequential reads at
    near-zero mechanical cost.

    The disk owns the persistent {e image}: one {!Su_fstypes.Types.cell}
    per fragment. A successful write's payload is applied to the image
    atomically at completion time — stopping the engine mid-request
    therefore models a crash with the in-flight request lost (the
    paper's sector-atomicity assumption); {!inflight_write} lets a
    crash harness additionally tear the in-flight write. With a
    {!Fault} model attached, attempts may fail with a typed error, and
    a failed multi-fragment write may apply only a prefix of its
    payload. *)

type t

type op = Read | Write

val create :
  engine:Su_sim.Engine.t ->
  params:Disk_params.t ->
  nfrags:int ->
  ?nvram_frags:int ->
  ?fault:Fault.config ->
  ?spare_frags:int ->
  ?checksums:bool ->
  unit ->
  t
(** @raise Invalid_argument if [nfrags] exceeds the drive capacity.

    [nvram_frags] (> 0) adds a battery-backed write cache: a write
    whose payload fits completes at electronic speed and is durable on
    acceptance (the image is updated immediately — NVRAM survives the
    crash); the occupied space destages to the platters during idle
    time at mechanical cost. Writes that do not fit fall back to
    mechanical service.

    [fault] (default {!Fault.none}) attaches a fault model; NVRAM
    acceptances and background destages are not subject to it (the
    data is already durable when a destage starts).

    [spare_frags] (> 0) reserves a spare-fragment pool past the
    addressable media plus one cell holding the persisted {!Remap}
    table. Logical addressing ([nfrags], [submit] bounds) is
    unchanged; remapped fragments are transparently redirected. With
    no remap entries the device behaves bit-identically to a disk
    without spares.

    [checksums] (default false) reserves one more cell past the
    spares holding a per-fragment digest of the logical media
    ({!Su_fstypes.Types.cell_digest} per cell), refreshed at write
    {e acknowledgement} — so a lost or misdirected write leaves a
    detectable digest/media disagreement, which is what the integrity
    layer above verifies on every cache fill. Off, the device is
    bit-identical to before the region existed. *)

val busy : t -> bool

val submit :
  t ->
  lbn:int ->
  nfrags:int ->
  op:op ->
  payload:Su_fstypes.Types.cell array option ->
  on_done:
    ((Su_fstypes.Types.cell array option, Fault.error) result -> float -> unit) ->
  unit
(** Start servicing a request. [payload] is required for writes
    (length [nfrags]) and must already be a private snapshot. The
    completion callback receives [Ok] with the read data (deep-copied,
    for reads) — or [Error] with the injected fault, in which case a
    write may have applied a prefix of its payload (torn) — and the
    access (service) time, and runs in engine-event context.
    @raise Invalid_argument if the disk is busy or arguments are
    malformed. *)

val install : t -> int -> Su_fstypes.Types.cell -> unit
(** Write a cell directly into the image with no timing (mkfs, image
    mounting, repair). Media addresses go through the remap table
    (identity until entries exist — installing a captured
    [image_snapshot] before {!reload_remap} reproduces the physical
    layout verbatim); addresses past the media hit the raw spare
    region. *)

val peek : t -> int -> Su_fstypes.Types.cell
(** Read one image cell directly (fsck / tests). Slab-encoded kinds
    (fragments, inode/dir/indirect blocks) decode to a fresh value —
    mutating the result cannot corrupt the image. Reserved boxed cells
    (superblock, cgroup, journal, remap table, checksum region) are
    returned live without a copy: treat those as read-only, and route
    every image mutation through {!install} (or the write path).
    Media addresses are translated through the remap table; addresses
    past the media read the raw spare region. *)

val frag_digest : t -> int -> int
(** {!Su_fstypes.Types.cell_digest} of the image cell at a (logical)
    address, folded straight off the compact representation — the
    at-rest verifier's accessor, equivalent to digesting {!peek}'s
    result without materializing it. *)

val image_snapshot : t -> Su_fstypes.Types.cell array
(** Deep copy of the whole {e physical} image (crash-state capture),
    spare region and remap-table cell included when configured. *)

val image_stats : t -> Su_fstypes.Volume.stats
(** Representation accounting of the live image (slab/boxed counts,
    slab bytes) — for benches and capacity reporting. *)

val logical_snapshot : t -> Su_fstypes.Types.cell array
(** Deep copy of the addressable media ([nfrags] cells) with every
    remap entry resolved to its spare's content — what the layers
    above observe. Equals {!image_snapshot} when no spares are
    configured. *)

val resolve_image :
  Su_fstypes.Types.cell array -> nfrags:int -> Su_fstypes.Types.cell array
(** [resolve_image cells ~nfrags] is the logical view of a captured
    physical image: a deep copy truncated to [nfrags] cells with the
    remap table at index [nfrags] (if present) applied. A plain
    [nfrags]-length image passes through unchanged (deep-copied). *)

val reload_remap : t -> unit
(** Restore the in-core remap table from the persisted cell (mount
    after {!install}ing a captured image). No-op without spares. *)

val install_csum : t -> Su_fstypes.Types.cell -> unit
(** Load a persisted checksum region (a {!Su_fstypes.Types.cell.Csum}
    cell captured from a prior incarnation) over the live one,
    replacing the digests {!install} computed from the installed cells
    — corruption that predates the mount stays detectable. No-op
    without [checksums] or for any other cell. *)

val checksums_enabled : t -> bool

val expected_digest : t -> int -> int option
(** The checksum region's digest for a (logical) media fragment;
    [None] without [checksums] or out of range. *)

val try_remap : t -> lbn:int -> bool
(** Allocate a spare for a (logically addressed) bad fragment and
    persist the updated table, notifying the write observers. Returns
    false when no spare pool is configured, the pool is exhausted, or
    the address is out of range. The caller (driver) re-drives the
    failed write afterwards; the fragment's new physical home is not
    subject to the old bad sector. *)

val remaps : t -> int
(** Remap operations performed (spares consumed). *)

val spares_total : t -> int
val spares_left : t -> int

val remap_entries : t -> (int * int) list
(** Current [(logical, spare)] table in allocation order. *)

val nfrags : t -> int
val requests_serviced : t -> int
val total_service_time : t -> float

(** {2 Service-time breakdown}

    Where the device's busy time went, accumulated per operation.
    Media operations (including background destages) contribute seek,
    rotational wait, transfer and controller overhead; cache-hit reads
    contribute overhead and their burst transfer; NVRAM acceptances
    are excluded (electronic, not mechanical). All in seconds. *)

val seek_time_total : t -> float
val rot_wait_time_total : t -> float
val transfer_time_total : t -> float
val overhead_time_total : t -> float

val set_idle_callback : t -> (unit -> unit) -> unit
(** Invoked (engine context) when a background NVRAM destage finishes
    and the device is idle again — the driver uses it to re-dispatch,
    since no foreground completion fires. *)

val nvram_pending : t -> int
(** Fragments accepted into NVRAM and not yet destaged. *)

val destages : t -> int
(** Background destage operations performed. *)

val fault : t -> Fault.t
(** The attached fault model ({!Fault.none} by default). *)

val faults_injected : t -> int

val silent_faults : t -> int
(** Silent faults injected so far (included in {!faults_injected}). *)

val inflight_write : t -> (int * Su_fstypes.Types.cell array) option
(** The mechanical write being serviced right now, if any, as
    [(lbn, payload)]: its payload has {e not} reached the media, so a
    crash at this instant may apply any strict prefix of it. [None]
    while idle, reading, destaging, or accepting into NVRAM. *)

val set_write_observer : t -> (lbn:int -> Su_fstypes.Types.cell array -> unit) -> unit
(** [f ~lbn cells] is invoked (with a private copy of the applied
    cells) every time payload fragments reach durable storage: at
    completion of a successful mechanical write, at NVRAM acceptance,
    and — with only the surviving prefix — when a write fails torn.
    The crash-state explorer uses this to rebuild the image at every
    write boundary without re-running the workload. *)

val set_delta_observer :
  t ->
  (lbn:int ->
  pre:Su_fstypes.Types.cell array ->
  post:Su_fstypes.Types.cell array ->
  unit) ->
  unit
(** [f ~lbn ~pre ~post] fires at the same instants as the write
    observer, but additionally captures the cells the write replaced:
    [pre] is the image content of [lbn ..] immediately before the
    payload landed, [post] the content after (both private deep
    copies, same length). A log of these deltas can materialize the
    durable image at {e any} write boundary by replaying forward or
    undoing backward from a single base image in O(cells touched) per
    step — see {!Su_check.Delta}. *)
