open Su_fstypes

type t = {
  media : int;  (* addressable fragments; table cell lives at [media] *)
  nspares : int;
  tbl : (int, int) Hashtbl.t;  (* logical -> physical spare *)
  mutable order : (int * int) list;  (* reverse allocation order *)
  mutable next : int;  (* next unallocated spare index, 0-based *)
}

let create ~media ~nspares =
  { media; nspares; tbl = Hashtbl.create 16; order = []; next = 0 }

let table_slot t = t.media
let spare_base t = t.media + 1
let size t = Hashtbl.length t.tbl
let nspares t = t.nspares
let spares_left t = t.nspares - t.next

let lookup t lbn =
  match Hashtbl.find_opt t.tbl lbn with Some phys -> phys | None -> lbn

let is_mapped t lbn = Hashtbl.mem t.tbl lbn

let entries t = List.rev t.order

let remap t lbn =
  if t.next >= t.nspares then None
  else begin
    let phys = spare_base t + t.next in
    t.next <- t.next + 1;
    (* a re-remap (the spare itself went bad is not modelled; this
       covers remapping the same logical sector twice) replaces the
       entry but still consumes a fresh spare *)
    if Hashtbl.mem t.tbl lbn then
      t.order <- List.filter (fun (l, _) -> l <> lbn) t.order;
    Hashtbl.replace t.tbl lbn phys;
    t.order <- (lbn, phys) :: t.order;
    Some phys
  end

let cell t = Types.Rmap (entries t)

let load t cells =
  match cells with
  | Types.Rmap es ->
    Hashtbl.reset t.tbl;
    t.order <- [];
    t.next <- 0;
    List.iter
      (fun (lbn, phys) ->
         Hashtbl.replace t.tbl lbn phys;
         t.order <- (lbn, phys) :: t.order;
         let idx = phys - spare_base t + 1 in
         if idx > t.next then t.next <- idx)
      es
  | Types.Empty -> ()
  | _ -> invalid_arg "Remap.load: not a remap-table cell"
