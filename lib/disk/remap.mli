(** Bad-sector remap table.

    The drive reserves [nspares + 1] fragments past the addressable
    media: index [media] holds the persisted table (a
    {!Su_fstypes.Types.cell.Rmap} cell) and
    [media + 1 .. media + nspares] are the spare fragments. Logical
    addresses stay stable — a remapped fragment is transparently
    redirected to its spare on every subsequent access. *)

type t

val create : media:int -> nspares:int -> t

val table_slot : t -> int
(** Physical index of the persisted-table cell ([media]). *)

val spare_base : t -> int
(** Physical index of the first spare fragment ([media + 1]). *)

val lookup : t -> int -> int
(** Physical address of a logical fragment (identity if unmapped). *)

val is_mapped : t -> int -> bool

val remap : t -> int -> int option
(** Allocate the next spare for a logical fragment and record the
    mapping. [None] when the spare pool is exhausted. *)

val entries : t -> (int * int) list
(** [(logical, spare)] pairs in allocation order. *)

val size : t -> int
val nspares : t -> int
val spares_left : t -> int

val cell : t -> Su_fstypes.Types.cell
(** The table serialized as an on-disk cell. *)

val load : t -> Su_fstypes.Types.cell -> unit
(** Restore the table from a persisted cell ([Empty] = empty table).
    @raise Invalid_argument on any other cell kind. *)
