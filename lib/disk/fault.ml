type error =
  | Transient of { op : [ `Read | `Write ]; lbn : int }
  | Bad_sector of { lbn : int }
  | Timeout of { elapsed : float; limit : float }

let error_to_string = function
  | Transient { op; lbn } ->
    Printf.sprintf "transient %s error at lbn %d"
      (match op with `Read -> "read" | `Write -> "write")
      lbn
  | Bad_sector { lbn } -> Printf.sprintf "bad sector at lbn %d" lbn
  | Timeout { elapsed; limit } ->
    Printf.sprintf "request timeout (%.1f ms > %.1f ms)" (1000.0 *. elapsed)
      (1000.0 *. limit)

let pp_error ppf e = Format.pp_print_string ppf (error_to_string e)

type config = {
  seed : int;
  read_fail : float;
  write_fail : float;
  stall : float;
  stall_factor : float;
  bad_sectors : int list;
  torn_writes : bool;
}

let none =
  {
    seed = 0;
    read_fail = 0.0;
    write_fail = 0.0;
    stall = 0.0;
    stall_factor = 1.0;
    bad_sectors = [];
    torn_writes = false;
  }

let transient ?(seed = 42) ?(rate = 0.02) () =
  {
    seed;
    read_fail = rate;
    write_fail = rate;
    stall = rate /. 4.0;
    stall_factor = 50.0;
    bad_sectors = [];
    torn_writes = true;
  }

type t = {
  cfg : config;
  rng : Su_util.Rng.t;
  bad : (int, unit) Hashtbl.t;
  mutable injected : int;
}

let create cfg =
  let bad = Hashtbl.create 8 in
  List.iter (fun lbn -> Hashtbl.replace bad lbn ()) cfg.bad_sectors;
  { cfg; rng = Su_util.Rng.create cfg.seed; bad; injected = 0 }

let config t = t.cfg

let enabled t =
  t.cfg.read_fail > 0.0 || t.cfg.write_fail > 0.0 || t.cfg.stall > 0.0
  || Hashtbl.length t.bad > 0

type verdict =
  | Ok_attempt
  | Stalled
  | Failed of { err : error; applied : int }

let ident_phys lbn = lbn

let first_bad t ~phys ~lbn ~nfrags =
  (* scan physical addresses (so a remapped fragment escapes its old
     bad sector) but report the logical one *)
  let rec go i = if i >= nfrags then None
    else if Hashtbl.mem t.bad (phys (lbn + i)) then Some (lbn + i)
    else go (i + 1)
  in
  go 0

let judge t ?(phys = ident_phys) ~op ~lbn ~nfrags () =
  if not (enabled t) then Ok_attempt
  else
    match first_bad t ~phys ~lbn ~nfrags with
    | Some bad_lbn ->
      t.injected <- t.injected + 1;
      (* a write reaches the media up to (not including) the bad
         fragment; a read returns nothing *)
      let applied =
        if op = `Write && t.cfg.torn_writes then bad_lbn - lbn else 0
      in
      Failed { err = Bad_sector { lbn = bad_lbn }; applied }
    | None ->
      let fail_p =
        match op with `Read -> t.cfg.read_fail | `Write -> t.cfg.write_fail
      in
      let draw = Su_util.Rng.float t.rng 1.0 in
      if draw < fail_p then begin
        t.injected <- t.injected + 1;
        let applied =
          if op = `Write && t.cfg.torn_writes && nfrags > 1 then
            Su_util.Rng.int t.rng nfrags (* 0 .. nfrags-1: a strict prefix *)
          else 0
        in
        Failed { err = Transient { op; lbn }; applied }
      end
      else if draw < fail_p +. t.cfg.stall then begin
        t.injected <- t.injected + 1;
        Stalled
      end
      else Ok_attempt

let injected t = t.injected
