open Su_fstypes

type error =
  | Transient of { op : [ `Read | `Write ]; lbn : int }
  | Bad_sector of { lbn : int }
  | Timeout of { elapsed : float; limit : float }
  | Checksum of { lbn : int }

let error_to_string = function
  | Transient { op; lbn } ->
    Printf.sprintf "transient %s error at lbn %d"
      (match op with `Read -> "read" | `Write -> "write")
      lbn
  | Bad_sector { lbn } -> Printf.sprintf "bad sector at lbn %d" lbn
  | Timeout { elapsed; limit } ->
    Printf.sprintf "request timeout (%.1f ms > %.1f ms)" (1000.0 *. elapsed)
      (1000.0 *. limit)
  | Checksum { lbn } ->
    Printf.sprintf "unrepairable checksum mismatch at lbn %d" lbn

let pp_error ppf e = Format.pp_print_string ppf (error_to_string e)

type silent =
  | Flip_read of { frag : int }
  | Lost_write
  | Misdirect_write of { target : int }

let silent_name = function
  | Flip_read _ -> "flip"
  | Lost_write -> "lost"
  | Misdirect_write _ -> "misdirect"

type config = {
  seed : int;
  read_fail : float;
  write_fail : float;
  stall : float;
  stall_factor : float;
  bad_sectors : int list;
  torn_writes : bool;
  flip_read : float;
  lost_write : float;
  misdirect_write : float;
  flip_at : int list;
  lose_at : int list;
  misdirect_at : (int * int) list;
}

let none =
  {
    seed = 0;
    read_fail = 0.0;
    write_fail = 0.0;
    stall = 0.0;
    stall_factor = 1.0;
    bad_sectors = [];
    torn_writes = false;
    flip_read = 0.0;
    lost_write = 0.0;
    misdirect_write = 0.0;
    flip_at = [];
    lose_at = [];
    misdirect_at = [];
  }

let transient ?(seed = 42) ?(rate = 0.02) () =
  {
    none with
    seed;
    read_fail = rate;
    write_fail = rate;
    stall = rate /. 4.0;
    stall_factor = 50.0;
    torn_writes = true;
  }

type t = {
  cfg : config;
  rng : Su_util.Rng.t;
  bad : (int, unit) Hashtbl.t;
  flip_at : (int, unit) Hashtbl.t;  (* one-shot: consumed on injection *)
  lose_at : (int, unit) Hashtbl.t;
  misdirect_at : (int, int) Hashtbl.t;
  mutable injected : int;
  mutable silent_injected : int;
}

let create cfg =
  let bad = Hashtbl.create 8 in
  List.iter (fun lbn -> Hashtbl.replace bad lbn ()) cfg.bad_sectors;
  let flip_at = Hashtbl.create 4 and lose_at = Hashtbl.create 4 in
  let misdirect_at = Hashtbl.create 4 in
  List.iter (fun lbn -> Hashtbl.replace flip_at lbn ()) cfg.flip_at;
  List.iter (fun lbn -> Hashtbl.replace lose_at lbn ()) cfg.lose_at;
  List.iter
    (fun (lbn, target) -> Hashtbl.replace misdirect_at lbn target)
    cfg.misdirect_at;
  {
    cfg;
    rng = Su_util.Rng.create cfg.seed;
    bad;
    flip_at;
    lose_at;
    misdirect_at;
    injected = 0;
    silent_injected = 0;
  }

let config t = t.cfg

let enabled t =
  t.cfg.read_fail > 0.0 || t.cfg.write_fail > 0.0 || t.cfg.stall > 0.0
  || Hashtbl.length t.bad > 0
  || t.cfg.flip_read > 0.0 || t.cfg.lost_write > 0.0
  || t.cfg.misdirect_write > 0.0
  || Hashtbl.length t.flip_at > 0
  || Hashtbl.length t.lose_at > 0
  || Hashtbl.length t.misdirect_at > 0

type verdict =
  | Ok_attempt
  | Stalled
  | Failed of { err : error; applied : int }
  | Silent of silent

let ident_phys lbn = lbn

let first_bad t ~phys ~lbn ~nfrags =
  (* scan physical addresses (so a remapped fragment escapes its old
     bad sector) but report the logical one *)
  let rec go i = if i >= nfrags then None
    else if Hashtbl.mem t.bad (phys (lbn + i)) then Some (lbn + i)
    else go (i + 1)
  in
  go 0

(* One-shot targeted silent faults: the first attempt of the right
   kind that touches the listed sector gets the fault, then the entry
   is consumed. Scanned before the probabilistic model so a campaign
   injection never depends on the RNG stream. *)
let targeted t ~op ~lbn ~nfrags =
  let rec scan i =
    if i >= nfrags then None
    else
      let f = lbn + i in
      match op with
      | `Read when Hashtbl.mem t.flip_at f ->
        Hashtbl.remove t.flip_at f;
        Some (Flip_read { frag = f })
      | `Write when Hashtbl.mem t.lose_at f ->
        Hashtbl.remove t.lose_at f;
        Some Lost_write
      | `Write when Hashtbl.mem t.misdirect_at f ->
        let target = Hashtbl.find t.misdirect_at f in
        Hashtbl.remove t.misdirect_at f;
        Some (Misdirect_write { target })
      | `Read | `Write -> scan (i + 1)
  in
  scan 0

let judge t ?(phys = ident_phys) ?(media = 0) ~op ~lbn ~nfrags () =
  if not (enabled t) then Ok_attempt
  else
    match targeted t ~op ~lbn ~nfrags with
    | Some s ->
      t.injected <- t.injected + 1;
      t.silent_injected <- t.silent_injected + 1;
      Silent s
    | None ->
      match first_bad t ~phys ~lbn ~nfrags with
      | Some bad_lbn ->
        t.injected <- t.injected + 1;
        (* a write reaches the media up to (not including) the bad
           fragment; a read returns nothing *)
        let applied =
          if op = `Write && t.cfg.torn_writes then bad_lbn - lbn else 0
        in
        Failed { err = Bad_sector { lbn = bad_lbn }; applied }
      | None ->
        let fail_p =
          match op with `Read -> t.cfg.read_fail | `Write -> t.cfg.write_fail
        in
        let draw = Su_util.Rng.float t.rng 1.0 in
        if draw < fail_p then begin
          t.injected <- t.injected + 1;
          let applied =
            if op = `Write && t.cfg.torn_writes && nfrags > 1 then
              Su_util.Rng.int t.rng nfrags (* 0 .. nfrags-1: a strict prefix *)
            else 0
          in
          Failed { err = Transient { op; lbn }; applied }
        end
        else if draw < fail_p +. t.cfg.stall then begin
          t.injected <- t.injected + 1;
          Stalled
        end
        else begin
          (* the silent classes report success, so they are judged
             last; extra random numbers are drawn only when a silent
             rate is nonzero, keeping seeded replays of the historical
             fail-stop configurations bit-identical *)
          let silent_p =
            match op with
            | `Read -> t.cfg.flip_read
            | `Write -> t.cfg.lost_write +. t.cfg.misdirect_write
          in
          if silent_p <= 0.0 then Ok_attempt
          else
            let d2 = Su_util.Rng.float t.rng 1.0 in
            match op with
            | `Read ->
              if d2 < t.cfg.flip_read then begin
                t.injected <- t.injected + 1;
                t.silent_injected <- t.silent_injected + 1;
                let off =
                  if nfrags > 1 then Su_util.Rng.int t.rng nfrags else 0
                in
                Silent (Flip_read { frag = lbn + off })
              end
              else Ok_attempt
            | `Write ->
              if d2 < t.cfg.lost_write then begin
                t.injected <- t.injected + 1;
                t.silent_injected <- t.silent_injected + 1;
                Silent Lost_write
              end
              else if d2 < t.cfg.lost_write +. t.cfg.misdirect_write then begin
                t.injected <- t.injected + 1;
                t.silent_injected <- t.silent_injected + 1;
                if media <= 0 then Silent Lost_write
                else begin
                  (* a misdirected write needs a victim; one draw, then
                     shift past the request's own extent if it landed
                     inside it *)
                  let target = Su_util.Rng.int t.rng media in
                  let target =
                    if target >= lbn && target < lbn + nfrags then
                      (target + nfrags) mod media
                    else target
                  in
                  if target >= lbn && target < lbn + nfrags then
                    Silent Lost_write (* tiny media: no victim exists *)
                  else Silent (Misdirect_write { target })
                end
              end
              else Ok_attempt
        end

let injected t = t.injected
let silent_injected t = t.silent_injected

(* --- payload corruption ---------------------------------------------- *)

(* Flip "one bit" at the typed-cell level: return a cell that is
   structurally valid, plausible, and guaranteed to digest differently
   (every branch XORs a nonzero bit into an integer field or toggles a
   constructor). Mutable structure is deep-copied first — the caller
   hands us a private copy anyway, but corruption must never alias the
   media. *)
let corrupt_cell rng cell =
  let flip_bit v = v lxor (1 lsl Su_util.Rng.int rng 6) in
  match Types.copy_cell cell with
  | Types.Empty -> Types.Pad
  | Types.Pad -> Types.Empty
  | Types.Frag Types.Zeroed ->
    Types.Frag
      (Types.Written
         { inum = 1 + Su_util.Rng.int rng 64; gen = 1; flbn = 0 })
  | Types.Frag (Types.Written { inum; gen; flbn }) ->
    Types.Frag (Types.Written { inum = flip_bit inum; gen; flbn })
  | Types.Meta (Types.Superblock sb) ->
    Types.Meta
      (Types.Superblock { sb with Types.sb_nfrags = flip_bit sb.Types.sb_nfrags })
  | Types.Meta (Types.Cgroup cg) as cell' ->
    let i = Su_util.Rng.int rng (Bytes.length cg.Types.frag_map) in
    Bytes.set cg.Types.frag_map i
      (Char.chr (Char.code (Bytes.get cg.Types.frag_map i) lxor 1));
    cell'
  | Types.Meta (Types.Inodes ds) as cell' ->
    let d = ds.(Su_util.Rng.int rng (Array.length ds)) in
    d.Types.size <- flip_bit d.Types.size;
    d.Types.ftype <-
      (match d.Types.ftype with
       | Types.F_free -> Types.F_reg
       | Types.F_reg | Types.F_dir -> d.Types.ftype);
    cell'
  | Types.Meta (Types.Dir entries) as cell' ->
    let i = Su_util.Rng.int rng (Array.length entries) in
    (match entries.(i) with
     | Some e ->
       entries.(i) <-
         Some { e with Types.inum = flip_bit e.Types.inum }
     | None ->
       entries.(i) <-
         Some { Types.name = "\001rot"; inum = 1 + Su_util.Rng.int rng 64 });
    cell'
  | Types.Meta (Types.Indirect ptrs) as cell' ->
    let i = Su_util.Rng.int rng (Array.length ptrs) in
    ptrs.(i) <- flip_bit ptrs.(i);
    cell'
  | Types.Jlog { seq; recs } -> Types.Jlog { seq = flip_bit seq; recs }
  | Types.Rmap entries ->
    Types.Rmap
      (match entries with
       | (l, s) :: rest -> (flip_bit l, s) :: rest
       | [] -> [ (1, 1) ])
  | Types.Csum a as cell' ->
    if Array.length a > 0 then begin
      let i = Su_util.Rng.int rng (Array.length a) in
      a.(i) <- flip_bit a.(i)
    end;
    cell'

let corrupt t cell = corrupt_cell t.rng cell
