open Su_fstypes

type op = Read | Write

type stream = { mutable next_lbn : int; mutable limit : int }
(* A sequential read stream cached on board: fragments in
   [next_lbn, limit) are (or are being) prefetched. *)

type destage = { d_lbn : int; d_nfrags : int }

type t = {
  engine : Su_sim.Engine.t;
  params : Disk_params.t;
  fault : Fault.t;
  image : Types.cell array;
  mutable cur_cyl : int;
  mutable busy : bool;
  mutable streams : stream list;
  mutable serviced : int;
  mutable service_time : float;
  (* where service time goes, accumulated per operation (media
     operations and destages alike); cache-hit reads count their burst
     transfer and overhead, NVRAM-accepted writes are excluded *)
  mutable t_seek : float;
  mutable t_rot : float;
  mutable t_transfer : float;
  mutable t_overhead : float;
  nvram_frags : int;  (* 0 = no NVRAM *)
  mutable nv_used : int;
  nv_queue : destage Queue.t;
  nv_resident : (int, int) Hashtbl.t;  (* extent start -> nfrags *)
  mutable ndestages : int;
  mutable on_idle : unit -> unit;
      (* lets the layer above re-dispatch when a background destage
         finishes (it gets no request completion to react to) *)
  mutable inflight : (int * Types.cell array) option;
      (* mechanical write being serviced right now: its payload has not
         reached the media yet, so a crash may tear it *)
  mutable write_observer : (lbn:int -> Types.cell array -> unit) option;
  mutable delta_observer :
    (lbn:int -> pre:Types.cell array -> post:Types.cell array -> unit) option;
}

let create ~engine ~params ~nfrags ?(nvram_frags = 0) ?(fault = Fault.none) () =
  if nfrags > Disk_params.capacity_frags params then
    invalid_arg "Disk.create: file system larger than the drive";
  {
    engine;
    params;
    fault = Fault.create fault;
    image = Array.make nfrags Types.Empty;
    cur_cyl = 0;
    busy = false;
    streams = [];
    serviced = 0;
    service_time = 0.0;
    t_seek = 0.0;
    t_rot = 0.0;
    t_transfer = 0.0;
    t_overhead = 0.0;
    nvram_frags;
    nv_used = 0;
    nv_queue = Queue.create ();
    nv_resident = Hashtbl.create 64;
    ndestages = 0;
    on_idle = (fun () -> ());
    inflight = None;
    write_observer = None;
    delta_observer = None;
  }

let busy t = t.busy
let nfrags t = Array.length t.image
let requests_serviced t = t.serviced
let total_service_time t = t.service_time
let seek_time_total t = t.t_seek
let rot_wait_time_total t = t.t_rot
let transfer_time_total t = t.t_transfer
let overhead_time_total t = t.t_overhead
let nvram_pending t = t.nv_used
let destages t = t.ndestages
let set_idle_callback t f = t.on_idle <- f
let fault t = t.fault
let faults_injected t = Fault.injected t.fault
let inflight_write t = t.inflight
let set_write_observer t f = t.write_observer <- Some f
let set_delta_observer t f = t.delta_observer <- Some f

let cyl_of_lbn t lbn = lbn / Disk_params.frags_per_cyl t.params

let angle_of_lbn t lbn =
  let per_track = t.params.Disk_params.frags_per_track in
  float_of_int (lbn mod per_track) /. float_of_int per_track

let angle_at_time t time =
  let rot = Disk_params.rotation_time t.params in
  let frac = time /. rot in
  frac -. Float.of_int (int_of_float frac)

(* Cache-hit test: a read is served from the on-board cache when it
   extends one of the active sequential streams. *)
let stream_hit t lbn nfrags =
  List.exists
    (fun s -> lbn = s.next_lbn && lbn + nfrags <= s.limit)
    t.streams

let advance_stream t lbn nfrags =
  let matching = List.find_opt (fun s -> lbn = s.next_lbn) t.streams in
  let limit = min (Array.length t.image) (lbn + nfrags + t.params.Disk_params.prefetch_frags) in
  match matching with
  | Some s ->
    s.next_lbn <- lbn + nfrags;
    s.limit <- limit
  | None ->
    let s = { next_lbn = lbn + nfrags; limit } in
    let keep =
      if List.length t.streams >= t.params.Disk_params.cache_segments then
        match List.rev t.streams with
        | [] -> []
        | _oldest :: rest -> List.rev rest
      else t.streams
    in
    t.streams <- s :: keep

let mechanical_time t ~lbn ~nfrags ~now =
  let p = t.params in
  let rot = Disk_params.rotation_time p in
  let seek = Disk_params.seek_time p (abs (cyl_of_lbn t lbn - t.cur_cyl)) in
  let arrive = now +. p.Disk_params.overhead +. seek in
  let target = angle_of_lbn t lbn in
  let cur = angle_at_time t arrive in
  let wait =
    let d = target -. cur in
    if d < 0.0 then d +. 1.0 else d
  in
  let transfer =
    float_of_int nfrags /. float_of_int p.Disk_params.frags_per_track *. rot
  in
  t.t_seek <- t.t_seek +. seek;
  t.t_rot <- t.t_rot +. (wait *. rot);
  t.t_transfer <- t.t_transfer +. transfer;
  t.t_overhead <- t.t_overhead +. p.Disk_params.overhead;
  p.Disk_params.overhead +. seek +. (wait *. rot) +. transfer

let service_time_for t ~lbn ~nfrags ~op ~now =
  match op with
  | Read when stream_hit t lbn nfrags ->
    let p = t.params in
    let transfer =
      float_of_int nfrags
      /. float_of_int p.Disk_params.frags_per_track
      *. Disk_params.rotation_time p
      /. 4.0
      (* cache-to-host burst is much faster than media rate *)
    in
    t.t_transfer <- t.t_transfer +. transfer;
    t.t_overhead <- t.t_overhead +. p.Disk_params.overhead;
    p.Disk_params.overhead +. transfer
  | Read | Write -> mechanical_time t ~lbn ~nfrags ~now

(* Electronic cost of moving [nfrags] into the NVRAM buffer. *)
let nvram_write_time t nfrags =
  t.params.Disk_params.overhead /. 2.0 +. (float_of_int nfrags *. 20e-6)

(* Destage one queued NVRAM extent at mechanical cost while the device
   is otherwise idle; foreground requests queue behind at most one
   destage operation. The data is already durable (the image was
   updated at acceptance), so destaging only frees buffer space. *)
let rec maybe_destage t =
  if (not t.busy) && not (Queue.is_empty t.nv_queue) then begin
    let d = Queue.pop t.nv_queue in
    let now = Su_sim.Engine.now t.engine in
    let svc = mechanical_time t ~lbn:d.d_lbn ~nfrags:d.d_nfrags ~now in
    t.busy <- true;
    Su_sim.Engine.after t.engine svc (fun () ->
        t.busy <- false;
        t.cur_cyl <- cyl_of_lbn t (d.d_lbn + d.d_nfrags - 1);
        t.ndestages <- t.ndestages + 1;
        t.nv_used <- t.nv_used - d.d_nfrags;
        Hashtbl.remove t.nv_resident d.d_lbn;
        (* let queued foreground requests go first *)
        t.on_idle ();
        maybe_destage t)
  end

let apply_write t ~lbn ~nfrags cells =
  (* pre-images are captured before the blit so a delta observer can
     undo the write as well as replay it *)
  let pre =
    match t.delta_observer with
    | Some _ when nfrags > 0 ->
      Some (Array.init nfrags (fun i -> Types.copy_cell t.image.(lbn + i)))
    | Some _ | None -> None
  in
  Array.blit cells 0 t.image lbn nfrags;
  (* a write invalidates overlapping cached streams *)
  t.streams <-
    List.filter (fun s -> s.limit <= lbn || s.next_lbn >= lbn + nfrags) t.streams;
  (match t.write_observer with
   | Some f when nfrags > 0 ->
     f ~lbn (Array.init nfrags (fun i -> Types.copy_cell cells.(i)))
   | Some _ | None -> ());
  match t.delta_observer, pre with
  | Some f, Some pre ->
    f ~lbn ~pre
      ~post:(Array.init nfrags (fun i -> Types.copy_cell cells.(i)))
  | (Some _ | None), _ -> ()

let submit t ~lbn ~nfrags ~op ~payload ~on_done =
  if t.busy then invalid_arg "Disk.submit: device busy";
  if nfrags <= 0 || lbn < 0 || lbn + nfrags > Array.length t.image then
    invalid_arg "Disk.submit: address out of range";
  (match op, payload with
   | Write, None -> invalid_arg "Disk.submit: write without payload"
   | Write, Some p when Array.length p <> nfrags ->
     invalid_arg "Disk.submit: payload length mismatch"
   | Write, Some _ | Read, _ -> ());
  let now = Su_sim.Engine.now t.engine in
  (* a write to an extent already buffered coalesces in place: no new
     space, no extra destage (the destage writes the latest contents) *)
  let nvram_coalesce =
    op = Write && t.nvram_frags > 0
    && Hashtbl.find_opt t.nv_resident lbn = Some nfrags
  in
  let nvram_hit =
    nvram_coalesce
    || (op = Write && t.nvram_frags > 0 && t.nv_used + nfrags <= t.nvram_frags)
  in
  (* the fault model only covers media operations; an NVRAM-accepted
     write is a RAM copy and cannot fail or tear *)
  let verdict =
    if nvram_hit then Fault.Ok_attempt
    else
      Fault.judge t.fault
        ~op:(match op with Read -> `Read | Write -> `Write)
        ~lbn ~nfrags
  in
  let svc =
    if nvram_hit then nvram_write_time t nfrags
    else
      let base = service_time_for t ~lbn ~nfrags ~op ~now in
      match verdict with
      | Fault.Stalled -> base *. (Fault.config t.fault).Fault.stall_factor
      | Fault.Ok_attempt | Fault.Failed _ -> base
  in
  t.busy <- true;
  if nvram_hit then begin
    (* durable on acceptance: NVRAM survives a crash *)
    (match payload with
     | Some cells -> apply_write t ~lbn ~nfrags cells
     | None -> ());
    if not nvram_coalesce then begin
      t.nv_used <- t.nv_used + nfrags;
      Hashtbl.replace t.nv_resident lbn nfrags;
      Queue.add { d_lbn = lbn; d_nfrags = nfrags } t.nv_queue
    end
  end
  else if op = Write then
    t.inflight <- (match payload with Some p -> Some (lbn, p) | None -> None);
  Su_sim.Engine.after t.engine svc (fun () ->
      t.busy <- false;
      t.inflight <- None;
      if not nvram_hit then t.cur_cyl <- cyl_of_lbn t (lbn + nfrags - 1);
      t.serviced <- t.serviced + 1;
      t.service_time <- t.service_time +. svc;
      match verdict with
      | Fault.Failed { err; applied } ->
        (* a torn write: only the leading [applied] fragments reached
           the media before the failure *)
        (match op, payload with
         | Write, Some cells when applied > 0 ->
           apply_write t ~lbn ~nfrags:applied cells
         | _ -> ());
        on_done (Error err) svc;
        maybe_destage t
      | Fault.Ok_attempt | Fault.Stalled ->
        let result =
          match op with
          | Read ->
            advance_stream t lbn nfrags;
            Some (Array.init nfrags (fun i -> Types.copy_cell t.image.(lbn + i)))
          | Write ->
            (match payload with
             | Some cells ->
               if not nvram_hit then apply_write t ~lbn ~nfrags cells;
               None
             | None -> None)
        in
        on_done (Ok result) svc;
        maybe_destage t)

let install t lbn cell =
  if lbn < 0 || lbn >= Array.length t.image then
    invalid_arg "Disk.install: address out of range";
  t.image.(lbn) <- cell

let peek t lbn =
  if lbn < 0 || lbn >= Array.length t.image then
    invalid_arg "Disk.peek: address out of range";
  t.image.(lbn)

let image_snapshot t = Array.map Types.copy_cell t.image
