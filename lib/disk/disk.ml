open Su_fstypes

type op = Read | Write

type stream = { mutable next_lbn : int; mutable limit : int }
(* A sequential read stream cached on board: fragments in
   [next_lbn, limit) are (or are being) prefetched. *)

type destage = { d_lbn : int; d_nfrags : int }

let no_done (_ : (Types.cell array option, Fault.error) result) (_ : float) = ()

type t = {
  engine : Su_sim.Engine.t;
  params : Disk_params.t;
  fault : Fault.t;
  image : Volume.t;
  (* [image] covers the addressable media ([0, media)) plus, when a
     spare pool is configured, one reserved cell for the persisted
     remap table at [media] and the spares above it. All external
     addressing is logical; [remap] translates on access. The volume
     stores the slab-class metadata kinds compactly (see Volume);
     reserved boxed cells keep the legacy aliasing — the [Csum] cell
     below IS the live [csum] array. *)
  media : int;
  remap : Remap.t option;
  csum : int array option;
  (* per-fragment digest of the logical media, keyed by logical
     address; aliases the [Types.Csum] cell at [csum_slot] so
     snapshots carry it (deep-copied by [Types.copy_cell]). Updated at
     write *acknowledgement*: a lost write refreshes the digest while
     the media keeps stale data, a misdirected write refreshes its
     intended range while the payload lands elsewhere — both therefore
     detectable by an end-to-end verify, which is the point. *)
  csum_slot : int;
  mutable nremaps : int;
  mutable cur_cyl : int;
  mutable busy : bool;
  mutable streams : stream list;
  mutable serviced : int;
  fl : floatarray;
  (* Float accumulators and the in-flight service time, kept in a flat
     float array because mutable float fields of this (mixed) record
     would box on every store — several allocations per operation.
     Slots: 0 = total service time, 1 = seek, 2 = rotation wait,
     3 = transfer, 4 = overhead, 5 = service time of the operation in
     flight. Service time is accumulated per operation (media
     operations and destages alike); cache-hit reads count their burst
     transfer and overhead, NVRAM-accepted writes are excluded.
     Slots 6 and 7 cache two per-disk constants of the mechanical
     model — the rotation period and [sqrt (cylinders - 2)] — so the
     per-operation timing math pays no repeated division or square
     root (the cached values are bit-identical to recomputation, so
     simulated times are unchanged). *)
  nvram_frags : int;  (* 0 = no NVRAM *)
  mutable nv_used : int;
  nv_queue : destage Queue.t;
  nv_resident : (int, int) Hashtbl.t;  (* extent start -> nfrags *)
  mutable ndestages : int;
  mutable on_idle : unit -> unit;
      (* lets the layer above re-dispatch when a background destage
         finishes (it gets no request completion to react to) *)
  mutable inflight_lbn : int;
  mutable inflight_payload : Types.cell array option;
      (* mechanical write being serviced right now: its payload has not
         reached the media yet, so a crash may tear it (the pair is
         split into two fields so the hot write path stores immediates
         instead of allocating a tuple option per operation) *)
  mutable write_observer : (lbn:int -> Types.cell array -> unit) option;
  mutable delta_observer :
    (lbn:int -> pre:Types.cell array -> post:Types.cell array -> unit) option;
  (* The operation being serviced, stashed here so its completion is a
     registered handler event instead of a fresh closure per I/O (the
     device services one operation at a time, so one set of fields
     suffices; [p_on_done] is reset to [no_done] at completion). *)
  mutable done_h : Su_sim.Engine.handler;
  mutable destage_h : Su_sim.Engine.handler;
  mutable p_lbn : int;
  mutable p_nfrags : int;
  mutable p_op : op;
  mutable p_payload : Types.cell array option;
  mutable p_verdict : Fault.verdict;
  mutable p_nvram_hit : bool;
  mutable p_on_done : (Types.cell array option, Fault.error) result -> float -> unit;
  (* destage in flight (mutually exclusive with a foreground op) *)
  mutable p_destage : destage;
}

let busy t = t.busy
let nfrags t = t.media

(* Remapping is consulted only when at least one entry exists, so a
   disk with an empty (or absent) spare pool takes exactly the seed's
   code path. *)
let has_remaps t =
  match t.remap with Some r -> Remap.size r > 0 | None -> false

let phys_of t lbn =
  match t.remap with Some r -> Remap.lookup r lbn | None -> lbn

let remaps t = t.nremaps

let spares_total t =
  match t.remap with Some r -> Remap.nspares r | None -> 0

let spares_left t =
  match t.remap with Some r -> Remap.spares_left r | None -> 0

let remap_entries t =
  match t.remap with Some r -> Remap.entries r | None -> []
let requests_serviced t = t.serviced
let total_service_time t = Float.Array.get t.fl 0
let seek_time_total t = Float.Array.get t.fl 1
let rot_wait_time_total t = Float.Array.get t.fl 2
let transfer_time_total t = Float.Array.get t.fl 3
let overhead_time_total t = Float.Array.get t.fl 4
let nvram_pending t = t.nv_used
let destages t = t.ndestages
let set_idle_callback t f = t.on_idle <- f
let fault t = t.fault
let faults_injected t = Fault.injected t.fault
let silent_faults t = Fault.silent_injected t.fault
let checksums_enabled t = t.csum <> None

let expected_digest t lbn =
  match t.csum with
  | Some ca when lbn >= 0 && lbn < t.media -> Some ca.(lbn)
  | Some _ | None -> None

let inflight_write t =
  match t.inflight_payload with
  | Some p -> Some (t.inflight_lbn, p)
  | None -> None
let set_write_observer t f = t.write_observer <- Some f
let set_delta_observer t f = t.delta_observer <- Some f

let cyl_of_lbn t lbn = lbn / Disk_params.frags_per_cyl t.params

let angle_of_lbn t lbn =
  let per_track = t.params.Disk_params.frags_per_track in
  float_of_int (lbn mod per_track) /. float_of_int per_track

let angle_at_time t time =
  let rot = Float.Array.get t.fl 6 in
  let frac = time /. rot in
  frac -. Float.of_int (int_of_float frac)

(* Cache-hit test: a read is served from the on-board cache when it
   extends one of the active sequential streams. *)
let stream_hit t lbn nfrags =
  List.exists
    (fun s -> lbn = s.next_lbn && lbn + nfrags <= s.limit)
    t.streams

let advance_stream t lbn nfrags =
  let matching = List.find_opt (fun s -> lbn = s.next_lbn) t.streams in
  let limit = min t.media (lbn + nfrags + t.params.Disk_params.prefetch_frags) in
  match matching with
  | Some s ->
    s.next_lbn <- lbn + nfrags;
    s.limit <- limit
  | None ->
    let s = { next_lbn = lbn + nfrags; limit } in
    let keep =
      if List.length t.streams >= t.params.Disk_params.cache_segments then
        match List.rev t.streams with
        | [] -> []
        | _oldest :: rest -> List.rev rest
      else t.streams
    in
    t.streams <- s :: keep

(* [Disk_params.seek_time] with the constant divisor cached: same
   operations in the same order, so the result is bit-identical. *)
let seek_time t distance =
  let p = t.params in
  if distance <= 0 then 0.0
  else if distance = 1 then p.Disk_params.seek_single
  else
    let frac = sqrt (float_of_int (distance - 1)) /. Float.Array.get t.fl 7 in
    p.Disk_params.seek_single
    +. ((p.Disk_params.seek_max -. p.Disk_params.seek_single) *. frac)

let mechanical_time t ~lbn ~nfrags ~now =
  let p = t.params in
  let rot = Float.Array.get t.fl 6 in
  let seek = seek_time t (abs (cyl_of_lbn t lbn - t.cur_cyl)) in
  let arrive = now +. p.Disk_params.overhead +. seek in
  let target = angle_of_lbn t lbn in
  let cur = angle_at_time t arrive in
  let wait =
    let d = target -. cur in
    if d < 0.0 then d +. 1.0 else d
  in
  let transfer =
    float_of_int nfrags /. float_of_int p.Disk_params.frags_per_track *. rot
  in
  Float.Array.set t.fl 1 (Float.Array.get t.fl 1 +. seek);
  Float.Array.set t.fl 2 (Float.Array.get t.fl 2 +. (wait *. rot));
  Float.Array.set t.fl 3 (Float.Array.get t.fl 3 +. transfer);
  Float.Array.set t.fl 4 (Float.Array.get t.fl 4 +. p.Disk_params.overhead);
  p.Disk_params.overhead +. seek +. (wait *. rot) +. transfer

let service_time_for t ~lbn ~nfrags ~op ~now =
  match op with
  | Read when stream_hit t lbn nfrags ->
    let p = t.params in
    let transfer =
      float_of_int nfrags
      /. float_of_int p.Disk_params.frags_per_track
      *. Float.Array.get t.fl 6
      /. 4.0
      (* cache-to-host burst is much faster than media rate *)
    in
    Float.Array.set t.fl 3 (Float.Array.get t.fl 3 +. transfer);
    Float.Array.set t.fl 4 (Float.Array.get t.fl 4 +. p.Disk_params.overhead);
    p.Disk_params.overhead +. transfer
  | Read | Write -> mechanical_time t ~lbn ~nfrags ~now

(* Electronic cost of moving [nfrags] into the NVRAM buffer. *)
let nvram_write_time t nfrags =
  t.params.Disk_params.overhead /. 2.0 +. (float_of_int nfrags *. 20e-6)

(* Destage one queued NVRAM extent at mechanical cost while the device
   is otherwise idle; foreground requests queue behind at most one
   destage operation. The data is already durable (the image was
   updated at acceptance), so destaging only frees buffer space. *)
let rec maybe_destage t =
  if (not t.busy) && not (Queue.is_empty t.nv_queue) then begin
    let d = Queue.pop t.nv_queue in
    let now = Su_sim.Engine.now t.engine in
    let svc = mechanical_time t ~lbn:d.d_lbn ~nfrags:d.d_nfrags ~now in
    t.busy <- true;
    t.p_destage <- d;
    Su_sim.Engine.after_handler t.engine svc t.destage_h 0
  end

and complete_destage t =
  let d = t.p_destage in
  t.busy <- false;
  t.cur_cyl <- cyl_of_lbn t (d.d_lbn + d.d_nfrags - 1);
  t.ndestages <- t.ndestages + 1;
  t.nv_used <- t.nv_used - d.d_nfrags;
  Hashtbl.remove t.nv_resident d.d_lbn;
  (* let queued foreground requests go first *)
  t.on_idle ();
  maybe_destage t

(* Land one contiguous *physical* run on the media and notify the
   observers. Observers always see physical addresses, so a recorded
   delta log materializes the physical image (spares and remap-table
   cell included) at any boundary. *)
let apply_phys_run t ~phys ~src ~len cells =
  let pre =
    match t.delta_observer with
    | Some _ when len > 0 ->
      Some (Array.init len (fun i -> Volume.read t.image (phys + i)))
    | Some _ | None -> None
  in
  for i = 0 to len - 1 do
    Volume.set t.image (phys + i) cells.(src + i)
  done;
  (match t.write_observer with
   | Some f when len > 0 ->
     f ~lbn:phys (Array.init len (fun i -> Types.copy_cell cells.(src + i)))
   | Some _ | None -> ());
  match t.delta_observer, pre with
  | Some f, Some pre ->
    f ~lbn:phys ~pre
      ~post:(Array.init len (fun i -> Types.copy_cell cells.(src + i)))
  | (Some _ | None), _ -> ()

let apply_write t ~lbn ~nfrags cells =
  if not (has_remaps t) then begin
    (* pre-images are captured before the blit so a delta observer can
       undo the write as well as replay it *)
    let pre =
      match t.delta_observer with
      | Some _ when nfrags > 0 ->
        Some (Array.init nfrags (fun i -> Volume.read t.image (lbn + i)))
      | Some _ | None -> None
    in
    for i = 0 to nfrags - 1 do
      Volume.set t.image (lbn + i) cells.(i)
    done;
    (* a write invalidates overlapping cached streams *)
    t.streams <-
      List.filter (fun s -> s.limit <= lbn || s.next_lbn >= lbn + nfrags) t.streams;
    (match t.write_observer with
     | Some f when nfrags > 0 ->
       f ~lbn (Array.init nfrags (fun i -> Types.copy_cell cells.(i)))
     | Some _ | None -> ());
    match t.delta_observer, pre with
    | Some f, Some pre ->
      f ~lbn ~pre
        ~post:(Array.init nfrags (fun i -> Types.copy_cell cells.(i)))
    | (Some _ | None), _ -> ()
  end
  else begin
    (* split the logical extent into contiguous physical runs (a
       remapped fragment redirects to its spare) and land each run
       separately; stream invalidation stays logical, since streams
       are keyed by the logical addresses reads present *)
    t.streams <-
      List.filter (fun s -> s.limit <= lbn || s.next_lbn >= lbn + nfrags)
        t.streams;
    let i = ref 0 in
    while !i < nfrags do
      let start = phys_of t (lbn + !i) in
      let len = ref 1 in
      while
        !i + !len < nfrags && phys_of t (lbn + !i + !len) = start + !len
      do
        incr len
      done;
      apply_phys_run t ~phys:start ~src:!i ~len:!len cells;
      i := !i + !len
    done
  end

(* Refresh the checksum region for [nfrags] payload cells acknowledged
   at logical [lbn] — the ack-time half of the end-to-end argument
   (see the [csum] field comment). *)
let ack_csums t ~lbn ~nfrags cells =
  match t.csum with
  | None -> ()
  | Some ca ->
    for i = 0 to nfrags - 1 do
      ca.(lbn + i) <- Types.cell_digest cells.(i)
    done

(* Completion of the stashed foreground operation: same sequence as
   the seed's per-submit closure, reading the [p_*] fields instead of
   captured variables. The fields are read out (and [p_on_done] and
   [p_payload] dropped) before [on_done] runs, because the callback
   routinely submits the next operation and re-fills them. *)
let complete_op t =
  let lbn = t.p_lbn and nfrags = t.p_nfrags and op = t.p_op in
  let payload = t.p_payload and verdict = t.p_verdict in
  let svc = Float.Array.get t.fl 5 in
  let nvram_hit = t.p_nvram_hit in
  let on_done = t.p_on_done in
  t.p_on_done <- no_done;
  t.p_payload <- None;
  t.busy <- false;
  t.inflight_payload <- None;
  if not nvram_hit then t.cur_cyl <- cyl_of_lbn t (lbn + nfrags - 1);
  t.serviced <- t.serviced + 1;
  Float.Array.set t.fl 0 (Float.Array.get t.fl 0 +. svc);
  match verdict with
  | Fault.Failed { err; applied } ->
    (* a torn write: only the leading [applied] fragments reached
       the media before the failure *)
    (match op, payload with
     | Write, Some cells when applied > 0 ->
       apply_write t ~lbn ~nfrags:applied cells;
       ack_csums t ~lbn ~nfrags:applied cells
     | _ -> ());
    on_done (Error err) svc;
    maybe_destage t
  | Fault.Silent s ->
    (* the device lies: the attempt reports success *)
    let result =
      match op, s with
      | Read, Fault.Flip_read { frag } ->
        advance_stream t lbn nfrags;
        let cells =
          Array.init nfrags (fun i -> Volume.read t.image (phys_of t (lbn + i)))
        in
        let i = frag - lbn in
        if i >= 0 && i < nfrags then
          cells.(i) <- Fault.corrupt t.fault cells.(i);
        Some cells
      | Write, Fault.Lost_write ->
        (* acknowledged, never applied: digests refresh, media stays *)
        (match payload with
         | Some cells -> ack_csums t ~lbn ~nfrags cells
         | None -> ());
        None
      | Write, Fault.Misdirect_write { target } ->
        (match payload with
         | Some cells ->
           ack_csums t ~lbn ~nfrags cells;
           (* the payload lands on the victim extent instead; the
              victim's digests are *not* refreshed (the device does
              not know it wrote there), so both sectors verify dirty *)
           let len = min nfrags (t.media - target) in
           if len > 0 then apply_write t ~lbn:target ~nfrags:len cells
         | None -> ());
        None
      | Read, (Fault.Lost_write | Fault.Misdirect_write _) ->
        advance_stream t lbn nfrags;
        Some
          (Array.init nfrags (fun i -> Volume.read t.image (phys_of t (lbn + i))))
      | Write, Fault.Flip_read _ ->
        (match payload with
         | Some cells ->
           if not nvram_hit then begin
             apply_write t ~lbn ~nfrags cells;
             ack_csums t ~lbn ~nfrags cells
           end;
           None
         | None -> None)
    in
    on_done (Ok result) svc;
    maybe_destage t
  | Fault.Ok_attempt | Fault.Stalled ->
    let result =
      match op with
      | Read ->
        advance_stream t lbn nfrags;
        if has_remaps t then
          Some
            (Array.init nfrags (fun i ->
                 Volume.read t.image (phys_of t (lbn + i))))
        else Some (Array.init nfrags (fun i -> Volume.read t.image (lbn + i)))
      | Write ->
        (match payload with
         | Some cells ->
           if not nvram_hit then apply_write t ~lbn ~nfrags cells;
           ack_csums t ~lbn ~nfrags cells;
           None
         | None -> None)
    in
    on_done (Ok result) svc;
    maybe_destage t

let submit t ~lbn ~nfrags ~op ~payload ~on_done =
  if t.busy then invalid_arg "Disk.submit: device busy";
  if nfrags <= 0 || lbn < 0 || lbn + nfrags > t.media then
    invalid_arg "Disk.submit: address out of range";
  (match op, payload with
   | Write, None -> invalid_arg "Disk.submit: write without payload"
   | Write, Some p when Array.length p <> nfrags ->
     invalid_arg "Disk.submit: payload length mismatch"
   | Write, Some _ | Read, _ -> ());
  let now = Su_sim.Engine.now t.engine in
  let is_write = match op with Write -> true | Read -> false in
  (* a write to an extent already buffered coalesces in place: no new
     space, no extra destage (the destage writes the latest contents) *)
  let nvram_coalesce =
    is_write && t.nvram_frags > 0
    && (match Hashtbl.find_opt t.nv_resident lbn with
        | Some n -> n = nfrags
        | None -> false)
  in
  let nvram_hit =
    nvram_coalesce
    || (is_write && t.nvram_frags > 0 && t.nv_used + nfrags <= t.nvram_frags)
  in
  (* the fault model only covers media operations; an NVRAM-accepted
     write is a RAM copy and cannot fail or tear *)
  let verdict =
    if nvram_hit then Fault.Ok_attempt
    else if has_remaps t then
      Fault.judge t.fault ~phys:(phys_of t) ~media:t.media
        ~op:(match op with Read -> `Read | Write -> `Write)
        ~lbn ~nfrags ()
    else
      Fault.judge t.fault ~media:t.media
        ~op:(match op with Read -> `Read | Write -> `Write)
        ~lbn ~nfrags ()
  in
  let svc =
    if nvram_hit then nvram_write_time t nfrags
    else
      let base = service_time_for t ~lbn ~nfrags ~op ~now in
      match verdict with
      | Fault.Stalled -> base *. (Fault.config t.fault).Fault.stall_factor
      | Fault.Ok_attempt | Fault.Failed _ | Fault.Silent _ -> base
  in
  t.busy <- true;
  if nvram_hit then begin
    (* durable on acceptance: NVRAM survives a crash *)
    (match payload with
     | Some cells -> apply_write t ~lbn ~nfrags cells
     | None -> ());
    if not nvram_coalesce then begin
      t.nv_used <- t.nv_used + nfrags;
      Hashtbl.replace t.nv_resident lbn nfrags;
      Queue.add { d_lbn = lbn; d_nfrags = nfrags } t.nv_queue
    end
  end
  else if is_write then begin
    t.inflight_lbn <- lbn;
    t.inflight_payload <- payload
  end;
  t.p_lbn <- lbn;
  t.p_nfrags <- nfrags;
  t.p_op <- op;
  t.p_payload <- payload;
  t.p_verdict <- verdict;
  Float.Array.set t.fl 5 svc;
  t.p_nvram_hit <- nvram_hit;
  t.p_on_done <- on_done;
  Su_sim.Engine.after_handler t.engine svc t.done_h 0

let create ~engine ~params ~nfrags ?(nvram_frags = 0) ?(fault = Fault.none)
    ?(spare_frags = 0) ?(checksums = false) () =
  if nfrags > Disk_params.capacity_frags params then
    invalid_arg "Disk.create: file system larger than the drive";
  if spare_frags < 0 then invalid_arg "Disk.create: negative spare pool";
  (* spares (and the remap-table cell) live past the addressable
     media; the checksum region takes one more reserved cell past the
     spares *)
  let extra_remap = if spare_frags > 0 then spare_frags + 1 else 0 in
  let extra = extra_remap + if checksums then 1 else 0 in
  let csum_slot = nfrags + extra_remap in
  let csum =
    if checksums then
      Some (Array.make nfrags (Types.cell_digest Types.Empty))
    else None
  in
  let t =
    {
      engine;
      params;
      fault = Fault.create fault;
      image = Volume.create (nfrags + extra);
      media = nfrags;
      csum;
      csum_slot;
      remap =
        (if spare_frags > 0 then
           Some (Remap.create ~media:nfrags ~nspares:spare_frags)
         else None);
      nremaps = 0;
      cur_cyl = 0;
      busy = false;
      streams = [];
      serviced = 0;
      fl = Float.Array.make 8 0.0;
      nvram_frags;
      nv_used = 0;
      nv_queue = Queue.create ();
      nv_resident = Hashtbl.create 64;
      ndestages = 0;
      on_idle = (fun () -> ());
      inflight_lbn = -1;
      inflight_payload = None;
      write_observer = None;
      delta_observer = None;
      done_h = Su_sim.Engine.null;
      destage_h = Su_sim.Engine.null;
      p_lbn = 0;
      p_nfrags = 0;
      p_op = Read;
      p_payload = None;
      p_verdict = Fault.Ok_attempt;
      p_nvram_hit = false;
      p_on_done = no_done;
      p_destage = { d_lbn = 0; d_nfrags = 0 };
    }
  in
  Float.Array.set t.fl 6 (Disk_params.rotation_time params);
  Float.Array.set t.fl 7
    (sqrt (float_of_int (params.Disk_params.cylinders - 2)));
  t.done_h <- Su_sim.Engine.register engine (fun _ -> complete_op t);
  t.destage_h <- Su_sim.Engine.register engine (fun _ -> complete_destage t);
  (* boxed as-is in the volume, so [t.csum] keeps aliasing the stored
     cell exactly as the legacy cell-array image did *)
  (match csum with
   | Some ca -> Volume.set t.image csum_slot (Types.Csum ca)
   | None -> ());
  t

let install t lbn cell =
  if lbn < 0 || lbn >= Volume.length t.image then
    invalid_arg "Disk.install: address out of range";
  let phys = if lbn < t.media then phys_of t lbn else lbn in
  Volume.set t.image phys cell;
  match t.csum with
  | Some ca when lbn < t.media -> ca.(lbn) <- Types.cell_digest cell
  | Some _ | None -> ()

(* Load a persisted checksum region (a [Types.Csum] cell from a prior
   incarnation's image) over the live one, replacing the digests
   [install] computed from the installed cells — corruption that
   predates the mount therefore stays detectable. *)
let install_csum t cell =
  match t.csum, cell with
  | Some ca, Types.Csum src ->
    Array.blit src 0 ca 0 (min (Array.length src) (Array.length ca))
  | (Some _ | None), _ -> ()

let peek t lbn =
  if lbn < 0 || lbn >= Volume.length t.image then
    invalid_arg "Disk.peek: address out of range";
  if lbn < t.media then Volume.peek t.image (phys_of t lbn)
  else Volume.peek t.image lbn

let frag_digest t lbn =
  if lbn < 0 || lbn >= Volume.length t.image then
    invalid_arg "Disk.frag_digest: address out of range";
  if lbn < t.media then Volume.digest t.image (phys_of t lbn)
  else Volume.digest t.image lbn

let image_snapshot t = Volume.snapshot t.image

let image_stats t = Volume.stats t.image

(* --- bad-sector remapping --------------------------------------------- *)

(* The remap table is persisted as an ordinary observed write of its
   reserved cell, so crash-materialized images carry it and
   [reload_remap] finds it at mount. *)
let persist_remap t r =
  let slot = Remap.table_slot r in
  let cell = Remap.cell r in
  let pre =
    match t.delta_observer with
    | Some _ -> Some [| Volume.read t.image slot |]
    | None -> None
  in
  Volume.set t.image slot cell;
  (match t.write_observer with
   | Some f -> f ~lbn:slot [| Types.copy_cell cell |]
   | None -> ());
  match t.delta_observer, pre with
  | Some f, Some pre -> f ~lbn:slot ~pre ~post:[| Types.copy_cell cell |]
  | (Some _ | None), _ -> ()

let try_remap t ~lbn =
  match t.remap with
  | None -> false
  | Some r ->
    if lbn < 0 || lbn >= t.media then false
    else (
      match Remap.remap r lbn with
      | None -> false (* spare pool exhausted *)
      | Some _phys ->
        t.nremaps <- t.nremaps + 1;
        persist_remap t r;
        true)

let reload_remap t =
  match t.remap with
  | None -> ()
  | Some r -> Remap.load r (Volume.peek t.image (Remap.table_slot r))

let resolve_image cells ~nfrags =
  if Array.length cells <= nfrags then Array.map Types.copy_cell cells
  else begin
    let logical = Array.init nfrags (fun i -> Types.copy_cell cells.(i)) in
    (match cells.(nfrags) with
     | Types.Rmap entries ->
       List.iter
         (fun (lbn, phys) ->
            if lbn >= 0 && lbn < nfrags && phys < Array.length cells then
              logical.(lbn) <- Types.copy_cell cells.(phys))
         entries
     | _ -> ());
    (* carry the checksum region (wherever past the media it lives)
       into the logical image, right after the media: checkers of a
       rebuilt replacement drive keep end-to-end verification *)
    let rec find_csum i =
      if i >= Array.length cells then None
      else
        match cells.(i) with
        | Types.Csum _ as c -> Some (Types.copy_cell c)
        | _ -> find_csum (i + 1)
    in
    match find_csum nfrags with
    | Some c -> Array.append logical [| c |]
    | None -> logical
  end

(* Same construction as [resolve_image], reading the volume directly
   (decoded copies) instead of snapshotting the whole physical image
   first. *)
let logical_snapshot t =
  let total = Volume.length t.image in
  if total <= t.media then Array.init total (fun i -> Volume.read t.image i)
  else begin
    let logical = Array.init t.media (fun i -> Volume.read t.image i) in
    (match Volume.peek t.image t.media with
     | Types.Rmap entries ->
       List.iter
         (fun (lbn, phys) ->
            if lbn >= 0 && lbn < t.media && phys < total then
              logical.(lbn) <- Volume.read t.image phys)
         entries
     | _ -> ());
    let rec find_csum i =
      if i >= total then None
      else
        match Volume.peek t.image i with
        | Types.Csum _ -> Some (Volume.read t.image i)
        | _ -> find_csum (i + 1)
    in
    match find_csum t.media with
    | Some c -> Array.append logical [| c |]
    | None -> logical
  end
