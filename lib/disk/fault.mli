(** Pluggable, PRNG-seeded fault model for the simulated disk.

    The seed state assumed a perfect device: every request succeeds
    and a crashed multi-fragment write is all-or-nothing. This module
    injects the failures a real drive exhibits —

    - {e transient} read/write errors (a retry usually succeeds),
    - {e permanent} bad sectors (every access to the fragment fails),
    - {e stalls} (the attempt completes, but at a large multiple of
      the normal service time, tripping the driver's request timeout),
    - {e torn writes}: a failed or crashed multi-fragment write
      applies only a prefix of its fragments to the media. This is
      deliberately {e stronger} than the paper's sector-atomicity
      assumption, which loses an in-flight request in its entirety;
      see DESIGN.md §7.
    - {e silent} faults, which report success: bit rot on the read
      path ({!silent.Flip_read}), writes acknowledged but never
      applied ({!silent.Lost_write}), and writes applied to the wrong
      sector ({!silent.Misdirect_write}). The device never detects
      these — only an end-to-end checksum layer can.

    All randomness is drawn from a private {!Su_util.Rng} stream, so a
    given [config] replays identically. *)

(** Typed I/O errors, shared by the disk, driver and cache layers.
    [Timeout] is never produced by the device itself: the driver
    raises it when a (possibly stalled) attempt exceeds its
    per-request deadline. [Checksum] is likewise never produced by the
    device — the integrity layer raises it when a verified read
    mismatches and every rung of the repair ladder has failed. *)
type error =
  | Transient of { op : [ `Read | `Write ]; lbn : int }
  | Bad_sector of { lbn : int }
  | Timeout of { elapsed : float; limit : float }
  | Checksum of { lbn : int }

val error_to_string : error -> string
val pp_error : Format.formatter -> error -> unit

(** One injected silent fault. [Flip_read.frag] is the (logical)
    fragment whose returned copy is corrupted; [Misdirect_write.target]
    the sector the payload lands on instead of its destination. *)
type silent =
  | Flip_read of { frag : int }
  | Lost_write
  | Misdirect_write of { target : int }

val silent_name : silent -> string
(** ["flip"], ["lost"] or ["misdirect"]. *)

type config = {
  seed : int;
  read_fail : float;  (** probability a read attempt fails transiently *)
  write_fail : float;  (** probability a write attempt fails transiently *)
  stall : float;  (** probability an attempt stalls *)
  stall_factor : float;  (** service-time multiplier for a stalled attempt *)
  bad_sectors : int list;  (** fragments that fail permanently *)
  torn_writes : bool;
      (** failed multi-fragment writes apply a random prefix of their
          fragments instead of nothing *)
  flip_read : float;
      (** probability a read attempt silently returns corrupted data *)
  lost_write : float;
      (** probability a write attempt is acknowledged but not applied *)
  misdirect_write : float;
      (** probability a write attempt lands on a random wrong sector *)
  flip_at : int list;
      (** one-shot targeted injection: the first read touching each
          listed sector returns it corrupted *)
  lose_at : int list;
      (** one-shot: the first write touching each listed sector is lost *)
  misdirect_at : (int * int) list;
      (** one-shot [(sector, target)]: the first write touching
          [sector] lands at [target] instead *)
}

val none : config
(** The perfect device: zero probabilities, no bad sectors, no
    targeted injections. A disk created with [none] behaves
    bit-identically to the seed model (no RNG is consulted). *)

val transient : ?seed:int -> ?rate:float -> unit -> config
(** Transient read/write errors at [rate] (default 0.02) per attempt,
    plus occasional stalls; torn writes enabled, silent classes off.
    The standard configuration for "workloads must complete via driver
    retry". *)

type t

val create : config -> t
val config : t -> config

val enabled : t -> bool
(** False for {!none}-equivalent configs: the disk skips the model
    entirely (and draws no random numbers). *)

(** Verdict for one device attempt. [applied] is the number of leading
    fragments a failed write still managed to put on the media (0 when
    torn writes are disabled; always 0 for reads). [Silent] attempts
    report success to the driver; the carried {!silent} tells the disk
    how to lie. *)
type verdict =
  | Ok_attempt
  | Stalled
  | Failed of { err : error; applied : int }
  | Silent of silent

val judge :
  t -> ?phys:(int -> int) -> ?media:int -> op:[ `Read | `Write ] -> lbn:int ->
  nfrags:int -> unit -> verdict
(** [phys] (default identity) translates logical to physical
    addresses before the bad-sector table is consulted, so a remapped
    fragment escapes its old bad sector; the reported
    [Bad_sector.lbn] and torn-write prefix remain logical. [media]
    (addressable fragments) bounds the victim draw for random
    misdirected writes; when absent they degrade to lost writes.
    Targeted one-shot injections are consulted first and draw no
    random numbers; the probabilistic silent classes draw extra
    numbers only when their rates are nonzero, so seeded replays of
    fail-stop-only configurations are bit-identical to before the
    silent model existed. *)

val injected : t -> int
(** Total faults (failures + stalls + silent) injected so far. *)

val silent_injected : t -> int
(** Silent faults injected so far (included in {!injected}). *)

val corrupt_cell :
  Su_util.Rng.t -> Su_fstypes.Types.cell -> Su_fstypes.Types.cell
(** A structurally valid cell that digests differently from the input
    — "one flipped bit" at the typed-cell level. Never aliases the
    input's mutable structure. *)

val corrupt : t -> Su_fstypes.Types.cell -> Su_fstypes.Types.cell
(** {!corrupt_cell} drawing from the model's own RNG stream. *)
