(** Pluggable, PRNG-seeded fault model for the simulated disk.

    The seed state assumed a perfect device: every request succeeds
    and a crashed multi-fragment write is all-or-nothing. This module
    injects the failures a real drive exhibits —

    - {e transient} read/write errors (a retry usually succeeds),
    - {e permanent} bad sectors (every access to the fragment fails),
    - {e stalls} (the attempt completes, but at a large multiple of
      the normal service time, tripping the driver's request timeout),
    - {e torn writes}: a failed or crashed multi-fragment write
      applies only a prefix of its fragments to the media. This is
      deliberately {e stronger} than the paper's sector-atomicity
      assumption, which loses an in-flight request in its entirety;
      see DESIGN.md §7.

    All randomness is drawn from a private {!Su_util.Rng} stream, so a
    given [config] replays identically. *)

(** Typed I/O errors, shared by the disk, driver and cache layers.
    [Timeout] is never produced by the device itself: the driver
    raises it when a (possibly stalled) attempt exceeds its
    per-request deadline. *)
type error =
  | Transient of { op : [ `Read | `Write ]; lbn : int }
  | Bad_sector of { lbn : int }
  | Timeout of { elapsed : float; limit : float }

val error_to_string : error -> string
val pp_error : Format.formatter -> error -> unit

type config = {
  seed : int;
  read_fail : float;  (** probability a read attempt fails transiently *)
  write_fail : float;  (** probability a write attempt fails transiently *)
  stall : float;  (** probability an attempt stalls *)
  stall_factor : float;  (** service-time multiplier for a stalled attempt *)
  bad_sectors : int list;  (** fragments that fail permanently *)
  torn_writes : bool;
      (** failed multi-fragment writes apply a random prefix of their
          fragments instead of nothing *)
}

val none : config
(** The perfect device: zero probabilities, no bad sectors. A disk
    created with [none] behaves bit-identically to the seed model (no
    RNG is consulted). *)

val transient : ?seed:int -> ?rate:float -> unit -> config
(** Transient read/write errors at [rate] (default 0.02) per attempt,
    plus occasional stalls; torn writes enabled. The standard
    configuration for "workloads must complete via driver retry". *)

type t

val create : config -> t
val config : t -> config

val enabled : t -> bool
(** False for {!none}-equivalent configs: the disk skips the model
    entirely (and draws no random numbers). *)

(** Verdict for one device attempt. [applied] is the number of leading
    fragments a failed write still managed to put on the media (0 when
    torn writes are disabled; always 0 for reads). *)
type verdict =
  | Ok_attempt
  | Stalled
  | Failed of { err : error; applied : int }

val judge :
  t -> ?phys:(int -> int) -> op:[ `Read | `Write ] -> lbn:int -> nfrags:int ->
  unit -> verdict
(** [phys] (default identity) translates logical to physical
    addresses before the bad-sector table is consulted, so a remapped
    fragment escapes its old bad sector; the reported
    [Bad_sector.lbn] and torn-write prefix remain logical. *)

val injected : t -> int
(** Total faults (failures + stalls) injected so far. *)
