open Su_sim
open Su_fs

(* Systematic silent-corruption campaign (the integrity analogue of
   {!Faultsweep}). One fault-free recording run splits the sectors a
   workload touches into read-touched and write-touched sets; the
   sweep then re-runs the workload — checksums on — once per touched
   sector per silent-fault class (bit-flipped read on a read-touched
   sector; lost or misdirected write on a write-touched one), and
   asserts detect-and-repair or fail-clean: either every operation
   completes, the final image fscks clean {e and} matches the caller's
   model oracle bit-for-bit (the fault was detected and healed), or
   the run stops with a typed error and the surviving state repairs,
   remounts and stays clean. A fault that slips through to a diverged
   Completed image — a {e silent escape} — is always a violation, as
   is an untyped exception or a hang. *)

type silent_class = Flip | Lost | Misdirect

let class_name = function
  | Flip -> "flip"
  | Lost -> "lost"
  | Misdirect -> "misdirect"

(* --- touched-sector discovery ---------------------------------------- *)

(* Run the workload once, fault-free with checksums on (the sweep's
   configuration, so the access pattern is the injected runs'), and
   split the union of request extents by direction. Both ascending,
   so the injection plan — and the sweep output — is deterministic. *)
let touched_sectors ~cfg wl =
  let cfg =
    { cfg with
      Fs.fault = Su_disk.Fault.none;
      checksums = true;
      keep_trace_records = true }
  in
  let w = Fs.make cfg in
  let controller () =
    let h =
      Proc.spawn w.Fs.engine ~name:"workload" (fun () ->
          wl.Explorer.wl_run w.Fs.st)
    in
    Proc.join_all w.Fs.engine [ h ];
    Fs.stop w;
    Su_driver.Driver.quiesce w.Fs.driver;
    Engine.stop w.Fs.engine
  in
  ignore (Proc.spawn w.Fs.engine ~name:"controller" controller);
  Engine.run w.Fs.engine;
  let reads = Hashtbl.create 1024 and writes = Hashtbl.create 1024 in
  List.iter
    (fun r ->
      let tbl =
        match r.Su_driver.Trace.r_kind with
        | Su_driver.Request.Read -> reads
        | Su_driver.Request.Write -> writes
      in
      for i = 0 to r.Su_driver.Trace.r_nfrags - 1 do
        Hashtbl.replace tbl (r.Su_driver.Trace.r_lbn + i) ()
      done)
    (Su_driver.Trace.records (Su_driver.Driver.trace w.Fs.driver));
  let sorted tbl =
    Array.of_list
      (List.sort compare (Hashtbl.fold (fun s () acc -> s :: acc) tbl []))
  in
  (sorted reads, sorted writes)

(* The injection plan: one flip per read-touched sector, one lost and
   one misdirected write per write-touched sector. A misdirection
   needs a victim; the next write-touched sector (wrapping) is chosen
   so the clobbered fragment is one the file system demonstrably
   cares about. Sectors with no distinct victim fall back to Lost. *)
type injection = { inj_class : silent_class; inj_sector : int; inj_victim : int }

let plan ~reads ~writes =
  let flips =
    Array.to_list
      (Array.map
         (fun s -> { inj_class = Flip; inj_sector = s; inj_victim = -1 })
         reads)
  in
  let n = Array.length writes in
  let lost =
    Array.to_list
      (Array.map
         (fun s -> { inj_class = Lost; inj_sector = s; inj_victim = -1 })
         writes)
  in
  let misdirect =
    Array.to_list
      (Array.mapi
         (fun i s ->
           let victim = if n > 1 then writes.((i + 1) mod n) else -1 in
           if victim < 0 then { inj_class = Lost; inj_sector = s; inj_victim = -1 }
           else { inj_class = Misdirect; inj_sector = s; inj_victim = victim })
         writes)
  in
  Array.of_list (flips @ lost @ misdirect)

(* --- one run under one injected silent fault -------------------------- *)

type outcome =
  | Completed  (** every operation finished; detection/repair absorbed it *)
  | Failed_typed of string
      (** the run stopped with a typed error (Eio / Erofs / Io_error /
          Mount_failure) — legal iff the surviving state is clean *)
  | Escaped of string
      (** an untyped exception or a hang: always a violation *)

let outcome_name = function
  | Completed -> "completed"
  | Failed_typed _ -> "failed-typed"
  | Escaped _ -> "escaped"

type verdict = {
  cv_sector : int;
  cv_class : silent_class;
  cv_victim : int;  (** misdirection victim, [-1] otherwise *)
  cv_outcome : outcome;
  cv_injected : bool;  (** the one-shot fault actually fired *)
  cv_detected : int;  (** checksum mismatches the run observed *)
  cv_repaired : int;  (** fragments the online ladder healed *)
  cv_pre_violations : int;  (** fsck violations before repair *)
  cv_repair_converged : bool;
  cv_post_violations : int;  (** violations surviving repair *)
  cv_remount_ok : bool;  (** repaired image remounted, ran on, stayed clean *)
  cv_divergences : int;  (** model-oracle mismatches on the final image *)
}

(* Detect-and-repair or fail-clean, per verdict. A completed run must
   leave nothing to repair and agree with the model (the injection
   must also have fired — a plan entry that never triggers would make
   the campaign vacuous); a typed failure may lose data but must
   leave a repairable, remountable volume; an escape never passes. *)
let cv_clean v =
  match v.cv_outcome with
  | Completed ->
    v.cv_injected && v.cv_pre_violations = 0 && v.cv_divergences = 0
    && v.cv_remount_ok
  | Failed_typed _ ->
    v.cv_repair_converged && v.cv_post_violations = 0 && v.cv_remount_ok
  | Escaped _ -> false

(* A Completed verdict whose image diverged from the model: the
   corruption went fully undetected. The summary counts these
   separately — they are the one thing checksums exist to prevent. *)
let cv_silent_escape v =
  match v.cv_outcome with
  | Completed -> v.cv_injected && v.cv_divergences > 0
  | Failed_typed _ | Escaped _ -> false

let check_exposure_of cfg =
  match cfg.Fs.scheme with
  | Fs.Journaled _ -> false
  | Fs.Conventional | Fs.Scheduler_flag | Fs.Scheduler_chains _
  | Fs.Soft_updates | Fs.No_order ->
    cfg.Fs.alloc_init

let typed_failure = function
  | Fsops.Eio msg -> Some ("Eio: " ^ msg)
  | Fsops.Erofs msg -> Some ("Erofs: " ^ msg)
  | Su_cache.Bcache.Io_error e ->
    Some ("Io_error: " ^ Su_disk.Fault.error_to_string e)
  | Fs.Mount_failure msg -> Some ("Mount_failure: " ^ msg)
  | _ -> None

(* Remount the repaired logical image — checksums still on, so every
   probe read re-verifies — and keep living in it. *)
let remount_and_continue ~cfg image =
  let cfg =
    { cfg with
      Fs.fault = Su_disk.Fault.none;
      spare_frags = 0;
      scrub_interval = 0.0 }
  in
  try
    let w = Fs.mount_image cfg image in
    let done_ = ref false in
    let controller () =
      let d = "/corruptsweep.d" in
      Fsops.mkdir w.Fs.st d;
      Fsops.create w.Fs.st (d ^ "/probe");
      Fsops.append w.Fs.st (d ^ "/probe") ~bytes:3072;
      Fsops.rename w.Fs.st ~src:(d ^ "/probe") ~dst:(d ^ "/probe2");
      Fsops.sync w.Fs.st;
      Fs.stop w;
      Su_driver.Driver.quiesce w.Fs.driver;
      done_ := true;
      Engine.stop w.Fs.engine
    in
    ignore (Proc.spawn w.Fs.engine ~name:"continue" controller);
    Engine.run w.Fs.engine;
    !done_
    &&
    let final = Su_disk.Disk.image_snapshot w.Fs.disk in
    Fs.recover_image cfg final;
    Fsck.ok
      (Fsck.check ~geom:cfg.Fs.geom ~image:final
         ~check_exposure:(check_exposure_of cfg))
  with _ -> false

let fault_of_injection inj =
  match inj.inj_class with
  | Flip -> { Su_disk.Fault.none with flip_at = [ inj.inj_sector ] }
  | Lost -> { Su_disk.Fault.none with lose_at = [ inj.inj_sector ] }
  | Misdirect ->
    { Su_disk.Fault.none with
      misdirect_at = [ (inj.inj_sector, inj.inj_victim) ] }

let run_one ~cfg ~spares ~oracle wl inj =
  let run_cfg =
    { cfg with
      Fs.fault = fault_of_injection inj;
      checksums = true;
      spare_frags = spares;
      keep_trace_records = false }
  in
  let w = Fs.make run_cfg in
  let outcome = ref (Escaped "hang: event queue drained mid-run") in
  let controller () =
    (try
       wl.Explorer.wl_run w.Fs.st;
       (* the workload ended in a sync; a lost or misdirected write
          the foreground never re-read is still latent on the media —
          surface it now, while the cache's clean copies are alive to
          repair from *)
       let unrepaired =
         match w.Fs.integrity with
         | Some integ -> Integrity.full_verify integ
         | None -> 0
       in
       if unrepaired > 0 then
         outcome :=
           Failed_typed
             (Printf.sprintf "integrity: %d fragment(s) unrecoverable"
                unrepaired)
       else outcome := Completed
     with e ->
       (match typed_failure e with
        | Some msg -> outcome := Failed_typed msg
        | None -> outcome := Escaped (Printexc.to_string e)));
    (try
       Fs.stop w;
       Su_driver.Driver.quiesce w.Fs.driver
     with e -> if typed_failure e = None then raise e);
    Engine.stop w.Fs.engine
  in
  ignore (Proc.spawn w.Fs.engine ~name:"controller" controller);
  (try Engine.run w.Fs.engine
   with Proc.Process_failure (_, e) ->
     outcome :=
       (match typed_failure e with
        | Some msg -> Failed_typed msg
        | None -> Escaped (Printexc.to_string e)));
  let detected, repaired =
    match w.Fs.integrity with
    | Some i -> (Integrity.mismatches i, Integrity.repaired i)
    | None -> (0, 0)
  in
  let image = Su_disk.Disk.logical_snapshot w.Fs.disk in
  Fs.recover_image run_cfg image;
  let check_exposure = check_exposure_of run_cfg in
  let pre = Fsck.check ~geom:run_cfg.Fs.geom ~image ~check_exposure in
  let outcome_v = !outcome in
  let repaired_img, converged, post =
    match outcome_v with
    | Completed -> (image, true, List.length pre.Fsck.violations)
    | Failed_typed _ | Escaped _ ->
      let o = Fsck.repair ~geom:run_cfg.Fs.geom ~image ~check_exposure () in
      (image, o.Fsck.converged, List.length o.Fsck.final.Fsck.violations)
  in
  let divergences =
    (* the oracle only constrains runs that claim success *)
    match outcome_v with
    | Completed -> List.length (oracle repaired_img)
    | Failed_typed _ | Escaped _ -> 0
  in
  let remount_ok =
    match outcome_v with
    | Escaped _ -> false
    | Completed | Failed_typed _ -> remount_and_continue ~cfg:run_cfg repaired_img
  in
  {
    cv_sector = inj.inj_sector;
    cv_class = inj.inj_class;
    cv_victim = inj.inj_victim;
    cv_outcome = outcome_v;
    cv_injected = Su_disk.Disk.silent_faults w.Fs.disk > 0;
    cv_detected = detected;
    cv_repaired = repaired;
    cv_pre_violations = List.length pre.Fsck.violations;
    cv_repair_converged = converged;
    cv_post_violations = post;
    cv_remount_ok = remount_ok;
    cv_divergences = divergences;
  }

(* --- the campaign ----------------------------------------------------- *)

type summary = {
  cs_scheme : Fs.scheme_kind;
  cs_workload : string;
  cs_read_sectors : int;  (** distinct read-touched sectors *)
  cs_write_sectors : int;  (** distinct write-touched sectors *)
  cs_planned : int;  (** injections in the full plan *)
  cs_swept : int;  (** injections actually run (caps, fail-fast) *)
  cs_completed : int;
  cs_failed_typed : int;
  cs_escaped : int;
  cs_detected : int;  (** checksum mismatches observed across runs *)
  cs_repaired : int;  (** fragments healed online across runs *)
  cs_silent_escapes : int;  (** Completed-but-diverged verdicts *)
  cs_violations : int;  (** verdicts breaking detect-or-fail-clean *)
  cs_verdicts : verdict list;  (** per-injection detail, plan order *)
}

let ok s = s.cs_escaped = 0 && s.cs_silent_escapes = 0 && s.cs_violations = 0

(* Fixed fail-fast chunk (never derived from [jobs]) so the verdict
   list — and any digest of it — is identical at any [--jobs] value. *)
let fail_fast_chunk = 8

let summarize ~cfg ~workload ~reads ~writes ~planned verdicts =
  let count p = List.length (List.filter p verdicts) in
  {
    cs_scheme = cfg.Fs.scheme;
    cs_workload = workload;
    cs_read_sectors = reads;
    cs_write_sectors = writes;
    cs_planned = planned;
    cs_swept = List.length verdicts;
    cs_completed = count (fun v -> v.cv_outcome = Completed);
    cs_failed_typed =
      count (fun v ->
          match v.cv_outcome with Failed_typed _ -> true | _ -> false);
    cs_escaped =
      count (fun v -> match v.cv_outcome with Escaped _ -> true | _ -> false);
    cs_detected = List.fold_left (fun a v -> a + v.cv_detected) 0 verdicts;
    cs_repaired = List.fold_left (fun a v -> a + v.cv_repaired) 0 verdicts;
    cs_silent_escapes = count cv_silent_escape;
    cs_violations = count (fun v -> not (cv_clean v));
    cs_verdicts = verdicts;
  }

let sweep ?(jobs = 1) ?(spares = 64) ?max_injections ?(fail_fast = false) ~cfg
    ~oracle wl =
  let reads, writes = touched_sectors ~cfg wl in
  let injections = plan ~reads ~writes in
  let planned = Array.length injections in
  let last =
    match max_injections with
    | Some m -> min (max m 0) planned
    | None -> planned
  in
  let verdicts =
    if not fail_fast then
      Array.to_list
        (Su_util.Pool.map ~jobs last (fun i ->
             run_one ~cfg ~spares ~oracle wl injections.(i)))
    else begin
      let acc = ref [] and stop = ref false and start = ref 0 in
      while (not !stop) && !start < last do
        let n = min fail_fast_chunk (last - !start) in
        let base = !start in
        let chunk =
          Su_util.Pool.map ~jobs n (fun i ->
              run_one ~cfg ~spares ~oracle wl injections.(base + i))
        in
        Array.iter
          (fun v ->
            if not !stop then begin
              acc := v :: !acc;
              if not (cv_clean v) then stop := true
            end)
          chunk;
        start := base + n
      done;
      List.rev !acc
    end
  in
  summarize ~cfg ~workload:wl.Explorer.wl_name ~reads:(Array.length reads)
    ~writes:(Array.length writes) ~planned verdicts
