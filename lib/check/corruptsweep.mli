(** Systematic silent-corruption campaign: inject every silent-fault
    class on every sector a workload touches — checksums on — and
    demand detect-and-repair or fail-clean.

    The integrity analogue of {!Faultsweep}. One fault-free recording
    run splits the workload's touched sectors into read-touched and
    write-touched sets; the sweep re-runs the workload once per
    (sector, class) pair — a bit-flipped read on each read-touched
    sector, a lost and a misdirected write on each write-touched one —
    and checks every run against a three-way contract:

    - {b Completed}: the fault fired, the final image fscks clean,
      matches the caller's model oracle, and remounts — the corruption
      was detected and healed (or was provably benign).
    - {b Failed_typed}: the run stopped with a typed error; data loss
      is legal but the surviving volume must fsck-repair to zero
      violations, remount (checksums still verifying) and stay clean.
    - {b Escaped}: an untyped exception or a hang — always a
      violation. A Completed run whose image {e diverges} from the
      model is a {e silent escape}, the one thing checksums exist to
      prevent; the summary counts these separately.

    Verdict lists are byte-identical at any [jobs] value (merge by
    index; fixed fail-fast chunk). *)

type silent_class = Flip | Lost | Misdirect

val class_name : silent_class -> string

val touched_sectors :
  cfg:Su_fs.Fs.config -> Explorer.workload -> int array * int array
(** [(read_touched, write_touched)], each ascending: the distinct
    sectors the workload's reads / writes cover on a fault-free run
    with checksums on. *)

type injection = {
  inj_class : silent_class;
  inj_sector : int;
  inj_victim : int;  (** misdirection victim sector, [-1] otherwise *)
}

val plan : reads:int array -> writes:int array -> injection array
(** The deterministic injection plan: flips over [reads], lost and
    misdirected writes over [writes] (victim = next write-touched
    sector, wrapping; no distinct victim degrades to lost). *)

type outcome =
  | Completed
  | Failed_typed of string
  | Escaped of string

val outcome_name : outcome -> string

type verdict = {
  cv_sector : int;
  cv_class : silent_class;
  cv_victim : int;
  cv_outcome : outcome;
  cv_injected : bool;  (** the one-shot fault actually fired *)
  cv_detected : int;  (** checksum mismatches the run observed *)
  cv_repaired : int;  (** fragments the online ladder healed *)
  cv_pre_violations : int;
  cv_repair_converged : bool;
  cv_post_violations : int;
  cv_remount_ok : bool;
  cv_divergences : int;  (** model-oracle mismatches (Completed runs) *)
}

val cv_clean : verdict -> bool
(** The per-verdict contract above. *)

val cv_silent_escape : verdict -> bool
(** Completed, injected, but diverged from the model. *)

val run_one :
  cfg:Su_fs.Fs.config ->
  spares:int ->
  oracle:(Su_fstypes.Types.cell array -> string list) ->
  Explorer.workload ->
  injection ->
  verdict
(** One workload run under one injected silent fault, checksums on.
    After the workload's final sync, {!Su_fs.Integrity.full_verify}
    surfaces still-latent corruption (an unrepairable residue turns
    the run [Failed_typed]). [oracle] receives the final recovered
    logical image of Completed runs and returns divergence
    descriptions ([[]] = the image matches the model). *)

type summary = {
  cs_scheme : Su_fs.Fs.scheme_kind;
  cs_workload : string;
  cs_read_sectors : int;
  cs_write_sectors : int;
  cs_planned : int;
  cs_swept : int;
  cs_completed : int;
  cs_failed_typed : int;
  cs_escaped : int;
  cs_detected : int;
  cs_repaired : int;
  cs_silent_escapes : int;
  cs_violations : int;
  cs_verdicts : verdict list;
}

val ok : summary -> bool
(** No escapes, no silent escapes, no contract violations. *)

val sweep :
  ?jobs:int ->
  ?spares:int ->
  ?max_injections:int ->
  ?fail_fast:bool ->
  cfg:Su_fs.Fs.config ->
  oracle:(Su_fstypes.Types.cell array -> string list) ->
  Explorer.workload ->
  summary
(** The full campaign. [jobs] only parallelises ([Su_util.Pool]);
    verdicts and summary are byte-identical at any value. [spares]
    (default 64) provisions the remap pool of every injected run.
    [max_injections] caps the plan prefix; [fail_fast] stops after
    the chunk containing the first violation. *)
