open Su_fstypes

type t = {
  d_lbn : int;
  d_pre : Types.cell array;
  d_post : Types.cell array;
}

let v ~lbn ~pre ~post =
  if Array.length pre <> Array.length post then
    invalid_arg "Delta.v: pre/post length mismatch";
  { d_lbn = lbn; d_pre = pre; d_post = post }

let apply img d =
  Array.blit d.d_post 0 img d.d_lbn (Array.length d.d_post)

let undo img d = Array.blit d.d_pre 0 img d.d_lbn (Array.length d.d_pre)

type cursor = {
  c_log : t array;
  c_base : Types.cell array;
  mutable c_pos : int;
}

let cursor ~initial ~log = { c_log = log; c_base = Array.copy initial; c_pos = 0 }

let seek c k =
  if k < 0 || k > Array.length c.c_log then
    invalid_arg "Delta.seek: boundary out of range";
  while c.c_pos < k do
    apply c.c_base c.c_log.(c.c_pos);
    c.c_pos <- c.c_pos + 1
  done;
  while c.c_pos > k do
    c.c_pos <- c.c_pos - 1;
    undo c.c_base c.c_log.(c.c_pos)
  done

let position c = c.c_pos
let image c = c.c_base
let log c = c.c_log
