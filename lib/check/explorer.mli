(** Systematic crash-state exploration.

    One fault-free run of a workload is {e recorded}: the initial
    on-disk image plus every extent the disk applies, in completion
    order. The explorer then re-creates the durable image at {e every}
    write boundary — the state after the first [k] writes, for all
    [k] — plus, for multi-fragment writes, every torn intermediate
    state (a prefix of the extent on the media, the tail lost). Each
    state is put through the full recovery pipeline: fsck check,
    fsck repair, remount, a continuation workload and a final check.

    This turns the paper's spot-check crash experiments into an
    exhaustive sweep: an ordering scheme's crash-consistency claim is
    verified at every instant the durable state changes, not at a
    handful of sampled times. *)

open Su_fstypes

(** A named workload run against a freshly made file system. Keep
    sweeps small: cost is linear in the writes the workload issues. *)
type workload = { wl_name : string; wl_run : Su_fs.State.t -> unit }

val smallfiles : workload
(** Create/append/unlink churn over one directory, then sync. *)

val dirtree : workload
(** mkdir/rename/rmdir tree manipulation with a hard link, then sync. *)

val renamefile : workload
(** Cross-directory rename of a file (plus an in-place rename), swept
    at every write boundary. *)

val renamedir : workload
(** Cross-directory rename of a directory, then a second move back:
    the ".."-rewrite choreography at every write boundary, including a
    change superseding a still-pending one. *)

val builtin_workloads : workload list

val find_workload : string -> workload option

type recording = {
  rec_initial : Types.cell array;  (** image as formatted, pre-run *)
  rec_deltas : Delta.t array;
      (** applied extents, completion order, with pre- and
          post-images: the write-delta log crash states are
          materialized from *)
}

val rec_writes : recording -> (int * Types.cell array) array
(** The applied extents as (start lbn, cells landed) — the post-image
    view of the delta log, for consumers that only replay forward. *)

val record : cfg:Su_fs.Fs.config -> workload -> recording
(** Run the workload once (no faults) and log every write the disk
    applies — payload and replaced cells both. The run is driven to
    completion and quiesced, so the log covers all deferred writes
    too. *)

(** Result of re-crashing the recovery pipeline inside its own write
    stream (the nested, crash-during-recovery sweep). *)
type nested = {
  n_writes : int;  (** cell writes the outer recovery pipeline issued *)
  n_states : int;  (** nested crash states verified (prefixes of that stream) *)
  n_unrecovered : int;
      (** nested states a fresh recovery failed to settle (repair did
          not converge, or violations survived) *)
  n_unsettled : int;
      (** nested states where a second recovery round still wrote:
          recovery is not idempotent — it never reaches the write-free
          fixed point within two rounds *)
}

type verdict = {
  v_boundary : int;  (** completed writes when the crash hit *)
  v_torn : int option;  (** [Some k]: k fragments of the next write landed *)
  v_pre_violations : int;  (** fsck violations before repair *)
  v_repair_converged : bool;
  v_post_violations : int;  (** violations surviving repair *)
  v_remount_ok : bool;  (** repaired image remounted, ran on, stayed clean *)
  v_nested : nested option;  (** crash-during-recovery sub-sweep, if run *)
}

val verify_state :
  ?nested:bool ->
  ?nested_max_boundaries:int ->
  cfg:Su_fs.Fs.config ->
  boundary:int ->
  torn:int option ->
  Types.cell array ->
  verdict
(** Full recovery pipeline on one crash image (mutates it: journal
    replay, then repair). With [nested] (default false), the pipeline's
    own write stream is recorded — every cell the journal replay, log
    retirement, map rebuild and fsck repair change — and recovery is
    re-crashed after every prefix of it: each truncated state must
    recover cleanly in one round and reach the write-free fixed point
    by the second (recovery re-entrancy). [nested_max_boundaries] caps
    the prefixes explored. *)

type summary = {
  s_scheme : Su_fs.Fs.scheme_kind;
  s_workload : string;
  s_writes : int;  (** recorded write completions *)
  s_states : int;  (** crash states explored (boundaries + torn) *)
  s_torn_states : int;
  s_dirty_states : int;  (** states with pre-repair violations *)
  s_unrepaired : int;  (** states still violated after repair *)
  s_unconverged : int;  (** states where repair hit its round limit *)
  s_remount_failures : int;
  s_nested_states : int;  (** crash-during-recovery states verified *)
  s_nested_unrecovered : int;  (** nested states recovery failed to settle *)
  s_nested_unsettled : int;  (** nested states short of the fixed point *)
  s_verdicts : verdict list;  (** per-state detail, crash order *)
}

val consistent : summary -> bool
(** Zero violations at every explored state (the ordered-scheme
    promise: nothing for fsck to fix beyond leaks), and — when the
    nested sweep ran — every crash-during-recovery state settled too. *)

val repairable : summary -> bool
(** Possibly violated, but every state repaired, remounted and stayed
    clean (the promise fsck makes even for No Order — when it holds),
    including every nested crash-during-recovery state. *)

val crash_states :
  ?torn:bool -> ?max_boundaries:int -> recording -> (int * int option) array
(** The crash states of a recording in sweep order: [(k, None)] for a
    crash after exactly [k] completed writes, [(k, Some applied)] for
    the (k+1)-th write torn after [applied] fragments. [torn]
    (default true) includes the torn states; [max_boundaries] caps
    the write boundaries explored (smoke runs). *)

val materialize : Delta.cursor -> int * int option -> Types.cell array
(** Materialize one crash state as a private image the verify
    pipeline may mutate: seek the cursor, snapshot, overlay any torn
    prefix. Seeking costs O(cells touched) per boundary crossed; the
    snapshot shares immutable cells and deep-copies only metadata. *)

val sweep_recording :
  ?torn:bool ->
  ?jobs:int ->
  ?max_boundaries:int ->
  ?nested:bool ->
  ?nested_max_boundaries:int ->
  cfg:Su_fs.Fs.config ->
  workload:string ->
  recording ->
  summary
(** Verify every crash state of an existing recording. [jobs] > 1
    fans the per-state verification out over a {!Su_util.Pool} of
    that many domains ([0] = all cores); verdict order and all counts
    are identical at any [jobs] value. [nested] re-crashes the
    recovery pipeline at every one of its own write boundaries for
    every outer crash state (see {!verify_state}). *)

val sweep :
  ?torn:bool ->
  ?jobs:int ->
  ?max_boundaries:int ->
  ?nested:bool ->
  ?nested_max_boundaries:int ->
  cfg:Su_fs.Fs.config ->
  workload ->
  summary
(** Record once, then verify every crash state. [torn] (default true)
    includes the torn-write intermediate states; [jobs], [nested] as
    in {!sweep_recording}. *)

type shakedown = {
  f_injected : int;  (** faults the disk injected *)
  f_retries : int;  (** attempts the driver re-drove *)
  f_failures : int;  (** requests failed after the retry budget *)
  f_cache_failures : int;  (** failed writes surfaced to the cache *)
  f_completed : bool;  (** the workload ran to completion *)
  f_consistent : bool;  (** the final image checks out clean *)
}

val fault_shakedown : cfg:Su_fs.Fs.config -> workload -> shakedown
(** Run the workload with whatever fault model [cfg] carries (pair
    with {!Su_disk.Fault.transient}) and report how the stack coped.
    A healthy result completes, is consistent, and absorbed every
    transient with retries ([f_failures = 0]). *)
