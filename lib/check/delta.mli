(** Write-delta logs: incremental crash-state snapshots.

    A fault-free reference run is recorded as an initial image plus
    one {!t} per applied write — (start lbn, pre-image, post-image) —
    in completion order (captured via
    {!Su_disk.Disk.set_delta_observer}). The durable image after the
    first [k] writes is then materialized by {e seeking} a {!cursor}:
    applying post-images to move forward, re-installing pre-images to
    move back. Each step costs O(cells touched by that write) instead
    of the O(image) deep copy a full snapshot pays, which is what lets
    the crash-state explorer visit thousands of boundaries cheaply and
    lets pool workers jump straight to their assigned boundary.

    Sharing discipline: [apply]/[undo] install the log's cell values
    into the target array {e without} copying. This is safe because
    cells are never mutated in place once recorded — every consumer
    that needs to mutate (fsck repair, journal replay) works on a
    {!Su_fstypes.Types.copy_cell} snapshot of the materialized image,
    exactly as it would on a disk-owned image.

    With the slab-backed {!Su_fstypes.Volume} behind the disk, the
    observer's [pre]/[post] extents are {e decoded} cells — private
    values that share no structure with the live image — so a logged
    delta can never be corrupted by later volume writes, and replaying
    the whole log forward (or undoing it backward) over an
    [image_snapshot] reproduces the volume's final (or initial)
    snapshot exactly; [test/test_volume.ml] pins that round-trip
    against a volume-backed disk. *)

open Su_fstypes

type t = {
  d_lbn : int;  (** first fragment the write covered *)
  d_pre : Types.cell array;  (** image content replaced by the write *)
  d_post : Types.cell array;  (** payload that landed (same length) *)
}

val v : lbn:int -> pre:Types.cell array -> post:Types.cell array -> t
(** @raise Invalid_argument if [pre] and [post] differ in length. *)

val apply : Types.cell array -> t -> unit
(** Install the post-image (replay the write). *)

val undo : Types.cell array -> t -> unit
(** Re-install the pre-image (revert the write). *)

(** A seekable position in a delta log: one reusable base image plus
    the number of applied writes. *)
type cursor

val cursor : initial:Types.cell array -> log:t array -> cursor
(** Fresh cursor at boundary 0. The base starts as a slot-level copy
    of [initial]; the cells themselves are shared (see the sharing
    discipline above), so creating per-worker cursors is cheap. *)

val seek : cursor -> int -> unit
(** [seek c k] moves the base image to the state after exactly [k]
    completed writes, replaying or undoing the deltas in between.
    @raise Invalid_argument if [k] is outside [0 .. length log]. *)

val position : cursor -> int

val image : cursor -> Types.cell array
(** The live base image at the cursor's boundary. Owned by the
    cursor: callers must not mutate it — take a
    [Array.map Types.copy_cell] snapshot (cheap: immutable cells are
    shared) before handing it to anything that writes. *)

val log : cursor -> t array
