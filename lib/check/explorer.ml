open Su_fstypes
open Su_sim
open Su_fs

(* --- workloads ------------------------------------------------------- *)

type workload = { wl_name : string; wl_run : State.t -> unit }

(* Both built-in workloads are deliberately small: the sweep re-crashes
   the run at every write boundary, so the state count (and the cost of
   the sweep) is linear in the writes the workload generates. *)

let smallfiles =
  {
    wl_name = "smallfiles";
    wl_run =
      (fun st ->
        let rng = Su_util.Rng.create 71 in
        Fsops.mkdir st "/sf";
        let live = ref [] in
        for i = 1 to 18 do
          let p = Printf.sprintf "/sf/f%d" i in
          Fsops.create st p;
          Fsops.append st p ~bytes:(1024 * Su_util.Rng.int_range rng 1 6);
          live := p :: !live;
          if Su_util.Rng.int rng 3 = 0 then begin
            match !live with
            | p :: rest ->
              Fsops.unlink st p;
              live := rest
            | [] -> ()
          end
        done;
        Fsops.sync st);
  }

let dirtree =
  {
    wl_name = "dirtree";
    wl_run =
      (fun st ->
        Fsops.mkdir st "/t";
        for i = 1 to 5 do
          let d = Printf.sprintf "/t/d%d" i in
          Fsops.mkdir st d;
          Fsops.create st (d ^ "/a");
          Fsops.append st (d ^ "/a") ~bytes:2048;
          Fsops.rename st ~src:(d ^ "/a") ~dst:(d ^ "/b");
          if i mod 2 = 0 then begin
            Fsops.unlink st (d ^ "/b");
            Fsops.rmdir st d
          end
        done;
        Fsops.link st ~src:"/t/d1/b" ~dst:"/t/hard";
        Fsops.sync st);
  }

(* Rename crash coverage: a cross-directory rename of a file and of a
   directory, swept at every write boundary. The directory move
   exercises the ".."-rewrite choreography (raised link counts, the
   in-place entry change, deferred decrements). *)

let renamefile =
  {
    wl_name = "renamefile";
    wl_run =
      (fun st ->
        Fsops.mkdir st "/ra";
        Fsops.mkdir st "/rb";
        Fsops.create st "/ra/f";
        Fsops.append st "/ra/f" ~bytes:3072;
        Fsops.rename st ~src:"/ra/f" ~dst:"/rb/g";
        Fsops.rename st ~src:"/rb/g" ~dst:"/rb/h";
        Fsops.sync st);
  }

let renamedir =
  {
    wl_name = "renamedir";
    wl_run =
      (fun st ->
        Fsops.mkdir st "/ra";
        Fsops.mkdir st "/rb";
        Fsops.mkdir st "/ra/d";
        Fsops.create st "/ra/d/f";
        Fsops.append st "/ra/d/f" ~bytes:2048;
        (* move across parents, then rename in place: back-to-back
           moves also exercise a ".." change superseding a pending one *)
        Fsops.rename st ~src:"/ra/d" ~dst:"/rb/e";
        Fsops.rename st ~src:"/rb/e" ~dst:"/ra/d2";
        Fsops.sync st);
  }

let builtin_workloads = [ smallfiles; dirtree; renamefile; renamedir ]

let find_workload name =
  List.find_opt (fun w -> w.wl_name = name) builtin_workloads

(* --- recording ------------------------------------------------------- *)

type recording = {
  rec_initial : Types.cell array;
  rec_deltas : Delta.t array;
}

let rec_writes r =
  Array.map (fun d -> (d.Delta.d_lbn, d.Delta.d_post)) r.rec_deltas

(* One fault-free run under the given configuration, observing every
   extent the disk applies to the media (in completion order) together
   with the cells it replaced. Crash states are then materialized by
   seeking a {!Delta.cursor} over the log — no re-execution and no
   full-image copy per crash point. *)
let record ~cfg wl =
  let w = Fs.make cfg in
  let initial = Su_disk.Disk.image_snapshot w.Fs.disk in
  (* digest refreshes happen at write acknowledgement and do not flow
     through the delta observer, so a synthesized crash state cannot
     carry a truthful checksum region; drop it — crash states are
     judged on structure, and recovery resynchronises the digests
     anyway (fsck's Resynced_csums) *)
  Array.iteri
    (fun i c ->
      match c with Types.Csum _ -> initial.(i) <- Types.Empty | _ -> ())
    initial;
  let deltas = ref [] in
  Su_disk.Disk.set_delta_observer w.Fs.disk (fun ~lbn ~pre ~post ->
      deltas := Delta.v ~lbn ~pre ~post :: !deltas);
  let controller () =
    let h = Proc.spawn w.Fs.engine ~name:"workload" (fun () -> wl.wl_run w.Fs.st) in
    Proc.join_all w.Fs.engine [ h ];
    Fs.stop w;
    Su_driver.Driver.quiesce w.Fs.driver;
    Engine.stop w.Fs.engine
  in
  ignore (Proc.spawn w.Fs.engine ~name:"controller" controller);
  Engine.run w.Fs.engine;
  { rec_initial = initial; rec_deltas = Array.of_list (List.rev !deltas) }

(* --- per-state verification ------------------------------------------ *)

type nested = {
  n_writes : int;  (** writes the recovery pipeline issued *)
  n_states : int;  (** nested crash states verified *)
  n_unrecovered : int;
  n_unsettled : int;  (** states where a second recovery still wrote *)
}

type verdict = {
  v_boundary : int;  (** completed writes when the crash hit *)
  v_torn : int option;  (** [Some k]: k fragments of the next write landed *)
  v_pre_violations : int;
  v_repair_converged : bool;
  v_post_violations : int;
  v_remount_ok : bool;
  v_nested : nested option;  (** crash-during-recovery sub-sweep *)
}

let check_exposure_of cfg =
  match cfg.Fs.scheme with
  | Fs.Journaled _ -> false
  | Fs.Conventional | Fs.Scheduler_flag | Fs.Scheduler_chains _
  | Fs.Soft_updates | Fs.No_order ->
    cfg.Fs.alloc_init

(* Remount the (repaired) image and keep living in it: a directory
   create, file writes, a rename and a sync must all succeed, and the
   image must still check out clean afterwards. *)
let remount_and_continue ~cfg image =
  try
    let w = Fs.mount_image cfg image in
    let done_ = ref false in
    let controller () =
      let d = "/crashsweep.d" in
      Fsops.mkdir w.Fs.st d;
      Fsops.create w.Fs.st (d ^ "/probe");
      Fsops.append w.Fs.st (d ^ "/probe") ~bytes:3072;
      Fsops.rename w.Fs.st ~src:(d ^ "/probe") ~dst:(d ^ "/probe2");
      Fsops.sync w.Fs.st;
      Fs.stop w;
      Su_driver.Driver.quiesce w.Fs.driver;
      done_ := true;
      Engine.stop w.Fs.engine
    in
    ignore (Proc.spawn w.Fs.engine ~name:"continue" controller);
    Engine.run w.Fs.engine;
    !done_
    &&
    let final = Su_disk.Disk.image_snapshot w.Fs.disk in
    Fs.recover_image cfg final;
    Fsck.ok
      (Fsck.check ~geom:cfg.Fs.geom ~image:final
         ~check_exposure:(check_exposure_of cfg))
  with _ -> false

(* Re-crash recovery inside its own write stream. [base] is the crash
   image before any recovery ran; [events] the (lbn, pre, post) cell
   writes the outer recovery pipeline issued against it, in order. For
   every prefix of that stream — recovery cut short after k of its own
   writes — run recovery again and require convergence: round one must
   leave a clean image, and a further round must find nothing left to
   write (all recovery writes are equality-suppressed, so an idempotent
   pipeline's second pass is empty — that emptiness IS the fixed-point
   test). Cell writes are single-fragment, so there are no torn
   variants at this level. *)
let nested_verify ?max_boundaries ~cfg base events =
  let log =
    Array.map
      (fun (lbn, pre, post) -> Delta.v ~lbn ~pre:[| pre |] ~post:[| post |])
      events
  in
  let cur = Delta.cursor ~initial:base ~log in
  let n = Array.length log in
  let last = match max_boundaries with Some m -> min (max m 0) n | None -> n in
  let check_exposure = check_exposure_of cfg in
  let unrecovered = ref 0 and unsettled = ref 0 in
  for k = 0 to last do
    Delta.seek cur k;
    let img = Array.map Types.copy_cell (Delta.image cur) in
    (* round one: recovery over its own partial effects must settle *)
    Fs.recover_image cfg img;
    let outcome = Fsck.repair ~geom:cfg.Fs.geom ~image:img ~check_exposure () in
    if not (outcome.Fsck.converged && Fsck.ok outcome.Fsck.final) then
      incr unrecovered;
    (* round two: the fixed point — nothing left to change *)
    let r2 = Imglog.recorder () in
    let observer = Imglog.observe r2 in
    Fs.recover_image ~observer cfg img;
    ignore (Fsck.repair ~observer ~geom:cfg.Fs.geom ~image:img ~check_exposure ());
    if Imglog.count r2 > 0 then incr unsettled
  done;
  {
    n_writes = n;
    n_states = last + 1;
    n_unrecovered = !unrecovered;
    n_unsettled = !unsettled;
  }

let verify_state ?(nested = false) ?nested_max_boundaries ~cfg ~boundary ~torn
    image =
  (* recovery cells are installed copy-on-write (never mutated in
     place), so a shallow snapshot of the pre-recovery image is enough
     for the nested sweep to rewind over *)
  let base = if nested then Some (Array.copy image) else None in
  let recovery_log = Imglog.recorder () in
  let observer = if nested then Some (Imglog.observe recovery_log) else None in
  (* journaled configurations replay the log before checking, exactly
     as mount-time recovery would *)
  Fs.recover_image ?observer cfg image;
  let check_exposure = check_exposure_of cfg in
  let pre = Fsck.check ~geom:cfg.Fs.geom ~image ~check_exposure in
  let outcome = Fsck.repair ?observer ~geom:cfg.Fs.geom ~image ~check_exposure () in
  let v_nested =
    match base with
    | None -> None
    | Some base ->
      Some
        (nested_verify ?max_boundaries:nested_max_boundaries ~cfg base
           (Imglog.events recovery_log))
  in
  let remount_ok = remount_and_continue ~cfg image in
  {
    v_boundary = boundary;
    v_torn = torn;
    v_pre_violations = List.length pre.Fsck.violations;
    v_repair_converged = outcome.Fsck.converged;
    v_post_violations = List.length outcome.Fsck.final.Fsck.violations;
    v_remount_ok = remount_ok;
    v_nested;
  }

(* --- the sweep ------------------------------------------------------- *)

type summary = {
  s_scheme : Fs.scheme_kind;
  s_workload : string;
  s_writes : int;  (** recorded write completions *)
  s_states : int;  (** crash states explored (boundaries + torn) *)
  s_torn_states : int;
  s_dirty_states : int;  (** states with pre-repair violations *)
  s_unrepaired : int;  (** states still violated after repair *)
  s_unconverged : int;  (** states where repair hit its round limit *)
  s_remount_failures : int;
  s_nested_states : int;  (** crash-during-recovery states verified *)
  s_nested_unrecovered : int;
  s_nested_unsettled : int;
  s_verdicts : verdict list;  (** per-state detail, crash order *)
}

let consistent s =
  s.s_dirty_states = 0 && s.s_unrepaired = 0 && s.s_unconverged = 0
  && s.s_remount_failures = 0
  && s.s_nested_unrecovered = 0 && s.s_nested_unsettled = 0

let repairable s =
  s.s_unrepaired = 0 && s.s_unconverged = 0 && s.s_remount_failures = 0
  && s.s_nested_unrecovered = 0 && s.s_nested_unsettled = 0

(* Enumerate the crash states of a recording in sweep order: each
   write boundary, then (optionally) every torn prefix of the next
   write. [max_boundaries] caps the boundaries explored (CI smoke). *)
let crash_states ?(torn = true) ?max_boundaries r =
  let n = Array.length r.rec_deltas in
  let last = match max_boundaries with Some m -> min (max m 0) n | None -> n in
  let states = ref [] in
  for k = 0 to last do
    states := (k, None) :: !states;
    if torn && k < last then
      let d = r.rec_deltas.(k) in
      (* the (k+1)-th write torn mid-extent: 1 .. nfrags-1 leading
         fragments reach the media, the tail is lost *)
      for applied = 1 to Array.length d.Delta.d_post - 1 do
        states := (k, Some applied) :: !states
      done
  done;
  Array.of_list (List.rev !states)

(* Materialize one crash state as a private image a verifier may
   mutate: seek the cursor to the boundary (O(cells touched)), take a
   copy-on-share snapshot (immutable cells shared, mutable metadata
   deep-copied by [Types.copy_cell]), then overlay any torn prefix. *)
let materialize cur (boundary, torn) =
  Delta.seek cur boundary;
  let img = Array.map Types.copy_cell (Delta.image cur) in
  (match torn with
   | None -> ()
   | Some applied ->
     let d = (Delta.log cur).(boundary) in
     for i = 0 to applied - 1 do
       img.(d.Delta.d_lbn + i) <- Types.copy_cell d.Delta.d_post.(i)
     done);
  img

let sweep_recording ?torn ?(jobs = 1) ?max_boundaries ?nested
    ?nested_max_boundaries ~cfg ~workload r =
  let states = crash_states ?torn ?max_boundaries r in
  (* Fan the per-state verification jobs out over a Domain pool. Each
     worker owns a private cursor; indices are claimed in increasing
     order, so a worker's cursor only ever seeks forward. Results are
     merged by job index: verdict order — and therefore every digest
     or table derived from it — is identical at any [jobs] value. *)
  let verdicts =
    Su_util.Pool.map_with ~jobs
      ~init:(fun () -> Delta.cursor ~initial:r.rec_initial ~log:r.rec_deltas)
      (Array.length states)
      (fun cur i ->
        let (boundary, torn) as state = states.(i) in
        verify_state ?nested ?nested_max_boundaries ~cfg ~boundary ~torn
          (materialize cur state))
  in
  let verdicts = Array.to_list verdicts in
  let count p = List.length (List.filter p verdicts) in
  let nsum f =
    List.fold_left
      (fun acc v -> match v.v_nested with None -> acc | Some n -> acc + f n)
      0 verdicts
  in
  {
    s_scheme = cfg.Fs.scheme;
    s_workload = workload;
    s_writes = Array.length r.rec_deltas;
    s_states = List.length verdicts;
    s_torn_states = count (fun v -> v.v_torn <> None);
    s_dirty_states = count (fun v -> v.v_pre_violations > 0);
    s_unrepaired = count (fun v -> v.v_post_violations > 0);
    s_unconverged = count (fun v -> not v.v_repair_converged);
    s_remount_failures = count (fun v -> not v.v_remount_ok);
    s_nested_states = nsum (fun n -> n.n_states);
    s_nested_unrecovered = nsum (fun n -> n.n_unrecovered);
    s_nested_unsettled = nsum (fun n -> n.n_unsettled);
    s_verdicts = verdicts;
  }

let sweep ?torn ?jobs ?max_boundaries ?nested ?nested_max_boundaries ~cfg wl =
  let r = record ~cfg wl in
  sweep_recording ?torn ?jobs ?max_boundaries ?nested ?nested_max_boundaries
    ~cfg ~workload:wl.wl_name r

(* --- fault shakedown -------------------------------------------------- *)

type shakedown = {
  f_injected : int;  (** faults the disk injected *)
  f_retries : int;  (** attempts the driver re-drove *)
  f_failures : int;  (** requests failed after the retry budget *)
  f_cache_failures : int;  (** failed writes surfaced to the cache *)
  f_completed : bool;  (** the workload ran to completion *)
  f_consistent : bool;  (** the final image checks out clean *)
}

(* Run a workload with transient-fault injection enabled and verify
   the stack rides the errors out: the run completes, the driver
   absorbs the faults with retries, and the final image is clean. *)
let fault_shakedown ~cfg wl =
  let w = Fs.make cfg in
  let completed = ref false in
  let controller () =
    let h = Proc.spawn w.Fs.engine ~name:"workload" (fun () -> wl.wl_run w.Fs.st) in
    Proc.join_all w.Fs.engine [ h ];
    Fs.stop w;
    Su_driver.Driver.quiesce w.Fs.driver;
    completed := true;
    Engine.stop w.Fs.engine
  in
  ignore (Proc.spawn w.Fs.engine ~name:"controller" controller);
  Engine.run w.Fs.engine;
  let tr = Su_driver.Driver.trace w.Fs.driver in
  let consistent =
    if not !completed then false
    else begin
      let image = Su_disk.Disk.image_snapshot w.Fs.disk in
      Fs.recover_image cfg image;
      Fsck.ok
        (Fsck.check ~geom:cfg.Fs.geom ~image
           ~check_exposure:(check_exposure_of cfg))
    end
  in
  {
    f_injected = Su_disk.Disk.faults_injected w.Fs.disk;
    f_retries = Su_driver.Trace.io_retries tr;
    f_failures = Su_driver.Trace.io_failures tr;
    f_cache_failures = Su_cache.Bcache.io_failures w.Fs.cache;
    f_completed = !completed;
    f_consistent = consistent;
  }
