open Su_sim
open Su_fs

(* Systematic permanent-fault campaign (the fault-tolerance analogue
   of the crash sweep in {!Explorer}). One fault-free recording run
   discovers every distinct media sector a workload touches; the sweep
   then re-runs the workload once per sector with that sector
   permanently bad and asserts survive-or-fail-clean: either every
   operation completes (the remap/replica machinery absorbed the
   fault) or the run stops with a typed error and the surviving
   on-disk state is fsck-repairable and remountable. Anything else —
   an untyped exception, a hang, an unrepairable image — is a
   violation. *)

(* --- touched-sector discovery ---------------------------------------- *)

(* Run the workload once, fault-free, with driver trace records kept;
   the touched set is the union of every request's [lbn, lbn+nfrags)
   extent, reads included (a latent bad sector under a read-only
   fragment is just as real). Ascending order, so sweep output is
   deterministic. *)
let touched_sectors ~cfg wl =
  let cfg =
    { cfg with Fs.fault = Su_disk.Fault.none; keep_trace_records = true }
  in
  let w = Fs.make cfg in
  let controller () =
    let h =
      Proc.spawn w.Fs.engine ~name:"workload" (fun () ->
          wl.Explorer.wl_run w.Fs.st)
    in
    Proc.join_all w.Fs.engine [ h ];
    Fs.stop w;
    Su_driver.Driver.quiesce w.Fs.driver;
    Engine.stop w.Fs.engine
  in
  ignore (Proc.spawn w.Fs.engine ~name:"controller" controller);
  Engine.run w.Fs.engine;
  let touched = Hashtbl.create 1024 in
  List.iter
    (fun r ->
      for i = 0 to r.Su_driver.Trace.r_nfrags - 1 do
        Hashtbl.replace touched (r.Su_driver.Trace.r_lbn + i) ()
      done)
    (Su_driver.Trace.records (Su_driver.Driver.trace w.Fs.driver));
  let sectors = Hashtbl.fold (fun s () acc -> s :: acc) touched [] in
  Array.of_list (List.sort compare sectors)

(* --- one run under a permanent fault --------------------------------- *)

type outcome =
  | Completed  (** every operation finished; the fault was absorbed *)
  | Failed_typed of string
      (** the run stopped with a typed error (Eio / Erofs / Io_error /
          Mount_failure) — legal iff the surviving state is clean *)
  | Escaped of string
      (** an untyped exception or a hang: always a violation *)

let outcome_name = function
  | Completed -> "completed"
  | Failed_typed _ -> "failed-typed"
  | Escaped _ -> "escaped"

type verdict = {
  fv_sector : int;
  fv_outcome : outcome;
  fv_remaps : int;  (** bad-sector remaps performed during the run *)
  fv_pre_violations : int;  (** fsck violations before repair *)
  fv_repair_converged : bool;
  fv_post_violations : int;  (** violations surviving repair *)
  fv_remount_ok : bool;  (** repaired image remounted, ran on, stayed clean *)
}

(* Survive-or-fail-clean, per verdict. A completed run must leave a
   state with nothing to repair (the workloads end in sync); a typed
   failure may leave a crash-boundary-like state, which must repair,
   remount and stay clean; an escape is never acceptable. *)
let fv_clean v =
  match v.fv_outcome with
  | Completed -> v.fv_pre_violations = 0 && v.fv_remount_ok
  | Failed_typed _ ->
    v.fv_repair_converged && v.fv_post_violations = 0 && v.fv_remount_ok
  | Escaped _ -> false

let check_exposure_of cfg =
  match cfg.Fs.scheme with
  | Fs.Journaled _ -> false
  | Fs.Conventional | Fs.Scheduler_flag | Fs.Scheduler_chains _
  | Fs.Soft_updates | Fs.No_order ->
    cfg.Fs.alloc_init

let typed_failure = function
  | Fsops.Eio msg -> Some ("Eio: " ^ msg)
  | Fsops.Erofs msg -> Some ("Erofs: " ^ msg)
  | Su_cache.Bcache.Io_error e ->
    Some ("Io_error: " ^ Su_disk.Fault.error_to_string e)
  | Fs.Mount_failure msg -> Some ("Mount_failure: " ^ msg)
  | _ -> None

(* Remount the repaired logical image on a perfect device and keep
   living in it (mirrors the crash sweep's continuation probe). *)
let remount_and_continue ~cfg image =
  let cfg =
    { cfg with
      Fs.fault = Su_disk.Fault.none;
      spare_frags = 0;
      scrub_interval = 0.0 }
  in
  try
    let w = Fs.mount_image cfg image in
    let done_ = ref false in
    let controller () =
      let d = "/faultsweep.d" in
      Fsops.mkdir w.Fs.st d;
      Fsops.create w.Fs.st (d ^ "/probe");
      Fsops.append w.Fs.st (d ^ "/probe") ~bytes:3072;
      Fsops.rename w.Fs.st ~src:(d ^ "/probe") ~dst:(d ^ "/probe2");
      Fsops.sync w.Fs.st;
      Fs.stop w;
      Su_driver.Driver.quiesce w.Fs.driver;
      done_ := true;
      Engine.stop w.Fs.engine
    in
    ignore (Proc.spawn w.Fs.engine ~name:"continue" controller);
    Engine.run w.Fs.engine;
    !done_
    &&
    let final = Su_disk.Disk.image_snapshot w.Fs.disk in
    Fs.recover_image cfg final;
    Fsck.ok
      (Fsck.check ~geom:cfg.Fs.geom ~image:final
         ~check_exposure:(check_exposure_of cfg))
  with _ -> false

let run_one ~cfg ~spares wl sector =
  let run_cfg =
    { cfg with
      Fs.fault = { Su_disk.Fault.none with bad_sectors = [ sector ] };
      spare_frags = spares;
      keep_trace_records = false }
  in
  let w = Fs.make run_cfg in
  let outcome = ref (Escaped "hang: event queue drained mid-run") in
  let controller () =
    (try
       wl.Explorer.wl_run w.Fs.st;
       outcome := Completed
     with e ->
       (match typed_failure e with
        | Some msg -> outcome := Failed_typed msg
        | None -> outcome := Escaped (Printexc.to_string e)));
    (* quiesce whatever survives; a typed flush failure here does not
       change the verdict already taken *)
    (try
       Fs.stop w;
       Su_driver.Driver.quiesce w.Fs.driver
     with e -> if typed_failure e = None then raise e);
    Engine.stop w.Fs.engine
  in
  ignore (Proc.spawn w.Fs.engine ~name:"controller" controller);
  (try Engine.run w.Fs.engine
   with Proc.Process_failure (_, e) ->
     outcome :=
       (match typed_failure e with
        | Some msg -> Failed_typed msg
        | None -> Escaped (Printexc.to_string e)));
  (* the remap table is metadata: verify on the logical view, exactly
     what a replacement drive would be rebuilt with *)
  let image = Su_disk.Disk.logical_snapshot w.Fs.disk in
  Fs.recover_image run_cfg image;
  let check_exposure = check_exposure_of run_cfg in
  let pre = Fsck.check ~geom:run_cfg.Fs.geom ~image ~check_exposure in
  let outcome_v = !outcome in
  let repaired, converged, post =
    match outcome_v with
    | Completed ->
      (* nothing should need repair; keep the checked image *)
      (image, true, List.length pre.Fsck.violations)
    | Failed_typed _ | Escaped _ ->
      let o = Fsck.repair ~geom:run_cfg.Fs.geom ~image ~check_exposure () in
      (image, o.Fsck.converged, List.length o.Fsck.final.Fsck.violations)
  in
  let remount_ok =
    match outcome_v with
    | Escaped _ -> false  (* already a violation; skip the probe *)
    | Completed | Failed_typed _ -> remount_and_continue ~cfg:run_cfg repaired
  in
  {
    fv_sector = sector;
    fv_outcome = outcome_v;
    fv_remaps = Su_disk.Disk.remaps w.Fs.disk;
    fv_pre_violations = List.length pre.Fsck.violations;
    fv_repair_converged = converged;
    fv_post_violations = post;
    fv_remount_ok = remount_ok;
  }

(* --- the campaign ----------------------------------------------------- *)

type summary = {
  fs_scheme : Fs.scheme_kind;
  fs_workload : string;
  fs_sectors : int;  (** distinct sectors the workload touches *)
  fs_swept : int;  (** sectors actually injected (caps, fail-fast) *)
  fs_completed : int;
  fs_failed_typed : int;
  fs_escaped : int;
  fs_remaps : int;  (** remaps performed across all runs *)
  fs_violations : int;  (** verdicts breaking survive-or-fail-clean *)
  fs_verdicts : verdict list;  (** per-sector detail, ascending sector *)
}

let ok s = s.fs_escaped = 0 && s.fs_violations = 0

(* Fail-fast chunk size: fixed (never derived from [jobs]) so the
   verdict list — and any digest of it — is identical at any [--jobs]
   value: always every verdict up to and including the first
   violation. *)
let fail_fast_chunk = 8

let summarize ~cfg ~workload ~nsectors verdicts =
  let count p = List.length (List.filter p verdicts) in
  {
    fs_scheme = cfg.Fs.scheme;
    fs_workload = workload;
    fs_sectors = nsectors;
    fs_swept = List.length verdicts;
    fs_completed = count (fun v -> v.fv_outcome = Completed);
    fs_failed_typed =
      count (fun v -> match v.fv_outcome with Failed_typed _ -> true | _ -> false);
    fs_escaped =
      count (fun v -> match v.fv_outcome with Escaped _ -> true | _ -> false);
    fs_remaps = List.fold_left (fun a v -> a + v.fv_remaps) 0 verdicts;
    fs_violations = count (fun v -> not (fv_clean v));
    fs_verdicts = verdicts;
  }

let sweep ?(jobs = 1) ?(spares = 64) ?max_sectors ?(fail_fast = false) ~cfg wl =
  let sectors = touched_sectors ~cfg wl in
  let nsectors = Array.length sectors in
  let last =
    match max_sectors with
    | Some m -> min (max m 0) nsectors
    | None -> nsectors
  in
  let verdicts =
    if not fail_fast then
      Array.to_list
        (Su_util.Pool.map ~jobs last (fun i ->
             run_one ~cfg ~spares wl sectors.(i)))
    else begin
      (* chunked: stop after the chunk containing the first violation,
         truncated just past it *)
      let acc = ref [] and stop = ref false and start = ref 0 in
      while (not !stop) && !start < last do
        let n = min fail_fast_chunk (last - !start) in
        let base = !start in
        let chunk =
          Su_util.Pool.map ~jobs n (fun i ->
              run_one ~cfg ~spares wl sectors.(base + i))
        in
        Array.iter
          (fun v ->
            if not !stop then begin
              acc := v :: !acc;
              if not (fv_clean v) then stop := true
            end)
          chunk;
        start := base + n
      done;
      List.rev !acc
    end
  in
  summarize ~cfg ~workload:wl.Explorer.wl_name ~nsectors verdicts
