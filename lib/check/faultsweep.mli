(** Systematic permanent-fault campaign.

    The fault-tolerance analogue of the crash sweep in {!Explorer}:
    one fault-free recording run discovers every distinct media sector
    a workload touches (reads included), then the workload is re-run
    once per sector with that sector permanently bad — and a
    configurable spare pool for the remap machinery to absorb it with.
    Each run must {e survive or fail clean}: either every operation
    completes, or the run stops with a typed error
    ({!Su_fs.Fsops.Eio} / [Erofs], {!Su_cache.Bcache.Io_error},
    {!Su_fs.Fs.Mount_failure}) and the surviving on-disk state
    repairs, remounts and stays clean. An untyped exception, a hang,
    or an unrepairable image is a violation. *)

val touched_sectors : cfg:Su_fs.Fs.config -> Explorer.workload -> int array
(** Distinct fragments the workload's driver requests cover, from one
    fault-free run with trace records kept; ascending. *)

type outcome =
  | Completed  (** every operation finished; the fault was absorbed *)
  | Failed_typed of string
      (** the run stopped with a typed error — legal iff the surviving
          state is clean *)
  | Escaped of string
      (** an untyped exception or a hang: always a violation *)

val outcome_name : outcome -> string

type verdict = {
  fv_sector : int;
  fv_outcome : outcome;
  fv_remaps : int;  (** bad-sector remaps performed during the run *)
  fv_pre_violations : int;  (** fsck violations before repair *)
  fv_repair_converged : bool;
  fv_post_violations : int;  (** violations surviving repair *)
  fv_remount_ok : bool;  (** repaired image remounted, ran on, stayed clean *)
}

val fv_clean : verdict -> bool
(** The survive-or-fail-clean predicate: completed runs must have
    nothing to repair and remount cleanly; typed failures must repair,
    remount and stay clean; escapes never pass. *)

val run_one :
  cfg:Su_fs.Fs.config ->
  spares:int ->
  Explorer.workload ->
  int ->
  verdict
(** Run the workload once with the given sector permanently bad and
    [spares] spare fragments, then verify the surviving state (on the
    {e logical} image — remapped content resolved to home addresses,
    as a rebuilt replacement drive would hold it). *)

type summary = {
  fs_scheme : Su_fs.Fs.scheme_kind;
  fs_workload : string;
  fs_sectors : int;  (** distinct sectors the workload touches *)
  fs_swept : int;  (** sectors actually injected (caps, fail-fast) *)
  fs_completed : int;
  fs_failed_typed : int;
  fs_escaped : int;
  fs_remaps : int;  (** remaps performed across all runs *)
  fs_violations : int;  (** verdicts breaking survive-or-fail-clean *)
  fs_verdicts : verdict list;  (** per-sector detail, ascending sector *)
}

val ok : summary -> bool
(** No escapes and no survive-or-fail-clean violations. *)

val sweep :
  ?jobs:int ->
  ?spares:int ->
  ?max_sectors:int ->
  ?fail_fast:bool ->
  cfg:Su_fs.Fs.config ->
  Explorer.workload ->
  summary
(** The campaign: one run per touched sector. [jobs] > 1 fans the
    per-sector runs out over a {!Su_util.Pool} of that many domains
    ([0] = all cores); verdict order and every count are identical at
    any [jobs] value. [spares] (default 64) sizes each run's spare
    pool. [max_sectors] caps the sectors injected (CI smoke).
    [fail_fast] stops after the first violating verdict — the verdict
    list is then every verdict up to and including it, still
    independent of [jobs]. *)
