(** The device driver: request queue, disk scheduling and ordering
    enforcement.

    Requests are accepted (non-blocking) in issue order; whenever the
    disk is idle the driver picks the next request to service from the
    {e eligible} subset of the queue (see {!Ordering}) using C-LOOK or
    FCFS, and concatenates queued requests that are contiguous on disk
    into a single device operation (as the paper's SVR4 driver does).
    Completion callbacks run in engine-event context. *)

type policy = Clook | Fcfs

type config = {
  mode : Ordering.mode;
  policy : policy;
  max_concat : int;  (** max fragments per device operation *)
  keep_records : bool;  (** retain full per-request trace records *)
  max_attempts : int;
      (** device attempts per operation before failing it with a typed
          error (must be >= 1) *)
  retry_backoff : float;
      (** delay before the second attempt, seconds; doubles per retry *)
  request_timeout : float;
      (** per-attempt deadline, seconds; an attempt completing later
          is treated as failed and re-driven. 0 disables. *)
  sink : Su_obs.Events.t option;
      (** when set, the driver emits [io.issue] / [io.start] /
          [io.complete] / [io.retry] / [io.fail] events (and a
          [trace.reset] marker) into the sink. Never perturbs
          scheduling or simulated time. *)
}

val default_config : config
(** Unordered, C-LOOK, 64-fragment concatenation, aggregates only;
    5 attempts with 2 ms base backoff, no timeout, no event sink. *)

type t

val create : engine:Su_sim.Engine.t -> disk:Su_disk.Disk.t -> config -> t

val submit :
  t ->
  kind:Request.kind ->
  lbn:int ->
  nfrags:int ->
  ?flagged:bool ->
  ?deps:int list ->
  ?sync:bool ->
  ?payload:Su_fstypes.Types.cell array ->
  on_complete:
    ((Su_fstypes.Types.cell array option, Su_disk.Fault.error) result -> unit) ->
  unit ->
  int
(** Enqueue a request; returns its id. [payload] must be a private
    snapshot (writes). [sync] marks that a process will block on the
    completion (statistics only).

    A device error or timeout is retried with exponential backoff up
    to [max_attempts]; while retrying, the request stays outstanding,
    so every ordering constraint naming it continues to hold — scheme
    dependency state is untouched by retries. Only after the budget is
    exhausted does [on_complete] fire with [Error]; the failed id then
    behaves as completed for ordering purposes (so the queue cannot
    deadlock behind a dead sector). *)

val completed : t -> int -> bool
(** Whether the given request id has completed. Ids never issued are
    reported complete (useful for chains bookkeeping across runs). *)

val outstanding : t -> int
(** Requests accepted but not yet completed. *)

val queue_length : t -> int
(** Requests waiting in the queue (not on the device). *)

val quiesce : t -> unit
(** Process operation: block until no request is outstanding. *)

val trace : t -> Trace.t

val reset_trace : t -> unit
(** Start a fresh trace (discard accumulated statistics); used to
    exclude benchmark set-up from measurements. *)

val mode : t -> Ordering.mode
