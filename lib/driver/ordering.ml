type flag_semantics = Full | Back | Part | Ignore

type mode =
  | Unordered
  | Flag of { sem : flag_semantics; nr : bool }
  | Chains of { nr : bool }

let flag_semantics_name = function
  | Full -> "Full"
  | Back -> "Back"
  | Part -> "Part"
  | Ignore -> "Ignore"

let mode_name = function
  | Unordered -> "Unordered"
  | Flag { sem; nr } -> flag_semantics_name sem ^ (if nr then "-NR" else "")
  | Chains { nr } -> "Chains" ^ (if nr then "-NR" else "")

type ctx = {
  is_outstanding : int -> bool;
  min_outstanding : unit -> int option;
  conflicting_earlier_write : Request.t -> bool;
}

let gate_completed ctx (r : Request.t) =
  match r.Request.gate with
  | None -> true
  | Some g -> not (ctx.is_outstanding g)

(* No outstanding request has an id below [bound]. The caller's own
   request is outstanding with id >= bound, so [>= bound] is the right
   comparison. *)
let nothing_outstanding_below ctx bound =
  match ctx.min_outstanding () with
  | None -> true
  | Some m -> m >= bound

let flag_eligible sem ctx (r : Request.t) =
  match sem with
  | Ignore -> true
  | Part -> gate_completed ctx r
  | Back ->
    (match r.Request.gate with
     | None -> true
     | Some g -> (not (ctx.is_outstanding g)) && nothing_outstanding_below ctx g)
  | Full ->
    if r.Request.flagged then
      (* a barrier waits for everything issued before it *)
      nothing_outstanding_below ctx r.Request.id
    else
      (* the gate could not start before its predecessors finished,
         so its completion implies theirs *)
      gate_completed ctx r

(* Incremental form of [eligible], used by the driver's dispatch
   index: instead of re-evaluating every queued request after each
   completion, the driver parks a blocked request under the returned
   witness id and re-examines it only when that witness completes.

   The contract is that the witness is {e necessary}: the request
   cannot become eligible while the witness is still outstanding. This
   holds because every condition is a conjunction of monotone clauses
   (ids complete and are never re-issued), so any failing clause
   yields a necessary witness:
   - an outstanding gate or chain dependency must itself complete;
   - a "nothing outstanding below [bound]" clause cannot become true
     before the current minimum outstanding id completes.

   The -NR read bypass is the one disjunction: a read that fails the
   flag/chains clause may still proceed once it stops overlapping an
   earlier outstanding write. Its only necessary condition is the
   conflict check, which the driver applies to every ready candidate
   anyway, so we report such reads as unblocked here and let the
   driver park them under the conflicting write's id. *)
(* Helpers for [first_blocker] live at toplevel so the Unordered path
   (and every classify call) allocates no closures. *)
let nr_read nr (r : Request.t) =
  nr && (match r.Request.kind with Request.Read -> true | Request.Write -> false)

let gate_blocker ctx (r : Request.t) =
  match r.Request.gate with
  | Some g when ctx.is_outstanding g -> Some g
  | Some _ | None -> None

let below_blocker ctx bound =
  match ctx.min_outstanding () with
  | Some m when m < bound -> Some m
  | Some _ | None -> None

let first_blocker mode ctx (r : Request.t) =
  match mode with
  | Unordered -> None
  | Flag { sem; nr } ->
    let flag_blocker =
      match sem with
      | Ignore -> None
      | Part -> gate_blocker ctx r
      | Back ->
        (match gate_blocker ctx r with
         | Some g -> Some g
         | None ->
           (match r.Request.gate with
            | None -> None
            | Some g -> below_blocker ctx g))
      | Full ->
        if r.Request.flagged then below_blocker ctx r.Request.id
        else gate_blocker ctx r
    in
    (match flag_blocker with
     | None -> None
     | Some w -> if nr_read nr r then None else Some w)
  | Chains { nr } ->
    let dep_blocker =
      match List.find_opt ctx.is_outstanding r.Request.deps with
      | Some d -> Some d
      | None -> gate_blocker ctx r
    in
    (match dep_blocker with
     | None -> None
     | Some w -> if nr_read nr r then None else Some w)

let eligible mode ctx (r : Request.t) =
  match mode with
  | Unordered -> true
  | Chains { nr } ->
    let deps_ok =
      List.for_all (fun d -> not (ctx.is_outstanding d)) r.Request.deps
      (* flagged requests act as Part-style gates so the chains scheme
         can fall back on barriers for de-allocation (§3.2) *)
      && gate_completed ctx r
    in
    if deps_ok then true
    else nr_read nr r && not (ctx.conflicting_earlier_write r)
  | Flag { sem; nr } ->
    if flag_eligible sem ctx r then true
    else nr_read nr r && not (ctx.conflicting_earlier_write r)
