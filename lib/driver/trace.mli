(** Per-request I/O measurements, mirroring the paper's instrumented
    device driver: queue delay, disk access (service) time and driver
    response time (issue to completion, both included). *)

type record = {
  r_id : int;
  r_kind : Request.kind;
  r_lbn : int;
  r_nfrags : int;
  r_sync : bool;
  r_issue : float;
  r_start : float;
  r_complete : float;
}

type t

val create : ?keep_records:bool -> unit -> t

val note : t -> record -> unit

val note_io :
  t ->
  id:int ->
  kind:Request.kind ->
  lbn:int ->
  nfrags:int ->
  sync:bool ->
  issue:float ->
  start:float ->
  complete:float ->
  unit
(** Same accounting as {!note} taken field-wise; a [record] is only
    materialized when [keep_records] is set, so the driver's hot
    completion path avoids the allocation. *)

val note_retry : t -> unit
val note_failure : t -> unit
val note_remap : t -> unit

val requests : t -> int
val reads : t -> int
val writes : t -> int

val io_retries : t -> int
(** Device attempts that failed (or timed out) and were re-driven. *)

val io_failures : t -> int
(** Requests completed with an error after the retry budget ran out. *)

val io_remaps : t -> int
(** Bad sectors remapped to spares after retry exhaustion. *)

val avg_access_ms : t -> float
(** Mean disk service time, milliseconds. *)

val avg_response_ms : t -> float
(** Mean driver response time (queue + access), milliseconds. *)

val avg_queue_ms : t -> float

val sync_avg_response_ms : t -> float
(** Response time averaged over requests a process waited for. *)

val note_qdepth : t -> int -> unit
(** Sample the dispatch-queue depth (taken at each dispatch decision). *)

val access_hist : t -> Su_obs.Hist.t
(** Disk service times, seconds. Count/sum/min/max exact, so the
    [avg_*_ms] accessors are identical to the old bare-mean trace. *)

val response_hist : t -> Su_obs.Hist.t
val queue_hist : t -> Su_obs.Hist.t
val sync_response_hist : t -> Su_obs.Hist.t

val qdepth_hist : t -> Su_obs.Hist.t
(** Queue-depth samples (dimensionless; base-1 buckets). *)

val response_percentile_ms : t -> float -> float
(** [response_percentile_ms t p]: bucket-resolution percentile of the
    driver response time, milliseconds. *)

val response_max_ms : t -> float

val records : t -> record list
(** Chronological; empty unless [keep_records] was set. The reversal
    is computed once and cached until the next [note]. *)
