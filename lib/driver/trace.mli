(** Per-request I/O measurements, mirroring the paper's instrumented
    device driver: queue delay, disk access (service) time and driver
    response time (issue to completion, both included). *)

type record = {
  r_id : int;
  r_kind : Request.kind;
  r_lbn : int;
  r_nfrags : int;
  r_sync : bool;
  r_issue : float;
  r_start : float;
  r_complete : float;
}

type t

val create : ?keep_records:bool -> unit -> t

val note : t -> record -> unit

val note_retry : t -> unit
val note_failure : t -> unit

val requests : t -> int
val reads : t -> int
val writes : t -> int

val io_retries : t -> int
(** Device attempts that failed (or timed out) and were re-driven. *)

val io_failures : t -> int
(** Requests completed with an error after the retry budget ran out. *)

val avg_access_ms : t -> float
(** Mean disk service time, milliseconds. *)

val avg_response_ms : t -> float
(** Mean driver response time (queue + access), milliseconds. *)

val avg_queue_ms : t -> float

val sync_avg_response_ms : t -> float
(** Response time averaged over requests a process waited for. *)

val records : t -> record list
(** Chronological; empty unless [keep_records] was set. *)
