(** Disk requests as seen by the device driver. *)

type kind = Read | Write

type t = {
  id : int;  (** unique, increasing in issue order *)
  kind : kind;
  lbn : int;
  nfrags : int;
  payload : Su_fstypes.Types.cell array option;  (** writes only *)
  flagged : bool;  (** ordering flag (scheduler-flag schemes) *)
  gate : int option;
      (** id of the most recent flagged request issued before this
          one, if any (assigned by the driver) *)
  deps : int list;  (** ids this request must follow (scheduler chains) *)
  sync : bool;  (** a process is blocked on this request *)
  issue_time : float;
  on_complete :
    (Su_fstypes.Types.cell array option, Su_disk.Fault.error) result -> unit;
      (** [Ok data] on success ([Some cells] for reads); [Error e]
          after the driver's retry budget is exhausted *)
}

val overlaps : t -> t -> bool
(** Whether the two requests' fragment ranges intersect. *)

val pp : Format.formatter -> t -> unit
