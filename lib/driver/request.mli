(** Disk requests as seen by the device driver.

    Records are recycled through the driver's request pool, so the
    fields are mutable; between [Driver.submit] and the completion
    callback a record is logically immutable, and after completion it
    must not be retained (its identity is reused for a later id). *)

type kind = Read | Write

type t = {
  mutable id : int;  (** unique, increasing in issue order *)
  mutable kind : kind;
  mutable lbn : int;
  mutable nfrags : int;
  mutable payload : Su_fstypes.Types.cell array option;  (** writes only *)
  mutable flagged : bool;  (** ordering flag (scheduler-flag schemes) *)
  mutable gate : int option;
      (** id of the most recent flagged request issued before this
          one, if any (assigned by the driver) *)
  mutable deps : int list;  (** ids this request must follow (scheduler chains) *)
  mutable sync : bool;  (** a process is blocked on this request *)
  mutable issue_time : float;
  mutable start_time : float;
      (** device start time of the operation that carried it;
          [issue_time] until dispatched *)
  mutable on_complete :
    (Su_fstypes.Types.cell array option, Su_disk.Fault.error) result -> unit;
      (** [Ok data] on success ([Some cells] for reads); [Error e]
          after the driver's retry budget is exhausted *)
}

val overlaps : t -> t -> bool
(** Whether the two requests' fragment ranges intersect. *)

val pp : Format.formatter -> t -> unit
