(** Ordering enforcement policies for the device driver (§3 of the
    paper).

    With flag-based ordering the file system sets a one-bit flag on
    writes that later requests may depend on; the flag's semantics
    determine which queued requests are {e eligible} for scheduling.
    With chains, each request carries the explicit list of request ids
    it must follow.

    Flag semantics, most to least restrictive:
    - [Full]: a flagged request is a full barrier — it waits for every
      earlier request, and nothing issued after it may start until it
      completes.
    - [Back]: requests issued after a flagged request may be scheduled
      neither before it nor before anything issued before it; the
      flagged request itself reorders freely with earlier unflagged
      requests.
    - [Part]: requests issued after a flagged request may not pass it;
      everything else reorders freely.
    - [Ignore]: the flag is ignored (unsafe baseline).

    The [nr] option lets read requests bypass writes that are waiting
    only because of ordering restrictions, unless they conflict
    (overlap) with an earlier incomplete write. *)

type flag_semantics = Full | Back | Part | Ignore

type mode =
  | Unordered  (** no driver-level constraints (conventional / soft updates / no-order) *)
  | Flag of { sem : flag_semantics; nr : bool }
  | Chains of { nr : bool }

val flag_semantics_name : flag_semantics -> string
val mode_name : mode -> string

(** Queue-state oracle supplied by the driver. A request is
    {e outstanding} from issue until completion (queued or on the
    device). *)
type ctx = {
  is_outstanding : int -> bool;
  min_outstanding : unit -> int option;
  conflicting_earlier_write : Request.t -> bool;
      (** an outstanding write with a lower id overlaps this request *)
}

val eligible : mode -> ctx -> Request.t -> bool
(** Whether the (queued, outstanding) request may be handed to the
    disk scheduler now. *)

val first_blocker : mode -> ctx -> Request.t -> int option
(** Incremental companion to {!eligible} for the driver's dispatch
    index. [None] means the ordering constraints are satisfied now
    ({e except} possibly the conflicting-earlier-write check, which
    the driver applies separately to all candidates, including the
    [nr] read bypass). [Some w] returns a {e necessary} witness: an
    outstanding request id that must complete before this request can
    become eligible, so the driver may park the request until [w]
    completes instead of re-evaluating it after every completion.
    Invariant (checked by the test suite): [first_blocker] returns
    [None] iff [eligible] holds when no earlier outstanding write
    overlaps the request. *)
