open Su_obs

type record = {
  r_id : int;
  r_kind : Request.kind;
  r_lbn : int;
  r_nfrags : int;
  r_sync : bool;
  r_issue : float;
  r_start : float;
  r_complete : float;
}

type t = {
  keep : bool;
  mutable recs_rev : record list;
  mutable recs_cache : record list option;
  mutable nreads : int;
  mutable nwrites : int;
  mutable nretries : int;
  mutable nfailures : int;
  mutable nremaps : int;
  access : Hist.t;
  response : Hist.t;
  queue : Hist.t;
  sync_response : Hist.t;
  qdepth : Hist.t;
}

let create ?(keep_records = false) () =
  {
    keep = keep_records;
    recs_rev = [];
    recs_cache = None;
    nreads = 0;
    nwrites = 0;
    nretries = 0;
    nfailures = 0;
    nremaps = 0;
    access = Hist.create ();
    response = Hist.create ();
    queue = Hist.create ();
    sync_response = Hist.create ();
    (* Queue-depth samples are small integers; base 1 keeps the low
       buckets meaningful (0..1, 1..2, 2..4, ...). *)
    qdepth = Hist.create ~base:1.0 ~buckets:32 ();
  }

let note_retry t = t.nretries <- t.nretries + 1
let note_failure t = t.nfailures <- t.nfailures + 1
let note_remap t = t.nremaps <- t.nremaps + 1
let io_retries t = t.nretries
let io_failures t = t.nfailures
let io_remaps t = t.nremaps

(* Field-wise fast path: the driver's completion loop measures a
   request without materializing a [record] unless records are kept. *)
let note_io t ~id ~kind ~lbn ~nfrags ~sync ~issue ~start ~complete =
  (match kind with
   | Request.Read -> t.nreads <- t.nreads + 1
   | Request.Write -> t.nwrites <- t.nwrites + 1);
  Hist.add t.access (complete -. start);
  Hist.add t.response (complete -. issue);
  Hist.add t.queue (start -. issue);
  if sync then Hist.add t.sync_response (complete -. issue);
  if t.keep then begin
    t.recs_rev <-
      {
        r_id = id;
        r_kind = kind;
        r_lbn = lbn;
        r_nfrags = nfrags;
        r_sync = sync;
        r_issue = issue;
        r_start = start;
        r_complete = complete;
      }
      :: t.recs_rev;
    t.recs_cache <- None
  end

let note t r =
  note_io t ~id:r.r_id ~kind:r.r_kind ~lbn:r.r_lbn ~nfrags:r.r_nfrags
    ~sync:r.r_sync ~issue:r.r_issue ~start:r.r_start ~complete:r.r_complete

let note_qdepth t depth = Hist.add_int t.qdepth depth

let requests t = t.nreads + t.nwrites
let reads t = t.nreads
let writes t = t.nwrites

let ms h = 1000.0 *. Hist.mean h

let avg_access_ms t = ms t.access
let avg_response_ms t = ms t.response
let avg_queue_ms t = ms t.queue
let sync_avg_response_ms t = ms t.sync_response

let access_hist t = t.access
let response_hist t = t.response
let queue_hist t = t.queue
let sync_response_hist t = t.sync_response
let qdepth_hist t = t.qdepth

let response_percentile_ms t p = 1000.0 *. Hist.percentile t.response p
let response_max_ms t = 1000.0 *. Hist.max_value t.response

let records t =
  match t.recs_cache with
  | Some rs -> rs
  | None ->
    let rs = List.rev t.recs_rev in
    t.recs_cache <- Some rs;
    rs
