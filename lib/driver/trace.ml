open Su_util

type record = {
  r_id : int;
  r_kind : Request.kind;
  r_lbn : int;
  r_nfrags : int;
  r_sync : bool;
  r_issue : float;
  r_start : float;
  r_complete : float;
}

type t = {
  keep : bool;
  mutable recs : record list;
  mutable nreads : int;
  mutable nwrites : int;
  mutable nretries : int;
  mutable nfailures : int;
  access : Stats.t;
  response : Stats.t;
  queue : Stats.t;
  sync_response : Stats.t;
}

let create ?(keep_records = false) () =
  {
    keep = keep_records;
    recs = [];
    nreads = 0;
    nwrites = 0;
    nretries = 0;
    nfailures = 0;
    access = Stats.create ();
    response = Stats.create ();
    queue = Stats.create ();
    sync_response = Stats.create ();
  }

let note_retry t = t.nretries <- t.nretries + 1
let note_failure t = t.nfailures <- t.nfailures + 1
let io_retries t = t.nretries
let io_failures t = t.nfailures

let note t r =
  (match r.r_kind with
   | Request.Read -> t.nreads <- t.nreads + 1
   | Request.Write -> t.nwrites <- t.nwrites + 1);
  Stats.add t.access (r.r_complete -. r.r_start);
  Stats.add t.response (r.r_complete -. r.r_issue);
  Stats.add t.queue (r.r_start -. r.r_issue);
  if r.r_sync then Stats.add t.sync_response (r.r_complete -. r.r_issue);
  if t.keep then t.recs <- r :: t.recs

let requests t = t.nreads + t.nwrites
let reads t = t.nreads
let writes t = t.nwrites

let ms stats = 1000.0 *. Stats.mean stats

let avg_access_ms t = ms t.access
let avg_response_ms t = ms t.response
let avg_queue_ms t = ms t.queue
let sync_avg_response_ms t = ms t.sync_response

let records t = List.rev t.recs
