module Bitset = Su_util.Bitset
module Itbl = Su_util.Itbl

type policy = Clook | Fcfs

type config = {
  mode : Ordering.mode;
  policy : policy;
  max_concat : int;
  keep_records : bool;
  max_attempts : int;
  retry_backoff : float;
  request_timeout : float;
  sink : Su_obs.Events.t option;
}

let default_config =
  {
    mode = Ordering.Unordered;
    policy = Clook;
    max_concat = 64;
    keep_records = false;
    max_attempts = 5;
    retry_backoff = 0.002;
    request_timeout = 0.0;
    sink = None;
  }

(* The queue is maintained as a dispatch index so that accepting a
   request, selecting the next device operation and retiring a
   completion are all cheap in the number of pending requests — the
   seed implementation rebuilt the full eligible list after every disk
   completion, which went quadratic exactly in the paper's interesting
   regime (thousands of delayed writes queued at once).

   Every pending request is in exactly one of two states:
   - {e ready}: eligible for scheduling right now; indexed by id
     ([ready_ids], FCFS order) and by lbn ([ready_lbns] plus the
     [ready_at] buckets, C-LOOK order and concatenation lookups);
   - {e parked}: provably not eligible until a specific outstanding
     request (its {e witness}) completes; stored in [waiters] under
     the witness id. Witnesses come from {!Ordering.first_blocker}
     (gates, chain dependencies, barriers) or from the
     conflicting-earlier-write check (WAW safety), and are always
     necessary conditions, so a parked request never needs to be
     re-examined before its witness completes. Eligibility is
     monotone — ids only ever leave the outstanding set — so a ready
     request never becomes ineligible again.

   All id- and lbn-keyed sets are hierarchical bitsets
   ({!Su_util.Bitset}): O(1) membership flips and allocation-free
   successor queries, where the seed's functional [Set]/[Map]
   structures allocated O(log n) nodes per operation on the per-event
   path. The lbn-keyed buckets ([ready_at], [writes_at]) hold the
   request records themselves, so the scheduling walks (head pick,
   concatenation, WAW scan, waiter promotion) never consult the
   id-keyed table. Request records
   are recycled through [free_reqs] (see {!release}), and the single
   in-flight device operation's parameters live in the [a_*] fields
   with one preallocated completion callback [on_done_fn], so
   steady-state dispatch and completion allocate almost nothing. *)
type t = {
  engine : Su_sim.Engine.t;
  disk : Su_disk.Disk.t;
  config : config;
  mutable trace : Trace.t;
  mutable next_id : int;
  mutable last_flagged : int option;
  fcfs : bool;  (* config.policy = Fcfs, checked on every dispatch *)
  reqs : Request.t Itbl.t;
      (* queued requests by id; consulted (and maintained) only under
         the FCFS policy, whose head pick needs id-to-record mapping *)
  mutable n_queued : int;  (* submitted and not yet sent to the disk *)
  ready_ids : Bitset.t;
      (* queued and eligible, by id; FCFS only, like [reqs] *)
  ready_lbns : Bitset.t;  (* lbns with at least one ready request *)
  ready_at : Request.t list Itbl.t;
      (* lbn -> ready requests, ascending id *)
  waiters : Request.t list Itbl.t;  (* witness id -> parked requests *)
  outstanding_ids : Bitset.t;  (* queued + in-flight *)
  mutable n_outstanding : int;
  write_lbns : Bitset.t;  (* start lbns with outstanding writes *)
  writes_at : Request.t list Itbl.t;
      (* outstanding writes by start lbn, newest first *)
  mutable max_wext : int;
      (* widest write nfrags seen so far; bounds the WAW scan window *)
  mutable head_pos : int;
  mutable idle_waiters : (unit -> unit) list;
  mutable retries : pending_retry list;
      (* failed device operations parked for re-drive after backoff;
         their requests stay outstanding, so everything ordered after
         them stays parked until the retry resolves *)
  mutable octx : Ordering.ctx;  (* built once; closures read live state *)
  mutable free_reqs : Request.t array;  (* recycled request records *)
  mutable n_free : int;
  (* parameters of the in-flight device operation, stashed for
     [on_done_fn] (the disk is serial: one operation in flight) *)
  mutable a_run : Request.t list;
  mutable a_lbn : int;
  mutable a_nfrags : int;
  mutable a_op : Su_disk.Disk.op;
  mutable a_payload : Su_fstypes.Types.cell array option;
  mutable a_attempts : int;
  mutable a_start : float;
  mutable on_done_fn :
    (Su_fstypes.Types.cell array option, Su_disk.Fault.error) result ->
    float ->
    unit;
}

(* A device operation (a concatenated run of requests) that failed or
   timed out and is awaiting its next attempt. *)
and pending_retry = {
  p_run : Request.t list;
  p_lbn : int;
  p_nfrags : int;
  p_op : Su_disk.Disk.op;
  p_payload : Su_fstypes.Types.cell array option;
  p_attempts : int;  (* attempts already made *)
  p_due : float;  (* earliest time of the next attempt *)
}

let trace t = t.trace
let mode t = t.config.mode

let emit t ~kind fields =
  match t.config.sink with
  | None -> ()
  | Some sink ->
    Su_obs.Events.emit sink ~t_sim:(Su_sim.Engine.now t.engine) ~kind fields

let reset_trace t =
  t.trace <- Trace.create ~keep_records:t.config.keep_records ();
  (* Marker so a trace replay can count only post-reset events,
     matching the statistics the fresh Trace will accumulate. *)
  emit t ~kind:"trace.reset" []

let completed t id = not (Bitset.mem t.outstanding_ids id)
let outstanding t = t.n_outstanding
let queue_length t = t.n_queued

(* Cap on the WAW scan window: the scan never needs to look further
   back than the widest outstanding write could reach, and the
   concatenation limit keeps device operations at 64 fragments, so 64
   is also the widest window that can ever pay off. *)
let max_write_extent = 64

let add_write_index t (r : Request.t) =
  let lbn = r.Request.lbn in
  if r.Request.nfrags > t.max_wext then t.max_wext <- r.Request.nfrags;
  match Itbl.get t.writes_at lbn with
  | [] ->
    Itbl.set t.writes_at lbn [ r ];
    Bitset.set t.write_lbns lbn
  | l -> Itbl.set t.writes_at lbn (r :: l)

let remove_write_index t (r : Request.t) =
  let lbn = r.Request.lbn in
  match Itbl.get t.writes_at lbn with
  | [ w ] when w == r ->
    Itbl.remove t.writes_at lbn;
    Bitset.clear t.write_lbns lbn
  | l ->
    (match List.filter (fun w -> w != r) l with
     | [] ->
       Itbl.remove t.writes_at lbn;
       Bitset.clear t.write_lbns lbn
     | l' -> Itbl.set t.writes_at lbn l')

(* An outstanding write with a lower id whose extent overlaps [r].
   Walks only the start lbns that actually hold writes, via the
   bitset's successor query; the window is bounded by the widest
   write seen so far (usually far narrower than the 64-fragment cap —
   single-fragment workloads scan exactly one bucket). *)
let conflicting_earlier_write_id t (r : Request.t) =
  let width = if t.max_wext < max_write_extent then t.max_wext else max_write_extent in
  let lo =
    let l = r.Request.lbn - width + 1 in
    if l < 0 then 0 else l
  in
  let hi = r.Request.lbn + r.Request.nfrags in
  let rec scan start =
    if start < 0 || start >= hi then None
    else
      match
        List.find_opt
          (fun (w : Request.t) ->
            w.Request.id < r.Request.id
            && r.Request.lbn < w.Request.lbn + w.Request.nfrags)
          (Itbl.get t.writes_at start)
      with
      | Some w -> Some w.Request.id
      | None -> scan (Bitset.next_geq t.write_lbns (start + 1))
  in
  scan (Bitset.next_geq t.write_lbns lo)

(* --- the dispatch index ---------------------------------------------- *)

let rec insert_sorted (r : Request.t) = function
  | [] -> [ r ]
  | (x : Request.t) :: _ as l when r.Request.id < x.Request.id -> r :: l
  | x :: rest -> x :: insert_sorted r rest

let make_ready t (r : Request.t) =
  if t.fcfs then Bitset.set t.ready_ids r.Request.id;
  let lbn = r.Request.lbn in
  match Itbl.get t.ready_at lbn with
  | [] ->
    Itbl.set t.ready_at lbn [ r ];
    Bitset.set t.ready_lbns lbn
  | l -> Itbl.set t.ready_at lbn (insert_sorted r l)

let remove_ready t (r : Request.t) =
  if t.fcfs then Bitset.clear t.ready_ids r.Request.id;
  let lbn = r.Request.lbn in
  match Itbl.get t.ready_at lbn with
  | [ x ] when x == r ->
    Itbl.remove t.ready_at lbn;
    Bitset.clear t.ready_lbns lbn
  | l ->
    (match List.filter (fun x -> x != r) l with
     | [] ->
       Itbl.remove t.ready_at lbn;
       Bitset.clear t.ready_lbns lbn
     | l' -> Itbl.set t.ready_at lbn l')

let park t ~witness (r : Request.t) =
  Itbl.set t.waiters witness (r :: Itbl.get t.waiters witness)

(* File a queued request as ready, or park it under a necessary
   witness. A request is dispatchable iff its ordering constraints are
   satisfied and no earlier outstanding write overlaps it; both kinds
   of blockage name an outstanding id that must complete first. *)
let classify t (r : Request.t) =
  match Ordering.first_blocker t.config.mode t.octx r with
  | Some w -> park t ~witness:w r
  | None ->
    (match conflicting_earlier_write_id t r with
     | Some w -> park t ~witness:w r
     | None -> make_ready t r)

(* [witness] has completed: re-examine every request parked under it.
   Each either becomes ready or parks under a new (still outstanding)
   witness. *)
let promote_waiters t witness =
  match Itbl.get t.waiters witness with
  | [] -> ()
  | [ r ] ->
    Itbl.remove t.waiters witness;
    classify t r
  | rs ->
    Itbl.remove t.waiters witness;
    (* re-classify in ascending id order so [park]'s consing keeps
       each waiter list in descending id order deterministically *)
    List.iter (fun r -> classify t r) (List.rev rs)

(* --- scheduling ------------------------------------------------------ *)

let pick_head t =
  if t.fcfs then (
    match Bitset.min_elt t.ready_ids with
    | -1 -> None
    | id -> Some (Itbl.get t.reqs id))
  else begin
    let lbn =
      match Bitset.next_geq t.ready_lbns t.head_pos with
      | -1 -> Bitset.min_elt t.ready_lbns
      | l -> l
    in
    if lbn < 0 then None
    else
      (match Itbl.get t.ready_at lbn with
       | r :: _ -> Some r
       | [] -> assert false)
  end

let same_kind (a : Request.kind) (b : Request.kind) =
  match a, b with
  | Request.Read, Request.Read | Request.Write, Request.Write -> true
  | Request.Read, Request.Write | Request.Write, Request.Read -> false

(* Largest ready id at exactly [lbn] with the same kind as [head]
   (matching the seed's concatenation table, where the last-inserted —
   highest-id — same-kind candidate won). The bucket is ascending, so
   the last match wins. *)
let concat_candidate t (head : Request.t) lbn =
  if lbn < 0 || not (Bitset.mem t.ready_lbns lbn) then None
  else
    let rec best_match best = function
      | [] -> best
      | (r : Request.t) :: rest ->
        let best =
          if same_kind r.Request.kind head.Request.kind && r != head then
            Some r
          else best
        in
        best_match best rest
    in
    best_match None (Itbl.get t.ready_at lbn)

(* Gather ready requests that extend [head] contiguously upward, same
   kind, within the concatenation limit. *)
let concat_run t (head : Request.t) =
  let rec extend acc last_end total =
    if total >= t.config.max_concat then List.rev acc
    else
      match concat_candidate t head last_end with
      | Some r when total + r.Request.nfrags <= t.config.max_concat ->
        remove_ready t r;
        extend (r :: acc) (last_end + r.Request.nfrags) (total + r.Request.nfrags)
      | Some _ | None -> List.rev acc
  in
  remove_ready t head;
  head :: extend [] (head.Request.lbn + head.Request.nfrags) head.Request.nfrags

let notify_if_idle t =
  if t.n_outstanding = 0 && t.idle_waiters <> [] then begin
    let ws = t.idle_waiters in
    t.idle_waiters <- [];
    List.iter (fun w -> Su_sim.Engine.soon t.engine w) ws
  end

(* Pop the earliest-due pending retry whose backoff has elapsed. *)
let take_due_retry t now =
  match t.retries with
  | [] -> None
  | _ ->
    let due, rest =
      List.partition (fun p -> p.p_due <= now +. 1e-12) t.retries
    in
    (match
       List.sort
         (fun a b ->
           let c = Float.compare a.p_due b.p_due in
           if c <> 0 then c else Int.compare a.p_lbn b.p_lbn)
         due
     with
     | [] -> None
     | first :: later ->
       t.retries <- later @ rest;
       Some first)

let ignore_completion
    (_ : (Su_fstypes.Types.cell array option, Su_disk.Fault.error) result) =
  ()

(* Preallocated success value for data-less completions (writes), so
   the per-write completion path does not allocate an [Ok] block. *)
let ok_none : (Su_fstypes.Types.cell array option, Su_disk.Fault.error) result =
  Ok None

(* Completed (or definitively failed) requests go back to the pool;
   payload, callback and dependency fields are dropped immediately so
   recycling can never leak stale data into a later request's
   lifetime. Records parked in [reqs] or held by a pending retry are
   still live and are only released on their eventual completion. *)
let release t (r : Request.t) =
  r.Request.payload <- None;
  r.Request.gate <- None;
  r.Request.deps <- [];
  r.Request.on_complete <- ignore_completion;
  let n = t.n_free in
  if n = Array.length t.free_reqs then begin
    let ncap = if n = 0 then 64 else n * 2 in
    let na = Array.make ncap r in
    Array.blit t.free_reqs 0 na 0 n;
    t.free_reqs <- na
  end;
  t.free_reqs.(n) <- r;
  t.n_free <- n + 1

let rec try_dispatch t =
  if not (Su_disk.Disk.busy t.disk) then begin
    let now = Su_sim.Engine.now t.engine in
    match take_due_retry t now with
    | Some p ->
      submit_run t ~run:p.p_run ~lbn:p.p_lbn ~nfrags:p.p_nfrags ~op:p.p_op
        ~payload:p.p_payload ~attempts:p.p_attempts
    | None ->
      (match pick_head t with
       | None -> ()
       | Some head ->
         Trace.note_qdepth t.trace t.n_queued;
         let run = concat_run t head in
         let sink_on = Option.is_some t.config.sink in
         List.iter
           (fun (r : Request.t) ->
             if t.fcfs then Itbl.remove t.reqs r.Request.id;
             t.n_queued <- t.n_queued - 1;
             r.Request.start_time <- now;
             if sink_on then
               emit t ~kind:"io.start" [ ("id", Su_obs.Json.Int r.Request.id) ])
           run;
         let lbn = head.Request.lbn in
         let nfrags =
           List.fold_left (fun n (r : Request.t) -> n + r.Request.nfrags) 0 run
         in
         let op, payload =
           match head.Request.kind with
           | Request.Read -> (Su_disk.Disk.Read, None)
           | Request.Write ->
             (match run with
              | [ { Request.payload = Some _ as p; _ } ] ->
                (* single-request run: send its snapshot directly *)
                (Su_disk.Disk.Write, p)
              | _ ->
                let cells = Array.make nfrags Su_fstypes.Types.Empty in
                let off = ref 0 in
                List.iter
                  (fun (r : Request.t) ->
                    (match r.Request.payload with
                     | Some p -> Array.blit p 0 cells !off r.Request.nfrags
                     | None -> invalid_arg "Driver: write without payload");
                    off := !off + r.Request.nfrags)
                  run;
                (Su_disk.Disk.Write, Some cells))
         in
         submit_run t ~run ~lbn ~nfrags ~op ~payload ~attempts:0)
  end

(* Drive one device operation, then complete, retry (with exponential
   backoff) or fail the run. While an operation is retrying, its
   requests stay outstanding: gates, chain edges and WAW conflicts
   that name them keep their dependents parked, so the schemes'
   ordering state is untouched by the retry machinery. A write retry
   re-sends the identical payload, so a half-applied (torn) earlier
   attempt is simply overwritten.

   The operation's parameters are stashed in the [a_*] fields rather
   than captured in a fresh closure: the disk services one operation
   at a time, and [handle_done] copies them out before anything can
   re-dispatch. *)
and submit_run t ~run ~lbn ~nfrags ~op ~payload ~attempts =
  t.a_run <- run;
  t.a_lbn <- lbn;
  t.a_nfrags <- nfrags;
  t.a_op <- op;
  t.a_payload <- payload;
  t.a_attempts <- attempts;
  t.a_start <- Su_sim.Engine.now t.engine;
  Su_disk.Disk.submit t.disk ~lbn ~nfrags ~op ~payload ~on_done:t.on_done_fn

and handle_done t result _svc =
  let run = t.a_run
  and lbn = t.a_lbn
  and nfrags = t.a_nfrags
  and op = t.a_op
  and payload = t.a_payload
  and attempts = t.a_attempts
  and attempt_start = t.a_start in
  t.a_run <- [];
  t.a_payload <- None;
  let now = Su_sim.Engine.now t.engine in
  let result =
    (* a per-request deadline turns a stalled-but-successful attempt
       into a failure: the data (if any) is discarded and the
       operation re-driven, as a host would after aborting a hung
       command *)
    let limit = t.config.request_timeout in
    match result with
    | Ok _ when limit > 0.0 && now -. attempt_start > limit ->
      Error (Su_disk.Fault.Timeout { elapsed = now -. attempt_start; limit })
    | r -> r
  in
  match result with
  | Ok data -> complete_run t ~run ~lbn ~nfrags data
  | Error err ->
    let attempts = attempts + 1 in
    if attempts >= t.config.max_attempts then begin
      (* Last resort before failing the run: a write that keeps dying
         on a permanent bad sector can be relocated — remap the
         fragment to a spare and re-drive with a fresh budget (the
         payload is still in hand; reads have nothing to relocate).
         Several bad sectors under one run converge one remap at a
         time; the spare pool bounds the recursion. *)
      let remapped =
        match op, err with
        | Su_disk.Disk.Write, Su_disk.Fault.Bad_sector { lbn = bad } ->
          if Su_disk.Disk.try_remap t.disk ~lbn:bad then Some bad else None
        | _ -> None
      in
      match remapped with
      | Some bad ->
        Trace.note_remap t.trace;
        emit t ~kind:"io.remap"
          [ ("lbn", Su_obs.Json.Int bad); ("run_lbn", Su_obs.Json.Int lbn) ];
        (* completion context: the device is idle right now *)
        submit_run t ~run ~lbn ~nfrags ~op ~payload ~attempts:0
      | None -> fail_run t ~run err
    end
    else begin
      Trace.note_retry t.trace;
      emit t ~kind:"io.retry"
        [ ("lbn", Su_obs.Json.Int lbn); ("attempts", Su_obs.Json.Int attempts) ];
      let delay =
        t.config.retry_backoff *. (2.0 ** float_of_int (attempts - 1))
      in
      t.retries <-
        { p_run = run; p_lbn = lbn; p_nfrags = nfrags; p_op = op;
          p_payload = payload; p_attempts = attempts; p_due = now +. delay }
        :: t.retries;
      Su_sim.Engine.after t.engine delay (fun () -> try_dispatch t);
      (* the device is idle during the backoff window: let ready
         requests (necessarily unordered w.r.t. the failed run)
         use it *)
      try_dispatch t
    end

and complete_run t ~run ~lbn ~nfrags data =
  let complete_time = Su_sim.Engine.now t.engine in
  let sink_on = Option.is_some t.config.sink in
  let off = ref 0 in
  List.iter
    (fun (r : Request.t) ->
      Bitset.clear t.outstanding_ids r.Request.id;
      t.n_outstanding <- t.n_outstanding - 1;
      (match r.Request.kind with
       | Request.Write -> remove_write_index t r
       | Request.Read -> ());
      Trace.note_io t.trace ~id:r.Request.id ~kind:r.Request.kind
        ~lbn:r.Request.lbn ~nfrags:r.Request.nfrags ~sync:r.Request.sync
        ~issue:r.Request.issue_time ~start:r.Request.start_time
        ~complete:complete_time;
      if sink_on then
        emit t ~kind:"io.complete"
          [
            ("id", Su_obs.Json.Int r.Request.id);
            ("lbn", Su_obs.Json.Int r.Request.lbn);
            ( "response_s",
              Su_obs.Json.Float (complete_time -. r.Request.issue_time) );
          ];
      (* promote before the completion callback runs: a callback may
         submit new requests and trigger a dispatch, which must
         already see the requests this completion unblocked *)
      promote_waiters t r.Request.id;
      let result =
        match data with
        | None -> ok_none
        | Some cells ->
          let slice = Some (Array.sub cells !off r.Request.nfrags) in
          off := !off + r.Request.nfrags;
          Ok slice
      in
      let cb = r.Request.on_complete in
      cb result;
      release t r)
    run;
  t.head_pos <- lbn + nfrags;
  notify_if_idle t;
  try_dispatch t

(* The retry budget ran out: complete every request of the run with
   the typed error. The failed ids leave the outstanding set (so the
   queue cannot wedge behind them) and their waiters are promoted —
   whether to re-issue, escalate or give up is the caller's decision;
   the cache re-dirties failed buffers and counts the failure. *)
and fail_run t ~run err =
  List.iter
    (fun (r : Request.t) ->
      Bitset.clear t.outstanding_ids r.Request.id;
      t.n_outstanding <- t.n_outstanding - 1;
      (match r.Request.kind with
       | Request.Write -> remove_write_index t r
       | Request.Read -> ());
      Trace.note_failure t.trace;
      emit t ~kind:"io.fail" [ ("id", Su_obs.Json.Int r.Request.id) ];
      promote_waiters t r.Request.id;
      let cb = r.Request.on_complete in
      cb (Error err);
      release t r)
    run;
  notify_if_idle t;
  try_dispatch t

(* Sentinel for the id-keyed request table: never scheduled, only
   returned for absent ids (which the FCFS head pick never asks for —
   ids in [ready_ids] are always bound). *)
let absent_req : Request.t =
  {
    Request.id = -1;
    kind = Request.Read;
    lbn = 0;
    nfrags = 0;
    payload = None;
    flagged = false;
    gate = None;
    deps = [];
    sync = false;
    issue_time = 0.0;
    start_time = 0.0;
    on_complete = ignore;
  }

let create ~engine ~disk config =
  let t =
    {
      engine;
      disk;
      config;
      trace = Trace.create ~keep_records:config.keep_records ();
      next_id = 0;
      last_flagged = None;
      fcfs = (match config.policy with Fcfs -> true | Clook -> false);
      reqs = Itbl.create ~capacity:16384 ~absent:absent_req ();
      n_queued = 0;
      ready_ids = Bitset.create ();
      ready_lbns = Bitset.create ();
      (* Sized past the deepest burst the benches queue (10k requests
         outstanding at once): growing a hot table mid-burst rehashes
         more entries than the burst itself queues, and 256 KB a table
         is nothing next to the disk image. *)
      ready_at = Itbl.create ~capacity:16384 ~absent:[] ();
      waiters = Itbl.create ~capacity:16384 ~absent:[] ();
      outstanding_ids = Bitset.create ();
      n_outstanding = 0;
      write_lbns = Bitset.create ();
      writes_at = Itbl.create ~capacity:16384 ~absent:[] ();
      max_wext = 1;
      head_pos = 0;
      idle_waiters = [];
      retries = [];
      octx =
        {
          Ordering.is_outstanding = (fun _ -> false);
          min_outstanding = (fun () -> None);
          conflicting_earlier_write = (fun _ -> false);
        };
      free_reqs = [||];
      n_free = 0;
      a_run = [];
      a_lbn = 0;
      a_nfrags = 0;
      a_op = Su_disk.Disk.Read;
      a_payload = None;
      a_attempts = 0;
      a_start = 0.0;
      on_done_fn = (fun _ _ -> ());
    }
  in
  t.octx <-
    {
      Ordering.is_outstanding = (fun id -> Bitset.mem t.outstanding_ids id);
      min_outstanding =
        (fun () ->
          match Bitset.min_elt t.outstanding_ids with
          | -1 -> None
          | m -> Some m);
      conflicting_earlier_write =
        (fun r -> Option.is_some (conflicting_earlier_write_id t r));
    };
  t.on_done_fn <- (fun result svc -> handle_done t result svc);
  Su_disk.Disk.set_idle_callback disk (fun () -> try_dispatch t);
  t

let submit t ~kind ~lbn ~nfrags ?(flagged = false) ?(deps = []) ?(sync = false)
    ?payload ~on_complete () =
  if nfrags <= 0 then invalid_arg "Driver.submit: nfrags must be positive";
  if lbn < 0 then invalid_arg "Driver.submit: negative lbn";
  if lbn + nfrags > Su_disk.Disk.nfrags t.disk then
    invalid_arg "Driver.submit: address out of range";
  (match kind, payload with
   | Request.Write, None -> invalid_arg "Driver.submit: write without payload"
   | Request.Write, Some p when Array.length p <> nfrags ->
     invalid_arg "Driver.submit: payload length mismatch"
   | Request.Write, Some _ | Request.Read, _ -> ());
  let id = t.next_id in
  t.next_id <- id + 1;
  let now = Su_sim.Engine.now t.engine in
  let r =
    if t.n_free > 0 then begin
      let n = t.n_free - 1 in
      t.n_free <- n;
      let r = t.free_reqs.(n) in
      r.Request.id <- id;
      r.Request.kind <- kind;
      r.Request.lbn <- lbn;
      r.Request.nfrags <- nfrags;
      r.Request.payload <- payload;
      r.Request.flagged <- flagged;
      r.Request.gate <- t.last_flagged;
      r.Request.deps <- deps;
      r.Request.sync <- sync;
      r.Request.issue_time <- now;
      r.Request.start_time <- now;
      r.Request.on_complete <- on_complete;
      r
    end
    else
      {
        Request.id;
        kind;
        lbn;
        nfrags;
        payload;
        flagged;
        gate = t.last_flagged;
        deps;
        sync;
        issue_time = now;
        start_time = now;
        on_complete;
      }
  in
  if flagged then t.last_flagged <- Some id;
  if Option.is_some t.config.sink then
    emit t ~kind:"io.issue"
      [
        ("id", Su_obs.Json.Int id);
        ( "op",
          Su_obs.Json.Str
            (match kind with Request.Read -> "read" | Request.Write -> "write")
        );
        ("lbn", Su_obs.Json.Int lbn);
        ("nfrags", Su_obs.Json.Int nfrags);
        ("sync", Su_obs.Json.Bool sync);
      ];
  if t.fcfs then Itbl.set t.reqs id r;
  t.n_queued <- t.n_queued + 1;
  Bitset.set t.outstanding_ids id;
  t.n_outstanding <- t.n_outstanding + 1;
  (match kind with
   | Request.Write -> add_write_index t r
   | Request.Read -> ());
  classify t r;
  try_dispatch t;
  id

let quiesce t =
  if t.n_outstanding > 0 then
    Su_sim.Proc.suspend (fun resume ->
        t.idle_waiters <- resume :: t.idle_waiters)
