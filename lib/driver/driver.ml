module IntMap = Map.Make (Int)
module IntSet = Set.Make (Int)

(* Ready candidates ordered by (lbn, id): C-LOOK picks the first
   element at or after the head position, FCFS the minimum id. *)
module LbnSet = Set.Make (struct
  type t = int * int

  let compare = compare
end)

type policy = Clook | Fcfs

type config = {
  mode : Ordering.mode;
  policy : policy;
  max_concat : int;
  keep_records : bool;
  max_attempts : int;
  retry_backoff : float;
  request_timeout : float;
  sink : Su_obs.Events.t option;
}

let default_config =
  {
    mode = Ordering.Unordered;
    policy = Clook;
    max_concat = 64;
    keep_records = false;
    max_attempts = 5;
    retry_backoff = 0.002;
    request_timeout = 0.0;
    sink = None;
  }

(* The queue is maintained as a dispatch index so that accepting a
   request, selecting the next device operation and retiring a
   completion are all O(log n) in the number of pending requests —
   the seed implementation rebuilt the full eligible list after every
   disk completion, which went quadratic exactly in the paper's
   interesting regime (thousands of delayed writes queued at once).

   Every pending request is in exactly one of two states:
   - {e ready}: eligible for scheduling right now; indexed by id
     ([ready_ids], FCFS order) and by (lbn, id) ([ready_by_lbn],
     C-LOOK order and concatenation lookups);
   - {e parked}: provably not eligible until a specific outstanding
     request (its {e witness}) completes; stored in [waiters] under
     the witness id. Witnesses come from {!Ordering.first_blocker}
     (gates, chain dependencies, barriers) or from the
     conflicting-earlier-write check (WAW safety), and are always
     necessary conditions, so a parked request never needs to be
     re-examined before its witness completes. Eligibility is
     monotone — ids only ever leave the outstanding set — so a ready
     request never becomes ineligible again. *)
type t = {
  engine : Su_sim.Engine.t;
  disk : Su_disk.Disk.t;
  config : config;
  mutable trace : Trace.t;
  mutable next_id : int;
  mutable last_flagged : int option;
  reqs : (int, Request.t) Hashtbl.t;  (* queued requests by id *)
  mutable ready_ids : IntSet.t;  (* queued and eligible, by id *)
  mutable ready_by_lbn : LbnSet.t;  (* same set, by (lbn, id) *)
  waiters : (int, int list) Hashtbl.t;  (* witness id -> parked ids *)
  start_times : (int, float) Hashtbl.t;  (* in-flight: device start per id *)
  mutable outstanding_ids : IntSet.t;  (* queued + in-flight *)
  mutable writes_by_start : (int * int) list IntMap.t;
      (* outstanding writes: start lbn -> [(id, nfrags)] *)
  mutable head_pos : int;
  mutable idle_waiters : (unit -> unit) list;
  mutable retries : pending_retry list;
      (* failed device operations parked for re-drive after backoff;
         their requests stay outstanding, so everything ordered after
         them stays parked until the retry resolves *)
}

(* A device operation (a concatenated run of requests) that failed or
   timed out and is awaiting its next attempt. *)
and pending_retry = {
  p_run : Request.t list;
  p_lbn : int;
  p_nfrags : int;
  p_op : Su_disk.Disk.op;
  p_payload : Su_fstypes.Types.cell array option;
  p_attempts : int;  (* attempts already made *)
  p_due : float;  (* earliest time of the next attempt *)
}


let trace t = t.trace
let mode t = t.config.mode

let emit t ~kind fields =
  match t.config.sink with
  | None -> ()
  | Some sink ->
    Su_obs.Events.emit sink ~t_sim:(Su_sim.Engine.now t.engine) ~kind fields

let reset_trace t =
  t.trace <- Trace.create ~keep_records:t.config.keep_records ();
  (* Marker so a trace replay can count only post-reset events,
     matching the statistics the fresh Trace will accumulate. *)
  emit t ~kind:"trace.reset" []

let completed t id = not (IntSet.mem id t.outstanding_ids)
let outstanding t = IntSet.cardinal t.outstanding_ids
let queue_length t = Hashtbl.length t.reqs

(* Widest write the driver ever accepts; bounds the interval scan. *)
let max_write_extent = 64

let add_write_index t (r : Request.t) =
  let entry = (r.Request.id, r.Request.nfrags) in
  t.writes_by_start <-
    IntMap.update r.Request.lbn
      (function None -> Some [ entry ] | Some l -> Some (entry :: l))
      t.writes_by_start

let remove_write_index t (r : Request.t) =
  t.writes_by_start <-
    IntMap.update r.Request.lbn
      (function
        | None -> None
        | Some l ->
          (match List.filter (fun (id, _) -> id <> r.Request.id) l with
           | [] -> None
           | l' -> Some l'))
      t.writes_by_start

(* An outstanding write with a lower id whose extent overlaps [r];
   the scan window is bounded by the maximum write extent. *)
let conflicting_earlier_write_id t (r : Request.t) =
  let lo = r.Request.lbn - max_write_extent and hi = r.Request.lbn + r.Request.nfrags in
  let seq = IntMap.to_seq_from lo t.writes_by_start in
  let rec scan s =
    match s () with
    | Seq.Nil -> None
    | Seq.Cons ((start, entries), rest) ->
      if start >= hi then None
      else
        (match
           List.find_opt
             (fun (id, len) ->
               id < r.Request.id
               && start < hi
               && r.Request.lbn < start + len)
             entries
         with
         | Some (id, _) -> Some id
         | None -> scan rest)
  in
  scan seq

let ctx t =
  {
    Ordering.is_outstanding = (fun id -> IntSet.mem id t.outstanding_ids);
    min_outstanding = (fun () -> IntSet.min_elt_opt t.outstanding_ids);
    conflicting_earlier_write =
      (fun r -> conflicting_earlier_write_id t r <> None);
  }

(* --- the dispatch index ---------------------------------------------- *)

let make_ready t (r : Request.t) =
  t.ready_ids <- IntSet.add r.Request.id t.ready_ids;
  t.ready_by_lbn <- LbnSet.add (r.Request.lbn, r.Request.id) t.ready_by_lbn

let remove_ready t (r : Request.t) =
  t.ready_ids <- IntSet.remove r.Request.id t.ready_ids;
  t.ready_by_lbn <- LbnSet.remove (r.Request.lbn, r.Request.id) t.ready_by_lbn

let park t ~witness id =
  let prev = Option.value ~default:[] (Hashtbl.find_opt t.waiters witness) in
  Hashtbl.replace t.waiters witness (id :: prev)

(* File a queued request as ready, or park it under a necessary
   witness. A request is dispatchable iff its ordering constraints are
   satisfied and no earlier outstanding write overlaps it; both kinds
   of blockage name an outstanding id that must complete first. *)
let classify t (r : Request.t) =
  match Ordering.first_blocker t.config.mode (ctx t) r with
  | Some w -> park t ~witness:w r.Request.id
  | None ->
    (match conflicting_earlier_write_id t r with
     | Some w -> park t ~witness:w r.Request.id
     | None -> make_ready t r)

(* [witness] has completed: re-examine every request parked under it.
   Each either becomes ready or parks under a new (still outstanding)
   witness. *)
let promote_waiters t witness =
  match Hashtbl.find_opt t.waiters witness with
  | None -> ()
  | Some ids ->
    Hashtbl.remove t.waiters witness;
    (* re-classify in ascending id order so [park]'s consing keeps
       each waiter list in descending id order deterministically *)
    List.iter
      (fun id ->
        match Hashtbl.find_opt t.reqs id with
        | Some r -> classify t r
        | None -> assert false (* parked requests cannot dispatch *))
      (List.rev ids)

(* --- scheduling ------------------------------------------------------ *)

let pick_head t =
  match t.config.policy with
  | Fcfs ->
    (match IntSet.min_elt_opt t.ready_ids with
     | None -> None
     | Some id -> Some (Hashtbl.find t.reqs id))
  | Clook ->
    let ahead =
      LbnSet.find_first_opt (fun (lbn, _) -> lbn >= t.head_pos) t.ready_by_lbn
    in
    let chosen =
      match ahead with None -> LbnSet.min_elt_opt t.ready_by_lbn | some -> some
    in
    (match chosen with
     | None -> None
     | Some (_, id) -> Some (Hashtbl.find t.reqs id))

(* Largest ready id at exactly [lbn] with the same kind as [head]
   (matching the seed's concatenation table, where the last-inserted —
   highest-id — same-kind candidate won). *)
let concat_candidate t (head : Request.t) lbn =
  let rec search upper =
    match
      LbnSet.find_last_opt (fun e -> compare e (lbn, upper) <= 0) t.ready_by_lbn
    with
    | Some (l, id) when l = lbn ->
      let r = Hashtbl.find t.reqs id in
      if r.Request.kind = head.Request.kind && id <> head.Request.id then Some r
      else search (id - 1)
    | Some _ | None -> None
  in
  search max_int

(* Gather ready requests that extend [head] contiguously upward, same
   kind, within the concatenation limit. *)
let concat_run t (head : Request.t) =
  let rec extend acc last_end total =
    if total >= t.config.max_concat then List.rev acc
    else
      match concat_candidate t head last_end with
      | Some r when total + r.Request.nfrags <= t.config.max_concat ->
        remove_ready t r;
        extend (r :: acc) (last_end + r.Request.nfrags) (total + r.Request.nfrags)
      | Some _ | None -> List.rev acc
  in
  remove_ready t head;
  head :: extend [] (head.Request.lbn + head.Request.nfrags) head.Request.nfrags

let notify_if_idle t =
  if IntSet.is_empty t.outstanding_ids && t.idle_waiters <> [] then begin
    let ws = t.idle_waiters in
    t.idle_waiters <- [];
    List.iter (fun w -> Su_sim.Engine.soon t.engine w) ws
  end

(* Pop the earliest-due pending retry whose backoff has elapsed. *)
let take_due_retry t now =
  let due, rest =
    List.partition (fun p -> p.p_due <= now +. 1e-12) t.retries
  in
  match List.sort (fun a b -> compare (a.p_due, a.p_lbn) (b.p_due, b.p_lbn)) due with
  | [] -> None
  | first :: later ->
    t.retries <- later @ rest;
    Some first

let rec try_dispatch t =
  if not (Su_disk.Disk.busy t.disk) then begin
    let now = Su_sim.Engine.now t.engine in
    match take_due_retry t now with
    | Some p ->
      submit_run t ~run:p.p_run ~lbn:p.p_lbn ~nfrags:p.p_nfrags ~op:p.p_op
        ~payload:p.p_payload ~attempts:p.p_attempts
    | None ->
      (match pick_head t with
       | None -> ()
       | Some head ->
         Trace.note_qdepth t.trace (Hashtbl.length t.reqs);
         let run = concat_run t head in
         List.iter
           (fun (r : Request.t) ->
             Hashtbl.remove t.reqs r.Request.id;
             Hashtbl.replace t.start_times r.Request.id now;
             emit t ~kind:"io.start" [ ("id", Su_obs.Json.Int r.Request.id) ])
           run;
         let lbn = head.Request.lbn in
         let nfrags =
           List.fold_left (fun n (r : Request.t) -> n + r.Request.nfrags) 0 run
         in
         let op, payload =
           match head.Request.kind with
           | Request.Read -> (Su_disk.Disk.Read, None)
           | Request.Write ->
             let cells = Array.make nfrags Su_fstypes.Types.Empty in
             let off = ref 0 in
             List.iter
               (fun (r : Request.t) ->
                 (match r.Request.payload with
                  | Some p -> Array.blit p 0 cells !off r.Request.nfrags
                  | None -> invalid_arg "Driver: write without payload");
                 off := !off + r.Request.nfrags)
               run;
             (Su_disk.Disk.Write, Some cells)
         in
         submit_run t ~run ~lbn ~nfrags ~op ~payload ~attempts:0)
  end

(* Drive one device operation, then complete, retry (with exponential
   backoff) or fail the run. While an operation is retrying, its
   requests stay outstanding: gates, chain edges and WAW conflicts
   that name them keep their dependents parked, so the schemes'
   ordering state is untouched by the retry machinery. A write retry
   re-sends the identical payload, so a half-applied (torn) earlier
   attempt is simply overwritten. *)
and submit_run t ~run ~lbn ~nfrags ~op ~payload ~attempts =
  let attempt_start = Su_sim.Engine.now t.engine in
  Su_disk.Disk.submit t.disk ~lbn ~nfrags ~op ~payload
    ~on_done:(fun result _svc ->
      let now = Su_sim.Engine.now t.engine in
      let result =
        (* a per-request deadline turns a stalled-but-successful
           attempt into a failure: the data (if any) is discarded and
           the operation re-driven, as a host would after aborting a
           hung command *)
        let limit = t.config.request_timeout in
        match result with
        | Ok _ when limit > 0.0 && now -. attempt_start > limit ->
          Error (Su_disk.Fault.Timeout { elapsed = now -. attempt_start; limit })
        | r -> r
      in
      match result with
      | Ok data -> complete_run t ~run ~lbn ~nfrags data
      | Error err ->
        let attempts = attempts + 1 in
        if attempts >= t.config.max_attempts then fail_run t ~run err
        else begin
          Trace.note_retry t.trace;
          emit t ~kind:"io.retry"
            [ ("lbn", Su_obs.Json.Int lbn); ("attempts", Su_obs.Json.Int attempts) ];
          let delay =
            t.config.retry_backoff *. (2.0 ** float_of_int (attempts - 1))
          in
          t.retries <-
            { p_run = run; p_lbn = lbn; p_nfrags = nfrags; p_op = op;
              p_payload = payload; p_attempts = attempts; p_due = now +. delay }
            :: t.retries;
          Su_sim.Engine.after t.engine delay (fun () -> try_dispatch t);
          (* the device is idle during the backoff window: let ready
             requests (necessarily unordered w.r.t. the failed run)
             use it *)
          try_dispatch t
        end)

and complete_run t ~run ~lbn ~nfrags data =
  let complete_time = Su_sim.Engine.now t.engine in
  let off = ref 0 in
  List.iter
    (fun (r : Request.t) ->
      t.outstanding_ids <- IntSet.remove r.Request.id t.outstanding_ids;
      if r.Request.kind = Request.Write then remove_write_index t r;
      let start =
        match Hashtbl.find_opt t.start_times r.Request.id with
        | Some s -> s
        | None -> r.Request.issue_time
      in
      Hashtbl.remove t.start_times r.Request.id;
      Trace.note t.trace
        {
          Trace.r_id = r.Request.id;
          r_kind = r.Request.kind;
          r_lbn = r.Request.lbn;
          r_nfrags = r.Request.nfrags;
          r_sync = r.Request.sync;
          r_issue = r.Request.issue_time;
          r_start = start;
          r_complete = complete_time;
        };
      emit t ~kind:"io.complete"
        [
          ("id", Su_obs.Json.Int r.Request.id);
          ("lbn", Su_obs.Json.Int r.Request.lbn);
          ("response_s", Su_obs.Json.Float (complete_time -. r.Request.issue_time));
        ];
      (* promote before the completion callback runs: a
         callback may submit new requests and trigger a
         dispatch, which must already see the requests this
         completion unblocked *)
      promote_waiters t r.Request.id;
      let slice =
        match data with
        | None -> None
        | Some cells ->
          Some (Array.sub cells !off r.Request.nfrags)
      in
      off := !off + r.Request.nfrags;
      r.Request.on_complete (Ok slice))
    run;
  t.head_pos <- lbn + nfrags;
  notify_if_idle t;
  try_dispatch t

(* The retry budget ran out: complete every request of the run with
   the typed error. The failed ids leave the outstanding set (so the
   queue cannot wedge behind them) and their waiters are promoted —
   whether to re-issue, escalate or give up is the caller's decision;
   the cache re-dirties failed buffers and counts the failure. *)
and fail_run t ~run err =
  List.iter
    (fun (r : Request.t) ->
      t.outstanding_ids <- IntSet.remove r.Request.id t.outstanding_ids;
      if r.Request.kind = Request.Write then remove_write_index t r;
      Hashtbl.remove t.start_times r.Request.id;
      Trace.note_failure t.trace;
      emit t ~kind:"io.fail" [ ("id", Su_obs.Json.Int r.Request.id) ];
      promote_waiters t r.Request.id;
      r.Request.on_complete (Error err))
    run;
  notify_if_idle t;
  try_dispatch t

let create ~engine ~disk config =
  let t = {
    engine;
    disk;
    config;
    trace = Trace.create ~keep_records:config.keep_records ();
    next_id = 0;
    last_flagged = None;
    reqs = Hashtbl.create 1024;
    ready_ids = IntSet.empty;
    ready_by_lbn = LbnSet.empty;
    waiters = Hashtbl.create 1024;
    start_times = Hashtbl.create 64;
    outstanding_ids = IntSet.empty;
    writes_by_start = IntMap.empty;
    head_pos = 0;
    idle_waiters = [];
    retries = [];
  }
  in
  Su_disk.Disk.set_idle_callback disk (fun () -> try_dispatch t);
  t

let submit t ~kind ~lbn ~nfrags ?(flagged = false) ?(deps = []) ?(sync = false)
    ?payload ~on_complete () =
  if nfrags <= 0 then invalid_arg "Driver.submit: nfrags must be positive";
  (match kind, payload with
   | Request.Write, None -> invalid_arg "Driver.submit: write without payload"
   | Request.Write, Some p when Array.length p <> nfrags ->
     invalid_arg "Driver.submit: payload length mismatch"
   | Request.Write, Some _ | Request.Read, _ -> ());
  let id = t.next_id in
  t.next_id <- id + 1;
  let r =
    {
      Request.id;
      kind;
      lbn;
      nfrags;
      payload;
      flagged;
      gate = t.last_flagged;
      deps;
      sync;
      issue_time = Su_sim.Engine.now t.engine;
      on_complete;
    }
  in
  if flagged then t.last_flagged <- Some id;
  emit t ~kind:"io.issue"
    [
      ("id", Su_obs.Json.Int id);
      ("op", Su_obs.Json.Str (match kind with Request.Read -> "read" | Request.Write -> "write"));
      ("lbn", Su_obs.Json.Int lbn);
      ("nfrags", Su_obs.Json.Int nfrags);
      ("sync", Su_obs.Json.Bool sync);
    ];
  Hashtbl.replace t.reqs id r;
  t.outstanding_ids <- IntSet.add id t.outstanding_ids;
  if kind = Request.Write then add_write_index t r;
  classify t r;
  try_dispatch t;
  id

let quiesce t =
  if not (IntSet.is_empty t.outstanding_ids) then
    Su_sim.Proc.suspend (fun resume ->
        t.idle_waiters <- resume :: t.idle_waiters)
