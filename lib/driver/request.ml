type kind = Read | Write

(* Fields are mutable so the driver can recycle request records
   through a free pool instead of allocating one per I/O; outside the
   driver a request is logically immutable from submit to
   completion. *)
type t = {
  mutable id : int;
  mutable kind : kind;
  mutable lbn : int;
  mutable nfrags : int;
  mutable payload : Su_fstypes.Types.cell array option;
  mutable flagged : bool;
  mutable gate : int option;
  mutable deps : int list;
  mutable sync : bool;
  mutable issue_time : float;
  mutable start_time : float;
  mutable on_complete :
    (Su_fstypes.Types.cell array option, Su_disk.Fault.error) result -> unit;
}

let overlaps a b = a.lbn < b.lbn + b.nfrags && b.lbn < a.lbn + a.nfrags

let pp ppf r =
  Format.fprintf ppf "#%d %s lbn=%d n=%d%s%s" r.id
    (match r.kind with Read -> "R" | Write -> "W")
    r.lbn r.nfrags
    (if r.flagged then " [flag]" else "")
    (if r.deps = [] then ""
     else " deps=" ^ String.concat "," (List.map string_of_int r.deps))
