type kind = Read | Write

type t = {
  id : int;
  kind : kind;
  lbn : int;
  nfrags : int;
  payload : Su_fstypes.Types.cell array option;
  flagged : bool;
  gate : int option;
  deps : int list;
  sync : bool;
  issue_time : float;
  on_complete :
    (Su_fstypes.Types.cell array option, Su_disk.Fault.error) result -> unit;
}

let overlaps a b = a.lbn < b.lbn + b.nfrags && b.lbn < a.lbn + a.nfrags

let pp ppf r =
  Format.fprintf ppf "#%d %s lbn=%d n=%d%s%s" r.id
    (match r.kind with Read -> "R" | Write -> "W")
    r.lbn r.nfrags
    (if r.flagged then " [flag]" else "")
    (if r.deps = [] then ""
     else " deps=" ^ String.concat "," (List.map string_of_int r.deps))
