(** On-disk data structures.

    Disk contents are modelled as typed values rather than raw bytes:
    one {!cell} per fragment. Metadata blocks (which are always read
    and written as whole, block-aligned extents) occupy eight cells —
    the structured value sits in the first and the rest are [Pad].
    File data is modelled as per-fragment {!stamp}s identifying the
    writer, which is exactly the information a consistency checker
    needs to detect stale-data exposure after a crash. *)

(** Identity of the data stored in one file-data fragment. *)
type stamp =
  | Zeroed  (** written by allocation initialisation *)
  | Written of { inum : int; gen : int; flbn : int }
      (** written by file [inum] (generation [gen]) as its logical
          fragment [flbn] *)

type ftype = F_free | F_reg | F_dir

(** On-disk inode. Block pointers are fragment addresses (block
    aligned for full blocks); 0 means "no block". *)
type dinode = {
  mutable ftype : ftype;
  mutable nlink : int;
  mutable size : int;  (** bytes *)
  mutable gen : int;  (** generation, bumped on each (re)allocation *)
  mutable db : int array;  (** direct pointers, length [Geom.ndaddr] *)
  mutable ib : int;  (** single-indirect block *)
  mutable ib2 : int;  (** double-indirect block *)
  mutable mtime : float;
}

type dirent = { name : string; inum : int }

(** Per-cylinder-group allocation state (the "free maps"). *)
type cg = {
  frag_map : Bytes.t;  (** one byte per fragment in the group; 0=free *)
  inode_map : Bytes.t;  (** one byte per inode in the group; 0=free *)
  mutable nffree : int;  (** free fragments *)
  mutable nifree : int;  (** free inodes *)
}

type superblock = {
  sb_magic : int;
  sb_nfrags : int;
  sb_ncg : int;
  mutable sb_clean : bool;
}

(** A structured metadata block. *)
type meta =
  | Superblock of superblock
  | Cgroup of cg
  | Inodes of dinode array  (** [Geom.inodes_per_block] dinodes *)
  | Dir of dirent option array  (** fixed capacity, [None] = unused slot *)
  | Indirect of int array  (** [Geom.nindir] block pointers *)

(** A write-ahead-log redo record (the journaled-scheme extension).
    Records carry full post-images, so replay in sequence order is
    idempotent and never regresses state. *)
type jrec =
  | J_dinode of { inum : int; din : dinode }
  | J_entry of { blk : int; slot : int; entry : dirent option }
  | J_dir_init of { blk : int }
  | J_ind_init of { blk : int }
  | J_ind_set of { blk : int; slot : int; ptr : int }

(** Contents of one on-disk fragment. *)
type cell =
  | Empty  (** never written *)
  | Pad  (** tail fragment of a metadata block *)
  | Meta of meta
  | Frag of stamp
  | Jlog of { seq : int; recs : jrec list }
      (** one committed log transaction (journal region only) *)
  | Rmap of (int * int) list
      (** bad-sector remap table, [(logical, spare)] in allocation
          order; lives in the reserved slot past the addressable media *)
  | Csum of int array
      (** per-fragment checksum region, one {!cell_digest} per media
          fragment; lives in the reserved slot past the media and the
          spares *)

val magic : int

val cell_digest : cell -> int
(** Structural digest of a cell's canonical serialization (FNV-1a,
    stdlib-only), non-negative. Equal cells digest equal; the checksum
    layer treats a digest mismatch as silent corruption. *)

(** {2 Digest internals}

    The FNV-1a fold underneath {!cell_digest}, exposed so
    {!Volume.digest} can fold the compact slab encoding directly —
    without materializing a [cell] — and still produce bit-identical
    digests. Treat as private: anything else should call
    {!cell_digest}. Every [d_*] threads the running hash [h]; a full
    digest starts at {!fnv_offset} and masks with [land max_int]. *)

val fnv_offset : int
val d_byte : int -> int -> int
val d_int : int -> int -> int
val d_bool : int -> bool -> int
val d_float : int -> float -> int
val d_string : int -> string -> int

val d_bytes : int -> Bytes.t -> int
(** Folds length then each byte in place (same result as
    [d_string h (Bytes.to_string b)], without the copy). *)

val d_int_array : int -> int array -> int
val d_stamp : int -> stamp -> int
val d_ftype : int -> ftype -> int
val d_dinode : int -> dinode -> int
val d_dirent : int -> dirent option -> int
val d_meta : int -> meta -> int

val free_dinode : Geom.t -> dinode
(** A zeroed inode slot (freshly allocated: callers may mutate it). *)

(** An all-free [Inodes] block whose slots share one canonical zeroed
    dinode. Never mutate a dinode in place through an [Inodes] array —
    replace the slot (or {!copy_dinode} first), as every fs/fsck path
    already does; mutating through a slot would alter every free slot
    of every fresh block at once. *)
val fresh_inode_block : Geom.t -> meta
val fresh_dir_block : Geom.t -> dirent option array
val fresh_indirect : Geom.t -> int array
val fresh_cg : Geom.t -> cg

val copy_dinode : dinode -> dinode
val copy_superblock : superblock -> superblock
val copy_meta : meta -> meta
(** Deep copy; used to snapshot write payloads and on reads so cached
    and on-disk state never share mutable structure. *)

val copy_cell : cell -> cell

val dir_entry_count : dirent option array -> int
val dir_find : dirent option array -> string -> (int * dirent) option
(** [(slot, entry)] of the entry named [name], if present. *)

val dir_free_slot : dirent option array -> int option

val stamp_matches : stamp -> inum:int -> gen:int -> bool
(** Whether a fragment's content legitimately belongs to the given
    file generation ([Zeroed] always matches: initialised storage
    leaks nothing). *)

val pp_stamp : Format.formatter -> stamp -> unit
val pp_ftype : Format.formatter -> ftype -> unit
val pp_cell : Format.formatter -> cell -> unit
