type observer = lbn:int -> pre:Types.cell -> post:Types.cell -> unit

let write ?observer image lbn cell =
  let pre = image.(lbn) in
  if pre <> cell then begin
    image.(lbn) <- cell;
    match observer with None -> () | Some f -> f ~lbn ~pre ~post:cell
  end

type recorder = { mutable events : (int * Types.cell * Types.cell) list }

let recorder () = { events = [] }

let observe r ~lbn ~pre ~post = r.events <- (lbn, pre, post) :: r.events

let events r = Array.of_list (List.rev r.events)

let count r = List.length r.events
