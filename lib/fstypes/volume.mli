(** Compact, slab-backed disk image.

    A volume stores one {!Types.cell} per fragment address, but not as
    a cell array: the representation is a flat tag byte plus one word
    of payload per address, with the bulky metadata kinds encoded into
    fixed-stride [Bytes] slabs:

    - [Empty]/[Pad]/[Frag Zeroed] are the tag byte alone;
    - a [Frag (Written _)] stamp packs its three fields into the
      payload word (oversized fields fall back to a boxed cell);
    - [Inodes] blocks encode at [36 + 4*ndaddr] bytes per dinode
      (int64 size and mtime bits, u32 everything else) — ~88 bytes
      per inode against ~200 for the boxed records;
    - [Dir] blocks become a string array + int array pair (names are
      shared immutable strings);
    - [Indirect] blocks encode block pointers at 4 bytes each;
    - everything else (superblock, cgroup, journal, remap table,
      checksum region) — and any slab-class cell whose fields exceed
      the encoding's ranges — stays a boxed cell, stored as given, so
      reserved-cell aliasing (e.g. the live [Csum] array) behaves
      exactly as the legacy cell-array image did.

    The encoding is exact: [read] after [set] returns a cell
    structurally equal to the one stored, and {!digest} folds the
    slabs into the same FNV-1a stream {!Types.cell_digest} produces,
    bit for bit. See HACKING.md "Volume representation". *)

type t

type stats = {
  cells : int;  (** addressable cells *)
  inode_slabs : int;
  dir_slabs : int;
  indirect_slabs : int;
  boxed : int;
  slab_bytes : int;  (** bytes held by [Bytes]-backed slabs *)
}

val create : int -> t
(** [create n] is a volume of [n] cells, all [Empty]. *)

val length : t -> int

val set : t -> int -> Types.cell -> unit
(** Store a cell. Slab-class cells are encoded (the caller keeps
    ownership of the value it passed; later mutation of it cannot
    reach the volume). Boxed kinds are stored as given — the same
    aliasing the legacy [image.(i) <- cell] had. In-place re-encoding
    reuses the existing slab when the shape matches, so steady-state
    overwrites allocate nothing.
    @raise Invalid_argument if the address is out of range. *)

val read : t -> int -> Types.cell
(** Decode a private copy: mutating the result never reaches the
    volume (boxed cells are deep-copied, matching what
    [Types.copy_cell] did on the legacy image). *)

val peek : t -> int -> Types.cell
(** Like {!read} for slab-encoded cells (a fresh decode), but a boxed
    cell is returned live, without the deep copy — do not mutate
    those. This is the cheap accessor behind [Disk.peek]. *)

val digest : t -> int -> int
(** [digest t i = Types.cell_digest (read t i)], computed straight off
    the slabs without materializing the cell. *)

val is_compact : t -> int -> bool
(** Whether the cell at [i] lives in the compact encoding (false =
    boxed). For tests and accounting. *)

val copy : t -> t
(** Snapshot by slab blits ([Bytes.copy]/[Array.copy] per slab; boxed
    cells are deep-copied). *)

val snapshot : t -> Types.cell array
(** The legacy view: a cell array of private copies, equal to the
    [Array.map Types.copy_cell] snapshot of the equivalent cell
    image. *)

val of_cells : Types.cell array -> t

val stats : t -> stats

(** {2 (lbn, slot) accessors}

    Single-record reads that decode one slot instead of the whole
    block — what a scaled fsck or per-inode audit should use against a
    live volume. Each returns the slab decode when the cell is
    compact, and falls back to reading the boxed cell otherwise.
    @raise Invalid_argument if [lbn] is out of range, and [Failure] if
    the cell at [lbn] is not the expected metadata kind. *)

val inode_at : t -> lbn:int -> slot:int -> Types.dinode
val dirent_at : t -> lbn:int -> slot:int -> Types.dirent option
val indirect_at : t -> lbn:int -> slot:int -> int
