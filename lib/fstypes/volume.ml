(* Compact slab-backed disk image. See volume.mli and HACKING.md
   "Volume representation" for the layout contract; the invariants the
   whole refactor rests on are

     read (set t i c) == c           (structural equality, all cells)
     digest t i = Types.cell_digest (read t i)   (bit-identical)

   so the representation swap is invisible to digests, golden traces
   and the crash/fault/corrupt sweeps. *)

(* --- tag plane --------------------------------------------------------- *)

(* One byte per cell says what the payload word [aux] means. *)
let tag_empty = 0
let tag_pad = 1
let tag_frag0 = 2 (* Frag Zeroed, no payload *)
let tag_fragw = 3 (* Frag (Written _) packed into aux *)
let tag_ino = 4 (* aux = inode-slab arena index *)
let tag_dir = 5 (* aux = dir-slab arena index *)
let tag_ind = 6 (* aux = indirect-slab arena index *)
let tag_box = 7 (* aux = boxed-cell arena index *)

(* Packed [Written] stamp: inum:21 | gen:19 | flbn:20 = 60 bits, safely
   inside OCaml's 63-bit int. Covers 2M inodes, 512k generations and
   1 GB files; anything larger boxes. *)
let inum_bits = 21
let gen_bits = 19
let flbn_bits = 20
let fits bits v = v >= 0 && v < 1 lsl bits

let u32_ok v = v >= 0 && v <= 0xffffffff

(* --- growable arenas --------------------------------------------------- *)

type 'a arena = {
  mutable items : 'a array;
  mutable used : int; (* high-water mark *)
  mutable freel : int list; (* released slots below the mark *)
  dummy : 'a; (* fills released slots so the GC drops the payload *)
}

let arena dummy = { items = [||]; used = 0; freel = []; dummy }

let arena_alloc a v =
  match a.freel with
  | i :: tl ->
    a.freel <- tl;
    a.items.(i) <- v;
    i
  | [] ->
    if a.used = Array.length a.items then begin
      let items = Array.make (max 8 (2 * a.used)) a.dummy in
      Array.blit a.items 0 items 0 a.used;
      a.items <- items
    end;
    let i = a.used in
    a.items.(i) <- v;
    a.used <- i + 1;
    i

let arena_release a i =
  a.items.(i) <- a.dummy;
  a.freel <- i :: a.freel

let arena_map f a =
  { items = Array.map f a.items; used = a.used; freel = a.freel; dummy = a.dummy }

let arena_live a = a.used - List.length a.freel

(* --- slab encodings ---------------------------------------------------- *)

let get_u32 b o = Int32.to_int (Bytes.get_int32_le b o) land 0xffffffff
let set_u32 b o v = Bytes.set_int32_le b o (Int32.of_int v)

(* Inode slab: [u32 ipb][u32 ndaddr], then [ipb] records of
   [36 + 4*ndaddr] bytes — i64 size, i64 mtime bits, u32 ftype code /
   nlink / gen / ib / ib2, u32 db[ndaddr]. *)

let ino_stride nd = 36 + (4 * nd)

let ino_ndaddr ds = if Array.length ds = 0 then 0 else Array.length ds.(0).Types.db

let ino_bytes ds = 8 + (Array.length ds * ino_stride (ino_ndaddr ds))

let ftype_code = function Types.F_free -> 1 | Types.F_reg -> 2 | Types.F_dir -> 3

let dinode_conforms nd (d : Types.dinode) =
  Array.length d.Types.db = nd
  && u32_ok d.Types.nlink && u32_ok d.Types.gen && u32_ok d.Types.ib
  && u32_ok d.Types.ib2 && d.Types.size >= 0
  && Array.for_all u32_ok d.Types.db

let ino_conforms ds =
  let nd = ino_ndaddr ds in
  Array.for_all (dinode_conforms nd) ds

let encode_ino b ds =
  let nd = ino_ndaddr ds in
  let stride = ino_stride nd in
  set_u32 b 0 (Array.length ds);
  set_u32 b 4 nd;
  Array.iteri
    (fun s (d : Types.dinode) ->
      let off = 8 + (s * stride) in
      Bytes.set_int64_le b off (Int64.of_int d.Types.size);
      Bytes.set_int64_le b (off + 8) (Int64.bits_of_float d.Types.mtime);
      set_u32 b (off + 16) (ftype_code d.Types.ftype);
      set_u32 b (off + 20) d.Types.nlink;
      set_u32 b (off + 24) d.Types.gen;
      set_u32 b (off + 28) d.Types.ib;
      set_u32 b (off + 32) d.Types.ib2;
      for k = 0 to nd - 1 do
        set_u32 b (off + 36 + (4 * k)) d.Types.db.(k)
      done)
    ds

let decode_dinode b nd slot =
  let off = 8 + (slot * ino_stride nd) in
  {
    Types.ftype =
      (match get_u32 b (off + 16) with
       | 1 -> Types.F_free
       | 2 -> Types.F_reg
       | _ -> Types.F_dir);
    nlink = get_u32 b (off + 20);
    size = Int64.to_int (Bytes.get_int64_le b off);
    gen = get_u32 b (off + 24);
    db = Array.init nd (fun k -> get_u32 b (off + 36 + (4 * k)));
    ib = get_u32 b (off + 28);
    ib2 = get_u32 b (off + 32);
    mtime = Int64.float_of_bits (Bytes.get_int64_le b (off + 8));
  }

let decode_ino b =
  let ipb = get_u32 b 0 in
  let nd = get_u32 b 4 in
  Types.Inodes (Array.init ipb (fun s -> decode_dinode b nd s))

(* Dir slab: parallel arrays, one slot per directory slot. [None] is
   the [none_inum] sentinel; names are shared immutable strings. *)

type dirslab = { dnames : string array; dinums : int array }

let none_inum = min_int
let no_dirslab = { dnames = [||]; dinums = [||] }

let dir_conforms entries =
  Array.for_all
    (function None -> true | Some e -> e.Types.inum <> none_inum)
    entries

let encode_dir slab entries =
  Array.iteri
    (fun k e ->
      match e with
      | None ->
        slab.dnames.(k) <- "";
        slab.dinums.(k) <- none_inum
      | Some e ->
        slab.dnames.(k) <- e.Types.name;
        slab.dinums.(k) <- e.Types.inum)
    entries

let decode_dir slab =
  Types.Dir
    (Array.init (Array.length slab.dinums) (fun k ->
         if slab.dinums.(k) = none_inum then None
         else Some { Types.name = slab.dnames.(k); inum = slab.dinums.(k) }))

(* Indirect slab: u32 per block pointer. *)

let encode_ind b ptrs = Array.iteri (fun k p -> set_u32 b (4 * k) p) ptrs

let decode_ind b =
  Types.Indirect (Array.init (Bytes.length b / 4) (fun k -> get_u32 b (4 * k)))

(* --- the volume -------------------------------------------------------- *)

type t = {
  n : int;
  tags : Bytes.t;
  aux : int array;
  ino : Bytes.t arena;
  dir : dirslab arena;
  ind : Bytes.t arena;
  box : Types.cell arena;
}

type stats = {
  cells : int;
  inode_slabs : int;
  dir_slabs : int;
  indirect_slabs : int;
  boxed : int;
  slab_bytes : int;
}

let create n =
  if n < 0 then invalid_arg "Volume.create: negative size";
  {
    n;
    tags = Bytes.make n '\000';
    aux = Array.make n 0;
    ino = arena Bytes.empty;
    dir = arena no_dirslab;
    ind = arena Bytes.empty;
    box = arena Types.Empty;
  }

let length t = t.n

let check t i who =
  if i < 0 || i >= t.n then invalid_arg ("Volume." ^ who ^ ": address out of range")

let release t i =
  match Bytes.get_uint8 t.tags i with
  | 4 -> arena_release t.ino t.aux.(i)
  | 5 -> arena_release t.dir t.aux.(i)
  | 6 -> arena_release t.ind t.aux.(i)
  | 7 -> arena_release t.box t.aux.(i)
  | _ -> ()

let set t i cell =
  check t i "set";
  let old = Bytes.get_uint8 t.tags i in
  let box c =
    if old = tag_box then t.box.items.(t.aux.(i)) <- c
    else begin
      release t i;
      t.aux.(i) <- arena_alloc t.box c;
      Bytes.set_uint8 t.tags i tag_box
    end
  in
  match cell with
  | Types.Empty ->
    release t i;
    Bytes.set_uint8 t.tags i tag_empty
  | Types.Pad ->
    release t i;
    Bytes.set_uint8 t.tags i tag_pad
  | Types.Frag Types.Zeroed ->
    release t i;
    Bytes.set_uint8 t.tags i tag_frag0
  | Types.Frag (Types.Written { inum; gen; flbn })
    when fits inum_bits inum && fits gen_bits gen && fits flbn_bits flbn ->
    release t i;
    t.aux.(i) <- (inum lsl (gen_bits + flbn_bits)) lor (gen lsl flbn_bits) lor flbn;
    Bytes.set_uint8 t.tags i tag_fragw
  | Types.Meta (Types.Inodes ds) when ino_conforms ds ->
    let need = ino_bytes ds in
    if old = tag_ino && Bytes.length t.ino.items.(t.aux.(i)) = need then
      encode_ino t.ino.items.(t.aux.(i)) ds
    else begin
      release t i;
      let b = Bytes.create need in
      encode_ino b ds;
      t.aux.(i) <- arena_alloc t.ino b;
      Bytes.set_uint8 t.tags i tag_ino
    end
  | Types.Meta (Types.Dir entries) when dir_conforms entries ->
    let len = Array.length entries in
    if old = tag_dir && Array.length t.dir.items.(t.aux.(i)).dinums = len then
      encode_dir t.dir.items.(t.aux.(i)) entries
    else begin
      release t i;
      let slab = { dnames = Array.make len ""; dinums = Array.make len none_inum } in
      encode_dir slab entries;
      t.aux.(i) <- arena_alloc t.dir slab;
      Bytes.set_uint8 t.tags i tag_dir
    end
  | Types.Meta (Types.Indirect ptrs) when Array.for_all u32_ok ptrs ->
    let need = 4 * Array.length ptrs in
    if old = tag_ind && Bytes.length t.ind.items.(t.aux.(i)) = need then
      encode_ind t.ind.items.(t.aux.(i)) ptrs
    else begin
      release t i;
      let b = Bytes.create need in
      encode_ind b ptrs;
      t.aux.(i) <- arena_alloc t.ind b;
      Bytes.set_uint8 t.tags i tag_ind
    end
  | Types.Frag (Types.Written _)
  | Types.Meta (Types.Superblock _ | Types.Cgroup _ | Types.Inodes _
               | Types.Dir _ | Types.Indirect _)
  | Types.Jlog _ | Types.Rmap _ | Types.Csum _ ->
    box cell

let unpack_written a =
  Types.Written
    {
      inum = a lsr (gen_bits + flbn_bits);
      gen = (a lsr flbn_bits) land ((1 lsl gen_bits) - 1);
      flbn = a land ((1 lsl flbn_bits) - 1);
    }

let get t i ~live =
  match Bytes.get_uint8 t.tags i with
  | 0 -> Types.Empty
  | 1 -> Types.Pad
  | 2 -> Types.Frag Types.Zeroed
  | 3 -> Types.Frag (unpack_written t.aux.(i))
  | 4 -> Types.Meta (decode_ino t.ino.items.(t.aux.(i)))
  | 5 -> Types.Meta (decode_dir t.dir.items.(t.aux.(i)))
  | 6 -> Types.Meta (decode_ind t.ind.items.(t.aux.(i)))
  | _ ->
    let c = t.box.items.(t.aux.(i)) in
    if live then c else Types.copy_cell c

let read t i =
  check t i "read";
  get t i ~live:false

let peek t i =
  check t i "peek";
  get t i ~live:true

let is_compact t i =
  check t i "is_compact";
  Bytes.get_uint8 t.tags i <> tag_box

(* --- digests off the slabs --------------------------------------------- *)

(* Each arm reproduces exactly the [Types.cell_digest] fold of the
   decoded cell; the unit and qcheck suites pin the equality. *)

let digest_ino b =
  let ipb = get_u32 b 0 in
  let nd = get_u32 b 4 in
  let stride = ino_stride nd in
  let h = Types.d_byte (Types.d_byte Types.fnv_offset 4) 3 in
  let h = ref (Types.d_int h ipb) in
  for s = 0 to ipb - 1 do
    let off = 8 + (s * stride) in
    h := Types.d_byte !h (get_u32 b (off + 16)); (* d_ftype: the stored code *)
    h := Types.d_int !h (get_u32 b (off + 20)); (* nlink *)
    h := Types.d_int !h (Int64.to_int (Bytes.get_int64_le b off)); (* size *)
    h := Types.d_int !h (get_u32 b (off + 24)); (* gen *)
    h := Types.d_int !h nd; (* d_int_array length prefix *)
    for k = 0 to nd - 1 do
      h := Types.d_int !h (get_u32 b (off + 36 + (4 * k)))
    done;
    h := Types.d_int !h (get_u32 b (off + 28)); (* ib *)
    h := Types.d_int !h (get_u32 b (off + 32)); (* ib2 *)
    let bits = Bytes.get_int64_le b (off + 8) in (* d_float over mtime *)
    h := Types.d_int !h (Int64.to_int (Int64.logand bits 0xffffffffL));
    h := Types.d_int !h (Int64.to_int (Int64.shift_right_logical bits 32))
  done;
  !h land max_int

let digest_dir slab =
  let len = Array.length slab.dinums in
  let h = Types.d_byte (Types.d_byte Types.fnv_offset 4) 4 in
  let h = ref (Types.d_int h len) in
  for k = 0 to len - 1 do
    if slab.dinums.(k) = none_inum then h := Types.d_byte !h 0
    else
      h := Types.d_int (Types.d_string (Types.d_byte !h 1) slab.dnames.(k))
             slab.dinums.(k)
  done;
  !h land max_int

let digest_ind b =
  let len = Bytes.length b / 4 in
  let h = Types.d_byte (Types.d_byte Types.fnv_offset 4) 5 in
  let h = ref (Types.d_int h len) in
  for k = 0 to len - 1 do
    h := Types.d_int !h (get_u32 b (4 * k))
  done;
  !h land max_int

let digest t i =
  check t i "digest";
  match Bytes.get_uint8 t.tags i with
  | 0 -> Types.d_byte Types.fnv_offset 1 land max_int
  | 1 -> Types.d_byte Types.fnv_offset 2 land max_int
  | 2 -> Types.d_byte (Types.d_byte Types.fnv_offset 3) 1 land max_int
  | 3 ->
    let h = Types.d_byte (Types.d_byte Types.fnv_offset 3) 2 in
    let a = t.aux.(i) in
    Types.d_int
      (Types.d_int
         (Types.d_int h (a lsr (gen_bits + flbn_bits)))
         ((a lsr flbn_bits) land ((1 lsl gen_bits) - 1)))
      (a land ((1 lsl flbn_bits) - 1))
    land max_int
  | 4 -> digest_ino t.ino.items.(t.aux.(i))
  | 5 -> digest_dir t.dir.items.(t.aux.(i))
  | 6 -> digest_ind t.ind.items.(t.aux.(i))
  | _ -> Types.cell_digest t.box.items.(t.aux.(i))

(* --- snapshots --------------------------------------------------------- *)

let copy t =
  {
    n = t.n;
    tags = Bytes.copy t.tags;
    aux = Array.copy t.aux;
    ino = arena_map Bytes.copy t.ino;
    dir =
      arena_map
        (fun s -> { dnames = Array.copy s.dnames; dinums = Array.copy s.dinums })
        t.dir;
    ind = arena_map Bytes.copy t.ind;
    box = arena_map Types.copy_cell t.box;
  }

let snapshot t = Array.init t.n (fun i -> get t i ~live:false)

let of_cells cells =
  let t = create (Array.length cells) in
  Array.iteri (fun i c -> set t i c) cells;
  t

let stats t =
  let slab_bytes a =
    let s = ref 0 in
    for i = 0 to a.used - 1 do
      s := !s + Bytes.length a.items.(i)
    done;
    !s
  in
  {
    cells = t.n;
    inode_slabs = arena_live t.ino;
    dir_slabs = arena_live t.dir;
    indirect_slabs = arena_live t.ind;
    boxed = arena_live t.box;
    slab_bytes = slab_bytes t.ino + slab_bytes t.ind + Bytes.length t.tags;
  }

(* --- (lbn, slot) accessors --------------------------------------------- *)

let inode_at t ~lbn ~slot =
  check t lbn "inode_at";
  match Bytes.get_uint8 t.tags lbn with
  | 4 ->
    let b = t.ino.items.(t.aux.(lbn)) in
    let ipb = get_u32 b 0 in
    if slot < 0 || slot >= ipb then invalid_arg "Volume.inode_at: bad slot";
    decode_dinode b (get_u32 b 4) slot
  | 7 -> (
    match t.box.items.(t.aux.(lbn)) with
    | Types.Meta (Types.Inodes ds) ->
      if slot < 0 || slot >= Array.length ds then
        invalid_arg "Volume.inode_at: bad slot";
      Types.copy_dinode ds.(slot)
    | _ -> failwith "Volume.inode_at: not an inode block")
  | _ -> failwith "Volume.inode_at: not an inode block"

let dirent_at t ~lbn ~slot =
  check t lbn "dirent_at";
  match Bytes.get_uint8 t.tags lbn with
  | 5 ->
    let s = t.dir.items.(t.aux.(lbn)) in
    if slot < 0 || slot >= Array.length s.dinums then
      invalid_arg "Volume.dirent_at: bad slot";
    if s.dinums.(slot) = none_inum then None
    else Some { Types.name = s.dnames.(slot); inum = s.dinums.(slot) }
  | 7 -> (
    match t.box.items.(t.aux.(lbn)) with
    | Types.Meta (Types.Dir entries) ->
      if slot < 0 || slot >= Array.length entries then
        invalid_arg "Volume.dirent_at: bad slot";
      entries.(slot)
    | _ -> failwith "Volume.dirent_at: not a directory block")
  | _ -> failwith "Volume.dirent_at: not a directory block"

let indirect_at t ~lbn ~slot =
  check t lbn "indirect_at";
  match Bytes.get_uint8 t.tags lbn with
  | 6 ->
    let b = t.ind.items.(t.aux.(lbn)) in
    if slot < 0 || slot >= Bytes.length b / 4 then
      invalid_arg "Volume.indirect_at: bad slot";
    get_u32 b (4 * slot)
  | 7 -> (
    match t.box.items.(t.aux.(lbn)) with
    | Types.Meta (Types.Indirect ptrs) ->
      if slot < 0 || slot >= Array.length ptrs then
        invalid_arg "Volume.indirect_at: bad slot";
      ptrs.(slot)
    | _ -> failwith "Volume.indirect_at: not an indirect block")
  | _ -> failwith "Volume.indirect_at: not an indirect block"
