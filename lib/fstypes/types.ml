type stamp =
  | Zeroed
  | Written of { inum : int; gen : int; flbn : int }

type ftype = F_free | F_reg | F_dir

type dinode = {
  mutable ftype : ftype;
  mutable nlink : int;
  mutable size : int;
  mutable gen : int;
  mutable db : int array;
  mutable ib : int;
  mutable ib2 : int;
  mutable mtime : float;
}

type dirent = { name : string; inum : int }

type cg = {
  frag_map : Bytes.t;
  inode_map : Bytes.t;
  mutable nffree : int;
  mutable nifree : int;
}

type superblock = {
  sb_magic : int;
  sb_nfrags : int;
  sb_ncg : int;
  mutable sb_clean : bool;
}

type meta =
  | Superblock of superblock
  | Cgroup of cg
  | Inodes of dinode array
  | Dir of dirent option array
  | Indirect of int array

type jrec =
  | J_dinode of { inum : int; din : dinode }
  | J_entry of { blk : int; slot : int; entry : dirent option }
  | J_dir_init of { blk : int }
  | J_ind_init of { blk : int }
  | J_ind_set of { blk : int; slot : int; ptr : int }

type cell =
  | Empty
  | Pad
  | Meta of meta
  | Frag of stamp
  | Jlog of { seq : int; recs : jrec list }
  | Rmap of (int * int) list
      (* bad-sector remap table, [(logical, spare)] in allocation
         order; lives in the reserved slot past the addressable media *)
  | Csum of int array
      (* per-fragment checksum region, one digest per media fragment;
         lives in the reserved slot past the media and the spares *)

let magic = 0x011954

(* --- structural digest (FNV-1a over a canonical serialization) ------ *)

(* 64-bit FNV-1a constants, truncated to OCaml's 63-bit native int.
   Multiplication wraps; the fold is deterministic on any 64-bit
   platform, which is all the checksum layer needs. *)
let fnv_offset = 0x25cbf29ce484222
let fnv_prime = 0x100000001b3

let d_byte h b = (h lxor (b land 0xff)) * fnv_prime

let d_int h v =
  let h = ref h in
  for i = 0 to 7 do
    h := d_byte !h ((v asr (i * 8)) land 0xff)
  done;
  !h

let d_bool h b = d_byte h (if b then 1 else 0)

let d_float h f =
  let bits = Int64.bits_of_float f in
  let lo = Int64.to_int (Int64.logand bits 0xffffffffL) in
  let hi = Int64.to_int (Int64.shift_right_logical bits 32) in
  d_int (d_int h lo) hi

let d_string h s =
  let h = ref (d_int h (String.length s)) in
  String.iter (fun c -> h := d_byte !h (Char.code c)) s;
  !h

(* Same fold as [d_string] over the same bytes — length, then each
   byte — but reading the buffer in place. [Bytes.to_string] here used
   to copy every cg frag/inode map (kilobytes per cell) on each
   structural digest, which is hot under [--checksums] and in
   golden-trace digesting. *)
let d_bytes h b =
  let n = Bytes.length b in
  let h = ref (d_int h n) in
  for i = 0 to n - 1 do
    h := d_byte !h (Char.code (Bytes.unsafe_get b i))
  done;
  !h
let d_int_array h a = Array.fold_left d_int (d_int h (Array.length a)) a

let d_stamp h = function
  | Zeroed -> d_byte h 1
  | Written { inum; gen; flbn } ->
    d_int (d_int (d_int (d_byte h 2) inum) gen) flbn

let d_ftype h t =
  d_byte h (match t with F_free -> 1 | F_reg -> 2 | F_dir -> 3)

let d_dinode h d =
  let h = d_ftype h d.ftype in
  let h = d_int h d.nlink in
  let h = d_int h d.size in
  let h = d_int h d.gen in
  let h = d_int_array h d.db in
  let h = d_int h d.ib in
  let h = d_int h d.ib2 in
  d_float h d.mtime

let d_dirent h = function
  | None -> d_byte h 0
  | Some e -> d_int (d_string (d_byte h 1) e.name) e.inum

let d_meta h = function
  | Superblock sb ->
    let h = d_byte h 1 in
    let h = d_int h sb.sb_magic in
    let h = d_int h sb.sb_nfrags in
    let h = d_int h sb.sb_ncg in
    d_bool h sb.sb_clean
  | Cgroup c ->
    let h = d_byte h 2 in
    let h = d_bytes h c.frag_map in
    let h = d_bytes h c.inode_map in
    let h = d_int h c.nffree in
    d_int h c.nifree
  | Inodes ds ->
    Array.fold_left d_dinode (d_int (d_byte h 3) (Array.length ds)) ds
  | Dir entries ->
    Array.fold_left d_dirent (d_int (d_byte h 4) (Array.length entries)) entries
  | Indirect ptrs -> d_int_array (d_byte h 5) ptrs

let d_jrec h = function
  | J_dinode { inum; din } -> d_dinode (d_int (d_byte h 1) inum) din
  | J_entry { blk; slot; entry } ->
    d_dirent (d_int (d_int (d_byte h 2) blk) slot) entry
  | J_dir_init { blk } -> d_int (d_byte h 3) blk
  | J_ind_init { blk } -> d_int (d_byte h 4) blk
  | J_ind_set { blk; slot; ptr } ->
    d_int (d_int (d_int (d_byte h 5) blk) slot) ptr

let cell_digest c =
  let h =
    match c with
    | Empty -> d_byte fnv_offset 1
    | Pad -> d_byte fnv_offset 2
    | Frag s -> d_stamp (d_byte fnv_offset 3) s
    | Meta m -> d_meta (d_byte fnv_offset 4) m
    | Jlog { seq; recs } ->
      List.fold_left d_jrec
        (d_int (d_int (d_byte fnv_offset 5) seq) (List.length recs))
        recs
    | Rmap entries ->
      List.fold_left
        (fun h (l, s) -> d_int (d_int h l) s)
        (d_int (d_byte fnv_offset 6) (List.length entries))
        entries
    | Csum a -> d_int_array (d_byte fnv_offset 7) a
  in
  h land max_int

let free_dinode (g : Geom.t) =
  {
    ftype = F_free;
    nlink = 0;
    size = 0;
    gen = 0;
    db = Array.make g.Geom.ndaddr 0;
    ib = 0;
    ib2 = 0;
    mtime = 0.0;
  }

(* One canonical all-free dinode, shared by every slot of every fresh
   inode block. The contract that makes the sharing sound: a dinode
   held inside an [Inodes] array is never mutated in place — writers
   replace the slot ([dinodes.(i) <- copy_dinode d]) and every repair
   or rollback path copies the block first ([copy_meta]/[copy_dinode]
   unshare). Before this, each fresh block allocated
   [inodes_per_block] records and [db] arrays that existed only to
   read back as "free": on a large mkfs that is millions of dead
   arrays before first use. *)
let canonical_free_dinode =
  {
    ftype = F_free;
    nlink = 0;
    size = 0;
    gen = 0;
    db = Array.make 12 0;
    ib = 0;
    ib2 = 0;
    mtime = 0.0;
  }

let fresh_inode_block g =
  let d =
    if g.Geom.ndaddr = Array.length canonical_free_dinode.db then
      canonical_free_dinode
    else free_dinode g
  in
  Inodes (Array.make g.Geom.inodes_per_block d)

let fresh_dir_block (g : Geom.t) : dirent option array =
  Array.make g.Geom.dir_capacity None

let fresh_indirect (g : Geom.t) = Array.make g.Geom.nindir 0

let fresh_cg (g : Geom.t) =
  {
    frag_map = Bytes.make g.Geom.cg_frags '\000';
    inode_map = Bytes.make g.Geom.inodes_per_cg '\000';
    nffree = 0;
    nifree = 0;
  }

let copy_dinode d = { d with db = Array.copy d.db }

(* [{ sb with ... }] would also build a fresh record, but reads as a
   no-op; spell the copy out so every [copy_*] helper visibly
   allocates new mutable structure. *)
let copy_superblock sb =
  {
    sb_magic = sb.sb_magic;
    sb_nfrags = sb.sb_nfrags;
    sb_ncg = sb.sb_ncg;
    sb_clean = sb.sb_clean;
  }

let copy_cg c =
  {
    frag_map = Bytes.copy c.frag_map;
    inode_map = Bytes.copy c.inode_map;
    nffree = c.nffree;
    nifree = c.nifree;
  }

let copy_meta = function
  | Superblock sb -> Superblock (copy_superblock sb)
  | Cgroup c -> Cgroup (copy_cg c)
  | Inodes ds -> Inodes (Array.map copy_dinode ds)
  | Dir entries -> Dir (Array.copy entries)
  | Indirect ptrs -> Indirect (Array.copy ptrs)

let copy_jrec = function
  | J_dinode { inum; din } -> J_dinode { inum; din = copy_dinode din }
  | J_entry _ | J_dir_init _ | J_ind_init _ | J_ind_set _ as r -> r

let copy_cell = function
  | Empty -> Empty
  | Pad -> Pad
  | Meta m -> Meta (copy_meta m)
  | Frag s -> Frag s
  | Jlog { seq; recs } -> Jlog { seq; recs = List.map copy_jrec recs }
  | Rmap entries -> Rmap entries
  | Csum a -> Csum (Array.copy a)

let dir_entry_count entries =
  Array.fold_left (fun n e -> match e with Some _ -> n + 1 | None -> n) 0 entries

let dir_find entries name =
  let n = Array.length entries in
  let rec go i =
    if i >= n then None
    else
      match entries.(i) with
      | Some e when e.name = name -> Some (i, e)
      | Some _ | None -> go (i + 1)
  in
  go 0

let dir_free_slot entries =
  let n = Array.length entries in
  let rec go i =
    if i >= n then None
    else match entries.(i) with None -> Some i | Some _ -> go (i + 1)
  in
  go 0

let stamp_matches s ~inum ~gen =
  match s with
  | Zeroed -> true
  | Written w -> w.inum = inum && w.gen = gen

let pp_stamp ppf = function
  | Zeroed -> Format.fprintf ppf "zeroed"
  | Written w -> Format.fprintf ppf "w(ino=%d,gen=%d,flbn=%d)" w.inum w.gen w.flbn

let pp_ftype ppf t =
  Format.pp_print_string ppf
    (match t with F_free -> "free" | F_reg -> "reg" | F_dir -> "dir")

let pp_cell ppf = function
  | Empty -> Format.pp_print_string ppf "empty"
  | Pad -> Format.pp_print_string ppf "pad"
  | Frag s -> Format.fprintf ppf "frag[%a]" pp_stamp s
  | Meta (Superblock _) -> Format.pp_print_string ppf "superblock"
  | Meta (Cgroup _) -> Format.pp_print_string ppf "cgroup"
  | Meta (Inodes _) -> Format.pp_print_string ppf "inodes"
  | Meta (Dir _) -> Format.pp_print_string ppf "dir"
  | Meta (Indirect _) -> Format.pp_print_string ppf "indirect"
  | Jlog { seq; recs } ->
    Format.fprintf ppf "jlog[seq=%d,%d recs]" seq (List.length recs)
  | Rmap entries -> Format.fprintf ppf "rmap[%d entries]" (List.length entries)
  | Csum a -> Format.fprintf ppf "csum[%d frags]" (Array.length a)
