type stamp =
  | Zeroed
  | Written of { inum : int; gen : int; flbn : int }

type ftype = F_free | F_reg | F_dir

type dinode = {
  mutable ftype : ftype;
  mutable nlink : int;
  mutable size : int;
  mutable gen : int;
  mutable db : int array;
  mutable ib : int;
  mutable ib2 : int;
  mutable mtime : float;
}

type dirent = { name : string; inum : int }

type cg = {
  frag_map : Bytes.t;
  inode_map : Bytes.t;
  mutable nffree : int;
  mutable nifree : int;
}

type superblock = {
  sb_magic : int;
  sb_nfrags : int;
  sb_ncg : int;
  mutable sb_clean : bool;
}

type meta =
  | Superblock of superblock
  | Cgroup of cg
  | Inodes of dinode array
  | Dir of dirent option array
  | Indirect of int array

type jrec =
  | J_dinode of { inum : int; din : dinode }
  | J_entry of { blk : int; slot : int; entry : dirent option }
  | J_dir_init of { blk : int }
  | J_ind_init of { blk : int }
  | J_ind_set of { blk : int; slot : int; ptr : int }

type cell =
  | Empty
  | Pad
  | Meta of meta
  | Frag of stamp
  | Jlog of { seq : int; recs : jrec list }
  | Rmap of (int * int) list
      (* bad-sector remap table, [(logical, spare)] in allocation
         order; lives in the reserved slot past the addressable media *)

let magic = 0x011954

let free_dinode (g : Geom.t) =
  {
    ftype = F_free;
    nlink = 0;
    size = 0;
    gen = 0;
    db = Array.make g.Geom.ndaddr 0;
    ib = 0;
    ib2 = 0;
    mtime = 0.0;
  }

let fresh_inode_block g =
  Inodes (Array.init g.Geom.inodes_per_block (fun _ -> free_dinode g))

let fresh_dir_block (g : Geom.t) : dirent option array =
  Array.make g.Geom.dir_capacity None

let fresh_indirect (g : Geom.t) = Array.make g.Geom.nindir 0

let fresh_cg (g : Geom.t) =
  {
    frag_map = Bytes.make g.Geom.cg_frags '\000';
    inode_map = Bytes.make g.Geom.inodes_per_cg '\000';
    nffree = 0;
    nifree = 0;
  }

let copy_dinode d = { d with db = Array.copy d.db }

(* [{ sb with ... }] would also build a fresh record, but reads as a
   no-op; spell the copy out so every [copy_*] helper visibly
   allocates new mutable structure. *)
let copy_superblock sb =
  {
    sb_magic = sb.sb_magic;
    sb_nfrags = sb.sb_nfrags;
    sb_ncg = sb.sb_ncg;
    sb_clean = sb.sb_clean;
  }

let copy_cg c =
  {
    frag_map = Bytes.copy c.frag_map;
    inode_map = Bytes.copy c.inode_map;
    nffree = c.nffree;
    nifree = c.nifree;
  }

let copy_meta = function
  | Superblock sb -> Superblock (copy_superblock sb)
  | Cgroup c -> Cgroup (copy_cg c)
  | Inodes ds -> Inodes (Array.map copy_dinode ds)
  | Dir entries -> Dir (Array.copy entries)
  | Indirect ptrs -> Indirect (Array.copy ptrs)

let copy_jrec = function
  | J_dinode { inum; din } -> J_dinode { inum; din = copy_dinode din }
  | J_entry _ | J_dir_init _ | J_ind_init _ | J_ind_set _ as r -> r

let copy_cell = function
  | Empty -> Empty
  | Pad -> Pad
  | Meta m -> Meta (copy_meta m)
  | Frag s -> Frag s
  | Jlog { seq; recs } -> Jlog { seq; recs = List.map copy_jrec recs }
  | Rmap entries -> Rmap entries

let dir_entry_count entries =
  Array.fold_left (fun n e -> match e with Some _ -> n + 1 | None -> n) 0 entries

let dir_find entries name =
  let n = Array.length entries in
  let rec go i =
    if i >= n then None
    else
      match entries.(i) with
      | Some e when e.name = name -> Some (i, e)
      | Some _ | None -> go (i + 1)
  in
  go 0

let dir_free_slot entries =
  let n = Array.length entries in
  let rec go i =
    if i >= n then None
    else match entries.(i) with None -> Some i | Some _ -> go (i + 1)
  in
  go 0

let stamp_matches s ~inum ~gen =
  match s with
  | Zeroed -> true
  | Written w -> w.inum = inum && w.gen = gen

let pp_stamp ppf = function
  | Zeroed -> Format.fprintf ppf "zeroed"
  | Written w -> Format.fprintf ppf "w(ino=%d,gen=%d,flbn=%d)" w.inum w.gen w.flbn

let pp_ftype ppf t =
  Format.pp_print_string ppf
    (match t with F_free -> "free" | F_reg -> "reg" | F_dir -> "dir")

let pp_cell ppf = function
  | Empty -> Format.pp_print_string ppf "empty"
  | Pad -> Format.pp_print_string ppf "pad"
  | Frag s -> Format.fprintf ppf "frag[%a]" pp_stamp s
  | Meta (Superblock _) -> Format.pp_print_string ppf "superblock"
  | Meta (Cgroup _) -> Format.pp_print_string ppf "cgroup"
  | Meta (Inodes _) -> Format.pp_print_string ppf "inodes"
  | Meta (Dir _) -> Format.pp_print_string ppf "dir"
  | Meta (Indirect _) -> Format.pp_print_string ppf "indirect"
  | Jlog { seq; recs } ->
    Format.fprintf ppf "jlog[seq=%d,%d recs]" seq (List.length recs)
  | Rmap entries -> Format.fprintf ppf "rmap[%d entries]" (List.length entries)
