(** Observed writes to a raw disk image.

    The recovery pipeline (journal replay, fsck repair) mutates crash
    images directly, outside the simulated disk. Routing every one of
    those mutations through {!write} gives recovery the same
    write-boundary structure the disk gives a running workload: an
    observer sees each cell that changes, with its pre- and
    post-image, in order. The crash-state explorer logs these events
    and re-crashes {e recovery itself} at every one of them.

    Writes that would leave the cell structurally unchanged are
    dropped (neither applied nor observed): a recovery round that has
    nothing left to change therefore produces an empty event stream,
    which is exactly the fixed-point test re-entrant recovery is held
    to. *)

type observer = lbn:int -> pre:Types.cell -> post:Types.cell -> unit
(** Invoked after the image is updated. [pre] is the displaced cell
    (no longer referenced by the image), [post] the cell now installed
    — callers must treat both as frozen. *)

val write : ?observer:observer -> Types.cell array -> int -> Types.cell -> unit
(** [write ?observer image lbn cell] installs [cell] at [lbn],
    notifying the observer — unless [cell] is structurally equal to
    the current content, in which case nothing happens. The caller
    must never mutate [cell] afterwards (copy-on-write discipline:
    mutate a private {!Types.copy_cell} copy, then install it). *)

type recorder
(** Accumulates observed writes in order. *)

val recorder : unit -> recorder
val observe : recorder -> observer
val events : recorder -> (int * Types.cell * Types.cell) array
(** [(lbn, pre, post)] per effective write, chronological. *)

val count : recorder -> int
