open Su_fstypes

type violation =
  | Dangling_entry of { dir : int; name : string; inum : int }
  | Bad_pointer of { inum : int; lbn : int; ptr : int }
  | Cross_allocated of { frag : int; owners : int * int }
  | Nlink_low of { inum : int; nlink : int; refs : int }
  | Exposure of { inum : int; flbn : int; frag : int }
  | Bad_dir of { inum : int; reason : string }
  | Csum_mismatch of { frag : int }

type report = {
  violations : violation list;
  leaked_frags : int;
  leaked_inodes : int;
  stale_free : int;
  nlink_high : int;
  files : int;
  dirs : int;
}

let pp_violation ppf = function
  | Dangling_entry { dir; name; inum } ->
    Format.fprintf ppf "dangling entry %S in dir %d -> inode %d" name dir inum
  | Bad_pointer { inum; lbn; ptr } ->
    Format.fprintf ppf "bad pointer in inode %d, block %d -> %d" inum lbn ptr
  | Cross_allocated { frag; owners = a, b } ->
    Format.fprintf ppf "fragment %d owned by inodes %d and %d" frag a b
  | Nlink_low { inum; nlink; refs } ->
    Format.fprintf ppf "inode %d has nlink %d < %d references" inum nlink refs
  | Exposure { inum; flbn; frag } ->
    Format.fprintf ppf "inode %d fragment %d exposes stale data at %d" inum flbn
      frag
  | Bad_dir { inum; reason } ->
    Format.fprintf ppf "directory %d: %s" inum reason
  | Csum_mismatch { frag } ->
    Format.fprintf ppf "fragment %d disagrees with its checksum" frag

type ctx = {
  geom : Geom.t;
  image : Types.cell array;
  check_exposure : bool;
  mutable violations : violation list;
  frag_owner : (int, int) Hashtbl.t;  (* fragment -> owning inode *)
  inode_refs : (int, int) Hashtbl.t;  (* inode -> on-disk references *)
  live : (int, Types.dinode) Hashtbl.t;  (* reachable allocated inodes *)
}

let viol ctx v = ctx.violations <- v :: ctx.violations

let read_dinode ctx inum =
  if not (Geom.valid_inum ctx.geom inum) then None
  else
    let frag = Geom.inode_block_frag ctx.geom inum in
    match ctx.image.(frag) with
    | Types.Meta (Types.Inodes dinodes) ->
      let d = dinodes.(Geom.inode_index_in_block ctx.geom inum) in
      if d.Types.ftype = Types.F_free then None else Some d
    | Types.Empty | Types.Pad | Types.Frag _ | Types.Meta _ | Types.Jlog _ | Types.Rmap _ | Types.Csum _ ->
      (* inode block never written: all-free *)
      None

let claim_frags ctx ~inum ~start ~len =
  for f = start to start + len - 1 do
    if not (Geom.data_frag_in_cg ctx.geom f) then
      viol ctx (Bad_pointer { inum; lbn = -1; ptr = f })
    else
      match Hashtbl.find_opt ctx.frag_owner f with
      | Some other when other <> inum ->
        viol ctx (Cross_allocated { frag = f; owners = (other, inum) })
      | Some _ -> ()
      | None -> Hashtbl.replace ctx.frag_owner f inum
  done

let check_data_extent ctx ~inum ~(din : Types.dinode) ~lbn ~start ~len =
  claim_frags ctx ~inum ~start ~len;
  if ctx.check_exposure then
    for i = 0 to len - 1 do
      let f = start + i in
      if f >= 0 && f < Array.length ctx.image then
        match ctx.image.(f) with
        | Types.Frag s when Types.stamp_matches s ~inum ~gen:din.Types.gen -> ()
        | Types.Frag _ | Types.Empty | Types.Pad | Types.Meta _ | Types.Jlog _ | Types.Rmap _ | Types.Csum _ ->
          viol ctx (Exposure { inum; flbn = (lbn * ctx.geom.Geom.frags_per_block) + i; frag = f })
    done

let read_indirect ctx ~inum ~ptr =
  if ptr <= 0 || ptr >= Array.length ctx.image then begin
    viol ctx (Bad_pointer { inum; lbn = -1; ptr });
    None
  end
  else
    match ctx.image.(ptr) with
    | Types.Meta (Types.Indirect a) -> Some a
    | Types.Empty | Types.Pad | Types.Frag _ | Types.Meta _ | Types.Jlog _ | Types.Rmap _ | Types.Csum _ ->
      (* pointer to an uninitialised indirect block *)
      viol ctx (Bad_pointer { inum; lbn = -1; ptr });
      None

let frags_in_block g ~size ~lbn =
  let bb = Geom.block_bytes g in
  if size <= lbn * bb then 0
  else if size >= (lbn + 1) * bb then g.Geom.frags_per_block
  else Geom.frags_of_bytes g (size - (lbn * bb))

(* the file system allocates partial tail runs only for files that fit
   in the direct pointers; larger files use full blocks *)
let extent_len g ~size ~lbn =
  let partial = frags_in_block g ~size ~lbn in
  if partial = 0 then 0
  else if
    partial < g.Geom.frags_per_block
    && Geom.blocks_of_bytes g size > g.Geom.ndaddr
  then g.Geom.frags_per_block
  else partial

(* Walk a file's block pointers, claiming fragments and checking
   stamps. *)
let check_file_blocks ctx inum (din : Types.dinode) =
  let g = ctx.geom in
  let fpb = g.Geom.frags_per_block in
  let size = din.Types.size in
  let check_ptr ~lbn ptr =
    if ptr <> 0 then begin
      let len = extent_len g ~size ~lbn in
      let len = if len = 0 then fpb else len in
      (* only the bytes the file logically holds must carry its stamps;
         the slack fragments of a full tail block are merely claimed *)
      let data_len = frags_in_block g ~size ~lbn in
      let data_len = if data_len = 0 then len else data_len in
      if din.Types.ftype = Types.F_dir then claim_frags ctx ~inum ~start:ptr ~len
      else begin
        claim_frags ctx ~inum ~start:ptr ~len;
        check_data_extent ctx ~inum ~din ~lbn ~start:ptr ~len:data_len
      end
    end
  in
  Array.iteri (fun i ptr -> check_ptr ~lbn:i ptr) din.Types.db;
  let nd = g.Geom.ndaddr and ni = g.Geom.nindir in
  if din.Types.ib <> 0 then begin
    claim_frags ctx ~inum ~start:din.Types.ib ~len:fpb;
    match read_indirect ctx ~inum ~ptr:din.Types.ib with
    | None -> ()
    | Some a -> Array.iteri (fun i ptr -> check_ptr ~lbn:(nd + i) ptr) a
  end;
  if din.Types.ib2 <> 0 then begin
    claim_frags ctx ~inum ~start:din.Types.ib2 ~len:fpb;
    match read_indirect ctx ~inum ~ptr:din.Types.ib2 with
    | None -> ()
    | Some a2 ->
      Array.iteri
        (fun l1 p1 ->
          if p1 <> 0 then begin
            claim_frags ctx ~inum ~start:p1 ~len:fpb;
            match read_indirect ctx ~inum ~ptr:p1 with
            | None -> ()
            | Some a1 ->
              Array.iteri
                (fun i ptr -> check_ptr ~lbn:(nd + ni + (l1 * ni) + i) ptr)
                a1
          end)
        a2
  end

let dir_blocks ctx inum (din : Types.dinode) =
  (* collect the directory's readable blocks *)
  let g = ctx.geom in
  let nblocks = Geom.blocks_of_bytes g din.Types.size in
  let out = ref [] in
  let fetch ptr =
    if ptr <> 0 then
      match ctx.image.(ptr) with
      | Types.Meta (Types.Dir entries) -> out := entries :: !out
      | Types.Empty | Types.Pad | Types.Frag _ | Types.Meta _ | Types.Jlog _ | Types.Rmap _ | Types.Csum _ ->
        viol ctx (Bad_dir { inum; reason = Printf.sprintf "unreadable block at %d" ptr })
  in
  let nd = g.Geom.ndaddr in
  for i = 0 to min (nblocks - 1) (nd - 1) do
    fetch din.Types.db.(i)
  done;
  if nblocks > nd && din.Types.ib <> 0 then begin
    match read_indirect ctx ~inum ~ptr:din.Types.ib with
    | None -> ()
    | Some a ->
      for i = 0 to nblocks - nd - 1 do
        if i < Array.length a then fetch a.(i)
      done
  end;
  List.rev !out

let add_ref ctx inum =
  Hashtbl.replace ctx.inode_refs inum
    (1 + Option.value ~default:0 (Hashtbl.find_opt ctx.inode_refs inum))

(* Breadth-first walk of the directory tree. *)
let walk ctx =
  let queue = Queue.create () in
  let seen = Hashtbl.create 256 in
  let enqueue_dir inum = if not (Hashtbl.mem seen inum) then begin
      Hashtbl.add seen inum ();
      Queue.add inum queue
    end
  in
  enqueue_dir Geom.root_inum;
  (* "." of the root *)
  while not (Queue.is_empty queue) do
    let dinum = Queue.pop queue in
    match read_dinode ctx dinum with
    | None -> viol ctx (Bad_dir { inum = dinum; reason = "directory inode is free" })
    | Some din ->
      Hashtbl.replace ctx.live dinum din;
      check_file_blocks ctx dinum din;
      let blocks = dir_blocks ctx dinum din in
      let saw_dot = ref false and saw_dotdot = ref false in
      List.iter
        (fun entries ->
          Array.iter
            (function
              | None -> ()
              | Some { Types.name; inum } ->
                if name = "." then begin
                  saw_dot := true;
                  if inum <> dinum then
                    viol ctx (Bad_dir { inum = dinum; reason = "bad \".\"" });
                  add_ref ctx inum
                end
                else if name = ".." then begin
                  saw_dotdot := true;
                  add_ref ctx inum
                end
                else begin
                  add_ref ctx inum;
                  match read_dinode ctx inum with
                  | None -> viol ctx (Dangling_entry { dir = dinum; name; inum })
                  | Some child ->
                    if child.Types.ftype = Types.F_dir then enqueue_dir inum
                    else begin
                      if not (Hashtbl.mem ctx.live inum) then begin
                        Hashtbl.replace ctx.live inum child;
                        check_file_blocks ctx inum child
                      end
                    end
                end)
            entries)
        blocks;
      if blocks <> [] && not (!saw_dot && !saw_dotdot) then
        viol ctx (Bad_dir { inum = dinum; reason = "missing \".\" or \"..\"" })
  done

(* Compare references with link counts and audit the free maps. *)
let audit ctx =
  let nlink_high = ref 0 in
  Hashtbl.iter
    (fun inum (din : Types.dinode) ->
      let refs = Option.value ~default:0 (Hashtbl.find_opt ctx.inode_refs inum) in
      if din.Types.nlink < refs then
        viol ctx (Nlink_low { inum; nlink = din.Types.nlink; refs })
      else if din.Types.nlink > refs then incr nlink_high)
    ctx.live;
  let g = ctx.geom in
  let leaked_frags = ref 0 and leaked_inodes = ref 0 and stale_free = ref 0 in
  for c = 0 to Geom.cg_count g - 1 do
    let header = ctx.image.(Geom.cg_header_frag g c) in
    match header with
    | Types.Meta (Types.Cgroup cg) ->
      let base = Geom.cg_base g c in
      let data_first, data_count = Geom.cg_data_area g c in
      for f = data_first to data_first + data_count - 1 do
        let marked_used = Bytes.get cg.Types.frag_map (f - base) <> '\000' in
        let owner = Hashtbl.find_opt ctx.frag_owner f in
        match owner, marked_used with
        | Some _, false -> incr stale_free
        | None, true -> incr leaked_frags
        | Some _, true | None, false -> ()
      done;
      let first_inum = Geom.first_inum_of_cg g c in
      for j = 0 to g.Geom.inodes_per_cg - 1 do
        let inum = first_inum + j in
        let marked_used = Bytes.get cg.Types.inode_map j <> '\000' in
        let live = Hashtbl.mem ctx.live inum in
        if live && not marked_used then incr stale_free
        else if (not live) && marked_used then incr leaked_inodes
      done
    | Types.Empty | Types.Pad | Types.Frag _ | Types.Meta _ | Types.Jlog _ | Types.Rmap _ | Types.Csum _ ->
      viol ctx (Bad_dir { inum = -c; reason = "unreadable cylinder-group header" })
  done;
  (!leaked_frags, !leaked_inodes, !stale_free, !nlink_high)

(* The persisted checksum region, when the image carries one (always
   past the addressable media — never inside it). *)
let find_csum ~geom image =
  let rec go i =
    if i < geom.Geom.nfrags then None
    else
      match image.(i) with
      | Types.Csum ca -> Some (i, ca)
      | _ -> go (i - 1)
  in
  go (Array.length image - 1)

(* Verify every covered fragment against the region (auto-detected:
   images from checksum-less configurations have no region and no
   checksum phase). *)
let csum_violations ~geom image =
  match find_csum ~geom image with
  | None -> []
  | Some (_, ca) ->
    let lim = min (Array.length ca) (Array.length image) in
    let out = ref [] in
    for f = lim - 1 downto 0 do
      if Types.cell_digest image.(f) <> ca.(f) then
        out := Csum_mismatch { frag = f } :: !out
    done;
    !out

let check ~geom ~image ~check_exposure =
  let ctx =
    {
      geom;
      image;
      check_exposure;
      violations = [];
      frag_owner = Hashtbl.create 4096;
      inode_refs = Hashtbl.create 1024;
      live = Hashtbl.create 1024;
    }
  in
  walk ctx;
  let leaked_frags, leaked_inodes, stale_free, nlink_high = audit ctx in
  let dirs =
    Hashtbl.fold
      (fun _ (d : Types.dinode) n ->
        if d.Types.ftype = Types.F_dir then n + 1 else n)
      ctx.live 0
  in
  {
    violations = List.rev ctx.violations @ csum_violations ~geom image;
    leaked_frags;
    leaked_inodes;
    stale_free;
    nlink_high;
    files = Hashtbl.length ctx.live - dirs;
    dirs;
  }

let ok (r : report) = r.violations = []

(* --- repair -------------------------------------------------------------- *)

type repair_action =
  | Cleared_entry of { dir : int; name : string }
  | Fixed_nlink of { inum : int; from_ : int; to_ : int }
  | Truncated_file of { inum : int }
  | Cleared_dir_block of { inum : int; ptr : int }
  | Restored_dots of { inum : int }
  | Freed_unreachable of { inodes : int }
  | Rebuilt_maps
  | Resynced_csums of { frags : int }

let pp_repair_action ppf = function
  | Cleared_entry { dir; name } ->
    Format.fprintf ppf "cleared entry %S in dir %d" name dir
  | Fixed_nlink { inum; from_; to_ } ->
    Format.fprintf ppf "inode %d link count %d -> %d" inum from_ to_
  | Truncated_file { inum } -> Format.fprintf ppf "truncated inode %d" inum
  | Cleared_dir_block { inum; ptr } ->
    Format.fprintf ppf "cleared unreadable block %d of dir %d" ptr inum
  | Restored_dots { inum } ->
    Format.fprintf ppf "restored \".\"/\"..\" in dir %d" inum
  | Freed_unreachable { inodes } ->
    Format.fprintf ppf "reclaimed %d unreachable inode(s)" inodes
  | Rebuilt_maps -> Format.fprintf ppf "rebuilt allocation maps"
  | Resynced_csums { frags } ->
    Format.fprintf ppf "resynchronised %d checksum(s)" frags

(* Read access to an inode slot. The returned record aliases the
   image: callers must not mutate it — all repair writes go through
   {!update_dinode} / {!update_dir_block}, which copy the cell, apply
   the change, and install the copy via [Imglog.write] so an observer
   sees every effective mutation (and re-running a repair that has
   nothing left to change writes nothing at all). *)
let peek_dinode geom image inum =
  match image.(Geom.inode_block_frag geom inum) with
  | Types.Meta (Types.Inodes dinodes) ->
    Some dinodes.(Geom.inode_index_in_block geom inum)
  | _ -> None

let update_dinode ?observer geom image inum f =
  let blk = Geom.inode_block_frag geom inum in
  match image.(blk) with
  | Types.Meta (Types.Inodes _) ->
    (match Types.copy_cell image.(blk) with
     | Types.Meta (Types.Inodes dinodes) as cell ->
       f dinodes.(Geom.inode_index_in_block geom inum);
       Imglog.write ?observer image blk cell
     | _ -> ())
  | _ -> ()

let update_dir_block ?observer image ptr f =
  match image.(ptr) with
  | Types.Meta (Types.Dir _) ->
    (match Types.copy_cell image.(ptr) with
     | Types.Meta (Types.Dir entries) as cell ->
       f entries;
       Imglog.write ?observer image ptr cell
     | _ -> ())
  | _ -> ()

(* All readable directory blocks of a directory, with their addresses. *)
let dir_blocks_with_addr geom image (din : Types.dinode) =
  let nblocks = Geom.blocks_of_bytes geom din.Types.size in
  let out = ref [] in
  let fetch ptr =
    if ptr <> 0 then
      match image.(ptr) with
      | Types.Meta (Types.Dir entries) -> out := (ptr, entries) :: !out
      | _ -> ()
  in
  let nd = geom.Geom.ndaddr in
  for i = 0 to min (nblocks - 1) (nd - 1) do
    fetch din.Types.db.(i)
  done;
  if nblocks > nd && din.Types.ib <> 0 then begin
    match image.(din.Types.ib) with
    | Types.Meta (Types.Indirect arr) ->
      for i = 0 to nblocks - nd - 1 do
        if i < Array.length arr then fetch arr.(i)
      done
    | _ -> ()
  end;
  List.rev !out

let clear_entry ?observer geom image ~dir ~name =
  match peek_dinode geom image dir with
  | None -> ()
  | Some din ->
    List.iter
      (fun (ptr, blk_entries) ->
        if
          Array.exists
            (function
              | Some en -> en.Types.name = name
              | None -> false)
            blk_entries
        then
          update_dir_block ?observer image ptr (fun entries ->
              Array.iteri
                (fun i e ->
                  match e with
                  | Some en when en.Types.name = name -> entries.(i) <- None
                  | Some _ | None -> ())
                entries))
      (dir_blocks_with_addr geom image din)

let truncate_file ?observer geom image inum =
  update_dinode ?observer geom image inum (fun din ->
      Array.fill din.Types.db 0 (Array.length din.Types.db) 0;
      din.Types.ib <- 0;
      din.Types.ib2 <- 0;
      din.Types.size <- 0)

let clear_bad_dir_block ?observer geom image inum =
  (* remove pointers to unreadable blocks from a directory, then
     compact the survivors: directories must be dense *)
  match peek_dinode geom image inum with
  | None -> ()
  | Some din ->
    let keep = ref [] in
    Array.iter
      (fun ptr ->
        if ptr <> 0 then
          match image.(ptr) with
          | Types.Meta (Types.Dir _) -> keep := ptr :: !keep
          | _ -> ())
      din.Types.db;
    let survivors = Array.of_list (List.rev !keep) in
    update_dinode ?observer geom image inum (fun din ->
        Array.fill din.Types.db 0 (Array.length din.Types.db) 0;
        Array.blit survivors 0 din.Types.db 0 (Array.length survivors);
        din.Types.ib <- 0;
        din.Types.ib2 <- 0;
        din.Types.size <- Array.length survivors * Geom.block_bytes geom)

let restore_dots ?observer geom image ~inum ~parent =
  match peek_dinode geom image inum with
  | None -> ()
  | Some din ->
    (match dir_blocks_with_addr geom image din with
     | (ptr, _) :: _ ->
       update_dir_block ?observer image ptr (fun entries ->
           if Types.dir_find entries "." = None then begin
             match Types.dir_free_slot entries with
             | Some s -> entries.(s) <- Some { Types.name = "."; inum }
             | None -> ()
           end;
           if Types.dir_find entries ".." = None then begin
             match Types.dir_free_slot entries with
             | Some s -> entries.(s) <- Some { Types.name = ".."; inum = parent }
             | None -> ()
           end)
     | [] -> ())

(* Walk the tree recording reference counts and each directory's
   parent (the lenient counterpart of the checking walk). *)
let count_refs geom image =
  let refs = Hashtbl.create 256 in
  let parent = Hashtbl.create 64 in
  let add inum =
    Hashtbl.replace refs inum
      (1 + Option.value ~default:0 (Hashtbl.find_opt refs inum))
  in
  let read inum =
    if not (Geom.valid_inum geom inum) then None
    else
      match image.(Geom.inode_block_frag geom inum) with
      | Types.Meta (Types.Inodes dinodes) ->
        let d = dinodes.(Geom.inode_index_in_block geom inum) in
        if d.Types.ftype = Types.F_free then None else Some d
      | _ -> None
  in
  let seen = Hashtbl.create 256 in
  let queue = Queue.create () in
  Queue.add Geom.root_inum queue;
  Hashtbl.add seen Geom.root_inum ();
  while not (Queue.is_empty queue) do
    let dinum = Queue.pop queue in
    match read dinum with
    | None -> ()
    | Some din ->
      List.iter
        (fun (_, entries) ->
          Array.iter
            (function
              | Some { Types.name; inum } ->
                add inum;
                if name <> "." && name <> ".." && not (Hashtbl.mem seen inum)
                then begin
                  Hashtbl.add seen inum ();
                  match read inum with
                  | Some c when c.Types.ftype = Types.F_dir ->
                    Hashtbl.replace parent inum dinum;
                    Queue.add inum queue
                  | Some _ | None -> ()
                end
              | None -> ())
            entries)
        (dir_blocks_with_addr geom image din)
  done;
  (refs, parent, seen)

type repair_outcome = {
  actions : repair_action list;
  final : report;
  rounds : int;
  converged : bool;
}

(* Test-only: extra image writes injected at the top of every repair
   call, routed through the same observed write path as real repair
   actions. The nested (crash-during-recovery) sweep uses this to
   prove it catches a non-idempotent repair: a hook whose writes
   depend on the current image content never reaches a write-free
   round, and the sweep's fixed-point check flags it. Never set
   outside tests. *)
let repair_test_hook :
    (Su_fstypes.Types.cell array -> (int * Su_fstypes.Types.cell) list)
      option
      ref =
  ref None

let repair ?observer ~geom ~image ~check_exposure () =
  (match !repair_test_hook with
   | Some hook ->
     List.iter
       (fun (lbn, cell) -> Imglog.write ?observer image lbn cell)
       (hook image)
   | None -> ());
  let actions = ref [] in
  let note a = actions := a :: !actions in
  let rounds = ref 0 in
  let converged = ref true in
  let continue_ = ref true in
  while !continue_ do
    incr rounds;
    if !rounds > 8 then begin
      (* structural repairs keep uncovering each other: stop rewriting
         and report divergence instead of dying — the settle/reclaim
         passes below still leave the image as sane as possible *)
      converged := false;
      continue_ := false
    end
    else begin
      let r = check ~geom ~image ~check_exposure in
      let structural =
        List.filter
          (function
            | Nlink_low _ | Csum_mismatch _ -> false
            | _ -> true)
          r.violations
      in
      if structural = [] then continue_ := false
      else begin
        let _, parents, _ = count_refs geom image in
        List.iter
          (fun v ->
            match v with
            | Dangling_entry { dir; name; _ } ->
              clear_entry ?observer geom image ~dir ~name;
              note (Cleared_entry { dir; name })
            | Cross_allocated { owners = (_, b); _ } ->
              truncate_file ?observer geom image b;
              note (Truncated_file { inum = b })
            | Exposure { inum; _ } | Bad_pointer { inum; _ } ->
              if inum > 0 then begin
                truncate_file ?observer geom image inum;
                note (Truncated_file { inum })
              end
            | Bad_dir { inum; reason } when inum > 0 ->
              if String.length reason >= 7 && String.sub reason 0 7 = "missing"
              then begin
                let parent =
                  Option.value ~default:Geom.root_inum
                    (Hashtbl.find_opt parents inum)
                in
                restore_dots ?observer geom image ~inum ~parent;
                note (Restored_dots { inum })
              end
              else begin
                clear_bad_dir_block ?observer geom image inum;
                note (Cleared_dir_block { inum; ptr = 0 })
              end
            | Bad_dir _ | Nlink_low _ | Csum_mismatch _ -> ())
          structural
      end
    end
  done;
  (* settle link counts against the observed reference counts and
     reclaim unreachable inodes *)
  let refs, _, seen = count_refs geom image in
  Hashtbl.iter
    (fun inum () ->
      match peek_dinode geom image inum with
      | Some din when din.Types.ftype <> Types.F_free ->
        let want = Option.value ~default:0 (Hashtbl.find_opt refs inum) in
        if din.Types.nlink <> want && want > 0 then begin
          note (Fixed_nlink { inum; from_ = din.Types.nlink; to_ = want });
          update_dinode ?observer geom image inum (fun d ->
              d.Types.nlink <- want)
        end
      | Some _ | None -> ())
    seen;
  (* unreachable allocated inodes: clear them (their storage is
     reclaimed by the map rebuild) *)
  let freed = ref 0 in
  for c = 0 to Geom.cg_count geom - 1 do
    let first = Geom.first_inum_of_cg geom c in
    for j = 0 to geom.Geom.inodes_per_cg - 1 do
      let inum = first + j in
      if not (Hashtbl.mem seen inum) then
        match peek_dinode geom image inum with
        | Some din when din.Types.ftype <> Types.F_free ->
          update_dinode ?observer geom image inum (fun d ->
              d.Types.ftype <- Types.F_free;
              d.Types.nlink <- 0;
              Array.fill d.Types.db 0 (Array.length d.Types.db) 0;
              d.Types.ib <- 0;
              d.Types.ib2 <- 0;
              d.Types.size <- 0);
          incr freed
        | Some _ | None -> ()
    done
  done;
  if !freed > 0 then note (Freed_unreachable { inodes = !freed });
  Su_core.Journaled.rebuild_maps ?observer geom image;
  note Rebuilt_maps;
  (* resynchronise the checksum region to the repaired image: data the
     structural phase could not save is already gone (typed, reported
     above) — what matters now is that every fragment verifies so the
     volume remounts clean. One equality-suppressed write keeps the
     pass idempotent. *)
  (match find_csum ~geom image with
   | None -> ()
   | Some (slot, ca) ->
     let fresh = Array.copy ca in
     let lim = min (Array.length fresh) (Array.length image) in
     let changed = ref 0 in
     for f = 0 to lim - 1 do
       let d = Types.cell_digest image.(f) in
       if fresh.(f) <> d then begin
         fresh.(f) <- d;
         incr changed
       end
     done;
     if !changed > 0 then begin
       Imglog.write ?observer image slot (Types.Csum fresh);
       note (Resynced_csums { frags = !changed })
     end);
  let final = check ~geom ~image ~check_exposure in
  {
    actions = List.rev !actions;
    final;
    rounds = !rounds;
    converged = !converged;
  }
