(** Superblock replication: mount-time cross-check and restore.

    mkfs writes one superblock copy at the head of every cylinder
    group; losing copies therefore degrades the volume instead of
    killing it. {!check_and_restore} validates every copy (content
    check via {!Su_disk.Disk.peek}, readability check against the
    device's permanent bad-sector list) and rewrites invalid ones from
    a surviving sister, remapping a permanently bad home to a spare
    first when possible. *)

val is_valid : geom:Su_fstypes.Geom.t -> Su_fstypes.Types.cell -> bool
(** Does this cell hold a superblock consistent with the geometry? *)

val copy_frags : Su_fstypes.Geom.t -> int list
(** Fragment addresses of all superblock copies (one per group). *)

val is_copy_frag : Su_fstypes.Geom.t -> int -> bool
(** Does this fragment fall inside a superblock copy's block? *)

val check_and_restore :
  geom:Su_fstypes.Geom.t -> Su_disk.Disk.t -> (int, string) result
(** [Ok n]: [n] copies were restored from a sister ([0] = all good).
    [Error _]: every copy is invalid or unreadable — the volume cannot
    be mounted safely. *)
