(** Shared mutable state of a mounted file system.

    This module only defines the state record and tiny helpers; the
    behaviour lives in {!Alloc}, {!Inode}, {!Dir}, {!File} and
    {!Fsops}. *)

open Su_fstypes

(** An in-core inode: the authoritative copy the file system
    manipulates, separate from the buffer-cache block that backs it
    (footnote 11 of the paper). *)
type incore = {
  inum : int;
  din : Types.dinode;
  ilock : Su_sim.Sync.Mutex.t;
  mutable refs : int;
}

type t = {
  geom : Geom.t;
  engine : Su_sim.Engine.t;
  cpu : Su_sim.Cpu.t;
  disk : Su_disk.Disk.t;
  driver : Su_driver.Driver.t;
  cache : Su_cache.Bcache.t;
  scheme : Su_core.Scheme_intf.t;
  costs : Costs.t;
  alloc_init : bool;  (** enforce allocation initialisation for file data *)
  alloc_mutex : Su_sim.Sync.Mutex.t;
  icache : (int, incore) Hashtbl.t;
  rotor : int array;  (** per-group data allocation cursor *)
  freemaps : Freemap.t array;
      (** per-group bitset mirror of the allocation maps, built lazily
          under [alloc_mutex]; same allocation decisions as the byte
          scans it accelerates (see {!Freemap}) *)
  dirx : Dir_index.t option;
      (** directory lookup index, when [Fs.config.dir_index] is set *)
  mutable next_cg : int;  (** round-robin for new directories *)
  mutable gen_counter : int;
  softdep_stats : Su_core.Softdep.stats option;
  journal_stats : Su_core.Journaled.stats option;
  obs : Su_obs.Events.t option;
      (** event sink for the JSONL trace; shared with the driver and
          cache configs when [Fs.config.trace_sink] is set *)
  health : Health.t;
      (** online fault-tolerance state; {!Fsops} refuses mutation once
          it reaches [Readonly] *)
}

val charge : t -> float -> unit
(** Consume CPU on the shared processor (blocking). *)

val block_frags : t -> int
val block_bytes : t -> int
