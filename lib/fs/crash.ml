let crash_at (w : Fs.world) time =
  Su_sim.Engine.run ~until:time w.Fs.engine;
  Su_sim.Engine.stop w.Fs.engine;
  Su_disk.Disk.image_snapshot w.Fs.disk

let crash_points trace =
  List.sort_uniq Float.compare
    (List.filter_map
       (fun (r : Su_driver.Trace.record) ->
         match r.Su_driver.Trace.r_kind with
         | Su_driver.Request.Write -> Some r.Su_driver.Trace.r_complete
         | Su_driver.Request.Read -> None)
       (Su_driver.Trace.records trace))

let torn_variants (w : Fs.world) image =
  match Su_disk.Disk.inflight_write w.Fs.disk with
  | None -> []
  | Some (lbn, payload) ->
    let n = Array.length payload in
    (* applied = 1 .. n-1: prefix landed, tail lost. 0 applied is the
       snapshot itself and n applied is the next crash point. *)
    List.init (max 0 (n - 1)) (fun k ->
        let img = Array.map Su_fstypes.Types.copy_cell image in
        for i = 0 to k do
          img.(lbn + i) <- Su_fstypes.Types.copy_cell payload.(i)
        done;
        img)

let fsck_image (w : Fs.world) image =
  (* journaled configurations replay their log first, exactly as the
     recovery procedure would after a real crash *)
  Fs.recover_image w.Fs.cfg image;
  let check_exposure =
    match w.Fs.cfg.Fs.scheme with
    | Fs.Journaled _ -> false  (* metadata journaling does not cover data *)
    | _ -> w.Fs.cfg.Fs.alloc_init
  in
  Fsck.check ~geom:w.Fs.cfg.Fs.geom ~image ~check_exposure

let crash_and_check w time = fsck_image w (crash_at w time)
