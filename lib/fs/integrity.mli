(** End-to-end metadata integrity: checksum verification and
    self-healing reads.

    The disk's checksum region (see {!Su_disk.Disk.create}) digests
    every fragment at write-{e acknowledgement} time, so silent faults
    — read bit-flips, lost writes, misdirected writes — leave a
    detectable disagreement between the region and the media. This
    module verifies every cache fill against the region (installed as
    the {!Su_cache.Bcache.hooks} [verify_fill] hook by {!Fs.build}
    when [config.checksums] is set) and escalates mismatches through a
    repair ladder:

    + {b re-read} — a flipped transfer corrupts only the returned
      copy, so a fresh read usually verifies;
    + {b superblock replica} — sister copies carry the same block;
    + {b clean cached copy} — the last acknowledged content, accepted
      only when it digests to the acknowledged value, re-written
      through the driver (whose retry-exhaustion path remaps a
      fragment that keeps failing);
    + {b typed failure} — [Su_cache.Bcache.Io_error (Checksum _)] and
      a [note_lost] to the {!Health} automaton; never silent.

    All counters feed the run report as [integrity.*]. *)

type t

val create :
  engine:Su_sim.Engine.t ->
  disk:Su_disk.Disk.t ->
  driver:Su_driver.Driver.t ->
  cache:Su_cache.Bcache.t ->
  health:Health.t ->
  geom:Su_fstypes.Geom.t ->
  ?obs:Su_obs.Events.t ->
  unit ->
  t

val verify_fill :
  t -> lbn:int -> Su_fstypes.Types.cell array -> Su_fstypes.Types.cell array
(** The cache-fill hook: verify [cells] (read at [lbn]) against the
    checksum region and return the cells to trust — the originals, a
    clean re-read, or a repaired copy (also rewritten to the media).
    Process context.
    @raise Su_cache.Bcache.Io_error with [Checksum _] when the ladder
    is exhausted; the affected fragments are reported lost to the
    health automaton first. *)

type at_rest = Clean | Repaired | Lost

val verify_frag : t -> int -> at_rest
(** Verify one media fragment {e at rest} against the checksum region,
    repairing a disagreement through the ladder's offline rungs
    (replica, clean cached copy — re-reading cannot help when the
    media itself is the disagreeing party). [Lost] fragments are
    reported to the health automaton. The scrubber calls this on every
    fragment it probes. Process context. *)

val full_verify : t -> int
(** Verify every media fragment {e at rest} against the checksum
    region and repair what the ladder's offline rungs (replica, clean
    cached copy) can reach — lost and misdirected writes the workload
    never re-read surface only here. Returns the number of fragments
    left unrepaired (each reported lost to the health automaton).
    Process context; run after a sync, before unmount. *)

(** {2 Counters} *)

val fills_verified : t -> int
(** Cache fills checked ([integrity.fills]). *)

val mismatches : t -> int
(** Fragments whose digest disagreed ([integrity.mismatches]). *)

val repaired : t -> int
(** Total fragments healed, all rungs ([integrity.repaired]). *)

val repaired_reread : t -> int
val repaired_replica : t -> int
val repaired_cache : t -> int

val unrepairable : t -> int
(** Fragments the ladder could not heal ([integrity.lost]); each
    raised a typed error or failed [full_verify]. *)
