open Su_fstypes
open Su_cache
module Intf = Su_core.Scheme_intf

let nblocks st (dip : State.incore) =
  Geom.blocks_of_bytes st.State.geom dip.State.din.Types.size

let with_dir_block st dip i f =
  let addr = File.ptr_at st dip i in
  if addr = 0 then failwith "Dir: directory hole";
  let buf = Bcache.bread st.State.cache ~lbn:addr ~nfrags:(State.block_frags st) in
  Fun.protect
    ~finally:(fun () -> Bcache.release st.State.cache buf)
    (fun () ->
      match buf.Buf.content with
      | Buf.Cmeta (Types.Dir entries) -> f buf entries
      | Buf.Cmeta _ | Buf.Cdata _ -> failwith "Dir: bad directory block")

(* Lazily index the directory on its first lookup or insert (callers
   hold the directory inode's lock, so the build cannot race a
   mutation). The build is the full scan it replaces and is charged as
   one: every block is read and every slot examined once. *)
let ensure_index st (dip : State.incore) =
  match st.State.dirx with
  | None -> None
  | Some dx ->
    let inum = dip.State.inum in
    if not (Dir_index.known dx inum) then begin
      let nb = nblocks st dip in
      let cost = st.State.costs.Costs.namei_entry in
      Dir_index.build dx inum ~nblocks:nb;
      for i = 0 to nb - 1 do
        with_dir_block st dip i (fun _ entries ->
            State.charge st (float_of_int (Array.length entries) *. cost);
            Array.iteri
              (fun slot -> function
                | Some e -> Dir_index.note_insert dx inum ~blk:i ~slot e.Types.name
                | None -> ())
              entries)
      done
    end;
    Some dx

(* Scan charging per entry examined; stops at the first match. The
   callback also receives the block index so mutators can maintain the
   index. *)
let find_scan st dip name f =
  let nb = nblocks st dip in
  let cost = st.State.costs.Costs.namei_entry in
  let rec go i =
    if i >= nb then None
    else
      let found =
        with_dir_block st dip i (fun buf entries ->
            let n = Array.length entries in
            let rec scan j =
              if j >= n then begin
                State.charge st (float_of_int n *. cost);
                None
              end
              else
                match entries.(j) with
                | Some e when e.Types.name = name ->
                  State.charge st (float_of_int (j + 1) *. cost);
                  Some (f buf entries ~blk:i j e)
                | Some _ | None -> scan (j + 1)
            in
            scan 0)
      in
      match found with Some r -> Some r | None -> go (i + 1)
  in
  go 0

(* With the index on, a lookup is a hash probe plus one entry
   verification in the target block (the dirhash cost model: two
   entry-compares on a hit, one on a miss) and touches a single
   directory block instead of scanning from block 0. *)
let find st dip name f =
  match ensure_index st dip with
  | None -> find_scan st dip name f
  | Some dx -> (
    let cost = st.State.costs.Costs.namei_entry in
    match Dir_index.lookup dx dip.State.inum name with
    | None ->
      State.charge st cost;
      None
    | Some (blk, slot) ->
      State.charge st (2.0 *. cost);
      with_dir_block st dip blk (fun buf entries ->
          match entries.(slot) with
          | Some e when e.Types.name = name -> Some (f buf entries ~blk slot e)
          | Some _ | None -> failwith "Dir: lookup index out of sync"))

let lookup st dip name = find st dip name (fun _ _ ~blk:_ _ e -> e.Types.inum)

let do_link_add st ~dir ~slot ~inum =
  Inode.with_ibuf st inum (fun ibuf ->
      st.State.scheme.Intf.link_add ~dir ~slot ~ibuf ~inum)

let insert_prepared ?(link_dep = true) st ~dir ~slot name inum =
  Bcache.prepare_modify st.State.cache dir;
  (match dir.Buf.content with
   | Buf.Cmeta (Types.Dir entries) ->
     entries.(slot) <- Some { Types.name; inum }
   | Buf.Cmeta _ | Buf.Cdata _ -> failwith "Dir: bad directory block");
  State.charge st st.State.costs.Costs.dirent_update;
  Bcache.bdwrite st.State.cache dir;
  if link_dep then do_link_add st ~dir ~slot ~inum

(* Append a fresh directory block and insert into its slot 0. *)
let add_in_new_block st dip name inum =
  let buf, commit = File.grow_dir_block st dip in
  Fun.protect
    ~finally:(fun () -> Bcache.release st.State.cache buf)
    (fun () ->
      Bcache.prepare_modify st.State.cache buf;
      (match buf.Buf.content with
       | Buf.Cmeta (Types.Dir entries) ->
         entries.(0) <- Some { Types.name; inum }
       | Buf.Cmeta _ | Buf.Cdata _ -> failwith "Dir: bad directory block");
      State.charge st st.State.costs.Costs.dirent_update;
      Bcache.bdwrite st.State.cache buf;
      commit ();
      do_link_add st ~dir:buf ~slot:0 ~inum)

let add_in_slot st buf entries ~slot name inum =
  Bcache.prepare_modify st.State.cache buf;
  entries.(slot) <- Some { Types.name; inum };
  State.charge st st.State.costs.Costs.dirent_update;
  Bcache.bdwrite st.State.cache buf;
  do_link_add st ~dir:buf ~slot ~inum

let add_entry st dip name inum =
  let cost = st.State.costs.Costs.namei_entry in
  match ensure_index st dip with
  | Some dx -> (
    (* the free-slot map sends us straight to a block with room; one
       probe charged, then the in-block slot search is part of the
       dirent update *)
    let dinum = dip.State.inum in
    State.charge st cost;
    match Dir_index.first_free_block dx dinum with
    | Some blk ->
      with_dir_block st dip blk (fun buf entries ->
          match Types.dir_free_slot entries with
          | Some slot ->
            add_in_slot st buf entries ~slot name inum;
            Dir_index.note_insert dx dinum ~blk ~slot name
          | None -> failwith "Dir: free-slot index out of sync")
    | None ->
      let blk = nblocks st dip in
      add_in_new_block st dip name inum;
      Dir_index.note_grow dx dinum;
      Dir_index.note_insert dx dinum ~blk ~slot:0 name)
  | None -> (
    let nb = nblocks st dip in
    (* find a free slot, charging for the scan *)
    let rec place i =
      if i >= nb then None
      else
        let r =
          with_dir_block st dip i (fun buf entries ->
              State.charge st (float_of_int (Array.length entries) *. cost);
              match Types.dir_free_slot entries with
              | Some slot ->
                add_in_slot st buf entries ~slot name inum;
                Some ()
              | None -> None)
        in
        match r with Some () -> Some () | None -> place (i + 1)
    in
    match place 0 with
    | Some () -> ()
    | None -> add_in_new_block st dip name inum)

let change_entry st dip name new_inum ~decrement =
  let changed =
    (* re-points the entry in place: name and slot are unchanged, so
       the lookup index needs no update *)
    find st dip name (fun buf entries ~blk:_ slot e ->
        if e.Types.inum = new_inum then ()
        else begin
          Bcache.prepare_modify st.State.cache buf;
          entries.(slot) <- Some { Types.name; inum = new_inum };
          State.charge st st.State.costs.Costs.dirent_update;
          Bcache.bdwrite st.State.cache buf;
          Inode.with_ibuf st new_inum (fun ibuf ->
              Inode.with_ibuf st e.Types.inum (fun old_ibuf ->
                  st.State.scheme.Intf.link_change ~dir:buf ~slot ~ibuf
                    ~inum:new_inum ~old_entry:e ~old_ibuf
                    ~decrement:(fun () -> decrement e.Types.inum)))
        end)
  in
  Option.is_some changed

let remove_entry st dip name ~decrement =
  let removed =
    find st dip name (fun buf entries ~blk slot e ->
        Bcache.prepare_modify st.State.cache buf;
        entries.(slot) <- None;
        (match st.State.dirx with
         | Some dx -> Dir_index.note_remove dx dip.State.inum ~blk name
         | None -> ());
        State.charge st st.State.costs.Costs.dirent_update;
        Bcache.bdwrite st.State.cache buf;
        let inum = e.Types.inum in
        let parent_inum = dip.State.inum in
        Inode.with_ibuf st inum (fun ibuf ->
            Inode.with_ibuf st parent_inum (fun parent_ibuf ->
                st.State.scheme.Intf.link_remove ~dir:buf ~slot ~inum ~ibuf
                  ~parent_inum ~parent_ibuf
                  ~decrement:(fun () -> decrement inum))))
  in
  Option.is_some removed

let fold_entries st dip f acc =
  let nb = nblocks st dip in
  let acc = ref acc in
  for i = 0 to nb - 1 do
    with_dir_block st dip i (fun _ entries ->
        Array.iter
          (function Some e -> acc := f !acc e | None -> ())
          entries)
  done;
  !acc

let entry_capacity st dip = nblocks st dip * st.State.geom.Geom.dir_capacity

let list_names st dip =
  State.charge st
    (float_of_int (entry_capacity st dip) *. st.State.costs.Costs.namei_entry);
  List.rev (fold_entries st dip (fun acc e -> e.Types.name :: acc) [])

let entry_count st dip = fold_entries st dip (fun n _ -> n + 1) 0

let is_empty st dip =
  fold_entries st dip
    (fun ok e -> ok && (e.Types.name = "." || e.Types.name = ".."))
    true
