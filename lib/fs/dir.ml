open Su_fstypes
open Su_cache
module Intf = Su_core.Scheme_intf

let nblocks st (dip : State.incore) =
  Geom.blocks_of_bytes st.State.geom dip.State.din.Types.size

let with_dir_block st dip i f =
  let addr = File.ptr_at st dip i in
  if addr = 0 then failwith "Dir: directory hole";
  let buf = Bcache.bread st.State.cache ~lbn:addr ~nfrags:(State.block_frags st) in
  Fun.protect
    ~finally:(fun () -> Bcache.release st.State.cache buf)
    (fun () ->
      match buf.Buf.content with
      | Buf.Cmeta (Types.Dir entries) -> f buf entries
      | Buf.Cmeta _ | Buf.Cdata _ -> failwith "Dir: bad directory block")

(* Scan charging per entry examined; stops at the first match. *)
let find st dip name f =
  let nb = nblocks st dip in
  let cost = st.State.costs.Costs.namei_entry in
  let rec go i =
    if i >= nb then None
    else
      let found =
        with_dir_block st dip i (fun buf entries ->
            let n = Array.length entries in
            let rec scan j =
              if j >= n then begin
                State.charge st (float_of_int n *. cost);
                None
              end
              else
                match entries.(j) with
                | Some e when e.Types.name = name ->
                  State.charge st (float_of_int (j + 1) *. cost);
                  Some (f buf entries j e)
                | Some _ | None -> scan (j + 1)
            in
            scan 0)
      in
      match found with Some r -> Some r | None -> go (i + 1)
  in
  go 0

let lookup st dip name = find st dip name (fun _ _ _ e -> e.Types.inum)

let do_link_add st ~dir ~slot ~inum =
  Inode.with_ibuf st inum (fun ibuf ->
      st.State.scheme.Intf.link_add ~dir ~slot ~ibuf ~inum)

let insert_prepared ?(link_dep = true) st ~dir ~slot name inum =
  Bcache.prepare_modify st.State.cache dir;
  (match dir.Buf.content with
   | Buf.Cmeta (Types.Dir entries) ->
     entries.(slot) <- Some { Types.name; inum }
   | Buf.Cmeta _ | Buf.Cdata _ -> failwith "Dir: bad directory block");
  State.charge st st.State.costs.Costs.dirent_update;
  Bcache.bdwrite st.State.cache dir;
  if link_dep then do_link_add st ~dir ~slot ~inum

let add_entry st dip name inum =
  let nb = nblocks st dip in
  let cost = st.State.costs.Costs.namei_entry in
  (* find a free slot, charging for the scan *)
  let rec place i =
    if i >= nb then None
    else
      let r =
        with_dir_block st dip i (fun buf entries ->
            State.charge st (float_of_int (Array.length entries) *. cost);
            match Types.dir_free_slot entries with
            | Some slot ->
              Bcache.prepare_modify st.State.cache buf;
              entries.(slot) <- Some { Types.name; inum };
              State.charge st st.State.costs.Costs.dirent_update;
              Bcache.bdwrite st.State.cache buf;
              do_link_add st ~dir:buf ~slot ~inum;
              Some ()
            | None -> None)
      in
      match r with Some () -> Some () | None -> place (i + 1)
  in
  match place 0 with
  | Some () -> ()
  | None ->
    let buf, commit = File.grow_dir_block st dip in
    Fun.protect
      ~finally:(fun () -> Bcache.release st.State.cache buf)
      (fun () ->
        Bcache.prepare_modify st.State.cache buf;
        (match buf.Buf.content with
         | Buf.Cmeta (Types.Dir entries) ->
           entries.(0) <- Some { Types.name; inum }
         | Buf.Cmeta _ | Buf.Cdata _ -> failwith "Dir: bad directory block");
        State.charge st st.State.costs.Costs.dirent_update;
        Bcache.bdwrite st.State.cache buf;
        commit ();
        do_link_add st ~dir:buf ~slot:0 ~inum)

let change_entry st dip name new_inum ~decrement =
  let changed =
    find st dip name (fun buf entries slot e ->
        if e.Types.inum = new_inum then ()
        else begin
          Bcache.prepare_modify st.State.cache buf;
          entries.(slot) <- Some { Types.name; inum = new_inum };
          State.charge st st.State.costs.Costs.dirent_update;
          Bcache.bdwrite st.State.cache buf;
          Inode.with_ibuf st new_inum (fun ibuf ->
              Inode.with_ibuf st e.Types.inum (fun old_ibuf ->
                  st.State.scheme.Intf.link_change ~dir:buf ~slot ~ibuf
                    ~inum:new_inum ~old_entry:e ~old_ibuf
                    ~decrement:(fun () -> decrement e.Types.inum)))
        end)
  in
  Option.is_some changed

let remove_entry st dip name ~decrement =
  let removed =
    find st dip name (fun buf entries slot e ->
        Bcache.prepare_modify st.State.cache buf;
        entries.(slot) <- None;
        State.charge st st.State.costs.Costs.dirent_update;
        Bcache.bdwrite st.State.cache buf;
        let inum = e.Types.inum in
        let parent_inum = dip.State.inum in
        Inode.with_ibuf st inum (fun ibuf ->
            Inode.with_ibuf st parent_inum (fun parent_ibuf ->
                st.State.scheme.Intf.link_remove ~dir:buf ~slot ~inum ~ibuf
                  ~parent_inum ~parent_ibuf
                  ~decrement:(fun () -> decrement inum))))
  in
  Option.is_some removed

let fold_entries st dip f acc =
  let nb = nblocks st dip in
  let acc = ref acc in
  for i = 0 to nb - 1 do
    with_dir_block st dip i (fun _ entries ->
        Array.iter
          (function Some e -> acc := f !acc e | None -> ())
          entries)
  done;
  !acc

let entry_capacity st dip = nblocks st dip * st.State.geom.Geom.dir_capacity

let list_names st dip =
  State.charge st
    (float_of_int (entry_capacity st dip) *. st.State.costs.Costs.namei_entry);
  List.rev (fold_entries st dip (fun acc e -> e.Types.name :: acc) [])

let entry_count st dip = fold_entries st dip (fun n _ -> n + 1) 0

let is_empty st dip =
  fold_entries st dip
    (fun ok e -> ok && (e.Types.name = "." || e.Types.name = ".."))
    true
