open Su_fstypes

type incore = {
  inum : int;
  din : Types.dinode;
  ilock : Su_sim.Sync.Mutex.t;
  mutable refs : int;
}

type t = {
  geom : Geom.t;
  engine : Su_sim.Engine.t;
  cpu : Su_sim.Cpu.t;
  disk : Su_disk.Disk.t;
  driver : Su_driver.Driver.t;
  cache : Su_cache.Bcache.t;
  scheme : Su_core.Scheme_intf.t;
  costs : Costs.t;
  alloc_init : bool;
  alloc_mutex : Su_sim.Sync.Mutex.t;
  icache : (int, incore) Hashtbl.t;
  rotor : int array;
  freemaps : Freemap.t array;
  dirx : Dir_index.t option;
  mutable next_cg : int;
  mutable gen_counter : int;
  softdep_stats : Su_core.Softdep.stats option;
  journal_stats : Su_core.Journaled.stats option;
  obs : Su_obs.Events.t option;
  health : Health.t;
}

let charge t cost = Su_sim.Cpu.consume t.cpu cost

let block_frags t = t.geom.Geom.frags_per_block
let block_bytes t = Geom.block_bytes t.geom
