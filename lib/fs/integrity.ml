open Su_fstypes
module Proc = Su_sim.Proc

(* End-to-end metadata integrity.

   The disk's checksum region records, at write-acknowledgement time,
   a digest of what the device *claims* each fragment holds. Silent
   faults make the claim and the media disagree: a read bit-flip
   corrupts the returned copy, a lost write leaves stale media under a
   fresh digest, a misdirected write does that to its destination and
   plants undigested data on a victim. This module is the detection
   and self-healing side: every cache fill is verified against the
   region, and a mismatch escalates through a repair ladder —

     re-read (flips corrupt only the transferred copy)
       -> superblock replica (sister copies carry the same block)
       -> clean cached copy (the last acknowledged content, re-written
          through the driver, whose retry-exhaustion path remaps a
          fragment that keeps failing)
       -> typed failure: [Su_cache.Bcache.Io_error (Checksum _)], and
          the health automaton is told the fragment is lost.

   Nothing is ever guessed at: a rung's content is accepted only when
   it digests to the acknowledged value (the superblock rung excepted
   — replicas are the ground truth for the superblock itself). *)

type t = {
  engine : Su_sim.Engine.t;
  disk : Su_disk.Disk.t;
  driver : Su_driver.Driver.t;
  cache : Su_cache.Bcache.t;
  health : Health.t;
  geom : Geom.t;
  obs : Su_obs.Events.t option;
  mutable fills : int;  (* cache fills verified *)
  mutable mismatches : int;  (* fragments that failed verification *)
  mutable repaired_reread : int;
  mutable repaired_replica : int;
  mutable repaired_cache : int;
  mutable unrepairable : int;
}

let create ~engine ~disk ~driver ~cache ~health ~geom ?obs () =
  {
    engine;
    disk;
    driver;
    cache;
    health;
    geom;
    obs;
    fills = 0;
    mismatches = 0;
    repaired_reread = 0;
    repaired_replica = 0;
    repaired_cache = 0;
    unrepairable = 0;
  }

let fills_verified t = t.fills
let mismatches t = t.mismatches
let repaired_reread t = t.repaired_reread
let repaired_replica t = t.repaired_replica
let repaired_cache t = t.repaired_cache
let repaired t = t.repaired_reread + t.repaired_replica + t.repaired_cache
let unrepairable t = t.unrepairable

let emit t ~kind fields =
  match t.obs with
  | None -> ()
  | Some sink ->
    Su_obs.Events.emit sink
      ~t_sim:(Su_sim.Engine.now t.engine)
      ~kind fields

(* Fragment offsets of [cells] whose digest disagrees with the
   checksum region; empty without checksums. *)
let verify_cells t ~lbn cells =
  let bad = ref [] in
  Array.iteri
    (fun i c ->
      match Su_disk.Disk.expected_digest t.disk (lbn + i) with
      | Some d when d <> Types.cell_digest c -> bad := (lbn + i) :: !bad
      | Some _ | None -> ())
    cells;
  List.rev !bad

(* --- driver I/O (process context) ------------------------------------ *)

let read_cells t ~lbn ~nfrags =
  let iv :
      (Types.cell array option, Su_disk.Fault.error) result Proc.Ivar.t =
    Proc.Ivar.create t.engine
  in
  ignore
    (Su_driver.Driver.submit t.driver ~kind:Su_driver.Request.Read ~lbn ~nfrags
       ~on_complete:(fun r -> Proc.Ivar.fill iv r)
       ());
  match Proc.Ivar.read iv with
  | Ok (Some cells) -> Ok cells
  | Ok None -> Error (Su_disk.Fault.Transient { op = `Read; lbn })
  | Error e -> Error e

let write_cells t ~lbn cells =
  let iv : (unit, Su_disk.Fault.error) result Proc.Ivar.t =
    Proc.Ivar.create t.engine
  in
  ignore
    (Su_driver.Driver.submit t.driver ~kind:Su_driver.Request.Write ~lbn
       ~nfrags:(Array.length cells)
       ~payload:(Array.map Types.copy_cell cells)
       ~on_complete:(fun r -> Proc.Ivar.fill iv (Result.map ignore r))
       ());
  Proc.Ivar.read iv

(* --- the per-fragment rungs ------------------------------------------ *)

(* Sister superblock copy content for [frag] (same layout logic as the
   scrubber): each copy's block holds identical content, so any
   readable sister supplies the fragment. *)
let replica_content t frag =
  let fpb = t.geom.Geom.frags_per_block in
  let off = ref 0 in
  let home = ref (-1) in
  List.iter
    (fun f ->
      if frag >= f && frag < f + fpb then begin
        home := f;
        off := frag - f
      end)
    (Replica.copy_frags t.geom);
  let rec try_sisters = function
    | [] -> None
    | f :: rest when f = !home -> try_sisters rest
    | f :: rest -> (
      match read_cells t ~lbn:(f + !off) ~nfrags:1 with
      | Ok cells -> Some (Types.copy_cell cells.(0))
      | Error _ -> try_sisters rest)
  in
  try_sisters (Replica.copy_frags t.geom)

(* A clean cached buffer covering [frag] holds the last content the
   device acknowledged for it. *)
let cached_content t frag =
  let fpb = t.geom.Geom.frags_per_block in
  let rec scan k =
    if k >= fpb then None
    else
      match Su_cache.Bcache.lookup t.cache (frag - k) with
      | Some b
        when b.Su_cache.Buf.valid
             && (not b.Su_cache.Buf.dirty)
             && k < b.Su_cache.Buf.nfrags ->
        let cells =
          Su_cache.Buf.to_cells
            (Su_cache.Buf.copy_content b.Su_cache.Buf.content)
            ~nfrags:b.Su_cache.Buf.nfrags
        in
        Some cells.(k)
      | Some _ | None -> scan (k + 1)
  in
  scan 0

let note_repair t ~frag ~source =
  emit t ~kind:"integrity.repair"
    [ ("frag", Su_obs.Json.Int frag); ("source", Su_obs.Json.Str source) ]

(* Recover one fragment's content from the ladder's offline rungs
   (replica, then clean cache copy), [Some cell] on success. Content
   is accepted only when it digests to the acknowledged value — except
   on superblock fragments, where the sister replicas *are* the
   authority (their own write acks digested them). *)
let recover_frag t frag =
  let expected = Su_disk.Disk.expected_digest t.disk frag in
  let sb_frag = Replica.is_copy_frag t.geom frag in
  let from_replica =
    if sb_frag then replica_content t frag else None
  in
  match from_replica with
  | Some cell ->
    t.repaired_replica <- t.repaired_replica + 1;
    Health.note_sb_restored t.health;
    note_repair t ~frag ~source:"replica";
    Some cell
  | None -> (
    match cached_content t frag with
    | Some cell when expected = Some (Types.cell_digest cell) ->
      t.repaired_cache <- t.repaired_cache + 1;
      note_repair t ~frag ~source:"cache";
      Some cell
    | Some _ | None -> None)

let note_lost t frag =
  t.unrepairable <- t.unrepairable + 1;
  emit t ~kind:"integrity.lost" [ ("frag", Su_obs.Json.Int frag) ];
  Health.note_lost t.health ~frag

(* --- cache-fill verification (the Bcache hook) ------------------------ *)

let verify_fill t ~lbn cells =
  t.fills <- t.fills + 1;
  match verify_cells t ~lbn cells with
  | [] -> cells
  | bad0 ->
    t.mismatches <- t.mismatches + List.length bad0;
    List.iter
      (fun frag ->
        emit t ~kind:"integrity.mismatch" [ ("frag", Su_obs.Json.Int frag) ])
      bad0;
    let nfrags = Array.length cells in
    (* rung 1: re-read — a flipped transfer corrupts only the returned
       copy, so a fresh read usually comes back clean (two attempts
       ride out an unlucky second flip under probabilistic injection) *)
    let rec reread attempts =
      if attempts = 0 then None
      else
        match read_cells t ~lbn ~nfrags with
        | Error _ -> None
        | Ok fresh ->
          if verify_cells t ~lbn fresh = [] then Some fresh
          else reread (attempts - 1)
    in
    (match reread 2 with
     | Some fresh ->
       t.repaired_reread <- t.repaired_reread + List.length bad0;
       List.iter (fun frag -> note_repair t ~frag ~source:"reread") bad0;
       fresh
     | None ->
       (* the media itself disagrees with the acknowledged digests:
          recover each fragment offline and rewrite the healed extent
          through the driver (re-acknowledgement resyncs the region;
          a fragment that keeps failing is remapped by the driver's
          retry-exhaustion path) *)
       let healed = Array.map Types.copy_cell cells in
       let still_bad =
         List.filter
           (fun frag ->
             match recover_frag t frag with
             | Some cell ->
               healed.(frag - lbn) <- cell;
               false
             | None -> true)
           (verify_cells t ~lbn healed)
       in
       (match still_bad with
        | [] ->
          (match write_cells t ~lbn healed with
           | Ok () -> ()
           | Error e -> Health.note_io_error t.health e);
          healed
        | frag :: _ ->
          List.iter (note_lost t) still_bad;
          raise
            (Su_cache.Bcache.Io_error (Su_disk.Fault.Checksum { lbn = frag }))))

(* --- at-rest verification --------------------------------------------- *)

type at_rest = Clean | Repaired | Lost

(* Verify one media fragment at rest against the checksum region,
   repairing through the ladder's offline rungs when it disagrees.
   Lost and misdirected writes that no read ever touches surface only
   here; the re-read rung does not apply (the media itself is the
   disagreeing party). Process context. *)
let verify_frag t frag =
  match Su_disk.Disk.expected_digest t.disk frag with
  | None -> Clean
  | Some d ->
    if d = Su_disk.Disk.frag_digest t.disk frag then Clean
    else begin
      t.mismatches <- t.mismatches + 1;
      emit t ~kind:"integrity.mismatch" [ ("frag", Su_obs.Json.Int frag) ];
      match recover_frag t frag with
      | Some cell -> (
        match write_cells t ~lbn:frag [| cell |] with
        | Ok () -> Repaired
        | Error e ->
          Health.note_io_error t.health e;
          Lost)
      | None ->
        note_lost t frag;
        Lost
    end

(* Verify the whole media (the corruption campaign runs this after the
   final sync, before unmount). Returns the number of unrepairable
   fragments; process context. *)
let full_verify t =
  let media = Su_disk.Disk.nfrags t.disk in
  let unrepaired = ref 0 in
  for frag = 0 to media - 1 do
    match verify_frag t frag with
    | Clean | Repaired -> ()
    | Lost -> incr unrepaired
  done;
  !unrepaired
