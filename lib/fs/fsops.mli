(** The syscall layer: path-based operations on a mounted file
    system, with per-inode locking and CPU accounting.

    All functions run in simulated-process context and may block on
    locks, CPU contention and disk I/O (how much depends entirely on
    the mounted ordering scheme). Paths are absolute, '/'-separated. *)

exception Enoent of string
exception Eexist of string
exception Enotdir of string
exception Eisdir of string
exception Enotempty of string

exception Einval of string
(** rename: destination inside the directory being moved *)

exception Eio of string
(** A device operation failed definitively under this syscall — the
    driver's retries and bad-sector remapping were both exhausted.
    The argument is the path plus the underlying
    {!Su_disk.Fault.error}. Raw {!Su_cache.Bcache.Io_error} never
    escapes this layer. *)

exception Erofs of string
(** The volume's {!Health} monitor has flipped it read-only (spare
    pool exhausted or too many fragments lost); mutating operations
    refuse up front rather than risking further damage. [fsync],
    [sync] and all read operations still work. *)

type file_stat = {
  st_inum : int;
  st_ftype : Su_fstypes.Types.ftype;
  st_nlink : int;
  st_size : int;
}

val mkdir : State.t -> string -> unit
val create : State.t -> string -> unit
(** Create an empty regular file. *)

val append : State.t -> string -> bytes:int -> unit
(** Append [bytes] of data. *)

val write_file : State.t -> string -> bytes:int -> unit
(** Truncate (if non-empty) and write [bytes] (rewrite semantics). *)

val read_file : State.t -> string -> int
(** Read every byte; returns fragments read. *)

val unlink : State.t -> string -> unit
val rmdir : State.t -> string -> unit
val link : State.t -> src:string -> dst:string -> unit
val rename : State.t -> src:string -> dst:string -> unit
(** Implemented, as the paper describes, by first adding the new name
    and only then removing the old one (rule 1). Renaming a name onto
    another link to the same file (or onto itself) is a no-op, as
    POSIX requires. Directories move too
    (including across parents): the child's and the new parent's link
    counts are raised before the names change hands, ".." is re-pointed
    in place through the scheme's entry-change hook (never absent on
    disk, only old or new), and the compensating decrements are ordered
    behind the entry writes. An existing destination must be empty
    (directories) and makes way first.
    @raise Einval when [dst] lies inside the directory being moved.
    @raise Enotempty when [dst] is a non-empty directory. *)

val stat : State.t -> string -> file_stat
val exists : State.t -> string -> bool
val readdir : State.t -> string -> string list
val fsync : State.t -> string -> unit
(** SYNCIO-style: the file's metadata (and its ordering
    prerequisites) are stable on return. *)

val sync : State.t -> unit
(** Flush the whole cache and quiesce the driver (unmount-style). *)

val resolve : State.t -> string -> int
(** Path to inode number.
    @raise Enoent / Enotdir like the operations above. *)
