(** World assembly: build the simulated machine (CPU, disk, driver,
    cache, syncer), make a file system on the disk and mount it with a
    chosen ordering scheme. *)

open Su_fstypes

type scheme_kind =
  | Conventional
  | Scheduler_flag
  | Scheduler_chains of { barrier_dealloc : bool }
  | Soft_updates
  | No_order
  | Journaled of { group_commit : bool }
      (** write-ahead metadata journaling (extension; see
          {!Su_core.Journaled}) *)

val scheme_kind_name : scheme_kind -> string

val all_schemes : scheme_kind list
(** The five schemes of the paper's §5 comparison, in its order:
    conventional, flag, chains, soft updates, no order. *)

type config = {
  scheme : scheme_kind;
  alloc_init : bool;  (** enforce allocation initialisation for file data *)
  flag_sem : Su_driver.Ordering.flag_semantics;  (** scheduler-flag runs *)
  nr : bool;  (** reads bypass ordering-blocked writes *)
  cb : bool;  (** block-copy enhancement (§3.3) *)
  policy : Su_driver.Driver.policy;
  max_concat : int;
  cache_mb : int;
  syncer_interval : float;
  syncer_passes : int;
  geom : Geom.t;
  disk_params : Su_disk.Disk_params.t;
  costs : Costs.t;
  keep_trace_records : bool;
  journal_mb : int;  (** log region size (journaled scheme only) *)
  nvram_mb : int;
      (** battery-backed disk write cache (0 = none); writes are
          durable on acceptance and destage in idle time (§7's NVRAM
          comparison) *)
  fault : Su_disk.Fault.config;
      (** device fault model ({!Su_disk.Fault.none} by default) *)
  io_max_attempts : int;  (** driver attempts per request (see {!Su_driver.Driver.config}) *)
  io_retry_backoff : float;  (** base retry delay, seconds *)
  io_request_timeout : float;  (** per-attempt deadline, 0 = none *)
  spare_frags : int;
      (** spare-sector pool for bad-sector remapping (0 = no fault
          tolerance; the disk image and golden traces are then
          bit-identical to a build without this feature) *)
  checksums : bool;
      (** maintain the per-fragment checksum region and verify every
          cache fill against it, self-healing mismatches
          ({!Integrity}); off (the default) the device image, golden
          traces and benchmark shapes are bit-identical to a build
          without the feature *)
  scrub_interval : float;
      (** background scrubber wake-up period in simulated seconds
          (0.0 = no scrubber) *)
  health_max_lost : int;
      (** unrecoverable fragments tolerated before the volume flips
          read-only (see {!Health}) *)
  trace_sink : Su_obs.Events.t option;
      (** when set, the driver, cache and FS operations emit JSONL
          trace events into the sink (default [None]). Observability
          only: simulation behavior is bit-identical either way. *)
  dir_index : bool;
      (** maintain the in-core directory lookup index ({!Dir_index})
          and charge lookups at dirhash cost instead of a linear scan
          (default [false]: the paper's namei model, unchanged traces;
          the load engine turns it on) *)
}

exception Mount_failure of string
(** The volume cannot be mounted safely: no usable superblock replica
    survives. Raised by {!mount_image}. *)

val config : ?scheme:scheme_kind -> unit -> config
(** Paper-faithful defaults per scheme: the scheduler-flag scheme uses
    Part-NR with block copying (the best variant, used in §5), chains
    uses specific remove dependencies and block copying, soft updates
    enforces allocation initialisation, conventional does neither.
    1 GB HP C2447-like disk, 32 MB cache, 1 s syncer. *)

type world = {
  cfg : config;
  engine : Su_sim.Engine.t;
  cpu : Su_sim.Cpu.t;
  disk : Su_disk.Disk.t;
  driver : Su_driver.Driver.t;
  cache : Su_cache.Bcache.t;
  syncer : Su_cache.Syncer.t;
  scrub : Scrub.t option;  (** background scrubber, when configured *)
  integrity : Integrity.t option;
      (** checksum verification and self-healing, when [checksums] *)
  st : State.t;
  extra_stop : unit -> unit;  (** scheme background-process shutdown *)
}

val make : config -> world
(** Build everything, format the disk (mkfs writes the initial image
    directly, without simulated time) and mount. The syncer daemon is
    already running; call [Engine.run] to start simulation. *)

val stop : world -> unit
(** Stop the syncer (and the journal flusher, if any) so the event
    queue can drain. *)

val mount_image : config -> Su_fstypes.Types.cell array -> world
(** Build a world over an existing disk image (e.g. a crashed-and-
    repaired one) instead of running mkfs. A physical snapshot may
    carry the spare region and remap-table cell past the media; the
    in-core remap table is restored from it and the superblock
    replicas cross-checked (unreadable or invalid copies are restored
    from a surviving sister, degrading health).
    @raise Invalid_argument if the image does not fit the configured
    geometry.
    @raise Mount_failure if no usable superblock replica survives. *)

val journal_region : config -> (int * int) option
(** [(log_start, log_frags)] for journaled configurations. *)

val recover_image :
  ?observer:Su_fstypes.Imglog.observer ->
  config ->
  Su_fstypes.Types.cell array ->
  unit
(** Journal replay + map rebuild, when the configuration journals;
    no-op otherwise. [observer] sees every cell the replay changes
    (see {!Su_fstypes.Imglog}); the crash-state explorer uses it to
    re-crash recovery inside its own write stream. *)

val driver_mode : config -> Su_driver.Ordering.mode
