(* In-core directory lookup index (opt-in, [Fs.config.dir_index]).

   FFS's namei scans a directory's blocks linearly, and so does
   {!Dir}: O(directory size) per lookup, which dominates once a
   namespace holds thousands of entries (the loadgen regime). This is
   the simulator's analogue of FreeBSD's dirhash: a per-directory hash
   of interned entry names to (block, slot), plus a free-slot count
   per block with a bitset of non-full blocks so inserts stop probing
   every block.

   The index is pure in-core acceleration over the cached directory
   blocks, which stay authoritative on disk; it holds positions, not
   entries, so it shares no mutable structure with block payloads.
   Every entry mutation runs in {!Dir} under the directory inode's
   lock, which makes lazy build and maintenance race-free. Directories
   are forgotten when their inode is freed. *)

type dir = {
  slots : (string, int) Hashtbl.t;  (* name -> blk * cap + slot *)
  mutable nblocks : int;
  mutable free_count : int array;  (* free slots per block *)
  free_blocks : Su_util.Bitset.t;  (* blocks with at least one free slot *)
}

type t = { cap : int; dirs : (int, dir) Hashtbl.t }

let create ~cap () =
  if cap <= 0 then invalid_arg "Dir_index.create: bad capacity";
  { cap; dirs = Hashtbl.create 256 }

let known t inum = Hashtbl.mem t.dirs inum
let forget t inum = Hashtbl.remove t.dirs inum

(* Register a directory of [nblocks] all-free blocks; the builder then
   replays existing entries through [note_insert]. *)
let build t inum ~nblocks =
  let d =
    {
      slots = Hashtbl.create (max 16 (nblocks * t.cap / 4));
      nblocks;
      free_count = Array.make (max 1 nblocks) t.cap;
      free_blocks = Su_util.Bitset.create ~capacity:(max 1 nblocks) ();
    }
  in
  for b = 0 to nblocks - 1 do
    Su_util.Bitset.set d.free_blocks b
  done;
  Hashtbl.replace t.dirs inum d

let lookup t inum name =
  match Hashtbl.find_opt t.dirs inum with
  | None -> None
  | Some d -> (
    match Hashtbl.find_opt d.slots name with
    | None -> None
    | Some loc -> Some (loc / t.cap, loc mod t.cap))

let first_free_block t inum =
  match Hashtbl.find_opt t.dirs inum with
  | None -> None
  | Some d ->
    let b = Su_util.Bitset.min_elt d.free_blocks in
    if b < 0 then None else Some b

(* The note_* updates are no-ops on unindexed directories, so callers
   need not distinguish "index disabled" from "not yet built". *)

let note_insert t inum ~blk ~slot name =
  match Hashtbl.find_opt t.dirs inum with
  | None -> ()
  | Some d ->
    Hashtbl.replace d.slots name ((blk * t.cap) + slot);
    d.free_count.(blk) <- d.free_count.(blk) - 1;
    if d.free_count.(blk) = 0 then Su_util.Bitset.clear d.free_blocks blk

let note_remove t inum ~blk name =
  match Hashtbl.find_opt t.dirs inum with
  | None -> ()
  | Some d ->
    Hashtbl.remove d.slots name;
    d.free_count.(blk) <- d.free_count.(blk) + 1;
    if d.free_count.(blk) = 1 then Su_util.Bitset.set d.free_blocks blk

(* A fresh (all-free) block was appended; returns its index. *)
let note_grow t inum =
  match Hashtbl.find_opt t.dirs inum with
  | None -> ()
  | Some d ->
    let blk = d.nblocks in
    if blk >= Array.length d.free_count then begin
      let bigger = Array.make (2 * Array.length d.free_count) 0 in
      Array.blit d.free_count 0 bigger 0 (Array.length d.free_count);
      d.free_count <- bigger
    end;
    d.free_count.(blk) <- t.cap;
    Su_util.Bitset.set d.free_blocks blk;
    d.nblocks <- blk + 1
