(** Background media scrubber.

    A {!Su_sim.Proc} that probes every fragment of the volume with
    driver reads, a [slice]-fragment batch per [interval]. A latent
    bad sector is repaired by rewriting known content through the
    driver (whose retry-exhaustion path remaps the fragment to a
    spare): a sister superblock replica for superblock fragments, a
    clean cached copy of the extent, or — for never-written
    fragments — a bare remap. Content that exists nowhere else is
    never guessed at: the fragment is reported to the {!Health}
    monitor as lost. Emits [scrub.found] / [scrub.repair] /
    [scrub.lost] / [scrub.pass] JSONL events when a sink is
    attached. *)

type t

val start :
  engine:Su_sim.Engine.t ->
  disk:Su_disk.Disk.t ->
  driver:Su_driver.Driver.t ->
  cache:Su_cache.Bcache.t ->
  health:Health.t ->
  geom:Su_fstypes.Geom.t ->
  ?integrity:Integrity.t ->
  interval:float ->
  ?slice:int ->
  ?obs:Su_obs.Events.t ->
  unit ->
  t
(** Spawn the scrubber process ([slice] default 64 fragments per
    wake-up). With [integrity], every readable fragment is also
    verified against the checksum region ({!Integrity.verify_frag}) —
    a silent corruption the foreground never reads is found and
    healed (or reported lost) by the sweep; such fragments count in
    {!found} and {!repaired}/{!lost}. *)

val stop : t -> unit

val passes_run : t -> int
(** Complete volume sweeps finished. *)

val scanned : t -> int
(** Fragments probed. *)

val found : t -> int
(** Latent bad sectors detected. *)

val repaired : t -> int
(** Bad sectors healed (replica, cached copy, or unallocated remap). *)

val deferred : t -> int
(** Bad sectors under a dirty cached extent: the pending flush will
    rewrite and remap them, so the scrubber left them alone. *)

val lost : t -> int
(** Fragments whose content could not be recovered. *)
