(** Off-line consistency checker, run against a crashed disk image.

    Distinguishes the paper's notion of {e integrity violations}
    (states fsck cannot safely repair: dangling references, doubly
    allocated resources, link counts lower than the reference count,
    referenced-but-free resources, stale-data exposure) from benign,
    {e repairable} conditions (leaked blocks/inodes, link counts
    higher than the reference count) that ordered updates are allowed
    to leave behind. All schemes except No Order must produce zero
    violations at every crash point; the exposure check additionally
    requires allocation initialisation to have been enforced. *)

open Su_fstypes

type violation =
  | Dangling_entry of { dir : int; name : string; inum : int }
      (** directory entry referencing a free or garbage inode *)
  | Bad_pointer of { inum : int; lbn : int; ptr : int }
      (** block pointer outside any data area *)
  | Cross_allocated of { frag : int; owners : int * int }
      (** one fragment referenced by two files *)
  | Nlink_low of { inum : int; nlink : int; refs : int }
      (** fewer links than references: premature free possible *)
  | Exposure of { inum : int; flbn : int; frag : int }
      (** pointer to a fragment whose contents the file never wrote:
          another file's stale data is readable *)
  | Bad_dir of { inum : int; reason : string }
      (** unreadable directory block / missing "." or ".." *)
  | Csum_mismatch of { frag : int }
      (** fragment content disagrees with the image's persisted
          checksum region (silent corruption the online ladder never
          healed); only reported when the image carries a region *)

type report = {
  violations : violation list;
  leaked_frags : int;  (** allocated in the maps but unreferenced *)
  leaked_inodes : int;
  stale_free : int;
      (** resources referenced on disk but marked free in the maps
          (repairable: fsck rebuilds the maps before any reuse) *)
  nlink_high : int;  (** inodes with more links than references *)
  files : int;  (** live files found *)
  dirs : int;  (** live directories found *)
}

val pp_violation : Format.formatter -> violation -> unit

val check :
  geom:Geom.t -> image:Types.cell array -> check_exposure:bool -> report
(** Walk the directory tree from the root, verify every reachable
    structure, then audit the allocation maps. *)

val ok : report -> bool
(** No violations (leaks are fine). *)

(** What {!repair} did to the image. *)
type repair_action =
  | Cleared_entry of { dir : int; name : string }
  | Fixed_nlink of { inum : int; from_ : int; to_ : int }
  | Truncated_file of { inum : int }
      (** cross-allocated, exposed or badly-pointed file data dropped *)
  | Cleared_dir_block of { inum : int; ptr : int }
  | Restored_dots of { inum : int }
  | Freed_unreachable of { inodes : int }
  | Rebuilt_maps
  | Resynced_csums of { frags : int }
      (** checksum region resynchronised to the repaired image as the
          last step: structural repair (not fsck's checksum pass)
          decides what data survives, then every fragment is made to
          verify again so the volume remounts clean *)

val pp_repair_action : Format.formatter -> repair_action -> unit

type repair_outcome = {
  actions : repair_action list;  (** what was done, in order *)
  final : report;  (** the re-check after repairing *)
  rounds : int;  (** structural repair rounds run *)
  converged : bool;
      (** [false] if structural repairs kept uncovering new damage and
          the round limit was hit; the image was still settled
          (link counts, unreachable inodes, allocation maps) but
          [final] may carry residual violations *)
}

val repair :
  ?observer:Imglog.observer ->
  geom:Geom.t ->
  image:Types.cell array ->
  check_exposure:bool ->
  unit ->
  repair_outcome
(** Fix the image in place, fsck-style: clear dangling entries, drop
    the data of cross-allocated/exposed files, restore "."/"..",
    settle link counts to the observed reference counts, reclaim
    unreachable resources and rebuild the allocation maps. Never
    raises on bad images: non-convergence is reported in the
    outcome.

    Every cell the repair changes flows through
    {!Su_fstypes.Imglog.write}: an [observer] sees repair's own write
    stream (writes that would not change the image are dropped), so
    the crash-state explorer can re-crash repair at any of its write
    boundaries. Repair actions are restartable over their own partial
    effects — each is recomputed from the image it finds — and a
    repair with nothing left to do writes nothing, which is the
    fixed-point the nested sweep checks. *)

val repair_test_hook :
  (Types.cell array -> (int * Types.cell) list) option ref
(** Test-only. When set, [repair] first applies the returned
    [(lbn, cell)] writes through its observed write path. Tests
    install a content-dependent hook here to prove the nested sweep
    catches a non-idempotent repair (one that never reaches a
    write-free round). Always reset to [None] afterwards. *)
