open Su_fstypes
module Proc = Su_sim.Proc

(* Background media scrubber.

   A `Su_sim.Proc` that walks the volume a slice at a time during
   idle, probing every fragment with a driver read. A latent bad
   sector (permanent read failure) is repaired from whatever known
   content exists — a sister superblock replica, a clean cached copy
   of the extent, or nothing at all for never-written fragments — by
   rewriting through the driver, whose retry-exhaustion path remaps
   the fragment to a spare. Content that exists nowhere else is never
   guessed at: the fragment is reported lost to the health monitor
   (which may flip the volume read-only), preserving fail-clean. *)

type t = {
  engine : Su_sim.Engine.t;
  disk : Su_disk.Disk.t;
  driver : Su_driver.Driver.t;
  cache : Su_cache.Bcache.t;
  health : Health.t;
  geom : Geom.t;
  integrity : Integrity.t option;
  interval : float;
  slice : int;
  obs : Su_obs.Events.t option;
  mutable cursor : int;
  mutable stopped : bool;
  mutable npasses : int;
  mutable scanned : int;
  mutable found : int;
  mutable repaired : int;
  mutable deferred : int;
  mutable lost : int;
}

let emit t ~kind fields =
  match t.obs with
  | None -> ()
  | Some sink ->
    Su_obs.Events.emit sink
      ~t_sim:(Su_sim.Engine.now t.engine)
      ~kind fields

let read_frag t lbn =
  let iv : (unit, Su_disk.Fault.error) result Proc.Ivar.t =
    Proc.Ivar.create t.engine
  in
  ignore
    (Su_driver.Driver.submit t.driver ~kind:Su_driver.Request.Read ~lbn
       ~nfrags:1
       ~on_complete:(fun r -> Proc.Ivar.fill iv (Result.map ignore r))
       ());
  Proc.Ivar.read iv

let write_cells t ~lbn cells =
  let iv : (unit, Su_disk.Fault.error) result Proc.Ivar.t =
    Proc.Ivar.create t.engine
  in
  ignore
    (Su_driver.Driver.submit t.driver ~kind:Su_driver.Request.Write ~lbn
       ~nfrags:(Array.length cells) ~payload:cells
       ~on_complete:(fun r -> Proc.Ivar.fill iv (Result.map ignore r))
       ());
  Proc.Ivar.read iv

(* Sister superblock copy content for [frag], read through the driver
   (so a dead sister is skipped). [frag] sits at offset [off] inside
   its copy's block; every copy's block has identical content. *)
let replica_content t frag =
  let fpb = t.geom.Geom.frags_per_block in
  let off = ref 0 in
  let home = ref (-1) in
  List.iter
    (fun f ->
      if frag >= f && frag < f + fpb then begin
        home := f;
        off := frag - f
      end)
    (Replica.copy_frags t.geom);
  let rec try_sisters = function
    | [] -> None
    | f :: rest when f = !home -> try_sisters rest
    | f :: rest -> (
      match read_frag t (f + !off) with
      (* copy before rewriting elsewhere: superblock replicas are
         boxed, so [peek] returns the live cell *)
      | Ok () -> Some (Types.copy_cell (Su_disk.Disk.peek t.disk (f + !off)))
      | Error _ -> try_sisters rest)
  in
  try_sisters (Replica.copy_frags t.geom)

(* A clean cached buffer whose extent covers [frag], if any. *)
let covering_buf t frag =
  let fpb = t.geom.Geom.frags_per_block in
  let rec scan k =
    if k >= fpb then None
    else
      match Su_cache.Bcache.lookup t.cache (frag - k) with
      | Some b when b.Su_cache.Buf.valid && k < b.Su_cache.Buf.nfrags -> Some b
      | Some _ | None -> scan (k + 1)
  in
  scan 0

let repair t frag =
  if Replica.is_copy_frag t.geom frag then (
    match replica_content t frag with
    | Some cell -> (
      match write_cells t ~lbn:frag [| cell |] with
      | Ok () ->
        t.repaired <- t.repaired + 1;
        Health.note_sb_restored t.health;
        emit t ~kind:"scrub.repair"
          [ ("frag", Su_obs.Json.Int frag);
            ("source", Su_obs.Json.Str "replica") ]
      | Error e -> Health.note_io_error t.health e)
    | None ->
      t.lost <- t.lost + 1;
      emit t ~kind:"scrub.lost" [ ("frag", Su_obs.Json.Int frag) ];
      Health.note_lost t.health ~frag)
  else
    match covering_buf t frag with
    | Some b when not b.Su_cache.Buf.dirty -> (
      let cells =
        Su_cache.Buf.to_cells
          (Su_cache.Buf.copy_content b.Su_cache.Buf.content)
          ~nfrags:b.Su_cache.Buf.nfrags
      in
      match write_cells t ~lbn:b.Su_cache.Buf.key cells with
      | Ok () ->
        t.repaired <- t.repaired + 1;
        emit t ~kind:"scrub.repair"
          [ ("frag", Su_obs.Json.Int frag);
            ("source", Su_obs.Json.Str "cache") ]
      | Error e -> Health.note_io_error t.health e)
    | Some _ ->
      (* dirty: the pending flush will rewrite the extent and the
         driver's retry-exhaustion path will remap it — nothing to do *)
      t.deferred <- t.deferred + 1
    | None -> (
      match Su_disk.Disk.peek t.disk frag with
      | Types.Empty ->
        (* never written: no content to preserve, just retire the
           sector so a future allocation lands on the spare *)
        if Su_disk.Disk.try_remap t.disk ~lbn:frag then begin
          t.repaired <- t.repaired + 1;
          emit t ~kind:"scrub.repair"
            [ ("frag", Su_obs.Json.Int frag);
              ("source", Su_obs.Json.Str "unallocated") ]
        end
        else begin
          Health.note_spares_exhausted t.health;
          t.lost <- t.lost + 1;
          emit t ~kind:"scrub.lost" [ ("frag", Su_obs.Json.Int frag) ];
          Health.note_lost t.health ~frag
        end
      | _ ->
        (* content exists only on the failing sector: report, never
           fabricate *)
        t.lost <- t.lost + 1;
        emit t ~kind:"scrub.lost" [ ("frag", Su_obs.Json.Int frag) ];
        Health.note_lost t.health ~frag)

let scan_one t frag =
  t.scanned <- t.scanned + 1;
  match read_frag t frag with
  | Ok () -> (
    (* the sector is readable; with checksums the content must also
       agree with its acknowledged digest — a lost or misdirected
       write surfaces here even if no foreground read ever lands on
       the fragment *)
    match t.integrity with
    | None -> ()
    | Some integ -> (
      match Integrity.verify_frag integ frag with
      | Integrity.Clean -> ()
      | Integrity.Repaired ->
        t.found <- t.found + 1;
        t.repaired <- t.repaired + 1;
        emit t ~kind:"scrub.found" [ ("frag", Su_obs.Json.Int frag) ]
      | Integrity.Lost ->
        t.found <- t.found + 1;
        t.lost <- t.lost + 1;
        emit t ~kind:"scrub.found" [ ("frag", Su_obs.Json.Int frag) ]))
  | Error (Su_disk.Fault.Bad_sector _) ->
    t.found <- t.found + 1;
    emit t ~kind:"scrub.found" [ ("frag", Su_obs.Json.Int frag) ];
    repair t frag
  | Error e ->
    (* exhausted transient / timeout: not a latent bad sector *)
    Health.note_io_error t.health e

let rec loop t () =
  Proc.sleep t.engine t.interval;
  if not t.stopped then begin
    let media = Su_disk.Disk.nfrags t.disk in
    for i = 0 to t.slice - 1 do
      if not t.stopped then begin
        let frag = (t.cursor + i) mod media in
        if frag = 0 && t.cursor + i > 0 then begin
          t.npasses <- t.npasses + 1;
          emit t ~kind:"scrub.pass" [ ("n", Su_obs.Json.Int t.npasses) ]
        end;
        scan_one t frag
      end
    done;
    t.cursor <- (t.cursor + t.slice) mod media;
    loop t ()
  end

let start ~engine ~disk ~driver ~cache ~health ~geom ?integrity ~interval
    ?(slice = 64) ?obs () =
  let t =
    {
      engine;
      disk;
      driver;
      cache;
      health;
      geom;
      integrity;
      interval;
      slice;
      obs;
      cursor = 0;
      stopped = false;
      npasses = 0;
      scanned = 0;
      found = 0;
      repaired = 0;
      deferred = 0;
      lost = 0;
    }
  in
  ignore (Proc.spawn engine ~name:"scrub" (loop t));
  t

let stop t = t.stopped <- true

let passes_run t = t.npasses
let scanned t = t.scanned
let found t = t.found
let repaired t = t.repaired
let deferred t = t.deferred
let lost t = t.lost
