open Su_fstypes

type scheme_kind =
  | Conventional
  | Scheduler_flag
  | Scheduler_chains of { barrier_dealloc : bool }
  | Soft_updates
  | No_order
  | Journaled of { group_commit : bool }

let scheme_kind_name = function
  | Conventional -> "Conventional"
  | Scheduler_flag -> "Scheduler Flag"
  | Scheduler_chains { barrier_dealloc = false } -> "Scheduler Chains"
  | Scheduler_chains { barrier_dealloc = true } -> "Scheduler Chains (barrier)"
  | Soft_updates -> "Soft Updates"
  | No_order -> "No Order"
  | Journaled { group_commit = false } -> "Journaled"
  | Journaled { group_commit = true } -> "Journaled (group commit)"

let all_schemes =
  [
    Conventional;
    Scheduler_flag;
    Scheduler_chains { barrier_dealloc = false };
    Soft_updates;
    No_order;
  ]

type config = {
  scheme : scheme_kind;
  alloc_init : bool;
  flag_sem : Su_driver.Ordering.flag_semantics;
  nr : bool;
  cb : bool;
  policy : Su_driver.Driver.policy;
  max_concat : int;
  cache_mb : int;
  syncer_interval : float;
  syncer_passes : int;
  geom : Geom.t;
  disk_params : Su_disk.Disk_params.t;
  costs : Costs.t;
  keep_trace_records : bool;
  journal_mb : int;
  nvram_mb : int;
  fault : Su_disk.Fault.config;
  io_max_attempts : int;
  io_retry_backoff : float;
  io_request_timeout : float;
  spare_frags : int;
  checksums : bool;
  scrub_interval : float;
  health_max_lost : int;
  trace_sink : Su_obs.Events.t option;
  dir_index : bool;
}

exception Mount_failure of string

let () =
  Printexc.register_printer (function
    | Mount_failure msg -> Some ("Fs.Mount_failure: " ^ msg)
    | _ -> None)

let config ?(scheme = Soft_updates) () =
  let cb =
    match scheme with
    | Scheduler_flag | Scheduler_chains _ | Soft_updates | Journaled _ -> true
    | Conventional | No_order -> false
  in
  {
    scheme;
    alloc_init = (match scheme with Soft_updates -> true | _ -> false);
    flag_sem = Su_driver.Ordering.Part;
    nr = true;
    cb;
    policy = Su_driver.Driver.Clook;
    max_concat = 64;
    cache_mb = 32;
    syncer_interval = 1.0;
    syncer_passes = 30;
    geom = Geom.default;
    disk_params = Su_disk.Disk_params.hp_c2447;
    costs = Costs.i486_33;
    keep_trace_records = false;
    journal_mb = 8;
    nvram_mb = 0;
    fault = Su_disk.Fault.none;
    io_max_attempts = Su_driver.Driver.default_config.max_attempts;
    io_retry_backoff = Su_driver.Driver.default_config.retry_backoff;
    io_request_timeout = Su_driver.Driver.default_config.request_timeout;
    spare_frags = 0;
    checksums = false;
    scrub_interval = 0.0;
    health_max_lost = 8;
    trace_sink = None;
    dir_index = false;
  }

let journal_region cfg =
  match cfg.scheme with
  | Journaled _ -> Some (cfg.geom.Geom.nfrags, cfg.journal_mb * 1024)
  | Conventional | Scheduler_flag | Scheduler_chains _ | Soft_updates | No_order
    -> None

let recover_image ?observer cfg image =
  match journal_region cfg with
  | Some (log_start, log_frags) ->
    (* Replayed cells are acknowledged writes: a captured checksum
       region must follow them, or every fragment recovery touches
       would read back as corrupt after remount. *)
    let csum =
      let rec go i =
        if i < cfg.geom.Geom.nfrags then None
        else
          match image.(i) with Types.Csum ca -> Some ca | _ -> go (i - 1)
      in
      go (Array.length image - 1)
    in
    let observer =
      match csum with
      | None -> observer
      | Some ca ->
        let lim = Array.length ca in
        Some
          (fun ~lbn ~pre ~post ->
            if lbn < lim then ca.(lbn) <- Types.cell_digest post;
            match observer with None -> () | Some f -> f ~lbn ~pre ~post)
    in
    Su_core.Journaled.recover ?observer ~geom:cfg.geom ~log_start ~log_frags
      image
  | None -> ()

let driver_mode cfg =
  match cfg.scheme with
  | Conventional | Soft_updates | No_order | Journaled _ ->
    Su_driver.Ordering.Unordered
  | Scheduler_flag -> Su_driver.Ordering.Flag { sem = cfg.flag_sem; nr = cfg.nr }
  | Scheduler_chains _ -> Su_driver.Ordering.Chains { nr = cfg.nr }

type world = {
  cfg : config;
  engine : Su_sim.Engine.t;
  cpu : Su_sim.Cpu.t;
  disk : Su_disk.Disk.t;
  driver : Su_driver.Driver.t;
  cache : Su_cache.Bcache.t;
  syncer : Su_cache.Syncer.t;
  scrub : Scrub.t option;
  integrity : Integrity.t option;
  st : State.t;
  extra_stop : unit -> unit;
}

(* Format the disk: superblock copies, group headers with bitmaps, the
   root directory. Written straight into the image (no simulated
   time). Inode blocks are left unwritten — garbage reads back as
   all-free dinodes — except the root's. *)
let mkfs disk (g : Geom.t) =
  let fpb = g.Geom.frags_per_block in
  let install_meta frag m =
    Su_disk.Disk.install disk frag (Types.Meta m);
    for i = 1 to fpb - 1 do
      Su_disk.Disk.install disk (frag + i) Types.Pad
    done
  in
  let sb =
    { Types.sb_magic = Types.magic; sb_nfrags = g.Geom.nfrags;
      sb_ncg = Geom.cg_count g; sb_clean = true }
  in
  let root_block = fst (Geom.cg_data_area g 0) in
  for c = 0 to Geom.cg_count g - 1 do
    install_meta (Geom.cg_sb_frag g c) (Types.Superblock sb);
    let cg = Types.fresh_cg g in
    let data_first, data_count = Geom.cg_data_area g c in
    let base = Geom.cg_base g c in
    (* everything before the data area is permanently allocated *)
    for off = 0 to data_first - base - 1 do
      Bytes.set cg.Types.frag_map off '\001'
    done;
    cg.Types.nffree <- data_count;
    cg.Types.nifree <- g.Geom.inodes_per_cg;
    if c = 0 then begin
      (* the root directory: inode 2 and its first block *)
      Bytes.set cg.Types.inode_map 0 '\001';
      cg.Types.nifree <- cg.Types.nifree - 1;
      for off = root_block - base to root_block - base + fpb - 1 do
        Bytes.set cg.Types.frag_map off '\001'
      done;
      cg.Types.nffree <- cg.Types.nffree - fpb
    end;
    install_meta (Geom.cg_header_frag g c) (Types.Cgroup cg)
  done;
  (* root inode *)
  let dinodes =
    match Types.fresh_inode_block g with
    | Types.Inodes d -> d
    | Types.Superblock _ | Types.Cgroup _ | Types.Dir _ | Types.Indirect _ ->
      assert false
  in
  (* replace the slot rather than mutating it: free slots of a fresh
     block share one canonical dinode *)
  let root = Types.free_dinode g in
  root.Types.ftype <- Types.F_dir;
  root.Types.nlink <- 2;
  root.Types.size <- Geom.block_bytes g;
  root.Types.gen <- 1;
  root.Types.db.(0) <- root_block;
  dinodes.(0) <- root;
  install_meta (Geom.inode_block_frag g Geom.root_inum) (Types.Inodes dinodes);
  (* root directory block: "." and ".." both point at the root *)
  let entries = Types.fresh_dir_block g in
  entries.(0) <- Some { Types.name = "."; inum = Geom.root_inum };
  entries.(1) <- Some { Types.name = ".."; inum = Geom.root_inum };
  install_meta root_block (Types.Dir entries)

let build ?image cfg =
  let engine = Su_sim.Engine.create () in
  let cpu = Su_sim.Cpu.create engine in
  let total_frags =
    cfg.geom.Geom.nfrags
    + (match journal_region cfg with Some (_, n) -> n | None -> 0)
  in
  let disk =
    Su_disk.Disk.create ~engine ~params:cfg.disk_params ~nfrags:total_frags
      ?nvram_frags:
        (match cfg.nvram_mb with 0 -> None | mb -> Some (mb * 1024))
      ~fault:cfg.fault ~spare_frags:cfg.spare_frags ~checksums:cfg.checksums ()
  in
  let health =
    Health.create ~engine ?obs:cfg.trace_sink ~max_lost:cfg.health_max_lost ()
  in
  (* a physical snapshot may carry the spare region, remap-table cell
     and checksum region past the media *)
  let max_image =
    total_frags
    + (if cfg.spare_frags > 0 then cfg.spare_frags + 1 else 0)
    + (if cfg.checksums then 1 else 0)
  in
  (match image with
   | None -> mkfs disk cfg.geom
   | Some cells ->
     if Array.length cells > max_image then
       invalid_arg "Fs.mount_image: image larger than the configured disk";
     (* a captured checksum region is loaded over the digests the
        installs compute, so pre-mount corruption stays detectable; it
        must not be installed positionally (the source layout's slot
        may differ from ours) *)
     Array.iteri
       (fun i c ->
         match c with
         | Types.Csum _ -> Su_disk.Disk.install_csum disk c
         | _ -> Su_disk.Disk.install disk i (Types.copy_cell c))
       cells;
     (* restore the in-core remap table before anything reads through
        the device, then cross-check the superblock replicas *)
     Su_disk.Disk.reload_remap disk;
     (match Replica.check_and_restore ~geom:cfg.geom disk with
      | Ok 0 -> ()
      | Ok n ->
        for _ = 1 to n do Health.note_sb_restored health done
      | Error msg -> raise (Mount_failure msg)));
  let driver =
    Su_driver.Driver.create ~engine ~disk
      {
        Su_driver.Driver.mode = driver_mode cfg;
        policy = cfg.policy;
        max_concat = cfg.max_concat;
        keep_records = cfg.keep_trace_records;
        max_attempts = cfg.io_max_attempts;
        retry_backoff = cfg.io_retry_backoff;
        request_timeout = cfg.io_request_timeout;
        sink = cfg.trace_sink;
      }
  in
  let copy_cost_holder = ref (fun (_ : int) -> ()) in
  let cache =
    Su_cache.Bcache.create ~engine ~driver
      {
        Su_cache.Bcache.capacity_frags = cfg.cache_mb * 1024;
        cb = cfg.cb;
        copy_cost = (fun n -> !copy_cost_holder n);
        sink = cfg.trace_sink;
      }
  in
  let scheme, softdep_stats, journal_stats, extra_stop =
    let nop () = () in
    match cfg.scheme with
    | Conventional -> (Su_core.Conventional.make cache, None, None, nop)
    | Scheduler_flag -> (Su_core.Sched_flag.make cache, None, None, nop)
    | Scheduler_chains { barrier_dealloc } ->
      (Su_core.Sched_chains.make ~barrier_dealloc cache, None, None, nop)
    | Soft_updates ->
      let s, stats = Su_core.Softdep.make ~cache ~geom:cfg.geom in
      (s, Some stats, None, nop)
    | No_order -> (Su_core.No_order.make cache, None, None, nop)
    | Journaled { group_commit } ->
      let log_start, log_frags =
        match journal_region cfg with
        | Some r -> r
        | None -> assert false
      in
      let mode =
        if group_commit then Su_core.Journaled.Group_commit
        else Su_core.Journaled.Sync_commit
      in
      let s, stats, stop =
        Su_core.Journaled.make ~cache ~geom:cfg.geom ~log_start ~log_frags
          ~mode ()
      in
      (s, None, Some stats, stop)
  in
  let syncer =
    Su_cache.Syncer.start ~engine ~cache ~interval:cfg.syncer_interval
      ~passes:cfg.syncer_passes ()
  in
  let st =
    {
      State.geom = cfg.geom;
      engine;
      cpu;
      disk;
      driver;
      cache;
      scheme;
      costs = cfg.costs;
      alloc_init = cfg.alloc_init;
      alloc_mutex = Su_sim.Sync.Mutex.create engine;
      icache = Hashtbl.create 1024;
      rotor = Array.make (Geom.cg_count cfg.geom) 0;
      freemaps = Array.init (Geom.cg_count cfg.geom) (fun _ -> Freemap.create ());
      dirx =
        (if cfg.dir_index then
           Some (Dir_index.create ~cap:cfg.geom.Geom.dir_capacity ())
         else None);
      next_cg = 0;
      gen_counter = 1;
      softdep_stats;
      journal_stats;
      obs = cfg.trace_sink;
      health;
    }
  in
  (* the health monitor hears every definitive device failure the
     cache observes *)
  Su_cache.Bcache.set_io_error_callback cache (fun e ->
      Health.note_io_error health e);
  let integrity =
    if cfg.checksums then begin
      let integ =
        Integrity.create ~engine ~disk ~driver ~cache ~health ~geom:cfg.geom
          ?obs:cfg.trace_sink ()
      in
      (* every fill read is verified (and self-healed) before the
         cells become a buffer *)
      (Su_cache.Bcache.hooks cache).Su_cache.Bcache.verify_fill <-
        Some (fun ~lbn cells -> Integrity.verify_fill integ ~lbn cells);
      Some integ
    end
    else None
  in
  let scrub =
    if cfg.scrub_interval > 0.0 then
      Some
        (Scrub.start ~engine ~disk ~driver ~cache ~health ~geom:cfg.geom
           ?integrity ~interval:cfg.scrub_interval ?obs:cfg.trace_sink ())
    else None
  in
  (* copy costs go to the CPU without blocking: an engine-context
     caller (write issue) cannot wait, so we account the time against
     the CPU server asynchronously *)
  (copy_cost_holder :=
     fun n ->
       if n > 0 then
         ignore
           (Su_sim.Proc.spawn engine ~name:"copy" (fun () ->
                Su_sim.Cpu.consume cpu
                  (float_of_int n *. cfg.costs.Costs.copy_per_frag))));
  { cfg; engine; cpu; disk; driver; cache; syncer; scrub; integrity; st;
    extra_stop }

let make cfg = build cfg

let mount_image cfg image = build ~image cfg

let stop w =
  Su_cache.Syncer.stop w.syncer;
  (match w.scrub with Some s -> Scrub.stop s | None -> ());
  w.extra_stop ()
