(** Directory entry operations.

    Directories are files of {!Su_fstypes.Types.Dir} blocks. Scanning
    charges CPU per entry examined (the cost that makes the paper's
    create throughput improve with concurrency). Callers hold the
    directory inode's lock across these operations. *)

val lookup : State.t -> State.incore -> string -> int option
(** [lookup st dip name] returns the inode number of [name]. *)

val add_entry : State.t -> State.incore -> string -> int -> unit
(** Insert an entry (growing the directory if needed) and run the
    ordering scheme's link-addition hook against the named inode. *)

val change_entry :
  State.t -> State.incore -> string -> int -> decrement:(int -> unit) -> bool
(** [change_entry st dip name new_inum ~decrement] re-points the
    existing entry [name] at [new_inum] in place — the slot is never
    empty, only old or new (directory rename's ".." rewrite). Runs the
    ordering scheme's entry-change hook: the new target's inode is
    ordered ahead of the rewritten entry, and [decrement old_inum] (the
    old target's link-count drop) behind it. Returns whether the entry
    existed; re-pointing at the current target is a no-op. *)

val remove_entry :
  State.t -> State.incore -> string -> decrement:(int -> unit) -> bool
(** Remove the entry; [decrement inum] is handed to the ordering
    scheme (it performs the link-count decrement, possibly deferred).
    Returns whether the entry existed. *)

val insert_prepared :
  ?link_dep:bool -> State.t -> dir:Su_cache.Buf.t -> slot:int -> string -> int -> unit
(** Low-level insert into a specific (referenced) directory block at
    [slot], running the link-addition hook; used to seed "." and ".."
    into a block that is not yet attached to its directory.

    [link_dep] (default [true]): run the scheme's link-addition hook.
    mkdir passes [false] for "." only: its ordering is structural —
    the dots-bearing block is initialisation-ordered before the
    inode's pointer ({!File.grow_dir_block}), and the directory is
    unreachable until the parent's entry lands, which does carry a
    link dependency on the new inode. Registering a hook dependency
    for "." is not just redundant: under soft updates it makes the
    block's {e first} write roll "." back (the entry waits on the
    very inode write that waits on the block), exposing a reachable
    directory without "." at crash points between the parent-entry
    write and the block's rewrite. ".." is different: its hook orders
    the parent's inode — carrying the incremented link count — ahead
    of the entry, so it stays (BSD softdep's MKDIR_PARENT). *)

val list_names : State.t -> State.incore -> string list
(** All entry names, including "." and "..". *)

val entry_count : State.t -> State.incore -> int

val is_empty : State.t -> State.incore -> bool
(** Only "." and ".." remain. *)
