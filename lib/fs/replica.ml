open Su_fstypes

(* Critical-metadata replication.

   mkfs already writes one superblock copy per cylinder group; this
   module turns those copies into usable redundancy. At mount the
   copies are cross-checked and any invalid or known-bad one is
   restored from a surviving sister (read-fallback), remapping the
   fragment first when the device knows it is a permanent bad sector
   and spares are available (write-through to a good home). Online,
   the scrubber performs the same repair through the driver. *)

let is_valid ~(geom : Geom.t) cell =
  match cell with
  | Types.Meta (Types.Superblock sb) ->
    sb.Types.sb_magic = Types.magic && sb.Types.sb_nfrags = geom.Geom.nfrags
  | _ -> false

let copy_frags geom =
  List.init (Geom.cg_count geom) (fun c -> Geom.cg_sb_frag geom c)

let is_copy_frag geom frag =
  let fpb = geom.Geom.frags_per_block in
  List.exists (fun f -> frag >= f && frag < f + fpb) (copy_frags geom)

(* The device cannot read this fragment: it is on the permanent
   bad-sector list and has not been remapped to a spare. *)
let unreadable disk frag =
  List.mem frag
    (Su_disk.Fault.config (Su_disk.Disk.fault disk)).Su_disk.Fault.bad_sectors
  && not (List.mem_assoc frag (Su_disk.Disk.remap_entries disk))

(* A copy is usable when its content validates ([peek] follows the
   remap table) and its home is readable. *)
let usable ~geom disk frag =
  is_valid ~geom (Su_disk.Disk.peek disk frag) && not (unreadable disk frag)

let check_and_restore ~geom disk =
  let cs = copy_frags geom in
  match List.find_opt (fun f -> usable ~geom disk f) cs with
  | None -> Error "no usable superblock replica"
  | Some good ->
    (* the copy is load-bearing: a superblock is one of the boxed
       kinds [Disk.peek] returns live, and the restored replicas must
       not share its mutable record *)
    let cell = Types.copy_cell (Su_disk.Disk.peek disk good) in
    let restored =
      List.fold_left
        (fun n f ->
          if usable ~geom disk f then n
          else begin
            (* a permanently bad home needs a new one first; without
               spares the content is still fixed in place (which cures
               plain corruption, not the bad sector) *)
            if unreadable disk f then ignore (Su_disk.Disk.try_remap disk ~lbn:f);
            Su_disk.Disk.install disk f (Types.copy_cell cell);
            n + 1
          end)
        0 cs
    in
    Ok restored
