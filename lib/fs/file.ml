open Su_fstypes
open Su_cache
module Intf = Su_core.Scheme_intf

let fpb st = State.block_frags st
let bb st = State.block_bytes st

let frags_in_block st ~size ~lbn =
  let bb = bb st in
  if size <= lbn * bb then 0
  else if size >= (lbn + 1) * bb then fpb st
  else Geom.frags_of_bytes st.State.geom (size - (lbn * bb))

let last_lbn st ~size = if size <= 0 then -1 else (size - 1) / bb st

let small_file st ~size =
  Geom.blocks_of_bytes st.State.geom size <= st.State.geom.Geom.ndaddr

(* Allocated length of block [lbn]: the tail is a partial fragment run
   only for small files; large files use full blocks throughout. *)
let extent_len st ~size ~lbn =
  let partial = frags_in_block st ~size ~lbn in
  if partial = 0 then 0
  else if partial < fpb st && not (small_file st ~size) then fpb st
  else partial

let add_wdeps (b : Buf.t) ids =
  List.iter
    (fun id -> if not (List.mem id b.Buf.wdeps) then b.Buf.wdeps <- id :: b.Buf.wdeps)
    ids

let cg_hint st ip = Geom.cg_of_inode st.State.geom ip.State.inum

(* --- indirect block plumbing ----------------------------------------- *)

let read_indirect st lbn =
  let buf = Bcache.bread st.State.cache ~lbn ~nfrags:(fpb st) in
  match buf.Buf.content with
  | Buf.Cmeta (Types.Indirect _) -> buf
  | Buf.Cmeta _ | Buf.Cdata _ ->
    Bcache.release st.State.cache buf;
    failwith "File: expected an indirect block"

(* Allocate a fresh, zeroed indirect block whose pointer lives at
   [loc] of [owner] (an inode block or another indirect block).
   Returns its address. The new block's initialisation must reach the
   disk before the pointer: init_required is unconditional for
   metadata. *)
let alloc_indirect st ip ~owner ~loc =
  let addr = Alloc.alloc_block st ~cg_hint:(cg_hint st ip) in
  let deps = st.State.scheme.Intf.reuse_frag_deps [ (addr, fpb st) ] in
  let data =
    Bcache.getblk st.State.cache ~lbn:addr ~nfrags:(fpb st) ~init:(fun () ->
        Buf.Cmeta (Types.Indirect (Types.fresh_indirect st.State.geom)))
  in
  add_wdeps data deps;
  Bcache.bdwrite st.State.cache data;
  let size = ip.State.din.Types.size in
  st.State.scheme.Intf.block_alloc
    {
      Intf.inum = ip.State.inum;
      owner;
      loc;
      data;
      new_ptr = addr;
      old_ptr = 0;
      new_size = size;
      old_size = size;
      freed = [];
      free_moved = (fun () -> ());
      init_required = true;
    };
  Bcache.release st.State.cache data;
  addr

let f_hole _f = failwith "File: hole in read path"

(* Resolve where the pointer for block [lbn] lives, allocating
   indirect blocks along the way when [alloc] is set. Calls [f] with
   the (referenced) owner buffer, the location, and the current
   pointer value, plus a setter that updates the in-memory pointer. *)
let with_ptr st ip lbn ~alloc f =
  let g = st.State.geom in
  let nd = g.Geom.ndaddr and ni = g.Geom.nindir in
  if lbn < nd then
    Inode.with_ibuf st ip.State.inum (fun ibuf ->
        let get () = ip.State.din.Types.db.(lbn) in
        let set v =
          ip.State.din.Types.db.(lbn) <- v;
          Inode.update st ip
        in
        f ibuf (Intf.P_direct lbn) get set)
  else if lbn < nd + ni then begin
    let slot = lbn - nd in
    let ib =
      if ip.State.din.Types.ib = 0 then
        if alloc then
          Inode.with_ibuf st ip.State.inum (fun ibuf ->
              let addr = alloc_indirect st ip ~owner:ibuf ~loc:Intf.P_ib1 in
              ip.State.din.Types.ib <- addr;
              Inode.update st ip;
              addr)
        else 0
      else ip.State.din.Types.ib
    in
    if ib = 0 then f_hole f
    else
      let buf = read_indirect st ib in
      Fun.protect
        ~finally:(fun () -> Bcache.release st.State.cache buf)
        (fun () ->
          let arr =
            match buf.Buf.content with
            | Buf.Cmeta (Types.Indirect a) -> a
            | Buf.Cmeta _ | Buf.Cdata _ -> assert false
          in
          let get () = arr.(slot) in
          let set v =
            Bcache.prepare_modify st.State.cache buf;
            arr.(slot) <- v;
            Bcache.bdwrite st.State.cache buf
          in
          f buf (Intf.P_ind slot) get set)
  end
  else begin
    let lbn2 = lbn - nd - ni in
    let l1 = lbn2 / ni and slot = lbn2 mod ni in
    if l1 >= ni then failwith "File: file too large";
    let ib2 =
      if ip.State.din.Types.ib2 = 0 then
        if alloc then
          Inode.with_ibuf st ip.State.inum (fun ibuf ->
              let addr = alloc_indirect st ip ~owner:ibuf ~loc:Intf.P_ib2 in
              ip.State.din.Types.ib2 <- addr;
              Inode.update st ip;
              addr)
        else 0
      else ip.State.din.Types.ib2
    in
    if ib2 = 0 then f_hole f
    else begin
      let b2 = read_indirect st ib2 in
      Fun.protect
        ~finally:(fun () -> Bcache.release st.State.cache b2)
        (fun () ->
          let arr2 =
            match b2.Buf.content with
            | Buf.Cmeta (Types.Indirect a) -> a
            | Buf.Cmeta _ | Buf.Cdata _ -> assert false
          in
          let l1_addr =
            if arr2.(l1) = 0 then
              if alloc then begin
                let addr = alloc_indirect st ip ~owner:b2 ~loc:(Intf.P_ind l1) in
                Bcache.prepare_modify st.State.cache b2;
                arr2.(l1) <- addr;
                Bcache.bdwrite st.State.cache b2;
                addr
              end
              else 0
            else arr2.(l1)
          in
          if l1_addr = 0 then f_hole f
          else
            let b1 = read_indirect st l1_addr in
            Fun.protect
              ~finally:(fun () -> Bcache.release st.State.cache b1)
              (fun () ->
                let arr1 =
                  match b1.Buf.content with
                  | Buf.Cmeta (Types.Indirect a) -> a
                  | Buf.Cmeta _ | Buf.Cdata _ -> assert false
                in
                let get () = arr1.(slot) in
                let set v =
                  Bcache.prepare_modify st.State.cache b1;
                  arr1.(slot) <- v;
                  Bcache.bdwrite st.State.cache b1
                in
                f b1 (Intf.P_ind slot) get set))
    end
  end

let ptr_at st ip lbn =
  let g = st.State.geom in
  let nd = g.Geom.ndaddr and ni = g.Geom.nindir in
  if lbn < nd then ip.State.din.Types.db.(lbn)
  else if lbn < nd + ni then begin
    if ip.State.din.Types.ib = 0 then 0
    else
      let buf = read_indirect st ip.State.din.Types.ib in
      Fun.protect
        ~finally:(fun () -> Bcache.release st.State.cache buf)
        (fun () ->
          match buf.Buf.content with
          | Buf.Cmeta (Types.Indirect a) -> a.(lbn - nd)
          | Buf.Cmeta _ | Buf.Cdata _ -> 0)
  end
  else begin
    let lbn2 = lbn - nd - ni in
    let l1 = lbn2 / ni and slot = lbn2 mod ni in
    if ip.State.din.Types.ib2 = 0 then 0
    else
      let b2 = read_indirect st ip.State.din.Types.ib2 in
      let l1_addr =
        Fun.protect
          ~finally:(fun () -> Bcache.release st.State.cache b2)
          (fun () ->
            match b2.Buf.content with
            | Buf.Cmeta (Types.Indirect a) -> a.(l1)
            | Buf.Cmeta _ | Buf.Cdata _ -> 0)
      in
      if l1_addr = 0 then 0
      else
        let b1 = read_indirect st l1_addr in
        Fun.protect
          ~finally:(fun () -> Bcache.release st.State.cache b1)
          (fun () ->
            match b1.Buf.content with
            | Buf.Cmeta (Types.Indirect a) -> a.(slot)
            | Buf.Cmeta _ | Buf.Cdata _ -> 0)
  end

(* --- data block growth ------------------------------------------------ *)

let stamp ip flbn =
  Some
    (Types.Written
       { inum = ip.State.inum; gen = ip.State.din.Types.gen; flbn })

let fill_stamps st ip ~lbn ~count =
  Array.init count (fun i -> stamp ip ((lbn * fpb st) + i))

(* Grow block [lbn] of the file to [want] fragments (from [have],
   possibly 0), producing a data buffer, and run the ordering scheme.
   [old_size]/[new_size] bracket the inode size change. *)
let grow_block st ip ~lbn ~have ~want ~old_size ~new_size =
  let init_required = st.State.alloc_init in
  State.charge st (float_of_int (want - have) *. st.State.costs.Costs.data_per_frag);
  with_ptr st ip lbn ~alloc:true (fun owner loc get set ->
      let old_ptr = get () in
      let finish ~data ~new_ptr ~freed ~free_moved =
        ip.State.din.Types.size <- new_size;
        set new_ptr;
        (* the setter only touches the pointer's home; the size lives
           in the inode and must reach its buffer too *)
        Inode.update st ip;
        Bcache.bdwrite st.State.cache data;
        st.State.scheme.Intf.block_alloc
          {
            Intf.inum = ip.State.inum;
            owner;
            loc;
            data;
            new_ptr;
            old_ptr;
            new_size;
            old_size;
            freed;
            free_moved;
            init_required;
          };
        Bcache.release st.State.cache data
      in
      if have = 0 then begin
        (* fresh allocation *)
        let addr =
          if want = fpb st then Alloc.alloc_block st ~cg_hint:(cg_hint st ip)
          else Alloc.alloc_frags st ~cg_hint:(cg_hint st ip) ~count:want
        in
        let deps = st.State.scheme.Intf.reuse_frag_deps [ (addr, want) ] in
        let data =
          Bcache.getblk st.State.cache ~lbn:addr ~nfrags:want ~init:(fun () ->
              Buf.Cdata (fill_stamps st ip ~lbn ~count:want))
        in
        add_wdeps data deps;
        add_wdeps owner deps;
        finish ~data ~new_ptr:addr ~freed:[] ~free_moved:(fun () -> ())
      end
      else if old_ptr = 0 then failwith "File.grow_block: lost fragment run"
      else if Alloc.try_extend st ~start:old_ptr ~have ~want then begin
        (* extend the fragment run in place *)
        let data = Bcache.bread st.State.cache ~lbn:old_ptr ~nfrags:have in
        Bcache.prepare_modify st.State.cache data;
        let stamps =
          Array.init want (fun i ->
              if i < have then
                match data.Buf.content with
                | Buf.Cdata d -> d.(i)
                | Buf.Cmeta _ -> None
              else stamp ip ((lbn * fpb st) + i))
        in
        Bcache.set_extent st.State.cache data ~nfrags:want (Buf.Cdata stamps);
        finish ~data ~new_ptr:old_ptr ~freed:[] ~free_moved:(fun () -> ())
      end
      else begin
        (* move the fragment run to a larger home *)
        let addr =
          if want = fpb st then Alloc.alloc_block st ~cg_hint:(cg_hint st ip)
          else Alloc.alloc_frags st ~cg_hint:(cg_hint st ip) ~count:want
        in
        let deps = st.State.scheme.Intf.reuse_frag_deps [ (addr, want) ] in
        State.charge st
          (float_of_int have *. st.State.costs.Costs.copy_per_frag);
        let old_buf = Bcache.bread st.State.cache ~lbn:old_ptr ~nfrags:have in
        let old_stamps =
          match old_buf.Buf.content with
          | Buf.Cdata d -> d
          | Buf.Cmeta _ -> Array.make have None
        in
        let stamps =
          Array.init want (fun i ->
              if i < have then old_stamps.(i) else stamp ip ((lbn * fpb st) + i))
        in
        Bcache.release st.State.cache old_buf;
        Bcache.invalidate st.State.cache old_buf;
        let data =
          Bcache.getblk st.State.cache ~lbn:addr ~nfrags:want ~init:(fun () ->
              Buf.Cdata stamps)
        in
        add_wdeps data deps;
        add_wdeps owner deps;
        let freed = [ (old_ptr, have) ] in
        finish ~data ~new_ptr:addr ~freed
          ~free_moved:(fun () -> Alloc.free_run st (old_ptr, have))
      end)

let append st ip ~bytes =
  if bytes <= 0 then invalid_arg "File.append: bytes must be positive";
  let bb = bb st in
  let cur = ip.State.din.Types.size in
  let target = cur + bytes in
  let small = small_file st ~size:target in
  let first =
    if cur = 0 then 0
    else if cur mod bb = 0 then cur / bb
    else (cur - 1) / bb
  in
  let last = last_lbn st ~size:target in
  let size_before = ref cur in
  let allocated = ref false in
  for lbn = first to last do
    let have = extent_len st ~size:cur ~lbn in
    let want_bytes = min target ((lbn + 1) * bb) - (lbn * bb) in
    let want =
      if small && lbn = last then Geom.frags_of_bytes st.State.geom want_bytes
      else fpb st
    in
    if want > have then begin
      let new_size = min target ((lbn + 1) * bb) in
      grow_block st ip ~lbn ~have ~want ~old_size:!size_before ~new_size;
      size_before := new_size;
      allocated := true
    end
  done;
  ip.State.din.Types.size <- target;
  ip.State.din.Types.mtime <- Su_sim.Engine.now st.State.engine;
  Inode.update st ip;
  (* the write fit inside already-allocated fragments: no alloc hook
     saw the new size, so let the scheme capture the attribute change
     (the journal re-logs the dinode; ordered schemes need nothing) *)
  if not !allocated then
    Inode.with_ibuf st ip.State.inum (fun ibuf ->
        st.State.scheme.Intf.attr_update ~ibuf ~inum:ip.State.inum)

let grow_dir_block st ip =
  let lbn = Geom.blocks_of_bytes st.State.geom ip.State.din.Types.size in
  let addr = Alloc.alloc_block st ~cg_hint:(cg_hint st ip) in
  let deps = st.State.scheme.Intf.reuse_frag_deps [ (addr, fpb st) ] in
  let data =
    Bcache.getblk st.State.cache ~lbn:addr ~nfrags:(fpb st) ~init:(fun () ->
        Buf.Cmeta (Types.Dir (Types.fresh_dir_block st.State.geom)))
  in
  add_wdeps data deps;
  Bcache.bdwrite st.State.cache data;
  let old_size = ip.State.din.Types.size in
  let new_size = (lbn + 1) * bb st in
  let commit () =
    with_ptr st ip lbn ~alloc:true (fun owner loc get set ->
        let old_ptr = get () in
        ip.State.din.Types.size <- new_size;
        set addr;
        Inode.update st ip;
        st.State.scheme.Intf.block_alloc
          {
            Intf.inum = ip.State.inum;
            owner;
            loc;
            data;
            new_ptr = addr;
            old_ptr;
            new_size;
            old_size;
            freed = [];
            free_moved = (fun () -> ());
            (* directory blocks are always initialised on disk first *)
            init_required = true;
          })
  in
  (data, commit)

let read_all st ip =
  let size = ip.State.din.Types.size in
  let nread = ref 0 in
  let last = last_lbn st ~size in
  for lbn = 0 to last do
    let len = extent_len st ~size ~lbn in
    let addr = ptr_at st ip lbn in
    if addr <> 0 && len > 0 then begin
      let buf = Bcache.bread st.State.cache ~lbn:addr ~nfrags:len in
      State.charge st (float_of_int len *. st.State.costs.Costs.data_per_frag);
      nread := !nread + len;
      Bcache.release st.State.cache buf
    end
  done;
  !nread

(* --- truncation / release --------------------------------------------- *)

let gather_runs st ip =
  let size = ip.State.din.Types.size in
  let runs = ref [] and bufs = ref [] in
  let add_run r = runs := r :: !runs in
  let note_buf addr = bufs := addr :: !bufs in
  let din = ip.State.din in
  Array.iteri
    (fun i ptr ->
      if ptr <> 0 then begin
        let len = extent_len st ~size ~lbn:i in
        let len = if len = 0 then fpb st else len in
        add_run (ptr, len);
        note_buf ptr
      end)
    din.Types.db;
  let drain_indirect addr =
    let buf = read_indirect st addr in
    let arr =
      match buf.Buf.content with
      | Buf.Cmeta (Types.Indirect a) -> Array.copy a
      | Buf.Cmeta _ | Buf.Cdata _ -> [||]
    in
    Bcache.release st.State.cache buf;
    Array.iter
      (fun ptr ->
        if ptr <> 0 then begin
          add_run (ptr, fpb st);
          note_buf ptr
        end)
      arr;
    arr
  in
  if din.Types.ib <> 0 then begin
    ignore (drain_indirect din.Types.ib);
    add_run (din.Types.ib, fpb st);
    note_buf din.Types.ib
  end;
  if din.Types.ib2 <> 0 then begin
    let b2 = read_indirect st din.Types.ib2 in
    let arr2 =
      match b2.Buf.content with
      | Buf.Cmeta (Types.Indirect a) -> Array.copy a
      | Buf.Cmeta _ | Buf.Cdata _ -> [||]
    in
    Bcache.release st.State.cache b2;
    Array.iter
      (fun l1 ->
        if l1 <> 0 then begin
          ignore (drain_indirect l1);
          add_run (l1, fpb st);
          note_buf l1
        end)
      arr2;
    add_run (din.Types.ib2, fpb st);
    note_buf din.Types.ib2
  end;
  (!runs, !bufs)

let truncate_release st ip ~free_inode =
  let runs, buf_addrs = gather_runs st ip in
  let din = ip.State.din in
  Array.fill din.Types.db 0 (Array.length din.Types.db) 0;
  din.Types.ib <- 0;
  din.Types.ib2 <- 0;
  din.Types.size <- 0;
  if free_inode then begin
    din.Types.ftype <- Types.F_free;
    din.Types.nlink <- 0
  end;
  Inode.update st ip;
  let inum = ip.State.inum in
  if runs <> [] || free_inode then
    Inode.with_ibuf st inum (fun ibuf ->
        st.State.scheme.Intf.block_dealloc ~ibuf ~inum ~runs
          ~inode_freed:free_inode
          ~do_free:(fun () ->
            List.iter (fun r -> Alloc.free_run st r) runs;
            if free_inode then Alloc.free_inode st inum));
  (* drop the cached buffers of the freed extents *)
  List.iter
    (fun addr ->
      match Bcache.lookup st.State.cache addr with
      | Some b -> Bcache.invalidate st.State.cache b
      | None -> ())
    buf_addrs
