open Su_fstypes
open Su_cache

let with_cg st c f =
  let lbn = Geom.cg_header_frag st.State.geom c in
  let buf = Bcache.bread st.State.cache ~lbn ~nfrags:(State.block_frags st) in
  Fun.protect
    ~finally:(fun () -> Bcache.release st.State.cache buf)
    (fun () ->
      match buf.Buf.content with
      | Buf.Cmeta (Types.Cgroup cg) ->
        Bcache.prepare_modify st.State.cache buf;
        let r = f cg in
        Bcache.bdwrite st.State.cache buf;
        r
      | Buf.Cmeta _ | Buf.Cdata _ -> failwith "Alloc: bad cylinder-group block")

let with_lock st f =
  Su_sim.Sync.Mutex.with_lock st.State.alloc_mutex f

let used = '\001'
let free = '\000'

(* Search the group's data area for [count] contiguous free fragments
   starting at an offset where the run cannot cross a block boundary
   ([aligned] forces block alignment). Returns a group-relative
   offset. The search runs on the group's {!Freemap} bitset mirror —
   first fit in rotor order, the same offset the historical stepped
   byte scan returned (see {!Freemap.find_run}). *)
let find_run st c fm ~count ~aligned =
  let g = st.State.geom in
  let fpb = g.Geom.frags_per_block in
  let base = Geom.cg_base g c in
  let first, total = Geom.cg_data_area g c in
  Freemap.find_run fm ~base ~rel_first:(first - base) ~total ~fpb
    ~rotor:st.State.rotor.(c) ~count ~aligned

let claim cg fm off count =
  for i = 0 to count - 1 do
    Bytes.set cg.Types.frag_map (off + i) used
  done;
  Freemap.note_claim fm ~off ~count;
  cg.Types.nffree <- cg.Types.nffree - count

let alloc_in_group st c ~count ~aligned =
  let fm = st.State.freemaps.(c) in
  with_cg st c (fun cg ->
      if cg.Types.nffree < count then None
      else begin
        Freemap.ensure fm cg;
        match find_run st c fm ~count ~aligned with
        | None -> None
        | Some off ->
          claim cg fm off count;
          st.State.rotor.(c) <- off + count;
          Some (Geom.cg_base st.State.geom c + off)
      end)

let alloc_run st ~cg_hint ~count ~aligned =
  State.charge st st.State.costs.Costs.alloc_op;
  with_lock st (fun () ->
      let ncg = Geom.cg_count st.State.geom in
      let rec try_group i =
        if i >= ncg then failwith "Alloc: file system full"
        else
          let c = (cg_hint + i) mod ncg in
          match alloc_in_group st c ~count ~aligned with
          | Some addr -> addr
          | None -> try_group (i + 1)
      in
      try_group 0)

let alloc_block st ~cg_hint =
  alloc_run st ~cg_hint ~count:(State.block_frags st) ~aligned:true

let alloc_frags st ~cg_hint ~count =
  if count <= 0 || count > State.block_frags st then
    invalid_arg "Alloc.alloc_frags: bad count";
  alloc_run st ~cg_hint ~count ~aligned:(count = State.block_frags st)

let try_extend st ~start ~have ~want =
  if want <= have then invalid_arg "Alloc.try_extend: not an extension";
  let g = st.State.geom in
  let fpb = g.Geom.frags_per_block in
  if (start mod fpb) + want > fpb then false
  else begin
    State.charge st st.State.costs.Costs.alloc_op;
    with_lock st (fun () ->
        let c = Geom.cg_of_frag g start in
        let fm = st.State.freemaps.(c) in
        with_cg st c (fun cg ->
            Freemap.ensure fm cg;
            let base = Geom.cg_base g c in
            let off = start - base in
            let extra = want - have in
            let rec all_free i =
              i >= extra
              || (Bytes.get cg.Types.frag_map (off + have + i) = free
                  && all_free (i + 1))
            in
            if all_free 0 then begin
              for i = 0 to extra - 1 do
                Bytes.set cg.Types.frag_map (off + have + i) used
              done;
              Freemap.note_claim fm ~off:(off + have) ~count:extra;
              cg.Types.nffree <- cg.Types.nffree - extra;
              true
            end
            else false))
  end

let free_run st (start, len) =
  if len <= 0 then invalid_arg "Alloc.free_run: empty run";
  with_lock st (fun () ->
      let g = st.State.geom in
      let c = Geom.cg_of_frag g start in
      let fm = st.State.freemaps.(c) in
      with_cg st c (fun cg ->
          Freemap.ensure fm cg;
          let base = Geom.cg_base g c in
          for i = 0 to len - 1 do
            let off = start - base + i in
            if Bytes.get cg.Types.frag_map off = free then
              failwith "Alloc.free_run: double free"
            else Bytes.set cg.Types.frag_map off free
          done;
          Freemap.note_release fm ~off:(start - base) ~count:len;
          cg.Types.nffree <- cg.Types.nffree + len))

let alloc_inode st ~cg_hint ~spread =
  State.charge st st.State.costs.Costs.alloc_op;
  with_lock st (fun () ->
      let g = st.State.geom in
      let ncg = Geom.cg_count g in
      let start =
        if spread then begin
          st.State.next_cg <- (st.State.next_cg + 1) mod ncg;
          st.State.next_cg
        end
        else cg_hint
      in
      let rec try_group i =
        if i >= ncg then failwith "Alloc: out of inodes"
        else
          let c = (start + i) mod ncg in
          let fm = st.State.freemaps.(c) in
          match
            with_cg st c (fun cg ->
                if cg.Types.nifree = 0 then None
                else begin
                  Freemap.ensure fm cg;
                  (* lowest-free-first, as the byte scan allocated *)
                  match Freemap.min_free_inode fm with
                  | -1 -> None
                  | j ->
                    Bytes.set cg.Types.inode_map j used;
                    Freemap.note_inode_claim fm j;
                    cg.Types.nifree <- cg.Types.nifree - 1;
                    Some (Geom.first_inum_of_cg g c + j)
                end)
          with
          | Some inum -> inum
          | None -> try_group (i + 1)
      in
      try_group 0)

let free_inode st inum =
  (* a freed directory's lookup index must die with it: the inum may
     be recycled for an unrelated directory *)
  (match st.State.dirx with
   | Some dx -> Dir_index.forget dx inum
   | None -> ());
  with_lock st (fun () ->
      let g = st.State.geom in
      let c = Geom.cg_of_inode g inum in
      let fm = st.State.freemaps.(c) in
      with_cg st c (fun cg ->
          Freemap.ensure fm cg;
          let j = inum - Geom.first_inum_of_cg g c in
          if Bytes.get cg.Types.inode_map j = free then
            failwith "Alloc.free_inode: double free"
          else begin
            Bytes.set cg.Types.inode_map j free;
            Freemap.note_inode_release fm j;
            cg.Types.nifree <- cg.Types.nifree + 1
          end))

let free_frags_total st =
  let total = ref 0 in
  for c = 0 to Geom.cg_count st.State.geom - 1 do
    with_cg st c (fun cg -> total := !total + cg.Types.nffree)
  done;
  !total
