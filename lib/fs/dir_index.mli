(** In-core directory lookup index (the simulator's dirhash).

    Opt-in via [Fs.config.dir_index]; see {!Dir} for how lookups and
    inserts use it and what they charge. Maps entry names to
    (block, slot) per directory and tracks which blocks still have
    free slots. Purely in-core: the cached directory blocks stay
    authoritative, and all maintenance happens in {!Dir} under the
    directory inode's lock. *)

type t

val create : cap:int -> unit -> t
(** [cap] is the geometry's directory-block entry capacity. *)

val known : t -> int -> bool
(** Whether directory [inum] has been indexed. *)

val build : t -> int -> nblocks:int -> unit
(** Register directory [inum] with [nblocks] blocks, all slots free;
    the caller replays existing entries through {!note_insert}. *)

val forget : t -> int -> unit
(** Drop a directory (called when its inode is freed). *)

val lookup : t -> int -> string -> (int * int) option
(** [(blk, slot)] of the named entry, for an indexed directory. *)

val first_free_block : t -> int -> int option
(** Lowest block with a free slot, for an indexed directory. *)

val note_insert : t -> int -> blk:int -> slot:int -> string -> unit
val note_remove : t -> int -> blk:int -> string -> unit

val note_grow : t -> int -> unit
(** A fresh all-free block was appended to the directory. *)
