(* Online health state of a mounted volume.

   The fault-tolerance machinery (driver remapping, superblock
   replicas, the scrubber) absorbs media faults silently as long as it
   can; this module is where the residue lands. Every definitive
   device failure and every fragment whose content could not be
   recovered is noted here, and policy thresholds decide when the
   volume stops pretending: [Degraded] keeps operating (data may need
   repair reads), [Readonly] refuses mutation with a typed error
   rather than risking further corruption. *)

type level = Healthy | Degraded | Readonly

let level_name = function
  | Healthy -> "healthy"
  | Degraded -> "degraded"
  | Readonly -> "readonly"

type t = {
  engine : Su_sim.Engine.t;
  obs : Su_obs.Events.t option;
  max_lost : int;
  mutable level : level;
  mutable io_errors : int;  (* definitive device failures observed *)
  mutable lost : int;  (* fragments with unrecoverable content *)
  mutable sb_restored : int;  (* superblock replicas repaired *)
}

let create ~engine ?obs ?(max_lost = 8) () =
  { engine; obs; max_lost; level = Healthy; io_errors = 0; lost = 0;
    sb_restored = 0 }

let level t = t.level
let readonly t = t.level = Readonly
let io_errors t = t.io_errors
let lost t = t.lost
let sb_restored t = t.sb_restored

let rank = function Healthy -> 0 | Degraded -> 1 | Readonly -> 2

(* Health only worsens while mounted; repair happens offline (fsck)
   and a remount starts Healthy again. *)
let transition t target ~reason =
  if rank target > rank t.level then begin
    let from = t.level in
    t.level <- target;
    match t.obs with
    | None -> ()
    | Some sink ->
      Su_obs.Events.emit sink
        ~t_sim:(Su_sim.Engine.now t.engine)
        ~kind:"fault.health"
        [
          ("from", Su_obs.Json.Str (level_name from));
          ("to", Su_obs.Json.Str (level_name target));
          ("reason", Su_obs.Json.Str reason);
        ]
  end

let note_io_error t (e : Su_disk.Fault.error) =
  t.io_errors <- t.io_errors + 1;
  transition t Degraded
    ~reason:("io error: " ^ Su_disk.Fault.error_to_string e)

let note_lost t ~frag =
  t.lost <- t.lost + 1;
  transition t Degraded ~reason:(Printf.sprintf "lost fragment %d" frag);
  if t.lost > t.max_lost then
    transition t Readonly
      ~reason:
        (Printf.sprintf "%d fragments lost (threshold %d)" t.lost t.max_lost)

let note_sb_restored t =
  t.sb_restored <- t.sb_restored + 1;
  transition t Degraded ~reason:"superblock replica restored"

let note_spares_exhausted t =
  transition t Readonly ~reason:"spare-sector pool exhausted"

let force_readonly t ~reason = transition t Readonly ~reason
