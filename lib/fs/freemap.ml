(* In-core free-resource index for one cylinder group.

   The authoritative allocation state is the byte-per-fragment
   [frag_map] / byte-per-inode [inode_map] inside the group's cached
   {!Su_fstypes.Types.cg} block; those bytes are what crashes, fsck
   and journal replay see. This module mirrors them into two
   {!Su_util.Bitset}s (members = free indices) so the allocator's
   searches are O(levels) successor queries instead of O(group-size)
   byte scans. The mirror is built lazily from the map bytes on first
   use and updated alongside every byte mutation, all under
   [State.alloc_mutex], so it never disagrees with the bytes.

   [find_run] is an exact reimplementation of the historical stepped
   byte scan: it returns the same offset the byte scan would for every
   (map, rotor, count, aligned) input — first fit in rotor order with
   wraparound — so switching to it changes no allocation decision, no
   charge and no I/O, and the golden trace digests stay bit-identical.
   The equivalence is property-tested against a reference byte scan in
   [test_alloc]. *)

module Bitset = Su_util.Bitset

type t = {
  mutable built : bool;
  free : Bitset.t;  (* group-relative offsets of free fragments *)
  ifree : Bitset.t;  (* free inode slots within the group *)
}

let create () =
  { built = false; free = Bitset.create (); ifree = Bitset.create () }

let built t = t.built

let ensure t (cg : Su_fstypes.Types.cg) =
  if not t.built then begin
    Bytes.iteri
      (fun i b -> if b = '\000' then Bitset.set t.free i)
      cg.Su_fstypes.Types.frag_map;
    Bytes.iteri
      (fun i b -> if b = '\000' then Bitset.set t.ifree i)
      cg.Su_fstypes.Types.inode_map;
    t.built <- true
  end

let note_claim t ~off ~count =
  for i = off to off + count - 1 do
    Bitset.clear t.free i
  done

let note_release t ~off ~count =
  for i = off to off + count - 1 do
    Bitset.set t.free i
  done

let note_inode_claim t j = Bitset.clear t.ifree j
let note_inode_release t j = Bitset.set t.ifree j

let min_free_inode t = Bitset.min_elt t.ifree

(* Smallest offset [>= a0 (mod fpb)] that is [>= x]; [a0] is the
   group-relative offset of the first block-aligned fragment. *)
let align_up ~a0 ~fpb x =
  if x <= a0 then a0 else a0 + ((x - a0 + fpb - 1) / fpb * fpb)

let find_run t ~base ~rel_first ~total ~fpb ~rotor ~count ~aligned =
  let area_end = rel_first + total in
  let a0 = (fpb - (base mod fpb)) mod fpb in
  let norm off =
    let off = if off < rel_first then rel_first else off in
    rel_first + ((off - rel_first) mod total)
  in
  let start =
    let s = norm rotor in
    if aligned then
      let skew = (base + s) mod fpb in
      if skew = 0 then s else norm (s + (fpb - skew))
    else s
  in
  (* first allocated fragment in [a, b), or -1 when the run is free *)
  let first_used a b =
    let rec go i =
      if i >= b then -1 else if Bitset.mem t.free i then go (i + 1) else i
    in
    go a
  in
  (* First fitting offset in [p, hi): jump to the next free fragment,
     derive the only candidate start that could still succeed, probe
     its run, and on a conflict resume past the conflicting fragment —
     every offset skipped over is one the byte scan would also have
     rejected. *)
  let rec seg p hi =
    if p >= hi then None
    else
      let q = Bitset.next_geq t.free p in
      if q < 0 || q >= hi then None
      else if aligned then begin
        let o = align_up ~a0 ~fpb q in
        if o >= hi || o + count > area_end then None
        else
          match first_used o (o + count) with
          | -1 -> Some o
          | r -> seg (r + 1) hi
      end
      else begin
        let in_block_off = (base + q) mod fpb in
        if in_block_off + count > fpb then seg (align_up ~a0 ~fpb (q + 1)) hi
        else if q + count > area_end then None
        else
          match first_used q (q + count) with
          | -1 -> Some q
          | r -> seg (r + 1) hi
      end
  in
  match seg start area_end with
  | Some _ as r -> r
  | None -> if start > rel_first then seg rel_first start else None
