(** Bitset mirror of one cylinder group's allocation maps.

    Replaces the allocator's O(group-size) byte scans with
    {!Su_util.Bitset} successor queries while leaving the byte maps
    authoritative: the mirror is built lazily from the cached group
    block and updated alongside every byte mutation (both under the
    allocation mutex). {!find_run} returns exactly the offset the
    historical first-fit byte scan would, so enabling the index
    changes no allocation decision and keeps golden traces
    bit-identical; the equivalence is property-tested. *)

type t

val create : unit -> t
(** Empty, unbuilt mirror. *)

val built : t -> bool

val ensure : t -> Su_fstypes.Types.cg -> unit
(** Populate the mirror from the group's map bytes if not yet built.
    Call before any query or [note_*], with the group block resident
    and the allocation mutex held. *)

val note_claim : t -> off:int -> count:int -> unit
(** Fragments [off .. off+count-1] (group-relative) became used. *)

val note_release : t -> off:int -> count:int -> unit

val note_inode_claim : t -> int -> unit
val note_inode_release : t -> int -> unit

val min_free_inode : t -> int
(** Lowest free inode slot in the group, or [-1] — the same slot the
    historical lowest-first byte scan finds. *)

val find_run :
  t ->
  base:int ->
  rel_first:int ->
  total:int ->
  fpb:int ->
  rotor:int ->
  count:int ->
  aligned:bool ->
  int option
(** First-fit search for [count] contiguous free fragments in the
    group's data area ([rel_first .. rel_first+total-1],
    group-relative), starting from the rotor with wraparound.
    [aligned] forces the run to start on a block boundary; otherwise
    the run may not cross one. [base] is the group's first absolute
    fragment address (block alignment is absolute). Identical result
    to the stepped byte scan it replaces. *)
