open Su_fstypes
module Intf = Su_core.Scheme_intf

exception Enoent of string
exception Eexist of string
exception Enotdir of string
exception Eisdir of string
exception Enotempty of string

type file_stat = {
  st_inum : int;
  st_ftype : Types.ftype;
  st_nlink : int;
  st_size : int;
}

let components path =
  List.filter (fun c -> c <> "" && c <> ".") (String.split_on_char '/' path)

let charge_syscall st = State.charge st st.State.costs.Costs.syscall

let as_dir st path (ip : State.incore) =
  ignore st;
  if ip.State.din.Types.ftype <> Types.F_dir then raise (Enotdir path)

(* Walk to the inode named by [path]. Each directory is locked only
   while it is being searched (lookup coupling). *)
let resolve st path =
  let rec walk cur = function
    | [] -> cur
    | name :: rest ->
      let next =
        Inode.with_inode st cur (fun dip ->
            as_dir st path dip;
            Dir.lookup st dip name)
      in
      (match next with
       | Some inum -> walk inum rest
       | None -> raise (Enoent path))
  in
  walk Geom.root_inum (components path)

let resolve_parent st path =
  match List.rev (components path) with
  | [] -> invalid_arg "Fsops: empty path"
  | name :: _ when name = ".." ->
    (* mutating operations may not target ".." *)
    invalid_arg "Fsops: operation on dot-dot"
  | name :: rev_dirs ->
    let parent_path = List.rev rev_dirs in
    let rec walk cur = function
      | [] -> cur
      | n :: rest ->
        let next =
          Inode.with_inode st cur (fun dip ->
              as_dir st path dip;
              Dir.lookup st dip n)
        in
        (match next with
         | Some inum -> walk inum rest
         | None -> raise (Enoent path))
    in
    (walk Geom.root_inum parent_path, name)

(* Link-count decrement, possibly deferred by the scheme (it then
   runs in syncer context). Releases the file when the count drops to
   zero. *)
let dec_link st inum =
  Inode.with_inode st inum (fun ip ->
      let din = ip.State.din in
      if din.Types.ftype = Types.F_free then ()
      else begin
        din.Types.nlink <- din.Types.nlink - 1;
        if din.Types.nlink > 0 then Inode.update st ip
        else File.truncate_release st ip ~free_inode:true
      end)

let attach_inode_reuse_deps st inum =
  match st.State.scheme.Intf.reuse_inode_deps inum with
  | [] -> ()
  | deps ->
    Inode.with_ibuf st inum (fun ibuf -> File.add_wdeps ibuf deps)

let create st path =
  charge_syscall st;
  let parent, name = resolve_parent st path in
  Inode.with_inode st parent (fun dip ->
      as_dir st path dip;
      if Dir.lookup st dip name <> None then raise (Eexist path);
      let cg = Geom.cg_of_inode st.State.geom parent in
      let ip = Inode.allocate st ~ftype:Types.F_reg ~cg_hint:cg ~spread:false in
      Fun.protect
        ~finally:(fun () -> Inode.iput st ip)
        (fun () ->
          attach_inode_reuse_deps st ip.State.inum;
          ip.State.din.Types.nlink <- 1;
          Inode.update st ip;
          Dir.add_entry st dip name ip.State.inum))

let mkdir st path =
  charge_syscall st;
  let parent, name = resolve_parent st path in
  Inode.with_inode st parent (fun dip ->
      as_dir st path dip;
      if Dir.lookup st dip name <> None then raise (Eexist path);
      let ip =
        Inode.allocate st ~ftype:Types.F_dir
          ~cg_hint:(Geom.cg_of_inode st.State.geom parent)
          ~spread:true
      in
      Fun.protect
        ~finally:(fun () -> Inode.iput st ip)
        (fun () ->
          attach_inode_reuse_deps st ip.State.inum;
          ip.State.din.Types.nlink <- 2 (* "." and the parent entry *);
          Inode.update st ip;
          dip.State.din.Types.nlink <- dip.State.din.Types.nlink + 1 (* ".." *);
          Inode.update st dip;
          (* first directory block, seeded with "." and ".." before the
             ordering scheme sees its initialising write. "." gets no
             link_add hook — the block is initialisation-ordered before
             the inode pointer, and the parent entry below (which does
             carry the dependency) keeps the directory unreachable
             until the new inode is durable. ".." keeps the hook: it
             orders the parent's inode, with its incremented link
             count, ahead of the ".." entry (BSD's MKDIR_PARENT). *)
          let buf, commit = File.grow_dir_block st ip in
          Fun.protect
            ~finally:(fun () -> Su_cache.Bcache.release st.State.cache buf)
            (fun () ->
              Dir.insert_prepared ~link_dep:false st ~dir:buf ~slot:0 "."
                ip.State.inum;
              Dir.insert_prepared st ~dir:buf ~slot:1 ".." parent;
              commit ());
          Dir.add_entry st dip name ip.State.inum))

let append st path ~bytes =
  charge_syscall st;
  let inum = resolve st path in
  Inode.with_inode st inum (fun ip ->
      if ip.State.din.Types.ftype = Types.F_dir then raise (Eisdir path);
      File.append st ip ~bytes)

let write_file st path ~bytes =
  charge_syscall st;
  let inum = resolve st path in
  Inode.with_inode st inum (fun ip ->
      if ip.State.din.Types.ftype = Types.F_dir then raise (Eisdir path);
      if ip.State.din.Types.size > 0 then
        File.truncate_release st ip ~free_inode:false;
      File.append st ip ~bytes)

let read_file st path =
  charge_syscall st;
  let inum = resolve st path in
  Inode.with_inode st inum (fun ip -> File.read_all st ip)

let unlink st path =
  charge_syscall st;
  let parent, name = resolve_parent st path in
  let found =
    Inode.with_inode st parent (fun dip ->
        as_dir st path dip;
        (match Dir.lookup st dip name with
         | Some inum ->
           Inode.with_inode st inum (fun ip ->
               if ip.State.din.Types.ftype = Types.F_dir then raise (Eisdir path))
         | None -> raise (Enoent path));
        Dir.remove_entry st dip name ~decrement:(fun inum -> dec_link st inum))
  in
  if not found then raise (Enoent path)

let rmdir st path =
  charge_syscall st;
  let parent, name = resolve_parent st path in
  Inode.with_inode st parent (fun dip ->
      as_dir st path dip;
      let inum =
        match Dir.lookup st dip name with
        | Some i -> i
        | None -> raise (Enoent path)
      in
      Inode.with_inode st inum (fun ip ->
          as_dir st path ip;
          if not (Dir.is_empty st ip) then raise (Enotempty path));
      (* the parent's entry goes first: once the name is off disk the
         directory is unreachable, and only then may its own block
         shed "." and ".." (a crash between a dots-removal write and
         the parent write would otherwise expose a reachable
         directory without its dots) *)
      ignore
        (Dir.remove_entry st dip name ~decrement:(fun i -> dec_link st i));
      Inode.with_inode st inum (fun ip ->
          (* ".." decrements the parent, "." the directory itself;
             "." last so the final decrement releases the inode *)
          ignore
            (Dir.remove_entry st ip ".." ~decrement:(fun _ -> dec_link st parent));
          ignore
            (Dir.remove_entry st ip "." ~decrement:(fun i -> dec_link st i))))

let link st ~src ~dst =
  charge_syscall st;
  let src_inum = resolve st src in
  let parent, name = resolve_parent st dst in
  Inode.with_inode st parent (fun dip ->
      as_dir st dst dip;
      if Dir.lookup st dip name <> None then raise (Eexist dst);
      Inode.with_inode st src_inum (fun ip ->
          if ip.State.din.Types.ftype = Types.F_dir then raise (Eisdir src);
          ip.State.din.Types.nlink <- ip.State.din.Types.nlink + 1;
          Inode.update st ip);
      Dir.add_entry st dip name src_inum)

let rename st ~src ~dst =
  charge_syscall st;
  (* rule 1: create the new name before destroying the old one *)
  let dst_inum = try Some (resolve st dst) with Enoent _ -> None in
  (match dst_inum with Some _ -> unlink st dst | None -> ());
  link st ~src ~dst;
  unlink st src

let stat st path =
  charge_syscall st;
  let inum = resolve st path in
  Inode.with_inode st inum (fun ip ->
      {
        st_inum = inum;
        st_ftype = ip.State.din.Types.ftype;
        st_nlink = ip.State.din.Types.nlink;
        st_size = ip.State.din.Types.size;
      })

let exists st path =
  match resolve st path with
  | (_ : int) -> true
  | exception (Enoent _ | Enotdir _) -> false

let readdir st path =
  charge_syscall st;
  let inum = resolve st path in
  Inode.with_inode st inum (fun ip ->
      as_dir st path ip;
      Dir.list_names st ip)

let fsync st path =
  charge_syscall st;
  let inum = resolve st path in
  Inode.with_inode st inum (fun ip ->
      ignore ip;
      Inode.with_ibuf st inum (fun ibuf ->
          st.State.scheme.Intf.fsync ~inum ~ibuf))

let sync st = Su_cache.Bcache.sync_all st.State.cache
