open Su_fstypes
module Intf = Su_core.Scheme_intf

exception Enoent of string
exception Eexist of string
exception Enotdir of string
exception Eisdir of string
exception Enotempty of string
exception Einval of string

type file_stat = {
  st_inum : int;
  st_ftype : Types.ftype;
  st_nlink : int;
  st_size : int;
}

let components path =
  List.filter (fun c -> c <> "" && c <> ".") (String.split_on_char '/' path)

let charge_syscall st = State.charge st st.State.costs.Costs.syscall

(* One trace event per operation invocation, at entry (composite ops
   like rename also trace the ops they are built from). Accumulation
   only — no simulated time is consumed. *)
let emit_op st op path =
  match st.State.obs with
  | None -> ()
  | Some sink ->
    Su_obs.Events.emit sink
      ~t_sim:(Su_sim.Engine.now st.State.engine)
      ~kind:("fs." ^ op)
      [ ("path", Su_obs.Json.Str path) ]

let as_dir st path (ip : State.incore) =
  ignore st;
  if ip.State.din.Types.ftype <> Types.F_dir then raise (Enotdir path)

(* Walk to the inode named by [path]. Each directory is locked only
   while it is being searched (lookup coupling). *)
let resolve st path =
  let rec walk cur = function
    | [] -> cur
    | name :: rest ->
      let next =
        Inode.with_inode st cur (fun dip ->
            as_dir st path dip;
            Dir.lookup st dip name)
      in
      (match next with
       | Some inum -> walk inum rest
       | None -> raise (Enoent path))
  in
  walk Geom.root_inum (components path)

let resolve_parent st path =
  match List.rev (components path) with
  | [] -> invalid_arg "Fsops: empty path"
  | name :: _ when name = ".." ->
    (* mutating operations may not target ".." *)
    invalid_arg "Fsops: operation on dot-dot"
  | name :: rev_dirs ->
    let parent_path = List.rev rev_dirs in
    let rec walk cur = function
      | [] -> cur
      | n :: rest ->
        let next =
          Inode.with_inode st cur (fun dip ->
              as_dir st path dip;
              Dir.lookup st dip n)
        in
        (match next with
         | Some inum -> walk inum rest
         | None -> raise (Enoent path))
    in
    (walk Geom.root_inum parent_path, name)

(* Link-count decrement, possibly deferred by the scheme (it then
   runs in syncer context). Releases the file when the count drops to
   zero. *)
let dec_link st inum =
  Inode.with_inode st inum (fun ip ->
      let din = ip.State.din in
      if din.Types.ftype = Types.F_free then ()
      else begin
        din.Types.nlink <- din.Types.nlink - 1;
        if din.Types.nlink > 0 then Inode.update st ip
        else File.truncate_release st ip ~free_inode:true
      end)

let attach_inode_reuse_deps st inum =
  match st.State.scheme.Intf.reuse_inode_deps inum with
  | [] -> ()
  | deps ->
    Inode.with_ibuf st inum (fun ibuf -> File.add_wdeps ibuf deps)

let create st path =
  charge_syscall st;
  emit_op st "create" path;
  let parent, name = resolve_parent st path in
  Inode.with_inode st parent (fun dip ->
      as_dir st path dip;
      if Dir.lookup st dip name <> None then raise (Eexist path);
      let cg = Geom.cg_of_inode st.State.geom parent in
      let ip = Inode.allocate st ~ftype:Types.F_reg ~cg_hint:cg ~spread:false in
      Fun.protect
        ~finally:(fun () -> Inode.iput st ip)
        (fun () ->
          attach_inode_reuse_deps st ip.State.inum;
          ip.State.din.Types.nlink <- 1;
          Inode.update st ip;
          Dir.add_entry st dip name ip.State.inum))

let mkdir st path =
  charge_syscall st;
  emit_op st "mkdir" path;
  let parent, name = resolve_parent st path in
  Inode.with_inode st parent (fun dip ->
      as_dir st path dip;
      if Dir.lookup st dip name <> None then raise (Eexist path);
      let ip =
        Inode.allocate st ~ftype:Types.F_dir
          ~cg_hint:(Geom.cg_of_inode st.State.geom parent)
          ~spread:true
      in
      Fun.protect
        ~finally:(fun () -> Inode.iput st ip)
        (fun () ->
          attach_inode_reuse_deps st ip.State.inum;
          ip.State.din.Types.nlink <- 2 (* "." and the parent entry *);
          Inode.update st ip;
          dip.State.din.Types.nlink <- dip.State.din.Types.nlink + 1 (* ".." *);
          Inode.update st dip;
          (* first directory block, seeded with "." and ".." before the
             ordering scheme sees its initialising write. "." gets no
             link_add hook — the block is initialisation-ordered before
             the inode pointer, and the parent entry below (which does
             carry the dependency) keeps the directory unreachable
             until the new inode is durable. ".." keeps the hook: it
             orders the parent's inode, with its incremented link
             count, ahead of the ".." entry (BSD's MKDIR_PARENT). *)
          let buf, commit = File.grow_dir_block st ip in
          Fun.protect
            ~finally:(fun () -> Su_cache.Bcache.release st.State.cache buf)
            (fun () ->
              Dir.insert_prepared ~link_dep:false st ~dir:buf ~slot:0 "."
                ip.State.inum;
              Dir.insert_prepared st ~dir:buf ~slot:1 ".." parent;
              (* entries making the new directory reachable must wait
                 for this block, dots in full form (MKDIR_BODY) *)
              st.State.scheme.Intf.mkdir_body ~body:buf ~inum:ip.State.inum;
              commit ());
          Dir.add_entry st dip name ip.State.inum))

let append st path ~bytes =
  charge_syscall st;
  emit_op st "append" path;
  let inum = resolve st path in
  Inode.with_inode st inum (fun ip ->
      if ip.State.din.Types.ftype = Types.F_dir then raise (Eisdir path);
      File.append st ip ~bytes)

let write_file st path ~bytes =
  charge_syscall st;
  emit_op st "write" path;
  let inum = resolve st path in
  Inode.with_inode st inum (fun ip ->
      if ip.State.din.Types.ftype = Types.F_dir then raise (Eisdir path);
      if ip.State.din.Types.size > 0 then
        File.truncate_release st ip ~free_inode:false;
      File.append st ip ~bytes)

let read_file st path =
  charge_syscall st;
  emit_op st "read" path;
  let inum = resolve st path in
  Inode.with_inode st inum (fun ip -> File.read_all st ip)

let unlink st path =
  charge_syscall st;
  emit_op st "unlink" path;
  let parent, name = resolve_parent st path in
  let found =
    Inode.with_inode st parent (fun dip ->
        as_dir st path dip;
        (match Dir.lookup st dip name with
         | Some inum ->
           Inode.with_inode st inum (fun ip ->
               if ip.State.din.Types.ftype = Types.F_dir then raise (Eisdir path))
         | None -> raise (Enoent path));
        Dir.remove_entry st dip name ~decrement:(fun inum -> dec_link st inum))
  in
  if not found then raise (Enoent path)

let rmdir st path =
  charge_syscall st;
  emit_op st "rmdir" path;
  let parent, name = resolve_parent st path in
  Inode.with_inode st parent (fun dip ->
      as_dir st path dip;
      let inum =
        match Dir.lookup st dip name with
        | Some i -> i
        | None -> raise (Enoent path)
      in
      Inode.with_inode st inum (fun ip ->
          as_dir st path ip;
          if not (Dir.is_empty st ip) then raise (Enotempty path));
      (* the parent's entry removal is the single ordering point (BSD's
         RMDIR dirrem): its deferred decrement carries all three drops —
         the parent's lost "..", the entry itself and the child's "." —
         so nothing is freed before the name is off the disk. The
         child's own block is never rewritten: removing its dots
         in place could reach the disk before the parent's write and
         expose a reachable directory without "." or ".."; the dots
         simply remain in the freed block, where nothing references
         them, and reuse rewrites the block under the allocation
         ordering *)
      ignore
        (Dir.remove_entry st dip name ~decrement:(fun i ->
             dec_link st parent;
             dec_link st i;
             (* the child's "." last: this drop releases the inode *)
             dec_link st i)))

let link st ~src ~dst =
  charge_syscall st;
  emit_op st "link" dst;
  let src_inum = resolve st src in
  let parent, name = resolve_parent st dst in
  Inode.with_inode st parent (fun dip ->
      as_dir st dst dip;
      if Dir.lookup st dip name <> None then raise (Eexist dst);
      Inode.with_inode st src_inum (fun ip ->
          if ip.State.din.Types.ftype = Types.F_dir then raise (Eisdir src);
          ip.State.din.Types.nlink <- ip.State.din.Types.nlink + 1;
          Inode.update st ip);
      Dir.add_entry st dip name src_inum)

(* Is [anc] equal to [inum] or an ancestor of it? Walks the ".."
   chain; a rename may not move a directory under itself. *)
let is_self_or_ancestor st anc inum =
  let rec walk i =
    if i = anc then true
    else if i = Geom.root_inum then false
    else
      match Inode.with_inode st i (fun dip -> Dir.lookup st dip "..") with
      | Some p when p <> i -> walk p
      | Some _ | None -> false
  in
  walk inum

(* Directory rename. The choreography keeps every write boundary
   consistent (no link count ever below its reference count, ".."
   never absent):
   1. raise the child's count — it is about to be named twice;
   2. cross-directory only: raise the new parent's count (it gains the
      child's ".."), then add the new name (ordered behind the child's
      raised inode) and re-point ".." in place (ordered behind the new
      parent's raised inode; the old parent's drop waits for the
      rewritten entry);
   3. remove the old name, deferring the child's compensating drop. *)
let rename_dir st ~src ~dst ~inum =
  let src_parent, src_name = resolve_parent st src in
  let dst_parent, dst_name = resolve_parent st dst in
  if is_self_or_ancestor st inum dst_parent then raise (Einval dst);
  if src_parent = dst_parent then
    Inode.with_inode st src_parent (fun dip ->
        as_dir st dst dip;
        if Dir.lookup st dip dst_name <> None then raise (Eexist dst);
        Inode.with_inode st inum (fun ip ->
            ip.State.din.Types.nlink <- ip.State.din.Types.nlink + 1;
            Inode.update st ip);
        Dir.add_entry st dip dst_name inum;
        ignore
          (Dir.remove_entry st dip src_name ~decrement:(fun i -> dec_link st i)))
  else begin
    Inode.with_inode st inum (fun ip ->
        ip.State.din.Types.nlink <- ip.State.din.Types.nlink + 1;
        Inode.update st ip);
    Inode.with_inode st dst_parent (fun dip ->
        as_dir st dst dip;
        if Dir.lookup st dip dst_name <> None then raise (Eexist dst);
        dip.State.din.Types.nlink <- dip.State.din.Types.nlink + 1;
        Inode.update st dip;
        Dir.add_entry st dip dst_name inum);
    Inode.with_inode st inum (fun ip ->
        ignore
          (Dir.change_entry st ip ".." dst_parent
             ~decrement:(fun old_parent -> dec_link st old_parent)));
    Inode.with_inode st src_parent (fun dip ->
        ignore
          (Dir.remove_entry st dip src_name ~decrement:(fun i -> dec_link st i)))
  end

let rename st ~src ~dst =
  charge_syscall st;
  emit_op st "rename" dst;
  let src_inum = resolve st src in
  let src_is_dir =
    Inode.with_inode st src_inum (fun ip ->
        ip.State.din.Types.ftype = Types.F_dir)
  in
  if not src_is_dir then begin
    (* rule 1: create the new name before destroying the old one *)
    let dst_inum = try Some (resolve st dst) with Enoent _ -> None in
    match dst_inum with
    | Some d when d = src_inum ->
      (* both names are links to the same file: POSIX says do
         nothing (unlinking [dst] first would eat the file when the
         paths coincide) *)
      ()
    | Some _ ->
      unlink st dst;
      link st ~src ~dst;
      unlink st src
    | None ->
      link st ~src ~dst;
      unlink st src
  end
  else begin
    (* an existing destination must be an empty directory; it makes
       way first (not atomically — the window where neither name
       resolves is crash-equivalent to rmdir; rename) *)
    match resolve st dst with
    | dst_inum when dst_inum = src_inum -> ()
    | (_ : int) ->
      let empty =
        Inode.with_inode st (resolve st dst) (fun ip ->
            as_dir st dst ip;
            Dir.is_empty st ip)
      in
      if not empty then raise (Enotempty dst);
      rmdir st dst;
      rename_dir st ~src ~dst ~inum:src_inum
    | exception Enoent _ -> rename_dir st ~src ~dst ~inum:src_inum
  end

let stat st path =
  charge_syscall st;
  let inum = resolve st path in
  Inode.with_inode st inum (fun ip ->
      {
        st_inum = inum;
        st_ftype = ip.State.din.Types.ftype;
        st_nlink = ip.State.din.Types.nlink;
        st_size = ip.State.din.Types.size;
      })

let exists st path =
  match resolve st path with
  | (_ : int) -> true
  | exception (Enoent _ | Enotdir _) -> false

let readdir st path =
  charge_syscall st;
  let inum = resolve st path in
  Inode.with_inode st inum (fun ip ->
      as_dir st path ip;
      Dir.list_names st ip)

let fsync st path =
  charge_syscall st;
  emit_op st "fsync" path;
  let inum = resolve st path in
  Inode.with_inode st inum (fun ip ->
      ignore ip;
      Inode.with_ibuf st inum (fun ibuf ->
          st.State.scheme.Intf.fsync ~inum ~ibuf))

let sync st =
  emit_op st "sync" "/";
  Su_cache.Bcache.sync_all st.State.cache

(* Typed fault-tolerance boundary. The wrappers below shadow the raw
   operations: a definitive device failure that escapes the cache
   surfaces as [Eio] (never a bare [Bcache.Io_error]), and once the
   health monitor has flipped the volume read-only every mutating
   operation refuses up front with [Erofs] instead of risking further
   damage. Composite operations (rename) call the raw versions
   internally, so the guard runs once per syscall. *)

exception Eio of string
exception Erofs of string

let () =
  Printexc.register_printer (function
    | Eio msg -> Some ("Fsops.Eio: " ^ msg)
    | Erofs msg -> Some ("Fsops.Erofs: read-only file system: " ^ msg)
    | _ -> None)

let io_guard path f =
  try f ()
  with Su_cache.Bcache.Io_error e ->
    raise (Eio (path ^ ": " ^ Su_disk.Fault.error_to_string e))

let rw_guard st path f =
  if Health.readonly st.State.health then raise (Erofs path);
  io_guard path f

let create st path = rw_guard st path (fun () -> create st path)
let mkdir st path = rw_guard st path (fun () -> mkdir st path)
let append st path ~bytes = rw_guard st path (fun () -> append st path ~bytes)

let write_file st path ~bytes =
  rw_guard st path (fun () -> write_file st path ~bytes)

let unlink st path = rw_guard st path (fun () -> unlink st path)
let rmdir st path = rw_guard st path (fun () -> rmdir st path)
let link st ~src ~dst = rw_guard st dst (fun () -> link st ~src ~dst)
let rename st ~src ~dst = rw_guard st dst (fun () -> rename st ~src ~dst)
let read_file st path = io_guard path (fun () -> read_file st path)
let stat st path = io_guard path (fun () -> stat st path)
let exists st path = io_guard path (fun () -> exists st path)
let readdir st path = io_guard path (fun () -> readdir st path)
let resolve st path = io_guard path (fun () -> resolve st path)

(* flushing what is already dirty is allowed even read-only: it cannot
   make matters worse and lets the volume quiesce *)
let fsync st path = io_guard path (fun () -> fsync st path)
let sync st = io_guard "/" (fun () -> sync st)
