(** Crash injection: stop the world at an arbitrary virtual time (the
    in-flight disk request, if any, is lost — the sector-atomicity
    failure model of the paper) and check the surviving image.

    The torn-write refinement: a crash may also leave a {e prefix} of
    the in-flight multi-fragment write on the media
    ({!torn_variants}), which is strictly weaker than the paper's
    assumption that an interrupted write applies nothing. *)

val crash_at : Fs.world -> float -> Su_fstypes.Types.cell array
(** Run the engine until the given virtual time, stop it, and return a
    snapshot of the on-disk image. *)

val crash_points : Su_driver.Trace.t -> float list
(** Every distinct write-completion time in the trace, ascending: the
    complete set of instants at which the durable image changes, i.e.
    the interesting crash boundaries. The trace must have been created
    with [keep_records]. *)

val torn_variants :
  Fs.world -> Su_fstypes.Types.cell array -> Su_fstypes.Types.cell array list
(** Given a crashed world (after {!crash_at}) and its image snapshot,
    the additional images a torn in-flight write could leave: one per
    proper non-empty prefix of the write being serviced at crash time
    (empty if the device was idle or the write was single-fragment). *)

val fsck_image : Fs.world -> Su_fstypes.Types.cell array -> Fsck.report
(** Check an image against the mounted configuration's promises
    (stale-data exposure is only checked when allocation
    initialisation was enforced). *)

val crash_and_check : Fs.world -> float -> Fsck.report
(** [crash_at] followed by [fsck_image]. *)
