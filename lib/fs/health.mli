(** Online health state of a mounted volume.

    Accumulates what the fault-tolerance machinery could not absorb —
    definitive device failures, unrecoverable fragments, repaired
    superblock replicas — and applies policy thresholds:
    [Degraded] keeps operating, [Readonly] makes {!Fsops} refuse
    mutation with a typed error. Health only worsens while mounted;
    a remount (after offline repair) starts [Healthy] again. Every
    transition emits a [fault.health] JSONL event when a sink is
    attached. *)

type level = Healthy | Degraded | Readonly

val level_name : level -> string

type t

val create :
  engine:Su_sim.Engine.t -> ?obs:Su_obs.Events.t -> ?max_lost:int -> unit -> t
(** [max_lost] (default 8): unrecoverable fragments tolerated before
    the volume flips read-only. *)

val level : t -> level
val readonly : t -> bool

val note_io_error : t -> Su_disk.Fault.error -> unit
(** A device operation failed definitively (retries and remapping
    exhausted). Healthy → Degraded. *)

val note_lost : t -> frag:int -> unit
(** A fragment's content is unrecoverable (no replica, no clean
    cached copy). Degrades; past [max_lost], flips read-only. *)

val note_sb_restored : t -> unit
(** A superblock replica was repaired from a sister copy. *)

val note_spares_exhausted : t -> unit
(** The remap pool ran dry: flips read-only. *)

val force_readonly : t -> reason:string -> unit

val io_errors : t -> int
val lost : t -> int
val sb_restored : t -> int
