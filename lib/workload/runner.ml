open Su_sim
open Su_fs

type measures = {
  users : int;
  elapsed_avg : float;
  elapsed_max : float;
  cpu_total : float;
  disk_requests : int;
  disk_reads : int;
  disk_writes : int;
  avg_response_ms : float;
  avg_access_ms : float;
  sync_response_ms : float;
  response_p50_ms : float;
  response_p90_ms : float;
  response_p99_ms : float;
  response_max_ms : float;
  counters : (string * float) list;
  softdep : Su_core.Softdep.stats option;
}

(* Cross-layer counters, one flat name space so table/JSON emitters
   and [repeat] averaging need no per-layer knowledge. *)
let counters_of (w : Fs.world) =
  let tr = Su_driver.Driver.trace w.Fs.driver in
  let qd = Su_driver.Trace.qdepth_hist tr in
  let cache = w.Fs.cache in
  let disk = w.Fs.disk in
  let syn = w.Fs.syncer in
  let f = float_of_int in
  let base =
    [
      ("cache.hits", f (Su_cache.Bcache.hits cache));
      ("cache.misses", f (Su_cache.Bcache.misses cache));
      ("cache.evictions", f (Su_cache.Bcache.evictions cache));
      ("cache.dirty_final", f (Su_cache.Bcache.dirty_count cache));
      ("syncer.passes", f (Su_cache.Syncer.passes_run syn));
      ("syncer.writes", f (Su_cache.Syncer.writes_issued syn));
      ("syncer.workitems", f (Su_cache.Syncer.workitems_run syn));
      ("syncer.batch_mean", Su_obs.Hist.mean (Su_cache.Syncer.batch_hist syn));
      ("syncer.batch_max",
       Su_obs.Hist.max_value (Su_cache.Syncer.batch_hist syn));
      ("syncer.dirty_mean",
       Su_obs.Hist.mean (Su_cache.Syncer.residency_hist syn));
      ("syncer.dirty_max",
       Su_obs.Hist.max_value (Su_cache.Syncer.residency_hist syn));
      ("io.retries", f (Su_driver.Trace.io_retries tr));
      ("io.failures", f (Su_driver.Trace.io_failures tr));
      ("io.qdepth_mean", Su_obs.Hist.mean qd);
      ("io.qdepth_p90", Su_obs.Hist.percentile qd 90.0);
      ("io.qdepth_max", Su_obs.Hist.max_value qd);
      ("disk.serviced", f (Su_disk.Disk.requests_serviced disk));
      ("disk.destages", f (Su_disk.Disk.destages disk));
      ("disk.busy_s", Su_disk.Disk.total_service_time disk);
      ("disk.seek_s", Su_disk.Disk.seek_time_total disk);
      ("disk.rot_wait_s", Su_disk.Disk.rot_wait_time_total disk);
      ("disk.transfer_s", Su_disk.Disk.transfer_time_total disk);
      ("disk.overhead_s", Su_disk.Disk.overhead_time_total disk);
    ]
  in
  let softdep =
    match w.Fs.st.State.softdep_stats with
    | None -> []
    | Some s ->
      [
        ("softdep.created", f s.Su_core.Softdep.created);
        ("softdep.rollbacks", f s.Su_core.Softdep.rollbacks);
        ("softdep.cancelled_adds", f s.Su_core.Softdep.cancelled_adds);
        ("softdep.workitems", f s.Su_core.Softdep.workitems);
        ("softdep.peak_live_deps", f s.Su_core.Softdep.peak_live_deps);
        ("softdep.dep_lifetime_mean_s",
         Su_obs.Hist.mean s.Su_core.Softdep.dep_lifetimes);
        ("softdep.dep_lifetime_p90_s",
         Su_obs.Hist.percentile s.Su_core.Softdep.dep_lifetimes 90.0);
        ("softdep.dep_lifetime_max_s",
         Su_obs.Hist.max_value s.Su_core.Softdep.dep_lifetimes);
      ]
  in
  let journal =
    match w.Fs.st.State.journal_stats with
    | None -> []
    | Some s ->
      [
        ("journal.txns", f s.Su_core.Journaled.txns);
        ("journal.records", f s.Su_core.Journaled.records);
        ("journal.log_writes", f s.Su_core.Journaled.log_writes);
        ("journal.wraps", f s.Su_core.Journaled.wraps);
      ]
  in
  (* fault-tolerance residue: always present (zero on a perfect
     device) so dashboards can assert on the names unconditionally *)
  let health = w.Fs.st.State.health in
  let fault =
    [
      ("fault.injected", f (Su_disk.Disk.faults_injected disk));
      ("fault.silent", f (Su_disk.Disk.silent_faults disk));
      ("fault.remaps", f (Su_disk.Disk.remaps disk));
      ("fault.spares_total", f (Su_disk.Disk.spares_total disk));
      ("fault.spares_left", f (Su_disk.Disk.spares_left disk));
      ("fault.io_remaps", f (Su_driver.Trace.io_remaps tr));
      ("fault.health_io_errors", f (Su_fs.Health.io_errors health));
      ("fault.health_lost", f (Su_fs.Health.lost health));
      ("fault.health_sb_restored", f (Su_fs.Health.sb_restored health));
      ( "fault.health_level",
        f
          (match Su_fs.Health.level health with
           | Su_fs.Health.Healthy -> 0
           | Su_fs.Health.Degraded -> 1
           | Su_fs.Health.Readonly -> 2) );
    ]
  in
  let scrub =
    match w.Fs.scrub with
    | None -> []
    | Some s ->
      [
        ("scrub.passes", f (Su_fs.Scrub.passes_run s));
        ("scrub.scanned", f (Su_fs.Scrub.scanned s));
        ("scrub.found", f (Su_fs.Scrub.found s));
        ("scrub.repaired", f (Su_fs.Scrub.repaired s));
        ("scrub.deferred", f (Su_fs.Scrub.deferred s));
        ("scrub.lost", f (Su_fs.Scrub.lost s));
      ]
  in
  let integrity =
    match w.Fs.integrity with
    | None -> []
    | Some i ->
      [
        ("integrity.fills", f (Su_fs.Integrity.fills_verified i));
        ("integrity.mismatches", f (Su_fs.Integrity.mismatches i));
        ("integrity.repaired", f (Su_fs.Integrity.repaired i));
        ("integrity.repaired_reread", f (Su_fs.Integrity.repaired_reread i));
        ("integrity.repaired_replica", f (Su_fs.Integrity.repaired_replica i));
        ("integrity.repaired_cache", f (Su_fs.Integrity.repaired_cache i));
        ("integrity.lost", f (Su_fs.Integrity.unrepairable i));
      ]
  in
  base @ softdep @ journal @ fault @ scrub @ integrity

let drop_caches (w : Fs.world) =
  List.iter
    (fun (b : Su_cache.Buf.t) ->
      if b.Su_cache.Buf.refcount = 0 && not b.Su_cache.Buf.dirty then
        Su_cache.Bcache.invalidate w.Fs.cache b)
    (Su_cache.Bcache.all_bufs w.Fs.cache);
  Hashtbl.reset w.Fs.st.State.icache

let run ~cfg ?setup ?cold_start ~users body =
  let cold_start =
    match cold_start with Some c -> c | None -> setup <> None
  in
  let setup = match setup with Some f -> f | None -> fun _ -> () in
  let w = Fs.make cfg in
  let result = ref None in
  let controller () =
    setup w.Fs.st;
    Fsops.sync w.Fs.st;
    if cold_start then drop_caches w;
    Su_driver.Driver.reset_trace w.Fs.driver;
    let t0 = Engine.now w.Fs.engine in
    let elapsed = Array.make users 0.0 in
    let handles =
      List.init users (fun i ->
          Proc.spawn w.Fs.engine
            ~name:(Printf.sprintf "user%d" i)
            (fun () ->
              body i w.Fs.st;
              elapsed.(i) <- Engine.now w.Fs.engine -. t0))
    in
    Proc.join_all w.Fs.engine handles;
    let cpu_total =
      List.fold_left (fun acc h -> acc +. Proc.cpu_time h) 0.0 handles
    in
    (* elapsed/CPU are the users'; disk statistics are system-wide and
       include the queued writes that drain after the benchmark
       completes (the paper's multi-second driver response times in
       table 2 are only visible this way) *)
    Fs.stop w;
    Su_driver.Driver.quiesce w.Fs.driver;
    let tr = Su_driver.Driver.trace w.Fs.driver in
    let n = float_of_int users in
    result :=
      Some
        {
          users;
          elapsed_avg = Array.fold_left ( +. ) 0.0 elapsed /. n;
          elapsed_max = Array.fold_left Float.max 0.0 elapsed;
          cpu_total;
          disk_requests = Su_driver.Trace.requests tr;
          disk_reads = Su_driver.Trace.reads tr;
          disk_writes = Su_driver.Trace.writes tr;
          avg_response_ms = Su_driver.Trace.avg_response_ms tr;
          avg_access_ms = Su_driver.Trace.avg_access_ms tr;
          sync_response_ms = Su_driver.Trace.sync_avg_response_ms tr;
          response_p50_ms = Su_driver.Trace.response_percentile_ms tr 50.0;
          response_p90_ms = Su_driver.Trace.response_percentile_ms tr 90.0;
          response_p99_ms = Su_driver.Trace.response_percentile_ms tr 99.0;
          response_max_ms = Su_driver.Trace.response_max_ms tr;
          counters = counters_of w;
          softdep = w.Fs.st.State.softdep_stats;
        };
    Engine.stop w.Fs.engine
  in
  ignore (Proc.spawn w.Fs.engine ~name:"controller" controller);
  Engine.run w.Fs.engine;
  match !result with
  | Some m -> m
  | None -> failwith "Runner.run: benchmark did not complete"

let measures_json (m : measures) =
  let open Su_obs in
  Json.Obj
    [
      ("users", Json.Int m.users);
      ("elapsed_avg_s", Json.Float m.elapsed_avg);
      ("elapsed_max_s", Json.Float m.elapsed_max);
      ("cpu_total_s", Json.Float m.cpu_total);
      ("disk_requests", Json.Int m.disk_requests);
      ("disk_reads", Json.Int m.disk_reads);
      ("disk_writes", Json.Int m.disk_writes);
      ("avg_response_ms", Json.Float m.avg_response_ms);
      ("avg_access_ms", Json.Float m.avg_access_ms);
      ("sync_response_ms", Json.Float m.sync_response_ms);
      ("response_p50_ms", Json.Float m.response_p50_ms);
      ("response_p90_ms", Json.Float m.response_p90_ms);
      ("response_p99_ms", Json.Float m.response_p99_ms);
      ("response_max_ms", Json.Float m.response_max_ms);
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) m.counters) );
    ]

let repeat ~reps f =
  if reps <= 0 then invalid_arg "Runner.repeat: reps must be positive";
  let ms = List.init reps f in
  let avg sel = List.fold_left (fun a m -> a +. sel m) 0.0 ms /. float_of_int reps in
  let avgi sel =
    int_of_float
      (Float.round
         (List.fold_left (fun a m -> a +. float_of_int (sel m)) 0.0 ms
         /. float_of_int reps))
  in
  match ms with
  | [] -> invalid_arg "Runner.repeat: impossible"
  | first :: _ ->
    {
      users = first.users;
      elapsed_avg = avg (fun m -> m.elapsed_avg);
      elapsed_max = avg (fun m -> m.elapsed_max);
      cpu_total = avg (fun m -> m.cpu_total);
      disk_requests = avgi (fun m -> m.disk_requests);
      disk_reads = avgi (fun m -> m.disk_reads);
      disk_writes = avgi (fun m -> m.disk_writes);
      avg_response_ms = avg (fun m -> m.avg_response_ms);
      avg_access_ms = avg (fun m -> m.avg_access_ms);
      sync_response_ms = avg (fun m -> m.sync_response_ms);
      response_p50_ms = avg (fun m -> m.response_p50_ms);
      response_p90_ms = avg (fun m -> m.response_p90_ms);
      response_p99_ms = avg (fun m -> m.response_p99_ms);
      response_max_ms = avg (fun m -> m.response_max_ms);
      counters =
        (* average by name over the reps that report the counter *)
        List.map
          (fun (name, _) ->
            let vals =
              List.filter_map (fun m -> List.assoc_opt name m.counters) ms
            in
            ( name,
              List.fold_left ( +. ) 0.0 vals
              /. float_of_int (max 1 (List.length vals)) ))
          first.counters;
      softdep = first.softdep;
    }
