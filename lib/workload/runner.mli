(** Benchmark harness: build a world, run an (unmeasured) set-up
    phase, then measure a multi-user phase — elapsed times, CPU
    charged to the benchmark processes, and system-wide disk
    statistics, mirroring the paper's methodology. *)

type measures = {
  users : int;
  elapsed_avg : float;  (** mean of the per-user elapsed times, seconds *)
  elapsed_max : float;
  cpu_total : float;  (** CPU seconds charged to the user processes *)
  disk_requests : int;
  disk_reads : int;
  disk_writes : int;
  avg_response_ms : float;  (** driver response: queue + access *)
  avg_access_ms : float;  (** disk service only *)
  sync_response_ms : float;  (** response over process-blocking requests *)
  response_p50_ms : float;  (** driver response percentiles (bucket *)
  response_p90_ms : float;  (** resolution, exact min/max clamp) *)
  response_p99_ms : float;
  response_max_ms : float;  (** exact *)
  counters : (string * float) list;
      (** cross-layer counters in one flat namespace ([cache.*],
          [syncer.*], [io.*], [disk.*], [fault.*], plus [softdep.*] /
          [journal.*] when the scheme has them and [scrub.*] when the
          background scrubber is configured); see HACKING.md for the
          glossary *)
  softdep : Su_core.Softdep.stats option;
}

val run :
  cfg:Su_fs.Fs.config ->
  ?setup:(Su_fs.State.t -> unit) ->
  ?cold_start:bool ->
  users:int ->
  (int -> Su_fs.State.t -> unit) ->
  measures
(** [run ~cfg ~setup ~users body] builds a fresh world, runs [setup]
    in a process, syncs and resets the trace, then spawns [users]
    processes running [body i st] concurrently and measures them
    (elapsed per user, CPU charged to the users, then the driver is
    drained for the system-wide I/O statistics). [cold_start] (default
    true when a [setup] is given) empties the buffer and inode caches
    after the set-up phase, so the measured phase re-reads its
    metadata from the disk — the benchmarks model a fresh session over
    pre-existing trees. *)

val measures_json : measures -> Su_obs.Json.t
(** One flat object: scalar fields by name (durations suffixed [_s] or
    [_ms]) plus a ["counters"] sub-object mapping each cross-layer
    counter to its value. This is the ["measures"] payload of
    [metasim run --json]. *)

val repeat :
  reps:int ->
  (int -> measures) ->
  measures
(** Run [f rep] several times (vary the seed with [rep]) and average
    the numeric fields. *)
