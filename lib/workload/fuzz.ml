open Su_fstypes
module Fs = Su_fs.Fs
module Fsops = Su_fs.Fsops

type op =
  | Create of string
  | Append of string * int
  | Write of string * int
  | Unlink of string
  | Mkdir of string
  | Rmdir of string
  | Link of { src : string; dst : string }
  | Rename of { src : string; dst : string }
  | Fsync of string
  | Sync

let op_to_string = function
  | Create p -> Printf.sprintf "create %s" p
  | Append (p, n) -> Printf.sprintf "append %s %d" p n
  | Write (p, n) -> Printf.sprintf "write %s %d" p n
  | Unlink p -> Printf.sprintf "unlink %s" p
  | Mkdir p -> Printf.sprintf "mkdir %s" p
  | Rmdir p -> Printf.sprintf "rmdir %s" p
  | Link { src; dst } -> Printf.sprintf "link %s %s" src dst
  | Rename { src; dst } -> Printf.sprintf "rename %s %s" src dst
  | Fsync p -> Printf.sprintf "fsync %s" p
  | Sync -> "sync"

let pp_op ppf o = Format.pp_print_string ppf (op_to_string o)

(* ---------- generation ------------------------------------------------ *)

(* A small fixed namespace: ops draw names from these pools and the
   model decides validity, so any subsequence of a generated list is a
   runnable workload (the shrinker relies on that). Directory paths
   nest, so renames can move whole subtrees. *)
let dir_pool =
  [| "/d0"; "/d1"; "/d2"; "/d0/d3"; "/d1/d4"; "/d0/d3/d5" |]

let file_pool =
  let dirs = [| ""; "/d0"; "/d1"; "/d2"; "/d0/d3"; "/d1/d4" |] in
  Array.concat
    (Array.to_list
       (Array.map (fun d -> [| d ^ "/f0"; d ^ "/f1"; d ^ "/f2" |]) dirs))

let any_pool = Array.append dir_pool file_pool
let size_pool = [| 512; 1024; 2048; 4096 |]

let gen_op rng =
  let file () = Su_util.Rng.pick rng file_pool in
  let dir () = Su_util.Rng.pick rng dir_pool in
  let any () = Su_util.Rng.pick rng any_pool in
  let size () = Su_util.Rng.pick rng size_pool in
  Su_util.Rng.weighted rng
    [
      (3, `Create); (3, `Append); (2, `Write); (2, `Unlink); (3, `Mkdir);
      (2, `Rmdir); (2, `Link); (4, `Rename); (1, `Fsync); (1, `Sync);
    ]
  |> function
  | `Create -> Create (file ())
  | `Append -> Append (file (), size ())
  | `Write -> Write (file (), size ())
  | `Unlink -> Unlink (file ())
  | `Mkdir -> Mkdir (dir ())
  | `Rmdir -> Rmdir (dir ())
  | `Link -> Link { src = file (); dst = file () }
  | `Rename -> Rename { src = any (); dst = any () }
  | `Fsync -> Fsync (file ())
  | `Sync -> Sync

(* ---------- the model ------------------------------------------------- *)

module Model = struct
  (* A pure in-memory mirror of the tree. Files are shared mutable
     records so hard links alias, exactly like inodes. *)
  type file = { mutable size : int }
  type node = File of file | Dir of (string, node) Hashtbl.t
  type t = { root : (string, node) Hashtbl.t }

  let create () = { root = Hashtbl.create 16 }

  let components path =
    List.filter (fun c -> c <> "") (String.split_on_char '/' path)

  (* Resolve to the node chain from the root (deepest last); None if
     any component is missing or crosses a file. *)
  let resolve_chain t path =
    let rec walk tbl chain = function
      | [] -> Some (List.rev chain)
      | c :: rest -> (
        match Hashtbl.find_opt tbl c with
        | Some (Dir sub as n) -> walk sub (n :: chain) rest
        | Some (File _ as n) -> if rest = [] then Some (List.rev (n :: chain)) else None
        | None -> None)
    in
    walk t.root [] (components path)

  let resolve t path =
    match resolve_chain t path with
    | Some [] -> Some (Dir t.root)
    | Some chain -> Some (List.nth chain (List.length chain - 1))
    | None -> None

  (* Parent table + leaf name; None when the parent is missing, not a
     directory, or the path is the root. *)
  let resolve_parent t path =
    match List.rev (components path) with
    | [] -> None
    | name :: rev_parent -> (
      let parent_path = String.concat "/" (List.rev rev_parent) in
      match resolve t ("/" ^ parent_path) with
      | Some (Dir tbl) -> Some (tbl, name)
      | Some (File _) | None -> None)

  (* Mirrors of the Fsops validity rules: [apply] returns [false] and
     leaves the model untouched exactly when Fsops would raise (or,
     for a rename onto the same file, do nothing). *)
  let rec apply t op =
    match op with
    | Create p -> (
      match resolve_parent t p with
      | Some (tbl, name) when not (Hashtbl.mem tbl name) ->
        Hashtbl.replace tbl name (File { size = 0 });
        true
      | _ -> false)
    | Append (p, n) -> (
      match resolve t p with
      | Some (File f) ->
        f.size <- f.size + n;
        true
      | _ -> false)
    | Write (p, n) -> (
      match resolve t p with
      | Some (File f) ->
        f.size <- n;
        true
      | _ -> false)
    | Unlink p -> (
      match resolve_parent t p with
      | Some (tbl, name) -> (
        match Hashtbl.find_opt tbl name with
        | Some (File _) ->
          Hashtbl.remove tbl name;
          true
        | _ -> false)
      | None -> false)
    | Mkdir p -> (
      match resolve_parent t p with
      | Some (tbl, name) when not (Hashtbl.mem tbl name) ->
        Hashtbl.replace tbl name (Dir (Hashtbl.create 8));
        true
      | _ -> false)
    | Rmdir p -> (
      match resolve_parent t p with
      | Some (tbl, name) -> (
        match Hashtbl.find_opt tbl name with
        | Some (Dir sub) when Hashtbl.length sub = 0 ->
          Hashtbl.remove tbl name;
          true
        | _ -> false)
      | None -> false)
    | Link { src; dst } -> (
      match (resolve t src, resolve_parent t dst) with
      | Some (File f), Some (tbl, name) when not (Hashtbl.mem tbl name) ->
        Hashtbl.replace tbl name (File f);
        true
      | _ -> false)
    | Rename { src; dst } -> rename t ~src ~dst
    | Fsync p -> ( match resolve t p with Some _ -> true | None -> false)
    | Sync -> true

  and rename t ~src ~dst =
    match (resolve_parent t src, resolve_parent t dst) with
    | Some (stbl, sname), Some (dtbl, dname) -> (
      match Hashtbl.find_opt stbl sname with
      | None -> false
      | Some (File f) -> (
        match Hashtbl.find_opt dtbl dname with
        | Some (File g) when g == f -> true (* POSIX: same file, no-op *)
        | Some (Dir _) -> false
        | Some (File _) | None ->
          Hashtbl.replace dtbl dname (File f);
          if not (dtbl == stbl && dname = sname) then Hashtbl.remove stbl sname;
          true)
      | Some (Dir _ as snode) -> (
        (* the destination may not lie inside the directory moving
           (mirrors is_self_or_ancestor: the chain to dst's parent
           must not pass through src) *)
        let dst_parent_path =
          match List.rev (components dst) with
          | _ :: rev_parent -> "/" ^ String.concat "/" (List.rev rev_parent)
          | [] -> "/"
        in
        let inside =
          match resolve_chain t dst_parent_path with
          | Some chain -> List.exists (fun n -> n == snode) chain
          | None -> false
        in
        if inside then false
        else
          match Hashtbl.find_opt dtbl dname with
          | Some existing when existing == snode -> true (* no-op *)
          | Some (Dir d) when Hashtbl.length d = 0 ->
            Hashtbl.replace dtbl dname snode;
            Hashtbl.remove stbl sname;
            true
          | Some _ -> false
          | None ->
            Hashtbl.replace dtbl dname snode;
            if not (dtbl == stbl && dname = sname) then
              Hashtbl.remove stbl sname;
            true))
    | _ -> false

  (* The expected final tree, flattened for the oracle: directories as
     (path, child names, subdir count), files grouped by identity so
     hard links can be checked to share an inode. *)
  let flatten t =
    let dirs = ref [] in
    let files = ref [] in (* (file record, paths) grouped by identity *)
    let note_file f path =
      match List.find_opt (fun (g, _) -> g == f) !files with
      | Some (_, paths) -> paths := path :: !paths
      | None -> files := (f, ref [ path ]) :: !files
    in
    let rec walk path tbl =
      let names = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] in
      let subdirs =
        Hashtbl.fold
          (fun _ n acc -> match n with Dir _ -> acc + 1 | File _ -> acc)
          tbl 0
      in
      dirs := (path, List.sort compare names, subdirs) :: !dirs;
      Hashtbl.iter
        (fun name n ->
          let child = (if path = "/" then "" else path) ^ "/" ^ name in
          match n with
          | Dir sub -> walk child sub
          | File f -> note_file f child)
        tbl
    in
    walk "/" t.root;
    ( List.rev !dirs,
      List.map (fun (f, paths) -> (f.size, List.sort compare !paths)) !files )
end

(* Model-guided generation: candidates are drawn until one is valid
   in sequence (bounded retries), so a seed denotes a dense workload
   rather than a pile of skipped ops. Drawn from substream 0 of the
   seed: adding other randomness consumers later (fault placement,
   shrink order) must not change what a seed denotes. *)
let gen ~seed ~ops =
  let rng = Su_util.Rng.substream (Su_util.Rng.create seed) 0 in
  let m = Model.create () in
  List.init ops (fun _ ->
      let rec draw tries =
        let op = gen_op rng in
        if Model.apply m op then op
        else if tries >= 20 then op (* skipped at run time; harmless *)
        else draw (tries + 1)
      in
      draw 0)

(* ---------- running ops against the real file system ------------------ *)

(* Only the model-valid subsequence touches the file system: the
   model is replayed alongside and invalid ops are skipped in both,
   so model and image agree at the end and any subsequence of an op
   list is runnable (shrinking). A final sync makes the run a clean
   shutdown. *)
let run_ops st ops =
  let m = Model.create () in
  List.iter
    (fun op ->
      if Model.apply m op then
        match op with
        | Create p -> Fsops.create st p
        | Append (p, n) -> Fsops.append st p ~bytes:n
        | Write (p, n) -> Fsops.write_file st p ~bytes:n
        | Unlink p -> Fsops.unlink st p
        | Mkdir p -> Fsops.mkdir st p
        | Rmdir p -> Fsops.rmdir st p
        | Link { src; dst } -> Fsops.link st ~src ~dst
        | Rename { src; dst } -> Fsops.rename st ~src ~dst
        | Fsync p -> Fsops.fsync st p
        | Sync -> Fsops.sync st)
    ops;
  Fsops.sync st

let model_of_ops ops =
  let m = Model.create () in
  List.iter (fun op -> ignore (Model.apply m op)) ops;
  m

let workload_of_ops ~name ops =
  { Su_check.Explorer.wl_name = name; wl_run = (fun st -> run_ops st ops) }

(* Deterministic op-list editions of the explorer's built-in
   workloads. Campaigns that need both a runnable workload and the
   model oracle over the same behavior (the corruption sweep) start
   from these: [workload_of_ops] gives the run, [check_final_image]
   the oracle, over one op list. *)
let builtin_cases =
  let smallfiles =
    let body =
      List.concat
        (List.init 12 (fun i ->
             let p = Printf.sprintf "/sf/f%d" (i + 1) in
             let ops = [ Create p; Append (p, 1024 * (1 + (i mod 5))) ] in
             if i mod 3 = 2 then ops @ [ Unlink p ] else ops))
    in
    (Mkdir "/sf" :: body) @ [ Sync ]
  in
  let dirtree =
    (Mkdir "/t"
     :: List.concat
          (List.init 5 (fun i ->
               let d = Printf.sprintf "/t/d%d" (i + 1) in
               [
                 Mkdir d;
                 Create (d ^ "/a");
                 Append (d ^ "/a", 2048);
                 Rename { src = d ^ "/a"; dst = d ^ "/b" };
               ]
               @
               if (i + 1) mod 2 = 0 then [ Unlink (d ^ "/b"); Rmdir d ]
               else [])))
    @ [ Link { src = "/t/d1/b"; dst = "/t/hard" }; Sync ]
  in
  let renamefile =
    [
      Mkdir "/ra";
      Mkdir "/rb";
      Create "/ra/f";
      Append ("/ra/f", 3072);
      Rename { src = "/ra/f"; dst = "/rb/g" };
      Rename { src = "/rb/g"; dst = "/rb/h" };
      Sync;
    ]
  in
  let renamedir =
    [
      Mkdir "/ra";
      Mkdir "/rb";
      Mkdir "/ra/d";
      Create "/ra/d/f";
      Append ("/ra/d/f", 2048);
      Rename { src = "/ra/d"; dst = "/rb/e" };
      Rename { src = "/rb/e"; dst = "/ra/d2" };
      Sync;
    ]
  in
  [
    ("smallfiles", smallfiles);
    ("dirtree", dirtree);
    ("renamefile", renamefile);
    ("renamedir", renamedir);
  ]

let find_case name = List.assoc_opt name builtin_cases

(* ---------- the oracle ------------------------------------------------ *)

(* Mount the final (recovered) image and walk the model against it:
   every directory must list exactly the model's names with the right
   link count, every file must have the right size, and hard links
   must share an inode. Returns mismatch descriptions; [] = agree. *)
let check_final_image ~cfg image ops =
  let m = model_of_ops ops in
  let dirs, files = Model.flatten m in
  let mismatches = ref [] in
  let bad fmt = Printf.ksprintf (fun s -> mismatches := s :: !mismatches) fmt in
  (try
     let w = Su_fs.Fs.mount_image cfg image in
     let controller () =
       List.iter
         (fun (path, names, subdirs) ->
           match Fsops.readdir w.Su_fs.Fs.st path with
           | listed ->
             let listed =
               List.sort compare
                 (List.filter (fun n -> n <> "." && n <> "..") listed)
             in
             if listed <> names then
               bad "dir %s: on disk [%s], model [%s]" path
                 (String.concat " " listed)
                 (String.concat " " names);
             let st_ = Fsops.stat w.Su_fs.Fs.st path in
             let want = 2 + subdirs in
             if st_.Fsops.st_nlink <> want then
               bad "dir %s: nlink %d, model %d" path st_.Fsops.st_nlink want
           | exception e ->
             bad "dir %s: %s" path (Printexc.to_string e))
         dirs;
       List.iter
         (fun (size, paths) ->
           let stats =
             List.filter_map
               (fun p ->
                 match Fsops.stat w.Su_fs.Fs.st p with
                 | s -> Some (p, s)
                 | exception e ->
                   bad "file %s: %s" p (Printexc.to_string e);
                   None)
               paths
           in
           List.iter
             (fun (p, (s : Fsops.file_stat)) ->
               if s.Fsops.st_ftype <> Types.F_reg then
                 bad "file %s: not a regular file" p;
               if s.Fsops.st_size <> size then
                 bad "file %s: size %d, model %d" p s.Fsops.st_size size;
               if s.Fsops.st_nlink <> List.length paths then
                 bad "file %s: nlink %d, model %d" p s.Fsops.st_nlink
                   (List.length paths))
             stats;
           match stats with
           | (_, first) :: rest ->
             List.iter
               (fun (p, (s : Fsops.file_stat)) ->
                 if s.Fsops.st_inum <> first.Fsops.st_inum then
                   bad "file %s: inum %d, expected the link group's %d" p
                     s.Fsops.st_inum first.Fsops.st_inum)
               rest
           | [] -> ())
         files;
       Su_fs.Fs.stop w;
       Su_driver.Driver.quiesce w.Su_fs.Fs.driver;
       Su_sim.Engine.stop w.Su_fs.Fs.engine
     in
     ignore (Su_sim.Proc.spawn w.Su_fs.Fs.engine ~name:"oracle" controller);
     Su_sim.Engine.run w.Su_fs.Fs.engine
   with e -> bad "mount: %s" (Printexc.to_string e));
  List.rev !mismatches

(* ---------- one fuzz case --------------------------------------------- *)

type case_result = {
  cr_summary : Su_check.Explorer.summary;
  cr_mismatches : string list;  (** final recovered image vs the model *)
}

let run_case ?(nested = true) ?torn ?jobs ?max_boundaries
    ?nested_max_boundaries ~cfg ~name ops =
  let wl = workload_of_ops ~name ops in
  let recording = Su_check.Explorer.record ~cfg wl in
  let summary =
    Su_check.Explorer.sweep_recording ?torn ?jobs ?max_boundaries ~nested
      ?nested_max_boundaries ~cfg ~workload:name recording
  in
  let n = Array.length recording.Su_check.Explorer.rec_deltas in
  let cur =
    Su_check.Delta.cursor
      ~initial:recording.Su_check.Explorer.rec_initial
      ~log:recording.Su_check.Explorer.rec_deltas
  in
  let final = Su_check.Explorer.materialize cur (n, None) in
  Su_fs.Fs.recover_image cfg final;
  let mismatches = check_final_image ~cfg final ops in
  { cr_summary = summary; cr_mismatches = mismatches }

(* The scheme's promise for a fuzz case: ordered schemes and the
   journal must be consistent at every crash state; No Order must at
   least repair everywhere; and the fault-free run must match the
   model exactly. *)
let failure r =
  let s = r.cr_summary in
  let sweep_failure =
    match s.Su_check.Explorer.s_scheme with
    | Su_fs.Fs.No_order ->
      if Su_check.Explorer.repairable s then None
      else Some "crash state unrepairable"
    | _ ->
      if Su_check.Explorer.consistent s then None
      else if Su_check.Explorer.repairable s then
        Some "crash state violated (repairable)"
      else Some "crash state unrepairable"
  in
  match (sweep_failure, r.cr_mismatches) with
  | Some f, _ -> Some f
  | None, m :: _ -> Some (Printf.sprintf "oracle: %s" m)
  | None, [] -> None

(* ---------- shrinking ------------------------------------------------- *)

(* Greedy delta-debugging: try dropping chunks (halves downwards),
   then single ops, re-testing with [still_fails]; deterministic, no
   randomness. Any subsequence is runnable because invalid ops are
   skipped identically in model and file system. *)
let shrink ~still_fails ops =
  let drop lst i len = List.filteri (fun j _ -> j < i || j >= i + len) lst in
  let current = ref ops in
  let chunk = ref (max 1 (List.length ops / 2)) in
  while !chunk >= 1 do
    let i = ref 0 in
    while !i < List.length !current do
      let candidate = drop !current !i !chunk in
      if candidate <> [] && still_fails candidate then
        (* keep the cut; the same index now names the next chunk *)
        current := candidate
      else i := !i + !chunk
    done;
    chunk := !chunk / 2
  done;
  !current
