(* Open-loop multi-tenant load engine.

   Spawns thousands of concurrent {!Su_sim.Proc} clients, each a
   tenant owning a namespace subtree [/t<id>], drawing operations from
   a seeded per-client mix of create/write/rename/unlink/mkdir.
   Arrivals are OPEN LOOP: every client schedules its next operation
   from the previous *scheduled* time, independent of completions, so
   a lagging client issues late operations back to back and the
   lateness lands in the measured latency (completion minus scheduled
   arrival, self-queueing included) — the tail-latency regime, not the
   closed-loop scripts of {!Runner}.

   Interarrival times come from a fixed-rate or Poisson process,
   modulated by a load shape (the Clue2 taxonomy): [fixed] starts
   every client at time zero, [rampup] staggers client starts across
   the warmup, [pausing] alternates synchronized active/quiet phases,
   [shaped] sweeps the rate through a triangle wave (a diurnal curve).
   Only operations scheduled inside the steady-state window
   [warmup, duration) are measured.

   Determinism: every random stream is derived from the seed and the
   client's global id ({!Su_util.Rng.substream}), shards are
   self-contained worlds split by client id, and per-world results
   merge by shard index with {!Su_obs.Hist.merge} — so the report is a
   pure function of the config, byte-identical at any [--jobs]. Host-
   side measurements (wall clock, GC counters) are reported separately
   and must never enter the deterministic report.

   The steady-state loop is scale-proof by construction: directory
   lookups ride the {!Su_fs.Dir_index} (enabled by {!config}),
   allocator scans ride the {!Su_fs.Freemap} bitsets, and each client
   draws paths and slots from scratch tables preallocated at setup, so
   steady state allocates only short-lived minor garbage (asserted by
   [bench/main.exe --loadgen]). *)

open Su_sim
open Su_fs
module Hist = Su_obs.Hist
module Json = Su_obs.Json
module Rng = Su_util.Rng

type shape = Fixed | Rampup | Pausing | Shaped
type arrival = Fixed_rate | Poisson
type op_class = Op_create | Op_write | Op_rename | Op_unlink | Op_mkdir

let shape_name = function
  | Fixed -> "fixed"
  | Rampup -> "rampup"
  | Pausing -> "pausing"
  | Shaped -> "shaped"

let shape_of_string = function
  | "fixed" -> Some Fixed
  | "rampup" -> Some Rampup
  | "pausing" -> Some Pausing
  | "shaped" -> Some Shaped
  | _ -> None

let all_shapes = [ Fixed; Rampup; Pausing; Shaped ]

let arrival_name = function Fixed_rate -> "fixed-rate" | Poisson -> "poisson"

let arrival_of_string = function
  | "fixed-rate" | "fixed" -> Some Fixed_rate
  | "poisson" -> Some Poisson
  | _ -> None

let nclasses = 5
let class_index = function
  | Op_create -> 0
  | Op_write -> 1
  | Op_rename -> 2
  | Op_unlink -> 3
  | Op_mkdir -> 4

let class_name = function
  | Op_create -> "create"
  | Op_write -> "write"
  | Op_rename -> "rename"
  | Op_unlink -> "unlink"
  | Op_mkdir -> "mkdir"

let class_of_index = function
  | 0 -> Op_create
  | 1 -> Op_write
  | 2 -> Op_rename
  | 3 -> Op_unlink
  | _ -> Op_mkdir

type config = {
  fs_cfg : Fs.config;
  clients : int;
  rate : float;  (* per-client operations per simulated second *)
  shape : shape;
  arrival : arrival;
  duration : float;  (* simulated seconds, from time zero *)
  warmup : float;  (* steady-state window is [warmup, duration) *)
  files_per_client : int;  (* pre-created files per tenant *)
  shards : int;  (* independent worlds, split by client id *)
  seed : int;
}

let config ?scheme () =
  {
    fs_cfg = { (Fs.config ?scheme ()) with Fs.dir_index = true };
    clients = 200;
    rate = 0.1;
    shape = Fixed;
    arrival = Poisson;
    duration = 60.0;
    warmup = 15.0;
    files_per_client = 8;
    shards = 1;
    seed = 17;
  }

let validate cfg =
  if cfg.clients < 1 then invalid_arg "Loadgen: clients must be at least 1";
  if cfg.rate <= 0.0 || not (Float.is_finite cfg.rate) then
    invalid_arg "Loadgen: rate must be positive";
  if cfg.duration <= 0.0 then invalid_arg "Loadgen: duration must be positive";
  if cfg.warmup < 0.0 || cfg.warmup >= cfg.duration then
    invalid_arg "Loadgen: warmup must lie inside the duration";
  if cfg.files_per_client < 1 then
    invalid_arg "Loadgen: files-per-client must be at least 1";
  if cfg.shards < 1 || cfg.shards > cfg.clients then
    invalid_arg "Loadgen: shards must be between 1 and the client count"

(* --- per-client state ---------------------------------------------------- *)

(* Pooled scratch, fully preallocated at setup so the steady-state
   loop allocates nothing long-lived: every path a client can ever use
   exists up front (each file slot owns two fixed names so rename
   flips between them), and slot bookkeeping is two int stacks. *)
type client = {
  rng : Rng.t;
  pname : string;  (* process name *)
  dir : string;  (* "/t<gid>" *)
  fnames : string array;  (* primary name per slot *)
  rnames : string array;  (* rename alternate per slot *)
  renamed : Bytes.t;  (* '\001' when the slot currently uses rnames *)
  live : int array;  (* slots with an existing file *)
  mutable nlive : int;
  free : int array;  (* slots without one *)
  mutable nfree : int;
  dnames : string array;  (* subdirectory pool *)
  mutable ndirs : int;
  weights : int array;  (* per-class draw weights (seeded jitter) *)
  wtotal : int;
  start : float;  (* no arrivals before this (rampup stagger) *)
  mutable t_next : float;  (* next scheduled arrival *)
}

let base_weights = [| 30; 30; 15; 15; 10 |] (* create write rename unlink mkdir *)
let subdir_pool = 4

let make_client cfg root gid =
  let rng = Rng.substream root gid in
  let dir = Printf.sprintf "/t%d" gid in
  let cap = cfg.files_per_client + 4 in
  let weights =
    Array.map (fun b -> b + Rng.int rng (1 + (b / 2))) base_weights
  in
  let start =
    match cfg.shape with
    | Rampup -> cfg.warmup *. float_of_int gid /. float_of_int cfg.clients
    | Fixed | Pausing | Shaped -> 0.0
  in
  {
    rng;
    pname = Printf.sprintf "tenant%d" gid;
    dir;
    fnames = Array.init cap (fun k -> Printf.sprintf "%s/f%d" dir k);
    rnames = Array.init cap (fun k -> Printf.sprintf "%s/r%d" dir k);
    renamed = Bytes.make cap '\000';
    live = Array.make cap 0;
    nlive = 0;
    free = Array.init cap (fun k -> cap - 1 - k);  (* pop order: 0, 1, ... *)
    nfree = cap;
    dnames = Array.init subdir_pool (fun j -> Printf.sprintf "%s/d%d" dir j);
    ndirs = 0;
    weights;
    wtotal = Array.fold_left ( + ) 0 weights;
    start;
    t_next = 0.0;
  }

let pick_class c =
  let r = Rng.int c.rng c.wtotal in
  let rec go k acc =
    let acc = acc + c.weights.(k) in
    if r < acc || k = nclasses - 1 then class_of_index k else go (k + 1) acc
  in
  go 0 0

let slot_name c slot =
  if Bytes.get c.renamed slot = '\001' then c.rnames.(slot) else c.fnames.(slot)

(* Execute one operation of (ideally) class [cls], degrading to a
   class the tenant's state admits — unlinking with no files becomes a
   create, creating with every slot full becomes a write — and return
   the class actually executed. Degradation cannot cycle: create only
   degrades when all slots are live, which is exactly when write
   cannot degrade. *)
let rec execute st c cls =
  match cls with
  | Op_create ->
    if c.nfree = 0 then execute st c Op_write
    else begin
      let slot = c.free.(c.nfree - 1) in
      c.nfree <- c.nfree - 1;
      Bytes.set c.renamed slot '\000';
      Fsops.create st c.fnames.(slot);
      c.live.(c.nlive) <- slot;
      c.nlive <- c.nlive + 1;
      Op_create
    end
  | Op_write ->
    if c.nlive = 0 then execute st c Op_create
    else begin
      let slot = c.live.(Rng.int c.rng c.nlive) in
      Fsops.write_file st (slot_name c slot)
        ~bytes:(1024 * (1 + Rng.int c.rng 4));
      Op_write
    end
  | Op_rename ->
    if c.nlive = 0 then execute st c Op_create
    else begin
      let slot = c.live.(Rng.int c.rng c.nlive) in
      let flip = Bytes.get c.renamed slot = '\001' in
      let src = if flip then c.rnames.(slot) else c.fnames.(slot) in
      let dst = if flip then c.fnames.(slot) else c.rnames.(slot) in
      Fsops.rename st ~src ~dst;
      Bytes.set c.renamed slot (if flip then '\000' else '\001');
      Op_rename
    end
  | Op_unlink ->
    if c.nlive = 0 then execute st c Op_create
    else begin
      let i = Rng.int c.rng c.nlive in
      let slot = c.live.(i) in
      Fsops.unlink st (slot_name c slot);
      c.nlive <- c.nlive - 1;
      c.live.(i) <- c.live.(c.nlive);
      c.free.(c.nfree) <- slot;
      c.nfree <- c.nfree + 1;
      Op_unlink
    end
  | Op_mkdir ->
    if c.ndirs >= subdir_pool then execute st c Op_write
    else begin
      Fsops.mkdir st c.dnames.(c.ndirs);
      c.ndirs <- c.ndirs + 1;
      Op_mkdir
    end

(* --- arrival process ----------------------------------------------------- *)

(* [shaped]: triangle wave over the run, mean 1.0 — quiet ends, a
   crest in the middle. *)
let rate_mult cfg t =
  match cfg.shape with
  | Shaped ->
    let phase = t /. cfg.duration in
    0.25 +. (1.5 *. (1.0 -. Float.abs ((2.0 *. phase) -. 1.0)))
  | Fixed | Rampup | Pausing -> 1.0

(* [pausing]: period-long active and quiet phases in lockstep across
   all clients; arrivals landing in a quiet phase slide to the start
   of the next active one (the backlog burst is the point). *)
let pause_adjust cfg t =
  match cfg.shape with
  | Pausing ->
    let p = cfg.duration /. 8.0 in
    let k = int_of_float (t /. p) in
    if k land 1 = 1 then float_of_int (k + 1) *. p else t
  | Fixed | Rampup | Shaped -> t

let next_arrival cfg c t =
  let dt =
    match cfg.arrival with
    | Fixed_rate -> 1.0 /. cfg.rate
    | Poisson -> Rng.exponential c.rng (1.0 /. cfg.rate)
  in
  pause_adjust cfg (t +. (dt /. rate_mult cfg t))

(* --- per-shard world ----------------------------------------------------- *)

type world_result = {
  w_class : Hist.t array;  (* measured latency per op class, seconds *)
  w_total : Hist.t;
  w_executed : int;  (* steady-phase ops, in or out of the window *)
  w_host_wall : float;  (* host seconds spent in the steady phase *)
  w_minor_words : float;  (* minor words allocated in the steady phase *)
  w_majors : int;  (* major collections in the steady phase *)
}

(* Split clients across shards: shard [s] owns a contiguous global-id
   span, so the union over shards is independent of the shard count's
   relation to [--jobs]. *)
let shard_span cfg s =
  let base = cfg.clients / cfg.shards and extra = cfg.clients mod cfg.shards in
  let n = base + if s < extra then 1 else 0 in
  let first = (s * base) + min s extra in
  (first, n)

let run_world cfg ~shard =
  let first, n = shard_span cfg shard in
  let w = Fs.make cfg.fs_cfg in
  let st = w.Fs.st in
  let eng = w.Fs.engine in
  let root = Rng.create cfg.seed in
  let class_h = Array.init nclasses (fun _ -> Hist.create ()) in
  let total_h = Hist.create () in
  let executed = ref 0 in
  let result = ref None in
  (* Client time is relative to the steady-phase start: setup burns
     simulated time too, so schedules anchored at absolute zero would
     make every client start behind. [t_base] is set once setup is on
     disk. *)
  let t_base = ref 0.0 in
  let client_proc c () =
    let rec loop () =
      let t = c.t_next in
      if t < cfg.duration then begin
        let abs_t = !t_base +. t in
        let now = Engine.now eng in
        if abs_t > now then Proc.sleep eng (abs_t -. now);
        let cls = execute st c (pick_class c) in
        incr executed;
        if t >= cfg.warmup then begin
          let lat = Engine.now eng -. abs_t in
          Hist.add class_h.(class_index cls) lat;
          Hist.add total_h lat
        end;
        c.t_next <- next_arrival cfg c t;
        loop ()
      end
    in
    loop ()
  in
  let controller () =
    let clients = Array.init n (fun i -> make_client cfg root (first + i)) in
    Array.iter
      (fun c ->
        Fsops.mkdir st c.dir;
        for k = 0 to cfg.files_per_client - 1 do
          Fsops.create st c.fnames.(k);
          c.live.(c.nlive) <- k;
          c.nlive <- c.nlive + 1;
          c.nfree <- c.nfree - 1
        done)
      clients;
    Fsops.sync st;
    t_base := Engine.now eng;
    Array.iter (fun c -> c.t_next <- next_arrival cfg c c.start) clients;
    (* host-side steady-phase measurement (GC hygiene for the bench);
       the full_major fences setup garbage out of the measured phase *)
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    let s0 = Gc.quick_stat () in
    let handles =
      Array.to_list
        (Array.map (fun c -> Proc.spawn eng ~name:c.pname (client_proc c))
           clients)
    in
    Proc.join_all eng handles;
    let s1 = Gc.quick_stat () in
    let wall = Unix.gettimeofday () -. t0 in
    Fs.stop w;
    Su_driver.Driver.quiesce w.Fs.driver;
    result :=
      Some
        {
          w_class = class_h;
          w_total = total_h;
          w_executed = !executed;
          w_host_wall = wall;
          w_minor_words = s1.Gc.minor_words -. s0.Gc.minor_words;
          w_majors = s1.Gc.major_collections - s0.Gc.major_collections;
        };
    Engine.stop eng
  in
  ignore (Proc.spawn eng ~name:"loadgen" controller);
  Engine.run eng;
  match !result with
  | Some r -> r
  | None -> failwith "Loadgen: world did not complete"

(* --- aggregation and reporting ------------------------------------------- *)

type report = {
  class_hist : Hist.t array;
  total_hist : Hist.t;
  executed : int;
  host_wall_s : float;  (* summed across shards (serial-equivalent) *)
  minor_words : float;
  major_collections : int;
}

let run ?(jobs = 1) cfg =
  validate cfg;
  let results =
    Su_util.Pool.map ~jobs cfg.shards (fun s -> run_world cfg ~shard:s)
  in
  (* merge by shard index: same grouping at any job count *)
  let merged k =
    Array.fold_left
      (fun acc r -> Hist.merge acc r.w_class.(k))
      (Hist.create ()) results
  in
  {
    class_hist = Array.init nclasses merged;
    total_hist =
      Array.fold_left
        (fun acc r -> Hist.merge acc r.w_total)
        (Hist.create ()) results;
    executed = Array.fold_left (fun acc r -> acc + r.w_executed) 0 results;
    host_wall_s =
      Array.fold_left (fun acc r -> acc +. r.w_host_wall) 0.0 results;
    minor_words =
      Array.fold_left (fun acc r -> acc +. r.w_minor_words) 0.0 results;
    major_collections =
      Array.fold_left (fun acc r -> acc + r.w_majors) 0 results;
  }

let window cfg = cfg.duration -. cfg.warmup

let measured_ops r = Hist.count r.total_hist

let throughput cfg r = float_of_int (measured_ops r) /. window cfg

(* Everything rendered below is a pure function of the config — the
   host-side fields of [report] must stay out. *)

let class_rows cfg r =
  let row name h =
    let ops = Hist.count h in
    ( name,
      ops,
      float_of_int ops /. window cfg,
      1e3 *. Hist.percentile h 50.0,
      1e3 *. Hist.percentile h 90.0,
      1e3 *. Hist.percentile h 99.0,
      1e3 *. Hist.max_value h )
  in
  List.init nclasses (fun k ->
      row (class_name (class_of_index k)) r.class_hist.(k))
  @ [ row "all" r.total_hist ]

let report_table cfg r =
  let open Su_util.Text_table in
  let tt =
    create
      ~title:
        (Printf.sprintf
           "loadgen: %d clients x %d shard(s), %s, shape %s, %s arrivals, \
            %g ops/s/client, window [%g, %g) s"
           cfg.clients cfg.shards
           (Fs.scheme_kind_name cfg.fs_cfg.Fs.scheme)
           (shape_name cfg.shape) (arrival_name cfg.arrival) cfg.rate
           cfg.warmup cfg.duration)
      ~headers:[ "op class"; "ops"; "ops/s"; "p50 ms"; "p90 ms"; "p99 ms"; "max ms" ]
  in
  List.iter
    (fun (name, ops, rate, p50, p90, p99, mx) ->
      add_row tt
        [
          name; cell_i ops; cell_f ~dec:2 rate; cell_f ~dec:2 p50;
          cell_f ~dec:2 p90; cell_f ~dec:2 p99; cell_f ~dec:2 mx;
        ])
    (class_rows cfg r);
  tt

let report_json cfg r =
  let class_obj (name, ops, rate, p50, p90, p99, mx) =
    Json.Obj
      [
        ("class", Json.Str name);
        ("ops", Json.Int ops);
        ("ops_per_sec", Json.Float rate);
        ("p50_ms", Json.Float p50);
        ("p90_ms", Json.Float p90);
        ("p99_ms", Json.Float p99);
        ("max_ms", Json.Float mx);
      ]
  in
  Json.Obj
    [
      ("experiment", Json.Str "loadgen");
      ("clients", Json.Int cfg.clients);
      ("shards", Json.Int cfg.shards);
      ("scheme", Json.Str (Fs.scheme_kind_name cfg.fs_cfg.Fs.scheme));
      ("shape", Json.Str (shape_name cfg.shape));
      ("arrival", Json.Str (arrival_name cfg.arrival));
      ("rate_per_client", Json.Float cfg.rate);
      ("duration_s", Json.Float cfg.duration);
      ("warmup_s", Json.Float cfg.warmup);
      ("files_per_client", Json.Int cfg.files_per_client);
      ("seed", Json.Int cfg.seed);
      ("measured_ops", Json.Int (measured_ops r));
      ("throughput_ops_per_sec", Json.Float (throughput cfg r));
      ("classes", Json.List (List.map class_obj (class_rows cfg r)));
    ]
