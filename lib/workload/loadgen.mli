(** Open-loop multi-tenant load engine.

    Thousands of concurrent {!Su_sim.Proc} clients, each drawing a
    seeded per-tenant mix of create/write/rename/unlink/mkdir over its
    own namespace subtree, with fixed-rate or Poisson arrivals under a
    load shape ([fixed], [rampup], [pausing], [shaped]). Arrivals are
    scheduled independently of completions (open loop); measured
    latency is completion minus scheduled arrival, self-queueing
    included, over the steady-state window [warmup, duration).

    The rendered report is a pure function of the configuration:
    byte-identical at any [jobs] value. Host-side wall clock and GC
    measurements live in separate {!report} fields and never enter the
    table or JSON. *)

type shape = Fixed | Rampup | Pausing | Shaped
type arrival = Fixed_rate | Poisson
type op_class = Op_create | Op_write | Op_rename | Op_unlink | Op_mkdir

val shape_name : shape -> string
val shape_of_string : string -> shape option
val all_shapes : shape list
val arrival_name : arrival -> string
val arrival_of_string : string -> arrival option

val nclasses : int
val class_name : op_class -> string
val class_index : op_class -> int
val class_of_index : int -> op_class

type config = {
  fs_cfg : Su_fs.Fs.config;
  clients : int;
  rate : float;  (** per-client operations per simulated second *)
  shape : shape;
  arrival : arrival;
  duration : float;  (** simulated seconds, from time zero *)
  warmup : float;  (** steady-state window is [warmup, duration) *)
  files_per_client : int;  (** pre-created files per tenant *)
  shards : int;  (** independent worlds, split by client id *)
  seed : int;
}

val config : ?scheme:Su_fs.Fs.scheme_kind -> unit -> config
(** Defaults: 200 clients, 0.1 ops/s/client Poisson, shape [fixed],
    60 s duration with 15 s warmup, 8 files per tenant, 1 shard,
    seed 17, and an {!Su_fs.Fs.config} with the directory index on. *)

type report = {
  class_hist : Su_obs.Hist.t array;
      (** measured latency (seconds) per op class, [nclasses] long,
          indexed by {!class_index} *)
  total_hist : Su_obs.Hist.t;
  executed : int;
      (** operations issued in the steady phase, inside the window or
          not (setup excluded) — the denominator for host throughput *)
  host_wall_s : float;
      (** host seconds in the steady phase, summed across shards
          (serial-equivalent; NOT deterministic) *)
  minor_words : float;  (** steady-phase minor allocation (host-side) *)
  major_collections : int;  (** steady-phase major collections *)
}

val run : ?jobs:int -> config -> report
(** Run [shards] independent worlds (fanned over {!Su_util.Pool} with
    [jobs] workers) and merge their histograms by shard index.
    @raise Invalid_argument on an inconsistent configuration. *)

val window : config -> float
val measured_ops : report -> int
val throughput : config -> report -> float
(** Measured ops per simulated second of steady-state window. *)

val report_table : config -> report -> Su_util.Text_table.t
(** Per-class rows plus an [all] row: ops, ops/s, p50/p90/p99/max ms.
    Deterministic. *)

val report_json : config -> report -> Su_obs.Json.t
(** Same content as {!report_table} plus the config echo; see
    EXPERIMENTS.md for the schema. Deterministic. *)
