(** Seeded workload fuzzing with shrinking.

    A PRNG seed denotes a list of operations over the full syscall
    surface (create/append/write/unlink/mkdir/rmdir/link/rename of
    files and directories/fsync/sync) drawn from a small fixed
    namespace. A pure in-memory model mirrors Fsops semantics and
    decides which ops are valid; invalid ops are skipped identically
    in the model and on the file system, so {e any subsequence} of a
    generated list is a runnable workload — the property greedy
    shrinking relies on.

    One fuzz case: run the ops fault-free, crash-sweep the recording
    at every write boundary (including re-crashing the recovery
    pipeline inside its own write stream), and check the final
    recovered image against the model (sizes, link counts, entry
    sets, hard links sharing an inode). *)

type op =
  | Create of string
  | Append of string * int  (** bytes *)
  | Write of string * int  (** truncate + rewrite *)
  | Unlink of string
  | Mkdir of string
  | Rmdir of string
  | Link of { src : string; dst : string }
  | Rename of { src : string; dst : string }
  | Fsync of string
  | Sync

val op_to_string : op -> string
val pp_op : Format.formatter -> op -> unit

val gen : seed:int -> ops:int -> op list
(** The op list a seed denotes. Deterministic; drawn from
    {!Su_util.Rng.substream} 0 of the seed so later consumers of the
    seed's randomness cannot change what a seed means. *)

(** The in-memory oracle: a mirror of the directory tree with files
    as shared mutable records (hard links alias). *)
module Model : sig
  type t

  val create : unit -> t

  val apply : t -> op -> bool
  (** Mutate per the op's Fsops semantics; [false] = the op is
      invalid (Fsops would raise), the model is untouched, and the
      op must be skipped on the file system too. *)
end

val model_of_ops : op list -> Model.t

val workload_of_ops : name:string -> op list -> Su_check.Explorer.workload
(** A workload running the model-valid subsequence of [ops], then a
    final [sync] (clean shutdown). *)

val builtin_cases : (string * op list) list
(** Deterministic op-list editions of the explorer's built-in
    workloads (smallfiles, dirtree, renamefile, renamedir): the same
    behavior available simultaneously as a runnable workload
    ({!workload_of_ops}) and as a model oracle
    ({!check_final_image}) — what the corruption sweep needs. *)

val find_case : string -> op list option

val check_final_image :
  cfg:Su_fs.Fs.config ->
  Su_fstypes.Types.cell array ->
  op list ->
  string list
(** Mount the (recovered) image and walk the model against it.
    Returns mismatch descriptions; [[]] means image and model
    agree. *)

type case_result = {
  cr_summary : Su_check.Explorer.summary;
  cr_mismatches : string list;  (** final recovered image vs the model *)
}

val run_case :
  ?nested:bool ->
  ?torn:bool ->
  ?jobs:int ->
  ?max_boundaries:int ->
  ?nested_max_boundaries:int ->
  cfg:Su_fs.Fs.config ->
  name:string ->
  op list ->
  case_result
(** Record the ops, sweep every crash state ([nested], default true:
    also re-crash recovery at its own write boundaries), then compare
    the fault-free final image against the model. *)

val failure : case_result -> string option
(** The scheme's promise, as a pass/fail: ordered schemes and the
    journal must be consistent at every crash state, No Order must
    repair everywhere, and the final image must match the model.
    [None] = the case passes. *)

val shrink : still_fails:(op list -> bool) -> op list -> op list
(** Greedy delta-debugging: drop chunks (halving downwards), then
    single ops, keeping any cut for which [still_fails] holds.
    Deterministic. The result still fails and is locally minimal at
    chunk size 1. *)
