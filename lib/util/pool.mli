(** A small Domain-based work pool for data-parallel fan-out.

    The pool maps a function over the index range [0 .. n-1] using up
    to [jobs] worker domains. Indices are claimed from a shared atomic
    counter, so each worker sees a {e monotonically increasing}
    sequence of indices — stages that maintain incremental per-worker
    state (a delta-log cursor, a streaming accumulator) never need to
    rewind. Results are merged by job index, not completion order, so
    the output array is byte-identical at any [jobs] value.

    Determinism contract: if [f] is deterministic per index and shares
    no mutable state across indices, then [map ~jobs n f] returns the
    same array for every [jobs]. The harness relies on this to keep
    golden digests stable whether a sweep runs serially or fanned out.

    Nested use: a [map] issued from inside a worker runs serially in
    that worker (no recursive domain explosion). The simulator's
    per-domain state ({!Su_sim.Proc}'s current-process register) is
    domain-local, so whole simulated worlds can run concurrently as
    long as each world is built and run entirely within one job. *)

val recommended : unit -> int
(** [Domain.recommended_domain_count ()] — the pool's meaning of
    "all cores". *)

val resolve_jobs : int -> int
(** Normalise a user-facing [--jobs] value: [0] means
    {!recommended}; anything below zero is an error.
    @raise Invalid_argument on negative input. *)

val in_worker : unit -> bool
(** True while executing inside a pool worker domain (or in a nested
    serial section of one). *)

val map : ?jobs:int -> int -> (int -> 'a) -> 'a array
(** [map ~jobs n f] is [| f 0; f 1; ...; f (n-1) |], computed by up to
    [jobs] domains ([jobs] is {!resolve_jobs}-normalised; default 1 =
    serial). If any [f i] raises, the exception for the {e smallest}
    failing index is re-raised after all workers stop claiming work —
    again independent of [jobs]. *)

val map_with :
  ?jobs:int -> init:(unit -> 's) -> int -> ('s -> int -> 'a) -> 'a array
(** Like {!map}, but each worker first builds private state with
    [init] and threads it through every index it claims (in increasing
    order). [init] runs once per worker, inside that worker's domain. *)
