(** Plain-text table rendering for benchmark and experiment reports. *)

type t

val create : title:string -> headers:string list -> t

val add_row : t -> string list -> unit
(** Rows shorter than the header are padded with empty cells; longer
    rows are truncated. *)

val render : t -> string
(** Render with aligned columns (first column left-aligned, the rest
    right-aligned), a title line and a separator. *)

val print : t -> unit
(** [render] followed by [print_string] and a trailing newline. *)

val cell_f : ?dec:int -> float -> string
(** Format a float with [dec] decimals (default 1). Non-finite values
    (an empty population's mean or extremum) render as ["-"]. *)

val cell_i : int -> string

val title : t -> string
val headers : t -> string list

val rows : t -> string list list
(** In insertion order (as rendered). *)
