(** Open-addressing hash table with non-negative int keys.

    Built for per-event lookups on the simulator's hot paths: linear
    probing over flat arrays, an inline multiplicative hash (no C call
    into the generic hash), and backward-shift deletion so probe
    chains stay short without tombstones. No operation allocates
    except internal growth.

    Missing keys map to the [absent] value given at creation, merging
    [find_opt] + default into a single probe. [absent] is a sentinel:
    storing it with [set] is not meaningful — use [remove]. *)

type 'a t

val create : ?capacity:int -> absent:'a -> unit -> 'a t
(** [create ~absent ()] makes an empty table. [capacity] is rounded up
    to a power of two (minimum 8). *)

val get : 'a t -> int -> 'a
(** [get t k] is the value bound to [k], or [absent] if unbound. *)

val mem : 'a t -> int -> bool

val set : 'a t -> int -> 'a -> unit
(** [set t k v] binds [k] to [v], replacing any previous binding.
    Raises [Invalid_argument] if [k < 0]. *)

val remove : 'a t -> int -> unit
(** [remove t k] unbinds [k]; no-op if unbound. *)

val length : 'a t -> int
(** Number of bound keys. *)

val iter : (int -> 'a -> unit) -> 'a t -> unit
(** [iter f t] applies [f] to every binding, in unspecified order. *)
