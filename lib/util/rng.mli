(** Deterministic pseudo-random number generation (splitmix64).

    All randomness in the simulator flows through explicit [Rng.t]
    values so that every experiment is reproducible from its seed. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val split : t -> t
(** [split t] derives an independent generator, advancing [t]. *)

val substream : t -> int -> t
(** [substream t i] derives the [i]-th independent generator keyed off
    [t]'s {e current} state without advancing it: the same seed always
    yields the same family of streams, and draws from one stream never
    perturb another. Consumers with several independent sources of
    randomness (the fuzzer's op generation, fault injection and
    shrinking) give each its own substream so that, e.g., changing the
    fault configuration cannot change which workload a seed denotes.
    @raise Invalid_argument if [i < 0]. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing it. *)

val bits64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] returns a uniform integer in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val int_range : t -> int -> int -> int
(** [int_range t lo hi] returns a uniform integer in [\[lo, hi\]]. *)

val float : t -> float -> float
(** [float t bound] returns a uniform float in [\[0, bound)]. *)

val bool : t -> bool

val exponential : t -> float -> float
(** [exponential t mean] samples an exponential distribution. *)

val pick : t -> 'a array -> 'a
(** Uniform choice among array elements.
    @raise Invalid_argument on an empty array. *)

val weighted : t -> (int * 'a) list -> 'a
(** [weighted t choices] picks an element with probability proportional
    to its integer weight.
    @raise Invalid_argument if all weights are zero or the list is
    empty. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
