type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = bits64 t }

(* Key the parent state with the stream index and run it through the
   full splitmix finalizer twice: adjacent indices land in unrelated
   regions of the state space, and the parent is left untouched. *)
let substream t i =
  if i < 0 then invalid_arg "Rng.substream: negative index";
  let keyed =
    Int64.add t.state (Int64.mul golden_gamma (Int64.of_int (i + 1)))
  in
  let probe = { state = keyed } in
  let s0 = bits64 probe in
  { state = s0 }

let copy t = { state = t.state }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  r mod bound

let int_range t lo hi =
  if hi < lo then invalid_arg "Rng.int_range: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (r /. 9007199254740992.0)

let bool t = Int64.logand (bits64 t) 1L = 1L

let exponential t mean =
  let u = ref (float t 1.0) in
  if !u <= 0.0 then u := 1e-12;
  -.mean *. log !u

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let weighted t choices =
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 choices in
  if total <= 0 then invalid_arg "Rng.weighted: no positive weight";
  let target = int t total in
  let rec go acc = function
    | [] -> invalid_arg "Rng.weighted: internal"
    | (w, x) :: rest -> if target < acc + w then x else go (acc + w) rest
  in
  go 0 choices

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
