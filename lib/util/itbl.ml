(* Open-addressing hash table keyed by non-negative ints: linear
   probing, power-of-two capacity, backward-shift deletion (no
   tombstones). The driver's dispatch index performs several keyed
   lookups per simulated I/O; [Stdlib.Hashtbl] pays a C call into the
   generic hash plus a bucket allocation per [replace], where this
   table is a pair of flat arrays with an inline multiplicative hash —
   no allocation on any operation except growth.

   Missing keys map to a caller-supplied [absent] value (for the
   driver's buckets, the empty list), which merges the usual
   [find_opt] + default dance into one probe. [absent] must never be
   [set]: use [remove] to restore a key to the absent state. *)

type 'a t = {
  mutable keys : int array;  (* -1 = empty slot *)
  mutable vals : 'a array;
  mutable mask : int;  (* capacity - 1; capacity is a power of two *)
  mutable size : int;
  absent : 'a;
}

let create ?(capacity = 16) ~absent () =
  let cap =
    let rec up c = if c >= capacity || c >= 1 lsl 30 then c else up (c * 2) in
    up 8
  in
  {
    keys = Array.make cap (-1);
    vals = Array.make cap absent;
    mask = cap - 1;
    size = 0;
    absent;
  }

(* Multiplicative mix; the xor-shift folds high bits down so keys with
   a common power-of-two stride (block-aligned lbns) still spread. *)
let[@inline] slot t k =
  let h = k * 0x9E3779B1 in
  (h lxor (h lsr 16)) land t.mask

let length t = t.size

let rec find_from t k i =
  let key = t.keys.(i) in
  if key = k then i
  else if key = -1 then -1
  else find_from t k ((i + 1) land t.mask)

let get t k =
  let i = find_from t k (slot t k) in
  if i < 0 then t.absent else t.vals.(i)

let mem t k = find_from t k (slot t k) >= 0

let grow t =
  let okeys = t.keys and ovals = t.vals in
  let cap = (t.mask + 1) * 2 in
  t.keys <- Array.make cap (-1);
  t.vals <- Array.make cap t.absent;
  t.mask <- cap - 1;
  Array.iteri
    (fun i k ->
      if k >= 0 then begin
        let j = ref (slot t k) in
        while t.keys.(!j) >= 0 do
          j := (!j + 1) land t.mask
        done;
        t.keys.(!j) <- k;
        t.vals.(!j) <- ovals.(i)
      end)
    okeys

let set t k v =
  if k < 0 then invalid_arg "Itbl.set: negative key";
  if 2 * (t.size + 1) > t.mask + 1 then grow t;
  let rec place i =
    let key = t.keys.(i) in
    if key = k then t.vals.(i) <- v
    else if key = -1 then begin
      t.keys.(i) <- k;
      t.vals.(i) <- v;
      t.size <- t.size + 1
    end
    else place ((i + 1) land t.mask)
  in
  place (slot t k)

let remove t k =
  let i = find_from t k (slot t k) in
  if i >= 0 then begin
    t.size <- t.size - 1;
    (* Backward-shift: walk the probe chain after the hole and pull
       back any entry whose home slot lies outside the cyclic range
       (hole, current]; repeat from the entry's old position. *)
    let mask = t.mask in
    let hole = ref i in
    let j = ref i in
    let finished = ref false in
    while not !finished do
      t.keys.(!hole) <- -1;
      t.vals.(!hole) <- t.absent;
      let moved = ref false in
      while not (!moved || !finished) do
        j := (!j + 1) land mask;
        let kj = t.keys.(!j) in
        if kj = -1 then finished := true
        else begin
          let h = slot t kj in
          let in_range =
            if !hole < !j then h > !hole && h <= !j
            else h > !hole || h <= !j
          in
          if not in_range then begin
            t.keys.(!hole) <- kj;
            t.vals.(!hole) <- t.vals.(!j);
            hole := !j;
            moved := true
          end
        end
      done
    done
  end

let iter f t =
  Array.iteri (fun i k -> if k >= 0 then f k t.vals.(i)) t.keys
