type 'a node = {
  value : 'a;
  mutable stamp : int;
  mutable prev : 'a node option;
  mutable next : 'a node option;
  mutable in_list : bool;
}

type 'a t = {
  mutable head : 'a node option;
  mutable tail : 'a node option;
  mutable length : int;
}

let make ?(stamp = 0) value =
  { value; stamp; prev = None; next = None; in_list = false }

let create () = { head = None; tail = None; length = 0 }
let length t = t.length
let is_empty t = t.length = 0

let append t n =
  if n.in_list then invalid_arg "Lru.append: node already in a list";
  n.prev <- t.tail;
  n.next <- None;
  (match t.tail with
   | None -> t.head <- Some n
   | Some tl -> tl.next <- Some n);
  t.tail <- Some n;
  n.in_list <- true;
  t.length <- t.length + 1

let remove t n =
  if n.in_list then begin
    (match n.prev with
     | None -> t.head <- n.next
     | Some p -> p.next <- n.next);
    (match n.next with
     | None -> t.tail <- n.prev
     | Some nx -> nx.prev <- n.prev);
    n.prev <- None;
    n.next <- None;
    n.in_list <- false;
    t.length <- t.length - 1
  end

let insert_after t p n =
  n.prev <- Some p;
  n.next <- p.next;
  (match p.next with
   | None -> t.tail <- Some n
   | Some nx -> nx.prev <- Some n);
  p.next <- Some n;
  n.in_list <- true;
  t.length <- t.length + 1

let insert_by_stamp t n =
  if n.in_list then invalid_arg "Lru.insert_by_stamp: node already in a list";
  (* walk from the tail so insertions with a fresh (maximal) stamp —
     the common case — are O(1) *)
  let rec find_pred = function
    | None -> None
    | Some c -> if c.stamp <= n.stamp then Some c else find_pred c.prev
  in
  match find_pred t.tail with
  | Some p -> insert_after t p n
  | None ->
    n.prev <- None;
    n.next <- t.head;
    (match t.head with
     | None -> t.tail <- Some n
     | Some h -> h.prev <- Some n);
    t.head <- Some n;
    n.in_list <- true;
    t.length <- t.length + 1

let head t = Option.map (fun n -> n.value) t.head

let iter f t =
  let rec go = function
    | None -> ()
    | Some n ->
      let nx = n.next in
      f n.value;
      go nx
  in
  go t.head

let find f t =
  let rec go = function
    | None -> None
    | Some n -> if f n.value then Some n.value else go n.next
  in
  go t.head

let to_list t =
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go (n.value :: acc) n.next
  in
  go [] t.head

let stamps t =
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go (n.stamp :: acc) n.next
  in
  go [] t.head
