(** Intrusive doubly-linked recency lists.

    A node is embedded in the object it tracks (the object holds the
    node, the node holds the object), so membership updates are O(1)
    pointer surgery with no allocation and no auxiliary table. Lists
    are kept ordered by ascending [stamp] — a recency counter assigned
    by the owner — so the head is always the least recently used
    element. Moving a node to the tail with a fresh maximal stamp is
    O(1) ({!remove} + {!append}); migrating a node between lists while
    keeping its old stamp ({!insert_by_stamp}) walks from the tail and
    is O(1) when the stamp is fresh.

    The caller owns the stamp discipline: {!append} does not check
    that the new node's stamp exceeds the tail's. *)

type 'a node = {
  value : 'a;
  mutable stamp : int;
  mutable prev : 'a node option;
  mutable next : 'a node option;
  mutable in_list : bool;
}

type 'a t

val make : ?stamp:int -> 'a -> 'a node
(** A detached node ([stamp] defaults to [0]). *)

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val append : 'a t -> 'a node -> unit
(** Add at the tail (most recent end).
    @raise Invalid_argument if the node is already in a list. *)

val insert_by_stamp : 'a t -> 'a node -> unit
(** Insert keeping the list sorted by ascending stamp, walking from
    the tail.
    @raise Invalid_argument if the node is already in a list. *)

val remove : 'a t -> 'a node -> unit
(** Unlink; a no-op when the node is not in a list. *)

val head : 'a t -> 'a option
(** Least recently used element. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Head to tail; safe against removal of the visited node. *)

val find : ('a -> bool) -> 'a t -> 'a option
(** First match walking from the head (least recent first). *)

val to_list : 'a t -> 'a list
(** Values, head (least recent) to tail. *)

val stamps : 'a t -> int list
(** Stamps, head to tail (testing / debugging). *)
