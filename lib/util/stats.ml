type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

let create () =
  { n = 0; mean = 0.0; m2 = 0.0; sum = 0.0; min_v = infinity; max_v = neg_infinity }

let add t x =
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min_v then t.min_v <- x;
  if x > t.max_v then t.max_v <- x

let count t = t.n
let total t = t.sum
let mean t = if t.n = 0 then 0.0 else t.mean

let stdev t =
  if t.n < 2 then 0.0 else sqrt (t.m2 /. float_of_int (t.n - 1))

let coeff_var t =
  let m = mean t in
  if m = 0.0 then 0.0 else stdev t /. m

(* 0.0, not ±inf, on an empty population: these feed printf cells and
   JSON records directly *)
let min_value t = if t.n = 0 then 0.0 else t.min_v
let max_value t = if t.n = 0 then 0.0 else t.max_v

let of_list xs =
  let t = create () in
  List.iter (add t) xs;
  t

let percentile xs p =
  match List.sort Float.compare xs with
  | [] -> 0.0
  | sorted ->
    let n = List.length sorted in
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    let rank = if rank < 1 then 1 else if rank > n then n else rank in
    List.nth sorted (rank - 1)

let mean_of xs = mean (of_list xs)
