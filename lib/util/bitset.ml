(* Hierarchical bitset over a dense non-negative integer universe.

   The driver's dispatch index needs three operations at event rates:
   membership, set/clear, and "smallest member >= i" (C-LOOK head
   selection, FCFS minimum, WAW interval scans). Functional Int sets
   give O(log n) with an allocation per operation; this structure
   gives O(1) set/clear/mem and O(levels) next_geq with zero
   allocation.

   Layout: [levels.(0)] holds the membership bits, 32 per word (32
   rather than 63 so word/bit splits are single shifts/masks on any
   OCaml int width). Each word of [levels.(k+1)] summarizes 32 words
   of [levels.(k)] — bit [j] of [levels.(k+1).(w)] is set iff
   [levels.(k).(w*32+j)] is nonzero — and the top level is a single
   word, so an empty region is skipped 32x faster per level up.
   Capacity doubles on demand; summaries for the existing prefix stay
   valid across growth because new words are zero. *)

type t = { mutable levels : int array array }

let create ?(capacity = 0) () =
  let t = { levels = [||] } in
  if capacity > 0 then begin
    (* build via the growth path below *)
    let rec sizes acc n = if n <= 1 then 1 :: acc else sizes (n :: acc) ((n + 31) / 32) in
    let words = (capacity + 31) / 32 in
    let lvls = sizes [] words |> List.rev in
    t.levels <- Array.of_list (List.map (fun n -> Array.make n 0) lvls)
  end;
  t

let capacity t =
  if Array.length t.levels = 0 then 0 else 32 * Array.length t.levels.(0)

let is_empty t =
  let nl = Array.length t.levels in
  nl = 0 || t.levels.(nl - 1).(0) = 0

(* Grow so that bit [i] is addressable: double the word count until it
   covers [i], rebuild the level arrays and copy the old prefixes. *)
let grow t i =
  let old_words = if Array.length t.levels = 0 then 0 else Array.length t.levels.(0) in
  let words = ref (max 1 old_words) in
  while !words * 32 <= i do
    words := !words * 2
  done;
  let rec sizes acc n = if n <= 1 then 1 :: acc else sizes (n :: acc) ((n + 31) / 32) in
  let lvls = sizes [] !words |> List.rev in
  let nlevels = Array.of_list (List.map (fun n -> Array.make n 0) lvls) in
  Array.iteri
    (fun k old ->
      Array.blit old 0 nlevels.(k) 0 (Array.length old))
    t.levels;
  t.levels <- nlevels

let mem t i =
  i >= 0
  && Array.length t.levels > 0
  && i lsr 5 < Array.length t.levels.(0)
  && t.levels.(0).(i lsr 5) land (1 lsl (i land 31)) <> 0

let set t i =
  if i < 0 then invalid_arg "Bitset.set: negative index";
  if i >= capacity t then grow t i;
  let nlevels = Array.length t.levels in
  let rec up lvl i =
    let w = i lsr 5 and b = i land 31 in
    let a = t.levels.(lvl) in
    let old = a.(w) in
    a.(w) <- old lor (1 lsl b);
    (* a word that was already nonzero is already summarized above *)
    if old = 0 && lvl + 1 < nlevels then up (lvl + 1) w
  in
  up 0 i

let clear t i =
  if i >= 0 && i < capacity t then begin
    let nlevels = Array.length t.levels in
    let rec up lvl i =
      let w = i lsr 5 and b = i land 31 in
      let a = t.levels.(lvl) in
      let nw = a.(w) land lnot (1 lsl b) in
      a.(w) <- nw;
      if nw = 0 && lvl + 1 < nlevels then up (lvl + 1) w
    in
    up 0 i
  end

(* Number of trailing zeros of a nonzero 32-bit value, branch-chain
   binary search — no table, no allocation. *)
let ntz m =
  let x = m land (-m) in
  let n = ref 31 in
  if x land 0x0000FFFF <> 0 then n := !n - 16;
  if x land 0x00FF00FF <> 0 then n := !n - 8;
  if x land 0x0F0F0F0F <> 0 then n := !n - 4;
  if x land 0x33333333 <> 0 then n := !n - 2;
  if x land 0x55555555 <> 0 then n := !n - 1;
  !n

let next_geq t i =
  let i = if i < 0 then 0 else i in
  let nlevels = Array.length t.levels in
  if nlevels = 0 then -1
  else begin
    (* Climb: at [lvl], look for a set bit at position >= idx; within
       the current word it is a mask test, otherwise the next word up
       a level summarizes everything to the right. Descend: a set
       summary bit names a nonzero word below; follow lowest bits back
       to level 0. *)
    let rec up lvl idx =
      if lvl >= nlevels then -1
      else
        let w = idx lsr 5 in
        let a = t.levels.(lvl) in
        if w >= Array.length a then -1
        else
          let m = a.(w) land ((-1) lsl (idx land 31)) in
          if m <> 0 then down lvl ((w lsl 5) lor ntz m)
          else up (lvl + 1) (w + 1)
    and down lvl pos =
      if lvl = 0 then pos
      else
        let m = t.levels.(lvl - 1).(pos) in
        down (lvl - 1) ((pos lsl 5) lor ntz m)
    in
    up 0 i
  end

let min_elt t = next_geq t 0

let iter t f =
  let rec go i = match next_geq t i with -1 -> () | j -> f j; go (j + 1) in
  go 0
