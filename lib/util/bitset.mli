(** Hierarchical bitset over non-negative ints.

    A mutable set of small dense integers (request ids, logical block
    numbers) supporting O(1) {!set}/{!clear}/{!mem} and
    O(levels){!next_geq}, all allocation-free — the driver's dispatch
    index runs on these instead of functional [Set]/[Map] structures.
    Membership words are backed by flat int arrays with one summary
    level per 32x fan-out, so successor queries skip empty regions a
    word at a time at every level. Capacity grows automatically (and
    never shrinks). *)

type t

val create : ?capacity:int -> unit -> t
(** Fresh empty set; [capacity] preallocates room for indices
    [0 .. capacity-1] (it is a hint — sets beyond it grow the
    structure). *)

val capacity : t -> int
(** Current addressable universe size (multiple of 32). *)

val mem : t -> int -> bool
(** Membership; indices outside the current capacity (or negative)
    are not members. *)

val set : t -> int -> unit
(** Add an index, growing if needed. Negative indices are an error. *)

val clear : t -> int -> unit
(** Remove an index; out-of-range indices are a no-op. *)

val next_geq : t -> int -> int
(** [next_geq t i] is the smallest member [>= i], or [-1] if none.
    Negative [i] is treated as [0]. *)

val min_elt : t -> int
(** Smallest member, or [-1] if empty. *)

val is_empty : t -> bool

val iter : t -> (int -> unit) -> unit
(** Apply to every member in increasing order. *)
