(** Running statistics accumulators and small helpers for reporting. *)

type t
(** Accumulates count, mean, variance (Welford), min and max. *)

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val total : t -> float
val mean : t -> float
(** 0.0 when empty. *)

val stdev : t -> float
(** Sample standard deviation; 0.0 with fewer than two samples. *)

val coeff_var : t -> float
(** stdev / mean; 0.0 when the mean is zero. *)

val min_value : t -> float
(** 0.0 when empty (never [inf] — the value feeds report cells). *)

val max_value : t -> float
(** 0.0 when empty (never [-inf]). *)

val of_list : float list -> t

val percentile : float list -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]], nearest-rank on a sorted
    copy. 0.0 for an empty list. *)

val mean_of : float list -> float
