let recommended () = Domain.recommended_domain_count ()

let resolve_jobs = function
  | 0 -> recommended ()
  | j when j < 0 -> invalid_arg "Pool.resolve_jobs: negative jobs"
  | j -> j

(* Domain-local flag: set for the lifetime of a worker domain so a
   nested map degrades to serial execution instead of spawning domains
   from domains. *)
let worker_key = Domain.DLS.new_key (fun () -> false)

let in_worker () = Domain.DLS.get worker_key

exception Job_failure of int * exn

let run_serial ~init n f =
  let s = init () in
  Array.init n (fun i -> f s i)

let run_parallel ~jobs ~init n f =
  let results = Array.make n None in
  let next = Atomic.make 0 in
  (* first-failing-index exception, so error reporting is as
     deterministic as the results; once a failure is recorded, workers
     stop claiming new indices *)
  let failure : (int * exn) option Atomic.t = Atomic.make None in
  let failure_mu = Mutex.create () in
  let record_failure i e =
    Mutex.lock failure_mu;
    (match Atomic.get failure with
     | Some (j, _) when j <= i -> ()
     | Some _ | None -> Atomic.set failure (Some (i, e)));
    Mutex.unlock failure_mu
  in
  let worker () =
    (* the calling domain doubles as a worker: restore its flag on exit *)
    Domain.DLS.set worker_key true;
    Fun.protect
      ~finally:(fun () -> Domain.DLS.set worker_key false)
      (fun () ->
        match init () with
        | exception e -> record_failure (-1) e
        | s ->
          let rec loop () =
            if Atomic.get failure = None then begin
              let i = Atomic.fetch_and_add next 1 in
              if i < n then begin
                (match f s i with
                 | v -> results.(i) <- Some v
                 | exception e -> record_failure i e);
                loop ()
              end
            end
          in
          loop ())
  in
  let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  Array.iter Domain.join domains;
  match Atomic.get failure with
  | Some (i, e) -> raise (Job_failure (i, e))
  | None ->
    Array.map
      (function
        | Some v -> v
        | None -> invalid_arg "Pool.map: missing result")
      results

let map_with ?(jobs = 1) ~init n f =
  if n < 0 then invalid_arg "Pool.map: negative count";
  let jobs = resolve_jobs jobs in
  if n = 0 then [||]
  else if jobs <= 1 || n = 1 || in_worker () then run_serial ~init n f
  else
    match run_parallel ~jobs:(min jobs n) ~init n f with
    | r -> r
    | exception Job_failure (_, e) -> raise e

let map ?jobs n f = map_with ?jobs ~init:(fun () -> ()) n (fun () i -> f i)
