type t = {
  title : string;
  headers : string list;
  mutable rows : string list list;
}

let create ~title ~headers = { title; headers; rows = [] }

let normalize width row =
  let len = List.length row in
  if len = width then row
  else if len < width then row @ List.init (width - len) (fun _ -> "")
  else List.filteri (fun i _ -> i < width) row

let add_row t row =
  t.rows <- normalize (List.length t.headers) row :: t.rows

let render t =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri (fun i cell ->
        if i < ncols && String.length cell > widths.(i) then
          widths.(i) <- String.length cell)
      row
  in
  List.iter measure all;
  let buf = Buffer.create 256 in
  Buffer.add_string buf t.title;
  Buffer.add_char buf '\n';
  let pad i cell =
    let w = widths.(i) in
    let n = w - String.length cell in
    if i = 0 then cell ^ String.make n ' ' else String.make n ' ' ^ cell
  in
  let emit row =
    List.iteri (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad i cell))
      row;
    Buffer.add_char buf '\n'
  in
  emit t.headers;
  let total = Array.fold_left ( + ) 0 widths + (2 * (ncols - 1)) in
  Buffer.add_string buf (String.make total '-');
  Buffer.add_char buf '\n';
  List.iter emit rows;
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()

let cell_f ?(dec = 1) x =
  (* an empty population upstream (no sync writes, zero-sample stats)
     must never leak "nan"/"inf" into a report cell *)
  if Float.is_nan x || x = infinity || x = neg_infinity then "-"
  else Printf.sprintf "%.*f" dec x

let cell_i n = string_of_int n

let title t = t.title
let headers t = t.headers
let rows t = List.rev t.rows
