type t = { mutable rev : Json.t list; mutable n : int }

let create () = { rev = []; n = 0 }

let emit t ~t_sim ~kind fields =
  let ev = Json.Obj (("t", Json.Float t_sim) :: ("kind", Json.Str kind) :: fields) in
  t.rev <- ev :: t.rev;
  t.n <- t.n + 1

let count t = t.n

let kind_of ev =
  match Json.member "kind" ev with Some (Json.Str k) -> Some k | _ -> None

let count_kind t k =
  List.fold_left
    (fun acc ev -> if kind_of ev = Some k then acc + 1 else acc)
    0 t.rev

let count_kind_since_marker t ~marker ~kind =
  (* t.rev is newest-first: count [kind] events until we hit the most
     recent [marker]. *)
  let rec loop acc = function
    | [] -> acc
    | ev :: rest -> (
      match kind_of ev with
      | Some k when k = marker -> acc
      | Some k when k = kind -> loop (acc + 1) rest
      | _ -> loop acc rest)
  in
  loop 0 t.rev

let events t = List.rev t.rev
let to_lines t = List.rev_map Json.to_string t.rev

let write_jsonl t oc =
  List.iter
    (fun line ->
      output_string oc line;
      output_char oc '\n')
    (to_lines t);
  flush oc

let clear t =
  t.rev <- [];
  t.n <- 0
