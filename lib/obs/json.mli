(** A minimal JSON value type with a compact printer and a parser —
    enough for the simulator's structured output (measurement records,
    table dumps, JSONL traces) without an external dependency.

    Rendering is deterministic: object fields print in the order
    given, floats use the shortest representation that round-trips
    exactly, and non-finite floats render as [null] (no cell of any
    machine-readable output may carry [nan]/[inf]). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact, single-line. *)

val to_string_pretty : t -> string
(** Two-space indentation; deterministic. *)

val parse : string -> (t, string) result
(** Strict parser for the subset this module prints (standard JSON;
    numbers with a ['.'] or exponent parse as [Float], others as
    [Int]). The error string carries a character offset. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] elsewhere. *)

val get : string -> t -> t
(** Like {!member} but raises [Not_found]. *)

val to_float : t -> float option
(** [Int] and [Float] both convert; everything else is [None]. *)

val to_int : t -> int option
val to_str : t -> string option
val to_list : t -> t list option

val equal : t -> t -> bool
(** Structural equality; object field order is significant (rendering
    is deterministic, so round-tripping preserves order). *)
