type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Shortest decimal form that round-trips exactly; always contains a
   '.' or 'e' so the parser reads it back as a Float. *)
let float_repr x =
  if Float.is_integer x && Float.abs x < 1e16 then
    Printf.sprintf "%.1f" x
  else
    let s = Printf.sprintf "%.15g" x in
    let s = if float_of_string s = x then s else Printf.sprintf "%.17g" x in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"

let number_to buf x =
  if Float.is_nan x || x = infinity || x = neg_infinity then
    Buffer.add_string buf "null"
  else Buffer.add_string buf (float_repr x)

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x -> number_to buf x
  | Str s -> escape_to buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        write buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        write buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

let rec write_pretty buf indent = function
  | List ([] as _xs) -> Buffer.add_string buf "[]"
  | Obj [] -> Buffer.add_string buf "{}"
  | List xs ->
    let pad = String.make (indent + 2) ' ' in
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf pad;
        write_pretty buf (indent + 2) x)
      xs;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (String.make indent ' ');
    Buffer.add_char buf ']'
  | Obj kvs ->
    let pad = String.make (indent + 2) ' ' in
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf pad;
        escape_to buf k;
        Buffer.add_string buf ": ";
        write_pretty buf (indent + 2) v)
      kvs;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (String.make indent ' ');
    Buffer.add_char buf '}'
  | v -> write buf v

let to_string_pretty v =
  let buf = Buffer.create 256 in
  write_pretty buf 0 v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char buf '"'; advance ()
             | '\\' -> Buffer.add_char buf '\\'; advance ()
             | '/' -> Buffer.add_char buf '/'; advance ()
             | 'n' -> Buffer.add_char buf '\n'; advance ()
             | 'r' -> Buffer.add_char buf '\r'; advance ()
             | 't' -> Buffer.add_char buf '\t'; advance ()
             | 'b' -> Buffer.add_char buf '\b'; advance ()
             | 'f' -> Buffer.add_char buf '\012'; advance ()
             | 'u' ->
               advance ();
               if !pos + 4 > n then fail "truncated \\u escape";
               let hex = String.sub s !pos 4 in
               let code =
                 try int_of_string ("0x" ^ hex)
                 with _ -> fail "bad \\u escape"
               in
               pos := !pos + 4;
               (* Encode the code point as UTF-8 (BMP only; surrogate
                  pairs are not produced by our printer). *)
               if code < 0x80 then Buffer.add_char buf (Char.chr code)
               else if code < 0x800 then begin
                 Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
               end
               else begin
                 Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                 Buffer.add_char buf
                   (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
               end
             | c -> fail (Printf.sprintf "bad escape \\%C" c));
          loop ()
        | c ->
          Buffer.add_char buf c;
          advance ();
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' -> true
      | '.' | 'e' | 'E' | '+' | '-' ->
        is_float := true;
        true
      | _ -> false
    do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" tok)
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "bad number %S" tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ()
          | Some '}' -> advance ()
          | _ -> fail "expected ',' or '}'"
        in
        members ();
        Obj (List.rev !fields)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elements ()
          | Some ']' -> advance ()
          | _ -> fail "expected ',' or ']'"
        in
        elements ();
        List (List.rev !items)
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing data at offset %d" !pos)
    else Ok v
  with Parse_error (off, msg) ->
    Error (Printf.sprintf "parse error at offset %d: %s" off msg)

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

let get k v =
  match member k v with Some x -> x | None -> raise Not_found

let to_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

let to_int = function Int i -> Some i | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_list = function List xs -> Some xs | _ -> None

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool a, Bool b -> a = b
  | Int a, Int b -> a = b
  | Float a, Float b -> a = b || (Float.is_nan a && Float.is_nan b)
  | Str a, Str b -> String.equal a b
  | List a, List b -> List.equal equal a b
  | Obj a, Obj b ->
    List.equal (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2) a b
  | _ -> false
