type t = {
  base : float;
  counts : int array;
  mutable n : int;
  mutable ndropped : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

let create ?(base = 1e-6) ?(buckets = 64) () =
  if base <= 0.0 then invalid_arg "Hist.create: base must be positive";
  if buckets < 2 then invalid_arg "Hist.create: need at least two buckets";
  {
    base;
    counts = Array.make buckets 0;
    n = 0;
    ndropped = 0;
    sum = 0.0;
    min_v = infinity;
    max_v = neg_infinity;
  }

let bucket_of t x =
  if x < t.base then 0
  else
    let i = 1 + int_of_float (Float.log2 (x /. t.base)) in
    min i (Array.length t.counts - 1)

(* upper bound of bucket [i] *)
let bucket_hi t i = t.base *. (2.0 ** float_of_int i)

let add t x =
  if Float.is_nan x || x < 0.0 || x = infinity then
    t.ndropped <- t.ndropped + 1
  else begin
    t.counts.(bucket_of t x) <- t.counts.(bucket_of t x) + 1;
    t.n <- t.n + 1;
    t.sum <- t.sum +. x;
    if x < t.min_v then t.min_v <- x;
    if x > t.max_v then t.max_v <- x
  end

let count t = t.n
let dropped t = t.ndropped
let sum t = t.sum
let mean t = if t.n = 0 then 0.0 else t.sum /. float_of_int t.n
let min_value t = if t.n = 0 then 0.0 else t.min_v
let max_value t = if t.n = 0 then 0.0 else t.max_v

let percentile t p =
  if t.n = 0 then 0.0
  else begin
    let p = Float.max 0.0 (Float.min 100.0 p) in
    if p = 0.0 then t.min_v
    else if p = 100.0 then t.max_v
    else
    let rank =
      let r = int_of_float (ceil (p /. 100.0 *. float_of_int t.n)) in
      if r < 1 then 1 else r
    in
    let i = ref 0 and seen = ref 0 in
    while !seen < rank && !i < Array.length t.counts do
      seen := !seen + t.counts.(!i);
      incr i
    done;
    let b = !i - 1 in
    (* geometric midpoint of the bucket, clamped to observed extremes *)
    let hi = bucket_hi t b in
    let lo = if b = 0 then t.base /. 2.0 else bucket_hi t (b - 1) in
    let est = sqrt (lo *. hi) in
    Float.max t.min_v (Float.min t.max_v est)
  end

let merge_into ~dst src =
  if dst.base <> src.base || Array.length dst.counts <> Array.length src.counts
  then invalid_arg "Hist.merge_into: incompatible histograms";
  Array.iteri (fun i c -> dst.counts.(i) <- dst.counts.(i) + c) src.counts;
  dst.n <- dst.n + src.n;
  dst.ndropped <- dst.ndropped + src.ndropped;
  dst.sum <- dst.sum +. src.sum;
  if src.min_v < dst.min_v then dst.min_v <- src.min_v;
  if src.max_v > dst.max_v then dst.max_v <- src.max_v

let clear t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.n <- 0;
  t.ndropped <- 0;
  t.sum <- 0.0;
  t.min_v <- infinity;
  t.max_v <- neg_infinity

let buckets t =
  let acc = ref [] in
  for i = Array.length t.counts - 1 downto 0 do
    if t.counts.(i) > 0 then acc := (bucket_hi t i, t.counts.(i)) :: !acc
  done;
  !acc
