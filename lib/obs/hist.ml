(* The scalar accumulators (sum/min/max) live in a [floatarray]: in a
   record that also holds non-float fields, mutable float members are
   boxed and every store allocates; the flat float array keeps
   [add] — called several times per simulated I/O — allocation-free. *)
type t = {
  base : float;
  counts : int array;
  mutable n : int;
  mutable ndropped : int;
  fl : floatarray;  (* 0 = sum, 1 = min, 2 = max *)
}

let sum t = Float.Array.get t.fl 0
let raw_min t = Float.Array.get t.fl 1
let raw_max t = Float.Array.get t.fl 2

let reset_fl t =
  Float.Array.set t.fl 0 0.0;
  Float.Array.set t.fl 1 infinity;
  Float.Array.set t.fl 2 neg_infinity

let create ?(base = 1e-6) ?(buckets = 64) () =
  if base <= 0.0 then invalid_arg "Hist.create: base must be positive";
  if buckets < 2 then invalid_arg "Hist.create: need at least two buckets";
  let t =
    { base; counts = Array.make buckets 0; n = 0; ndropped = 0;
      fl = Float.Array.create 3 }
  in
  reset_fl t;
  t

(* For y >= 1, [1 + floor(log2 y)] is the bit width of the integer
   part of y, so the log bucket costs integer shifts instead of a libm
   [log2] call — [add] runs three or four times per completed I/O on
   the driver's completion path. Quotients at or beyond 2^62 (beyond
   [int_of_float] range) saturate into the last bucket, which a
   64-bucket histogram would do anyway. *)
let bucket_of t x =
  if x < t.base then 0
  else
    let y = x /. t.base in
    let last = Array.length t.counts - 1 in
    if y >= 0x1p62 then last
    else begin
      let v = ref (int_of_float y) and w = ref 0 in
      while !v > 0 do
        incr w;
        v := !v lsr 1
      done;
      if !w < last then !w else last
    end

(* upper bound of bucket [i] *)
let bucket_hi t i = t.base *. (2.0 ** float_of_int i)

let add t x =
  if Float.is_nan x || x < 0.0 || x = infinity then
    t.ndropped <- t.ndropped + 1
  else begin
    let b = bucket_of t x in
    t.counts.(b) <- t.counts.(b) + 1;
    t.n <- t.n + 1;
    Float.Array.set t.fl 0 (Float.Array.get t.fl 0 +. x);
    if x < Float.Array.get t.fl 1 then Float.Array.set t.fl 1 x;
    if x > Float.Array.get t.fl 2 then Float.Array.set t.fl 2 x
  end

(* For [base = 1.0] the bucket of an integer sample is its bit width
   (1 + floor(log2 d)), computed here with shifts so recording an
   integer sample — the driver's per-dispatch queue depth — costs no
   libm call and no float comparison chain. Any other base falls back
   to [add]. *)
let add_int t d =
  if d < 0 then t.ndropped <- t.ndropped + 1
  else if t.base <> 1.0 then add t (float_of_int d)
  else begin
    let b =
      let v = ref d and w = ref 0 in
      while !v > 0 do
        incr w;
        v := !v lsr 1
      done;
      let last = Array.length t.counts - 1 in
      if !w < last then !w else last
    in
    t.counts.(b) <- t.counts.(b) + 1;
    t.n <- t.n + 1;
    let x = float_of_int d in
    Float.Array.set t.fl 0 (Float.Array.get t.fl 0 +. x);
    if x < Float.Array.get t.fl 1 then Float.Array.set t.fl 1 x;
    if x > Float.Array.get t.fl 2 then Float.Array.set t.fl 2 x
  end

let count t = t.n
let dropped t = t.ndropped
let mean t = if t.n = 0 then 0.0 else sum t /. float_of_int t.n
let min_value t = if t.n = 0 then 0.0 else raw_min t
let max_value t = if t.n = 0 then 0.0 else raw_max t

let percentile t p =
  if t.n = 0 then 0.0
  else begin
    let p = Float.max 0.0 (Float.min 100.0 p) in
    if p = 0.0 then raw_min t
    else if p = 100.0 then raw_max t
    else
    let rank =
      let r = int_of_float (ceil (p /. 100.0 *. float_of_int t.n)) in
      if r < 1 then 1 else r
    in
    let i = ref 0 and seen = ref 0 in
    while !seen < rank && !i < Array.length t.counts do
      seen := !seen + t.counts.(!i);
      incr i
    done;
    let b = !i - 1 in
    (* geometric midpoint of the bucket, clamped to observed extremes *)
    let hi = bucket_hi t b in
    let lo = if b = 0 then t.base /. 2.0 else bucket_hi t (b - 1) in
    let est = sqrt (lo *. hi) in
    Float.max (raw_min t) (Float.min (raw_max t) est)
  end

let merge_into ~dst src =
  if dst.base <> src.base || Array.length dst.counts <> Array.length src.counts
  then invalid_arg "Hist.merge_into: incompatible histograms";
  Array.iteri (fun i c -> dst.counts.(i) <- dst.counts.(i) + c) src.counts;
  dst.n <- dst.n + src.n;
  dst.ndropped <- dst.ndropped + src.ndropped;
  Float.Array.set dst.fl 0 (sum dst +. sum src);
  if raw_min src < raw_min dst then Float.Array.set dst.fl 1 (raw_min src);
  if raw_max src > raw_max dst then Float.Array.set dst.fl 2 (raw_max src)

let copy t =
  let fl = Float.Array.create 3 in
  Float.Array.blit t.fl 0 fl 0 3;
  { t with counts = Array.copy t.counts; fl }

let merge a b =
  let t = copy a in
  merge_into ~dst:t b;
  t

let clear t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.n <- 0;
  t.ndropped <- 0;
  reset_fl t

let buckets t =
  let acc = ref [] in
  for i = Array.length t.counts - 1 downto 0 do
    if t.counts.(i) > 0 then acc := (bucket_hi t i, t.counts.(i)) :: !acc
  done;
  !acc
