(** Log-bucketed latency/size histograms.

    Fixed power-of-two bucket boundaries starting at [base] (default
    1 µs for latencies in seconds), so [add] is O(1), memory is
    constant, and two histograms over the same base can be merged
    exactly. Count, sum (hence mean), min and max are tracked exactly;
    percentiles are bucket-resolution approximations (the geometric
    midpoint of the bucket containing the requested rank, clamped to
    the exact observed min/max).

    Recording into a histogram never touches simulated time — it is
    pure accumulation, safe to call from engine context. *)

type t

val create : ?base:float -> ?buckets:int -> unit -> t
(** [base] is the upper bound of the first bucket (default [1e-6]);
    bucket [i] covers [[base * 2^(i-1), base * 2^i)]. Values below
    land in bucket 0, values beyond the last bucket in the last.
    Default 64 buckets (covers 1 µs to ~2e13 s). *)

val add : t -> float -> unit
(** Record a non-negative sample. Negative or non-finite samples are
    counted in [dropped] and otherwise ignored. *)

val add_int : t -> int -> unit
(** [add_int t d] records [float_of_int d], bucketed identically to
    [add], but when [base = 1.0] the bucket index is computed with
    integer shifts — no libm call. Negative samples are dropped. *)

val count : t -> int
val dropped : t -> int
val sum : t -> float

val mean : t -> float
(** Exact; 0.0 when empty. *)

val min_value : t -> float
(** Exact; 0.0 when empty (never [inf]). *)

val max_value : t -> float
(** Exact; 0.0 when empty (never [-inf]). *)

val percentile : t -> float -> float
(** [percentile t p] with [p] in [\[0,100\]]: nearest-rank percentile
    at bucket resolution; [p = 0] and [p = 100] return the exact
    observed min/max. 0.0 when empty; always finite. *)

val merge_into : dst:t -> t -> unit
(** Add every bucket and moment of the source into [dst]. The two must
    share [base] and bucket count. *)

val copy : t -> t
(** Independent deep copy: mutating either histogram afterwards leaves
    the other untouched. *)

val merge : t -> t -> t
(** [merge a b] is a fresh histogram holding both sample sets: buckets
    are added pairwise and count/sum/min/max combine exactly, so
    parallel workers can accumulate independently and merge in any
    grouping without changing the result (up to float-addition order
    in [sum]). Neither argument is modified. The two must share [base]
    and bucket count.
    @raise Invalid_argument on incompatible histograms. *)

val clear : t -> unit

val buckets : t -> (float * int) list
(** Non-empty buckets as [(upper_bound, count)], ascending. *)
