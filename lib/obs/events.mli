(** Simulated-clock JSONL event trace.

    A sink is an in-memory buffer of JSON event records. Layers that
    hold a sink emit one event per interesting transition (FS op,
    cache state change, disk request issue/start/complete). Every
    event carries the simulated time [t] and a dotted event [kind]
    ("fs.create", "cache.evict", "io.complete", ...), plus arbitrary
    extra fields.

    Emission is pure accumulation — it never advances simulated time
    or schedules work, so instrumented and uninstrumented runs are
    bit-identical. Under [--jobs], each worker world gets its own sink
    and files are written whole-lines-at-a-time, so concatenated
    outputs stay parseable line-by-line. *)

type t

val create : unit -> t

val emit : t -> t_sim:float -> kind:string -> (string * Json.t) list -> unit
(** Append one event. The record is [{"t": t_sim, "kind": kind, ...fields}]. *)

val count : t -> int
(** Total events emitted. *)

val count_kind : t -> string -> int
(** Events whose [kind] equals the argument. *)

val count_kind_since_marker : t -> marker:string -> kind:string -> int
(** Events of [kind] emitted after the last event of kind [marker]
    (all of them if no marker event exists). Used to replay request
    counts after a [trace.reset]. *)

val events : t -> Json.t list
(** In emission order. *)

val to_lines : t -> string list
(** One compact JSON document per event, in emission order. *)

val write_jsonl : t -> out_channel -> unit
(** Write [to_lines], newline-terminated, and flush. *)

val clear : t -> unit
