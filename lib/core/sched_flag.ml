open Su_cache

let make cache =
  let flagged_write b = ignore (Bcache.bawrite ~flagged:true cache b) in
  {
    Scheme_intf.name = "Scheduler Flag";
    link_add = (fun ~dir:_ ~slot:_ ~ibuf ~inum:_ -> flagged_write ibuf);
    link_remove =
      (fun ~dir ~slot:_ ~inum:_ ~ibuf:_ ~parent_inum:_ ~parent_ibuf:_
           ~decrement ->
        (* the flagged entry write goes ahead of every delayed inode
           write the decrement leaves behind (the removed inode and,
           for rmdir, the parent's) *)
        flagged_write dir;
        decrement ());
    link_change =
      (fun ~dir ~slot:_ ~ibuf ~inum:_ ~old_entry:_ ~old_ibuf:_ ~decrement ->
        (* new target's inode flagged ahead of the (delayed) entry
           write; entry flagged ahead of the old target's (delayed)
           decremented inode *)
        flagged_write ibuf;
        flagged_write dir;
        decrement ());
    (* the dots block's initialising write is flagged ahead of the
       parent-entry write by the allocation hook below *)
    (* a size/mtime-only change has no dependent structure: the
       delayed inode write needs no ordering *)
    attr_update = (fun ~ibuf:_ ~inum:_ -> ());
    mkdir_body = (fun ~body:_ ~inum:_ -> ());
    block_alloc =
      (fun req ->
        if req.Scheme_intf.init_required then flagged_write req.Scheme_intf.data;
        if req.Scheme_intf.freed <> [] then flagged_write req.Scheme_intf.owner;
        req.Scheme_intf.free_moved ());
    block_dealloc =
      (fun ~ibuf ~inum:_ ~runs:_ ~inode_freed:_ ~do_free ->
        flagged_write ibuf;
        do_free ());
    reuse_frag_deps = (fun _ -> []);
    reuse_inode_deps = (fun _ -> []);
    fsync = Scheme_intf.sync_write_fsync cache;
  }
