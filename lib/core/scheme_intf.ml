(** The ordering-scheme abstraction.

    The file system performs every metadata mutation on in-memory
    buffers first, marks the affected buffers dirty (delayed writes),
    and then invokes one of the hooks below. Each scheme turns the
    hook into its own persistence discipline:

    - {e Conventional}: synchronous writes of the prerequisite buffers.
    - {e Scheduler flag}: asynchronous writes with the ordering flag.
    - {e Scheduler chains}: asynchronous writes carrying explicit
      request-id dependency lists.
    - {e Soft updates}: pure delayed writes plus fine-grained
      dependency records with undo/redo at write time.
    - {e No order}: nothing (unsafe baseline).

    The four structural changes of §4.2 map onto the hooks: block
    allocation → [block_alloc]; block de-allocation → [block_dealloc];
    link addition → [link_add]; link removal → [link_remove].

    All hooks run in simulated-process context and may block. *)

open Su_cache

(** Where a block pointer lives. *)
type ptr_loc =
  | P_direct of int  (** [dinode.db.(i)] *)
  | P_ib1  (** [dinode.ib] *)
  | P_ib2  (** [dinode.ib2] *)
  | P_ind of int  (** slot of the owning indirect block *)

(** One block/fragment allocation, as needed for ordering and undo. *)
type alloc_req = {
  inum : int;  (** owning file *)
  owner : Buf.t;  (** inode block or indirect block buffer *)
  loc : ptr_loc;
  data : Buf.t;  (** buffer of the new extent (contents already current) *)
  new_ptr : int;
  old_ptr : int;  (** 0, or the extent start replaced by a fragment move *)
  new_size : int;  (** file size after the allocation (inode-owned pointers) *)
  old_size : int;
  freed : (int * int) list;
      (** fragment run(s) vacated by an extension move; must not be
          reused before the new pointer is safe on disk *)
  free_moved : unit -> unit;
      (** actually frees [freed] in the maps; the scheme decides when
          (may run in syncer context) *)
  init_required : bool;
      (** the extent contents must reach disk before the pointer *)
}

type t = {
  name : string;
  link_add : dir:Buf.t -> slot:int -> ibuf:Buf.t -> inum:int -> unit;
      (** an entry pointing to [inum] was added at [slot] of directory
          block [dir]; the (new or re-linked) inode lives in [ibuf].
          Required order: inode block before directory block. *)
  link_remove :
    dir:Buf.t ->
    slot:int ->
    inum:int ->
    ibuf:Buf.t ->
    parent_inum:int ->
    parent_ibuf:Buf.t ->
    decrement:(unit -> unit) ->
    unit;
      (** the entry at [slot] was removed from [dir], the directory of
          inode [parent_inum] (living in [parent_ibuf]). [decrement]
          performs the link-count decrement (and file release when it
          reaches zero); it must not be applied to stable storage
          before the directory block. May be deferred (soft updates)
          or called inline after ordering is ensured. rmdir routes
          {e all} its drops through the one decrement — the removed
          directory's two counts and the parent's lost ".." — so
          schemes that materialise inode changes themselves (the
          journal) must re-capture [parent_ibuf] after [decrement]
          runs, and ordered schemes must keep the parent's inode
          behind the directory write too. *)
  link_change :
    dir:Buf.t ->
    slot:int ->
    ibuf:Buf.t ->
    inum:int ->
    old_entry:Su_fstypes.Types.dirent ->
    old_ibuf:Buf.t ->
    decrement:(unit -> unit) ->
    unit;
      (** the entry at [slot] of [dir] was changed in place from
          [old_entry] to one naming [inum] (whose inode lives in
          [ibuf]; [old_ibuf] holds [old_entry]'s). Directory rename
          uses this for the ".." rewrite: the entry must never be
          absent from the on-disk block, only old or new. Required
          order: [inum]'s inode block (carrying its raised link count)
          before the changed entry — rolling back must restore
          [old_entry], not clear the slot (BSD softdep's DIRCHG) — and
          [decrement] (the old target's link-count drop) must not be
          applied to stable storage before the changed entry is. *)
  attr_update : ibuf:Buf.t -> inum:int -> unit;
      (** [inum]'s cached dinode changed with no structural
          counterpart — an append that fit inside already-allocated
          fragments (new size/mtime, no pointer change). Nothing
          depends on the write, so ordered schemes leave the delayed
          inode write alone; schemes that materialise metadata
          elsewhere (the journal) must re-capture the dinode, or
          recovery would roll the attribute back to its last logged
          value. *)
  mkdir_body : body:Buf.t -> inum:int -> unit;
      (** [inum] is a freshly created directory whose first block
          [body] was just seeded with "." and "..". Required order:
          [body], carrying its dots in full form, before any directory
          entry that makes [inum] reachable (BSD softdep's MKDIR_BODY).
          Schemes whose other orderings already imply this — the dots
          block is initialisation-ordered or logged ahead of the
          parent entry — leave it a no-op. *)
  block_alloc : alloc_req -> unit;
      (** see {!alloc_req}; required order (when [init_required]):
          extent contents before pointer. *)
  block_dealloc :
    ibuf:Buf.t ->
    inum:int ->
    runs:(int * int) list ->
    inode_freed:bool ->
    do_free:(unit -> unit) ->
    unit;
      (** pointers to [runs] were reset in the in-memory inode (and
          the dinode cleared when [inode_freed]); [do_free] releases
          the fragments (and inode) in the free maps. Required order:
          reset pointers on disk before the resources are reusable. *)
  reuse_frag_deps : (int * int) list -> int list;
      (** chains only: request ids that writes of a newly allocated
          extent (and its owner) must follow because the extent was
          recently freed (§3.2's "second approach"). Empty for other
          schemes. *)
  reuse_inode_deps : int -> int list;
      (** chains only: same, for inode reuse. *)
  fsync : inum:int -> ibuf:Buf.t -> unit;
      (** make the inode (and its ordering prerequisites) stable
          before returning (SYNCIO support, §6.1). *)
}

(** Convenience used by several schemes: a synchronous-write fsync. *)
let sync_write_fsync cache ~inum:_ ~ibuf = Bcache.bwrite_sync cache ibuf
