open Su_cache

type state = {
  cache : Bcache.t;
  freed_frags : (int, int) Hashtbl.t;  (* fragment -> request id *)
  freed_inodes : (int, int) Hashtbl.t;  (* inum -> request id *)
}

let add_dep (b : Buf.t) id =
  if not (List.mem id b.Buf.wdeps) then b.Buf.wdeps <- id :: b.Buf.wdeps

let remember_frags st runs id =
  List.iter
    (fun (start, len) ->
      for f = start to start + len - 1 do
        Hashtbl.replace st.freed_frags f id
      done)
    runs

let live_dep st tbl key =
  match Hashtbl.find_opt tbl key with
  | None -> None
  | Some id ->
    if Su_driver.Driver.completed (Bcache.driver st.cache) id then begin
      Hashtbl.remove tbl key;
      None
    end
    else Some id

let frag_deps st runs =
  List.fold_left
    (fun acc (start, len) ->
      let rec go f acc =
        if f >= start + len then acc
        else
          match live_dep st st.freed_frags f with
          | Some id when not (List.mem id acc) -> go (f + 1) (id :: acc)
          | Some _ | None -> go (f + 1) acc
      in
      go start acc)
    [] runs

let make ?(barrier_dealloc = false) cache =
  let st = { cache; freed_frags = Hashtbl.create 256; freed_inodes = Hashtbl.create 64 } in
  {
    Scheme_intf.name = "Scheduler Chains";
    link_add =
      (fun ~dir ~slot:_ ~ibuf ~inum:_ ->
        let rid = Bcache.bawrite cache ibuf in
        add_dep dir rid);
    link_remove =
      (fun ~dir ~slot:_ ~inum:_ ~ibuf ~parent_inum:_ ~parent_ibuf ~decrement ->
        let rid = Bcache.bawrite cache dir in
        (* the link-count decrements (or cleared dinode) must follow
           the directory write — the removed inode's and, for rmdir,
           the parent's lost ".." — deeper ordering happens inside
           decrement *)
        add_dep ibuf rid;
        add_dep parent_ibuf rid;
        decrement ());
    link_change =
      (fun ~dir ~slot:_ ~ibuf ~inum:_ ~old_entry:_ ~old_ibuf ~decrement ->
        (* new target's inode -> changed entry -> old target's inode *)
        let rid_inode = Bcache.bawrite cache ibuf in
        add_dep dir rid_inode;
        let rid_dir = Bcache.bawrite cache dir in
        add_dep old_ibuf rid_dir;
        decrement ());
    (* the allocation hook below chains the dots block's initialising
       write ahead of the inode, which the parent entry follows *)
    (* a size/mtime-only change has no dependent structure: the
       delayed inode write needs no ordering *)
    attr_update = (fun ~ibuf:_ ~inum:_ -> ());
    mkdir_body = (fun ~body:_ ~inum:_ -> ());
    block_alloc =
      (fun req ->
        if req.Scheme_intf.init_required then begin
          let rid = Bcache.bawrite cache req.Scheme_intf.data in
          add_dep req.Scheme_intf.owner rid
        end;
        if req.Scheme_intf.freed <> [] then begin
          let rid = Bcache.bawrite cache req.Scheme_intf.owner in
          remember_frags st req.Scheme_intf.freed rid
        end;
        req.Scheme_intf.free_moved ());
    block_dealloc =
      (fun ~ibuf ~inum ~runs ~inode_freed ~do_free ->
        if barrier_dealloc then
          (* §3.2 first approach: the pointer-reset write is a barrier *)
          ignore (Bcache.bawrite ~flagged:true cache ibuf)
        else begin
          let rid = Bcache.bawrite cache ibuf in
          remember_frags st runs rid;
          if inode_freed then Hashtbl.replace st.freed_inodes inum rid
        end;
        do_free ());
    reuse_frag_deps = (fun runs -> frag_deps st runs);
    reuse_inode_deps =
      (fun inum ->
        match live_dep st st.freed_inodes inum with
        | Some id -> [ id ]
        | None -> []);
    fsync = Scheme_intf.sync_write_fsync cache;
  }
