open Su_fstypes
open Su_cache

type stats = {
  mutable created : int;
  mutable rollbacks : int;
  mutable cancelled_adds : int;
  mutable workitems : int;
  mutable live_deps : int;
  mutable peak_live_deps : int;
  dep_lifetimes : Su_obs.Hist.t;
}

(* An allocdirect or allocindirect. *)
type alloc = {
  a_inum : int;
  a_loc : Scheme_intf.ptr_loc;
  a_owner_key : int;  (* lbn of the owning inode/indirect block *)
  mutable a_new_ptr : int;
  mutable a_old_ptr : int;
  mutable a_new_size : int;
  mutable a_old_size : int;
  mutable a_data_key : int;  (* lbn of the newly allocated extent *)
  mutable a_data_done : bool;  (* extent contents are on disk *)
  mutable a_included : bool;  (* pointer is in the in-flight owner write *)
  mutable a_free_moved : (unit -> unit) list;
      (* deferred frees of extents vacated by fragment moves *)
}

type diradd = {
  d_dir_key : int;
  d_slot : int;
  d_inum : int;
  d_old : Types.dirent option;
      (* what write-time rollback restores while the inode is not yet
         durable: [None] for a plain addition (clear the slot), [Some]
         for an in-place change (re-instate the old entry — BSD
         softdep's DIRCHG; the slot must never be written empty) *)
  mutable d_covered : bool;  (* inode is in the in-flight inode-block write *)
  mutable d_pending : int;
      (* prerequisites outstanding before the entry may roll forward:
         the target inode's write, plus — when the target is a fresh
         directory — its dots block written in full form *)
}

type dirrem = {
  r_decrement : unit -> unit;
  r_slot : int;
  mutable r_covered : bool;  (* removal is in the in-flight dir write *)
  mutable r_guard : diradd option;
      (* an entry change's removal half: the old target loses its
         reference only when the slot is written in its *new* form, so
         the decrement stays pending while the guarding diradd still
         rolls the slot back to the old entry *)
}

type freework = {
  f_actions : (unit -> unit) list;  (* frees + detached dir completions *)
  mutable f_covered : bool;  (* reset pointers are in the in-flight write *)
}

(* BSD softdep's MKDIR_BODY: a fresh directory's first block must be
   on disk with its dots in full form before any entry that makes the
   directory reachable. Entries gated on the body keep rolling back
   (an extra [d_pending] prerequisite) until a write of the body block
   lands with none of [bd_dots] rolled back. *)
type body = {
  bd_inum : int;  (* the new directory *)
  mutable bd_dots : diradd list;
      (* the dots adds that must have rolled forward (just ".."; "."
         carries no dependency) — re-pointed if a rename re-targets
         ".." while it is still pending *)
  mutable bd_waiters : diradd list;  (* entries gated on this body *)
  mutable bd_covered : bool;  (* the in-flight write carries full dots *)
}

type inodedep = {
  i_inum : int;
  i_birth : float;  (* simulated time the record was allocated *)
  mutable i_allocs : alloc list;
  mutable i_waiting_adds : diradd list;  (* diradds waiting for this inode *)
  mutable i_freework : freework list;
  mutable i_body : body option;  (* this inode's dots block, until durable *)
}

type pagedep = {
  p_birth : float;
  mutable p_adds : diradd list;
  mutable p_rems : dirrem list;
  mutable p_body : body option;  (* this block is a fresh directory's body *)
}

type indirdep = {
  n_birth : float;
  n_safe : int array;  (* on-disk-consistent pointer copy *)
  mutable n_allocs : alloc list;
}

type t = {
  cache : Bcache.t;
  geom : Geom.t;
  stats : stats;
  inodedeps : (int, inodedep) Hashtbl.t;  (* by inum *)
  pagedeps : (int, pagedep) Hashtbl.t;  (* by directory block lbn *)
  indirdeps : (int, indirdep) Hashtbl.t;  (* by indirect block lbn *)
  allocs_by_data : (int, alloc list) Hashtbl.t;  (* by new-extent lbn *)
}

let now t = Su_sim.Engine.now (Bcache.engine t.cache)

(* Aggregate dependency-record lifetime accounting: a record is born
   when first needed and retired when its last constituent clears —
   the residency the paper's §5 memory-overhead discussion cares
   about. Pure accumulation; never touches simulated time. *)
let dep_born t =
  t.stats.live_deps <- t.stats.live_deps + 1;
  if t.stats.live_deps > t.stats.peak_live_deps then
    t.stats.peak_live_deps <- t.stats.live_deps

let dep_retired t birth =
  t.stats.live_deps <- t.stats.live_deps - 1;
  Su_obs.Hist.add t.stats.dep_lifetimes (now t -. birth)

let get_inodedep t inum =
  match Hashtbl.find_opt t.inodedeps inum with
  | Some d -> d
  | None ->
    let d =
      { i_inum = inum; i_birth = now t; i_allocs = []; i_waiting_adds = [];
        i_freework = []; i_body = None }
    in
    dep_born t;
    Hashtbl.replace t.inodedeps inum d;
    d

let get_pagedep t key =
  match Hashtbl.find_opt t.pagedeps key with
  | Some p -> p
  | None ->
    let p = { p_birth = now t; p_adds = []; p_rems = []; p_body = None } in
    dep_born t;
    Hashtbl.replace t.pagedeps key p;
    p

let remove_inodedep t (d : inodedep) =
  if Hashtbl.mem t.inodedeps d.i_inum then begin
    Hashtbl.remove t.inodedeps d.i_inum;
    dep_retired t d.i_birth
  end

let remove_pagedep t key (p : pagedep) =
  if Hashtbl.mem t.pagedeps key then begin
    Hashtbl.remove t.pagedeps key;
    dep_retired t p.p_birth
  end

let remove_indirdep t key =
  match Hashtbl.find_opt t.indirdeps key with
  | None -> ()
  | Some n ->
    Hashtbl.remove t.indirdeps key;
    dep_retired t n.n_birth

let drop_inodedep_if_empty t (d : inodedep) =
  if
    d.i_allocs = [] && d.i_waiting_adds = [] && d.i_freework = []
    && d.i_body = None
  then remove_inodedep t d

let drop_pagedep_if_empty t key (p : pagedep) =
  if p.p_adds = [] && p.p_rems = [] && p.p_body = None then
    remove_pagedep t key p

let enqueue t action =
  t.stats.workitems <- t.stats.workitems + 1;
  Bcache.add_workitem t.cache action

(* ---------- write-time undo (pre_write hook) ------------------------- *)

let first_inum_of_inode_block t key =
  let g = t.geom in
  let c = Geom.cg_of_frag g key in
  let area_first, _ = Geom.cg_inode_area g c in
  let blk = (key - area_first) / g.Geom.frags_per_block in
  Geom.first_inum_of_cg g c + (blk * g.Geom.inodes_per_block)

let apply_ptr_undo (din : Types.dinode) (a : alloc) =
  match a.a_loc with
  | Scheme_intf.P_direct i -> din.Types.db.(i) <- a.a_old_ptr
  | Scheme_intf.P_ib1 -> din.Types.ib <- a.a_old_ptr
  | Scheme_intf.P_ib2 -> din.Types.ib2 <- a.a_old_ptr
  | Scheme_intf.P_ind _ -> invalid_arg "Softdep: indirect alloc on inodedep"

let pre_write_inodes t (b : Buf.t) (dinodes : Types.dinode array) =
  let copy = Array.map Types.copy_dinode dinodes in
  let rolled = ref false in
  let base = first_inum_of_inode_block t b.Buf.key in
  Array.iteri
    (fun idx _ ->
      match Hashtbl.find_opt t.inodedeps (base + idx) with
      | None -> ()
      | Some dep ->
        let din = copy.(idx) in
        let rolled_size = ref max_int in
        List.iter
          (fun a ->
            if a.a_data_done then a.a_included <- true
            else begin
              a.a_included <- false;
              apply_ptr_undo din a;
              if a.a_old_size < !rolled_size then rolled_size := a.a_old_size;
              rolled := true;
              t.stats.rollbacks <- t.stats.rollbacks + 1
            end)
          dep.i_allocs;
        if !rolled_size < din.Types.size then din.Types.size <- !rolled_size;
        List.iter (fun d -> d.d_covered <- true) dep.i_waiting_adds;
        List.iter (fun f -> f.f_covered <- true) dep.i_freework)
    copy;
  (Buf.Cmeta (Types.Inodes copy), !rolled)

let pre_write_dir t (b : Buf.t) (entries : Types.dirent option array) =
  match Hashtbl.find_opt t.pagedeps b.Buf.key with
  | None -> (Buf.Cmeta (Types.Dir (Array.copy entries)), false)
  | Some p ->
    let copy = Array.copy entries in
    let rolled = ref false in
    (* does this write carry the dots in full form? (a dots add still
       in p_adds is about to be rolled back below) *)
    (match p.p_body with
     | Some bd ->
       bd.bd_covered <-
         List.for_all (fun a -> not (List.memq a p.p_adds)) bd.bd_dots
     | None -> ());
    List.iter
      (fun (d : diradd) ->
        copy.(d.d_slot) <- d.d_old;
        rolled := true;
        t.stats.rollbacks <- t.stats.rollbacks + 1)
      p.p_adds;
    List.iter
      (fun (r : dirrem) ->
        match r.r_guard with
        | Some g when List.memq g p.p_adds ->
          (* the guarding change was just rolled back to its old form:
             the old target is still referenced by this write *)
          ()
        | Some _ | None -> r.r_covered <- true)
      p.p_rems;
    (Buf.Cmeta (Types.Dir copy), !rolled)

let pre_write t (b : Buf.t) =
  match b.Buf.content with
  | Buf.Cmeta (Types.Inodes dinodes) -> pre_write_inodes t b dinodes
  | Buf.Cmeta (Types.Dir entries) -> pre_write_dir t b entries
  | Buf.Cmeta (Types.Indirect actual) ->
    (match Hashtbl.find_opt t.indirdeps b.Buf.key with
     | None -> (Buf.Cmeta (Types.Indirect (Array.copy actual)), false)
     | Some n ->
       (* the safe copy is the write source (appendix) *)
       (Buf.Cmeta (Types.Indirect (Array.copy n.n_safe)), n.n_allocs <> []))
  | Buf.Cmeta _ | Buf.Cdata _ -> (Buf.copy_content b.Buf.content, false)

(* ---------- completion processing (post_write hook) ------------------ *)

let remove_alloc_from_owner t (a : alloc) =
  match a.a_loc with
  | Scheme_intf.P_ind slot ->
    (match Hashtbl.find_opt t.indirdeps a.a_owner_key with
     | None -> ()
     | Some n ->
       n.n_safe.(slot) <- a.a_new_ptr;
       n.n_allocs <- List.filter (fun x -> x != a) n.n_allocs;
       if n.n_allocs = [] then begin
         remove_indirdep t a.a_owner_key;
         match Bcache.lookup t.cache a.a_owner_key with
         | Some ob -> ob.Buf.sticky <- false
         | None -> ()
       end)
  | Scheme_intf.P_direct _ | Scheme_intf.P_ib1 | Scheme_intf.P_ib2 ->
    (match Hashtbl.find_opt t.inodedeps a.a_inum with
     | None -> ()
     | Some dep ->
       dep.i_allocs <- List.filter (fun x -> x != a) dep.i_allocs;
       drop_inodedep_if_empty t dep)

let data_write_done t key =
  match Hashtbl.find_opt t.allocs_by_data key with
  | None -> ()
  | Some allocs ->
    Hashtbl.remove t.allocs_by_data key;
    List.iter
      (fun a ->
        a.a_data_done <- true;
        match a.a_loc with
        | Scheme_intf.P_ind _ ->
          (* allocindirect: merge into the safe copy; done *)
          remove_alloc_from_owner t a;
          List.iter (fun f -> enqueue t f) a.a_free_moved
        | Scheme_intf.P_direct _ | Scheme_intf.P_ib1 | Scheme_intf.P_ib2 -> ())
      allocs

let complete_diradd t (d : diradd) =
  (* every prerequisite is on disk (or the add was cancelled): stop
     rolling the entry back *)
  d.d_pending <- 0;
  (match Hashtbl.find_opt t.pagedeps d.d_dir_key with
   | None -> ()
   | Some p ->
     p.p_adds <- List.filter (fun x -> x != d) p.p_adds;
     drop_pagedep_if_empty t d.d_dir_key p);
  match Hashtbl.find_opt t.inodedeps d.d_inum with
  | None -> ()
  | Some dep ->
    dep.i_waiting_adds <- List.filter (fun x -> x != d) dep.i_waiting_adds;
    drop_inodedep_if_empty t dep

let satisfy_diradd t (d : diradd) =
  (* one prerequisite became durable; completion at zero. Cancelled
     adds (pending already zero) are left alone. *)
  if d.d_pending > 0 then begin
    d.d_pending <- d.d_pending - 1;
    if d.d_pending = 0 then complete_diradd t d
  end

let gate_on_body t (d : diradd) =
  (* an entry naming a fresh directory also waits for that
     directory's body (its dots block, written in full form) *)
  match Hashtbl.find_opt t.inodedeps d.d_inum with
  | Some { i_body = Some bd; _ } ->
    d.d_pending <- d.d_pending + 1;
    bd.bd_waiters <- d :: bd.bd_waiters
  | Some { i_body = None; _ } | None -> ()

let body_durable t (bd : body) =
  (* the dots block reached the disk in full form: release the gated
     entries and forget the body (dots never regress) *)
  List.iter (satisfy_diradd t) bd.bd_waiters;
  bd.bd_waiters <- [];
  match Hashtbl.find_opt t.inodedeps bd.bd_inum with
  | None -> ()
  | Some dep ->
    (match dep.i_body with
     | Some x when x == bd ->
       dep.i_body <- None;
       drop_inodedep_if_empty t dep
     | Some _ | None -> ())

let post_write_inodes t (b : Buf.t) (dinodes : Types.dinode array) =
  let base = first_inum_of_inode_block t b.Buf.key in
  Array.iteri
    (fun idx _ ->
      match Hashtbl.find_opt t.inodedeps (base + idx) with
      | None -> ()
      | Some dep ->
        (* completed allocdirects: pointer and contents both on disk *)
        let done_allocs, pending =
          List.partition (fun a -> a.a_included && a.a_data_done) dep.i_allocs
        in
        dep.i_allocs <- pending;
        List.iter
          (fun a -> List.iter (fun f -> enqueue t f) a.a_free_moved)
          done_allocs;
        (* diradds covered by this write: the inode is now stable
           (and stays stable — the prerequisite fires exactly once) *)
        let covered_adds, waiting =
          List.partition (fun (d : diradd) -> d.d_covered) dep.i_waiting_adds
        in
        dep.i_waiting_adds <- waiting;
        List.iter (satisfy_diradd t) covered_adds;
        (* freework covered by this write: reset pointers are stable *)
        let done_free, pending_free =
          List.partition (fun f -> f.f_covered) dep.i_freework
        in
        dep.i_freework <- pending_free;
        List.iter
          (fun f -> List.iter (fun act -> enqueue t act) f.f_actions)
          done_free;
        drop_inodedep_if_empty t dep)
    dinodes

let post_write_dir t (b : Buf.t) =
  match Hashtbl.find_opt t.pagedeps b.Buf.key with
  | None -> ()
  | Some p ->
    let done_rems, pending_rems =
      List.partition (fun r -> r.r_covered) p.p_rems
    in
    p.p_rems <- pending_rems;
    List.iter (fun r -> enqueue t r.r_decrement) done_rems;
    (match p.p_body with
     | Some bd when bd.bd_covered ->
       p.p_body <- None;
       body_durable t bd
     | Some _ | None -> ());
    drop_pagedep_if_empty t b.Buf.key p

let post_write t (b : Buf.t) =
  data_write_done t b.Buf.key;
  match b.Buf.content with
  | Buf.Cmeta (Types.Inodes dinodes) -> post_write_inodes t b dinodes
  | Buf.Cmeta (Types.Dir _) -> post_write_dir t b
  | Buf.Cmeta _ | Buf.Cdata _ -> ()

(* ---------- invalidation ---------------------------------------------- *)

let pre_invalidate t (b : Buf.t) =
  (* Deallocation purges dependencies before buffers are invalidated;
     this is a defensive sweep for stragglers. *)
  Hashtbl.remove t.allocs_by_data b.Buf.key;
  match b.Buf.content with
  | Buf.Cmeta (Types.Indirect _) -> remove_indirdep t b.Buf.key
  | Buf.Cmeta _ | Buf.Cdata _ -> ()

(* ---------- the four structural changes ------------------------------- *)

let attach_alloc t (req : Scheme_intf.alloc_req) =
  let a =
    {
      a_inum = req.Scheme_intf.inum;
      a_loc = req.Scheme_intf.loc;
      a_owner_key = req.Scheme_intf.owner.Buf.key;
      a_new_ptr = req.Scheme_intf.new_ptr;
      a_old_ptr = req.Scheme_intf.old_ptr;
      a_new_size = req.Scheme_intf.new_size;
      a_old_size = req.Scheme_intf.old_size;
      a_data_key = req.Scheme_intf.data.Buf.key;
      a_data_done = not req.Scheme_intf.init_required;
      a_included = false;
      a_free_moved =
        (if req.Scheme_intf.freed = [] then []
         else [ req.Scheme_intf.free_moved ]);
    }
  in
  t.stats.created <- t.stats.created + 1;
  (match a.a_loc with
   | Scheme_intf.P_ind slot ->
     let n =
       match Hashtbl.find_opt t.indirdeps a.a_owner_key with
       | Some n -> n
       | None ->
         (match req.Scheme_intf.owner.Buf.content with
          | Buf.Cmeta (Types.Indirect actual) ->
            (* the safe copy starts from the pointers already on disk:
               current contents minus this (not yet applied) update *)
            let safe = Array.copy actual in
            let n = { n_birth = now t; n_safe = safe; n_allocs = [] } in
            dep_born t;
            (* pending pointers must not leak into the safe copy *)
            safe.(slot) <- a.a_old_ptr;
            Hashtbl.replace t.indirdeps a.a_owner_key n;
            req.Scheme_intf.owner.Buf.sticky <- true;
            n
          | Buf.Cmeta _ | Buf.Cdata _ ->
            invalid_arg "Softdep: P_ind owner is not an indirect block")
     in
     n.n_safe.(slot) <- a.a_old_ptr;
     n.n_allocs <- a :: n.n_allocs
   | Scheme_intf.P_direct _ | Scheme_intf.P_ib1 | Scheme_intf.P_ib2 ->
     let dep = get_inodedep t a.a_inum in
     (* merge with a pending allocdirect for the same slot (fragment
        extension): keep the original on-disk old value *)
     let same_slot x = x.a_loc = a.a_loc in
     (match List.find_opt same_slot dep.i_allocs with
      | Some old ->
        a.a_old_ptr <- old.a_old_ptr;
        a.a_old_size <- old.a_old_size;
        a.a_free_moved <- old.a_free_moved @ a.a_free_moved;
        dep.i_allocs <- List.filter (fun x -> x != old) dep.i_allocs;
        (* the superseded extent's record no longer guards anything *)
        (match Hashtbl.find_opt t.allocs_by_data old.a_data_key with
         | Some l ->
           (match List.filter (fun x -> x != old) l with
            | [] -> Hashtbl.remove t.allocs_by_data old.a_data_key
            | l' -> Hashtbl.replace t.allocs_by_data old.a_data_key l')
         | None -> ())
      | None -> ());
     dep.i_allocs <- a :: dep.i_allocs);
  if not a.a_data_done then
    Hashtbl.replace t.allocs_by_data a.a_data_key
      (a
      :: (match Hashtbl.find_opt t.allocs_by_data a.a_data_key with
          | Some l -> l
          | None -> []))

let purge_for_runs t ~inum runs =
  (* Deallocation: drop every dependency touching the freed extents and
     return completion actions that must run when the freeing commits. *)
  let extra = ref [] in
  let in_runs key =
    List.exists (fun (start, len) -> key >= start && key < start + len) runs
  in
  (* data-init guards for freed extents *)
  Hashtbl.iter
    (fun key allocs ->
      if in_runs key then
        List.iter (fun a -> remove_alloc_from_owner t a) allocs)
    (Hashtbl.copy t.allocs_by_data);
  let keys_to_remove =
    Hashtbl.fold (fun k _ acc -> if in_runs k then k :: acc else acc)
      t.allocs_by_data []
  in
  List.iter (Hashtbl.remove t.allocs_by_data) keys_to_remove;
  (* remaining allocdirects of this inode (data already on disk) *)
  (match Hashtbl.find_opt t.inodedeps inum with
   | None -> ()
   | Some dep ->
     let cancelled, kept =
       List.partition (fun a -> in_runs a.a_new_ptr) dep.i_allocs
     in
     dep.i_allocs <- kept;
     List.iter (fun a -> extra := a.a_free_moved @ !extra) cancelled);
  (* freed indirect blocks *)
  Hashtbl.fold (fun k _ acc -> if in_runs k then k :: acc else acc)
    t.indirdeps []
  |> List.iter (fun k ->
         remove_indirdep t k;
         match Bcache.lookup t.cache k with
         | Some ob -> ob.Buf.sticky <- false
         | None -> ());
  (* freed directory blocks: their page dependencies are considered
     complete once the block is freed (appendix, block de-allocation) *)
  Hashtbl.fold (fun k _ acc -> if in_runs k then k :: acc else acc)
    t.pagedeps []
  |> List.iter (fun k ->
         match Hashtbl.find_opt t.pagedeps k with
         | None -> ()
         | Some p ->
           List.iter (complete_diradd t) p.p_adds;
           List.iter (fun r -> extra := r.r_decrement :: !extra) p.p_rems;
           (* a freed body can gate nothing: the directory is going
              away, and so (via cancellation) are the gated entries *)
           (match p.p_body with
            | Some bd -> body_durable t bd
            | None -> ());
           remove_pagedep t k p);
  !extra

let make ~cache ~geom =
  let stats =
    { created = 0; rollbacks = 0; cancelled_adds = 0; workitems = 0;
      live_deps = 0; peak_live_deps = 0;
      dep_lifetimes = Su_obs.Hist.create ~base:1e-3 () }
  in
  let t =
    {
      cache;
      geom;
      stats;
      inodedeps = Hashtbl.create 512;
      pagedeps = Hashtbl.create 256;
      indirdeps = Hashtbl.create 64;
      allocs_by_data = Hashtbl.create 512;
    }
  in
  let hooks = Bcache.hooks cache in
  hooks.Bcache.pre_write <- pre_write t;
  hooks.Bcache.post_write <- post_write t;
  hooks.Bcache.pre_invalidate <- pre_invalidate t;
  let scheme =
    {
      Scheme_intf.name = "Soft Updates";
      link_add =
        (fun ~dir ~slot ~ibuf:_ ~inum ->
          let d = { d_dir_key = dir.Buf.key; d_slot = slot; d_inum = inum;
                    d_old = None; d_covered = false; d_pending = 1 } in
          stats.created <- stats.created + 1;
          let p = get_pagedep t dir.Buf.key in
          p.p_adds <- d :: p.p_adds;
          gate_on_body t d;
          let dep = get_inodedep t inum in
          dep.i_waiting_adds <- d :: dep.i_waiting_adds);
      link_remove =
        (fun ~dir ~slot ~inum ~ibuf:_ ~parent_inum:_ ~parent_ibuf:_ ~decrement ->
          let p = get_pagedep t dir.Buf.key in
          match
            List.find_opt
              (fun (d : diradd) -> d.d_slot = slot && d.d_inum = inum)
              p.p_adds
          with
          | Some d ->
            (* the entry never reached the disk: cancel both halves and
               proceed with no disk writes at all *)
            stats.cancelled_adds <- stats.cancelled_adds + 1;
            complete_diradd t d;
            drop_pagedep_if_empty t dir.Buf.key p;
            decrement ()
          | None ->
            stats.created <- stats.created + 1;
            p.p_rems <-
              { r_decrement = decrement; r_slot = slot; r_covered = false;
                r_guard = None }
              :: p.p_rems);
      link_change =
        (fun ~dir ~slot ~ibuf:_ ~inum ~old_entry ~old_ibuf:_ ~decrement ->
          let p = get_pagedep t dir.Buf.key in
          match
            List.find_opt (fun (d : diradd) -> d.d_slot = slot) p.p_adds
          with
          | Some pending ->
            (* the slot's current target never reached the disk:
               replace the pending add outright, inheriting its on-disk
               rollback image, re-point removals guarded by it at the
               new add, and drop the superseded target's count with no
               disk ordering at all *)
            let d = { d_dir_key = dir.Buf.key; d_slot = slot; d_inum = inum;
                      d_old = pending.d_old; d_covered = false;
                      d_pending = 1 } in
            stats.created <- stats.created + 1;
            stats.cancelled_adds <- stats.cancelled_adds + 1;
            complete_diradd t pending;
            let p = get_pagedep t dir.Buf.key in
            p.p_adds <- d :: p.p_adds;
            List.iter
              (fun (r : dirrem) ->
                match r.r_guard with
                | Some g when g == pending -> r.r_guard <- Some d
                | Some _ | None -> ())
              p.p_rems;
            (* if the superseded add was a still-pending dots entry,
               the body now waits for the re-targeted one *)
            (match p.p_body with
             | Some bd ->
               bd.bd_dots <-
                 List.map (fun x -> if x == pending then d else x) bd.bd_dots
             | None -> ());
            gate_on_body t d;
            let dep = get_inodedep t inum in
            dep.i_waiting_adds <- d :: dep.i_waiting_adds;
            decrement ()
          | None ->
            let d = { d_dir_key = dir.Buf.key; d_slot = slot; d_inum = inum;
                      d_old = Some old_entry; d_covered = false;
                      d_pending = 1 } in
            stats.created <- stats.created + 2;
            p.p_adds <- d :: p.p_adds;
            gate_on_body t d;
            let dep = get_inodedep t inum in
            dep.i_waiting_adds <- d :: dep.i_waiting_adds;
            (* the old target's decrement: guarded until the slot is
               written carrying the new entry *)
            p.p_rems <-
              { r_decrement = decrement; r_slot = slot; r_covered = false;
                r_guard = Some d }
              :: p.p_rems);
      (* a size/mtime-only change carries no dependency: the delayed
         inode write rolls nothing back and orders nothing *)
      attr_update = (fun ~ibuf:_ ~inum:_ -> ());
      mkdir_body =
        (fun ~body ~inum ->
          (* remember the dots block; its pending adds right now are
             exactly the dots entries that must roll forward before
             the block counts as durable in full form *)
          let p = get_pagedep t body.Buf.key in
          let bd =
            { bd_inum = inum; bd_dots = p.p_adds; bd_waiters = [];
              bd_covered = false }
          in
          stats.created <- stats.created + 1;
          p.p_body <- Some bd;
          (get_inodedep t inum).i_body <- Some bd);
      block_alloc =
        (fun req ->
          if req.Scheme_intf.init_required || req.Scheme_intf.freed <> [] then
            attach_alloc t req
          else req.Scheme_intf.free_moved ());
      block_dealloc =
        (fun ~ibuf:_ ~inum ~runs ~inode_freed:_ ~do_free ->
          let extra = purge_for_runs t ~inum runs in
          let fw = { f_actions = do_free :: extra; f_covered = false } in
          stats.created <- stats.created + 1;
          let dep = get_inodedep t inum in
          dep.i_freework <- fw :: dep.i_freework);
      reuse_frag_deps = (fun _ -> []);
      reuse_inode_deps = (fun _ -> []);
      fsync =
        (fun ~inum ~ibuf ->
          let rounds = ref 0 in
          let continue_ = ref true in
          while !continue_ do
            incr rounds;
            if !rounds > 100 then failwith "Softdep.fsync: no convergence";
            (match Hashtbl.find_opt t.inodedeps inum with
             | Some dep ->
               List.iter
                 (fun a ->
                   if not a.a_data_done then
                     match Bcache.lookup t.cache a.a_data_key with
                     | Some db -> Bcache.bwrite_sync t.cache db
                     | None -> a.a_data_done <- true)
                 dep.i_allocs
             | None -> ());
            Bcache.bwrite_sync t.cache ibuf;
            continue_ :=
              (match Hashtbl.find_opt t.inodedeps inum with
               | Some dep -> dep.i_allocs <> []
               | None -> false)
          done);
    }
  in
  (scheme, stats)
