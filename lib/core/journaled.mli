(** Write-ahead metadata journaling — the extension the paper's §7
    names as the natural comparison for soft updates.

    Every structural change appends a redo transaction (full
    post-images of the affected metadata) to a dedicated log region;
    in-place metadata writes stay delayed. Two commit disciplines:

    - [Sync_commit]: the calling process waits for its log append.
      Appends are sequential, so this is far cheaper than the
      conventional scheme's random synchronous writes.
    - [Group_commit]: records accumulate in memory and a background
      flusher commits them every [group_interval] (default 0.25 s) —
      the "delayed group commit" the paper says logging needs to
      match soft updates. The window between an update and its commit
      is vulnerable to crashes (bounded by the flush interval); the
      syncer's 1+ second write-back lag keeps in-place writes behind
      their log records.

    When the log cursor wraps, the cache is flushed (checkpoint) so
    older records become redundant; replay applies the whole log in
    sequence order, which is idempotent because records carry full
    post-images.

    Recovery ({!recover}) replays the log onto a crashed image and
    rebuilds the allocation maps from the reachable tree. Journaling
    protects metadata only: stale-data exposure is out of scope (run
    fsck with [check_exposure:false]). *)

type commit_mode = Sync_commit | Group_commit

type stats = {
  mutable txns : int;
  mutable records : int;
  mutable log_writes : int;  (** log fragments written *)
  mutable wraps : int;  (** checkpoints forced by log wrap-around *)
}

val make :
  cache:Su_cache.Bcache.t ->
  geom:Su_fstypes.Geom.t ->
  log_start:int ->
  log_frags:int ->
  mode:commit_mode ->
  ?group_interval:float ->
  unit ->
  Scheme_intf.t * stats * (unit -> unit)
(** Returns the scheme, its counters, and a stop function that flushes
    any pending records and terminates the group-commit flusher (so
    the event queue can drain). *)

val rebuild_maps :
  ?observer:Su_fstypes.Imglog.observer ->
  Su_fstypes.Geom.t ->
  Su_fstypes.Types.cell array ->
  unit
(** Reconstruct every group's allocation bitmaps from the tree
    reachable from the root: referenced resources are marked used,
    everything else in the data areas becomes free (unreachable
    resources are reclaimed). Shared with {!Su_fs.Fsck}'s repair.
    Headers that come out identical are not rewritten (and not
    observed). *)

val recover :
  ?observer:Su_fstypes.Imglog.observer ->
  geom:Su_fstypes.Geom.t ->
  log_start:int ->
  log_frags:int ->
  Su_fstypes.Types.cell array ->
  unit
(** Replay the journal onto the image (in place), retire the log, and
    rebuild the per-group allocation bitmaps from the reachable file
    tree. Every cell the pipeline changes flows through
    {!Su_fstypes.Imglog.write}, so an [observer] sees recovery's own
    write stream — the crash-state explorer re-crashes recovery at
    each of those boundaries. Recovery tolerates re-execution over any
    prefix of its own effects: replay records are absolute
    post-images, and the log is retired oldest-sequence-first so a
    crash mid-retirement leaves only records whose effects are already
    on the media. *)
