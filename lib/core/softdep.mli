(** Soft updates (§4.2 and the appendix of the paper).

    All metadata updates are delayed writes. Dependency information is
    kept at the granularity of the individual update:

    - {e allocdirect / allocindirect} records guard newly allocated
      block pointers: if the block's contents have not reached the
      disk when the pointer's block is written, the pointer (and file
      size) are rolled back in the write-out copy — the paper's
      undo/redo, applied to the snapshot rather than the live buffer.
    - {e indirdep} keeps a "safe" copy of each indirect block with
      pending allocations; the safe copy is the write source, and new
      pointers are merged into it as their blocks reach the disk.
      Indirect blocks with pending dependencies are pinned in the
      cache.
    - {e diradd} guards new directory entries: the entry is zeroed in
      the write-out copy until the referenced inode is on disk.
      An unlink that finds a pending diradd cancels both — create
      followed by remove costs no disk I/O at all.
    - {e dirrem} defers the link-count decrement until the directory
      block with the entry removed has been written; the release of a
      file (freeing blocks and inode) therefore happens in the
      background, via the syncer's workitem queue.
    - {e freeblocks/freefile} defer the freeing of de-allocated
      resources until the reset pointers are on disk, so a resource is
      never reusable while an old on-disk pointer still references it.

    A block containing rolled-back updates is kept dirty so the syncer
    rewrites it once its dependencies clear; cycles cannot occur
    because no single dependency sequence is cyclic, and aging cannot
    occur because new dependencies never attach to existing update
    sequences. *)

type stats = {
  mutable created : int;  (** dependency records allocated *)
  mutable rollbacks : int;  (** update undos applied to write-out copies *)
  mutable cancelled_adds : int;  (** create+remove pairs serviced with no I/O *)
  mutable workitems : int;  (** background completions queued *)
  mutable live_deps : int;
      (** aggregate dependency records (inodedep/pagedep/indirdep)
          currently resident *)
  mutable peak_live_deps : int;  (** high-water mark of [live_deps] *)
  dep_lifetimes : Su_obs.Hist.t;
      (** simulated seconds each aggregate record stayed resident,
          birth to retirement (1 ms base buckets) *)
}

val make :
  cache:Su_cache.Bcache.t -> geom:Su_fstypes.Geom.t -> Scheme_intf.t * stats
(** Builds the scheme and registers the write-time undo/redo hooks on
    the cache. At most one soft-updates instance per cache. *)
