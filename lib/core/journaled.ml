open Su_fstypes
open Su_cache

type commit_mode = Sync_commit | Group_commit

type stats = {
  mutable txns : int;
  mutable records : int;
  mutable log_writes : int;
  mutable wraps : int;
}

type t = {
  cache : Bcache.t;
  geom : Geom.t;
  log_start : int;
  log_frags : int;
  mode : commit_mode;
  stats : stats;
  mutable cursor : int;  (* next log fragment, relative *)
  mutable seq : int;
  mutable pending : Types.jrec list;  (* reversed; group mode *)
  mutable guarded : Buf.t list;
      (* metadata buffers with uncommitted records: pinned so an
         eviction cannot write them ahead of their log records *)
}

let recs_per_frag = 24  (* a 1 KB log sector holds about this many records *)

(* Append one committed transaction fragment; optionally wait. *)
let append_frag t recs ~wait =
  if t.cursor >= t.log_frags then begin
    (* wrap-around checkpoint: flush everything so older records are
       redundant before we overwrite them *)
    t.stats.wraps <- t.stats.wraps + 1;
    Bcache.sync_all t.cache;
    t.cursor <- 0
  end;
  t.seq <- t.seq + 1;
  t.stats.log_writes <- t.stats.log_writes + 1;
  let lbn = t.log_start + t.cursor in
  t.cursor <- t.cursor + 1;
  let payload = [| Types.Jlog { seq = t.seq; recs } |] in
  if wait then begin
    let iv : unit Su_sim.Proc.Ivar.t =
      Su_sim.Proc.Ivar.create (Bcache.engine t.cache)
    in
    ignore
      (Su_driver.Driver.submit (Bcache.driver t.cache)
         ~kind:Su_driver.Request.Write ~lbn ~nfrags:1 ~sync:true ~payload
         ~on_complete:(fun _ -> Su_sim.Proc.Ivar.fill iv ())
         ());
    Su_sim.Proc.Ivar.read iv
  end
  else
    ignore
      (Su_driver.Driver.submit (Bcache.driver t.cache)
         ~kind:Su_driver.Request.Write ~lbn ~nfrags:1 ~payload
         ~on_complete:(fun _ -> ())
         ())

let rec chunks n = function
  | [] -> []
  | l ->
    let rec take i acc rest =
      if i = 0 then (List.rev acc, rest)
      else match rest with [] -> (List.rev acc, []) | x :: r -> take (i - 1) (x :: acc) r
    in
    let c, rest = take n [] l in
    c :: chunks n rest

let commit t ?(bufs = []) recs =
  if recs <> [] then begin
    t.stats.txns <- t.stats.txns + 1;
    t.stats.records <- t.stats.records + List.length recs;
    match t.mode with
    | Sync_commit ->
      List.iter (fun c -> append_frag t c ~wait:true) (chunks recs_per_frag recs)
    | Group_commit ->
      t.pending <- List.rev_append recs t.pending;
      List.iter
        (fun (b : Buf.t) ->
          if not b.Buf.sticky then begin
            b.Buf.sticky <- true;
            t.guarded <- b :: t.guarded
          end)
        bufs
  end

let flush_pending t ~wait =
  let guarded = t.guarded in
  t.guarded <- [];
  match List.rev t.pending with
  | [] -> List.iter (fun (b : Buf.t) -> b.Buf.sticky <- false) guarded
  | recs ->
    t.pending <- [];
    let groups = chunks recs_per_frag recs in
    let n = List.length groups in
    List.iteri
      (fun i c ->
        if i = n - 1 then begin
          (* release the pins once the whole batch is durable *)
          if t.cursor >= t.log_frags then begin
            t.stats.wraps <- t.stats.wraps + 1;
            Bcache.sync_all t.cache;
            t.cursor <- 0
          end;
          t.seq <- t.seq + 1;
          t.stats.log_writes <- t.stats.log_writes + 1;
          let lbn = t.log_start + t.cursor in
          t.cursor <- t.cursor + 1;
          let payload = [| Types.Jlog { seq = t.seq; recs = c } |] in
          let finish () =
            List.iter (fun (b : Buf.t) -> b.Buf.sticky <- false) guarded
          in
          if wait then begin
            let iv : unit Su_sim.Proc.Ivar.t =
              Su_sim.Proc.Ivar.create (Bcache.engine t.cache)
            in
            ignore
              (Su_driver.Driver.submit (Bcache.driver t.cache)
                 ~kind:Su_driver.Request.Write ~lbn ~nfrags:1 ~sync:true
                 ~payload
                 ~on_complete:(fun _ ->
                   finish ();
                   Su_sim.Proc.Ivar.fill iv ())
                 ());
            Su_sim.Proc.Ivar.read iv
          end
          else
            ignore
              (Su_driver.Driver.submit (Bcache.driver t.cache)
                 ~kind:Su_driver.Request.Write ~lbn ~nfrags:1 ~payload
                 ~on_complete:(fun _ -> finish ())
                 ())
        end
        else append_frag t c ~wait:false)
      groups

(* --- record extraction -------------------------------------------------- *)

let dinode_rec t (ibuf : Buf.t) inum =
  match ibuf.Buf.content with
  | Buf.Cmeta (Types.Inodes dinodes) ->
    let din = dinodes.(Geom.inode_index_in_block t.geom inum) in
    Types.J_dinode { inum; din = Types.copy_dinode din }
  | Buf.Cmeta _ | Buf.Cdata _ -> invalid_arg "Journaled: bad inode block"

let entry_rec (dir : Buf.t) slot =
  match dir.Buf.content with
  | Buf.Cmeta (Types.Dir entries) ->
    Types.J_entry { blk = dir.Buf.key; slot; entry = entries.(slot) }
  | Buf.Cmeta _ | Buf.Cdata _ -> invalid_arg "Journaled: bad directory block"

(* --- recovery ------------------------------------------------------------ *)

(* Replay mutates the image copy-on-write through [Imglog.write]: the
   current cell (or a fresh one, if the block was never written) is
   deep-copied, the record's post-image applied to the copy, and the
   copy installed — an identical result is dropped entirely. Replaying
   the same record twice is therefore both harmless and silent, which
   is what lets recovery be re-entered over its own partial effects. *)

let replay_meta ?observer _geom image blk fresh f =
  let m =
    match image.(blk) with
    | Types.Meta m -> Types.copy_meta m
    | Types.Empty | Types.Pad | Types.Frag _ | Types.Jlog _ | Types.Rmap _
    | Types.Csum _ ->
      fresh ()
  in
  f m;
  Imglog.write ?observer image blk (Types.Meta m)

let replay_rec ?observer geom image = function
  | Types.J_dinode { inum; din } ->
    let blk = Geom.inode_block_frag geom inum in
    replay_meta ?observer geom image blk
      (fun () -> Types.fresh_inode_block geom)
      (function
        | Types.Inodes dinodes ->
          dinodes.(Geom.inode_index_in_block geom inum) <-
            Types.copy_dinode din
        | _ -> ())
  | Types.J_entry { blk; slot; entry } ->
    replay_meta ?observer geom image blk
      (fun () -> Types.Dir (Types.fresh_dir_block geom))
      (function
        | Types.Dir entries -> entries.(slot) <- entry
        | _ -> ())
  | Types.J_dir_init { blk } ->
    (* the block is brand new: reset it, wiping any stale contents
       from an earlier life (the same transaction re-adds the current
       entries) *)
    Imglog.write ?observer image blk
      (Types.Meta (Types.Dir (Types.fresh_dir_block geom)))
  | Types.J_ind_init { blk } ->
    Imglog.write ?observer image blk
      (Types.Meta (Types.Indirect (Types.fresh_indirect geom)))
  | Types.J_ind_set { blk; slot; ptr } ->
    replay_meta ?observer geom image blk
      (fun () -> Types.Indirect (Types.fresh_indirect geom))
      (function
        | Types.Indirect arr -> arr.(slot) <- ptr
        | _ -> ())

(* Rebuild the per-group bitmaps from the reachable tree: everything a
   live inode references is in use, everything else in the data areas
   is free. Unreachable (leaked) resources are thereby reclaimed — the
   recovery-time equivalent of fsck's map rebuild. *)
let rebuild_maps ?observer geom image =
  let ncg = Geom.cg_count geom in
  let cgs =
    Array.init ncg (fun c ->
        let cg = Types.fresh_cg geom in
        let base = Geom.cg_base geom c in
        let data_first, data_count = Geom.cg_data_area geom c in
        for off = 0 to data_first - base - 1 do
          Bytes.set cg.Types.frag_map off '\001'
        done;
        cg.Types.nffree <- data_count;
        cg.Types.nifree <- geom.Geom.inodes_per_cg;
        cg)
  in
  let claim_frags start len =
    if start > 0 && start + len <= geom.Geom.nfrags then begin
      let c = Geom.cg_of_frag geom start in
      let cg = cgs.(c) in
      let base = Geom.cg_base geom c in
      for i = 0 to len - 1 do
        if Bytes.get cg.Types.frag_map (start - base + i) = '\000' then begin
          Bytes.set cg.Types.frag_map (start - base + i) '\001';
          cg.Types.nffree <- cg.Types.nffree - 1
        end
      done
    end
  in
  let claim_inode inum =
    let c = Geom.cg_of_inode geom inum in
    let j = inum - Geom.first_inum_of_cg geom c in
    if Bytes.get cgs.(c).Types.inode_map j = '\000' then begin
      Bytes.set cgs.(c).Types.inode_map j '\001';
      cgs.(c).Types.nifree <- cgs.(c).Types.nifree - 1
    end
  in
  let fpb = geom.Geom.frags_per_block in
  let read_dinode inum =
    if not (Geom.valid_inum geom inum) then None
    else
      match image.(Geom.inode_block_frag geom inum) with
      | Types.Meta (Types.Inodes dinodes) ->
        let d = dinodes.(Geom.inode_index_in_block geom inum) in
        if d.Types.ftype = Types.F_free then None else Some d
      | _ -> None
  in
  let extent_len ~size ~lbn =
    let bb = Geom.block_bytes geom in
    let partial =
      if size <= lbn * bb then 0
      else if size >= (lbn + 1) * bb then fpb
      else Geom.frags_of_bytes geom (size - (lbn * bb))
    in
    if partial = 0 then fpb
    else if partial < fpb && Geom.blocks_of_bytes geom size > geom.Geom.ndaddr
    then fpb
    else partial
  in
  let indirect_slots ptr =
    match image.(ptr) with
    | Types.Meta (Types.Indirect arr) -> Some arr
    | _ -> None
  in
  let claim_file (din : Types.dinode) =
    let size = din.Types.size in
    Array.iteri
      (fun i ptr -> if ptr <> 0 then claim_frags ptr (extent_len ~size ~lbn:i))
      din.Types.db;
    if din.Types.ib <> 0 then begin
      claim_frags din.Types.ib fpb;
      match indirect_slots din.Types.ib with
      | Some arr ->
        Array.iter (fun ptr -> if ptr <> 0 then claim_frags ptr fpb) arr
      | None -> ()
    end;
    if din.Types.ib2 <> 0 then begin
      claim_frags din.Types.ib2 fpb;
      match indirect_slots din.Types.ib2 with
      | Some arr2 ->
        Array.iter
          (fun l1 ->
            if l1 <> 0 then begin
              claim_frags l1 fpb;
              match indirect_slots l1 with
              | Some arr1 ->
                Array.iter (fun ptr -> if ptr <> 0 then claim_frags ptr fpb) arr1
              | None -> ()
            end)
          arr2
      | None -> ()
    end
  in
  let seen = Hashtbl.create 256 in
  let queue = Queue.create () in
  Queue.add Geom.root_inum queue;
  Hashtbl.add seen Geom.root_inum ();
  while not (Queue.is_empty queue) do
    let dinum = Queue.pop queue in
    match read_dinode dinum with
    | None -> ()
    | Some din ->
      claim_inode dinum;
      claim_file din;
      if din.Types.ftype = Types.F_dir then begin
        let nblocks = Geom.blocks_of_bytes geom din.Types.size in
        let fetch ptr =
          if ptr <> 0 then
            match image.(ptr) with
            | Types.Meta (Types.Dir entries) ->
              Array.iter
                (function
                  | Some { Types.name; inum } ->
                    if name <> "." && name <> ".." && not (Hashtbl.mem seen inum)
                    then begin
                      Hashtbl.add seen inum ();
                      match read_dinode inum with
                      | Some child when child.Types.ftype = Types.F_dir ->
                        Queue.add inum queue
                      | Some child ->
                        claim_inode inum;
                        claim_file child
                      | None -> ()
                    end
                  | None -> ())
                entries
            | _ -> ()
        in
        for i = 0 to min (nblocks - 1) (geom.Geom.ndaddr - 1) do
          fetch din.Types.db.(i)
        done;
        if nblocks > geom.Geom.ndaddr && din.Types.ib <> 0 then
          match indirect_slots din.Types.ib with
          | Some arr ->
            for i = 0 to nblocks - geom.Geom.ndaddr - 1 do
              if i < Array.length arr then fetch arr.(i)
            done
          | None -> ()
      end
  done;
  Array.iteri
    (fun c cg ->
      Imglog.write ?observer image (Geom.cg_header_frag geom c)
        (Types.Meta (Types.Cgroup cg)))
    cgs

let recover ?observer ~geom ~log_start ~log_frags image =
  let txns = ref [] in
  for i = 0 to log_frags - 1 do
    if log_start + i < Array.length image then
      match image.(log_start + i) with
      | Types.Jlog { seq; recs } -> txns := (seq, recs, log_start + i) :: !txns
      | _ -> ()
  done;
  let txns = List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b) !txns in
  List.iter
    (fun (_, recs, _) -> List.iter (replay_rec ?observer geom image) recs)
    txns;
  (* recovery is a checkpoint: every replayed record is now reflected
     in the metadata blocks, so retire the log. Leaving records behind
     would corrupt the next mount — its journal restarts at sequence
     zero, so the stale records (with higher sequence numbers) would
     replay on top of the new mount's transactions. Retirement runs
     oldest sequence first (after a wrap-around the cursor position
     order differs!): if retirement is itself interrupted, the
     surviving suffix holds only the newest records, whose absolute
     post-images re-apply as no-ops — never stale ones that would
     regress metadata already overwritten by a newer transaction. *)
  List.iter
    (fun (_, _, frag) ->
      match image.(frag) with
      | Types.Jlog _ -> Imglog.write ?observer image frag Types.Empty
      | _ -> ())
    txns;
  rebuild_maps ?observer geom image

(* --- the scheme ----------------------------------------------------------- *)

let make ~cache ~geom ~log_start ~log_frags ~mode ?(group_interval = 0.25) () =
  let stats = { txns = 0; records = 0; log_writes = 0; wraps = 0 } in
  let t =
    { cache; geom; log_start; log_frags; mode; stats; cursor = 0; seq = 0;
      pending = []; guarded = [] }
  in
  let stopped = ref false in
  (match mode with
   | Group_commit ->
     let engine = Bcache.engine cache in
     let rec flusher () =
       Su_sim.Proc.sleep engine group_interval;
       if not !stopped then begin
         flush_pending t ~wait:false;
         flusher ()
       end
     in
     ignore (Su_sim.Proc.spawn engine ~name:"jflush" flusher)
   | Sync_commit -> ());
  let stop () =
    stopped := true;
    flush_pending t ~wait:false
  in
  let scheme =
    {
      Scheme_intf.name =
        (match mode with
         | Sync_commit -> "Journaled"
         | Group_commit -> "Journaled (group commit)");
      link_add =
        (fun ~dir ~slot ~ibuf ~inum ->
          commit t ~bufs:[ dir; ibuf ]
            [ dinode_rec t ibuf inum; entry_rec dir slot ]);
      link_remove =
        (fun ~dir ~slot ~inum ~ibuf ~parent_inum ~parent_ibuf ~decrement ->
          (* write-ahead discipline: the entry deletion must be
             durable before the de-allocation records that [decrement]
             commits (block_dealloc logs the cleared dinode); a crash
             between them must not leave a logged-free inode behind a
             still-logged name *)
          commit t ~bufs:[ dir ]
            [ Types.J_entry { blk = dir.Buf.key; slot; entry = None } ];
          let parent_before = dinode_rec t parent_ibuf parent_inum in
          decrement ();
          (* rmdir's decrement also drops the parent's count (its lost
             ".."): re-log the parent's dinode whenever the decrement
             changed it, or replay would resurrect the stale count *)
          let parent_after = dinode_rec t parent_ibuf parent_inum in
          let recs =
            if parent_after <> parent_before && parent_inum <> inum then
              [ parent_after; dinode_rec t ibuf inum ]
            else [ dinode_rec t ibuf inum ]
          in
          let bufs =
            if parent_after <> parent_before && parent_inum <> inum then
              [ parent_ibuf; ibuf ]
            else [ ibuf ]
          in
          commit t ~bufs recs);
      link_change =
        (fun ~dir ~slot ~ibuf ~inum ~old_entry ~old_ibuf ~decrement ->
          (* the change (new target's inode + rewritten entry) is one
             transaction; the old target's decrement is logged after
             it, so replay always lands on one side of the swap *)
          commit t ~bufs:[ dir; ibuf ]
            [ dinode_rec t ibuf inum; entry_rec dir slot ];
          decrement ();
          commit t ~bufs:[ old_ibuf ]
            [ dinode_rec t old_ibuf old_entry.Types.inum ]);
      attr_update =
        (fun ~ibuf ~inum ->
          (* an append that fit inside already-allocated fragments:
             no alloc record will carry the new size, so the dinode
             must be re-logged or replay rolls the size back to its
             last logged value *)
          commit t ~bufs:[ ibuf ] [ dinode_rec t ibuf inum ]);
      (* the dots land as J_dir_init/J_entry records in the same log
         stream as the parent entry; replay reconstructs them *)
      mkdir_body = (fun ~body:_ ~inum:_ -> ());
      block_alloc =
        (fun req ->
          let init_recs =
            if req.Scheme_intf.init_required then begin
              let blk = req.Scheme_intf.data.Buf.key in
              match req.Scheme_intf.data.Buf.content with
              | Buf.Cmeta (Types.Dir entries) ->
                (* reset-and-restate: the init wipes stale contents
                   from the block's earlier lives, then re-adds the
                   entries it currently holds *)
                Types.J_dir_init { blk }
                :: (Array.to_list
                      (Array.mapi
                         (fun slot entry -> Types.J_entry { blk; slot; entry })
                         entries)
                   |> List.filter (function
                        | Types.J_entry { entry = Some _; _ } -> true
                        | _ -> false))
              | Buf.Cmeta (Types.Indirect arr) ->
                Types.J_ind_init { blk }
                :: (Array.to_list
                      (Array.mapi
                         (fun slot ptr -> Types.J_ind_set { blk; slot; ptr })
                         arr)
                   |> List.filter (function
                        | Types.J_ind_set { ptr; _ } -> ptr <> 0
                        | _ -> false))
              | Buf.Cmeta _ | Buf.Cdata _ -> []
            end
            else []
          in
          let ptr_rec =
            match req.Scheme_intf.loc with
            | Scheme_intf.P_ind slot ->
              Types.J_ind_set
                { blk = req.Scheme_intf.owner.Buf.key; slot;
                  ptr = req.Scheme_intf.new_ptr }
            | Scheme_intf.P_direct _ | Scheme_intf.P_ib1 | Scheme_intf.P_ib2 ->
              dinode_rec t req.Scheme_intf.owner req.Scheme_intf.inum
          in
          req.Scheme_intf.free_moved ();
          commit t
            ~bufs:[ req.Scheme_intf.owner; req.Scheme_intf.data ]
            (init_recs @ [ ptr_rec ]));
      block_dealloc =
        (fun ~ibuf ~inum ~runs:_ ~inode_freed:_ ~do_free ->
          do_free ();
          commit t ~bufs:[ ibuf ] [ dinode_rec t ibuf inum ]);
      reuse_frag_deps = (fun _ -> []);
      reuse_inode_deps = (fun _ -> []);
      fsync =
        (fun ~inum:_ ~ibuf:_ ->
          (* all metadata redo lives in the log: committing it is
             enough to make the file durable *)
          match t.mode with
          | Sync_commit -> ()
          | Group_commit -> flush_pending t ~wait:true);
    }
  in
  (scheme, stats, stop)
