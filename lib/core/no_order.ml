let make cache =
  {
    Scheme_intf.name = "No Order";
    link_add = (fun ~dir:_ ~slot:_ ~ibuf:_ ~inum:_ -> ());
    link_remove =
      (fun ~dir:_ ~slot:_ ~inum:_ ~ibuf:_ ~parent_inum:_ ~parent_ibuf:_
           ~decrement ->
        decrement ());
    link_change =
      (fun ~dir:_ ~slot:_ ~ibuf:_ ~inum:_ ~old_entry:_ ~old_ibuf:_ ~decrement ->
        decrement ());
    (* a size/mtime-only change has no dependent structure: the
       delayed inode write needs no ordering *)
    attr_update = (fun ~ibuf:_ ~inum:_ -> ());
    mkdir_body = (fun ~body:_ ~inum:_ -> ());
    block_alloc = (fun req -> req.Scheme_intf.free_moved ());
    block_dealloc =
      (fun ~ibuf:_ ~inum:_ ~runs:_ ~inode_freed:_ ~do_free -> do_free ());
    reuse_frag_deps = (fun _ -> []);
    reuse_inode_deps = (fun _ -> []);
    fsync = Scheme_intf.sync_write_fsync cache;
  }
