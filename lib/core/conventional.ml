open Su_cache

let make cache =
  {
    Scheme_intf.name = "Conventional";
    (* the new/updated inode must be on disk before the name; classic
       FFS then also writes the directory block synchronously — the
       "two synchronous writes per create" the paper's introduction
       refers to *)
    link_add =
      (fun ~dir ~slot:_ ~ibuf ~inum:_ ->
        Bcache.bwrite_sync cache ibuf;
        Bcache.bwrite_sync cache dir);
    (* the name must be gone from disk before the link count drops *)
    link_remove =
      (fun ~dir ~slot:_ ~inum:_ ~ibuf:_ ~parent_inum:_ ~parent_ibuf:_
           ~decrement ->
        Bcache.bwrite_sync cache dir;
        decrement ());
    (* the new target's inode before the changed entry, the changed
       entry before the old target's count drops *)
    link_change =
      (fun ~dir ~slot:_ ~ibuf ~inum:_ ~old_entry:_ ~old_ibuf:_ ~decrement ->
        Bcache.bwrite_sync cache ibuf;
        Bcache.bwrite_sync cache dir;
        decrement ());
    (* the dots block is written synchronously by the initialising
       allocation below, ahead of any entry write *)
    (* a size/mtime-only change has no dependent structure: the
       delayed inode write needs no ordering *)
    attr_update = (fun ~ibuf:_ ~inum:_ -> ());
    mkdir_body = (fun ~body:_ ~inum:_ -> ());
    block_alloc =
      (fun req ->
        if req.Scheme_intf.init_required then
          Bcache.bwrite_sync cache req.Scheme_intf.data;
        (* a fragment move: the stale extent may not be reused until
           the relocated pointer is on disk, so force the owner out *)
        if req.Scheme_intf.freed <> [] then
          Bcache.bwrite_sync cache req.Scheme_intf.owner;
        req.Scheme_intf.free_moved ());
    (* reset pointers reach disk before the resources are freed *)
    block_dealloc =
      (fun ~ibuf ~inum:_ ~runs:_ ~inode_freed:_ ~do_free ->
        Bcache.bwrite_sync cache ibuf;
        do_free ());
    reuse_frag_deps = (fun _ -> []);
    reuse_inode_deps = (fun _ -> []);
    fsync = Scheme_intf.sync_write_fsync cache;
  }
