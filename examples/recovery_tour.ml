(* Recovery tour: what happens after the lights go out.

   1. A journaled volume crashes mid-burst: replaying the write-ahead
      log recovers every committed operation, and the volume remounts.
   2. An unprotected (No Order) volume crashes the same way: fsck
      finds real damage, the repair pass cleans it up, and the volume
      remounts with the surviving files.

   Run with: dune exec examples/recovery_tour.exe *)

open Su_sim
open Su_fs

let burst st =
  Fsops.mkdir st "/mail";
  for i = 1 to 120 do
    let p = Printf.sprintf "/mail/msg%d" i in
    Fsops.create st p;
    Fsops.append st p ~bytes:(1024 * (1 + (i mod 6)));
    if i mod 5 = 0 then Fsops.unlink st (Printf.sprintf "/mail/msg%d" (i - 2))
  done

let count_files cfg image =
  let r = Fsck.check ~geom:cfg.Fs.geom ~image ~check_exposure:false in
  (r, r.Fsck.files)

let remount_and_list cfg image =
  let w = Fs.mount_image cfg image in
  let names = ref [] in
  ignore
    (Proc.spawn w.Fs.engine (fun () ->
         names := Fsops.readdir w.Fs.st "/mail";
         (* prove the volume is usable: write something new *)
         Fsops.create w.Fs.st "/mail/after-recovery";
         Fsops.sync w.Fs.st;
         Fs.stop w));
  Engine.run w.Fs.engine;
  List.length (List.filter (fun n -> n <> "." && n <> "..") !names)

let () =
  let crash_time = 0.8 in

  (* --- journaled volume ------------------------------------------- *)
  let jcfg =
    { (Fs.config ~scheme:(Fs.Journaled { group_commit = false }) ()) with
      Fs.geom = Su_fstypes.Geom.small;
      journal_mb = 2 }
  in
  let jw = Fs.make jcfg in
  ignore (Proc.spawn jw.Fs.engine ~name:"writer" (fun () -> burst jw.Fs.st));
  let jimage = Crash.crash_at jw crash_time in
  let before, files_before = count_files jcfg jimage in
  Printf.printf "journaled crash at t=%.1fs: %d file(s) visible in place, %d violation(s)\n"
    crash_time files_before
    (List.length before.Fsck.violations);
  Fs.recover_image jcfg jimage;
  let _, files_after = count_files jcfg jimage in
  Printf.printf "after log replay:          %d file(s) recovered\n" files_after;
  let live = remount_and_list jcfg jimage in
  Printf.printf "remounted: /mail holds %d entries (plus one written post-recovery)\n\n"
    live;

  (* --- unprotected volume ------------------------------------------ *)
  let ncfg =
    { (Fs.config ~scheme:Fs.No_order ()) with Fs.geom = Su_fstypes.Geom.small }
  in
  let nw = Fs.make ncfg in
  ignore (Proc.spawn nw.Fs.engine ~name:"writer" (fun () -> burst nw.Fs.st));
  let crash_time2 = 2.5 in
  let nimage = Crash.crash_at nw crash_time2 in
  let broken, _ = count_files ncfg nimage in
  Printf.printf "no-order crash at t=%.1fs: %d violation(s), e.g.:\n"
    crash_time2
    (List.length broken.Fsck.violations);
  List.iteri
    (fun i v -> if i < 3 then Format.printf "  - %a@." Fsck.pp_violation v)
    broken.Fsck.violations;
  let { Fsck.actions; final = repaired; _ } =
    Fsck.repair ~geom:ncfg.Fs.geom ~image:nimage ~check_exposure:false ()
  in
  Printf.printf "fsck repair took %d action(s); verdict: %s (%d files survive)\n"
    (List.length actions)
    (if Fsck.ok repaired then "consistent" else "unrepairable")
    repaired.Fsck.files;
  let live = remount_and_list ncfg nimage in
  Printf.printf "remounted: /mail holds %d entries\n" live
