(* metasim: command-line front end to the simulator.

   Subcommands:
     run        — run one benchmark under one scheme and print measurements
     crash      — run a workload, crash at a given time, fsck the image
     crashsweep — re-crash a workload at EVERY write boundary (and torn
                  mid-write states) and verify recovery per scheme
     trace      — run a small workload and dump the I/O trace
     exp        — run one named experiment (figure/table) at chosen scale *)

open Cmdliner
open Su_fs
open Su_workload

let scheme_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "conventional" | "conv" -> Ok Fs.Conventional
    | "flag" -> Ok Fs.Scheduler_flag
    | "chains" -> Ok (Fs.Scheduler_chains { barrier_dealloc = false })
    | "chains-barrier" -> Ok (Fs.Scheduler_chains { barrier_dealloc = true })
    | "soft" | "soft-updates" | "softdep" -> Ok Fs.Soft_updates
    | "none" | "no-order" -> Ok Fs.No_order
    | "journal" -> Ok (Fs.Journaled { group_commit = false })
    | "journal-group" -> Ok (Fs.Journaled { group_commit = true })
    | _ -> Error (`Msg (Printf.sprintf "unknown scheme %S" s))
  in
  let print ppf s = Format.pp_print_string ppf (Fs.scheme_kind_name s) in
  Arg.conv (parse, print)

let scheme_arg =
  let doc =
    "Ordering scheme: conventional, flag, chains, chains-barrier, soft \
     (alias softdep), no-order, journal, journal-group."
  in
  Arg.(value & opt scheme_conv Fs.Soft_updates & info [ "s"; "scheme" ] ~doc)

let users_arg =
  Arg.(value & opt int 4 & info [ "u"; "users" ] ~doc:"Concurrent users.")

let seed_arg =
  Arg.(value & opt int 17 & info [ "seed" ] ~doc:"Workload seed.")

let alloc_init_arg =
  Arg.(
    value
    & opt (some bool) None
    & info [ "alloc-init" ]
        ~doc:"Force allocation initialisation on/off (default: per scheme).")

let nvram_arg =
  Arg.(
    value & opt int 0
    & info [ "nvram" ] ~doc:"Battery-backed disk write cache in MB (0 = none).")

(* --- device-fault flags (run / fuzz) --------------------------------

   Validating convs, like [run]'s benchmark name: a rate outside
   [0, 1] or a negative sector is a command-line error with a non-zero
   exit, not a silently absurd fault model. *)

let rate_conv =
  let parse s =
    match float_of_string_opt s with
    | Some r when r >= 0.0 && r <= 1.0 -> Ok r
    | Some _ -> Error (`Msg "fault rate must lie in [0, 1]")
    | None -> Error (`Msg (Printf.sprintf "invalid rate %S" s))
  in
  Arg.conv (parse, fun ppf r -> Format.fprintf ppf "%g" r)

let nonneg_conv what =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 0 -> Ok n
    | Some _ -> Error (`Msg (what ^ " must be non-negative"))
    | None -> Error (`Msg (Printf.sprintf "invalid %s %S" what s))
  in
  Arg.conv (parse, Format.pp_print_int)

let fault_seed_arg =
  Arg.(
    value & opt int 1
    & info [ "fault-seed" ] ~docv:"S"
        ~doc:"PRNG seed for the device fault model (replays identically).")

let fault_rate_flag =
  Arg.(
    value
    & opt rate_conv 0.0
    & info [ "fault-rate" ] ~docv:"R"
        ~doc:
          "Transient read/write failure probability per device attempt, in \
           [0, 1] (0 = perfect device). Implies occasional stalls and torn \
           writes, as $(b,Su_disk.Fault.transient).")

let bad_sectors_arg =
  Arg.(
    value
    & opt (list (nonneg_conv "sector")) []
    & info [ "bad-sectors" ] ~docv:"LBN,..."
        ~doc:"Fragments that fail permanently on every access.")

let spares_arg ~default =
  Arg.(
    value
    & opt (nonneg_conv "spare count") default
    & info [ "spares" ] ~docv:"N"
        ~doc:
          "Spare fragments for bad-sector remapping (0 = no remap layer; \
           the simulation is then bit-identical to a fault-intolerant \
           build).")

(* --- silent-fault flags (run / loadgen) -----------------------------

   The classes the device cannot detect: bit rot on reads, lost
   writes, misdirected writes. Only the checksum layer catches them,
   so the doc strings point at --checksums. *)

let flip_rate_flag =
  Arg.(
    value
    & opt rate_conv 0.0
    & info [ "flip-rate" ] ~docv:"R"
        ~doc:
          "Silent bit-rot probability per read attempt, in [0, 1]. The \
           device reports success; only $(b,--checksums) can detect the \
           corruption.")

let lost_rate_flag =
  Arg.(
    value
    & opt rate_conv 0.0
    & info [ "lost-rate" ] ~docv:"R"
        ~doc:
          "Probability a write attempt is acknowledged but never applied \
           to the media, in [0, 1]. Detectable only via $(b,--checksums).")

let misdirect_rate_flag =
  Arg.(
    value
    & opt rate_conv 0.0
    & info [ "misdirect-rate" ] ~docv:"R"
        ~doc:
          "Probability a write attempt lands on a random wrong sector, in \
           [0, 1]. Detectable only via $(b,--checksums).")

let checksums_flag =
  Arg.(
    value & flag
    & info [ "checksums" ]
        ~doc:
          "Maintain and verify per-fragment checksums (the end-to-end \
           integrity layer: verified cache fills, self-healing reads, \
           scrubber verification). Off by default so traces stay \
           bit-identical to the checksum-free build.")

let scrub_arg =
  Arg.(
    value
    & opt float 0.0
    & info [ "scrub-interval" ] ~docv:"SECONDS"
        ~doc:
          "Background scrubber wake-up period in simulated seconds \
           (0 = no scrubber).")

let fault_of ?(flip = 0.0) ?(lost = 0.0) ?(misdirect = 0.0) ~seed ~rate
    ~bad_sectors () =
  let base =
    if rate = 0.0 && bad_sectors = [] then Su_disk.Fault.none
    else if rate > 0.0 then
      { (Su_disk.Fault.transient ~seed ~rate ()) with
        Su_disk.Fault.bad_sectors }
    else { Su_disk.Fault.none with Su_disk.Fault.seed; bad_sectors }
  in
  if flip = 0.0 && lost = 0.0 && misdirect = 0.0 then base
  else
    { base with
      Su_disk.Fault.seed;
      flip_read = flip;
      lost_write = lost;
      misdirect_write = misdirect }

let write_json_file path doc =
  try
    let oc = open_out path in
    output_string oc (Su_obs.Json.to_string_pretty doc);
    output_char oc '\n';
    close_out oc;
    Printf.eprintf "# wrote %s\n" path
  with Sys_error e ->
    Printf.eprintf "cannot write %s: %s\n" path e;
    exit 2

let make_cfg ?sink scheme alloc_init nvram =
  let cfg =
    { (Fs.config ~scheme ()) with Fs.nvram_mb = nvram; Fs.trace_sink = sink }
  in
  match alloc_init with
  | None -> cfg
  | Some b -> { cfg with Fs.alloc_init = b }

let print_measures (m : Runner.measures) =
  Printf.printf "users:            %d\n" m.Runner.users;
  Printf.printf "elapsed (avg):    %.2f s\n" m.Runner.elapsed_avg;
  Printf.printf "elapsed (max):    %.2f s\n" m.Runner.elapsed_max;
  Printf.printf "user CPU (sum):   %.2f s\n" m.Runner.cpu_total;
  Printf.printf "disk requests:    %d (%d reads, %d writes)\n"
    m.Runner.disk_requests m.Runner.disk_reads m.Runner.disk_writes;
  Printf.printf "avg I/O response: %.1f ms\n" m.Runner.avg_response_ms;
  Printf.printf "avg disk access:  %.1f ms\n" m.Runner.avg_access_ms;
  match m.Runner.softdep with
  | None -> ()
  | Some s ->
    Printf.printf
      "soft updates:     %d dep records, %d rollbacks, %d cancelled \
       create+remove pairs, %d workitems\n"
      s.Su_core.Softdep.created s.Su_core.Softdep.rollbacks
      s.Su_core.Softdep.cancelled_adds s.Su_core.Softdep.workitems

let run_cmd =
  (* A validating conv (not a bare string) so an unknown name is a
     command-line error with a non-zero exit — scripted runs used to
     get an stderr line and exit 0, which CI can't catch. *)
  let bench_names =
    [ "copy"; "remove"; "create"; "remove-files"; "create-remove"; "sdet";
      "andrew" ]
  in
  let bench_conv =
    let parse s =
      let s = String.lowercase_ascii s in
      if List.mem s bench_names then Ok s
      else
        Error
          (`Msg
            (Printf.sprintf "unknown benchmark %S (expected one of %s)" s
               (String.concat ", " bench_names)))
    in
    Arg.conv (parse, Format.pp_print_string)
  in
  let bench_arg =
    let doc = "Benchmark: copy, remove, create, remove-files, create-remove, sdet, andrew." in
    Arg.(value & pos 0 bench_conv "copy" & info [] ~docv:"BENCH" ~doc)
  in
  let files_arg =
    Arg.(value & opt int 10_000 & info [ "files" ] ~doc:"Total files (throughput benchmarks).")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Print the measurements as one JSON object (percentiles and \
             cross-layer counters included) instead of text.")
  in
  let trace_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"PATH"
          ~doc:
            "Write a simulated-clock JSONL event trace (one event per FS \
             operation, cache transition and I/O issue/start/complete) to \
             $(docv).")
  in
  let run bench scheme users seed alloc_init nvram files json trace_out
      fault_seed fault_rate bad_sectors spares scrub_interval flip lost
      misdirect checksums =
    let sink =
      match trace_out with
      | None -> None
      | Some _ -> Some (Su_obs.Events.create ())
    in
    let cfg =
      { (make_cfg ?sink scheme alloc_init nvram) with
        Fs.fault =
          fault_of ~flip ~lost ~misdirect ~seed:fault_seed ~rate:fault_rate
            ~bad_sectors ();
        spare_frags = spares;
        scrub_interval;
        checksums }
    in
    let emit_json fields =
      print_endline
        (Su_obs.Json.to_string_pretty
           (Su_obs.Json.Obj
              (("benchmark", Su_obs.Json.Str bench)
               :: ("scheme", Su_obs.Json.Str (Fs.scheme_kind_name scheme))
               :: fields)))
    in
    (match bench with
     | "andrew" ->
       let s = Andrew.run ~cfg ~reps:3 in
       let floats a = Su_obs.Json.List (Array.to_list (Array.map (fun v -> Su_obs.Json.Float v) a)) in
       if json then
         emit_json
           [
             ("phases_s", floats s.Andrew.mean.Andrew.phases);
             ("phases_stdev_s", floats s.Andrew.stdev.Andrew.phases);
             ("total_s", Su_obs.Json.Float s.Andrew.mean.Andrew.total);
           ]
       else begin
         Printf.printf "# %s, %s, %d user(s)\n" bench
           (Fs.scheme_kind_name scheme) users;
         Array.iteri
           (fun i v -> Printf.printf "phase %d: %.2f s (stdev %.2f)\n" (i + 1) v
               s.Andrew.stdev.Andrew.phases.(i))
           s.Andrew.mean.Andrew.phases;
         Printf.printf "total:   %.2f s\n" s.Andrew.mean.Andrew.total
       end
     | _ ->
       let with_throughput m =
         (m, [ ("files_per_second",
                Su_obs.Json.Float
                  (Benchmarks.files_per_second ~total_files:files m)) ])
       in
       let m, extra =
         match bench with
         | "copy" -> (Benchmarks.copy ~cfg ~users ~seed (), [])
         | "remove" -> (Benchmarks.remove ~cfg ~users ~seed (), [])
         | "create" ->
           with_throughput (Benchmarks.create_files ~cfg ~users ~total_files:files)
         | "remove-files" ->
           with_throughput (Benchmarks.remove_files ~cfg ~users ~total_files:files)
         | "create-remove" ->
           with_throughput
             (Benchmarks.create_remove_files ~cfg ~users ~total_files:files)
         | "sdet" ->
           let r = Sdet.run ~cfg ~concurrency:users () in
           ( r.Sdet.measures,
             [ ("scripts_per_hour", Su_obs.Json.Float r.Sdet.scripts_per_hour) ]
           )
         | _ -> assert false (* bench_conv validated the name *)
       in
       if json then emit_json (("measures", Runner.measures_json m) :: extra)
       else begin
         Printf.printf "# %s, %s, %d user(s)\n" bench
           (Fs.scheme_kind_name scheme) users;
         print_measures m;
         List.iter
           (fun (_, v) ->
             match v with
             | Su_obs.Json.Float t ->
               Printf.printf "throughput:       %.1f %s\n" t
                 (if bench = "sdet" then "scripts/hour" else "files/s")
             | _ -> ())
           extra
       end);
    match (trace_out, sink) with
    | Some path, Some ev -> (
      try
        let oc = open_out path in
        Su_obs.Events.write_jsonl ev oc;
        close_out oc;
        Printf.eprintf "# wrote %s (%d events)\n" path
          (Su_obs.Events.count ev)
      with Sys_error e ->
        Printf.eprintf "cannot write %s: %s\n" path e;
        exit 2)
    | _ -> ()
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one benchmark under one ordering scheme.")
    Term.(
      const run $ bench_arg $ scheme_arg $ users_arg $ seed_arg
      $ alloc_init_arg $ nvram_arg $ files_arg $ json_arg $ trace_out_arg
      $ fault_seed_arg $ fault_rate_flag $ bad_sectors_arg
      $ spares_arg ~default:0 $ scrub_arg $ flip_rate_flag $ lost_rate_flag
      $ misdirect_rate_flag $ checksums_flag)

let crash_cmd =
  let time_arg =
    Arg.(value & opt float 5.0 & info [ "t"; "time" ] ~doc:"Crash time (virtual seconds).")
  in
  let repair_arg =
    Arg.(value & flag & info [ "repair" ] ~doc:"Run fsck repair on the crashed image.")
  in
  let run scheme seed time alloc_init do_repair =
    let cfg =
      { (make_cfg scheme alloc_init 0) with
        Fs.geom = Su_fstypes.Geom.small;
        cache_mb = 8 }
    in
    let w = Fs.make cfg in
    let rng = Su_util.Rng.create seed in
    for u = 1 to 2 do
      ignore
        (Su_sim.Proc.spawn w.Fs.engine
           ~name:(Printf.sprintf "w%d" u)
           (fun () ->
             let dir = Printf.sprintf "/w%d" u in
             Fsops.mkdir w.Fs.st dir;
             let r = Su_util.Rng.split rng in
             for i = 1 to 400 do
               let p = Printf.sprintf "%s/f%d" dir i in
               Fsops.create w.Fs.st p;
               Fsops.append w.Fs.st p ~bytes:(1024 * Su_util.Rng.int_range r 1 8);
               if Su_util.Rng.bool r then Fsops.unlink w.Fs.st p
             done))
    done;
    let report = Crash.crash_and_check w time in
    Printf.printf "# crash at t=%.2fs under %s\n" time (Fs.scheme_kind_name scheme);
    Printf.printf "violations:     %d\n" (List.length report.Fsck.violations);
    List.iter
      (fun v -> Format.printf "  %a@." Fsck.pp_violation v)
      report.Fsck.violations;
    Printf.printf "live files:     %d\nlive dirs:      %d\n" report.Fsck.files
      report.Fsck.dirs;
    Printf.printf "leaked frags:   %d\nleaked inodes:  %d\nstale maps:     %d\n"
      report.Fsck.leaked_frags report.Fsck.leaked_inodes report.Fsck.stale_free;
    Printf.printf "nlink high:     %d\n" report.Fsck.nlink_high;
    Printf.printf "%s\n" (if Fsck.ok report then "CONSISTENT" else "INTEGRITY VIOLATED");
    if do_repair then begin
      let image = Su_disk.Disk.image_snapshot w.Fs.disk in
      Fs.recover_image cfg image;
      let check_exposure =
        match cfg.Fs.scheme with Fs.Journaled _ -> false | _ -> cfg.Fs.alloc_init
      in
      let { Fsck.actions; final; converged; _ } =
        Fsck.repair ~geom:cfg.Fs.geom ~image ~check_exposure ()
      in
      Printf.printf "\n# repair\n";
      List.iter (fun a -> Format.printf "  %a@." Fsck.pp_repair_action a) actions;
      Printf.printf "after repair: %s%s (%d files, %d dirs)\n"
        (if Fsck.ok final then "CONSISTENT" else "STILL BROKEN")
        (if converged then "" else " (repair did not converge)")
        final.Fsck.files final.Fsck.dirs
    end
  in
  Cmd.v
    (Cmd.info "crash" ~doc:"Crash a workload mid-flight, fsck and optionally repair.")
    Term.(const run $ scheme_arg $ seed_arg $ time_arg $ alloc_init_arg $ repair_arg)

let crashsweep_cmd =
  let schemes_arg =
    Arg.(
      value
      & opt (some (list scheme_conv)) None
      & info [ "schemes" ]
          ~doc:
            "Comma-separated schemes to sweep (default: the paper's five \
             plus journaled).")
  in
  let workloads_arg =
    Arg.(
      value
      & opt (list string) [ "smallfiles"; "dirtree"; "renamefile"; "renamedir" ]
      & info [ "w"; "workloads" ]
          ~doc:
            "Comma-separated built-in workloads: smallfiles, dirtree, \
             renamefile, renamedir.")
  in
  let no_torn_arg =
    Arg.(
      value & flag
      & info [ "no-torn" ]
          ~doc:"Skip torn mid-write states (sector-atomic crashes only).")
  in
  let faults_arg =
    Arg.(
      value & flag
      & info [ "faults" ]
          ~doc:
            "Also run each workload with transient-fault injection and \
             report how the driver's retry machinery coped.")
  in
  let fault_rate_arg =
    Arg.(
      value & opt float 0.1
      & info [ "fault-rate" ] ~doc:"Transient failure probability per request.")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ]
          ~doc:
            "Worker domains for per-state verification (default 1 = serial; \
             0 = one per core, Domain.recommended_domain_count). Verdicts \
             and output are byte-identical at any value.")
  in
  let max_boundaries_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-boundaries" ]
          ~doc:
            "Cap the write boundaries explored per sweep (smoke runs; \
             default: all).")
  in
  let nested_arg =
    Arg.(
      value & flag
      & info [ "nested" ]
          ~doc:
            "Re-crash the recovery pipeline at every one of its own write \
             boundaries, for every outer crash state, and require recovery \
             to be re-entrant: each nested state must settle in one round \
             and reach the write-free fixed point by the second.")
  in
  let fail_fast_arg =
    Arg.(
      value & flag
      & info [ "fail-fast" ]
          ~doc:"Stop at the first sweep that misses its expected verdict.")
  in
  let demand_arg =
    Arg.(
      value
      & opt (enum [ ("default", `Default); ("consistent", `Consistent) ])
          `Default
      & info [ "demand" ]
          ~doc:
            "Verdict each scheme must meet: $(b,default) holds every scheme \
             to consistency except No Order, which only promises \
             repairability; $(b,consistent) holds every swept scheme to \
             consistency (so sweeping no-order deliberately fails).")
  in
  let sweep_cfg scheme =
    (* a compact volume keeps the per-state pipeline (copy, fsck,
       repair, remount, continue) cheap enough to run at every write
       boundary *)
    {
      (Fs.config ~scheme ()) with
      Fs.geom = Su_fstypes.Geom.v ~mb:32 ~cg_mb:16 ~inodes_per_cg:1024 ();
      cache_mb = 4;
      journal_mb = 2;
    }
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH"
          ~doc:
            "Also write the sweep summaries (one object per scheme x \
             workload row, with the verdict) as JSON to $(docv).")
  in
  let run schemes workload_names no_torn faults fault_rate jobs max_boundaries
      nested fail_fast demand json_path =
    let schemes =
      match schemes with
      | Some s -> s
      | None -> Fs.all_schemes @ [ Fs.Journaled { group_commit = false } ]
    in
    let workloads =
      List.filter_map
        (fun name ->
          match Su_check.Explorer.find_workload name with
          | Some w -> Some w
          | None ->
            Printf.eprintf "unknown workload %S (skipped)\n" name;
            None)
        workload_names
    in
    if workloads = [] then begin
      prerr_endline "crashsweep: no valid workloads left to sweep";
      exit 2
    end;
    let table =
      Su_util.Text_table.create
        ~title:
          (Printf.sprintf "crash sweep: every write boundary%s%s"
             (if no_torn then "" else " + torn states")
             (if nested then " + crashes during recovery" else ""))
        ~headers:
          ([
             "scheme"; "workload"; "writes"; "states"; "torn"; "violated";
             "unrepaired"; "remount-fail";
           ]
          @ (if nested then [ "nested"; "nested-fail" ] else [])
          @ [ "verdict" ])
    in
    (* No Order promises only repairability; every ordered scheme (and
       the journal) must come through consistent. *)
    let failed = ref false in
    let rows = ref [] in
    (try
       List.iter
         (fun scheme ->
           List.iter
             (fun wl ->
               let s =
                 Su_check.Explorer.sweep ~torn:(not no_torn) ~jobs
                   ?max_boundaries ~nested ~cfg:(sweep_cfg scheme) wl
               in
               let ok =
                 match (demand, scheme) with
                 | `Consistent, _ -> Su_check.Explorer.consistent s
                 | `Default, Fs.No_order -> Su_check.Explorer.repairable s
                 | `Default, _ -> Su_check.Explorer.consistent s
               in
               let verdict =
                 if Su_check.Explorer.consistent s then "consistent"
                 else if Su_check.Explorer.repairable s then "repairable"
                 else "BROKEN"
               in
               rows := (scheme, s, verdict, ok) :: !rows;
               Su_util.Text_table.add_row table
                 ([
                    Fs.scheme_kind_name scheme;
                    s.Su_check.Explorer.s_workload;
                    Su_util.Text_table.cell_i s.Su_check.Explorer.s_writes;
                    Su_util.Text_table.cell_i s.Su_check.Explorer.s_states;
                    Su_util.Text_table.cell_i s.Su_check.Explorer.s_torn_states;
                    Su_util.Text_table.cell_i s.Su_check.Explorer.s_dirty_states;
                    Su_util.Text_table.cell_i s.Su_check.Explorer.s_unrepaired;
                    Su_util.Text_table.cell_i
                      s.Su_check.Explorer.s_remount_failures;
                  ]
                 @ (if nested then
                      [
                        Su_util.Text_table.cell_i
                          s.Su_check.Explorer.s_nested_states;
                        Su_util.Text_table.cell_i
                          (s.Su_check.Explorer.s_nested_unrecovered
                          + s.Su_check.Explorer.s_nested_unsettled);
                      ]
                    else [])
                 @ [ (if ok then verdict else verdict ^ " *") ]);
               if not ok then begin
                 failed := true;
                 if fail_fast then raise Exit
               end)
             workloads)
         schemes
     with Exit -> ());
    Su_util.Text_table.print table;
    (match json_path with
     | None -> ()
     | Some path ->
       let open Su_obs.Json in
       let sweep_json (scheme, s, verdict, ok) =
         Obj
           [
             ("scheme", Str (Fs.scheme_kind_name scheme));
             ("workload", Str s.Su_check.Explorer.s_workload);
             ("writes", Int s.Su_check.Explorer.s_writes);
             ("states", Int s.Su_check.Explorer.s_states);
             ("torn_states", Int s.Su_check.Explorer.s_torn_states);
             ("dirty_states", Int s.Su_check.Explorer.s_dirty_states);
             ("unrepaired", Int s.Su_check.Explorer.s_unrepaired);
             ("remount_failures", Int s.Su_check.Explorer.s_remount_failures);
             ("nested_states", Int s.Su_check.Explorer.s_nested_states);
             ( "nested_failures",
               Int
                 (s.Su_check.Explorer.s_nested_unrecovered
                 + s.Su_check.Explorer.s_nested_unsettled) );
             ("verdict", Str verdict);
             ("ok", Bool ok);
           ]
       in
       write_json_file path
         (Obj
            [
              ("campaign", Str "crashsweep");
              ("torn", Bool (not no_torn));
              ("nested", Bool nested);
              ("ok", Bool (not !failed));
              ("sweeps", List (List.rev_map sweep_json !rows));
            ]));
    if !failed then begin
      prerr_endline
        (if fail_fast then
           "crashsweep: violation found (stopped early; * marks the failing \
            row)"
         else "crashsweep: violation found (* marks failing rows)");
      exit 1
    end;
    if faults then begin
      let table =
        Su_util.Text_table.create
          ~title:
            (Printf.sprintf
               "transient-fault shakedown (rate %.3f per request)" fault_rate)
          ~headers:
            [
              "scheme"; "workload"; "injected"; "retries"; "failures";
              "cache-fail"; "verdict";
            ]
      in
      List.iter
        (fun scheme ->
          List.iter
            (fun wl ->
              let cfg =
                {
                  (sweep_cfg scheme) with
                  Fs.fault =
                    Su_disk.Fault.transient ~seed:97 ~rate:fault_rate ();
                }
              in
              let f = Su_check.Explorer.fault_shakedown ~cfg wl in
              let verdict =
                if
                  f.Su_check.Explorer.f_completed
                  && f.Su_check.Explorer.f_consistent
                  && f.Su_check.Explorer.f_failures = 0
                then "rode it out"
                else "BROKEN"
              in
              Su_util.Text_table.add_row table
                [
                  Fs.scheme_kind_name scheme;
                  wl.Su_check.Explorer.wl_name;
                  Su_util.Text_table.cell_i f.Su_check.Explorer.f_injected;
                  Su_util.Text_table.cell_i f.Su_check.Explorer.f_retries;
                  Su_util.Text_table.cell_i f.Su_check.Explorer.f_failures;
                  Su_util.Text_table.cell_i
                    f.Su_check.Explorer.f_cache_failures;
                  verdict;
                ])
            workloads)
        schemes;
      Su_util.Text_table.print table
    end
  in
  Cmd.v
    (Cmd.info "crashsweep"
       ~doc:
         "Systematically re-crash a recorded workload at every write \
          boundary (plus torn mid-write states) and verify fsck, repair and \
          remount per scheme. Exits non-zero if any scheme misses its \
          promise (consistent; repairable for no-order).")
    Term.(
      const run $ schemes_arg $ workloads_arg $ no_torn_arg $ faults_arg
      $ fault_rate_arg $ jobs_arg $ max_boundaries_arg $ nested_arg
      $ fail_fast_arg $ demand_arg $ json_arg)

let faultsweep_cmd =
  let schemes_arg =
    Arg.(
      value
      & opt (some (list scheme_conv)) None
      & info [ "schemes" ]
          ~doc:
            "Comma-separated schemes to sweep (default: the paper's five \
             plus journaled).")
  in
  let workloads_arg =
    Arg.(
      value
      & opt (list string) [ "smallfiles"; "dirtree"; "renamefile"; "renamedir" ]
      & info [ "w"; "workloads" ]
          ~doc:
            "Comma-separated built-in workloads: smallfiles, dirtree, \
             renamefile, renamedir.")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ]
          ~doc:
            "Worker domains for the per-sector runs (default 1 = serial; 0 \
             = one per core). Verdicts and output are byte-identical at any \
             value.")
  in
  let max_sectors_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-sectors" ]
          ~doc:
            "Cap the sectors injected per sweep (smoke runs; default: every \
             touched sector).")
  in
  let fail_fast_arg =
    Arg.(
      value & flag
      & info [ "fail-fast" ]
          ~doc:"Stop at the first verdict that breaks survive-or-fail-clean.")
  in
  let sweep_cfg scheme =
    (* compact volume, as in crashsweep: the campaign re-runs the
       whole workload once per touched sector *)
    {
      (Fs.config ~scheme ()) with
      Fs.geom = Su_fstypes.Geom.v ~mb:32 ~cg_mb:16 ~inodes_per_cg:1024 ();
      cache_mb = 4;
      journal_mb = 2;
    }
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH"
          ~doc:
            "Also write the sweep summaries (one object per scheme x \
             workload row, with the verdict) as JSON to $(docv).")
  in
  let run schemes workload_names jobs spares max_sectors fail_fast json_path =
    let schemes =
      match schemes with
      | Some s -> s
      | None -> Fs.all_schemes @ [ Fs.Journaled { group_commit = false } ]
    in
    let workloads =
      List.filter_map
        (fun name ->
          match Su_check.Explorer.find_workload name with
          | Some w -> Some w
          | None ->
            Printf.eprintf "unknown workload %S (skipped)\n" name;
            None)
        workload_names
    in
    if workloads = [] then begin
      prerr_endline "faultsweep: no valid workloads left to sweep";
      exit 2
    end;
    let table =
      Su_util.Text_table.create
        ~title:
          (Printf.sprintf
             "fault sweep: a permanent bad sector at every touched fragment \
              (%d spares)"
             spares)
        ~headers:
          [
            "scheme"; "workload"; "sectors"; "swept"; "completed"; "typed";
            "escaped"; "remaps"; "violations"; "verdict";
          ]
    in
    let failed = ref false in
    let rows = ref [] in
    (try
       List.iter
         (fun scheme ->
           List.iter
             (fun wl ->
               let s =
                 Su_check.Faultsweep.sweep ~jobs ~spares ?max_sectors
                   ~fail_fast ~cfg:(sweep_cfg scheme) wl
               in
               let ok = Su_check.Faultsweep.ok s in
               rows := (scheme, s, ok) :: !rows;
               Su_util.Text_table.add_row table
                 [
                   Fs.scheme_kind_name scheme;
                   s.Su_check.Faultsweep.fs_workload;
                   Su_util.Text_table.cell_i s.Su_check.Faultsweep.fs_sectors;
                   Su_util.Text_table.cell_i s.Su_check.Faultsweep.fs_swept;
                   Su_util.Text_table.cell_i s.Su_check.Faultsweep.fs_completed;
                   Su_util.Text_table.cell_i
                     s.Su_check.Faultsweep.fs_failed_typed;
                   Su_util.Text_table.cell_i s.Su_check.Faultsweep.fs_escaped;
                   Su_util.Text_table.cell_i s.Su_check.Faultsweep.fs_remaps;
                   Su_util.Text_table.cell_i
                     s.Su_check.Faultsweep.fs_violations;
                   (if ok then "survives-or-fails-clean" else "BROKEN *");
                 ];
               if not ok then begin
                 failed := true;
                 List.iter
                   (fun v ->
                     if not (Su_check.Faultsweep.fv_clean v) then
                       Printf.eprintf
                         "  %s/%s sector %d: %s%s (pre %d, converged %b, \
                          post %d, remount %b)\n"
                         (Fs.scheme_kind_name scheme)
                         s.Su_check.Faultsweep.fs_workload
                         v.Su_check.Faultsweep.fv_sector
                         (Su_check.Faultsweep.outcome_name
                            v.Su_check.Faultsweep.fv_outcome)
                         (match v.Su_check.Faultsweep.fv_outcome with
                          | Su_check.Faultsweep.Failed_typed m
                          | Su_check.Faultsweep.Escaped m ->
                            " [" ^ m ^ "]"
                          | Su_check.Faultsweep.Completed -> "")
                         v.Su_check.Faultsweep.fv_pre_violations
                         v.Su_check.Faultsweep.fv_repair_converged
                         v.Su_check.Faultsweep.fv_post_violations
                         v.Su_check.Faultsweep.fv_remount_ok)
                   s.Su_check.Faultsweep.fs_verdicts;
                 if fail_fast then raise Exit
               end)
             workloads)
         schemes
     with Exit -> ());
    Su_util.Text_table.print table;
    (match json_path with
     | None -> ()
     | Some path ->
       let open Su_obs.Json in
       let sweep_json (scheme, s, ok) =
         Obj
           [
             ("scheme", Str (Fs.scheme_kind_name scheme));
             ("workload", Str s.Su_check.Faultsweep.fs_workload);
             ("sectors", Int s.Su_check.Faultsweep.fs_sectors);
             ("swept", Int s.Su_check.Faultsweep.fs_swept);
             ("completed", Int s.Su_check.Faultsweep.fs_completed);
             ("failed_typed", Int s.Su_check.Faultsweep.fs_failed_typed);
             ("escaped", Int s.Su_check.Faultsweep.fs_escaped);
             ("remaps", Int s.Su_check.Faultsweep.fs_remaps);
             ("violations", Int s.Su_check.Faultsweep.fs_violations);
             ("ok", Bool ok);
           ]
       in
       write_json_file path
         (Obj
            [
              ("campaign", Str "faultsweep");
              ("spares", Int spares);
              ("ok", Bool (not !failed));
              ("sweeps", List (List.rev_map sweep_json !rows));
            ]));
    if !failed then begin
      prerr_endline
        (if fail_fast then
           "faultsweep: violation found (stopped early; * marks the failing \
            row)"
         else "faultsweep: violation found (* marks failing rows)");
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "faultsweep"
       ~doc:
         "Systematically inject a permanent bad sector at every distinct \
          fragment a workload touches and verify survive-or-fail-clean per \
          scheme: each run either completes (the remap/replica machinery \
          absorbed the fault) or stops with a typed error leaving a \
          repairable, remountable image. Exits non-zero on any escape or \
          unclean failure.")
    Term.(
      const run $ schemes_arg $ workloads_arg $ jobs_arg
      $ spares_arg ~default:64 $ max_sectors_arg $ fail_fast_arg $ json_arg)

let corruptsweep_cmd =
  let schemes_arg =
    Arg.(
      value
      & opt (some (list scheme_conv)) None
      & info [ "schemes" ]
          ~doc:
            "Comma-separated schemes to sweep (default: the paper's five \
             plus journaled).")
  in
  let workloads_arg =
    Arg.(
      value
      & opt (list string) [ "smallfiles"; "dirtree"; "renamefile"; "renamedir" ]
      & info [ "w"; "workloads" ]
          ~doc:
            "Comma-separated built-in workloads: smallfiles, dirtree, \
             renamefile, renamedir (op-list editions, so every run has a \
             model oracle).")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ]
          ~doc:
            "Worker domains for the per-injection runs (default 1 = serial; \
             0 = one per core). Verdicts and output are byte-identical at \
             any value.")
  in
  let max_injections_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-injections" ]
          ~doc:
            "Cap the (sector, class) pairs injected per sweep (smoke runs; \
             default: the full plan).")
  in
  let fail_fast_arg =
    Arg.(
      value & flag
      & info [ "fail-fast" ]
          ~doc:"Stop at the first verdict that breaks detect-or-fail-clean.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH"
          ~doc:
            "Also write the sweep summaries (one object per scheme x \
             workload row, with the verdict) as JSON to $(docv).")
  in
  let sweep_cfg scheme =
    (* compact volume, as in faultsweep: the campaign re-runs the
       whole workload once per (sector, class) pair *)
    {
      (Fs.config ~scheme ()) with
      Fs.geom = Su_fstypes.Geom.v ~mb:32 ~cg_mb:16 ~inodes_per_cg:1024 ();
      cache_mb = 4;
      journal_mb = 2;
    }
  in
  let run schemes workload_names jobs spares max_injections fail_fast
      json_path =
    let schemes =
      match schemes with
      | Some s -> s
      | None -> Fs.all_schemes @ [ Fs.Journaled { group_commit = false } ]
    in
    let cases =
      List.filter_map
        (fun name ->
          match Fuzz.find_case name with
          | Some ops -> Some (name, ops)
          | None ->
            Printf.eprintf "unknown workload %S (skipped)\n" name;
            None)
        workload_names
    in
    if cases = [] then begin
      prerr_endline "corruptsweep: no valid workloads left to sweep";
      exit 2
    end;
    let table =
      Su_util.Text_table.create
        ~title:
          (Printf.sprintf
             "corruption sweep: every silent-fault class on every touched \
              sector, checksums on (%d spares)"
             spares)
        ~headers:
          [
            "scheme"; "workload"; "reads"; "writes"; "swept"; "completed";
            "typed"; "escaped"; "detected"; "repaired"; "silent"; "violations";
            "verdict";
          ]
    in
    let failed = ref false in
    let rows = ref [] in
    (try
       List.iter
         (fun scheme ->
           List.iter
             (fun (name, ops) ->
               let cfg = sweep_cfg scheme in
               let wl = Fuzz.workload_of_ops ~name ops in
               (* the oracle mounts the final logical image of a
                  checksummed, spare-provisioned run — its config must
                  admit the same image shape *)
               let oracle_cfg =
                 { cfg with Fs.checksums = true; Fs.spare_frags = spares }
               in
               let oracle image =
                 Fuzz.check_final_image ~cfg:oracle_cfg image ops
               in
               let s =
                 Su_check.Corruptsweep.sweep ~jobs ~spares ?max_injections
                   ~fail_fast ~cfg ~oracle wl
               in
               let ok = Su_check.Corruptsweep.ok s in
               rows := (scheme, s, ok) :: !rows;
               Su_util.Text_table.add_row table
                 [
                   Fs.scheme_kind_name scheme;
                   s.Su_check.Corruptsweep.cs_workload;
                   Su_util.Text_table.cell_i
                     s.Su_check.Corruptsweep.cs_read_sectors;
                   Su_util.Text_table.cell_i
                     s.Su_check.Corruptsweep.cs_write_sectors;
                   Su_util.Text_table.cell_i s.Su_check.Corruptsweep.cs_swept;
                   Su_util.Text_table.cell_i
                     s.Su_check.Corruptsweep.cs_completed;
                   Su_util.Text_table.cell_i
                     s.Su_check.Corruptsweep.cs_failed_typed;
                   Su_util.Text_table.cell_i s.Su_check.Corruptsweep.cs_escaped;
                   Su_util.Text_table.cell_i
                     s.Su_check.Corruptsweep.cs_detected;
                   Su_util.Text_table.cell_i
                     s.Su_check.Corruptsweep.cs_repaired;
                   Su_util.Text_table.cell_i
                     s.Su_check.Corruptsweep.cs_silent_escapes;
                   Su_util.Text_table.cell_i
                     s.Su_check.Corruptsweep.cs_violations;
                   (if ok then "detects-or-fails-clean" else "BROKEN *");
                 ];
               if not ok then begin
                 failed := true;
                 List.iter
                   (fun v ->
                     if
                       (not (Su_check.Corruptsweep.cv_clean v))
                       || Su_check.Corruptsweep.cv_silent_escape v
                     then
                       Printf.eprintf
                         "  %s/%s %s sector %d: %s%s (injected %b, detected \
                          %d, repaired %d, pre %d, converged %b, post %d, \
                          remount %b, diverged %d)\n"
                         (Fs.scheme_kind_name scheme)
                         s.Su_check.Corruptsweep.cs_workload
                         (Su_check.Corruptsweep.class_name
                            v.Su_check.Corruptsweep.cv_class)
                         v.Su_check.Corruptsweep.cv_sector
                         (Su_check.Corruptsweep.outcome_name
                            v.Su_check.Corruptsweep.cv_outcome)
                         (match v.Su_check.Corruptsweep.cv_outcome with
                          | Su_check.Corruptsweep.Failed_typed m
                          | Su_check.Corruptsweep.Escaped m ->
                            " [" ^ m ^ "]"
                          | Su_check.Corruptsweep.Completed -> "")
                         v.Su_check.Corruptsweep.cv_injected
                         v.Su_check.Corruptsweep.cv_detected
                         v.Su_check.Corruptsweep.cv_repaired
                         v.Su_check.Corruptsweep.cv_pre_violations
                         v.Su_check.Corruptsweep.cv_repair_converged
                         v.Su_check.Corruptsweep.cv_post_violations
                         v.Su_check.Corruptsweep.cv_remount_ok
                         v.Su_check.Corruptsweep.cv_divergences)
                   s.Su_check.Corruptsweep.cs_verdicts;
                 if fail_fast then raise Exit
               end)
             cases)
         schemes
     with Exit -> ());
    Su_util.Text_table.print table;
    (match json_path with
     | None -> ()
     | Some path ->
       let open Su_obs.Json in
       let sweep_json (scheme, s, ok) =
         Obj
           [
             ("scheme", Str (Fs.scheme_kind_name scheme));
             ("workload", Str s.Su_check.Corruptsweep.cs_workload);
             ("read_sectors", Int s.Su_check.Corruptsweep.cs_read_sectors);
             ("write_sectors", Int s.Su_check.Corruptsweep.cs_write_sectors);
             ("planned", Int s.Su_check.Corruptsweep.cs_planned);
             ("swept", Int s.Su_check.Corruptsweep.cs_swept);
             ("completed", Int s.Su_check.Corruptsweep.cs_completed);
             ("failed_typed", Int s.Su_check.Corruptsweep.cs_failed_typed);
             ("escaped", Int s.Su_check.Corruptsweep.cs_escaped);
             ("detected", Int s.Su_check.Corruptsweep.cs_detected);
             ("repaired", Int s.Su_check.Corruptsweep.cs_repaired);
             ("silent_escapes", Int s.Su_check.Corruptsweep.cs_silent_escapes);
             ("violations", Int s.Su_check.Corruptsweep.cs_violations);
             ("ok", Bool ok);
           ]
       in
       write_json_file path
         (Obj
            [
              ("campaign", Str "corruptsweep");
              ("spares", Int spares);
              ("ok", Bool (not !failed));
              ("sweeps", List (List.rev_map sweep_json !rows));
            ]));
    if !failed then begin
      prerr_endline
        (if fail_fast then
           "corruptsweep: violation found (stopped early; * marks the \
            failing row)"
         else "corruptsweep: violation found (* marks failing rows)");
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "corruptsweep"
       ~doc:
         "Systematically inject every silent-fault class — a bit-flipped \
          read, a lost write, a misdirected write — on every sector a \
          workload touches, with checksums on, and verify \
          detect-or-fail-clean per scheme: each run either completes with a \
          final image matching the in-memory model (the checksum ladder \
          healed the corruption), or stops with a typed error leaving a \
          repairable, remountable volume. A completed run whose image \
          silently diverges from the model is the defining failure. Exits \
          non-zero on any escape, silent escape or unclean failure.")
    Term.(
      const run $ schemes_arg $ workloads_arg $ jobs_arg
      $ spares_arg ~default:64 $ max_injections_arg $ fail_fast_arg
      $ json_arg)

let fuzz_cmd =
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"First seed.")
  in
  let ops_arg =
    Arg.(value & opt int 12 & info [ "ops" ] ~doc:"Generated ops per workload.")
  in
  let count_arg =
    Arg.(
      value & opt int 1
      & info [ "n"; "count" ] ~doc:"Consecutive seeds to fuzz.")
  in
  let schemes_arg =
    Arg.(
      value
      & opt (some (list scheme_conv)) None
      & info [ "schemes" ]
          ~doc:
            "Comma-separated schemes to fuzz (default: the paper's five \
             plus journaled).")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ]
          ~doc:
            "Worker domains for per-crash-state verification (0 = one per \
             core).")
  in
  let max_boundaries_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-boundaries" ]
          ~doc:"Cap the write boundaries swept per case (smoke runs).")
  in
  let no_torn_arg =
    Arg.(
      value & flag
      & info [ "no-torn" ]
          ~doc:"Skip torn mid-write states (sector-atomic crashes only).")
  in
  let no_nested_arg =
    Arg.(
      value & flag
      & info [ "no-nested" ]
          ~doc:"Skip re-crashing the recovery pipeline inside its own writes.")
  in
  let fail_fast_arg =
    Arg.(
      value & flag
      & info [ "fail-fast" ] ~doc:"Stop at the first failing case.")
  in
  let fuzz_cfg ~fault ~checksums scheme =
    {
      (Fs.config ~scheme ()) with
      Fs.geom = Su_fstypes.Geom.v ~mb:32 ~cg_mb:16 ~inodes_per_cg:1024 ();
      cache_mb = 4;
      journal_mb = 2;
      fault;
      checksums;
    }
  in
  let run seed0 ops_n count schemes jobs max_boundaries no_torn no_nested
      fail_fast fault_seed fault_rate flip lost misdirect checksums =
    let schemes =
      match schemes with
      | Some s -> s
      | None -> Fs.all_schemes @ [ Fs.Journaled { group_commit = false } ]
    in
    let nested = not no_nested in
    let table =
      Su_util.Text_table.create
        ~title:
          (Printf.sprintf "workload fuzz: %d seed%s x %d ops, per scheme%s"
             count
             (if count = 1 then "" else "s")
             ops_n
             (if nested then ", crashes during recovery included" else ""))
        ~headers:
          [
            "scheme"; "seed"; "ops"; "writes"; "states"; "nested"; "verdict";
          ]
    in
    let failed = ref false in
    (try
       List.iter
         (fun scheme ->
           let cfg =
             fuzz_cfg
               ~fault:
                 (fault_of ~flip ~lost ~misdirect ~seed:fault_seed
                    ~rate:fault_rate ~bad_sectors:[] ())
               ~checksums scheme
           in
           for k = 0 to count - 1 do
             let seed = seed0 + k in
             let ops = Fuzz.gen ~seed ~ops:ops_n in
             let name = Printf.sprintf "fuzz-%d" seed in
             let case ops =
               Fuzz.run_case ~nested ~torn:(not no_torn) ~jobs ?max_boundaries
                 ~cfg ~name ops
             in
             let r = case ops in
             let s = r.Fuzz.cr_summary in
             let why = Fuzz.failure r in
             Su_util.Text_table.add_row table
               [
                 Fs.scheme_kind_name scheme;
                 string_of_int seed;
                 Su_util.Text_table.cell_i (List.length ops);
                 Su_util.Text_table.cell_i s.Su_check.Explorer.s_writes;
                 Su_util.Text_table.cell_i s.Su_check.Explorer.s_states;
                 Su_util.Text_table.cell_i s.Su_check.Explorer.s_nested_states;
                 (match why with None -> "pass" | Some w -> "FAIL: " ^ w);
               ];
             match why with
             | None -> ()
             | Some why ->
               failed := true;
               Printf.eprintf "seed %d under %s: %s; shrinking...\n%!" seed
                 (Fs.scheme_kind_name scheme)
                 why;
               let minimal =
                 Fuzz.shrink
                   ~still_fails:(fun ops' -> Fuzz.failure (case ops') <> None)
                   ops
               in
               Printf.eprintf
                 "minimal reproducer (seed %d, %d of %d ops, scheme %s):\n"
                 seed (List.length minimal) (List.length ops)
                 (Fs.scheme_kind_name scheme);
               List.iter
                 (fun op -> Printf.eprintf "  %s\n" (Fuzz.op_to_string op))
                 minimal;
               Printf.eprintf "%!";
               if fail_fast then raise Exit
           done)
         schemes
     with Exit -> ());
    Su_util.Text_table.print table;
    if !failed then begin
      prerr_endline "fuzz: failing case found (reproducers above)";
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Seeded workload fuzzing: generate op sequences over the full \
          syscall surface, crash-sweep each at every write boundary \
          (re-crashing recovery inside its own writes too), check the \
          final image against an in-memory model, and greedily shrink any \
          violation to a minimal reproducer. Exits non-zero on failure.")
    Term.(
      const run $ seed_arg $ ops_arg $ count_arg $ schemes_arg $ jobs_arg
      $ max_boundaries_arg $ no_torn_arg $ no_nested_arg $ fail_fast_arg
      $ fault_seed_arg $ fault_rate_flag $ flip_rate_flag $ lost_rate_flag
      $ misdirect_rate_flag $ checksums_flag)

let trace_cmd =
  let count_arg =
    Arg.(value & opt int 30 & info [ "n" ] ~doc:"Trace records to print.")
  in
  let run scheme count =
    let cfg =
      { (Fs.config ~scheme ()) with
        Fs.geom = Su_fstypes.Geom.small;
        keep_trace_records = true }
    in
    let w = Fs.make cfg in
    ignore
      (Su_sim.Proc.spawn w.Fs.engine ~name:"user" (fun () ->
           Fsops.mkdir w.Fs.st "/d";
           for i = 1 to 10 do
             let p = Printf.sprintf "/d/f%d" i in
             Fsops.create w.Fs.st p;
             Fsops.append w.Fs.st p ~bytes:4096
           done;
           Fsops.unlink w.Fs.st "/d/f1";
           Fsops.sync w.Fs.st;
           Fs.stop w));
    Su_sim.Engine.run w.Fs.engine;
    let records = Su_driver.Trace.records (Su_driver.Driver.trace w.Fs.driver) in
    Printf.printf "# I/O trace under %s (%d requests; first %d shown)\n"
      (Fs.scheme_kind_name scheme) (List.length records) count;
    Printf.printf "%8s %5s %-5s %8s %6s %9s %9s\n" "issue" "id" "kind" "lbn"
      "nfrag" "queue(ms)" "svc(ms)";
    List.iteri
      (fun i (r : Su_driver.Trace.record) ->
        if i < count then
          Printf.printf "%8.4f %5d %-5s %8d %6d %9.2f %9.2f\n"
            r.Su_driver.Trace.r_issue r.Su_driver.Trace.r_id
            (match r.Su_driver.Trace.r_kind with
             | Su_driver.Request.Read -> "read"
             | Su_driver.Request.Write -> "write")
            r.Su_driver.Trace.r_lbn r.Su_driver.Trace.r_nfrags
            (1000.0 *. (r.Su_driver.Trace.r_start -. r.Su_driver.Trace.r_issue))
            (1000.0 *. (r.Su_driver.Trace.r_complete -. r.Su_driver.Trace.r_start)))
      records
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Dump the I/O trace of a small workload.")
    Term.(const run $ scheme_arg $ count_arg)

let exp_cmd =
  (* Validated against the experiment registry so an unknown name is a
     non-zero command-line error, same as [run]'s benchmark arg. *)
  let name_conv =
    let names = List.map fst (Su_experiments.Experiments.all `Quick) in
    let parse s =
      if List.mem s names then Ok s
      else
        Error
          (`Msg
            (Printf.sprintf "unknown experiment %S (expected one of %s)" s
               (String.concat ", " names)))
    in
    Arg.conv (parse, Format.pp_print_string)
  in
  let names_arg =
    Arg.(value & pos_all name_conv [ "tab2" ] & info [] ~docv:"EXPERIMENT"
           ~doc:"fig1..fig6, tab1..tab3, chains-dealloc, chains-cb, crash, soft-ablate. \
                 Several may be given; they render in argument order.")
  in
  let quick_arg =
    Arg.(value & flag & info [ "quick" ] ~doc:"Reduced workload sizes.")
  in
  let jobs_arg =
    Arg.(
      value
      & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Render the named experiments in up to $(docv) pool worker \
             domains (0 = all cores). Each experiment is an independent \
             simulated world; results are merged and printed in argument \
             order, so the rendered output is identical at any $(docv).")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH"
          ~doc:
            "Also write the rendered tables as JSON to $(docv) (the same \
             document shape bench/main.exe --json emits).")
  in
  let run names quick jobs json_path =
    let scale = if quick then `Quick else `Full in
    let names = Array.of_list names in
    let results =
      Su_util.Pool.map ~jobs (Array.length names) (fun i ->
          let name = names.(i) in
          let thunk = List.assoc name (Su_experiments.Experiments.all scale) in
          let t0 = Unix.gettimeofday () in
          let tables = thunk () in
          let wall = Unix.gettimeofday () -. t0 in
          (name, wall, tables))
    in
    Array.iter
      (fun (_, _, tables) -> List.iter Su_util.Text_table.print tables)
      results;
    match json_path with
    | None -> ()
    | Some path ->
      let doc =
        Su_experiments.Shapes.experiments_json
          ~scale:(if quick then "quick" else "full")
          (Array.to_list results)
      in
      write_json_file path doc
  in
  Cmd.v
    (Cmd.info "exp"
       ~doc:
         "Run one or more named experiments (figures or tables), optionally \
          fanned out across domains with --jobs.")
    Term.(const run $ names_arg $ quick_arg $ jobs_arg $ json_arg)

(* --- loadgen: open-loop multi-tenant load engine ------------------------- *)

let loadgen_cmd =
  (* validating convs, like the fault flags: absurd load parameters
     are command-line errors, not hung or meaningless runs *)
  let pos_conv what =
    let parse s =
      match int_of_string_opt s with
      | Some n when n >= 1 -> Ok n
      | Some _ -> Error (`Msg (what ^ " must be at least 1"))
      | None -> Error (`Msg (Printf.sprintf "invalid %s %S" what s))
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  let posf_conv what =
    let parse s =
      match float_of_string_opt s with
      | Some v when v > 0.0 && Float.is_finite v -> Ok v
      | Some _ -> Error (`Msg (what ^ " must be positive"))
      | None -> Error (`Msg (Printf.sprintf "invalid %s %S" what s))
    in
    Arg.conv (parse, fun ppf v -> Format.fprintf ppf "%g" v)
  in
  let shape_conv =
    let parse s =
      match Loadgen.shape_of_string (String.lowercase_ascii s) with
      | Some sh -> Ok sh
      | None ->
        Error
          (`Msg
             (Printf.sprintf
                "unknown shape %S (expected fixed, rampup, pausing or shaped)"
                s))
    in
    Arg.conv
      (parse, fun ppf s -> Format.pp_print_string ppf (Loadgen.shape_name s))
  in
  let arrival_conv =
    let parse s =
      match Loadgen.arrival_of_string (String.lowercase_ascii s) with
      | Some a -> Ok a
      | None ->
        Error
          (`Msg
             (Printf.sprintf "unknown arrival process %S (fixed-rate, poisson)"
                s))
    in
    Arg.conv
      (parse, fun ppf a -> Format.pp_print_string ppf (Loadgen.arrival_name a))
  in
  let clients_arg =
    Arg.(
      value
      & opt (pos_conv "client count") 200
      & info [ "clients" ] ~docv:"N" ~doc:"Concurrent tenant clients.")
  in
  let rate_arg =
    Arg.(
      value
      & opt (posf_conv "rate") 0.1
      & info [ "rate" ] ~docv:"R"
          ~doc:"Operations per client per simulated second.")
  in
  let shape_arg =
    Arg.(
      value & opt shape_conv Loadgen.Fixed
      & info [ "shape" ]
          ~doc:"Load shape: fixed, rampup, pausing, shaped.")
  in
  let arrival_arg =
    Arg.(
      value & opt arrival_conv Loadgen.Poisson
      & info [ "arrival" ] ~doc:"Arrival process: poisson, fixed-rate.")
  in
  let duration_arg =
    Arg.(
      value
      & opt (posf_conv "duration") 60.0
      & info [ "duration" ] ~docv:"SECONDS" ~doc:"Simulated run length.")
  in
  let warmup_arg =
    Arg.(
      value & opt float 15.0
      & info [ "warmup" ] ~docv:"SECONDS"
          ~doc:
            "Operations scheduled before $(docv) are executed but not \
             measured; the steady-state window is [warmup, duration).")
  in
  let files_arg =
    Arg.(
      value
      & opt (pos_conv "files-per-client") 8
      & info [ "files" ] ~docv:"N" ~doc:"Pre-created files per tenant.")
  in
  let shards_arg =
    Arg.(
      value
      & opt (pos_conv "shard count") 1
      & info [ "shards" ] ~docv:"S"
          ~doc:
            "Split the clients over $(docv) independent simulated worlds. \
             Part of the experiment definition: the report depends on the \
             shard count, never on --jobs.")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ]
          ~doc:
            "Worker domains running the shards (default 1 = serial; 0 = one \
             per core). The report is byte-identical at any value.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Print the report as one JSON object (schema in EXPERIMENTS.md) \
             instead of text.")
  in
  let min_ops_arg =
    Arg.(
      value
      & opt (some (posf_conv "ops-per-second floor")) None
      & info [ "min-ops-per-sec" ] ~docv:"OPS"
          ~doc:
            "Fail (exit 1) if HOST throughput — steady-phase operations per \
             host wall-clock second — falls below $(docv). A generous floor \
             catches order-of-magnitude regressions in CI.")
  in
  let volume_mb_arg =
    Arg.(
      value
      & opt (some (pos_conv "volume size")) None
      & info [ "volume-mb" ] ~docv:"MB"
          ~doc:
            "Volume size per shard in megabytes (16 MB cylinder groups, 2048 \
             inodes each; the drive is widened to fit). Default: the \
             engine's stock 1 GB geometry. The compact slab-backed image \
             keeps multi-GB volumes resident — see BENCH_volume.json.")
  in
  let run scheme clients rate shape arrival duration warmup files shards jobs
      json seed min_ops volume_mb fault_seed fault_rate bad_sectors spares
      scrub_interval flip lost misdirect checksums =
    if warmup < 0.0 || warmup >= duration then begin
      Printf.eprintf
        "metasim: --warmup (%g) must lie in [0, --duration (%g))\n" warmup
        duration;
      exit Cmd.Exit.cli_error
    end;
    if shards > clients then begin
      Printf.eprintf "metasim: --shards (%d) exceeds --clients (%d)\n" shards
        clients;
      exit Cmd.Exit.cli_error
    end;
    let cfg =
      {
        (Loadgen.config ~scheme ()) with
        Loadgen.clients;
        rate;
        shape;
        arrival;
        duration;
        warmup;
        files_per_client = files;
        shards;
        seed;
      }
    in
    (* every shard is an independent world built from this one fs_cfg;
       the fault model's RNG is per-world, so the report stays a pure
       function of the config at any --jobs *)
    let geom, disk_params =
      match volume_mb with
      | None ->
        ( cfg.Loadgen.fs_cfg.Fs.geom,
          cfg.Loadgen.fs_cfg.Fs.disk_params )
      | Some mb -> (
        match Su_fstypes.Geom.v ~mb ~cg_mb:16 ~inodes_per_cg:2048 () with
        | exception Invalid_argument msg ->
          Printf.eprintf "metasim: --volume-mb %d: %s\n" mb msg;
          exit Cmd.Exit.cli_error
        | geom ->
          let base = cfg.Loadgen.fs_cfg.Fs.disk_params in
          let params =
            if Su_disk.Disk_params.capacity_frags base
               >= geom.Su_fstypes.Geom.nfrags
            then base
            else
              let fpc = Su_disk.Disk_params.frags_per_cyl base in
              { base with
                Su_disk.Disk_params.cylinders =
                  (geom.Su_fstypes.Geom.nfrags + fpc - 1) / fpc
              }
          in
          (geom, params))
    in
    let cfg =
      {
        cfg with
        Loadgen.fs_cfg =
          {
            cfg.Loadgen.fs_cfg with
            Fs.geom;
            disk_params;
            Fs.fault =
              fault_of ~flip ~lost ~misdirect ~seed:fault_seed
                ~rate:fault_rate ~bad_sectors ();
            spare_frags = spares;
            scrub_interval;
            checksums;
          };
      }
    in
    let t0 = Unix.gettimeofday () in
    let r = Loadgen.run ~jobs cfg in
    let wall = Unix.gettimeofday () -. t0 in
    (* stdout carries only the deterministic report; host-side numbers
       go to stderr so byte-identity across --jobs holds *)
    if json then
      print_endline (Su_obs.Json.to_string_pretty (Loadgen.report_json cfg r))
    else Su_util.Text_table.print (Loadgen.report_table cfg r);
    let host_rate = float_of_int r.Loadgen.executed /. wall in
    Printf.eprintf
      "loadgen: %d steady-phase ops in %.2f s host wall (%.0f ops/s host, %d \
       major collections)\n"
      r.Loadgen.executed wall host_rate r.Loadgen.major_collections;
    match min_ops with
    | Some floor when host_rate < floor ->
      Printf.eprintf
        "loadgen: host throughput %.0f ops/s is below the --min-ops-per-sec \
         floor %g\n"
        host_rate floor;
      exit 1
    | Some _ | None -> ()
  in
  let doc = "Open-loop multi-tenant load engine (throughput and tail latency)." in
  Cmd.v (Cmd.info "loadgen" ~doc)
    Term.(
      const run $ scheme_arg $ clients_arg $ rate_arg $ shape_arg
      $ arrival_arg $ duration_arg $ warmup_arg $ files_arg $ shards_arg
      $ jobs_arg $ json_arg $ seed_arg $ min_ops_arg $ volume_mb_arg
      $ fault_seed_arg $ fault_rate_flag $ bad_sectors_arg
      $ spares_arg ~default:0 $ scrub_arg
      $ flip_rate_flag $ lost_rate_flag $ misdirect_rate_flag
      $ checksums_flag)

(* Typed simulation failures must reach the shell as one clean stderr
   line and a distinct exit code (3), not an OCaml backtrace: a run
   against a fault model that exhausts the stack's tolerance is an
   expected outcome for scripts to branch on, not a crash. Exceptions
   raised inside simulated processes arrive wrapped in
   [Proc.Process_failure]; unwrap before classifying. *)
let rec typed_error = function
  | Su_sim.Proc.Process_failure (_, e) -> typed_error e
  | Fsops.Eio msg -> Some ("I/O error: " ^ msg)
  | Fsops.Erofs msg -> Some ("read-only file system: " ^ msg)
  | Su_cache.Bcache.Io_error e ->
    Some ("I/O error: " ^ Su_disk.Fault.error_to_string e)
  | Su_cache.Bcache.Stuck { op; detail; buffers } ->
    Some (Su_cache.Bcache.stuck_to_string ~op ~detail buffers)
  | Fs.Mount_failure msg -> Some ("mount failure: " ^ msg)
  | Failure msg -> Some msg
  | _ -> None

let () =
  let info =
    Cmd.info "metasim"
      ~doc:
        "Simulated UNIX FFS with five metadata update ordering schemes \
         (Ganger & Patt, OSDI 1994)."
  in
  let cmds =
    [
      run_cmd; crash_cmd; crashsweep_cmd; faultsweep_cmd; corruptsweep_cmd;
      fuzz_cmd; trace_cmd; exp_cmd; loadgen_cmd;
    ]
  in
  match Cmd.eval_value ~catch:false (Cmd.group info cmds) with
  | Ok (`Ok ()) -> exit 0
  | Ok (`Help | `Version) -> exit 0
  | Error `Parse -> exit Cmd.Exit.cli_error
  | Error `Term -> exit Cmd.Exit.internal_error
  | Error `Exn -> exit Cmd.Exit.internal_error
  | exception e -> (
    match typed_error e with
    | Some msg ->
      Printf.eprintf "metasim: %s\n" msg;
      exit 3
    | None -> raise e)
