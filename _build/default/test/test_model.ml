(* Model-based testing: random operation sequences run both against
   the real file system (under every ordering scheme) and against a
   trivial functional model; afterwards the two must agree and the
   synced image must pass fsck. This catches semantic divergence that
   the targeted tests miss. *)
open Su_sim
open Su_fs
open Su_util

(* --- the model: a map from path to [`Dir | `File of size] ------------- *)

module M = Map.Make (String)

type model = [ `Dir | `File of int ] M.t

let m_empty : model = M.add "/" `Dir M.empty

let m_children m path =
  let prefix = if path = "/" then "/" else path ^ "/" in
  M.fold
    (fun p _ acc ->
      if p <> path && String.length p > String.length prefix
         && String.sub p 0 (String.length prefix) = prefix
         && not (String.contains_from p (String.length prefix) '/')
      then p :: acc
      else acc)
    m []

(* --- operations -------------------------------------------------------- *)

type op =
  | O_create of string
  | O_append of string * int
  | O_write of string * int
  | O_unlink of string
  | O_mkdir of string
  | O_rmdir of string
  | O_rename of string * string
  | O_read of string

let pp_op = function
  | O_create p -> "create " ^ p
  | O_append (p, n) -> Printf.sprintf "append %s %d" p n
  | O_write (p, n) -> Printf.sprintf "write %s %d" p n
  | O_unlink p -> "unlink " ^ p
  | O_mkdir p -> "mkdir " ^ p
  | O_rmdir p -> "rmdir " ^ p
  | O_rename (a, b) -> Printf.sprintf "rename %s %s" a b
  | O_read p -> "read " ^ p

(* generate a plausible operation against the current model state *)
let gen_op rng (m : model) counter =
  let dirs = M.fold (fun p k acc -> if k = `Dir then p :: acc else acc) m [] in
  let files =
    M.fold (fun p k acc -> match k with `File _ -> p :: acc | `Dir -> acc) m []
  in
  let pick_dir () = List.nth dirs (Rng.int rng (List.length dirs)) in
  let fresh_path () =
    incr counter;
    let d = pick_dir () in
    (if d = "/" then "" else d) ^ Printf.sprintf "/n%d" !counter
  in
  match Rng.int rng 10 with
  | 0 | 1 -> O_create (fresh_path ())
  | 2 ->
    (match files with
     | [] -> O_create (fresh_path ())
     | fs -> O_append (List.nth fs (Rng.int rng (List.length fs)), 1024 * Rng.int_range rng 1 6))
  | 3 ->
    (match files with
     | [] -> O_mkdir (fresh_path ())
     | fs -> O_write (List.nth fs (Rng.int rng (List.length fs)), 1024 * Rng.int_range rng 1 20))
  | 4 ->
    (match files with
     | [] -> O_create (fresh_path ())
     | fs -> O_unlink (List.nth fs (Rng.int rng (List.length fs))))
  | 5 -> O_mkdir (fresh_path ())
  | 6 ->
    (* remove an empty directory if one exists *)
    let empty_dirs =
      List.filter (fun d -> d <> "/" && m_children m d = []) dirs
    in
    (match empty_dirs with
     | [] -> O_mkdir (fresh_path ())
     | ds -> O_rmdir (List.nth ds (Rng.int rng (List.length ds))))
  | 7 ->
    (match files with
     | [] -> O_create (fresh_path ())
     | fs -> O_rename (List.nth fs (Rng.int rng (List.length fs)), fresh_path ()))
  | _ ->
    (match files with
     | [] -> O_create (fresh_path ())
     | fs -> O_read (List.nth fs (Rng.int rng (List.length fs))))

let apply_model (m : model) = function
  | O_create p -> if M.mem p m then m else M.add p (`File 0) m
  | O_append (p, n) ->
    (match M.find_opt p m with
     | Some (`File s) -> M.add p (`File (s + n)) m
     | _ -> m)
  | O_write (p, n) ->
    (match M.find_opt p m with Some (`File _) -> M.add p (`File n) m | _ -> m)
  | O_unlink p -> (match M.find_opt p m with Some (`File _) -> M.remove p m | _ -> m)
  | O_mkdir p -> if M.mem p m then m else M.add p `Dir m
  | O_rmdir p ->
    (match M.find_opt p m with
     | Some `Dir when m_children m p = [] && p <> "/" -> M.remove p m
     | _ -> m)
  | O_rename (a, b) ->
    (match M.find_opt a m, M.find_opt b m with
     | Some (`File s), None -> M.add b (`File s) (M.remove a m)
     | _ -> m)
  | O_read _ -> m

let apply_fs st op =
  (* the model only generates well-formed operations, but races with
     deferred state are impossible here (single user), so any error is
     a real divergence *)
  match op with
  | O_create p -> Fsops.create st p
  | O_append (p, n) -> Fsops.append st p ~bytes:n
  | O_write (p, n) -> Fsops.write_file st p ~bytes:n
  | O_unlink p -> Fsops.unlink st p
  | O_mkdir p -> Fsops.mkdir st p
  | O_rmdir p -> Fsops.rmdir st p
  | O_rename (a, b) -> Fsops.rename st ~src:a ~dst:b
  | O_read p -> ignore (Fsops.read_file st p)

(* compare the full trees *)
let rec collect_fs st path acc =
  List.fold_left
    (fun acc name ->
      if name = "." || name = ".." then acc
      else
        let p = (if path = "/" then "" else path) ^ "/" ^ name in
        let s = Fsops.stat st p in
        match s.Fsops.st_ftype with
        | Su_fstypes.Types.F_dir -> collect_fs st p (M.add p `Dir acc)
        | Su_fstypes.Types.F_reg -> M.add p (`File s.Fsops.st_size) acc
        | Su_fstypes.Types.F_free -> acc)
    acc (Fsops.readdir st path)

let run_sequence scheme ~seed ~ops_count =
  let cfg =
    { (Fs.config ~scheme ()) with Fs.geom = Su_fstypes.Geom.small; cache_mb = 8 }
  in
  let w = Fs.make cfg in
  let rng = Rng.create seed in
  let failure = ref None in
  ignore
    (Proc.spawn w.Fs.engine ~name:"model" (fun () ->
         let st = w.Fs.st in
         let model = ref m_empty in
         let counter = ref 0 in
         (try
            for _ = 1 to ops_count do
              let op = gen_op rng !model counter in
              apply_fs st op;
              model := apply_model !model op
            done;
            Fsops.sync st;
            (* tree comparison *)
            let actual = collect_fs st "/" (M.add "/" `Dir M.empty) in
            if not (M.equal ( = ) actual !model) then begin
              let diff =
                M.merge
                  (fun _ a b -> if a = b then None else Some (a, b))
                  actual !model
              in
              let first = M.min_binding_opt diff in
              failure :=
                Some
                  (Printf.sprintf "tree divergence at %s"
                     (match first with Some (p, _) -> p | None -> "?"))
            end
          with e ->
            failure := Some ("exception: " ^ Printexc.to_string e));
         Fs.stop w));
  Engine.run w.Fs.engine;
  match !failure with
  | Some msg -> Error msg
  | None ->
    let image = Su_disk.Disk.image_snapshot w.Fs.disk in
    Fs.recover_image cfg image;
    let check_exposure =
      match scheme with Fs.Journaled _ -> false | _ -> cfg.Fs.alloc_init
    in
    let r = Fsck.check ~geom:cfg.Fs.geom ~image ~check_exposure in
    if Fsck.ok r then Ok () else Error "fsck violations after sync"

let schemes_under_test =
  Fs.all_schemes
  @ [
      Fs.Scheduler_chains { barrier_dealloc = true };
      Fs.Journaled { group_commit = false };
      Fs.Journaled { group_commit = true };
    ]

let prop_model_agreement =
  QCheck.Test.make ~name:"random ops agree with the model on every scheme"
    ~count:12
    QCheck.(int_bound 100_000)
    (fun seed ->
      List.for_all
        (fun scheme ->
          match run_sequence scheme ~seed ~ops_count:60 with
          | Ok () -> true
          | Error msg ->
            Format.eprintf "[%s seed=%d] %s@." (Fs.scheme_kind_name scheme)
              seed msg;
            false)
        schemes_under_test)

let test_long_single_scheme () =
  (* one long deterministic run on soft updates *)
  match run_sequence Fs.Soft_updates ~seed:4242 ~ops_count:400 with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_ops_printable () =
  Alcotest.(check string) "pp" "create /x" (pp_op (O_create "/x"))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_model_agreement;
    Alcotest.test_case "long soft-updates sequence" `Quick
      test_long_single_scheme;
    Alcotest.test_case "ops printable" `Quick test_ops_printable;
  ]
