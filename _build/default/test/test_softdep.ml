(* Focused soft-updates dependency machinery tests (appendix cases). *)
open Su_sim
open Su_fs
open Su_fstypes

let mk () =
  let cfg =
    { (Fs.config ~scheme:Fs.Soft_updates ()) with
      Fs.geom = Geom.small;
      cache_mb = 8 }
  in
  Fs.make cfg

let in_world w f =
  let r = ref None in
  ignore
    (Proc.spawn w.Fs.engine (fun () ->
         r := Some (f ());
         Fs.stop w));
  Engine.run w.Fs.engine;
  Option.get !r

let on_disk_dinode w inum =
  match Su_disk.Disk.peek w.Fs.disk (Geom.inode_block_frag Geom.small inum) with
  | Types.Meta (Types.Inodes ds) ->
    Some ds.(Geom.inode_index_in_block Geom.small inum)
  | _ -> None

let test_fragment_extension_merge_rollback () =
  (* two allocdirects for the same slot merge, keeping the ORIGINAL
     on-disk old values: an early inode flush rolls all the way back *)
  let w = mk () in
  in_world w (fun () ->
      let st = w.Fs.st in
      Fsops.create st "/f";
      Fsops.append st "/f" ~bytes:1024;
      Fsops.append st "/f" ~bytes:1024;
      (* extend in place or move: either way the pending allocdirect
         has old_ptr = 0, old_size = 0 *)
      let inum = Fsops.resolve st "/f" in
      Inode.with_ibuf st inum (fun ibuf ->
          ignore (Su_cache.Bcache.bawrite w.Fs.cache ibuf);
          Su_cache.Bcache.wait_write w.Fs.cache ibuf);
      (match on_disk_dinode w inum with
       | Some d ->
         Alcotest.(check int) "pointer rolled back" 0 d.Types.db.(0);
         Alcotest.(check int) "size rolled back" 0 d.Types.size
       | None -> Alcotest.fail "inode block missing");
      Fsops.sync st;
      (match on_disk_dinode w inum with
       | Some d ->
         Alcotest.(check bool) "pointer settled" true (d.Types.db.(0) <> 0);
         Alcotest.(check int) "size settled" 2048 d.Types.size
       | None -> Alcotest.fail "inode block missing"))

let test_rollback_after_data_written () =
  (* once the data reaches the disk, the inode flush carries the real
     pointer (no rollback) *)
  let w = mk () in
  in_world w (fun () ->
      let st = w.Fs.st in
      Fsops.create st "/f";
      Fsops.append st "/f" ~bytes:4096;
      let inum = Fsops.resolve st "/f" in
      let ip = Inode.iget st inum in
      let data_lbn = File.ptr_at st ip 0 in
      Inode.iput st ip;
      (* flush the data block first *)
      (match Su_cache.Bcache.lookup w.Fs.cache data_lbn with
       | Some db ->
         ignore (Su_cache.Bcache.bawrite w.Fs.cache db);
         Su_cache.Bcache.wait_write w.Fs.cache db
       | None -> Alcotest.fail "data buffer missing");
      Inode.with_ibuf st inum (fun ibuf ->
          ignore (Su_cache.Bcache.bawrite w.Fs.cache ibuf);
          Su_cache.Bcache.wait_write w.Fs.cache ibuf);
      match on_disk_dinode w inum with
      | Some d ->
        Alcotest.(check int) "pointer written" data_lbn d.Types.db.(0);
        Alcotest.(check int) "size written" 4096 d.Types.size
      | None -> Alcotest.fail "inode block missing")

let test_deferred_free_not_reusable () =
  (* rule 2: a freed extent is not allocatable until the reset pointer
     is on disk, even under allocation pressure in the same group *)
  let w = mk () in
  in_world w (fun () ->
      let st = w.Fs.st in
      Fsops.create st "/a";
      Fsops.append st "/a" ~bytes:8192;
      Fsops.sync st;
      let inum = Fsops.resolve st "/a" in
      let ip = Inode.iget st inum in
      let old_lbn = File.ptr_at st ip 0 in
      Inode.iput st ip;
      Fsops.unlink st "/a";
      (* before any flush: allocate heavily in the same group; nothing
         may land on the just-freed extent *)
      let hits = ref 0 in
      for i = 1 to 40 do
        let p = Printf.sprintf "/b%d" i in
        Fsops.create st p;
        Fsops.append st p ~bytes:8192;
        let bi = Fsops.resolve st p in
        let bip = Inode.iget st bi in
        if File.ptr_at st bip 0 = old_lbn then incr hits;
        Inode.iput st bip
      done;
      Alcotest.(check int) "freed extent not reused early" 0 !hits;
      (* after a full sync the extent is genuinely free again *)
      Fsops.sync st;
      Fsops.create st "/c";
      Fsops.append st "/c" ~bytes:8192;
      ignore (Fsops.resolve st "/c"))

let test_dir_init_before_link () =
  (* a new directory's block must be initialised on disk before the
     parent's entry: flush the parent dir block early and check the
     entry is rolled back while the child block is absent *)
  let w = mk () in
  in_world w (fun () ->
      let st = w.Fs.st in
      Fsops.mkdir st "/sub";
      let root_blk = fst (Geom.cg_data_area Geom.small 0) in
      (match Su_cache.Bcache.lookup w.Fs.cache root_blk with
       | Some b ->
         ignore (Su_cache.Bcache.bawrite w.Fs.cache b);
         Su_cache.Bcache.wait_write w.Fs.cache b
       | None -> Alcotest.fail "root block not cached");
      (match Su_disk.Disk.peek w.Fs.disk root_blk with
       | Types.Meta (Types.Dir entries) ->
         Alcotest.(check bool) "entry rolled back" true
           (Types.dir_find entries "sub" = None)
       | _ -> Alcotest.fail "root block unreadable");
      Fsops.sync st;
      match Su_disk.Disk.peek w.Fs.disk root_blk with
      | Types.Meta (Types.Dir entries) ->
        (match Types.dir_find entries "sub" with
         | Some (_, e) ->
           (* and by now the child's block and inode are stable *)
           (match on_disk_dinode w e.Types.inum with
            | Some d ->
              Alcotest.(check bool) "child dir on disk" true
                (d.Types.ftype = Types.F_dir);
              (match Su_disk.Disk.peek w.Fs.disk d.Types.db.(0) with
               | Types.Meta (Types.Dir es) ->
                 Alcotest.(check bool) "dots present" true
                   (Types.dir_find es "." <> None && Types.dir_find es ".." <> None)
               | _ -> Alcotest.fail "child block unreadable")
            | None -> Alcotest.fail "child inode missing")
         | None -> Alcotest.fail "entry missing after sync")
      | _ -> Alcotest.fail "root block unreadable")

let test_rmdir_deferred_parent_decrement () =
  (* the ".."-driven parent link-count decrement settles through the
     workitem queue even though the child's block is freed unwritten *)
  let w = mk () in
  in_world w (fun () ->
      let st = w.Fs.st in
      Fsops.mkdir st "/p";
      Fsops.mkdir st "/p/q";
      Fsops.sync st;
      Alcotest.(check int) "parent nlink 3" 3 (Fsops.stat st "/p").Fsops.st_nlink;
      Fsops.rmdir st "/p/q";
      Fsops.sync st;
      Alcotest.(check int) "parent nlink back to 2" 2
        (Fsops.stat st "/p").Fsops.st_nlink;
      let r =
        Fsck.check ~geom:Geom.small
          ~image:(Su_disk.Disk.image_snapshot w.Fs.disk)
          ~check_exposure:true
      in
      Alcotest.(check bool) "clean" true (Fsck.ok r))

let suite =
  [
    Alcotest.test_case "fragment extension merge rollback" `Quick
      test_fragment_extension_merge_rollback;
    Alcotest.test_case "no rollback after data written" `Quick
      test_rollback_after_data_written;
    Alcotest.test_case "deferred free not reusable" `Quick
      test_deferred_free_not_reusable;
    Alcotest.test_case "dir init before link" `Quick test_dir_init_before_link;
    Alcotest.test_case "rmdir deferred parent decrement" `Quick
      test_rmdir_deferred_parent_decrement;
  ]
